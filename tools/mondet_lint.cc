// mondet-lint: static analysis for Datalog programs.
//
// Reads one or more program files (the ParseProgram syntax; an optional
// "# goal: Name" comment names the goal predicate) and reports
// diagnostics: safety/arity errors, unreachable rules, singleton
// variables, recursion structure, fragment classification with witnesses
// (which rule/atoms keep the program out of monadic / frontier-guarded /
// non-recursive Datalog) and join-plan lints. See docs/ANALYSIS.md.
//
// Usage: mondet-lint [options] <file>...
//   --json                       emit one JSON object per file
//   --sarif                      emit one SARIF 2.1.0 document for the
//                                whole invocation (one run, all files)
//   --goal NAME                  goal predicate (overrides "# goal:")
//   --require-fragment FRAGMENT  non-recursive | monadic | frontier-guarded
//                                (repeatable; violations become errors)
//   --werror                     warnings fail the run
//   --dataflow                   dump the abstract-interpretation fixpoint
//                                per predicate (emptiness/constant sets,
//                                dead/subsumed rules, adornments)
//   --disable-check ID           remove a check from the registry
//                                (repeatable; recorded in --json output)
//
// Exit codes: 0 clean, 1 diagnostics failed a file, 2 usage/IO error —
// usable as a CI gate (scripts/tier1.sh runs it over examples/programs/).

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/lint.h"

using namespace mondet;

namespace {

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--json|--sarif] [--goal NAME] [--werror]\n"
               "       [--dataflow] [--disable-check ID]...\n"
               "       [--require-fragment non-recursive|monadic|"
               "frontier-guarded]... <file>...\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  LintOptions options;
  bool json = false;
  bool sarif = false;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg == "--sarif") {
      sarif = true;
    } else if (arg == "--werror") {
      options.werror = true;
    } else if (arg == "--dataflow") {
      options.dataflow_dump = true;
    } else if (arg == "--disable-check") {
      if (++i >= argc) return Usage(argv[0]);
      options.disabled_checks.push_back(argv[i]);
    } else if (arg == "--goal") {
      if (++i >= argc) return Usage(argv[0]);
      options.goal = argv[i];
    } else if (arg == "--require-fragment") {
      if (++i >= argc) return Usage(argv[0]);
      auto fragment = ParseFragmentName(argv[i]);
      if (!fragment) {
        std::fprintf(stderr, "unknown fragment: %s\n", argv[i]);
        return Usage(argv[0]);
      }
      options.required_fragments.push_back(*fragment);
    } else if (arg == "--help" || arg == "-h") {
      Usage(argv[0]);
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
      return Usage(argv[0]);
    } else {
      files.push_back(arg);
    }
  }
  if (files.empty()) return Usage(argv[0]);

  int exit_code = 0;
  std::vector<FileLint> linted;
  for (const std::string& path : files) {
    std::ifstream file(path);
    if (!file) {
      std::fprintf(stderr, "cannot open %s\n", path.c_str());
      return 2;
    }
    std::stringstream buffer;
    buffer << file.rdbuf();
    LintResult result = LintProgramText(buffer.str(), options);
    if (sarif) {
      linted.push_back(FileLint{path, std::move(result)});
      if (linted.back().result.exit_code > exit_code) {
        exit_code = linted.back().result.exit_code;
      }
      continue;
    }
    if (json) {
      std::printf("%s\n", result.json.c_str());
    } else {
      if (files.size() > 1) std::printf("== %s ==\n", path.c_str());
      std::printf("%s", result.text.c_str());
    }
    if (result.exit_code > exit_code) exit_code = result.exit_code;
  }
  // One SARIF run per invocation, regardless of how many files were given.
  if (sarif) std::printf("%s\n", LintRunToSarif(linted).c_str());
  return exit_code;
}
