// mondet-fuzz: randomized differential testing with shrinking repros.
//
// Drives the oracle registry of src/testing/oracle.h — the same seeded
// generators and checkers the differential test suites wrap — either over
// a seed range / time budget (fuzzing) or over saved `.repro` files
// (replay). A failing case is delta-debugged down to a 1-minimal repro
// (src/testing/shrink.h) and written to --out, so a CI failure line
// always names a small, replayable artifact.
//
// Usage: mondet-fuzz [options]
//   --list            print the oracle names and exit
//   --oracle NAME     fuzz only this oracle (repeatable; default: all)
//   --seeds N         seeds per oracle, starting at 0 (default 50)
//   --seed S          run exactly seed S (repeatable; overrides --seeds)
//   --budget-ms MS    stop starting new seeds once MS elapsed (wall clock)
//   --out DIR         where shrunk repros are written (default ".")
//   --no-shrink       report the original failing case, skip shrinking
//   --replay FILE...  check saved `.repro` files instead of fuzzing
//
// Exit codes: 0 all checks passed, 1 some check failed, 2 usage/IO error.

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "testing/corpus.h"
#include "testing/oracle.h"
#include "testing/shrink.h"

using namespace mondet::testing;

namespace {

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--list] [--oracle NAME]... [--seeds N]\n"
               "       [--seed S]... [--budget-ms MS] [--out DIR]\n"
               "       [--no-shrink] [--replay FILE...]\n",
               argv0);
  return 2;
}

std::string ReproPath(const std::string& out_dir, const FuzzCase& c) {
  return out_dir + "/" + c.oracle + "-seed" + std::to_string(c.seed) +
         ".repro";
}

/// Checks one case; on failure shrinks (unless disabled), writes the
/// repro, and prints where it went. Returns true when the case passed.
bool RunCase(const Oracle& oracle, const FuzzCase& c, bool shrink,
             const std::string& out_dir) {
  OracleOutcome outcome = oracle.Check(c);
  if (outcome.ok) return true;
  std::fprintf(stderr, "FAIL %s seed %u\n%s\n", oracle.name().c_str(), c.seed,
               outcome.message.c_str());
  FuzzCase repro = c;
  if (shrink) {
    ShrinkResult shrunk = ShrinkCase(oracle, c);
    std::fprintf(stderr, "shrunk with %zu checks (%s)\n", shrunk.checks,
                 shrunk.changed ? "reduced" : "already minimal");
    repro = shrunk.best;
  }
  std::string path = ReproPath(out_dir, repro);
  std::string error;
  if (SaveCaseFile(repro, path, &error)) {
    std::fprintf(stderr, "repro written to %s\n", path.c_str());
  } else {
    std::fprintf(stderr, "could not write repro: %s\n", error.c_str());
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> oracle_names;
  std::vector<unsigned> seeds;
  std::vector<std::string> replay_files;
  size_t num_seeds = 50;
  long long budget_ms = -1;
  std::string out_dir = ".";
  bool shrink = true;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--list") {
      for (const Oracle* o : AllOracles()) {
        std::printf("%s\n", o->name().c_str());
      }
      return 0;
    } else if (arg == "--oracle") {
      if (++i >= argc) return Usage(argv[0]);
      oracle_names.push_back(argv[i]);
    } else if (arg == "--seeds") {
      if (++i >= argc) return Usage(argv[0]);
      num_seeds = static_cast<size_t>(std::stoul(argv[i]));
    } else if (arg == "--seed") {
      if (++i >= argc) return Usage(argv[0]);
      seeds.push_back(static_cast<unsigned>(std::stoul(argv[i])));
    } else if (arg == "--budget-ms") {
      if (++i >= argc) return Usage(argv[0]);
      budget_ms = std::stoll(argv[i]);
    } else if (arg == "--out") {
      if (++i >= argc) return Usage(argv[0]);
      out_dir = argv[i];
    } else if (arg == "--no-shrink") {
      shrink = false;
    } else if (arg == "--replay") {
      for (++i; i < argc; ++i) replay_files.push_back(argv[i]);
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return Usage(argv[0]);
    }
  }

  size_t failures = 0;

  if (!replay_files.empty()) {
    for (const std::string& file : replay_files) {
      std::string error;
      std::optional<FuzzCase> c = LoadCaseFile(file, &error);
      if (!c.has_value()) {
        std::fprintf(stderr, "%s: %s\n", file.c_str(), error.c_str());
        return 2;
      }
      const Oracle* oracle = FindOracle(c->oracle);
      if (oracle == nullptr) {
        std::fprintf(stderr, "%s: unknown oracle `%s`\n", file.c_str(),
                     c->oracle.c_str());
        return 2;
      }
      OracleOutcome outcome = oracle->Check(*c);
      if (outcome.ok) {
        std::printf("PASS %s\n", file.c_str());
      } else {
        ++failures;
        std::fprintf(stderr, "FAIL %s\n%s\n", file.c_str(),
                     outcome.message.c_str());
      }
    }
    return failures > 0 ? 1 : 0;
  }

  std::vector<const Oracle*> oracles;
  if (oracle_names.empty()) {
    oracles = AllOracles();
  } else {
    for (const std::string& name : oracle_names) {
      const Oracle* o = FindOracle(name);
      if (o == nullptr) {
        std::fprintf(stderr, "unknown oracle `%s` (try --list)\n",
                     name.c_str());
        return 2;
      }
      oracles.push_back(o);
    }
  }

  const auto start = std::chrono::steady_clock::now();
  auto budget_left = [&] {
    if (budget_ms < 0) return true;
    auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                       std::chrono::steady_clock::now() - start)
                       .count();
    return elapsed < budget_ms;
  };

  size_t cases_run = 0;
  for (const Oracle* oracle : oracles) {
    if (seeds.empty()) {
      for (unsigned seed = 0; seed < num_seeds && budget_left(); ++seed) {
        ++cases_run;
        if (!RunCase(*oracle, oracle->Generate(seed), shrink, out_dir)) {
          ++failures;
        }
      }
    } else {
      for (unsigned seed : seeds) {
        ++cases_run;
        if (!RunCase(*oracle, oracle->Generate(seed), shrink, out_dir)) {
          ++failures;
        }
      }
    }
  }
  std::printf("%zu cases, %zu failures\n", cases_run, failures);
  return failures > 0 ? 1 : 0;
}
