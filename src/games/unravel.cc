#include "games/unravel.h"

#include <deque>
#include <functional>
#include <map>

#include "base/check.h"

namespace mondet {

namespace {

/// Enumerates the candidate child bags: non-empty subsets of the active
/// domain of size <= k (optionally restricted to fact-induced subsets and
/// singletons).
std::vector<std::vector<ElemId>> CandidateBags(const Instance& source,
                                               const UnravelOptions& opt) {
  std::vector<ElemId> adom = source.ActiveDomain();
  std::vector<std::vector<ElemId>> out;
  std::vector<ElemId> current;
  std::function<void(size_t)> gen = [&](size_t start) {
    if (!current.empty()) {
      bool keep = true;
      if (opt.connected_subsets_only && current.size() > 1) {
        keep = false;
        for (uint32_t fg = 0; fg < source.num_facts(); ++fg) {
          const FactView f = source.ViewAt(fg);
          size_t inside = 0;
          for (ElemId a : f.args) {
            for (ElemId c : current) inside += (a == c) ? 1 : 0;
          }
          // Keep subsets fully covered by one fact's elements.
          std::vector<ElemId> distinct;
          for (ElemId c : current) distinct.push_back(c);
          bool covered = true;
          for (ElemId c : distinct) {
            bool in_fact = false;
            for (ElemId a : f.args) in_fact = in_fact || a == c;
            covered = covered && in_fact;
          }
          if (covered) {
            keep = true;
            break;
          }
        }
      }
      if (keep) out.push_back(current);
    }
    if (static_cast<int>(current.size()) == opt.k) return;
    for (size_t i = start; i < adom.size(); ++i) {
      current.push_back(adom[i]);
      gen(i + 1);
      current.pop_back();
    }
  };
  gen(0);
  return out;
}

}  // namespace

Unravelling BoundedUnravelling(const Instance& source,
                               const UnravelOptions& options) {
  Unravelling result{Instance(source.vocab()), {}, 0, false};
  Instance& inst = result.inst;
  std::vector<std::vector<ElemId>> bags = CandidateBags(source, options);
  if (bags.empty()) return result;

  struct Node {
    std::vector<ElemId> targets;   // source elements of the bag
    std::vector<ElemId> locals;    // unravelling elements (parallel)
    int depth = 0;
  };
  std::deque<Node> queue;

  auto add_node = [&](const std::vector<ElemId>& targets,
                      const std::vector<ElemId>& inherited_locals,
                      int depth) {
    Node node;
    node.targets = targets;
    node.depth = depth;
    for (size_t i = 0; i < targets.size(); ++i) {
      if (inherited_locals[i] != kNoElem) {
        node.locals.push_back(inherited_locals[i]);
      } else {
        ElemId fresh = inst.AddElement(source.element_name(targets[i]) + "~" +
                                       std::to_string(depth));
        result.phi.push_back(targets[i]);
        node.locals.push_back(fresh);
      }
    }
    // Facts of the source induced by the bag.
    for (uint32_t fg = 0; fg < source.num_facts(); ++fg) {
      const FactView f = source.ViewAt(fg);
      std::vector<ElemId> args;
      bool inside = true;
      for (ElemId a : f.args) {
        bool found = false;
        for (size_t i = 0; i < targets.size() && !found; ++i) {
          if (targets[i] == a) {
            args.push_back(node.locals[i]);
            found = true;
          }
        }
        inside = inside && found;
      }
      if (inside) inst.AddFact(f.pred, args);
    }
    queue.push_back(node);
    ++result.nodes;
  };

  // Root: first candidate bag, all fresh.
  add_node(bags.front(),
           std::vector<ElemId>(bags.front().size(), kNoElem), 0);

  while (!queue.empty()) {
    Node node = std::move(queue.front());
    queue.pop_front();
    if (node.depth >= options.depth) continue;
    for (const auto& bag : bags) {
      if (result.nodes >= options.max_nodes) {
        result.truncated = true;
        return result;
      }
      // Shared elements with the parent bag.
      std::vector<ElemId> inherited(bag.size(), kNoElem);
      int shared = 0;
      for (size_t i = 0; i < bag.size(); ++i) {
        for (size_t j = 0; j < node.targets.size(); ++j) {
          if (node.targets[j] == bag[i]) {
            if (!options.one_overlap || shared == 0) {
              inherited[i] = node.locals[j];
              ++shared;
            }
          }
        }
      }
      add_node(bag, inherited, node.depth + 1);
    }
  }
  return result;
}

}  // namespace mondet
