#ifndef MONDET_GAMES_UNRAVEL_H_
#define MONDET_GAMES_UNRAVEL_H_

#include <vector>

#include "base/instance.h"

namespace mondet {

/// Options for bounded unravellings (Sec. 7). True unravellings are
/// infinite; the library builds depth-bounded truncations, which suffice
/// for the finite pattern/hom/game checks the paper's proofs perform
/// (documented per experiment in EXPERIMENTS.md).
struct UnravelOptions {
  int k = 2;           // bag size bound
  int depth = 3;       // tree depth (root = 0)
  bool one_overlap = false;  // (1,k)-unravelling: share <=1 element per edge
  /// Only spawn children for subsets that induce at least one fact or are
  /// singletons; keeps the branching factor manageable while preserving
  /// every pattern the checks look for.
  bool connected_subsets_only = true;
  size_t max_nodes = 200000;
};

struct Unravelling {
  Instance inst;
  /// Φ: element of the unravelling -> element of the source instance.
  std::vector<ElemId> phi;
  size_t nodes = 0;
  bool truncated = false;  // hit max_nodes before reaching full depth
};

/// Builds a depth-bounded k-unravelling of `source`.
Unravelling BoundedUnravelling(const Instance& source,
                               const UnravelOptions& options);

}  // namespace mondet

#endif  // MONDET_GAMES_UNRAVEL_H_
