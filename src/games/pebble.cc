#include "games/pebble.h"

#include <algorithm>
#include <functional>
#include <map>
#include <vector>

#include "base/check.h"

namespace mondet {

namespace {

/// One domain (a sorted subset of the pattern's active domain) together
/// with the set of still-alive images.
struct DomainEntry {
  std::vector<ElemId> domain;                // sorted pattern elements
  std::vector<std::vector<ElemId>> images;   // candidate images
  std::vector<bool> alive;
  // Facts of the pattern whose arguments all lie in this domain.
  std::vector<const Fact*> facts;
};

}  // namespace

bool DuplicatorWins(const Instance& from, const Instance& to, int k,
                    size_t max_family) {
  MONDET_CHECK(k >= 1);
  std::vector<ElemId> fe = from.ActiveDomain();
  std::vector<ElemId> te = to.ActiveDomain();
  if (fe.empty()) return true;
  if (te.empty()) return false;

  // Enumerate domains of size 1..k.
  std::vector<DomainEntry> entries;
  std::map<std::vector<ElemId>, size_t> domain_index;
  std::vector<ElemId> current;
  std::function<void(size_t)> gen = [&](size_t start) {
    if (!current.empty()) {
      DomainEntry entry;
      entry.domain = current;
      domain_index[current] = entries.size();
      entries.push_back(std::move(entry));
    }
    if (static_cast<int>(current.size()) == k) return;
    for (size_t i = start; i < fe.size(); ++i) {
      current.push_back(fe[i]);
      gen(i + 1);
      current.pop_back();
    }
  };
  gen(0);

  // Position of a pattern element within a sorted domain.
  auto pos_in = [](const std::vector<ElemId>& domain, ElemId e) {
    auto it = std::lower_bound(domain.begin(), domain.end(), e);
    MONDET_CHECK(it != domain.end() && *it == e);
    return static_cast<size_t>(it - domain.begin());
  };

  // Attach covered facts. The materialized snapshot must outlive the
  // per-domain fact pointers below.
  const std::vector<Fact> from_facts = from.AllFacts();
  for (DomainEntry& entry : entries) {
    for (const Fact& f : from_facts) {
      bool inside = true;
      for (ElemId a : f.args) {
        inside = inside && std::binary_search(entry.domain.begin(),
                                              entry.domain.end(), a);
      }
      if (inside) entry.facts.push_back(&f);
    }
  }

  // Enumerate candidate images (partial homomorphisms only).
  size_t total = 0;
  for (DomainEntry& entry : entries) {
    size_t s = entry.domain.size();
    std::vector<ElemId> img(s, 0);
    std::function<void(size_t)> fill = [&](size_t i) {
      if (i == s) {
        for (const Fact* f : entry.facts) {
          std::vector<ElemId> args;
          for (ElemId a : f->args) args.push_back(img[pos_in(entry.domain, a)]);
          if (!to.HasFact(f->pred, args)) return;
        }
        entry.images.push_back(img);
        return;
      }
      for (ElemId b : te) {
        img[i] = b;
        fill(i + 1);
      }
    };
    fill(0);
    entry.alive.assign(entry.images.size(), true);
    total += entry.images.size();
    MONDET_CHECK(total <= max_family);
  }

  // Image lookup per domain.
  std::vector<std::map<std::vector<ElemId>, size_t>> image_index(
      entries.size());
  for (size_t d = 0; d < entries.size(); ++d) {
    for (size_t i = 0; i < entries[d].images.size(); ++i) {
      image_index[d][entries[d].images[i]] = i;
    }
  }
  auto is_alive = [&](const std::vector<ElemId>& domain,
                      const std::vector<ElemId>& img) {
    auto dit = domain_index.find(domain);
    if (dit == domain_index.end()) return false;
    auto iit = image_index[dit->second].find(img);
    if (iit == image_index[dit->second].end()) return false;
    return static_cast<bool>(entries[dit->second].alive[iit->second]);
  };

  // Iterated deletion.
  bool changed = true;
  while (changed) {
    changed = false;
    for (size_t d = 0; d < entries.size(); ++d) {
      DomainEntry& entry = entries[d];
      size_t s = entry.domain.size();
      for (size_t i = 0; i < entry.images.size(); ++i) {
        if (!entry.alive[i]) continue;
        bool kill = false;
        // Downward closure: every one-point restriction must be alive.
        for (size_t drop = 0; drop < s && !kill && s > 1; ++drop) {
          std::vector<ElemId> sub_dom;
          std::vector<ElemId> sub_img;
          for (size_t j = 0; j < s; ++j) {
            if (j == drop) continue;
            sub_dom.push_back(entry.domain[j]);
            sub_img.push_back(entry.images[i][j]);
          }
          if (!is_alive(sub_dom, sub_img)) kill = true;
        }
        // Forth property for domains below size k.
        if (!kill && static_cast<int>(s) < k) {
          for (ElemId a : fe) {
            if (std::binary_search(entry.domain.begin(), entry.domain.end(),
                                   a)) {
              continue;
            }
            std::vector<ElemId> ext_dom = entry.domain;
            ext_dom.insert(
                std::upper_bound(ext_dom.begin(), ext_dom.end(), a), a);
            size_t apos = pos_in(ext_dom, a);
            bool extendable = false;
            for (ElemId b : te) {
              std::vector<ElemId> ext_img = entry.images[i];
              ext_img.insert(ext_img.begin() + apos, b);
              if (is_alive(ext_dom, ext_img)) {
                extendable = true;
                break;
              }
            }
            if (!extendable) {
              kill = true;
              break;
            }
          }
        }
        if (kill) {
          entry.alive[i] = false;
          changed = true;
        }
      }
    }
  }

  // The empty map survives iff every element has a surviving singleton.
  for (ElemId a : fe) {
    auto dit = domain_index.find({a});
    MONDET_CHECK(dit != domain_index.end());
    const DomainEntry& entry = entries[dit->second];
    bool any = false;
    for (bool alive : entry.alive) any = any || alive;
    if (!any) return false;
  }
  return true;
}

}  // namespace mondet
