#ifndef MONDET_GAMES_PEBBLE_H_
#define MONDET_GAMES_PEBBLE_H_

#include <cstddef>

#include "base/instance.h"

namespace mondet {

/// The existential k-pebble game (Sec. 7). Decides whether the Duplicator
/// has a winning strategy on (from, to), written from →k to.
///
/// Implementation: the Fact 5 characterization — compute the largest
/// non-empty family H of partial homomorphisms with domain size <= k that
/// is closed under subfunctions and has the forth (extension) property,
/// by iterated deletion. Duplicator wins iff H is non-empty.
///
/// Cost is Θ(#domains * |to|^k); guarded by `max_family` (MONDET_CHECK
/// fails if exceeded) — keep |adom(from)| and k small.
bool DuplicatorWins(const Instance& from, const Instance& to, int k,
                    size_t max_family = 20000000);

}  // namespace mondet

#endif  // MONDET_GAMES_PEBBLE_H_
