#include "views/view_set.h"

#include <algorithm>

#include "base/check.h"
#include "base/gaifman.h"
#include "datalog/eval.h"
#include "datalog/eval_plan.h"
#include "datalog/fragment.h"

namespace mondet {

bool View::IsCq() const {
  const Program& prog = definition.program;
  if (prog.rules().size() != 1) return false;
  const Rule& r = prog.rules().front();
  if (r.head.pred != definition.goal) return false;
  for (const QAtom& a : r.body) {
    if (prog.IsIdb(a.pred)) return false;
  }
  return true;
}

CQ View::AsCq() const {
  MONDET_CHECK(IsCq());
  const Rule& r = definition.program.rules().front();
  CQ cq(definition.program.vocab());
  for (size_t v = 0; v < r.num_vars(); ++v) cq.AddVar(r.var_names[v]);
  for (const QAtom& a : r.body) cq.AddAtom(a);
  cq.SetFreeVars(r.head.args);
  return cq;
}

PredId ViewSet::AddView(const std::string& name, const DatalogQuery& def) {
  MONDET_CHECK(def.program.vocab().get() == vocab_.get());
  PredId view_pred = vocab_->AddPredicate(name, def.arity());
  // Rename every IDB of the definition to a fresh per-view predicate; the
  // goal becomes the view predicate itself.
  Program renamed = def.program;
  std::vector<PredId> idbs(renamed.Idbs().begin(), renamed.Idbs().end());
  std::sort(idbs.begin(), idbs.end());
  for (PredId p : idbs) {
    PredId fresh =
        p == def.goal
            ? view_pred
            : vocab_->AddPredicate(name + "." + vocab_->name(p),
                                   vocab_->arity(p));
    renamed = RenamePredicate(renamed, p, fresh);
  }
  views_.push_back(View{view_pred, DatalogQuery(std::move(renamed), view_pred)});
  compiled_.reset();
  return view_pred;
}

std::optional<PredId> ViewSet::TryAddView(const std::string& name,
                                          const DatalogQuery& def,
                                          std::vector<Diagnostic>* diags,
                                          std::optional<Fragment> required) {
  std::vector<Diagnostic> local;
  if (def.program.vocab().get() != vocab_.get()) {
    local.push_back(MakeDiagnostic(
        Severity::kError, "view-vocabulary",
        "view " + name +
            " is defined over a different vocabulary than the view set"));
  } else {
    // The view name becomes a predicate of `def.arity()`; a clash with an
    // existing predicate of another arity would MONDET_CHECK-abort inside
    // AddPredicate, so report it here instead.
    auto existing = vocab_->FindPredicate(name);
    if (existing && vocab_->arity(*existing) != def.arity()) {
      local.push_back(MakeDiagnostic(
          Severity::kError, "view-arity",
          "view " + name + " has arity " + std::to_string(def.arity()) +
              " but predicate " + name + " already exists with arity " +
              std::to_string(vocab_->arity(*existing))));
    }
    for (const View& v : views_) {
      if (vocab_->name(v.pred) == name) {
        local.push_back(MakeDiagnostic(
            Severity::kError, "view-duplicate",
            "view " + name + " is already defined in this view set"));
        break;
      }
    }
    if (!def.program.IsIdb(def.goal)) {
      local.push_back(MakeDiagnostic(
          Severity::kError, "goal",
          "view " + name + ": goal predicate " + vocab_->name(def.goal) +
              " is not the head of any definition rule"));
    }
    for (size_t ri = 0; ri < def.program.rules().size(); ++ri) {
      const Rule& rule = def.program.rules()[ri];
      CheckRuleSafety(rule, static_cast<int>(ri), &local);
      CheckRuleArity(rule, static_cast<int>(ri), *vocab_, &local);
    }
    if (required) {
      std::vector<Diagnostic> witnesses =
          FragmentViolations(def.program, *required);
      for (Diagnostic& d : witnesses) {
        d.message = "view " + name + ": " + d.message;
      }
      local.insert(local.end(), witnesses.begin(), witnesses.end());
    }
  }
  if (diags) diags->insert(diags->end(), local.begin(), local.end());
  if (HasErrors(local)) return std::nullopt;
  return AddView(name, def);
}

PredId ViewSet::AddCqView(const std::string& name, const CQ& def) {
  return AddView(name, CqAsDatalog(def, name + ".goal"));
}

PredId ViewSet::AddAtomicView(const std::string& name, PredId base) {
  int arity = vocab_->arity(base);
  CQ cq(vocab_);
  std::vector<VarId> vars;
  for (int i = 0; i < arity; ++i) vars.push_back(cq.AddVar());
  cq.AddAtom(base, vars);
  cq.SetFreeVars(vars);
  return AddCqView(name, cq);
}

const View* ViewSet::FindView(PredId pred) const {
  for (const View& v : views_) {
    if (v.pred == pred) return &v;
  }
  return nullptr;
}

std::unordered_set<PredId> ViewSet::ViewPreds() const {
  std::unordered_set<PredId> out;
  for (const View& v : views_) out.insert(v.pred);
  return out;
}

Instance ViewSet::Image(const Instance& inst) const {
  return Image(inst, nullptr);
}

Instance ViewSet::Image(const Instance& inst, EvalStats* stats) const {
  Instance fixpoint = Compiled().Eval(inst, stats);
  return fixpoint.RestrictTo(ViewPreds());
}

Instance ViewSet::Image(const Instance& inst, EvalStats* stats,
                        const EvalOptions& options) const {
  Instance fixpoint = Compiled().Eval(inst, stats, options);
  return fixpoint.RestrictTo(ViewPreds());
}

const CompiledProgram& ViewSet::Compiled() const {
  if (!compiled_) {
    compiled_ = std::make_shared<const CompiledProgram>(CombinedProgram());
  }
  return *compiled_;
}

Program ViewSet::CombinedProgram() const {
  Program out(vocab_);
  for (const View& v : views_) out.AddRules(v.definition.program);
  return out;
}

bool ViewSet::AllCq() const {
  for (const View& v : views_) {
    if (!v.IsCq()) return false;
  }
  return true;
}

bool ViewSet::AllFrontierGuarded() const {
  for (const View& v : views_) {
    if (!IsFrontierGuarded(v.definition.program)) return false;
  }
  return true;
}

bool ViewSet::AllMonadicOrCq() const {
  for (const View& v : views_) {
    if (!v.IsCq() && !IsMonadic(v.definition.program)) return false;
  }
  return true;
}

int ViewSet::MaxCqRadius() const {
  int r = 0;
  for (const View& v : views_) {
    if (v.IsCq()) r = std::max(r, v.AsCq().Radius());
  }
  return r;
}

ViewSet SplitDisconnectedCqViews(const ViewSet& views) {
  ViewSet out(views.vocab());
  for (const View& v : views.views()) {
    if (!v.IsCq()) {
      out.AddView(views.vocab()->name(v.pred) + "#same", v.definition);
      continue;
    }
    CQ cq = v.AsCq();
    Instance canon = cq.CanonicalDb();
    GaifmanGraph graph(canon);
    std::vector<std::vector<ElemId>> components = graph.Components();
    if (components.size() <= 1) {
      out.AddCqView(views.vocab()->name(v.pred) + "#0", cq);
      continue;
    }
    // Component index of each variable (kNoElem = isolated variable —
    // such variables cannot be free by CQ safety, and carry no atoms).
    std::vector<size_t> comp_of(cq.num_vars(), components.size());
    for (size_t c = 0; c < components.size(); ++c) {
      for (ElemId e : components[c]) comp_of[e] = c;
    }
    for (size_t c = 0; c < components.size(); ++c) {
      // V_c keeps the free variables of component c and existentially
      // closes everything else (so the body is the FULL original body:
      // the extra components act as Boolean guards, making V_c a
      // projection of V and V the join of all V_c).
      CQ part(views.vocab());
      for (size_t var = 0; var < cq.num_vars(); ++var) {
        part.AddVar(cq.var_name(static_cast<VarId>(var)));
      }
      for (const QAtom& a : cq.atoms()) part.AddAtom(a);
      std::vector<VarId> frees;
      for (VarId f : cq.free_vars()) {
        if (comp_of[f] == c) frees.push_back(f);
      }
      part.SetFreeVars(frees);
      out.AddCqView(
          views.vocab()->name(v.pred) + "#" + std::to_string(c), part);
    }
  }
  return out;
}

Program RenamePredicate(const Program& program, PredId from, PredId to) {
  MONDET_CHECK(program.vocab()->arity(from) == program.vocab()->arity(to));
  Program out(program.vocab());
  for (Rule rule : program.rules()) {
    if (rule.head.pred == from) rule.head.pred = to;
    for (QAtom& a : rule.body) {
      if (a.pred == from) a.pred = to;
    }
    out.AddRule(std::move(rule));
  }
  return out;
}

}  // namespace mondet
