#include "views/maintained_image.h"

#include <unordered_set>
#include <utility>

#include "base/check.h"
#include "core/mondet_check.h"

namespace mondet {

MaintainedImage::MaintainedImage(ViewSet views, Instance base,
                                 const EvalOptions& options)
    : views_(std::move(views)),
      view_preds_(views_.ViewPreds()),
      base_(std::move(base)),
      fix_(views_.Compiled().Materialize(base_, nullptr, options)),
      image_(fix_.inst.RestrictTo(view_preds_)) {}

ElemId MaintainedImage::AddElement(std::string name) {
  ElemId e = base_.AddElement(name);
  ElemId ef = fix_.inst.AddElement(name);
  ElemId ei = image_.AddElement(std::move(name));
  MONDET_CHECK(e == ef && e == ei &&
               "MaintainedImage: element ids drifted out of sync");
  return e;
}

ImageDelta MaintainedImage::ApplyDelta(const std::vector<Fact>& raw_inserts,
                                       const std::vector<Fact>& raw_deletes,
                                       EvalStats* stats) {
  // Normalize the raw batch into Maintain's FactDelta contract:
  // new base = (old ∖ deletes) ∪ inserts, so inserts win over deletes
  // (checked against the *raw* insert set — a present fact listed on
  // both sides is a no-op, not a deletion), duplicates collapse, inserts
  // of present facts and deletes of absent facts drop out.
  std::unordered_set<Fact, FactHash> raw_ins_set(raw_inserts.begin(),
                                                 raw_inserts.end());
  FactDelta delta;
  std::unordered_set<Fact, FactHash> seen_ins, seen_del;
  for (const Fact& f : raw_inserts) {
    if (!base_.HasFact(f) && seen_ins.insert(f).second) {
      delta.inserts.push_back(f);
    }
  }
  for (const Fact& f : raw_deletes) {
    if (base_.HasFact(f) && !raw_ins_set.count(f) &&
        seen_del.insert(f).second) {
      delta.deletes.push_back(f);
    }
  }
  for (const Fact& f : delta.inserts) {
    MONDET_CHECK(base_.AddFact(f) && "MaintainedImage: insert not applied");
  }
  for (const Fact& f : delta.deletes) {
    MONDET_CHECK(base_.RemoveFact(f) &&
                 "MaintainedImage: delete not applied");
  }

  MaintainResult res = views_.Compiled().Maintain(fix_, base_, delta, stats);

  // Project the fixpoint's net changes onto the view schema.
  image_.EnsureElements(fix_.inst.num_elements());
  ImageDelta out;
  out.overdeleted = res.overdeleted;
  out.rederived = res.rederived;
  for (const Fact& f : res.inserts) {
    if (!view_preds_.count(f.pred)) continue;
    MONDET_CHECK(image_.AddFact(f) &&
                 "MaintainedImage: image insert already present");
    out.inserts.push_back(f);
  }
  for (const Fact& f : res.deletes) {
    if (!view_preds_.count(f.pred)) continue;
    MONDET_CHECK(image_.RemoveFact(f) &&
                 "MaintainedImage: image delete already absent");
    out.deletes.push_back(f);
  }
  return out;
}

Instance MaintainedImage::FreshImage() const { return views_.Image(base_); }

MonDetResult MaintainedImage::RecheckVerdict(const DatalogQuery& query) const {
  return CheckMonotonicDeterminacy(query, views_);
}

MonDetResult MaintainedImage::RecheckVerdict(
    const DatalogQuery& query, const MonDetOptions& options) const {
  return CheckMonotonicDeterminacy(query, views_, options);
}

}  // namespace mondet
