#ifndef MONDET_VIEWS_MAINTAINED_IMAGE_H_
#define MONDET_VIEWS_MAINTAINED_IMAGE_H_

#include <cstddef>
#include <string>
#include <unordered_set>
#include <vector>

#include "base/instance.h"
#include "datalog/eval_plan.h"
#include "views/view_set.h"

namespace mondet {

// Forward-declared (core/ layers above views/): the verdict re-check
// overloads are defined in maintained_image.cc.
struct MonDetOptions;
struct MonDetResult;

/// Net view-image changes produced by one ApplyDelta batch: the facts
/// the view image gained and lost, in the maintenance engine's
/// deterministic order, plus the DRed counters of the underlying
/// fixpoint maintenance.
struct ImageDelta {
  std::vector<Fact> inserts;
  std::vector<Fact> deletes;
  size_t overdeleted = 0;  // DRed provisional deletions (all strata)
  size_t rederived = 0;    // provisional deletions that came back

  bool empty() const { return inserts.empty() && deletes.empty(); }
};

/// A view image V(I) maintained under an insert/delete stream.
///
/// Holds the base instance I, the materialized fixpoint of the combined
/// view program (with derivation counts and statistics, see
/// Materialization), and the projection of that fixpoint to the view
/// predicates — kept current incrementally by CompiledProgram::Maintain
/// rather than recomputed per batch. The correctness contract is
/// inherited from Maintain: after every batch, image() is bit-identical
/// to ViewSet::Image of the current base (FreshImage() recomputes it
/// from scratch for cross-checking), so any verdict or rewriting
/// computed over the maintained image agrees with one computed over a
/// fresh evaluation.
class MaintainedImage {
 public:
  /// Materializes the initial fixpoint of `base` under the combined view
  /// program. `options` governs only this initial evaluation; batch
  /// maintenance is single-threaded and deterministic.
  MaintainedImage(ViewSet views, Instance base,
                  const EvalOptions& options = {});

  const ViewSet& views() const { return views_; }
  const Instance& base() const { return base_; }

  /// The maintained view image V(base), over the same elements as base().
  const Instance& image() const { return image_; }

  /// The maintained full fixpoint (view image plus per-view auxiliary
  /// IDBs), with derivation counts and statistics.
  const Materialization& materialization() const { return fix_; }

  /// Creates a fresh element in the base (and image), as Instance does.
  ElemId AddElement(std::string name = "");

  /// Applies one raw batch of base-fact mutations and maintains the
  /// image. The batch need not be normalized: duplicate inserts, inserts
  /// of present facts, and deletes of absent facts drop out, and a fact
  /// appearing on both sides is treated as inserted (new base =
  /// (old ∖ deletes) ∪ inserts). Facts may be over any predicate —
  /// base-level IDB facts follow the FPEval convention (Prop. 4) — but
  /// must use existing elements. Returns the net change of the view
  /// image; `stats` (optional) accumulates the maintenance counters.
  ImageDelta ApplyDelta(const std::vector<Fact>& raw_inserts,
                        const std::vector<Fact>& raw_deletes,
                        EvalStats* stats = nullptr);

  /// From-scratch recomputation of the view image of the current base
  /// (ViewSet::Image); the oracle the maintained image() is checked
  /// against.
  Instance FreshImage() const;

  /// Re-runs the monotonic-determinacy check for `query` against the
  /// views. The check is static — it depends on the query and view
  /// definitions, not the maintained data — so this is how a stream
  /// consumer re-validates that the maintained image still determines
  /// the query answer after schema-visible churn.
  MonDetResult RecheckVerdict(const DatalogQuery& query) const;
  MonDetResult RecheckVerdict(const DatalogQuery& query,
                              const MonDetOptions& options) const;

 private:
  ViewSet views_;
  std::unordered_set<PredId> view_preds_;
  Instance base_;
  Materialization fix_;
  Instance image_;
};

}  // namespace mondet

#endif  // MONDET_VIEWS_MAINTAINED_IMAGE_H_
