#ifndef MONDET_VIEWS_VIEW_SET_H_
#define MONDET_VIEWS_VIEW_SET_H_

#include <memory>
#include <optional>
#include <string>
#include <unordered_set>
#include <vector>

#include "analysis/analyzer.h"
#include "cq/cq.h"
#include "datalog/program.h"

namespace mondet {

class CompiledProgram;
struct EvalOptions;
struct EvalStats;

/// One view (V, Q_V): a view predicate together with its Datalog definition
/// over the base schema. The definition's goal predicate is the view
/// predicate itself (the paper's convention in Thm 1); IDB predicates are
/// renamed apart per view on insertion.
struct View {
  PredId pred = kNoPred;
  DatalogQuery definition;

  /// True if the definition is a single non-recursive rule over EDBs.
  bool IsCq() const;

  /// The definition as a CQ; the view must satisfy IsCq().
  CQ AsCq() const;
};

/// A collection of views over a shared base schema (Sec. 2).
class ViewSet {
 public:
  explicit ViewSet(VocabularyPtr vocab) : vocab_(std::move(vocab)) {}

  const VocabularyPtr& vocab() const { return vocab_; }

  /// Adds a view named `name` defined by `def` (arity = def goal arity).
  /// The definition's IDB predicates (including the goal) are renamed to
  /// fresh "name.P" predicates so different views never share IDBs.
  PredId AddView(const std::string& name, const DatalogQuery& def);

  /// Validating variant of AddView for user-reachable paths: runs the
  /// definition through the static analyzer (vocabulary, goal, arity,
  /// safety) and, when `required` is set, checks membership in the
  /// fragment. On any error nothing is added and nullopt is returned,
  /// with the witnesses appended to `diags` (may be null).
  std::optional<PredId> TryAddView(
      const std::string& name, const DatalogQuery& def,
      std::vector<Diagnostic>* diags,
      std::optional<Fragment> required = std::nullopt);

  /// Adds a CQ-defined view.
  PredId AddCqView(const std::string& name, const CQ& def);

  /// Adds the atomic view name(x1..xn) ← base(x1..xn) (Thm 6's VYSucc etc).
  PredId AddAtomicView(const std::string& name, PredId base);

  const std::vector<View>& views() const { return views_; }
  const View* FindView(PredId pred) const;

  /// The view schema Σ_V.
  std::unordered_set<PredId> ViewPreds() const;

  /// The view image V(I): an instance over the same elements whose facts
  /// are exactly the view-predicate outputs. Evaluated with the cached
  /// compiled view program; pass `stats` to collect evaluation counters.
  Instance Image(const Instance& inst) const;
  Instance Image(const Instance& inst, EvalStats* stats) const;
  /// As above with caller-chosen evaluation options — the canonical-test
  /// loop images thousands of small expansions per check and turns the
  /// per-instance dataflow analysis off for them.
  Instance Image(const Instance& inst, EvalStats* stats,
                 const EvalOptions& options) const;

  /// Π_V: the union of all view definition rules (goal = view predicate).
  Program CombinedProgram() const;

  /// The combined view program compiled for repeated evaluation. Cached;
  /// rebuilt lazily after view insertions.
  const CompiledProgram& Compiled() const;

  /// Classification helpers for picking decision procedures.
  bool AllCq() const;
  bool AllFrontierGuarded() const;
  bool AllMonadicOrCq() const;

  /// Largest radius of a CQ view definition (Lemma 3's r); CQ views only.
  int MaxCqRadius() const;

 private:
  VocabularyPtr vocab_;
  std::vector<View> views_;
  // Shared so ViewSet stays copyable; the compiled program is immutable.
  mutable std::shared_ptr<const CompiledProgram> compiled_;
};

/// Rewrites `program` replacing every occurrence (head and body) of
/// predicate `from` with `to` (same arity).
Program RenamePredicate(const Program& program, PredId from, PredId to);

/// The Thm 2 preprocessing (appendix): replaces every *disconnected* CQ
/// view by connected ones. A view V(x̄) = Q1(x̄1) ∧ Q2(x̄2) ∧ ... over
/// disjoint components becomes one view per component,
/// Vi(x̄i) = Qi(x̄i) ∧ (∃-closure of every other component), so that the
/// original view is the join of the replacements and each replacement is
/// a projection of the original: the two view sets determine the same
/// queries. Views that are already connected (or not CQs) are kept.
/// New view predicates are named "<name>#<component>".
ViewSet SplitDisconnectedCqViews(const ViewSet& views);

}  // namespace mondet

#endif  // MONDET_VIEWS_VIEW_SET_H_
