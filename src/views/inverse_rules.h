#ifndef MONDET_VIEWS_INVERSE_RULES_H_
#define MONDET_VIEWS_INVERSE_RULES_H_

#include <optional>

#include "datalog/program.h"
#include "views/view_set.h"

namespace mondet {

/// Options for the inverse-rules construction.
struct InverseRulesOptions {
  /// Conjoin the generating view atom to every rule so that the output is
  /// frontier-guarded whenever the input query is (paper appendix,
  /// "Rewritability results inherited from prior work").
  bool frontier_guard = false;
};

/// The inverse-rules algorithm of Duschka–Genesereth–Levy [14], with full
/// defunctionalization of skolem terms into annotated predicates.
///
/// Given a Datalog query `query` over the base schema and a set of CQ
/// views, produces a Datalog query over the *view schema* that computes,
/// on any view-schema instance J, the certain answers of `query` w.r.t.
/// the views (appendix Thm 10). When `query` is monotonically determined
/// by the views, the result is a Datalog rewriting; it is always a
/// separator candidate and a PTime separator for CQ views.
///
/// Every view must be a CQ view (View::IsCq()).
DatalogQuery InverseRulesRewriting(const DatalogQuery& query,
                                   const ViewSet& views,
                                   const InverseRulesOptions& options = {});

/// Certain answers of `query` w.r.t. `views` on the view-schema instance
/// `j`: the intersection of Q(I) over all I with V(I) ⊇ J, computed via
/// the inverse-rules program.
std::set<std::vector<ElemId>> CertainAnswers(const DatalogQuery& query,
                                             const ViewSet& views,
                                             const Instance& j);

}  // namespace mondet

#endif  // MONDET_VIEWS_INVERSE_RULES_H_
