#include "views/inverse_rules.h"

#include <algorithm>
#include <functional>
#include <map>
#include <set>
#include <sstream>

#include "base/check.h"
#include "datalog/eval.h"

namespace mondet {

namespace {

/// Annotation of one logic-program variable: either a plain element or a
/// skolem term f_{view,exvar}(x1..xn) whose arguments are the view's head
/// variables.
struct VarAnn {
  bool plain = true;
  PredId view = kNoPred;
  VarId exvar = 0;

  bool operator==(const VarAnn& o) const {
    return plain == o.plain && (plain || (view == o.view && exvar == o.exvar));
  }
  bool operator<(const VarAnn& o) const {
    if (plain != o.plain) return plain;
    if (plain) return false;
    if (view != o.view) return view < o.view;
    return exvar < o.exvar;
  }
};

/// Key of an annotated base predicate: one inverse rule, i.e. one body atom
/// of one view definition. This keeps the producing view unique, which the
/// frontier-guarding step relies on.
struct BaseKey {
  PredId base = kNoPred;
  PredId view = kNoPred;
  size_t atom_idx = 0;

  bool operator<(const BaseKey& o) const {
    if (base != o.base) return base < o.base;
    if (view != o.view) return view < o.view;
    return atom_idx < o.atom_idx;
  }
};

/// Key of an annotated IDB predicate of the query.
struct IdbKey {
  PredId idb = kNoPred;
  std::vector<VarAnn> anns;

  bool operator<(const IdbKey& o) const {
    if (idb != o.idb) return idb < o.idb;
    return anns < o.anns;
  }
};

int SlotWidth(const Vocabulary& vocab, const VarAnn& a) {
  return a.plain ? 1 : vocab.arity(a.view);
}

std::string AnnName(const Vocabulary& vocab, const VarAnn& a) {
  if (a.plain) return "p";
  return "f[" + vocab.name(a.view) + "." + std::to_string(a.exvar) + "]";
}

/// Metadata of the view CQ needed to build annotations.
struct ViewCqInfo {
  CQ cq;
  std::vector<VarAnn> var_ann;  // per CQ variable: Plain(free) or Sk(ex)
  // For each free position i: the CQ variable there.
  std::vector<VarId> free_at;
};

}  // namespace

DatalogQuery InverseRulesRewriting(const DatalogQuery& query,
                                   const ViewSet& views,
                                   const InverseRulesOptions& options) {
  const VocabularyPtr& vocab = query.program.vocab();
  MONDET_CHECK(views.vocab().get() == vocab.get());
  const Program& qprog = query.program;

  // --- Collect view CQ metadata. -----------------------------------------
  std::map<PredId, ViewCqInfo> view_info;
  for (const View& v : views.views()) {
    MONDET_CHECK(v.IsCq());
    ViewCqInfo info{v.AsCq(), {}, {}};
    info.var_ann.resize(info.cq.num_vars());
    for (size_t var = 0; var < info.cq.num_vars(); ++var) {
      info.var_ann[var] =
          VarAnn{false, v.pred, static_cast<VarId>(var)};  // skolem default
    }
    for (VarId fv : info.cq.free_vars()) {
      info.var_ann[fv] = VarAnn{true, kNoPred, 0};
      info.free_at.push_back(fv);
    }
    view_info.emplace(v.pred, std::move(info));
  }

  Program out(vocab);

  // --- Annotated predicate interning. -------------------------------------
  // Annotated base predicate R@(view,atom): its positional annotations are
  // fixed by the view body atom. Annotated IDB predicate P@[anns].
  std::map<BaseKey, PredId> base_pred;
  std::map<BaseKey, std::vector<VarAnn>> base_anns;
  std::map<IdbKey, PredId> idb_pred;

  auto intern_width = [&](const std::string& name,
                          const std::vector<VarAnn>& anns) {
    int width = 0;
    for (const VarAnn& a : anns) width += SlotWidth(*vocab, a);
    return vocab->AddPredicate(name, width);
  };

  // --- Step 1: inverse rules. ---------------------------------------------
  // For view V(x) ← B1,..,Bm: rule Bj@(V,j)(slots) ← V(x).
  std::map<PredId, std::vector<BaseKey>> base_versions;  // base → annotated
  for (const View& v : views.views()) {
    const ViewCqInfo& info = view_info.at(v.pred);
    int view_arity = static_cast<int>(info.free_at.size());
    for (size_t j = 0; j < info.cq.atoms().size(); ++j) {
      const QAtom& atom = info.cq.atoms()[j];
      BaseKey key{atom.pred, v.pred, j};
      std::vector<VarAnn> anns;
      for (VarId z : atom.args) anns.push_back(info.var_ann[z]);
      std::ostringstream name;
      name << vocab->name(atom.pred) << "@" << vocab->name(v.pred) << "#"
           << j;
      PredId ap = intern_width(name.str(), anns);
      base_pred[key] = ap;
      base_anns[key] = anns;
      base_versions[atom.pred].push_back(key);

      // Build the rule: variables are the view head positions x0..x(n-1).
      Rule rule;
      for (int i = 0; i < view_arity; ++i) {
        rule.var_names.push_back("x" + std::to_string(i));
      }
      std::vector<VarId> head_slots;
      for (size_t pos = 0; pos < atom.args.size(); ++pos) {
        VarId z = atom.args[pos];
        if (info.var_ann[z].plain) {
          // z is a free variable of the view: use the first head position
          // holding it.
          int found = -1;
          for (int i = 0; i < view_arity; ++i) {
            if (info.free_at[i] == z) {
              found = i;
              break;
            }
          }
          MONDET_CHECK(found >= 0);
          head_slots.push_back(static_cast<VarId>(found));
        } else {
          // Skolem slot: all head positions, in order.
          for (int i = 0; i < view_arity; ++i) {
            head_slots.push_back(static_cast<VarId>(i));
          }
        }
      }
      rule.head = QAtom(ap, head_slots);
      std::vector<VarId> view_args;
      for (int i = 0; i < view_arity; ++i) {
        view_args.push_back(static_cast<VarId>(i));
      }
      rule.body.push_back(QAtom(v.pred, view_args));
      out.AddRule(std::move(rule));
    }
  }

  // --- Step 2: saturate the query rules over annotations. -----------------
  // Known IDB annotations per query IDB predicate.
  std::map<PredId, std::set<std::vector<VarAnn>>> idb_versions;
  std::set<std::string> emitted;  // dedup of emitted rules

  auto idb_pred_for = [&](PredId p, const std::vector<VarAnn>& anns) {
    IdbKey key{p, anns};
    auto it = idb_pred.find(key);
    if (it != idb_pred.end()) return it->second;
    std::ostringstream name;
    name << vocab->name(p) << "@[";
    for (size_t i = 0; i < anns.size(); ++i) {
      if (i) name << ",";
      name << AnnName(*vocab, anns[i]);
    }
    name << "]";
    PredId ap = intern_width(name.str(), anns);
    idb_pred.emplace(key, ap);
    return ap;
  };

  bool changed = true;
  while (changed) {
    changed = false;
    for (const Rule& qrule : qprog.rules()) {
      // Per-body-atom choices: each is either a BaseKey (for EDB atoms) or
      // an IDB annotation vector.
      size_t m = qrule.body.size();
      std::vector<int> choice(m, -1);
      // Flatten the available options per atom.
      std::vector<std::vector<std::vector<VarAnn>>> options_anns(m);
      std::vector<std::vector<const BaseKey*>> options_base(m);
      bool feasible = true;
      for (size_t i = 0; i < m; ++i) {
        const QAtom& a = qrule.body[i];
        if (qprog.IsIdb(a.pred)) {
          for (const auto& anns : idb_versions[a.pred]) {
            options_anns[i].push_back(anns);
            options_base[i].push_back(nullptr);
          }
        } else {
          for (const BaseKey& key : base_versions[a.pred]) {
            options_anns[i].push_back(base_anns.at(key));
            options_base[i].push_back(&key);
          }
        }
        if (options_anns[i].empty()) feasible = false;
      }
      if (!feasible) continue;

      // Backtrack over choices, unifying variable annotations.
      std::map<VarId, VarAnn> var_ann;
      std::function<void(size_t)> descend = [&](size_t i) {
        if (i == m) {
          // Head annotation.
          std::vector<VarAnn> head_anns;
          for (VarId v : qrule.head.args) head_anns.push_back(var_ann.at(v));
          if (idb_versions[qrule.head.pred].insert(head_anns).second) {
            changed = true;
          }
          // Emit the annotated rule.
          Rule nr;
          std::map<VarId, std::vector<VarId>> expansion;
          auto expand = [&](VarId v) -> const std::vector<VarId>& {
            auto it = expansion.find(v);
            if (it != expansion.end()) return it->second;
            const VarAnn& a = var_ann.at(v);
            std::vector<VarId> slots;
            int w = SlotWidth(*vocab, a);
            for (int s = 0; s < w; ++s) {
              slots.push_back(static_cast<VarId>(nr.var_names.size()));
              nr.var_names.push_back(qrule.var_names[v] + "#" +
                                     std::to_string(s));
            }
            return expansion.emplace(v, std::move(slots)).first->second;
          };
          // Pre-expand head and body variables.
          std::vector<VarId> head_slots;
          for (VarId v : qrule.head.args) {
            const auto& e = expand(v);
            head_slots.insert(head_slots.end(), e.begin(), e.end());
          }
          struct BodyAtom {
            PredId pred = kNoPred;
            std::vector<VarId> slots;
            const BaseKey* base = nullptr;
            // Per slot: the view-CQ variable it denotes (base atoms only).
            std::vector<VarId> labels;
          };
          std::vector<BodyAtom> batoms;
          for (size_t bi = 0; bi < m; ++bi) {
            const QAtom& a = qrule.body[bi];
            BodyAtom ba;
            for (VarId v : a.args) {
              const auto& e = expand(v);
              ba.slots.insert(ba.slots.end(), e.begin(), e.end());
            }
            ba.base = options_base[bi][choice[bi]];
            if (ba.base != nullptr) {
              const BaseKey& key = *ba.base;
              ba.pred = base_pred.at(key);
              const ViewCqInfo& info = view_info.at(key.view);
              const QAtom& vatom = info.cq.atoms()[key.atom_idx];
              int va = static_cast<int>(info.free_at.size());
              for (VarId z : vatom.args) {
                if (info.var_ann[z].plain) {
                  ba.labels.push_back(z);
                } else {
                  for (int vi = 0; vi < va; ++vi) {
                    ba.labels.push_back(info.free_at[vi]);
                  }
                }
              }
            } else {
              ba.pred = idb_pred_for(a.pred, options_anns[bi][choice[bi]]);
            }
            batoms.push_back(std::move(ba));
          }
          // Slot-level unification: within one annotated base atom, two
          // slots denoting the same view variable (a plain slot and the
          // matching skolem component) are equal on every derivable fact;
          // unify them so frontier-guarding and minimality hold.
          std::vector<VarId> dsu(nr.var_names.size());
          for (size_t v = 0; v < dsu.size(); ++v) dsu[v] = static_cast<VarId>(v);
          std::function<VarId(VarId)> find = [&](VarId x) {
            while (dsu[x] != x) {
              dsu[x] = dsu[dsu[x]];
              x = dsu[x];
            }
            return x;
          };
          for (const BodyAtom& ba : batoms) {
            if (ba.base == nullptr) continue;
            std::map<VarId, VarId> first;  // view var -> slot var
            for (size_t si = 0; si < ba.slots.size(); ++si) {
              VarId label = ba.labels[si];
              auto it = first.find(label);
              if (it == first.end()) {
                first.emplace(label, ba.slots[si]);
              } else {
                dsu[find(ba.slots[si])] = find(it->second);
              }
            }
          }
          for (VarId& v : head_slots) v = find(v);
          nr.head = QAtom(idb_pred_for(qrule.head.pred, head_anns),
                          head_slots);
          const BaseKey* guard_key = nullptr;
          for (size_t bi = 0; bi < m; ++bi) {
            BodyAtom& ba = batoms[bi];
            for (VarId& v : ba.slots) v = find(v);
            if (ba.base != nullptr && options.frontier_guard &&
                guard_key == nullptr && !qrule.head.args.empty()) {
              const QAtom& a = qrule.body[bi];
              bool covers = true;
              for (VarId hv : qrule.head.args) {
                bool in = false;
                for (VarId av : a.args) in = in || av == hv;
                covers = covers && in;
              }
              if (covers) {
                guard_key = ba.base;
                // Conjoin the view guard atom, reading the view-head
                // variables off the unified slot labels.
                const ViewCqInfo& info = view_info.at(guard_key->view);
                int va = static_cast<int>(info.free_at.size());
                std::vector<VarId> vargs(va, kNoElem);
                for (size_t si = 0; si < ba.slots.size(); ++si) {
                  for (int vi = 0; vi < va; ++vi) {
                    if (info.free_at[vi] == ba.labels[si] &&
                        vargs[vi] == kNoElem) {
                      vargs[vi] = ba.slots[si];
                    }
                  }
                }
                for (int vi = 0; vi < va; ++vi) {
                  if (vargs[vi] == kNoElem) {
                    vargs[vi] = static_cast<VarId>(nr.var_names.size());
                    nr.var_names.push_back("g" + std::to_string(vi));
                  }
                }
                nr.body.push_back(QAtom(guard_key->view, vargs));
              }
            }
            nr.body.push_back(QAtom(ba.pred, ba.slots));
          }
          // Dedup.
          std::ostringstream key;
          key << nr.head.pred;
          for (VarId v : nr.head.args) key << "," << v;
          for (const QAtom& a : nr.body) {
            key << "|" << a.pred;
            for (VarId v : a.args) key << "," << v;
          }
          if (emitted.insert(key.str()).second) {
            out.AddRule(std::move(nr));
            changed = true;
          }
          return;
        }
        const QAtom& a = qrule.body[i];
        for (size_t c = 0; c < options_anns[i].size(); ++c) {
          // Unify.
          std::vector<VarId> newly;
          bool ok = true;
          for (size_t pos = 0; pos < a.args.size() && ok; ++pos) {
            VarId v = a.args[pos];
            const VarAnn& want = options_anns[i][c][pos];
            auto it = var_ann.find(v);
            if (it == var_ann.end()) {
              var_ann.emplace(v, want);
              newly.push_back(v);
            } else if (!(it->second == want)) {
              ok = false;
            }
          }
          if (ok) {
            choice[i] = static_cast<int>(c);
            descend(i + 1);
          }
          for (VarId v : newly) var_ann.erase(v);
        }
      };
      descend(0);
    }
  }

  // --- Goal: the all-plain annotation of the original goal. ---------------
  std::vector<VarAnn> plain(vocab->arity(query.goal), VarAnn{true, kNoPred, 0});
  PredId out_goal = idb_pred_for(query.goal, plain);
  if (out.RulesFor(out_goal).empty()) {
    // Ensure the goal is an IDB of the output even when underivable:
    // add an unsatisfiable rule Goal ← Goal (keeps consumers simple).
    Rule r;
    int ar = vocab->arity(out_goal);
    std::vector<VarId> args;
    for (int i = 0; i < ar; ++i) {
      args.push_back(static_cast<VarId>(r.var_names.size()));
      r.var_names.push_back("z" + std::to_string(i));
    }
    r.head = QAtom(out_goal, args);
    r.body.push_back(QAtom(out_goal, args));
    out.AddRule(std::move(r));
  }
  return DatalogQuery(std::move(out), out_goal);
}

std::set<std::vector<ElemId>> CertainAnswers(const DatalogQuery& query,
                                             const ViewSet& views,
                                             const Instance& j) {
  DatalogQuery rewriting = InverseRulesRewriting(query, views);
  return EvaluateDatalog(rewriting, j);
}

}  // namespace mondet
