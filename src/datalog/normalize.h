#ifndef MONDET_DATALOG_NORMALIZE_H_
#define MONDET_DATALOG_NORMALIZE_H_

#include <optional>
#include <vector>

#include "analysis/diagnostic.h"
#include "datalog/program.h"

namespace mondet {

/// True if a Monadic Datalog query is normalized: in every non-goal rule
/// the body has no IDB atom on the head variable and at most one IDB atom
/// per variable. This is the shape Lemma 1 needs for the treespan bound
/// l(TD) <= 2 on expansion decompositions (goal rules are the roots of
/// derivation trees, so they are exempt).
bool IsNormalizedMdl(const DatalogQuery& query);

/// Normalizes a Monadic Datalog query into an equivalent normalized one
/// (Prop. 2, following Chaudhuri–Vardi [12]). New IDB predicates stand for
/// conjunctions of the original unary IDBs; the rules for a conjunction
/// I_S are produced from acyclic self-supporting rule assignments that
/// discharge every IDB requirement on the shared variable.
///
/// The query must be monadic. New predicates are added to the shared
/// vocabulary with names "N[A&B&...]".
DatalogQuery NormalizeMdl(const DatalogQuery& query);

/// As NormalizeMdl, but validates the Prop. 2 precondition through the
/// analyzer instead of aborting: a non-monadic query yields nullopt with
/// the fragment witnesses (check "fragment-monadic") appended to `diags`.
std::optional<DatalogQuery> TryNormalizeMdl(const DatalogQuery& query,
                                            std::vector<Diagnostic>* diags);

}  // namespace mondet

#endif  // MONDET_DATALOG_NORMALIZE_H_
