#ifndef MONDET_DATALOG_APPROXIMATION_H_
#define MONDET_DATALOG_APPROXIMATION_H_

#include <functional>

#include "base/instance.h"
#include "cq/cq.h"
#include "datalog/program.h"

namespace mondet {

/// A CQ approximation of a Datalog query (Sec. 2), materialized as its
/// canonical database together with the frontier tuple (images of the goal
/// variables). By Prop. 1, I ⊨ Q(c) iff some approximation maps into I
/// sending the frontier to c.
struct Expansion {
  Instance inst;
  std::vector<ElemId> frontier;
  int depth = 0;

  explicit Expansion(VocabularyPtr vocab) : inst(std::move(vocab)) {}
};

/// Streams the expansions of `query` whose derivation trees have depth at
/// most `max_depth` (depth 1 = rules with EDB-only bodies), emitting at
/// most `max_count` of them. The callback returns false to stop early.
///
/// Returns true iff the enumeration was exhaustive: every expansion of
/// depth <= max_depth was emitted (no cap hit, no early stop).
bool EnumerateExpansions(const DatalogQuery& query, int max_depth,
                         size_t max_count,
                         const std::function<bool(const Expansion&)>& cb);

/// Same, for an arbitrary IDB predicate of the program (the paper's
/// "approximation of an atom": the program with that atom as goal).
bool EnumeratePredExpansions(const Program& program, PredId pred,
                             int max_depth, size_t max_count,
                             const std::function<bool(const Expansion&)>& cb);

/// Converts an expansion into a CQ (one variable per element, free
/// variables = the frontier).
CQ ExpansionToCq(const Expansion& e);

}  // namespace mondet

#endif  // MONDET_DATALOG_APPROXIMATION_H_
