#include "datalog/kernel.h"

#include <cstdlib>
#include <cstring>

#include "base/check.h"

namespace mondet {

namespace {

/// Upper bound on atom arity for the fixed stack buffers below; enforced
/// at build time so the runners never bounds-check.
constexpr size_t kMaxKernelArity = 16;

/// Deliberate fault injection for the fuzz harness' self-test
/// (scripts/check_fuzz_fault.sh): with MONDET_FAULT=skip-kernel-row every
/// kernel candidate enumeration drops its last row — the classic
/// off-by-one a hand-rolled loop nest invites — which only the compiled
/// path exhibits, so the kernel-differential oracle must catch and shrink
/// it against the generic interpreter.
size_t FaultSkipKernelRow() {
  static const size_t trim = [] {
    const char* env = std::getenv("MONDET_FAULT");
    return env != nullptr && std::strcmp(env, "skip-kernel-row") == 0
               ? size_t{1}
               : size_t{0};
  }();
  return trim;
}

struct RunCtx {
  const JoinKernel& k;
  const Instance& inst;
  ElemId* frame;
  KernelCounters& c;
  DerivedBuffer* out;
  size_t fault_trim;
};

void EmitHead(RunCtx& ctx) {
  ElemId buf[kMaxKernelArity];
  const size_t n = ctx.k.head_slots.size();
  for (size_t i = 0; i < n; ++i) buf[i] = ctx.frame[ctx.k.head_slots[i]];
  // Facts already in the target are filtered here (one hash probe, no
  // allocation); duplicates derived within the same round are
  // deduplicated at the merge barrier.
  if (!ctx.inst.HasFact(ctx.k.head_pred, std::span<const ElemId>(buf, n))) {
    ctx.out->args.insert(ctx.out->args.end(), buf, buf + n);
    ++ctx.out->count;
  }
}

/// Applies one step's ops to a candidate row: equality checks against the
/// frame for bound positions, frame writes for binding ones. Returns
/// false on the first failed check. Writes need no undo — every slot a
/// kernel reads at depth d was deterministically written before it, so
/// stale values below d are simply overwritten on the next candidate.
inline bool ApplyOps(const KernelStep& st, const ElemId* row, ElemId* frame) {
  for (const KernelOp& op : st.ops) {
    if (op.check) {
      if (frame[op.slot] != row[op.pos]) return false;
    } else {
      frame[op.slot] = row[op.pos];
    }
  }
  return true;
}

void RunSteps(RunCtx& ctx, size_t depth) {
  if (depth == ctx.k.steps.size()) {
    EmitHead(ctx);
    return;
  }
  const KernelStep& st = ctx.k.steps[depth];
  const Instance& inst = ctx.inst;

  if (st.kind == KernelStep::kMembership) {
    // Every position is pre-bound: one hash probe replaces the bucket
    // enumeration the interpreter would do.
    ElemId buf[kMaxKernelArity];
    for (const KernelOp& op : st.ops) buf[op.pos] = ctx.frame[op.slot];
    ++ctx.c.probes;
    if (inst.HasFact(st.pred, std::span<const ElemId>(buf, st.arity))) {
      if (ctx.c.step_rows) ++(*ctx.c.step_rows)[depth];
      RunSteps(ctx, depth + 1);
    }
    return;
  }

  std::span<const uint32_t> rows;
  size_t scan_rows = 0;
  switch (st.kind) {
    case KernelStep::kProbe1:
      rows = inst.RowsWith(st.pred, st.probes[0].pos,
                           ctx.frame[st.probes[0].slot]);
      break;
    case KernelStep::kProbe2: {
      const std::span<const uint32_t> a = inst.RowsWith(
          st.pred, st.probes[0].pos, ctx.frame[st.probes[0].slot]);
      const std::span<const uint32_t> b = inst.RowsWith(
          st.pred, st.probes[1].pos, ctx.frame[st.probes[1].slot]);
      rows = b.size() < a.size() ? b : a;
      break;
    }
    case KernelStep::kProbeN: {
      rows = inst.RowsWith(st.pred, st.probes[0].pos,
                           ctx.frame[st.probes[0].slot]);
      for (size_t i = 1; i < st.probes.size(); ++i) {
        const std::span<const uint32_t> r = inst.RowsWith(
            st.pred, st.probes[i].pos, ctx.frame[st.probes[i].slot]);
        // Strict <: the first minimum wins, matching the interpreter's
        // anchor scan (candidate *order* is insertion order either way).
        if (r.size() < rows.size()) rows = r;
      }
      break;
    }
    case KernelStep::kScan:
      scan_rows = inst.NumRows(st.pred);
      break;
    case KernelStep::kMembership:
      break;  // handled above
  }

  const ElemId* base = inst.FlatArgs(st.pred).data();
  const size_t arity = st.arity;
  if (st.kind == KernelStep::kScan) {
    ctx.c.probes += scan_rows;
    const size_t end =
        scan_rows > ctx.fault_trim ? scan_rows - ctx.fault_trim : 0;
    for (size_t r = 0; r < end; ++r) {
      if (!ApplyOps(st, base + r * arity, ctx.frame)) continue;
      if (ctx.c.step_rows) ++(*ctx.c.step_rows)[depth];
      RunSteps(ctx, depth + 1);
    }
    return;
  }
  ctx.c.probes += rows.size();
  const size_t end =
      rows.size() > ctx.fault_trim ? rows.size() - ctx.fault_trim : 0;
  for (size_t i = 0; i < end; ++i) {
    const ElemId* rp = base + static_cast<size_t>(rows[i]) * arity;
    if (!ApplyOps(st, rp, ctx.frame)) continue;
    if (ctx.c.step_rows) ++(*ctx.c.step_rows)[depth];
    RunSteps(ctx, depth + 1);
  }
}

}  // namespace

bool KernelSupported(const QAtom& head, const std::vector<QAtom>& body,
                     size_t num_vars) {
  if (num_vars > 0xFFFF) return false;
  if (head.args.size() > kMaxKernelArity) return false;
  for (const QAtom& a : body) {
    if (a.args.size() > kMaxKernelArity) return false;
  }
  return true;
}

JoinKernel BuildKernel(const QAtom& head, const std::vector<QAtom>& body,
                       size_t num_vars, int seat,
                       const std::vector<uint32_t>& order) {
  MONDET_CHECK(num_vars <= 0xFFFF);
  MONDET_CHECK(head.args.size() <= kMaxKernelArity);
  JoinKernel k;
  k.head_pred = head.pred;
  k.num_slots = static_cast<uint16_t>(num_vars);
  k.head_slots.reserve(head.args.size());
  for (VarId v : head.args) k.head_slots.push_back(static_cast<uint16_t>(v));

  std::vector<bool> bound(num_vars, false);
  if (seat >= 0) {
    const QAtom& a = body[seat];
    MONDET_CHECK(a.args.size() <= kMaxKernelArity);
    k.seat_pred = a.pred;
    k.seat_arity = static_cast<uint8_t>(a.args.size());
    for (size_t pos = 0; pos < a.args.size(); ++pos) {
      const VarId v = a.args[pos];
      if (bound[v]) {
        // Repeated seat variable: later occurrences must agree.
        k.seat_ops.push_back({static_cast<uint8_t>(pos), 1,
                              static_cast<uint16_t>(v)});
      } else {
        k.seat_ops.push_back({static_cast<uint8_t>(pos), 0,
                              static_cast<uint16_t>(v)});
        bound[v] = true;
      }
    }
  }

  std::vector<bool> pre(num_vars);
  for (uint32_t bi : order) {
    const QAtom& a = body[bi];
    MONDET_CHECK(a.args.size() <= kMaxKernelArity);
    KernelStep st;
    st.pred = a.pred;
    st.arity = static_cast<uint8_t>(a.args.size());
    pre = bound;  // bound-at-step-start snapshot: probes come from here
    for (size_t pos = 0; pos < a.args.size(); ++pos) {
      const VarId v = a.args[pos];
      const auto p8 = static_cast<uint8_t>(pos);
      const auto s16 = static_cast<uint16_t>(v);
      if (pre[v]) {
        st.probes.push_back({p8, s16});
        st.ops.push_back({p8, 1, s16});
      } else if (bound[v]) {
        st.ops.push_back({p8, 1, s16});  // repeated within this atom
      } else {
        st.ops.push_back({p8, 0, s16});
        bound[v] = true;
      }
    }
    if (st.probes.size() == a.args.size()) {
      st.kind = KernelStep::kMembership;
    } else if (st.probes.size() == 1) {
      st.kind = KernelStep::kProbe1;
      // The anchor's equality check is guaranteed by the bucket; drop it.
      for (size_t i = 0; i < st.ops.size(); ++i) {
        if (st.ops[i].check && st.ops[i].pos == st.probes[0].pos) {
          st.ops.erase(st.ops.begin() + static_cast<ptrdiff_t>(i));
          break;
        }
      }
    } else if (st.probes.size() == 2) {
      st.kind = KernelStep::kProbe2;
    } else if (!st.probes.empty()) {
      st.kind = KernelStep::kProbeN;
    } else {
      st.kind = KernelStep::kScan;
    }
    k.steps.push_back(std::move(st));
  }
  return k;
}

void RunKernelFull(const JoinKernel& k, const Instance& target,
                   KernelCounters& c, DerivedBuffer* out) {
  ElemId frame_buf[64];
  std::vector<ElemId> frame_heap;
  ElemId* frame = frame_buf;
  if (k.num_slots > 64) {
    frame_heap.resize(k.num_slots);
    frame = frame_heap.data();
  }
  RunCtx ctx{k, target, frame, c, out, FaultSkipKernelRow()};
  if (c.seedings) ++(*c.seedings);
  RunSteps(ctx, 0);
}

void RunKernelDelta(const JoinKernel& k, const Instance& target,
                    std::span<const uint32_t> delta_rows, KernelCounters& c,
                    DerivedBuffer* out) {
  ElemId frame_buf[64];
  std::vector<ElemId> frame_heap;
  ElemId* frame = frame_buf;
  if (k.num_slots > 64) {
    frame_heap.resize(k.num_slots);
    frame = frame_heap.data();
  }
  RunCtx ctx{k, target, frame, c, out, FaultSkipKernelRow()};
  const ElemId* base = target.FlatArgs(k.seat_pred).data();
  const size_t arity = k.seat_arity;
  for (uint32_t row : delta_rows) {
    const ElemId* rp = base + static_cast<size_t>(row) * arity;
    bool ok = true;
    for (const KernelOp& op : k.seat_ops) {
      if (op.check) {
        if (frame[op.slot] != rp[op.pos]) {
          ok = false;
          break;
        }
      } else {
        frame[op.slot] = rp[op.pos];
      }
    }
    if (!ok) continue;
    if (c.seedings) ++(*c.seedings);
    RunSteps(ctx, 0);
  }
}

}  // namespace mondet
