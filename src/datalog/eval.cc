#include "datalog/eval.h"

#include "datalog/eval_plan.h"

namespace mondet {

Instance FpEval(const Program& program, const Instance& inst) {
  return CompiledProgram(program).Eval(inst);
}

Instance FpEval(const Program& program, const Instance& inst,
                EvalStats* stats, const EvalOptions& options) {
  return CompiledProgram(program).Eval(inst, stats, options);
}

std::set<std::vector<ElemId>> EvaluateDatalog(const DatalogQuery& query,
                                              const Instance& inst) {
  Instance fixpoint = FpEval(query.program, inst);
  std::set<std::vector<ElemId>> out;
  for (uint32_t fi : fixpoint.FactsWith(query.goal)) {
    out.insert(fixpoint.facts()[fi].args);
  }
  return out;
}

bool DatalogHoldsOn(const DatalogQuery& query, const Instance& inst) {
  Instance fixpoint = FpEval(query.program, inst);
  return !fixpoint.FactsWith(query.goal).empty();
}

bool DatalogHoldsOn(const DatalogQuery& query, const Instance& inst,
                    const std::vector<ElemId>& tuple) {
  Instance fixpoint = FpEval(query.program, inst);
  return fixpoint.HasFact(query.goal, tuple);
}

}  // namespace mondet
