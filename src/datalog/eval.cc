#include "datalog/eval.h"

#include <unordered_map>

#include "base/check.h"
#include "base/homomorphism.h"

namespace mondet {

namespace {

/// The body of a rule as a pattern instance (element per variable), with
/// one body atom optionally removed (the "delta" atom of semi-naive
/// evaluation, whose bindings are seeded from newly-derived facts).
Instance BodyPattern(const VocabularyPtr& vocab, const Rule& rule,
                     int skip_atom) {
  Instance pattern(vocab);
  pattern.EnsureElements(rule.num_vars());
  for (int i = 0; i < static_cast<int>(rule.body.size()); ++i) {
    if (i == skip_atom) continue;
    const QAtom& a = rule.body[i];
    pattern.AddFact(a.pred, std::vector<ElemId>(a.args.begin(), a.args.end()));
  }
  return pattern;
}

}  // namespace

Instance FpEval(const Program& program, const Instance& inst) {
  Instance result = inst;  // copy

  // Facts derived in the previous round, per predicate. Derivations are
  // buffered in `pending` while a search is in flight (mutating `result`
  // mid-search would invalidate the search's candidate indexes).
  std::vector<Fact> delta;
  std::vector<Fact> pending;

  auto flush_pending = [&]() {
    for (Fact& f : pending) {
      if (result.AddFact(f)) delta.push_back(std::move(f));
    }
    pending.clear();
  };

  // Round 0: rules fire against the input facts (including any IDB facts
  // the input may already contain, as in the paper's Prop. 4 usage).
  for (const Rule& rule : program.rules()) {
    if (rule.body.empty()) {
      pending.push_back(Fact(rule.head.pred, {}));
      continue;
    }
    Instance pattern = BodyPattern(result.vocab(), rule, /*skip_atom=*/-1);
    HomSearch search(pattern, result);
    search.ForEach({}, [&](const std::vector<ElemId>& map) {
      std::vector<ElemId> head_args;
      head_args.reserve(rule.head.args.size());
      for (VarId v : rule.head.args) head_args.push_back(map[v]);
      pending.push_back(Fact(rule.head.pred, std::move(head_args)));
      return true;
    });
    flush_pending();
  }
  flush_pending();

  // Subsequent rounds: each new derivation must use at least one fact from
  // the previous round's delta in some IDB body atom. The delta is indexed
  // by predicate so rules whose IDB atoms saw no new facts are skipped.
  while (!delta.empty()) {
    std::vector<Fact> prev = std::move(delta);
    delta.clear();
    std::unordered_map<PredId, std::vector<const Fact*>> prev_by_pred;
    for (const Fact& f : prev) prev_by_pred[f.pred].push_back(&f);
    for (const Rule& rule : program.rules()) {
      for (int j = 0; j < static_cast<int>(rule.body.size()); ++j) {
        const QAtom& delta_atom = rule.body[j];
        if (!program.IsIdb(delta_atom.pred)) continue;
        auto it = prev_by_pred.find(delta_atom.pred);
        if (it == prev_by_pred.end()) continue;
        Instance pattern = BodyPattern(result.vocab(), rule, j);
        HomSearch search(pattern, result);
        for (const Fact* fp : it->second) {
          const Fact& f = *fp;
          // Seed the bindings of the delta atom from the new fact.
          HomSearch::Fixed fixed;
          bool consistent = true;
          for (size_t pos = 0; pos < delta_atom.args.size() && consistent;
               ++pos) {
            VarId v = delta_atom.args[pos];
            for (const auto& [pv, pe] : fixed) {
              if (pv == v && pe != f.args[pos]) consistent = false;
            }
            if (consistent) fixed.emplace_back(v, f.args[pos]);
          }
          if (!consistent) continue;
          search.ForEach(fixed, [&](const std::vector<ElemId>& map) {
            std::vector<ElemId> head_args;
            head_args.reserve(rule.head.args.size());
            for (VarId v : rule.head.args) head_args.push_back(map[v]);
            pending.push_back(Fact(rule.head.pred, std::move(head_args)));
            return true;
          });
        }
        flush_pending();
      }
    }
  }
  return result;
}

std::set<std::vector<ElemId>> EvaluateDatalog(const DatalogQuery& query,
                                              const Instance& inst) {
  Instance fixpoint = FpEval(query.program, inst);
  std::set<std::vector<ElemId>> out;
  for (uint32_t fi : fixpoint.FactsWith(query.goal)) {
    out.insert(fixpoint.facts()[fi].args);
  }
  return out;
}

bool DatalogHoldsOn(const DatalogQuery& query, const Instance& inst) {
  Instance fixpoint = FpEval(query.program, inst);
  return !fixpoint.FactsWith(query.goal).empty();
}

bool DatalogHoldsOn(const DatalogQuery& query, const Instance& inst,
                    const std::vector<ElemId>& tuple) {
  Instance fixpoint = FpEval(query.program, inst);
  return fixpoint.HasFact(query.goal, tuple);
}

}  // namespace mondet
