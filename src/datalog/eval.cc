#include "datalog/eval.h"

#include "datalog/eval_plan.h"

namespace mondet {

Instance FpEval(const Program& program, const Instance& inst) {
  return CompiledProgram(program).Eval(inst);
}

Instance FpEval(const Program& program, const Instance& inst,
                EvalStats* stats, const EvalOptions& options) {
  return CompiledProgram(program).Eval(inst, stats, options);
}

std::set<std::vector<ElemId>> EvaluateDatalog(const DatalogQuery& query,
                                              const Instance& inst) {
  Instance fixpoint = FpEval(query.program, inst);
  std::set<std::vector<ElemId>> out;
  const uint32_t n = fixpoint.NumRows(query.goal);
  for (uint32_t row = 0; row < n; ++row) {
    const std::span<const ElemId> args = fixpoint.Args(query.goal, row);
    out.insert(std::vector<ElemId>(args.begin(), args.end()));
  }
  return out;
}

bool DatalogHoldsOn(const DatalogQuery& query, const Instance& inst) {
  Instance fixpoint = FpEval(query.program, inst);
  return fixpoint.NumRows(query.goal) > 0;
}

bool DatalogHoldsOn(const DatalogQuery& query, const Instance& inst,
                    const std::vector<ElemId>& tuple) {
  Instance fixpoint = FpEval(query.program, inst);
  return fixpoint.HasFact(query.goal, tuple);
}

}  // namespace mondet
