#ifndef MONDET_DATALOG_KERNEL_H_
#define MONDET_DATALOG_KERNEL_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "base/instance.h"
#include "cq/cq.h"

namespace mondet {

/// Compiled join kernels: each planned (rule, delta-seat, join-order)
/// triple lowers into a flat loop nest over the columnar fact store
/// (Instance rows), replacing the generic backtracking interpreter of
/// CompiledProgram::Join on the evaluator's hot path.
///
/// A kernel is shape-specialized at build time: per body atom it records
/// which positions are already bound when the atom runs (index probes +
/// equality checks) and which positions write a variable into the fixed
/// binding frame. At run time the only decisions left are picking the
/// smallest candidate bucket among the probe positions and comparing
/// ElemIds — no per-tuple allocation, no kNoElem sentinel tests, no
/// std::function indirection.
///
/// Determinism: a kernel enumerates exactly the candidate rows the generic
/// interpreter enumerates, in the same (row-insertion) order — bucket
/// order equals insertion order on the insert-only Eval path, and the
/// anchor choice only narrows the candidate *set scan*, never reorders the
/// surviving matches. Kernels on vs. off is therefore byte-identical in
/// derived-fact order (pinned by the kernel-differential oracle).

/// One position of a step's candidate row: either compare the row's
/// argument at `pos` against frame slot `slot` (check == 1) or write it
/// there (check == 0). Ops are evaluated in position order, so a repeated
/// variable within one atom writes first and checks later occurrences.
struct KernelOp {
  uint8_t pos = 0;
  uint8_t check = 0;
  uint16_t slot = 0;
};

/// A pre-bound position usable as the index-probe anchor.
struct KernelProbe {
  uint8_t pos = 0;
  uint16_t slot = 0;
};

/// One body atom of a kernel, in join order.
struct KernelStep {
  /// Shape tag, decided at build time from the bound/unbound positions:
  /// the hot 1- and 2-probe shapes skip the runtime anchor scan entirely
  /// (and kProbe1 also the anchor's redundant equality check); kMembership
  /// is a single hash-table probe; kScan is the no-bound-position
  /// fallback over all rows.
  enum Kind : uint8_t { kMembership, kProbe1, kProbe2, kProbeN, kScan };

  PredId pred = kNoPred;
  uint8_t arity = 0;
  Kind kind = kScan;
  std::vector<KernelProbe> probes;  // pre-bound positions (anchor choices)
  std::vector<KernelOp> ops;        // checks + writes, position order
};

/// A full compiled kernel: the delta-seat loader, the join steps, and the
/// head emitter. Frames are `num_slots` ElemIds (the rule's variables);
/// safety guarantees every head slot is written before Emit runs.
struct JoinKernel {
  PredId head_pred = kNoPred;
  std::vector<uint16_t> head_slots;  // frame slot per head position
  uint16_t num_slots = 0;
  PredId seat_pred = kNoPred;  // kNoPred for the full-join kernel
  uint8_t seat_arity = 0;
  std::vector<KernelOp> seat_ops;  // checks = repeated seat variables
  std::vector<KernelStep> steps;
};

/// Per-run counters, matching the generic interpreter's semantics:
/// `probes` counts candidate rows scanned (bucket sizes; 1 per membership
/// test), `step_rows[d]` counts rows surviving step d's checks, `seedings`
/// successful seat bindings (1 for a full join).
struct KernelCounters {
  size_t probes = 0;
  std::vector<size_t>* step_rows = nullptr;
  size_t* seedings = nullptr;
};

/// Flat derived-head buffer: `count` heads of one rule, their arguments
/// concatenated in `args` (head i spans [i*arity, (i+1)*arity)). The
/// explicit count keeps nullary heads representable.
struct DerivedBuffer {
  std::vector<ElemId> args;
  size_t count = 0;

  void clear() {
    args.clear();
    count = 0;
  }
};

/// True when the rule's shape fits the fixed-width kernel buffers (atom
/// arities <= 16, at most 65535 variables). Unsupported rules keep the
/// generic interpreter; BuildKernel checks the same bounds.
bool KernelSupported(const QAtom& head, const std::vector<QAtom>& body,
                     size_t num_vars);

/// Lowers one planned (rule, seat, order) into a kernel. `seat` is the
/// body index whose variables the delta fact pre-binds (-1 = full join);
/// `order` lists the remaining body atoms in join order.
JoinKernel BuildKernel(const QAtom& head, const std::vector<QAtom>& body,
                       size_t num_vars, int seat,
                       const std::vector<uint32_t>& order);

/// Runs the full-join kernel over `target`, appending each derived head
/// (not already in `target`) to `out` — a flat buffer, no per-fact
/// allocation.
void RunKernelFull(const JoinKernel& k, const Instance& target,
                   KernelCounters& c, DerivedBuffer* out);

/// Runs the delta kernel once per row of `delta_rows` (rows of
/// `k.seat_pred` in `target`), appending derived heads to `out`.
void RunKernelDelta(const JoinKernel& k, const Instance& target,
                    std::span<const uint32_t> delta_rows, KernelCounters& c,
                    DerivedBuffer* out);

}  // namespace mondet

#endif  // MONDET_DATALOG_KERNEL_H_
