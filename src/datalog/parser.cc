#include "datalog/parser.h"

#include <cctype>
#include <sstream>
#include <unordered_map>

#include "analysis/analyzer.h"

namespace mondet {

namespace {

/// 1-based line/column of byte offset `pos` in `text`.
void LineColAt(const std::string& text, size_t pos, int* line, int* col) {
  *line = 1;
  *col = 1;
  for (size_t i = 0; i < pos && i < text.size(); ++i) {
    if (text[i] == '\n') {
      ++*line;
      *col = 1;
    } else {
      ++*col;
    }
  }
}

/// Minimal recursive-descent tokenizer/parser for the rule syntax.
class Parser {
 public:
  Parser(const std::string& text, VocabularyPtr vocab)
      : text_(text), vocab_(std::move(vocab)) {}

  std::optional<std::vector<Rule>> Parse(std::vector<Diagnostic>* diags) {
    std::vector<Rule> rules;
    SkipWs();
    while (pos_ < text_.size()) {
      auto rule = ParseRule(static_cast<int>(rules.size()));
      if (!rule) {
        diags->insert(diags->end(), diags_.begin(), diags_.end());
        return std::nullopt;
      }
      rules.push_back(std::move(*rule));
      SkipWs();
    }
    return rules;
  }

 private:
  void SkipWs() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c == '#') {
        while (pos_ < text_.size() && text_[pos_] != '\n') ++pos_;
      } else if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
      } else {
        break;
      }
    }
  }

  bool Eat(char c) {
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool EatArrow() {
    SkipWs();
    if (text_.compare(pos_, 2, ":-") == 0) {
      pos_ += 2;
      return true;
    }
    if (text_.compare(pos_, 2, "<-") == 0) {
      pos_ += 2;
      return true;
    }
    return false;
  }

  std::optional<std::string> Identifier() {
    SkipWs();
    size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '_' || text_[pos_] == '\'')) {
      ++pos_;
    }
    if (pos_ == start) return std::nullopt;
    return text_.substr(start, pos_ - start);
  }

  bool Fail(const std::string& msg, const std::string& check = "parse") {
    SourceLoc loc;
    LineColAt(text_, pos_, &loc.line, &loc.col);
    diags_.push_back(MakeDiagnostic(Severity::kError, check, msg, loc));
    return false;
  }

  /// Parses "Pred(v1,...,vn)" or a bare "Pred" (0-ary). Interns the
  /// predicate and returns the atom; nullopt on error.
  std::optional<QAtom> ParseAtom(RuleBuilder* builder,
                                 std::vector<std::string>* arg_names) {
    auto name = Identifier();
    if (!name) {
      Fail("expected predicate name");
      return std::nullopt;
    }
    arg_names->clear();
    if (Eat('(')) {
      if (!Eat(')')) {
        while (true) {
          auto var = Identifier();
          if (!var) {
            Fail("expected variable name");
            return std::nullopt;
          }
          arg_names->push_back(*var);
          if (Eat(')')) break;
          if (!Eat(',')) {
            Fail("expected ',' or ')'");
            return std::nullopt;
          }
        }
      }
    }
    auto existing = vocab_->FindPredicate(*name);
    if (existing && vocab_->arity(*existing) !=
                        static_cast<int>(arg_names->size())) {
      Fail("arity mismatch for predicate " + *name + ": declared with " +
               std::to_string(vocab_->arity(*existing)) + ", used with " +
               std::to_string(arg_names->size()),
           "arity");
      return std::nullopt;
    }
    PredId pred =
        vocab_->AddPredicate(*name, static_cast<int>(arg_names->size()));
    std::vector<VarId> args;
    for (const std::string& v : *arg_names) args.push_back(builder->Var(v));
    return QAtom(pred, args);
  }

  std::optional<Rule> ParseRule(int rule_index) {
    SkipWs();
    int line = 0, col = 0;
    LineColAt(text_, pos_, &line, &col);
    RuleBuilder builder(vocab_);
    std::vector<std::string> arg_names;
    auto head = ParseAtom(&builder, &arg_names);
    if (!head) return std::nullopt;
    std::vector<std::string> head_vars = arg_names;
    if (Eat('.')) {
      // Fact-style rule with empty body (only legal for 0-ary heads).
      if (!head->args.empty()) {
        Fail("rule with variables must have a body");
        return std::nullopt;
      }
      builder.Head(head->pred, {});
      Rule fact = builder.Build();
      fact.line = line;
      fact.col = col;
      return fact;
    }
    if (!EatArrow()) {
      Fail("expected ':-'");
      return std::nullopt;
    }
    std::vector<std::pair<PredId, std::vector<std::string>>> body;
    while (true) {
      std::vector<std::string> body_args;
      auto atom = ParseAtom(&builder, &body_args);
      if (!atom) return std::nullopt;
      body.emplace_back(atom->pred, body_args);
      if (Eat('.')) break;
      if (!Eat(',')) {
        Fail("expected ',' or '.'");
        return std::nullopt;
      }
    }
    builder.Head(head->pred, head_vars);
    for (const auto& [pred, vars] : body) builder.Atom(pred, vars);
    // Safety check mirrors Program::AddRule but reports (with source
    // positions, via the analyzer) instead of dying.
    Rule built = builder.Build();
    built.line = line;
    built.col = col;
    size_t before = diags_.size();
    CheckRuleSafety(built, rule_index, &diags_);
    if (diags_.size() != before) return std::nullopt;
    return built;
  }

  const std::string& text_;
  VocabularyPtr vocab_;
  size_t pos_ = 0;
  std::vector<Diagnostic> diags_;
};

}  // namespace

ParseResult ParseProgram(const std::string& text,
                         const VocabularyPtr& vocab) {
  ParseResult result;
  Parser parser(text, vocab);
  auto rules = parser.Parse(&result.diagnostics);
  if (!rules) {
    result.error = result.diagnostics.empty()
                       ? "parse error"
                       : FormatDiagnostic(result.diagnostics.front());
    return result;
  }
  Program program(vocab);
  for (Rule& r : *rules) program.AddRule(std::move(r));
  result.program = std::move(program);
  return result;
}

std::optional<DatalogQuery> ParseQuery(const std::string& text,
                                       const std::string& goal_name,
                                       const VocabularyPtr& vocab,
                                       std::vector<Diagnostic>* diagnostics) {
  ParseResult result = ParseProgram(text, vocab);
  if (!result.ok()) {
    if (diagnostics) {
      diagnostics->insert(diagnostics->end(), result.diagnostics.begin(),
                          result.diagnostics.end());
    }
    return std::nullopt;
  }
  auto goal = vocab->FindPredicate(goal_name);
  if (!goal || !result.program->IsIdb(*goal)) {
    if (diagnostics) {
      // Point at the first occurrence of the goal predicate in some rule
      // body (the usual mistake: the goal only ever appears extensionally)
      // so the failure carries a source position when one exists.
      SourceLoc loc;
      if (goal) {
        const auto& rules = result.program->rules();
        for (int ri = 0; ri < static_cast<int>(rules.size()) && loc.rule < 0;
             ++ri) {
          const Rule& r = rules[ri];
          for (int ai = 0; ai < static_cast<int>(r.body.size()); ++ai) {
            if (r.body[ai].pred == *goal) {
              loc.rule = ri;
              loc.atoms = {ai};
              loc.line = r.line;
              loc.col = r.col;
              break;
            }
          }
        }
      }
      diagnostics->push_back(MakeDiagnostic(
          Severity::kError, "goal",
          "goal predicate " + goal_name + " has no rules", loc));
    }
    return std::nullopt;
  }
  return DatalogQuery(std::move(*result.program), *goal);
}

std::optional<UCQ> ParseUcq(const std::string& text,
                            const VocabularyPtr& vocab, std::string* error) {
  ParseResult result = ParseProgram(text, vocab);
  if (!result.ok()) {
    if (error) *error = result.error;
    return std::nullopt;
  }
  const Program& prog = *result.program;
  if (prog.rules().empty()) {
    if (error) *error = "no rules";
    return std::nullopt;
  }
  PredId head = prog.rules().front().head.pred;
  UCQ ucq(vocab);
  for (const Rule& r : prog.rules()) {
    if (r.head.pred != head) {
      if (error) *error = "UCQ rules must share one head predicate";
      return std::nullopt;
    }
    for (const QAtom& a : r.body) {
      if (prog.IsIdb(a.pred)) {
        if (error) *error = "UCQ body uses an intensional predicate";
        return std::nullopt;
      }
    }
    CQ cq(vocab);
    for (size_t v = 0; v < r.num_vars(); ++v) cq.AddVar(r.var_names[v]);
    for (const QAtom& a : r.body) cq.AddAtom(a);
    cq.SetFreeVars(r.head.args);
    ucq.AddDisjunct(std::move(cq));
  }
  return ucq;
}

std::optional<CQ> ParseCq(const std::string& text, const VocabularyPtr& vocab,
                          std::string* error) {
  auto ucq = ParseUcq(text, vocab, error);
  if (!ucq) return std::nullopt;
  if (ucq->disjuncts().size() != 1) {
    if (error) *error = "expected exactly one rule";
    return std::nullopt;
  }
  return ucq->disjuncts().front();
}

std::optional<Instance> ParseInstance(const std::string& text,
                                      const VocabularyPtr& vocab,
                                      std::vector<Diagnostic>* diagnostics) {
  // Reuse the rule parser: each fact is a bodiless "rule head". The rule
  // grammar requires a body, so parse fact statements manually with the
  // same token shapes.
  Instance inst(vocab);
  std::unordered_map<std::string, ElemId> elems;
  size_t pos = 0;
  auto skip_ws = [&]() {
    while (pos < text.size()) {
      if (text[pos] == '#') {
        while (pos < text.size() && text[pos] != '\n') ++pos;
      } else if (std::isspace(static_cast<unsigned char>(text[pos]))) {
        ++pos;
      } else {
        break;
      }
    }
  };
  auto ident = [&]() -> std::optional<std::string> {
    skip_ws();
    size_t start = pos;
    while (pos < text.size() &&
           (std::isalnum(static_cast<unsigned char>(text[pos])) ||
            text[pos] == '_' || text[pos] == '\'')) {
      ++pos;
    }
    if (pos == start) return std::nullopt;
    return text.substr(start, pos - start);
  };
  auto eat = [&](char c) {
    skip_ws();
    if (pos < text.size() && text[pos] == c) {
      ++pos;
      return true;
    }
    return false;
  };
  auto fail = [&](const std::string& check, const std::string& msg) {
    if (diagnostics) {
      SourceLoc loc;
      LineColAt(text, pos, &loc.line, &loc.col);
      diagnostics->push_back(
          MakeDiagnostic(Severity::kError, check, msg, loc));
    }
    return std::optional<Instance>();
  };
  skip_ws();
  while (pos < text.size()) {
    auto pred_name = ident();
    if (!pred_name) return fail("parse", "expected predicate name");
    std::vector<ElemId> args;
    if (eat('(')) {
      if (!eat(')')) {
        while (true) {
          auto elem_name = ident();
          if (!elem_name) return fail("parse", "expected element name");
          auto it = elems.find(*elem_name);
          if (it == elems.end()) {
            it = elems.emplace(*elem_name, inst.AddElement(*elem_name)).first;
          }
          args.push_back(it->second);
          if (eat(')')) break;
          if (!eat(',')) return fail("parse", "expected ',' or ')'");
        }
      }
    }
    auto existing = vocab->FindPredicate(*pred_name);
    if (existing &&
        vocab->arity(*existing) != static_cast<int>(args.size())) {
      return fail("arity", "arity mismatch for predicate " + *pred_name);
    }
    PredId pred =
        vocab->AddPredicate(*pred_name, static_cast<int>(args.size()));
    inst.AddFact(pred, args);
    if (!eat('.')) return fail("parse", "expected '.'");
    skip_ws();
  }
  return inst;
}

std::optional<StreamParse> ParseStream(const std::string& text,
                                       const VocabularyPtr& vocab,
                                       const Instance& base,
                                       std::vector<Diagnostic>* diagnostics) {
  StreamParse out;
  std::unordered_map<std::string, ElemId> elems;
  for (ElemId e = 0; e < base.num_elements(); ++e) {
    const std::string& name = base.element_name(e);
    if (!name.empty()) elems.emplace(name, e);
  }
  ElemId next_elem = static_cast<ElemId>(base.num_elements());

  std::istringstream in(text);
  std::string line;
  int lineno = 0;
  size_t pos = 0;
  auto skip_ws = [&]() {
    while (pos < line.size()) {
      if (line[pos] == '#') {
        pos = line.size();
      } else if (std::isspace(static_cast<unsigned char>(line[pos]))) {
        ++pos;
      } else {
        break;
      }
    }
  };
  auto ident = [&]() -> std::optional<std::string> {
    skip_ws();
    size_t start = pos;
    while (pos < line.size() &&
           (std::isalnum(static_cast<unsigned char>(line[pos])) ||
            line[pos] == '_' || line[pos] == '\'')) {
      ++pos;
    }
    if (pos == start) return std::nullopt;
    return line.substr(start, pos - start);
  };
  auto eat = [&](char c) {
    skip_ws();
    if (pos < line.size() && line[pos] == c) {
      ++pos;
      return true;
    }
    return false;
  };
  auto fail = [&](const std::string& check, const std::string& msg) {
    if (diagnostics) {
      SourceLoc loc;
      loc.line = lineno;
      loc.col = static_cast<int>(pos) + 1;
      diagnostics->push_back(
          MakeDiagnostic(Severity::kError, check, msg, loc));
    }
    return std::optional<StreamParse>();
  };

  while (std::getline(in, line)) {
    ++lineno;
    pos = 0;
    skip_ws();
    if (pos >= line.size()) continue;
    StreamBatch batch;
    batch.line = lineno;
    while (pos < line.size()) {
      char sign = line[pos];
      if (sign != '+' && sign != '-') {
        return fail("parse", "expected '+' or '-'");
      }
      ++pos;
      auto pred_name = ident();
      if (!pred_name) return fail("parse", "expected predicate name");
      std::vector<ElemId> args;
      if (eat('(')) {
        if (!eat(')')) {
          while (true) {
            auto elem_name = ident();
            if (!elem_name) return fail("parse", "expected element name");
            auto it = elems.find(*elem_name);
            if (it == elems.end()) {
              it = elems.emplace(*elem_name, next_elem++).first;
              out.new_elements.push_back(*elem_name);
            }
            args.push_back(it->second);
            if (eat(')')) break;
            if (!eat(',')) return fail("parse", "expected ',' or ')'");
          }
        }
      }
      auto existing = vocab->FindPredicate(*pred_name);
      if (existing &&
          vocab->arity(*existing) != static_cast<int>(args.size())) {
        return fail("arity", "arity mismatch for predicate " + *pred_name);
      }
      PredId pred =
          vocab->AddPredicate(*pred_name, static_cast<int>(args.size()));
      (sign == '+' ? batch.inserts : batch.deletes)
          .push_back(Fact(pred, std::move(args)));
      if (!eat('.')) return fail("parse", "expected '.'");
      skip_ws();
    }
    out.batches.push_back(std::move(batch));
  }
  return out;
}

}  // namespace mondet
