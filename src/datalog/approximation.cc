#include "datalog/approximation.h"

#include <algorithm>
#include <unordered_map>

namespace mondet {

namespace {

/// A derivation-tree skeleton: a rule index plus one child per IDB body
/// atom (in body order).
struct Tree {
  size_t rule = 0;
  std::vector<Tree> children;

  int Depth() const {
    int d = 0;
    for (const Tree& c : children) d = std::max(d, c.Depth());
    return d + 1;
  }
};

/// Union-find over provisional element ids, used to honor repeated head
/// variables during materialization.
class Dsu {
 public:
  int Make() {
    parent_.push_back(static_cast<int>(parent_.size()));
    return parent_.back();
  }
  int Find(int x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void Union(int a, int b) { parent_[Find(a)] = Find(b); }
  size_t size() const { return parent_.size(); }

 private:
  std::vector<int> parent_;
};

/// Enumerates derivation trees for `pred` of depth <= max_depth; the
/// callback returns false to stop. Returns false iff stopped.
bool EmitTrees(const Program& prog, PredId pred, int max_depth,
               const std::function<bool(const Tree&)>& cb) {
  if (max_depth <= 0) return true;
  for (size_t ri : prog.RulesFor(pred)) {
    const Rule& rule = prog.rules()[ri];
    std::vector<PredId> child_preds;
    for (const QAtom& a : rule.body) {
      if (prog.IsIdb(a.pred)) child_preds.push_back(a.pred);
    }
    Tree tree;
    tree.rule = ri;
    tree.children.resize(child_preds.size());
    std::function<bool(size_t)> rec = [&](size_t idx) -> bool {
      if (idx == child_preds.size()) return cb(tree);
      return EmitTrees(prog, child_preds[idx], max_depth - 1,
                       [&](const Tree& child) {
                         tree.children[idx] = child;
                         return rec(idx + 1);
                       });
    };
    if (!rec(0)) return false;
  }
  return true;
}

void MaterializeNode(const Program& prog, const Tree& tree,
                     const std::vector<int>& head_args, Dsu& dsu,
                     std::vector<std::pair<PredId, std::vector<int>>>& facts) {
  const Rule& rule = prog.rules()[tree.rule];
  std::vector<int> var_elem(rule.num_vars(), -1);
  for (size_t i = 0; i < rule.head.args.size(); ++i) {
    VarId v = rule.head.args[i];
    if (var_elem[v] < 0) {
      var_elem[v] = head_args[i];
    } else {
      dsu.Union(var_elem[v], head_args[i]);
    }
  }
  auto elem_of = [&](VarId v) {
    if (var_elem[v] < 0) var_elem[v] = dsu.Make();
    return var_elem[v];
  };
  size_t child_idx = 0;
  for (const QAtom& atom : rule.body) {
    std::vector<int> args;
    args.reserve(atom.args.size());
    for (VarId v : atom.args) args.push_back(elem_of(v));
    if (prog.IsIdb(atom.pred)) {
      MaterializeNode(prog, tree.children[child_idx++], args, dsu, facts);
    } else {
      facts.emplace_back(atom.pred, std::move(args));
    }
  }
}

Expansion Materialize(const Program& prog, PredId goal, const Tree& tree) {
  Dsu dsu;
  int arity = prog.vocab()->arity(goal);
  std::vector<int> frontier;
  frontier.reserve(arity);
  for (int i = 0; i < arity; ++i) frontier.push_back(dsu.Make());
  std::vector<std::pair<PredId, std::vector<int>>> facts;
  MaterializeNode(prog, tree, frontier, dsu, facts);

  Expansion e(prog.vocab());
  std::unordered_map<int, ElemId> compact;
  auto elem_of = [&](int provisional) {
    int root = dsu.Find(provisional);
    auto it = compact.find(root);
    if (it != compact.end()) return it->second;
    ElemId id = e.inst.AddElement();
    compact.emplace(root, id);
    return id;
  };
  for (const auto& [pred, args] : facts) {
    std::vector<ElemId> elems;
    elems.reserve(args.size());
    for (int a : args) elems.push_back(elem_of(a));
    e.inst.AddFact(pred, elems);
  }
  for (int f : frontier) e.frontier.push_back(elem_of(f));
  e.depth = tree.Depth();
  return e;
}

}  // namespace

bool EnumeratePredExpansions(
    const Program& program, PredId pred, int max_depth, size_t max_count,
    const std::function<bool(const Expansion&)>& cb) {
  size_t count = 0;
  bool exhaustive = true;
  EmitTrees(program, pred, max_depth, [&](const Tree& tree) {
    if (count >= max_count) {
      exhaustive = false;
      return false;
    }
    ++count;
    Expansion e = Materialize(program, pred, tree);
    if (!cb(e)) {
      exhaustive = false;
      return false;
    }
    return true;
  });
  return exhaustive;
}

bool EnumerateExpansions(const DatalogQuery& query, int max_depth,
                         size_t max_count,
                         const std::function<bool(const Expansion&)>& cb) {
  return EnumeratePredExpansions(query.program, query.goal, max_depth,
                                 max_count, cb);
}

CQ ExpansionToCq(const Expansion& e) {
  CQ cq(e.inst.vocab());
  for (size_t i = 0; i < e.inst.num_elements(); ++i) {
    cq.AddVar(e.inst.element_name(static_cast<ElemId>(i)));
  }
  for (uint32_t g = 0; g < e.inst.num_facts(); ++g) {
    const FactView f = e.inst.ViewAt(g);
    cq.AddAtom(f.pred, std::vector<VarId>(f.args.begin(), f.args.end()));
  }
  cq.SetFreeVars(std::vector<VarId>(e.frontier.begin(), e.frontier.end()));
  return cq;
}

}  // namespace mondet
