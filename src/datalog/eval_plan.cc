#include "datalog/eval_plan.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <sstream>
#include <thread>
#include <unordered_map>

#include "base/check.h"
#include "base/homomorphism.h"
#include "base/scc.h"

namespace mondet {

void EvalStats::Accumulate(const EvalStats& other) {
  iterations += other.iterations;
  facts_derived += other.facts_derived;
  join_probes += other.join_probes;
  wall_seconds += other.wall_seconds;
  strata.insert(strata.end(), other.strata.begin(), other.strata.end());
}

std::string EvalStats::Summary() const {
  std::ostringstream os;
  os << "iters=" << iterations << " derived=" << facts_derived
     << " probes=" << join_probes << " strata=" << strata.size()
     << " wall_ms=" << wall_seconds * 1000.0;
  return os.str();
}

int ResolveEvalThreads(int requested) {
  if (requested > 0) return requested;
  if (const char* env = std::getenv("MONDET_THREADS")) {
    int n = std::atoi(env);
    if (n > 0) return n;
  }
  unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

namespace {

double SecondsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

CompiledProgram::CompiledProgram(const Program& program) : program_(program) {
  // Dense node ids for the IDB predicates, sorted for determinism.
  std::vector<PredId> idbs(program_.Idbs().begin(), program_.Idbs().end());
  std::sort(idbs.begin(), idbs.end());
  std::unordered_map<PredId, int> node_of;
  for (size_t i = 0; i < idbs.size(); ++i) {
    node_of[idbs[i]] = static_cast<int>(i);
  }
  // Edge P -> Q when Q occurs in the body of a rule with head P.
  std::vector<std::vector<int>> adj(idbs.size());
  for (const Rule& rule : program_.rules()) {
    int from = node_of.at(rule.head.pred);
    for (const QAtom& a : rule.body) {
      auto it = node_of.find(a.pred);
      if (it != node_of.end()) adj[from].push_back(it->second);
    }
  }
  int num_sccs = 0;
  std::vector<int> scc = SccIds(idbs.size(), adj, &num_sccs);
  strata_.resize(num_sccs);
  for (size_t i = 0; i < idbs.size(); ++i) {
    strata_[scc[i]].preds.insert(idbs[i]);
  }

  for (const Rule& rule : program_.rules()) {
    RulePlan plan;
    plan.head = rule.head;
    plan.body = rule.body;
    plan.num_vars = rule.num_vars();
    int stratum = scc[node_of.at(rule.head.pred)];
    const auto& stratum_preds = strata_[stratum].preds;
    std::vector<std::vector<ElemId>> atom_vars;
    atom_vars.reserve(rule.body.size());
    for (int i = 0; i < static_cast<int>(rule.body.size()); ++i) {
      const QAtom& a = rule.body[i];
      if (stratum_preds.count(a.pred)) plan.recursive_atoms.push_back(i);
      atom_vars.push_back(std::vector<ElemId>(a.args.begin(), a.args.end()));
    }
    // Join ordering for one delta seat (-1 = the initial full join): the
    // delta atom's variables start bound, the rest follow the shared
    // greedy heuristic. With no instance at hand, the relation-size
    // estimate just prefers EDB atoms, which stay fixed while the IDB
    // relations grow toward the fixpoint.
    auto order_excluding = [&](int skip) {
      std::vector<std::vector<ElemId>> sub;
      std::vector<uint32_t> back;
      std::vector<bool> bound(plan.num_vars, false);
      if (skip >= 0) {
        for (VarId v : rule.body[skip].args) bound[v] = true;
      }
      for (int i = 0; i < static_cast<int>(rule.body.size()); ++i) {
        if (i == skip) continue;
        sub.push_back(atom_vars[i]);
        back.push_back(static_cast<uint32_t>(i));
      }
      std::vector<uint32_t> sub_order = GreedyAtomOrder(
          sub, plan.num_vars,
          [&](size_t i) {
            return program_.IsIdb(rule.body[back[i]].pred) ? size_t{2}
                                                           : size_t{1};
          },
          std::move(bound));
      std::vector<uint32_t> order;
      order.reserve(sub_order.size());
      for (uint32_t s : sub_order) order.push_back(back[s]);
      return order;
    };
    plan.orders.push_back(order_excluding(-1));
    for (int i : plan.recursive_atoms) plan.orders.push_back(order_excluding(i));
    strata_[stratum].plans.push_back(static_cast<uint32_t>(plans_.size()));
    plans_.push_back(std::move(plan));
  }
}

std::vector<CompiledProgram::JoinOrderDesc> CompiledProgram::DescribePlans()
    const {
  // plans_ is built by iterating program_.rules() in order, so plan index
  // == rule index.
  std::vector<JoinOrderDesc> out;
  for (size_t pi = 0; pi < plans_.size(); ++pi) {
    const RulePlan& plan = plans_[pi];
    out.push_back({pi, -1, plan.orders[0]});
    for (size_t r = 0; r < plan.recursive_atoms.size(); ++r) {
      out.push_back({pi, plan.recursive_atoms[r], plan.orders[1 + r]});
    }
  }
  return out;
}

void CompiledProgram::Join(const RulePlan& plan,
                           const std::vector<uint32_t>& order, size_t depth,
                           std::vector<ElemId>& map, const Instance& target,
                           size_t* probes, std::vector<Fact>* out) const {
  if (depth == order.size()) {
    std::vector<ElemId> head_args;
    head_args.reserve(plan.head.args.size());
    for (VarId v : plan.head.args) head_args.push_back(map[v]);
    // Facts already in the target are filtered here; duplicates derived
    // within the same round are deduplicated at the merge barrier.
    if (!target.HasFact(plan.head.pred, head_args)) {
      out->push_back(Fact(plan.head.pred, std::move(head_args)));
    }
    return;
  }
  const QAtom& atom = plan.body[order[depth]];
  // Probe the tightest index available for the bound positions.
  const std::vector<uint32_t>* candidates = &target.FactsWith(atom.pred);
  int anchor = -1;
  for (int pos = 0; pos < static_cast<int>(atom.args.size()); ++pos) {
    ElemId img = map[atom.args[pos]];
    if (img == kNoElem) continue;
    const auto& idx = target.FactsWith(atom.pred, pos, img);
    if (anchor < 0 || idx.size() < candidates->size()) {
      candidates = &idx;
      anchor = pos;
    }
  }
  *probes += candidates->size();
  std::vector<VarId> bound_here;
  for (uint32_t fi : *candidates) {
    const Fact& tf = target.facts()[fi];
    bound_here.clear();
    bool ok = true;
    for (size_t pos = 0; pos < atom.args.size(); ++pos) {
      VarId v = atom.args[pos];
      if (map[v] == kNoElem) {
        map[v] = tf.args[pos];
        bound_here.push_back(v);
      } else if (map[v] != tf.args[pos]) {
        ok = false;
        break;
      }
    }
    if (ok) Join(plan, order, depth + 1, map, target, probes, out);
    for (VarId v : bound_here) map[v] = kNoElem;
  }
}

void CompiledProgram::RunItem(const WorkItem& item, const Instance& target,
                              size_t* probes, std::vector<Fact>* out) const {
  const RulePlan& plan = plans_[item.plan];
  std::vector<ElemId> map(plan.num_vars, kNoElem);
  if (item.rec < 0) {
    Join(plan, plan.orders[0], 0, map, target, probes, out);
    return;
  }
  const QAtom& delta_atom = plan.body[plan.recursive_atoms[item.rec]];
  const std::vector<uint32_t>& order = plan.orders[1 + item.rec];
  std::vector<VarId> bound_here;
  for (const Fact& f : *item.delta) {
    bound_here.clear();
    bool ok = true;
    for (size_t pos = 0; pos < delta_atom.args.size(); ++pos) {
      VarId v = delta_atom.args[pos];
      if (map[v] == kNoElem) {
        map[v] = f.args[pos];
        bound_here.push_back(v);
      } else if (map[v] != f.args[pos]) {
        ok = false;
        break;
      }
    }
    if (ok) Join(plan, order, 0, map, target, probes, out);
    for (VarId v : bound_here) map[v] = kNoElem;
  }
}

Instance CompiledProgram::Eval(const Instance& input, EvalStats* stats,
                               const EvalOptions& options) const {
  auto t_start = std::chrono::steady_clock::now();
  Instance result = input;
  const int nthreads = ResolveEvalThreads(options.num_threads);
  EvalStats run;

  // Runs one round of work items, merges their derivations into `result`
  // in item order — this makes the fact insertion order independent of
  // the thread count — and returns the newly added facts (the delta).
  auto run_round = [&](const std::vector<WorkItem>& items,
                       StratumStats* ss) {
    std::vector<std::vector<Fact>> derived(items.size());
    std::vector<size_t> probes(items.size(), 0);
    int workers = std::min<int>(nthreads, static_cast<int>(items.size()));
    if (workers > 1) {
      // Freeze the indexes so the fan-out only ever reads `result`.
      result.PrepareIndexes();
      std::vector<std::thread> pool;
      pool.reserve(workers);
      for (int t = 0; t < workers; ++t) {
        pool.emplace_back([&, t] {
          for (size_t i = t; i < items.size(); i += workers) {
            RunItem(items[i], result, &probes[i], &derived[i]);
          }
        });
      }
      for (std::thread& th : pool) th.join();
    } else {
      for (size_t i = 0; i < items.size(); ++i) {
        RunItem(items[i], result, &probes[i], &derived[i]);
      }
    }
    std::vector<Fact> added;
    for (size_t i = 0; i < items.size(); ++i) {
      ss->join_probes += probes[i];
      for (Fact& f : derived[i]) {
        if (result.AddFact(f)) added.push_back(std::move(f));
      }
    }
    ss->facts_derived += added.size();
    return added;
  };

  for (const Stratum& stratum : strata_) {
    StratumStats ss;
    auto t0 = std::chrono::steady_clock::now();
    // Initial round: every rule of the stratum joins the full current
    // result (lower strata are saturated; input IDB facts participate,
    // as in the paper's Prop. 4 usage).
    std::vector<WorkItem> round0;
    round0.reserve(stratum.plans.size());
    for (uint32_t pi : stratum.plans) round0.push_back({pi, -1, nullptr});
    ss.iterations = 1;
    std::vector<Fact> delta = run_round(round0, &ss);
    // Delta rounds: each new derivation must use a previous-round fact in
    // some recursive body atom.
    while (!delta.empty()) {
      std::unordered_map<PredId, std::vector<Fact>> by_pred;
      for (Fact& f : delta) by_pred[f.pred].push_back(std::move(f));
      std::vector<WorkItem> items;
      for (uint32_t pi : stratum.plans) {
        const RulePlan& plan = plans_[pi];
        for (int r = 0; r < static_cast<int>(plan.recursive_atoms.size());
             ++r) {
          auto it = by_pred.find(plan.body[plan.recursive_atoms[r]].pred);
          if (it == by_pred.end()) continue;
          items.push_back({pi, r, &it->second});
        }
      }
      if (items.empty()) break;
      ++ss.iterations;
      delta = run_round(items, &ss);
    }
    ss.wall_seconds = SecondsSince(t0);
    run.iterations += ss.iterations;
    run.facts_derived += ss.facts_derived;
    run.join_probes += ss.join_probes;
    run.strata.push_back(ss);
  }
  run.wall_seconds = SecondsSince(t_start);
  if (stats) stats->Accumulate(run);
  return result;
}

}  // namespace mondet
