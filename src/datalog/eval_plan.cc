#include "datalog/eval_plan.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <thread>
#include <unordered_map>

#include "analysis/dataflow.h"
#include "base/check.h"
#include "base/homomorphism.h"
#include "base/scc.h"
#include "base/thread_pool.h"

namespace mondet {

void EvalStats::Accumulate(const EvalStats& other) {
  iterations += other.iterations;
  facts_derived += other.facts_derived;
  facts_retracted += other.facts_retracted;
  overdeleted += other.overdeleted;
  rederived += other.rederived;
  join_probes += other.join_probes;
  replans += other.replans;
  rules_pruned += other.rules_pruned;
  stats_applies += other.stats_applies;
  stats_facts_counted += other.stats_facts_counted;
  corrections_active = std::max(corrections_active, other.corrections_active);
  wall_seconds += other.wall_seconds;
  strata.insert(strata.end(), other.strata.begin(), other.strata.end());
}

std::string EvalStats::Summary() const {
  std::ostringstream os;
  os << "iters=" << iterations << " derived=" << facts_derived;
  if (facts_retracted + overdeleted + rederived > 0) {
    os << " retracted=" << facts_retracted << " overdeleted=" << overdeleted
       << " rederived=" << rederived;
  }
  os << " probes=" << join_probes << " replans=" << replans;
  if (rules_pruned > 0) os << " pruned=" << rules_pruned;
  os << " stats_applies=" << stats_applies
     << " stats_counted=" << stats_facts_counted
     << " corrections=" << corrections_active
     << " strata=" << strata.size() << " wall_ms=" << wall_seconds * 1000.0;
  return os.str();
}

int ResolveEvalThreads(int requested) {
  if (requested > 0) return requested;
  if (const char* env = std::getenv("MONDET_THREADS")) {
    int n = std::atoi(env);
    if (n > 0) return n;
  }
  unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

namespace {

/// Deliberate fault injection for the fuzz harness' self-test
/// (scripts/check_fuzz_fault.sh): with MONDET_FAULT=skip-delta-seat the
/// last recursive delta seat of every rule is never scheduled — the
/// classic semi-naive omission (a recursive atom whose deltas are never
/// joined), which the differential oracles must catch and shrink.
bool FaultSkipDeltaSeat() {
  static const bool on = [] {
    const char* env = std::getenv("MONDET_FAULT");
    return env != nullptr && std::strcmp(env, "skip-delta-seat") == 0;
  }();
  return on;
}

}  // namespace

namespace {

double SecondsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

std::string FormatEst(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3g", v);
  return buf;
}

}  // namespace

CompiledProgram::CompiledProgram(const Program& program) : program_(program) {
  // Dense node ids for the IDB predicates, sorted for determinism.
  std::vector<PredId> idbs(program_.Idbs().begin(), program_.Idbs().end());
  std::sort(idbs.begin(), idbs.end());
  std::unordered_map<PredId, int> node_of;
  for (size_t i = 0; i < idbs.size(); ++i) {
    node_of[idbs[i]] = static_cast<int>(i);
  }
  // Edge P -> Q when Q occurs in the body of a rule with head P.
  std::vector<std::vector<int>> adj(idbs.size());
  for (const Rule& rule : program_.rules()) {
    int from = node_of.at(rule.head.pred);
    for (const QAtom& a : rule.body) {
      auto it = node_of.find(a.pred);
      if (it != node_of.end()) adj[from].push_back(it->second);
    }
  }
  int num_sccs = 0;
  std::vector<int> scc = SccIds(idbs.size(), adj, &num_sccs);
  strata_.resize(num_sccs);
  for (size_t i = 0; i < idbs.size(); ++i) {
    strata_[scc[i]].preds.insert(idbs[i]);
  }

  for (const Rule& rule : program_.rules()) {
    RulePlan plan;
    plan.head = rule.head;
    plan.body = rule.body;
    plan.num_vars = rule.num_vars();
    int stratum = scc[node_of.at(rule.head.pred)];
    const auto& stratum_preds = strata_[stratum].preds;
    for (int i = 0; i < static_cast<int>(rule.body.size()); ++i) {
      if (stratum_preds.count(rule.body[i].pred)) {
        plan.recursive_atoms.push_back(i);
      }
    }
    // Fixed planning inputs per delta seat (seat 0 = the initial full
    // join), so re-planning during a run rebuilds none of this.
    plan.seats.resize(1 + plan.recursive_atoms.size());
    for (size_t s = 0; s < plan.seats.size(); ++s) {
      SeatShape& shape = plan.seats[s];
      const int skip = s == 0 ? -1 : plan.recursive_atoms[s - 1];
      shape.bound0.assign(plan.num_vars, false);
      if (skip >= 0) {
        for (VarId v : rule.body[skip].args) shape.bound0[v] = true;
      }
      for (int i = 0; i < static_cast<int>(rule.body.size()); ++i) {
        if (i == skip) continue;
        const QAtom& a = rule.body[i];
        shape.sub.push_back(std::vector<ElemId>(a.args.begin(), a.args.end()));
        shape.back.push_back(static_cast<uint32_t>(i));
      }
    }
    // Compile-time join orders, one per seat. With no instance at hand,
    // the relation-size estimate just prefers EDB atoms, which stay fixed
    // while the IDB relations grow toward the fixpoint; BindStats /
    // EvalOptions::stats_planner replace these with selectivity-scored
    // orders.
    for (size_t s = 0; s < plan.seats.size(); ++s) {
      plan.orders.push_back(PlanOrder(plan, s, nullptr, nullptr));
      plan.est_rows.emplace_back();
    }
    strata_[stratum].plans.push_back(static_cast<uint32_t>(plans_.size()));
    if (!plan.recursive_atoms.empty()) strata_[stratum].recursive = true;
    plans_.push_back(std::move(plan));
  }
  for (size_t si = 0; si < strata_.size(); ++si) {
    for (PredId p : strata_[si].preds) stratum_of_[p] = si;
  }
}

std::vector<uint32_t> CompiledProgram::PlanOrder(
    const RulePlan& plan, size_t seat, const Stats* stats,
    std::vector<double>* est_rows) const {
  const SeatShape& shape = plan.seats[seat];
  std::vector<uint32_t> sub_order;
  if (stats != nullptr) {
    sub_order = SelectivityAtomOrder(
        shape.sub, plan.num_vars,
        [&](size_t i, const std::vector<bool>& b) {
          return stats->EstimateMatches(plan.body[shape.back[i]].pred,
                                        shape.sub[i], b);
        },
        shape.bound0, est_rows);
  } else {
    sub_order = GreedyAtomOrder(
        shape.sub, plan.num_vars,
        [&](size_t i) {
          return program_.IsIdb(plan.body[shape.back[i]].pred) ? size_t{2}
                                                               : size_t{1};
        },
        shape.bound0);
    if (est_rows) est_rows->clear();
  }
  std::vector<uint32_t> order;
  order.reserve(sub_order.size());
  for (uint32_t s : sub_order) order.push_back(shape.back[s]);
  return order;
}

void CompiledProgram::BindStats(Stats stats) {
  bound_stats_ = std::move(stats);
  for (RulePlan& plan : plans_) {
    for (size_t s = 0; s < plan.seats.size(); ++s) {
      plan.orders[s] = PlanOrder(plan, s, &*bound_stats_, &plan.est_rows[s]);
    }
  }
}

std::vector<CompiledProgram::JoinOrderDesc> CompiledProgram::DescribePlans()
    const {
  // plans_ is built by iterating program_.rules() in order, so plan index
  // == rule index.
  std::vector<JoinOrderDesc> out;
  for (size_t pi = 0; pi < plans_.size(); ++pi) {
    const RulePlan& plan = plans_[pi];
    out.push_back({pi, -1, plan.orders[0], plan.est_rows[0]});
    for (size_t r = 0; r < plan.recursive_atoms.size(); ++r) {
      out.push_back({pi, plan.recursive_atoms[r], plan.orders[1 + r],
                     plan.est_rows[1 + r]});
    }
  }
  return out;
}

std::string CompiledProgram::DescribePlansText() const {
  const Vocabulary& vocab = *program_.vocab();
  std::ostringstream os;
  for (const JoinOrderDesc& d : DescribePlans()) {
    const RulePlan& plan = plans_[d.rule];
    os << "rule " << d.rule << " (" << vocab.name(plan.head.pred) << ") ";
    if (d.delta_atom < 0) {
      os << "full:";
    } else {
      os << "delta[" << d.delta_atom << ":"
         << vocab.name(plan.body[d.delta_atom].pred) << "]:";
    }
    for (size_t k = 0; k < d.order.size(); ++k) {
      os << " " << vocab.name(plan.body[d.order[k]].pred);
      if (!d.est_rows.empty()) os << "(~" << FormatEst(d.est_rows[k]) << ")";
    }
    os << "\n";
  }
  if (bound_stats_ && bound_stats_->ActiveCorrections() > 0) {
    os << "corrections:";
    for (PredId p = 0; p < vocab.size(); ++p) {
      double c = bound_stats_->correction(p);
      if (c != 1.0) os << " " << vocab.name(p) << " x" << FormatEst(c);
      for (int pos = 0; pos < vocab.arity(p); ++pos) {
        double pcv = bound_stats_->pos_correction(p, static_cast<size_t>(pos));
        if (pcv != 1.0) {
          os << " " << vocab.name(p) << "[" << pos << "] x" << FormatEst(pcv);
        }
      }
    }
    os << "\n";
  }
  return os.str();
}

void CompiledProgram::Join(const RulePlan& plan,
                           const std::vector<uint32_t>& order, size_t depth,
                           std::vector<ElemId>& map, const Instance& target,
                           size_t* probes, std::vector<size_t>* step_rows,
                           DerivedBuffer* out) const {
  if (depth == order.size()) {
    std::vector<ElemId> head_args;
    head_args.reserve(plan.head.args.size());
    for (VarId v : plan.head.args) head_args.push_back(map[v]);
    // Facts already in the target are filtered here; duplicates derived
    // within the same round are deduplicated at the merge barrier.
    if (!target.HasFact(plan.head.pred, head_args)) {
      out->args.insert(out->args.end(), head_args.begin(), head_args.end());
      ++out->count;
    }
    return;
  }
  const QAtom& atom = plan.body[order[depth]];
  // Probe the tightest index available for the bound positions; a fully
  // unbound atom falls back to scanning every row of the predicate.
  std::span<const uint32_t> candidates;
  int anchor = -1;
  for (int pos = 0; pos < static_cast<int>(atom.args.size()); ++pos) {
    ElemId img = map[atom.args[pos]];
    if (img == kNoElem) continue;
    const std::span<const uint32_t> idx =
        target.RowsWith(atom.pred, pos, img);
    if (anchor < 0 || idx.size() < candidates.size()) {
      candidates = idx;
      anchor = pos;
    }
  }
  std::vector<VarId> bound_here;
  auto try_row = [&](uint32_t row) {
    const std::span<const ElemId> targs = target.Args(atom.pred, row);
    bound_here.clear();
    bool ok = true;
    for (size_t pos = 0; pos < atom.args.size(); ++pos) {
      VarId v = atom.args[pos];
      if (map[v] == kNoElem) {
        map[v] = targs[pos];
        bound_here.push_back(v);
      } else if (map[v] != targs[pos]) {
        ok = false;
        break;
      }
    }
    if (ok) {
      if (step_rows) ++(*step_rows)[depth];
      Join(plan, order, depth + 1, map, target, probes, step_rows, out);
    }
    for (VarId v : bound_here) map[v] = kNoElem;
  };
  if (anchor < 0) {
    const uint32_t n = target.NumRows(atom.pred);
    *probes += n;
    for (uint32_t row = 0; row < n; ++row) try_row(row);
  } else {
    *probes += candidates.size();
    for (uint32_t row : candidates) try_row(row);
  }
}

void CompiledProgram::RunItem(const WorkItem& item, const Instance& target,
                              size_t* probes, DerivedBuffer* out) const {
  if (item.kernel != nullptr) {
    KernelCounters c{0, item.step_rows, item.seedings};
    if (item.rec < 0) {
      RunKernelFull(*item.kernel, target, c, out);
    } else {
      RunKernelDelta(*item.kernel, target, *item.delta_rows, c, out);
    }
    *probes += c.probes;
    return;
  }
  const RulePlan& plan = plans_[item.plan];
  const std::vector<uint32_t>& order = *item.order;
  std::vector<ElemId> map(plan.num_vars, kNoElem);
  if (item.rec < 0) {
    if (item.seedings) ++(*item.seedings);
    Join(plan, order, 0, map, target, probes, item.step_rows, out);
    return;
  }
  const QAtom& delta_atom = plan.body[plan.recursive_atoms[item.rec]];
  std::vector<VarId> bound_here;
  for (uint32_t row : *item.delta_rows) {
    const std::span<const ElemId> fargs = target.Args(item.delta_pred, row);
    bound_here.clear();
    bool ok = true;
    for (size_t pos = 0; pos < delta_atom.args.size(); ++pos) {
      VarId v = delta_atom.args[pos];
      if (map[v] == kNoElem) {
        map[v] = fargs[pos];
        bound_here.push_back(v);
      } else if (map[v] != fargs[pos]) {
        ok = false;
        break;
      }
    }
    if (ok) {
      if (item.seedings) ++(*item.seedings);
      Join(plan, order, 0, map, target, probes, item.step_rows, out);
    }
    for (VarId v : bound_here) map[v] = kNoElem;
  }
}

Instance CompiledProgram::Eval(const Instance& input, EvalStats* stats,
                               const EvalOptions& options) const {
  auto t_start = std::chrono::steady_clock::now();
  Instance result = input;
  const int nthreads = ResolveEvalThreads(options.num_threads);
  EvalStats run;

  // Abstract-interpretation pruning: the emptiness/constant-set fixpoint
  // seeded from `input` overapproximates the concrete fixpoint, so a rule
  // whose body is abstractly unsatisfiable can never fire in any round.
  // Skipping its seats derives nothing less, in the same order, with the
  // same counts — only wasted join work disappears. O(program size) per
  // run, the same order as the initial Stats::Collect below.
  std::vector<bool> dead;
  if (options.dataflow_prune &&
      input.num_facts() >= options.dataflow_min_facts) {
    dead = DeadRuleMask(program_, input);
    for (bool d : dead) {
      if (d) ++run.rules_pruned;
    }
  }
  auto pruned = [&](uint32_t plan_index) {
    return !dead.empty() && dead[plan_index];
  };

  // Which statistics drive planning this run. With the stats planner on
  // (the default) and no caller-supplied snapshot, collect live stats
  // from the evolving result and re-plan as relations grow; a snapshot
  // plans every stratum once (stale-tolerant); with the planner off —
  // or on an input too small for planning to pay for itself — the
  // compile-time orders run as-is. Live statistics are maintained
  // incrementally by default: each merge barrier folds its added facts
  // into the snapshot (Stats::Apply, O(delta)), so the counts are exact
  // everywhere and no per-stratum recount runs.
  const bool use_stats =
      options.stats_planner &&
      (options.stats != nullptr ||
       input.num_facts() >= options.stats_min_facts);
  // Kernel lowering is a per-(rule, seat) fixed cost; below the size
  // gate the generic interpreter is strictly cheaper (kernel_min_facts
  // doc in eval_plan.h). The second clause scales the gate with program
  // size: lowering runs once per rule-seat, so a many-hundred-rule
  // program over few facts (the Thm 9 separator's machine simulations)
  // pays hundreds of lowerings that no seat's row volume can amortize —
  // kernels engage only when the input carries at least a few facts per
  // rule. The gate reads the *input* size, not the running fixpoint, so
  // a whole Eval is one plane or the other — switching planes mid-run
  // would be correct (they are bit-identical) but would waste the
  // already-built kernels.
  const bool use_kernels =
      options.compiled_kernels &&
      input.num_facts() >= options.kernel_min_facts &&
      (options.kernel_min_facts == 0 ||
       input.num_facts() >= plans_.size() * 4);
  const bool live_stats = use_stats && options.stats == nullptr;
  const bool incremental = live_stats && options.stats_incremental;
  // Feedback needs measurements (plan_stats) and a mutable model (live
  // planning); with both, measured-vs-estimated row ratios fold into
  // per-predicate correction factors at every re-plan and stratum close.
  const bool feedback_on =
      live_stats && options.plan_stats && options.plan_feedback;
  Stats live;
  if (live_stats) {
    live = Stats::Collect(result);
    if (feedback_on && options.feedback) {
      live.ImportCorrections(*options.feedback);
    }
  }
  const Stats* planning =
      use_stats ? (options.stats ? options.stats : &live) : nullptr;

  // Runs one round of work items, merges their derivations into `result`
  // in item order — this makes the fact insertion order independent of
  // the thread count — and returns the newly added facts (the delta) as
  // global fact ids into `result`.
  auto run_round = [&](const std::vector<WorkItem>& items,
                       StratumStats* ss) {
    std::vector<DerivedBuffer> derived(items.size());
    std::vector<size_t> probes(items.size(), 0);
    int workers = std::min<int>(nthreads, static_cast<int>(items.size()));
    if (workers > 1) {
      // Freeze the indexes so the fan-out only ever reads `result`.
      result.PrepareIndexes();
      ThreadPool::Shared().ParallelFor(
          items.size(), workers, [&](size_t i, int worker) {
            (void)worker;
            RunItem(items[i], result, &probes[i], &derived[i]);
          });
    } else {
      for (size_t i = 0; i < items.size(); ++i) {
        RunItem(items[i], result, &probes[i], &derived[i]);
      }
    }
    std::vector<uint32_t> added;
    for (size_t i = 0; i < items.size(); ++i) {
      ss->join_probes += probes[i];
      const RulePlan& plan = plans_[items[i].plan];
      const size_t ar = plan.head.args.size();
      const ElemId* a = derived[i].args.data();
      for (size_t j = 0; j < derived[i].count; ++j) {
        if (result.AddFact(plan.head.pred,
                           std::span<const ElemId>(a + j * ar, ar))) {
          added.push_back(static_cast<uint32_t>(result.num_facts() - 1));
        }
      }
    }
    ss->facts_derived += added.size();
    if (incremental) {
      // The merge barrier is the one place facts enter `result`, so
      // applying each round's delta keeps the live counts exact for the
      // whole run at O(delta) cost.
      live.Apply(result, added);
      ++ss->stats_applies;
      ss->stats_facts_counted += added.size();
    }
    return added;
  };

  // Preds of the previous stratum, whose live counts go stale on entry to
  // the next one — only on the recount path; incremental maintenance
  // keeps every count exact at the merge barrier.
  std::vector<PredId> prev_preds;

  for (const Stratum& stratum : strata_) {
    StratumStats ss;
    auto t0 = std::chrono::steady_clock::now();
    std::vector<PredId> stratum_preds(stratum.preds.begin(),
                                      stratum.preds.end());
    std::sort(stratum_preds.begin(), stratum_preds.end());
    if (live_stats && !incremental && !prev_preds.empty()) {
      for (PredId p : prev_preds) {
        ss.stats_facts_counted += result.NumRows(p);
      }
      live.Refresh(result, prev_preds);
    }

    // The join orders this stratum runs with: per (plan-in-stratum, seat),
    // seat 0 = the initial full join, seat 1 + i = recursive atom i.
    // Planned from `planning` when set, else the compile-time orders.
    // `actual` accumulates measured per-step rows (plan_stats only) and
    // resets on re-plan so it always matches the order it was measured
    // under.
    struct SeatPlan {
      std::vector<uint32_t> order;
      std::vector<double> est;
      std::vector<size_t> actual;
      size_t seedings = 0;
      JoinKernel kernel;
      // Lazy lowering: 0 = not yet tried for the current order, 1 =
      // kernel valid, 2 = shape unsupported (interpreter). Reset to 0 on
      // every re-plan, since the kernel bakes the order in.
      uint8_t kernel_state = 0;
    };
    std::vector<std::vector<SeatPlan>> seats(stratum.plans.size());
    auto plan_seats = [&](bool initial) {
      for (size_t k = 0; k < stratum.plans.size(); ++k) {
        if (pruned(stratum.plans[k])) continue;  // dead rule: never seated
        const RulePlan& plan = plans_[stratum.plans[k]];
        auto& sp = seats[k];
        if (initial) sp.resize(1 + plan.recursive_atoms.size());
        // After round 0 the full join (seat 0) never runs again, so
        // re-planning skips it.
        for (size_t s = initial ? 0 : 1; s < sp.size(); ++s) {
          if (planning) {
            sp[s].order = PlanOrder(plan, s, planning, &sp[s].est);
          } else {
            sp[s].order = plan.orders[s];
            sp[s].est = plan.est_rows[s];
          }
          // The planned order invalidates any kernel lowered from the
          // previous one; kernel_for re-lowers on the seat's next run.
          sp[s].kernel_state = 0;
          if (options.plan_stats) {
            sp[s].actual.assign(sp[s].order.size(), 0);
            sp[s].seedings = 0;
          }
        }
      }
    };
    plan_seats(true);

    // Lowers seat (k, s)'s planned order into a compiled kernel on first
    // use, so evals whose seats never run (converged strata, empty delta
    // predicates, µs-scale instances) pay nothing. Called only from the
    // sequential work-item assembly, never from workers.
    auto kernel_for = [&](size_t k, size_t s) -> const JoinKernel* {
      SeatPlan& sp = seats[k][s];
      if (sp.kernel_state == 0) {
        const RulePlan& plan = plans_[stratum.plans[k]];
        if (use_kernels &&
            KernelSupported(plan.head, plan.body, plan.num_vars)) {
          const int seat_atom =
              s == 0 ? -1 : plan.recursive_atoms[s - 1];
          sp.kernel = BuildKernel(plan.head, plan.body, plan.num_vars,
                                  seat_atom, sp.order);
          sp.kernel_state = 1;
        } else {
          sp.kernel_state = 2;
        }
      }
      return sp.kernel_state == 1 ? &sp.kernel : nullptr;
    };

    // Feedback: compare each executed seat's per-step fanout against the
    // estimate it was planned under and fold the ratio into the stepped
    // atom's predicate correction (Stats::Observe). Estimates are per
    // seeding while the measured counters sum over seedings, so step 0
    // normalizes by the seeding count and later steps use the previous
    // step's rows as the denominator (which cancels it). Runs before
    // every re-plan (counters reset with the new order) and at stratum
    // close, so later plans in this very run see the corrections.
    auto fold_feedback = [&] {
      if (!feedback_on) return;
      for (size_t k = 0; k < stratum.plans.size(); ++k) {
        const RulePlan& plan = plans_[stratum.plans[k]];
        for (size_t s = 0; s < seats[k].size(); ++s) {
          SeatPlan& sp = seats[k][s];
          if (sp.seedings == 0 || sp.est.size() != sp.order.size()) continue;
          // Replay which variables are bound on entry to each step, so the
          // observed ratio lands on the stepped atom's *bound positions* —
          // the per-(pred,pos) correction factors the planner divides by.
          std::vector<bool> bound_var = plan.seats[s].bound0;
          for (size_t step = 0; step < sp.order.size(); ++step) {
            const QAtom& atom = plan.body[sp.order[step]];
            double est_prev = step == 0 ? 1.0 : sp.est[step - 1];
            double act_prev = step == 0
                                  ? static_cast<double>(sp.seedings)
                                  : static_cast<double>(sp.actual[step - 1]);
            // Zero rows upstream: the step never executed, no signal.
            if (!(est_prev > 0.0) || act_prev <= 0.0) break;
            std::vector<bool> mask(atom.args.size(), false);
            for (size_t pos = 0; pos < atom.args.size(); ++pos) {
              mask[pos] = bound_var[atom.args[pos]];
            }
            live.Observe(atom.pred, mask, sp.est[step] / est_prev,
                         static_cast<double>(sp.actual[step]) / act_prev);
            for (VarId v : atom.args) bound_var[v] = true;
          }
        }
      }
    };

    // Cardinalities the current orders were planned under; a stratum
    // relation doubling (or appearing) since then triggers a re-plan.
    std::vector<std::pair<PredId, size_t>> planned_card;
    if (live_stats) {
      planned_card.reserve(stratum_preds.size());
      for (PredId p : stratum_preds) {
        planned_card.emplace_back(p, result.NumRows(p));
      }
    }

    // Initial round: every rule of the stratum joins the full current
    // result (lower strata are saturated; input IDB facts participate,
    // as in the paper's Prop. 4 usage).
    std::vector<WorkItem> round0;
    round0.reserve(stratum.plans.size());
    for (size_t k = 0; k < stratum.plans.size(); ++k) {
      if (pruned(stratum.plans[k])) continue;
      WorkItem w;
      w.plan = stratum.plans[k];
      w.order = &seats[k][0].order;
      w.kernel = kernel_for(k, 0);
      if (options.plan_stats) {
        w.step_rows = &seats[k][0].actual;
        w.seedings = &seats[k][0].seedings;
      }
      round0.push_back(w);
    }
    ss.iterations = 1;
    std::vector<uint32_t> delta = run_round(round0, &ss);
    // Delta rounds: each new derivation must use a previous-round fact in
    // some recursive body atom.
    while (!delta.empty()) {
      if (live_stats) {
        // A stratum relation appearing or doubling since the last plan
        // invalidates its estimates — but below kReplanMinFacts the joins
        // it feeds are cheaper than the re-plan itself, so let it grow.
        constexpr size_t kReplanMinFacts = 16;
        bool replan = false;
        for (const auto& [p, card] : planned_card) {
          size_t cur = result.NumRows(p);
          if (cur != card && cur >= kReplanMinFacts &&
              (card == 0 || cur >= 2 * card)) {
            replan = true;
            break;
          }
        }
        if (replan) {
          fold_feedback();
          if (!incremental) {
            for (PredId p : stratum_preds) {
              ss.stats_facts_counted += result.NumRows(p);
            }
            live.Refresh(result, stratum_preds);
          }
          plan_seats(false);
          for (auto& [p, card] : planned_card) {
            card = result.NumRows(p);
          }
          ++ss.replans;
        }
      }
      // Partition the delta's global ids into per-predicate row lists —
      // the coordinates kernels and the interpreter consume directly.
      std::unordered_map<PredId, std::vector<uint32_t>> by_pred;
      for (uint32_t g : delta) {
        const auto [p, row] = result.Locate(g);
        by_pred[p].push_back(row);
      }
      std::vector<WorkItem> items;
      for (size_t k = 0; k < stratum.plans.size(); ++k) {
        const uint32_t pi = stratum.plans[k];
        if (pruned(pi)) continue;  // dead rule: no delta seats either
        const RulePlan& plan = plans_[pi];
        for (int r = 0; r < static_cast<int>(plan.recursive_atoms.size());
             ++r) {
          if (FaultSkipDeltaSeat() &&
              r == static_cast<int>(plan.recursive_atoms.size()) - 1) {
            continue;
          }
          auto it = by_pred.find(plan.body[plan.recursive_atoms[r]].pred);
          if (it == by_pred.end()) continue;
          WorkItem w;
          w.plan = pi;
          w.rec = r;
          w.delta_pred = it->first;
          w.delta_rows = &it->second;
          w.order = &seats[k][1 + r].order;
          w.kernel = kernel_for(k, 1 + r);
          if (options.plan_stats) {
            w.step_rows = &seats[k][1 + r].actual;
            w.seedings = &seats[k][1 + r].seedings;
          }
          items.push_back(w);
        }
      }
      if (items.empty()) break;
      ++ss.iterations;
      delta = run_round(items, &ss);
    }
    fold_feedback();
    if (options.plan_stats) {
      for (size_t k = 0; k < stratum.plans.size(); ++k) {
        const uint32_t pi = stratum.plans[k];
        if (pruned(pi)) continue;  // never seated, nothing measured
        const RulePlan& plan = plans_[pi];
        for (size_t s = 0; s < seats[k].size(); ++s) {
          JoinSeatStats j;
          j.rule = pi;
          j.delta_atom =
              s == 0 ? -1 : plan.recursive_atoms[s - 1];
          j.order = std::move(seats[k][s].order);
          j.est_rows = std::move(seats[k][s].est);
          j.actual_rows = std::move(seats[k][s].actual);
          j.seedings = seats[k][s].seedings;
          ss.seats.push_back(std::move(j));
        }
      }
    }
    ss.wall_seconds = SecondsSince(t0);
    run.iterations += ss.iterations;
    run.facts_derived += ss.facts_derived;
    run.join_probes += ss.join_probes;
    run.replans += ss.replans;
    run.stats_applies += ss.stats_applies;
    run.stats_facts_counted += ss.stats_facts_counted;
    run.strata.push_back(std::move(ss));
    prev_preds = std::move(stratum_preds);
  }
  if (live_stats) run.corrections_active = live.ActiveCorrections();
  if (feedback_on && options.feedback) {
    options.feedback->ImportCorrections(live);
  }
  run.wall_seconds = SecondsSince(t_start);
  if (stats) stats->Accumulate(run);
  return result;
}

namespace {

/// Binds the variables of `atom` to the argument tuple `args`, appending
/// every newly-bound variable to `bound`. Returns false on a clash (a
/// repeated variable or a pre-bound one disagreeing with `args`); the
/// caller unbinds `bound` either way.
bool BindArgs(const QAtom& atom, std::span<const ElemId> args,
              std::vector<ElemId>& map, std::vector<VarId>* bound) {
  for (size_t pos = 0; pos < atom.args.size(); ++pos) {
    VarId v = atom.args[pos];
    if (map[v] == kNoElem) {
      map[v] = args[pos];
      bound->push_back(v);
    } else if (map[v] != args[pos]) {
      return false;
    }
  }
  return true;
}

bool BindFact(const QAtom& atom, const Fact& f, std::vector<ElemId>& map,
              std::vector<VarId>* bound) {
  return BindArgs(atom, f.args, map, bound);
}

void Unbind(const std::vector<VarId>& bound, std::vector<ElemId>& map) {
  for (VarId v : bound) map[v] = kNoElem;
}

}  // namespace

bool CompiledProgram::MatchAtoms(
    const RulePlan& plan, int seat, size_t k,
    const std::vector<uint8_t>& read_old, const Instance& inst,
    const ChangeMap& changed, std::vector<ElemId>& map,
    const std::function<bool(const std::vector<ElemId>&)>& out) const {
  if (k == plan.body.size()) return out(map);
  if (static_cast<int>(k) == seat) {
    return MatchAtoms(plan, seat, k + 1, read_old, inst, changed, map, out);
  }
  const QAtom& atom = plan.body[k];
  const PredChange* pc = nullptr;
  if (read_old[k]) {
    auto it = changed.find(atom.pred);
    if (it != changed.end()) pc = &it->second;
  }
  // Current-state candidates through the tightest index available for the
  // bound positions (as in Join); an old-state read additionally skips
  // facts inserted since the old snapshot and replays the deleted ones.
  std::span<const uint32_t> candidates;
  int anchor = -1;
  for (int pos = 0; pos < static_cast<int>(atom.args.size()); ++pos) {
    ElemId img = map[atom.args[pos]];
    if (img == kNoElem) continue;
    const std::span<const uint32_t> idx = inst.RowsWith(atom.pred, pos, img);
    if (anchor < 0 || idx.size() < candidates.size()) {
      candidates = idx;
      anchor = pos;
    }
  }
  std::vector<VarId> bound_here;
  // Returns false when the enumeration must stop (out() vetoed).
  auto try_row = [&](uint32_t row) {
    const std::span<const ElemId> targs = inst.Args(atom.pred, row);
    if (pc &&
        pc->ins_set.find(FactView{atom.pred, targs}) != pc->ins_set.end()) {
      return true;
    }
    bound_here.clear();
    if (BindArgs(atom, targs, map, &bound_here) &&
        !MatchAtoms(plan, seat, k + 1, read_old, inst, changed, map, out)) {
      Unbind(bound_here, map);
      return false;
    }
    Unbind(bound_here, map);
    return true;
  };
  if (anchor < 0) {
    const uint32_t n = inst.NumRows(atom.pred);
    for (uint32_t row = 0; row < n; ++row) {
      if (!try_row(row)) return false;
    }
  } else {
    for (uint32_t row : candidates) {
      if (!try_row(row)) return false;
    }
  }
  if (pc) {
    for (const Fact& df : pc->del) {
      bound_here.clear();
      if (BindFact(atom, df, map, &bound_here) &&
          !MatchAtoms(plan, seat, k + 1, read_old, inst, changed, map, out)) {
        Unbind(bound_here, map);
        return false;
      }
      Unbind(bound_here, map);
    }
  }
  return true;
}

Materialization CompiledProgram::Materialize(const Instance& input,
                                             EvalStats* stats,
                                             const EvalOptions& options) const {
  Materialization m{Eval(input, stats, options), Stats()};
  const ChangeMap no_changes;
  // A rule dead under the input-seeded abstract fixpoint matches nothing
  // in the concrete fixpoint either, so skipping its counting pass leaves
  // every derivation count unchanged.
  std::vector<bool> dead;
  if (options.dataflow_prune &&
      input.num_facts() >= options.dataflow_min_facts) {
    dead = DeadRuleMask(program_, input);
  }
  for (const Stratum& st : strata_) {
    // Counting is unsound under recursion (a fact may transitively
    // support itself), so recursive SCC strata keep the membership-only
    // count of 1 and Maintain uses DRed for them.
    if (st.recursive) continue;
    std::unordered_map<Fact, uint64_t, FactHash> dc;
    for (uint32_t pi : st.plans) {
      if (!dead.empty() && dead[pi]) continue;
      const RulePlan& plan = plans_[pi];
      std::vector<uint8_t> read_old(plan.body.size(), 0);
      std::vector<ElemId> map(plan.num_vars, kNoElem);
      MatchAtoms(plan, /*seat=*/-1, 0, read_old, m.inst, no_changes, map,
                 [&](const std::vector<ElemId>& mm) {
                   std::vector<ElemId> args;
                   args.reserve(plan.head.args.size());
                   for (VarId v : plan.head.args) args.push_back(mm[v]);
                   ++dc[Fact(plan.head.pred, std::move(args))];
                   return true;
                 });
    }
    std::vector<PredId> preds(st.preds.begin(), st.preds.end());
    std::sort(preds.begin(), preds.end());
    for (PredId p : preds) {
      const uint32_t n = m.inst.NumRows(p);
      for (uint32_t row = 0; row < n; ++row) {
        const std::span<const ElemId> args = m.inst.Args(p, row);
        const Fact f(p, std::vector<ElemId>(args.begin(), args.end()));
        auto it = dc.find(f);
        uint64_t c = (it != dc.end() ? it->second : 0) +
                     (input.HasFact(f) ? 1 : 0);
        // Every fixpoint fact has base membership or a rule derivation.
        MONDET_CHECK(c > 0 && "Materialize: unsupported fixpoint fact");
        m.inst.SetCountAt(p, row, c);
      }
    }
  }
  m.stats = Stats::Collect(m.inst);
  return m;
}

MaintainResult CompiledProgram::Maintain(Materialization& m,
                                         const Instance& base,
                                         const FactDelta& delta,
                                         EvalStats* stats) const {
  auto t_start = std::chrono::steady_clock::now();
  Instance& inst = m.inst;
  inst.EnsureElements(base.num_elements());
  MaintainResult res;
  ChangeMap changed;
  std::function<void(const Fact&)> record_ins = [&](const Fact& f) {
    PredChange& pc = changed[f.pred];
    pc.ins.push_back(f);
    pc.ins_set.insert(f);
    res.inserts.push_back(f);
  };
  std::function<void(const Fact&)> record_del = [&](const Fact& f) {
    changed[f.pred].del.push_back(f);
    res.deletes.push_back(f);
  };

  // Split the base delta by layer: EDB changes apply directly (EDB
  // membership *is* base membership), IDB base changes fold into their
  // own stratum's pass — as ±1 derivation-count contributions on the
  // counting path, as seeds on the DRed path.
  std::vector<std::vector<const Fact*>> base_ins_at(strata_.size());
  std::vector<std::vector<const Fact*>> base_del_at(strata_.size());
  for (const Fact& f : delta.inserts) {
    if (program_.IsIdb(f.pred)) {
      base_ins_at[stratum_of_.at(f.pred)].push_back(&f);
    } else {
      MONDET_CHECK(inst.AddFact(f) && "Maintain: unnormalized insert");
      record_ins(f);
    }
  }
  for (const Fact& f : delta.deletes) {
    if (program_.IsIdb(f.pred)) {
      base_del_at[stratum_of_.at(f.pred)].push_back(&f);
    } else {
      MONDET_CHECK(inst.RemoveFact(f) && "Maintain: unnormalized delete");
      record_del(f);
    }
  }

  for (size_t si = 0; si < strata_.size(); ++si) {
    const Stratum& st = strata_[si];
    // Skip untouched strata: no base changes here and no membership
    // change on any body predicate. This skip is what makes small deltas
    // cheap — churn far from a stratum never re-runs its joins.
    bool touched = !base_ins_at[si].empty() || !base_del_at[si].empty();
    for (uint32_t pi : st.plans) {
      if (touched) break;
      for (const QAtom& a : plans_[pi].body) {
        auto it = changed.find(a.pred);
        if (it != changed.end() &&
            (!it->second.ins.empty() || !it->second.del.empty())) {
          touched = true;
          break;
        }
      }
    }
    if (!touched) continue;
    if (st.recursive) {
      MaintainDRed(si, base, base_ins_at[si], base_del_at[si], inst, changed,
                   &res, record_ins, record_del);
    } else {
      MaintainCounting(si, base_ins_at[si], base_del_at[si], inst, changed,
                       record_ins, record_del);
    }
  }

  // One statistics fold for the whole batch: the recorded lists are the
  // exact net membership changes, so Apply's contract equation holds.
  m.stats.Apply(inst, res.inserts, res.deletes);
  if (stats) {
    EvalStats run;
    run.iterations = 1;
    run.facts_derived = res.inserts.size();
    run.facts_retracted = res.deletes.size();
    run.overdeleted = res.overdeleted;
    run.rederived = res.rederived;
    run.stats_applies = 1;
    run.stats_facts_counted = res.inserts.size() + res.deletes.size();
    run.wall_seconds = SecondsSince(t_start);
    stats->Accumulate(run);
  }
  return res;
}

void CompiledProgram::MaintainCounting(
    size_t si, const std::vector<const Fact*>& base_ins,
    const std::vector<const Fact*>& base_del, Instance& inst,
    ChangeMap& changed, const std::function<void(const Fact&)>& record_ins,
    const std::function<void(const Fact&)>& record_del) const {
  const Stratum& st = strata_[si];
  // Signed derivation-count deltas for this stratum's facts; base
  // membership counts as one more derivation.
  std::unordered_map<Fact, int64_t, FactHash> dcount;
  for (const Fact* f : base_ins) ++dcount[*f];
  for (const Fact* f : base_del) --dcount[*f];
  for (uint32_t pi : st.plans) {
    const RulePlan& plan = plans_[pi];
    // Ordered-delta formula: Δ(A1 ⋈ … ⋈ Ak) = Σ_i new(A<i) ⋈ Δi ⋈
    // old(A>i). Exact by telescoping — each appearing or disappearing
    // derivation is counted exactly once, whichever atoms changed.
    for (size_t i = 0; i < plan.body.size(); ++i) {
      auto it = changed.find(plan.body[i].pred);
      if (it == changed.end()) continue;
      std::vector<uint8_t> read_old(plan.body.size(), 0);
      for (size_t j = i + 1; j < plan.body.size(); ++j) read_old[j] = 1;
      auto seed = [&](const Fact& df, int64_t sign) {
        std::vector<ElemId> map(plan.num_vars, kNoElem);
        std::vector<VarId> bound;
        if (BindFact(plan.body[i], df, map, &bound)) {
          MatchAtoms(plan, static_cast<int>(i), 0, read_old, inst, changed,
                     map, [&](const std::vector<ElemId>& mm) {
                       std::vector<ElemId> args;
                       args.reserve(plan.head.args.size());
                       for (VarId v : plan.head.args) args.push_back(mm[v]);
                       dcount[Fact(plan.head.pred, std::move(args))] += sign;
                       return true;
                     });
        }
      };
      for (const Fact& df : it->second.ins) seed(df, +1);
      for (const Fact& df : it->second.del) seed(df, -1);
    }
  }
  // Apply the count deltas in sorted fact order so the instance mutation
  // sequence — and with it the stored fact order — is deterministic.
  std::vector<std::pair<Fact, int64_t>> items(dcount.begin(), dcount.end());
  std::sort(items.begin(), items.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  for (const auto& [f, d] : items) {
    if (d == 0) continue;
    const int64_t oldc = static_cast<int64_t>(inst.FactCount(f));
    const int64_t newc = oldc + d;
    MONDET_CHECK(newc >= 0 && "Maintain: derivation count went negative");
    if (oldc == 0 && newc > 0) {
      MONDET_CHECK(inst.AddFact(f));
      inst.SetFactCount(f, static_cast<uint64_t>(newc));
      record_ins(f);
    } else if (oldc > 0 && newc == 0) {
      MONDET_CHECK(inst.RemoveFact(f));
      record_del(f);
    } else if (newc > 0) {
      inst.SetFactCount(f, static_cast<uint64_t>(newc));
    }
  }
}

bool CompiledProgram::Rederivable(const Fact& f, size_t si,
                                  const Instance& inst) const {
  const Stratum& st = strata_[si];
  const ChangeMap no_changes;
  for (uint32_t pi : st.plans) {
    const RulePlan& plan = plans_[pi];
    if (plan.head.pred != f.pred) continue;
    std::vector<ElemId> map(plan.num_vars, kNoElem);
    bool ok = true;
    for (size_t pos = 0; pos < plan.head.args.size(); ++pos) {
      VarId v = plan.head.args[pos];
      if (map[v] == kNoElem) {
        map[v] = f.args[pos];
      } else if (map[v] != f.args[pos]) {
        ok = false;
        break;
      }
    }
    if (!ok) continue;
    std::vector<uint8_t> read_old(plan.body.size(), 0);
    // One surviving derivation is a witness: stop at the first match.
    if (!MatchAtoms(plan, /*seat=*/-1, 0, read_old, inst, no_changes, map,
                    [](const std::vector<ElemId>&) { return false; })) {
      return true;
    }
  }
  return false;
}

void CompiledProgram::MaintainDRed(
    size_t si, const Instance& base, const std::vector<const Fact*>& base_ins,
    const std::vector<const Fact*>& base_del, Instance& inst,
    ChangeMap& changed, MaintainResult* res,
    const std::function<void(const Fact&)>& record_ins,
    const std::function<void(const Fact&)>& record_del) const {
  const Stratum& st = strata_[si];

  // Overdelete: every stratum fact with some old-state derivation that
  // uses a deleted fact — seeded from lower-stratum membership deletions
  // and base-deleted stratum facts, propagated semi-naively through the
  // SCC. Lower predicates read the old state (current − ins + del);
  // stratum predicates read the instance, which still holds the old
  // stratum relations here (classic DRed joins over the full old
  // database, which is what makes the deletion an over-approximation).
  std::unordered_set<Fact, FactHash> over;
  std::vector<Fact> odl;  // discovery order: deterministic
  auto overdelete = [&](const Fact& h) {
    if (!inst.HasFact(h)) return;
    if (over.insert(h).second) odl.push_back(h);
  };
  for (const Fact* f : base_del) overdelete(*f);
  auto lower_old = [&](const RulePlan& plan) {
    std::vector<uint8_t> ro(plan.body.size(), 0);
    for (size_t j = 0; j < plan.body.size(); ++j) {
      if (!st.preds.count(plan.body[j].pred)) ro[j] = 1;
    }
    return ro;
  };
  auto seed_deletion = [&](const RulePlan& plan, size_t i, const Fact& df,
                           const std::vector<uint8_t>& ro) {
    std::vector<ElemId> map(plan.num_vars, kNoElem);
    std::vector<VarId> bound;
    if (!BindFact(plan.body[i], df, map, &bound)) return;
    MatchAtoms(plan, static_cast<int>(i), 0, ro, inst, changed, map,
               [&](const std::vector<ElemId>& mm) {
                 std::vector<ElemId> args;
                 args.reserve(plan.head.args.size());
                 for (VarId v : plan.head.args) args.push_back(mm[v]);
                 overdelete(Fact(plan.head.pred, std::move(args)));
                 return true;
               });
  };
  for (uint32_t pi : st.plans) {
    const RulePlan& plan = plans_[pi];
    const std::vector<uint8_t> ro = lower_old(plan);
    for (size_t i = 0; i < plan.body.size(); ++i) {
      if (st.preds.count(plan.body[i].pred)) continue;
      auto it = changed.find(plan.body[i].pred);
      if (it == changed.end() || it->second.del.empty()) continue;
      for (const Fact& df : it->second.del) seed_deletion(plan, i, df, ro);
    }
  }
  for (size_t k = 0; k < odl.size(); ++k) {  // the frontier; odl grows
    const Fact f = odl[k];
    for (uint32_t pi : st.plans) {
      const RulePlan& plan = plans_[pi];
      const std::vector<uint8_t> ro = lower_old(plan);
      for (int r : plan.recursive_atoms) {
        if (plan.body[r].pred != f.pred) continue;
        seed_deletion(plan, static_cast<size_t>(r), f, ro);
      }
    }
  }

  // Remove, then rederive: a provisionally-deleted fact survives if the
  // new base holds it or some rule still derives it over the current
  // state (lower strata new, this stratum minus the provisional
  // deletions). Revivals enable more revivals; iterate to fixpoint.
  for (const Fact& f : odl) MONDET_CHECK(inst.RemoveFact(f));
  res->overdeleted += odl.size();
  std::unordered_map<Fact, bool, FactHash> was_present;
  for (const Fact& f : odl) was_present.emplace(f, true);
  std::vector<char> back(odl.size(), 0);
  bool progress = true;
  while (progress) {
    progress = false;
    for (size_t k = 0; k < odl.size(); ++k) {
      if (back[k]) continue;
      if (base.HasFact(odl[k]) || Rederivable(odl[k], si, inst)) {
        MONDET_CHECK(inst.AddFact(odl[k]));
        back[k] = 1;
        progress = true;
        ++res->rederived;
      }
    }
  }

  // Insert: semi-naive from the inserted seeds — base-inserted stratum
  // facts and lower-stratum membership insertions at every matching body
  // atom — joining the other atoms over the new state. Enumerating every
  // seed against the full new state may revisit a derivation; set
  // semantics absorbs that.
  std::vector<Fact> ifront;
  auto add_new = [&](const Fact& h) {
    if (inst.AddFact(h)) {
      was_present.emplace(h, false);
      ifront.push_back(h);
    }
  };
  auto seed_insertion = [&](const RulePlan& plan, size_t i, const Fact& df) {
    std::vector<ElemId> map(plan.num_vars, kNoElem);
    std::vector<VarId> bound;
    if (!BindFact(plan.body[i], df, map, &bound)) return;
    std::vector<uint8_t> ro(plan.body.size(), 0);
    // Derivations are collected first and added after the enumeration:
    // AddFact mutates the very indexes MatchAtoms is iterating.
    std::vector<Fact> derived;
    MatchAtoms(plan, static_cast<int>(i), 0, ro, inst, changed, map,
               [&](const std::vector<ElemId>& mm) {
                 std::vector<ElemId> args;
                 args.reserve(plan.head.args.size());
                 for (VarId v : plan.head.args) args.push_back(mm[v]);
                 derived.emplace_back(plan.head.pred, std::move(args));
                 return true;
               });
    for (const Fact& h : derived) add_new(h);
  };
  for (const Fact* f : base_ins) add_new(*f);
  for (uint32_t pi : st.plans) {
    const RulePlan& plan = plans_[pi];
    for (size_t i = 0; i < plan.body.size(); ++i) {
      if (st.preds.count(plan.body[i].pred)) continue;
      auto it = changed.find(plan.body[i].pred);
      if (it == changed.end() || it->second.ins.empty()) continue;
      for (const Fact& df : it->second.ins) seed_insertion(plan, i, df);
    }
  }
  for (size_t k = 0; k < ifront.size(); ++k) {  // the frontier; grows
    const Fact f = ifront[k];
    for (uint32_t pi : st.plans) {
      const RulePlan& plan = plans_[pi];
      for (int r : plan.recursive_atoms) {
        if (plan.body[r].pred != f.pred) continue;
        seed_insertion(plan, static_cast<size_t>(r), f);
      }
    }
  }

  // Net membership changes of this stratum, in sorted order so the
  // recorded change lists — the lower-stratum deltas of later strata —
  // are deterministic.
  std::vector<std::pair<Fact, bool>> tv(was_present.begin(),
                                        was_present.end());
  std::sort(tv.begin(), tv.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  for (const auto& [f, was] : tv) {
    const bool now = inst.HasFact(f);
    if (was && !now) {
      record_del(f);
    } else if (!was && now) {
      record_ins(f);
    }
  }
}

}  // namespace mondet
