#include "datalog/normalize.h"

#include <algorithm>
#include <functional>
#include <map>
#include <set>
#include <sstream>

#include "analysis/analyzer.h"
#include "base/check.h"
#include "datalog/fragment.h"

namespace mondet {

namespace {

/// Counts IDB atoms per variable and on the head variable of a rule.
bool RuleIsNormalized(const Program& prog, const Rule& rule) {
  std::map<VarId, int> idb_count;
  for (const QAtom& a : rule.body) {
    if (!prog.IsIdb(a.pred)) continue;
    for (VarId v : a.args) idb_count[v]++;
  }
  for (VarId v : rule.head.args) {
    if (idb_count.count(v)) return false;
  }
  for (const auto& [v, n] : idb_count) {
    if (n > 1) return false;
  }
  return true;
}

using PredSet = std::set<PredId>;

std::string SetPredName(const Vocabulary& vocab, const PredSet& s) {
  std::ostringstream os;
  os << "N[";
  bool first = true;
  for (PredId p : s) {
    if (!first) os << "&";
    first = false;
    os << vocab.name(p);
  }
  os << "]";
  return os.str();
}

}  // namespace

bool IsNormalizedMdl(const DatalogQuery& query) {
  if (!IsMonadic(query.program)) return false;
  for (const Rule& rule : query.program.rules()) {
    if (rule.head.pred == query.goal) continue;
    if (!RuleIsNormalized(query.program, rule)) return false;
  }
  return true;
}

std::optional<DatalogQuery> TryNormalizeMdl(const DatalogQuery& query,
                                            std::vector<Diagnostic>* diags) {
  std::vector<Diagnostic> violations =
      FragmentViolations(query.program, Fragment::kMonadic);
  // The monadic fragment admits 0-ary IDBs (the Boolean goal), but the
  // conjunction-set construction only groups unary IDB atoms: a nullary
  // IDB atom in a rule body has no variable to group on. Diagnose it here
  // instead of tripping NormalizeMdl's internal invariant.
  const Program& prog = query.program;
  for (size_t ri = 0; ri < prog.rules().size(); ++ri) {
    const Rule& rule = prog.rules()[ri];
    for (size_t ai = 0; ai < rule.body.size(); ++ai) {
      const QAtom& a = rule.body[ai];
      if (!prog.IsIdb(a.pred) || !a.args.empty()) continue;
      SourceLoc loc;
      loc.rule = static_cast<int>(ri);
      loc.atoms = {static_cast<int>(ai)};
      violations.push_back(MakeDiagnostic(
          Severity::kError, "normalize-nullary-idb",
          "nullary IDB predicate " + prog.vocab()->name(a.pred) +
              " occurs in a rule body; MDL normalization requires body IDB"
              " atoms to be unary",
          loc));
    }
  }
  if (!violations.empty()) {
    if (diags) {
      diags->insert(diags->end(), violations.begin(), violations.end());
    }
    return std::nullopt;
  }
  return NormalizeMdl(query);
}

DatalogQuery NormalizeMdl(const DatalogQuery& query) {
  const Program& prog = query.program;
  MONDET_CHECK(IsMonadic(prog));
  VocabularyPtr vocab = prog.vocab();

  // Unary IDB predicates (candidates for conjunction sets).
  std::vector<PredId> unary_idbs;
  for (PredId p : prog.Idbs()) {
    if (vocab->arity(p) == 1) unary_idbs.push_back(p);
  }
  std::sort(unary_idbs.begin(), unary_idbs.end());

  Program out(vocab);
  // Fresh goal name: a parsed program may already use "<goal>_norm" (with
  // any arity — AddPredicate aborts on an arity clash), so probe until the
  // name is unused. The conjunction-set predicates below need no such
  // probing: "N[...]" contains brackets and cannot be parsed from source.
  std::string goal_name = vocab->name(query.goal) + "_norm";
  for (int i = 1; vocab->FindPredicate(goal_name); ++i) {
    goal_name = vocab->name(query.goal) + "_norm" + std::to_string(i);
  }
  PredId new_goal = vocab->AddPredicate(goal_name, vocab->arity(query.goal));

  std::map<PredSet, PredId> set_pred;
  std::vector<PredSet> worklist;
  auto pred_for_set = [&](const PredSet& s) {
    MONDET_CHECK(!s.empty());
    auto it = set_pred.find(s);
    if (it != set_pred.end()) return it->second;
    PredId p = vocab->AddPredicate(SetPredName(*vocab, s), 1);
    set_pred.emplace(s, p);
    worklist.push_back(s);
    return p;
  };

  // Transforms a rule body: EDB atoms are kept; IDB atoms are grouped per
  // variable into conjunction-set atoms. Returns the transformed body;
  // `skip_var` (the head variable of set rules) has its IDB atoms dropped
  // (they are discharged by the closure machinery); pass kNoElem to keep
  // all variables.
  auto transform_body = [&](const std::vector<QAtom>& body, VarId skip_var,
                            std::vector<QAtom>* out_body) {
    std::map<VarId, PredSet> per_var;
    for (const QAtom& a : body) {
      if (prog.IsIdb(a.pred)) {
        // Unary by precondition: TryNormalizeMdl rejects nullary body IDBs.
        MONDET_CHECK(a.args.size() == 1);
        if (a.args[0] != skip_var) per_var[a.args[0]].insert(a.pred);
      } else {
        out_body->push_back(a);
      }
    }
    for (const auto& [v, s] : per_var) {
      out_body->push_back(QAtom(pred_for_set(s), {v}));
    }
  };

  // Goal rules: transformed in place (IDB atoms on the head variable are
  // permitted at the root; see IsNormalizedMdl).
  for (size_t ri : prog.RulesFor(query.goal)) {
    const Rule& r = prog.rules()[ri];
    Rule nr;
    nr.var_names = r.var_names;
    nr.head = QAtom(new_goal, r.head.args);
    transform_body(r.body, kNoElem, &nr.body);
    out.AddRule(std::move(nr));
  }

  // Rules for conjunction sets: enumerate acyclic self-supporting
  // assignments pred -> rule over the support closure of S.
  while (!worklist.empty()) {
    PredSet s = worklist.back();
    worklist.pop_back();
    PredId head_pred = set_pred.at(s);

    // Assignment state: chosen rule per predicate in the closure.
    std::map<PredId, size_t> choice;
    std::function<void(std::vector<PredId>)> assign =
        [&](std::vector<PredId> pending) {
          // Find the first pending predicate without a choice.
          while (!pending.empty() && choice.count(pending.back())) {
            pending.pop_back();
          }
          if (pending.empty()) {
            // Check acyclicity of the head-variable dependency graph.
            std::map<PredId, int> state;  // 0 unseen, 1 stack, 2 done
            bool cyclic = false;
            std::function<void(PredId)> visit = [&](PredId p) {
              state[p] = 1;
              const Rule& r = prog.rules()[choice.at(p)];
              VarId hv = r.head.args[0];
              for (const QAtom& a : r.body) {
                if (!prog.IsIdb(a.pred) || a.args[0] != hv) continue;
                int st = state.count(a.pred) ? state[a.pred] : 0;
                if (st == 1) cyclic = true;
                if (st == 0) visit(a.pred);
                if (cyclic) return;
              }
              state[p] = 2;
            };
            for (const auto& [p, ri] : choice) {
              (void)ri;
              if ((state.count(p) ? state[p] : 0) == 0) visit(p);
              if (cyclic) return;
            }

            // Build the combined rule.
            Rule nr;
            VarId x = 0;
            nr.var_names.push_back("x");
            nr.head = QAtom(head_pred, {x});
            std::vector<QAtom> raw_body;
            bool head_var_in_body = false;
            for (const auto& [p, ri] : choice) {
              (void)p;
              const Rule& r = prog.rules()[ri];
              VarId hv = r.head.args[0];
              std::vector<VarId> rename(r.num_vars(), kNoElem);
              rename[hv] = x;
              for (size_t v = 0; v < r.num_vars(); ++v) {
                if (v == hv) continue;
                rename[v] = static_cast<VarId>(nr.var_names.size());
                nr.var_names.push_back(r.var_names[v] + "_" +
                                       std::to_string(ri));
              }
              for (const QAtom& a : r.body) {
                if (prog.IsIdb(a.pred) && a.args[0] == hv) continue;
                std::vector<VarId> args;
                for (VarId v : a.args) args.push_back(rename[v]);
                if (std::find(args.begin(), args.end(), x) != args.end() &&
                    !prog.IsIdb(a.pred)) {
                  head_var_in_body = true;
                }
                raw_body.push_back(QAtom(a.pred, args));
              }
            }
            // Group IDB atoms of the combined body per variable.
            std::map<VarId, PredSet> per_var;
            for (const QAtom& a : raw_body) {
              if (prog.IsIdb(a.pred)) {
                per_var[a.args[0]].insert(a.pred);
              } else {
                nr.body.push_back(a);
              }
            }
            for (const auto& [v, t] : per_var) {
              nr.body.push_back(QAtom(pred_for_set(t), {v}));
            }
            // Safety: the head variable must occur in the body. If none of
            // the chosen rules put an EDB atom on it, add an Adom-style
            // guard is impossible in pure Datalog — but this cannot happen:
            // each chosen base rule is safe and discharges its head var in
            // its own (EDB or child) atoms on x only via EDB atoms, because
            // IDB atoms on x were dropped and safety of the original rule
            // guarantees an occurrence of x in some body atom. If x only
            // occurred in dropped IDB atoms, the acyclic support must
            // bottom out at a rule whose x occurs in an EDB atom.
            if (!head_var_in_body) {
              // Skip assignments that never anchor x in an EDB atom; a
              // bottoming-out assignment exists for every derivable set.
              return;
            }
            out.AddRule(std::move(nr));
            return;
          }
          PredId p = pending.back();
          for (size_t ri : prog.RulesFor(p)) {
            choice[p] = ri;
            const Rule& r = prog.rules()[ri];
            VarId hv = r.head.args[0];
            std::vector<PredId> next = pending;
            for (const QAtom& a : r.body) {
              if (prog.IsIdb(a.pred) && a.args[0] == hv) {
                next.push_back(a.pred);
              }
            }
            assign(next);
            choice.erase(p);
          }
        };
    assign(std::vector<PredId>(s.begin(), s.end()));
  }

  return DatalogQuery(std::move(out), new_goal);
}

}  // namespace mondet
