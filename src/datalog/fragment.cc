#include "datalog/fragment.h"

#include "analysis/analyzer.h"
#include "base/check.h"
#include "cq/ucq.h"
#include "datalog/approximation.h"
#include "datalog/eval.h"

namespace mondet {

bool IsMonadic(const Program& program) {
  return InFragment(program, Fragment::kMonadic);
}

bool IsFrontierGuarded(const Program& program) {
  return InFragment(program, Fragment::kFrontierGuarded);
}

bool IsNonRecursive(const Program& program) {
  return InFragment(program, Fragment::kNonRecursive);
}

BoundedContainment CheckDatalogContainmentBounded(const DatalogQuery& q1,
                                                  const DatalogQuery& q2,
                                                  int depth,
                                                  size_t max_expansions) {
  MONDET_CHECK(q1.arity() == q2.arity());
  BoundedContainment result;
  bool complete = EnumerateExpansions(
      q1, depth, max_expansions, [&](const Expansion& e) {
        ++result.expansions_checked;
        if (!DatalogHoldsOn(q2, e.inst, e.frontier)) {
          result.refuted = true;
          result.witness = e.inst;
          return false;
        }
        return true;
      });
  result.exhaustive =
      complete && IsNonRecursive(q1.program) &&
      depth >= static_cast<int>(q1.program.Idbs().size()) + 1;
  return result;
}

std::optional<UCQ> TryUnfoldToUcq(const DatalogQuery& query,
                                  size_t max_disjuncts,
                                  std::vector<Diagnostic>* diags) {
  std::vector<Diagnostic> recursion =
      FragmentViolations(query.program, Fragment::kNonRecursive);
  if (!recursion.empty()) {
    if (diags) {
      diags->insert(diags->end(), recursion.begin(), recursion.end());
    }
    return std::nullopt;
  }
  // A non-recursive derivation tree never repeats a predicate on a path,
  // so depth <= |IDBs| + 1 covers every expansion.
  int depth = static_cast<int>(query.program.Idbs().size()) + 1;
  UCQ out(query.program.vocab());
  bool exhaustive = EnumerateExpansions(
      query, depth, max_disjuncts, [&](const Expansion& e) {
        out.AddDisjunct(ExpansionToCq(e));
        return true;
      });
  if (!exhaustive) {
    if (diags) {
      diags->push_back(MakeDiagnostic(
          Severity::kError, "unfold-overflow",
          "unfolding of " + query.program.vocab()->name(query.goal) +
              " exceeds the cap of " + std::to_string(max_disjuncts) +
              " disjuncts (got " + std::to_string(out.disjuncts().size()) +
              " before stopping); raise max_disjuncts or rewrite the "
              "program"));
    }
    return std::nullopt;
  }
  return out;
}

UCQ UnfoldToUcq(const DatalogQuery& query, size_t max_disjuncts) {
  std::vector<Diagnostic> diags;
  std::optional<UCQ> out = TryUnfoldToUcq(query, max_disjuncts, &diags);
  if (!out) {
    std::fprintf(stderr, "%s", FormatDiagnostics(diags).c_str());
    MONDET_CHECK(out.has_value());
  }
  return *std::move(out);
}

}  // namespace mondet
