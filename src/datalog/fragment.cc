#include "datalog/fragment.h"

#include <algorithm>
#include <functional>

#include "base/check.h"
#include "cq/ucq.h"
#include "datalog/approximation.h"
#include "datalog/eval.h"

namespace mondet {

bool IsMonadic(const Program& program) {
  for (PredId p : program.Idbs()) {
    if (program.vocab()->arity(p) > 1) return false;
  }
  return true;
}

bool IsFrontierGuarded(const Program& program) {
  if (IsMonadic(program)) return true;  // paper's convention
  for (const Rule& rule : program.rules()) {
    if (rule.head.args.empty()) continue;  // vacuously guarded
    bool guarded = false;
    for (const QAtom& a : rule.body) {
      if (program.IsIdb(a.pred)) continue;  // guard must be extensional
      bool covers = true;
      for (VarId v : rule.head.args) {
        if (std::find(a.args.begin(), a.args.end(), v) == a.args.end()) {
          covers = false;
          break;
        }
      }
      if (covers) {
        guarded = true;
        break;
      }
    }
    if (!guarded) return false;
  }
  return true;
}

bool IsNonRecursive(const Program& program) {
  // DFS for a cycle in the IDB dependency graph.
  std::unordered_map<PredId, int> state;  // 0 unseen, 1 on stack, 2 done
  bool cyclic = false;
  std::function<void(PredId)> visit = [&](PredId p) {
    state[p] = 1;
    for (size_t ri : program.RulesFor(p)) {
      for (const QAtom& a : program.rules()[ri].body) {
        if (!program.IsIdb(a.pred)) continue;
        int s = state.count(a.pred) ? state[a.pred] : 0;
        if (s == 1) cyclic = true;
        if (s == 0) visit(a.pred);
        if (cyclic) return;
      }
    }
    state[p] = 2;
  };
  for (PredId p : program.Idbs()) {
    if ((state.count(p) ? state[p] : 0) == 0) visit(p);
    if (cyclic) return false;
  }
  return true;
}

BoundedContainment CheckDatalogContainmentBounded(const DatalogQuery& q1,
                                                  const DatalogQuery& q2,
                                                  int depth,
                                                  size_t max_expansions) {
  MONDET_CHECK(q1.arity() == q2.arity());
  BoundedContainment result;
  bool complete = EnumerateExpansions(
      q1, depth, max_expansions, [&](const Expansion& e) {
        ++result.expansions_checked;
        if (!DatalogHoldsOn(q2, e.inst, e.frontier)) {
          result.refuted = true;
          result.witness = e.inst;
          return false;
        }
        return true;
      });
  result.exhaustive =
      complete && IsNonRecursive(q1.program) &&
      depth >= static_cast<int>(q1.program.Idbs().size()) + 1;
  return result;
}

UCQ UnfoldToUcq(const DatalogQuery& query, size_t max_disjuncts) {
  MONDET_CHECK(IsNonRecursive(query.program));
  // A non-recursive derivation tree never repeats a predicate on a path,
  // so depth <= |IDBs| + 1 covers every expansion.
  int depth = static_cast<int>(query.program.Idbs().size()) + 1;
  UCQ out(query.program.vocab());
  bool exhaustive = EnumerateExpansions(
      query, depth, max_disjuncts, [&](const Expansion& e) {
        out.AddDisjunct(ExpansionToCq(e));
        return true;
      });
  MONDET_CHECK(exhaustive);
  return out;
}

}  // namespace mondet
