#ifndef MONDET_DATALOG_EVAL_H_
#define MONDET_DATALOG_EVAL_H_

#include <set>

#include "base/instance.h"
#include "datalog/eval_plan.h"
#include "datalog/program.h"

namespace mondet {

/// FPEval(Π, I): the minimal IDB-extension of I satisfying Π (Sec. 2),
/// computed by stratified, delta-indexed semi-naive fixpoint iteration
/// (see CompiledProgram). The result contains all facts of `inst` plus
/// the derived IDB facts, over the same element ids.
///
/// One-shot convenience: compiles the program on every call. Callers that
/// evaluate the same program repeatedly should hold a CompiledProgram.
Instance FpEval(const Program& program, const Instance& inst);

/// As above, accumulating run counters into `stats` and honoring
/// `options` (thread count etc.).
Instance FpEval(const Program& program, const Instance& inst,
                EvalStats* stats, const EvalOptions& options = {});

/// Output(Q, I): the set of goal tuples of the Datalog query on `inst`.
std::set<std::vector<ElemId>> EvaluateDatalog(const DatalogQuery& query,
                                              const Instance& inst);

/// Boolean evaluation (true iff the goal relation is non-empty).
bool DatalogHoldsOn(const DatalogQuery& query, const Instance& inst);

/// True iff the given tuple is in Output(Q, inst).
bool DatalogHoldsOn(const DatalogQuery& query, const Instance& inst,
                    const std::vector<ElemId>& tuple);

}  // namespace mondet

#endif  // MONDET_DATALOG_EVAL_H_
