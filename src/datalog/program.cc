#include "datalog/program.h"

#include <algorithm>
#include <sstream>

#include "base/check.h"

namespace mondet {

VarId RuleBuilder::Var(const std::string& name) {
  auto it = by_name_.find(name);
  if (it != by_name_.end()) return it->second;
  VarId id = static_cast<VarId>(rule_.var_names.size());
  rule_.var_names.push_back(name);
  by_name_.emplace(name, id);
  return id;
}

RuleBuilder& RuleBuilder::Head(PredId pred,
                               const std::vector<std::string>& vars) {
  std::vector<VarId> args;
  for (const auto& v : vars) args.push_back(Var(v));
  rule_.head = QAtom(pred, args);
  return *this;
}

RuleBuilder& RuleBuilder::Atom(PredId pred,
                               const std::vector<std::string>& vars) {
  std::vector<VarId> args;
  for (const auto& v : vars) args.push_back(Var(v));
  rule_.body.emplace_back(pred, args);
  return *this;
}

Rule RuleBuilder::Build() {
  MONDET_CHECK(rule_.head.pred != kNoPred);
  return std::move(rule_);
}

void Program::AddRule(Rule rule) {
  MONDET_CHECK(rule.head.pred < vocab_->size());
  MONDET_CHECK(static_cast<int>(rule.head.args.size()) ==
               vocab_->arity(rule.head.pred));
  // Safety: every head variable occurs in the body.
  for (VarId v : rule.head.args) {
    bool found = false;
    for (const QAtom& a : rule.body) {
      if (std::find(a.args.begin(), a.args.end(), v) != a.args.end()) {
        found = true;
        break;
      }
    }
    MONDET_CHECK(found);
  }
  idbs_.insert(rule.head.pred);
  rules_.push_back(std::move(rule));
}

void Program::AddRules(const Program& other) {
  MONDET_CHECK(vocab_.get() == other.vocab_.get());
  for (const Rule& r : other.rules_) AddRule(r);
}

std::unordered_set<PredId> Program::Edbs() const {
  std::unordered_set<PredId> out;
  for (const Rule& r : rules_) {
    for (const QAtom& a : r.body) {
      if (!IsIdb(a.pred)) out.insert(a.pred);
    }
  }
  return out;
}

std::vector<size_t> Program::RulesFor(PredId p) const {
  std::vector<size_t> out;
  for (size_t i = 0; i < rules_.size(); ++i) {
    if (rules_[i].head.pred == p) out.push_back(i);
  }
  return out;
}

size_t Program::MaxRuleVars() const {
  size_t k = 0;
  for (const Rule& r : rules_) k = std::max(k, r.num_vars());
  return k;
}

namespace {
void AppendAtom(std::ostringstream& os, const Vocabulary& vocab,
                const QAtom& a, const std::vector<std::string>& names) {
  os << vocab.name(a.pred) << "(";
  for (size_t i = 0; i < a.args.size(); ++i) {
    if (i) os << ",";
    os << names[a.args[i]];
  }
  os << ")";
}
}  // namespace

std::string Program::DebugString() const {
  std::ostringstream os;
  for (const Rule& r : rules_) {
    AppendAtom(os, *vocab_, r.head, r.var_names);
    os << " :- ";
    for (size_t i = 0; i < r.body.size(); ++i) {
      if (i) os << ", ";
      AppendAtom(os, *vocab_, r.body[i], r.var_names);
    }
    os << ".\n";
  }
  return os.str();
}

std::string DatalogQuery::DebugString() const {
  return "goal: " + program.vocab()->name(goal) + "\n" +
         program.DebugString();
}

DatalogQuery CqAsDatalog(const CQ& cq, const std::string& goal_name) {
  VocabularyPtr vocab = cq.vocab();
  PredId goal = vocab->AddPredicate(goal_name, cq.arity());
  Program prog(vocab);
  Rule r;
  r.var_names.reserve(cq.num_vars());
  for (size_t v = 0; v < cq.num_vars(); ++v) r.var_names.push_back(cq.var_name(v));
  r.head = QAtom(goal, cq.free_vars());
  r.body = cq.atoms();
  prog.AddRule(std::move(r));
  return DatalogQuery(std::move(prog), goal);
}

DatalogQuery UcqAsDatalog(const UCQ& ucq, const std::string& goal_name) {
  VocabularyPtr vocab = ucq.vocab();
  PredId goal = vocab->AddPredicate(goal_name, ucq.arity());
  Program prog(vocab);
  for (const CQ& cq : ucq.disjuncts()) {
    Rule r;
    for (size_t v = 0; v < cq.num_vars(); ++v) {
      r.var_names.push_back(cq.var_name(v));
    }
    r.head = QAtom(goal, cq.free_vars());
    r.body = cq.atoms();
    prog.AddRule(std::move(r));
  }
  return DatalogQuery(std::move(prog), goal);
}

}  // namespace mondet
