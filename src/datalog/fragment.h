#ifndef MONDET_DATALOG_FRAGMENT_H_
#define MONDET_DATALOG_FRAGMENT_H_

#include <optional>
#include <vector>

#include "analysis/diagnostic.h"
#include "cq/ucq.h"
#include "datalog/program.h"

namespace mondet {

// The boolean fragment gates are thin wrappers over the static analyzer
// (analysis/analyzer.h): a negative answer always has concrete witnesses —
// the offending rule and atoms — available via FragmentViolations.

/// True if all intensional predicates have arity <= 1 (Monadic Datalog;
/// arity-0 goal predicates of Boolean queries are permitted).
bool IsMonadic(const Program& program);

/// True if in each rule all head variables co-occur in a single extensional
/// body atom. Following the paper's convention, every monadic program
/// counts as frontier-guarded.
bool IsFrontierGuarded(const Program& program);

/// True if the program has no recursion through IDB predicates (i.e. the
/// IDB dependency graph is acyclic), so the query is equivalent to a UCQ.
bool IsNonRecursive(const Program& program);

/// Unfolds a non-recursive Datalog query into an equivalent UCQ.
/// Returns nullopt — with diagnostics appended to `diags` when provided —
/// when the program is recursive or the unfolding exceeds `max_disjuncts`
/// (check ids "fragment-non-recursive" and "unfold-overflow").
std::optional<UCQ> TryUnfoldToUcq(const DatalogQuery& query,
                                  size_t max_disjuncts = 100000,
                                  std::vector<Diagnostic>* diags = nullptr);

/// As TryUnfoldToUcq, but the program must satisfy IsNonRecursive and fit
/// in `max_disjuncts` (MONDET_CHECK fails otherwise). Prefer the Try
/// variant on user-reachable paths.
UCQ UnfoldToUcq(const DatalogQuery& query, size_t max_disjuncts = 100000);

/// Bounded Datalog-containment check Q1 ⊑ Q2 (same arity): evaluates Q2
/// on the CQ approximations of Q1 up to the given depth. A refutation
/// (witness expansion on which Q2 misses Q1's frontier tuple) is always
/// real; `exhaustive` is true when every expansion was covered (Q1
/// non-recursive and within bounds), in which case non-refutation proves
/// containment. Datalog containment is undecidable in general [25] — this
/// is the standard semi-decision procedure. (For UCQ right-hand sides the
/// exact automata procedure is DatalogContainedInUcq in core/, which runs
/// an antichain-pruned lazy product walk by default — the unpruned full
/// fixpoint stays available via ContainmentOptions{.antichain = false}.)
struct BoundedContainment {
  bool refuted = false;
  bool exhaustive = false;
  size_t expansions_checked = 0;
  std::optional<Instance> witness;
};
BoundedContainment CheckDatalogContainmentBounded(const DatalogQuery& q1,
                                                  const DatalogQuery& q2,
                                                  int depth,
                                                  size_t max_expansions = 500);

}  // namespace mondet

#endif  // MONDET_DATALOG_FRAGMENT_H_
