#ifndef MONDET_DATALOG_PROGRAM_H_
#define MONDET_DATALOG_PROGRAM_H_

#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "cq/cq.h"
#include "cq/ucq.h"

namespace mondet {

/// A Datalog rule P(x) ← φ(x). Variables are dense ids local to the rule;
/// every head variable must occur in the body (safety, Sec. 2).
struct Rule {
  QAtom head;
  std::vector<QAtom> body;
  std::vector<std::string> var_names;
  /// 1-based source position of the rule when it came from ParseProgram
  /// (0 = built programmatically). Diagnostics point here.
  int line = 0;
  int col = 0;

  size_t num_vars() const { return var_names.size(); }
};

/// Helper for building rules by variable name.
class RuleBuilder {
 public:
  explicit RuleBuilder(VocabularyPtr vocab) : vocab_(std::move(vocab)) {}

  /// Returns the id for a named variable, creating it on first use.
  VarId Var(const std::string& name);

  RuleBuilder& Head(PredId pred, const std::vector<std::string>& vars);
  RuleBuilder& Atom(PredId pred, const std::vector<std::string>& vars);

  Rule Build();

 private:
  VocabularyPtr vocab_;
  Rule rule_;
  std::unordered_map<std::string, VarId> by_name_;
};

/// A Datalog program: a finite set of rules over a shared Vocabulary.
/// IDB predicates are those occurring in some head; the rest are EDB.
class Program {
 public:
  explicit Program(VocabularyPtr vocab) : vocab_(std::move(vocab)) {}

  const VocabularyPtr& vocab() const { return vocab_; }

  void AddRule(Rule rule);
  void AddRules(const Program& other);

  const std::vector<Rule>& rules() const { return rules_; }

  bool IsIdb(PredId p) const { return idbs_.count(p) > 0; }
  const std::unordered_set<PredId>& Idbs() const { return idbs_; }

  /// EDB predicates actually occurring in some body.
  std::unordered_set<PredId> Edbs() const;

  /// Indices of the rules whose head predicate is `p`.
  std::vector<size_t> RulesFor(PredId p) const;

  /// Maximum number of variables in any rule (the treewidth bound k of
  /// Lemma 1 / Prop. 3).
  size_t MaxRuleVars() const;

  std::string DebugString() const;

 private:
  VocabularyPtr vocab_;
  std::vector<Rule> rules_;
  std::unordered_set<PredId> idbs_;
};

/// A Datalog query (Π, Goal) — a program plus a distinguished goal IDB.
struct DatalogQuery {
  Program program;
  PredId goal = kNoPred;

  DatalogQuery(Program p, PredId g) : program(std::move(p)), goal(g) {}

  int arity() const { return program.vocab()->arity(goal); }
  std::string DebugString() const;
};

/// Wraps a CQ as a single-rule Datalog query with the given goal name.
DatalogQuery CqAsDatalog(const CQ& cq, const std::string& goal_name);

/// Wraps a UCQ as a Datalog query (one rule per disjunct).
DatalogQuery UcqAsDatalog(const UCQ& ucq, const std::string& goal_name);

}  // namespace mondet

#endif  // MONDET_DATALOG_PROGRAM_H_
