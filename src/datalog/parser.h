#ifndef MONDET_DATALOG_PARSER_H_
#define MONDET_DATALOG_PARSER_H_

#include <optional>
#include <string>
#include <vector>

#include "analysis/diagnostic.h"
#include "cq/ucq.h"
#include "datalog/program.h"

namespace mondet {

/// Result of parsing; `error` is non-empty iff parsing failed.
/// `diagnostics` carries every failure (syntax, arity, safety) with
/// 1-based source positions; `error` is the first one, formatted, kept
/// for callers that only need a string.
struct ParseResult {
  std::optional<Program> program;
  std::string error;
  std::vector<Diagnostic> diagnostics;

  bool ok() const { return error.empty(); }
};

/// Parses a Datalog program in the conventional textual syntax:
///
///   # comment
///   Goal() :- U1(x), W1(x).
///   W1(x) :- T(x,y,z), B(z,w), B(y,w), W1(w).
///
/// Predicates are introduced implicitly with the arity of their first
/// occurrence (later occurrences must match). All argument identifiers are
/// variables (the paper uses no constants). A 0-ary head may be written
/// "Goal" or "Goal()". Predicates are interned into `vocab`. Each parsed
/// rule records its 1-based source line/col (Rule::line, Rule::col) so
/// analyzer diagnostics point back at the input text.
ParseResult ParseProgram(const std::string& text, const VocabularyPtr& vocab);

/// Parses a program and wraps it as a query with the given goal predicate.
/// Fails if the goal is not the head of any rule. On failure the parse
/// diagnostics (or a "goal" diagnostic for goal-resolution failures,
/// pointing at the first body occurrence of the goal predicate when there
/// is one) are appended to `diagnostics` when non-null.
std::optional<DatalogQuery> ParseQuery(
    const std::string& text, const std::string& goal_name,
    const VocabularyPtr& vocab,
    std::vector<Diagnostic>* diagnostics = nullptr);

/// Parses the rules as a UCQ: all rules must share the same head predicate
/// and none may use IDB predicates in bodies.
std::optional<UCQ> ParseUcq(const std::string& text,
                            const VocabularyPtr& vocab,
                            std::string* error = nullptr);

/// Parses a single rule as a CQ.
std::optional<CQ> ParseCq(const std::string& text, const VocabularyPtr& vocab,
                          std::string* error = nullptr);

/// Parses a ground instance: one fact per statement, identifiers are
/// constants (elements are created on first use and shared by name):
///
///   R(a,b). R(b,c). U(c).
///
/// Predicates are interned into `vocab` with the arity of first use.
/// On failure a diagnostic (check "parse" or "arity") carrying the
/// 1-based line/col of the offending token is appended to `diagnostics`
/// when non-null.
std::optional<Instance> ParseInstance(
    const std::string& text, const VocabularyPtr& vocab,
    std::vector<Diagnostic>* diagnostics = nullptr);

/// One raw batch of an insert/delete stream: the facts listed with `+`
/// and `-` on one source line, in source order, unnormalized (duplicates
/// and deletes of absent facts are the *consumer's* contract to resolve;
/// MaintainedImage::ApplyDelta accepts exactly this shape).
struct StreamBatch {
  std::vector<Fact> inserts;
  std::vector<Fact> deletes;
  int line = 0;  // 1-based source line of the batch
};

/// A parsed stream: its batches plus the element names the stream
/// mentions that `base` does not; new_elements[i] has id
/// base.num_elements() + i, so consumers create them in order (e.g. via
/// MaintainedImage::AddElement) before applying the batches.
struct StreamParse {
  std::vector<StreamBatch> batches;
  std::vector<std::string> new_elements;
};

/// Parses an insert/delete stream against the elements of `base`: one
/// batch per non-empty line, each a sequence of signed ground facts:
///
///   # churn: rewire b through d
///   +E(b,d). +E(d,c). -E(b,c).
///   -U(a).
///
/// Element names resolve to the like-named elements of `base`; unseen
/// names allocate fresh ids after base.num_elements() (see StreamParse).
/// Predicates are interned into `vocab` with the arity of first use, as
/// in ParseInstance. On failure a diagnostic with 1-based line/col is
/// appended to `diagnostics` when non-null.
std::optional<StreamParse> ParseStream(
    const std::string& text, const VocabularyPtr& vocab,
    const Instance& base, std::vector<Diagnostic>* diagnostics = nullptr);

}  // namespace mondet

#endif  // MONDET_DATALOG_PARSER_H_
