#ifndef MONDET_DATALOG_EVAL_PLAN_H_
#define MONDET_DATALOG_EVAL_PLAN_H_

#include <cstddef>
#include <string>
#include <unordered_set>
#include <vector>

#include "base/instance.h"
#include "datalog/program.h"

namespace mondet {

/// Evaluation knobs for CompiledProgram::Eval / FpEval.
struct EvalOptions {
  /// Worker threads for the per-iteration rule fan-out. 0 = use the
  /// MONDET_THREADS environment variable, falling back to
  /// std::thread::hardware_concurrency(). The derived fact set and its
  /// insertion order are identical for every thread count (see
  /// docs/EVALUATION.md for the determinism argument).
  int num_threads = 0;
};

/// Counters for one stratum of a fixpoint run.
struct StratumStats {
  size_t iterations = 0;     // semi-naive rounds, incl. the initial one
  size_t facts_derived = 0;  // new facts this stratum added
  size_t join_probes = 0;    // candidate facts scanned by index joins
  double wall_seconds = 0;
};

/// Counters for a fixpoint run. Eval *accumulates* into a caller-provided
/// EvalStats, so one struct can aggregate several runs (as the bench
/// harnesses do); `strata` gets one entry appended per stratum evaluated.
struct EvalStats {
  size_t iterations = 0;
  size_t facts_derived = 0;
  size_t join_probes = 0;
  double wall_seconds = 0;
  std::vector<StratumStats> strata;

  /// Adds the scalar totals and appends the strata of `other`.
  void Accumulate(const EvalStats& other);

  /// One-line rendering for bench labels / logs.
  std::string Summary() const;
};

/// Resolves the worker-thread count: `requested` if positive, else the
/// MONDET_THREADS environment variable, else hardware_concurrency().
int ResolveEvalThreads(int requested);

/// A Datalog program compiled for repeated semi-naive evaluation.
///
/// Compilation groups the rules into strata — the SCCs of the IDB
/// dependency graph, in topological order — and precomputes per-rule join
/// orderings: one for the initial full join and one per recursive body
/// atom (the semi-naive "delta" seat), each ordered
/// most-constrained-atom-first by the shared GreedyAtomOrder heuristic.
/// Construct once and Eval many times; the per-rule plans and strata are
/// reused across calls.
class CompiledProgram {
 public:
  explicit CompiledProgram(const Program& program);

  /// FPEval(Π, I) (Sec. 2): all facts of `input` plus every derivable IDB
  /// fact, over the same elements. Deterministic for any thread count.
  /// When `stats` is non-null the run's counters are accumulated into it.
  Instance Eval(const Instance& input, EvalStats* stats = nullptr,
                const EvalOptions& options = {}) const;

  size_t num_strata() const { return strata_.size(); }
  const Program& program() const { return program_; }

  /// Description of one precomputed join order, for plan-level lints
  /// (analysis/) and debugging: the body-atom visit order of rule
  /// `rule` when seeded from `delta_atom` (-1 = the initial full join,
  /// otherwise a body-atom index whose variables start bound).
  struct JoinOrderDesc {
    size_t rule = 0;
    int delta_atom = -1;
    std::vector<uint32_t> order;  // body atom indices, join order
  };

  /// All join orders of the compiled plans, one entry per (rule, seat).
  std::vector<JoinOrderDesc> DescribePlans() const;

 private:
  struct RulePlan {
    QAtom head;
    std::vector<QAtom> body;
    size_t num_vars = 0;
    std::vector<int> recursive_atoms;  // body indices over same-SCC preds
    // orders[0]: every body atom (initial round); orders[1 + i]: every
    // atom except recursive_atoms[i], whose variables start bound from a
    // delta fact.
    std::vector<std::vector<uint32_t>> orders;
  };
  struct Stratum {
    std::vector<uint32_t> plans;       // indices into plans_, program order
    std::unordered_set<PredId> preds;  // the SCC's predicates
  };
  /// One unit of the per-iteration fan-out: fire plan `plan` either as a
  /// full join (rec < 0) or seeding recursive atom `rec` from each fact
  /// of `delta`.
  struct WorkItem {
    uint32_t plan = 0;
    int rec = -1;
    const std::vector<Fact>* delta = nullptr;
  };

  void RunItem(const WorkItem& item, const Instance& target, size_t* probes,
               std::vector<Fact>* out) const;
  void Join(const RulePlan& plan, const std::vector<uint32_t>& order,
            size_t depth, std::vector<ElemId>& map, const Instance& target,
            size_t* probes, std::vector<Fact>* out) const;

  Program program_;
  std::vector<RulePlan> plans_;
  std::vector<Stratum> strata_;
};

}  // namespace mondet

#endif  // MONDET_DATALOG_EVAL_PLAN_H_
