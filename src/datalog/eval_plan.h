#ifndef MONDET_DATALOG_EVAL_PLAN_H_
#define MONDET_DATALOG_EVAL_PLAN_H_

#include <cstddef>
#include <functional>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "base/instance.h"
#include "base/stats.h"
#include "datalog/kernel.h"
#include "datalog/program.h"

namespace mondet {

/// Evaluation knobs for CompiledProgram::Eval / FpEval.
struct EvalOptions {
  /// Worker threads for the per-iteration rule fan-out. 0 = use the
  /// MONDET_THREADS environment variable, falling back to
  /// std::thread::hardware_concurrency(). The derived fact set and its
  /// insertion order are identical for every thread count (see
  /// docs/EVALUATION.md for the determinism argument).
  int num_threads = 0;
  /// Statistics-driven join planning (the default): score join orders by
  /// estimated selectivity from per-predicate statistics — `stats` when
  /// set, otherwise statistics collected live from the evolving result,
  /// re-planned per stratum as the relations grow (docs/EVALUATION.md
  /// documents the cost model). When false, Eval runs the compile-time
  /// orders: EDB-first greedy, or the orders fixed by BindStats.
  bool stats_planner = true;
  /// Plan from this (possibly stale) snapshot instead of collecting live
  /// statistics; suppresses in-run re-planning. Stale stats can only
  /// produce slower orders, never wrong results. Ignored when
  /// stats_planner is false. Not owned; must outlive the Eval call.
  const Stats* stats = nullptr;
  /// Maintain the live statistics incrementally: every merge barrier folds
  /// its newly-added facts into the snapshot via Stats::Apply (O(delta)),
  /// so the counts are exact at every re-plan and no per-stratum recount
  /// ever runs. When false, Eval falls back to the recount discipline
  /// (Stats::Refresh of the stale predicates per stratum / re-plan) —
  /// kept for the incremental-vs-recount bench comparison.
  bool stats_incremental = true;
  /// The planner's own cost gate: below this many input facts, planning
  /// cannot pay for itself, so Eval runs the compile-time orders. Even
  /// with incremental maintenance the per-run cost — one Collect with a
  /// sort per column plus a SelectivityAtomOrder pass per rule — takes
  /// tens of µs, which dominates a µs-scale eval outright (the checker's
  /// canonical-test loops issue thousands of those), so the gate sits at
  /// 64 facts. Set to 0 to force live planning on any input (the
  /// differential and convergence tests do); a caller-supplied `stats`
  /// snapshot bypasses the gate.
  size_t stats_min_facts = 64;
  /// Record the join order each (rule, delta seat) actually ran with,
  /// plus estimated vs. measured intermediate sizes, into
  /// StratumStats::seats. Small per-match cost; off by default.
  bool plan_stats = false;
  /// Feedback: fold each seat's measured-vs-estimated per-step row counts
  /// into per-predicate correction factors (Stats::Observe) at every
  /// re-plan and stratum close, so later plans in the same run use
  /// measured selectivities. Needs measurements, so it only engages when
  /// plan_stats is on and planning is live (no `stats` snapshot).
  bool plan_feedback = true;
  /// Cross-run feedback accumulator (not owned, may be null): its
  /// correction factors are imported into the live statistics before
  /// planning, and the corrections learned during the run are exported
  /// back after it — so repeated evaluations converge toward measured
  /// selectivities (see the convergence test). Only consulted when
  /// plan_feedback engages.
  Stats* feedback = nullptr;
  /// Abstract-interpretation pruning (analysis/dataflow.h): before the
  /// stratum loop, run the emptiness/constant-set fixpoint seeded from
  /// the input and skip seating the provably-dead rules — their bodies
  /// are unsatisfiable over (an overapproximation of) the fixpoint, so
  /// they can never derive a fact and skipping them leaves the result,
  /// its insertion order and all derivation counts bit-identical
  /// (pinned by eval_differential_test / plan_differential_test arms and
  /// tests/dataflow_soundness_test.cc). EvalStats::rules_pruned counts
  /// the skipped rules.
  bool dataflow_prune = true;
  /// Compiled join kernels (datalog/kernel.h): lower each planned
  /// (rule, delta-seat, order) into a shape-specialized loop nest over the
  /// columnar store — fixed binding frame, plan-time probe/check/bind
  /// classification, flat derived-head buffers — instead of interpreting
  /// the atom order through the generic backtracking join. Bit-identical
  /// to the interpreter in result, insertion order and derivation counts
  /// (pinned by the kernel-differential oracle); kept as an escape hatch
  /// for the differential arms and as the interpreter's reference.
  bool compiled_kernels = true;
  /// Input-size gate for compiled_kernels, the stats_min_facts idiom
  /// again: lowering a (rule, seat, order) into a kernel costs a few µs
  /// per rule-seat per Eval, which a µs-scale evaluation of a tiny
  /// instance can never amortize — and the canonical-test inner loops
  /// (separators, containment search) run thousands of such evals.
  /// Below the gate the generic interpreter runs instead; above it the
  /// kernel pays for itself within the first delta round. A nonzero gate
  /// additionally requires at least 4 input facts per program rule
  /// (lowering cost is per rule-seat, so a huge program over few facts
  /// can never amortize it no matter the absolute input size). Set to 0
  /// to force kernels on any input (the kernel-differential oracle and
  /// bench_kernels do, so the gated path stays fully cross-checked).
  size_t kernel_min_facts = 64;
  /// Input-size gate for dataflow_prune, the stats_min_facts idiom again:
  /// the seeded analysis costs O(program + input) per run, so on a small
  /// instance it cannot pay for the join work it saves — and the
  /// canonical-test inner loops evaluate thousands of µs-scale instances
  /// per check (profiles put the analysis near 30% of such evals at the
  /// old gate of 8). Below the gate Eval skips the analysis and prunes
  /// nothing (correctness is unaffected either way). Set to 0 to force
  /// pruning on any input (the differential and soundness tests do).
  size_t dataflow_min_facts = 64;
};

/// The join order one (rule, delta-seat) pair ran with, with the planner's
/// estimated and the measured intermediate row counts per join step.
/// Collected only under EvalOptions::plan_stats.
struct JoinSeatStats {
  size_t rule = 0;
  int delta_atom = -1;               // -1 = the initial full join
  std::vector<uint32_t> order;       // body atom indices, join order
  std::vector<double> est_rows;      // planner estimate after each step
  std::vector<size_t> actual_rows;   // measured rows after each step
  // How many times this seat's join was seeded: 1 for the initial full
  // join, one per successfully-bound delta fact otherwise. est_rows is a
  // per-seeding estimate while actual_rows sums over seedings; dividing
  // by this makes the two comparable (the feedback layer does).
  size_t seedings = 0;
};

/// Counters for one stratum of a fixpoint run.
struct StratumStats {
  size_t iterations = 0;     // semi-naive rounds, incl. the initial one
  size_t facts_derived = 0;  // new facts this stratum added
  size_t join_probes = 0;    // candidate facts scanned by index joins
  size_t replans = 0;        // mid-stratum join-order recomputations
  size_t stats_applies = 0;  // merge barriers folded in via Stats::Apply
  // Facts the statistics machinery touched this stratum: delta sizes on
  // the incremental path, full per-predicate row counts per recount on
  // the Refresh path. The O(stratum facts) -> O(delta) drop shows here.
  size_t stats_facts_counted = 0;
  double wall_seconds = 0;
  std::vector<JoinSeatStats> seats;  // only with EvalOptions::plan_stats
};

/// Counters for a fixpoint run. Eval *accumulates* into a caller-provided
/// EvalStats, so one struct can aggregate several runs (as the bench
/// harnesses do); `strata` gets one entry appended per stratum evaluated.
/// Maintain fills the retraction counters (facts_retracted, overdeleted,
/// rederived), which stay zero on the insert-only Eval path.
struct EvalStats {
  size_t iterations = 0;
  size_t facts_derived = 0;
  size_t facts_retracted = 0;  // facts removed by Maintain
  size_t overdeleted = 0;      // DRed: provisional deletions
  size_t rederived = 0;        // DRed: provisional deletions revived
  size_t join_probes = 0;
  size_t replans = 0;
  size_t rules_pruned = 0;  // rules skipped by EvalOptions::dataflow_prune
  size_t stats_applies = 0;        // sum over strata (see StratumStats)
  size_t stats_facts_counted = 0;  // sum over strata (see StratumStats)
  // Predicates whose feedback correction factor ended the run away from
  // 1.0 (Stats::ActiveCorrections of the planning statistics). Accumulate
  // keeps the max across runs, not the sum — it is a gauge, not a counter.
  size_t corrections_active = 0;
  double wall_seconds = 0;
  std::vector<StratumStats> strata;

  /// Adds the scalar totals (max for corrections_active) and appends the
  /// strata of `other`.
  void Accumulate(const EvalStats& other);

  /// One-line rendering for bench labels / logs.
  std::string Summary() const;
};

/// Resolves the worker-thread count: `requested` if positive, else the
/// MONDET_THREADS environment variable, else hardware_concurrency().
int ResolveEvalThreads(int requested);

/// One batch of base-instance mutations for CompiledProgram::Maintain.
/// The contract is normalized set semantics: `inserts` holds exactly the
/// facts newly added to the base and `deletes` exactly the facts removed
/// from it — disjoint, duplicate-free, and genuinely applied (callers
/// drop duplicate inserts and deletes of absent facts; inserts win when
/// one batch both inserts and deletes a fact). MaintainedImage::ApplyDelta
/// performs this normalization for raw user batches.
struct FactDelta {
  std::vector<Fact> inserts;
  std::vector<Fact> deletes;

  bool empty() const { return inserts.empty() && deletes.empty(); }
};

/// A maintained fixpoint: FPEval(Π, base) with per-fact derivation counts
/// (Instance::FactCount) plus exact planner statistics of that instance.
/// Produced by Materialize, updated in place by Maintain; the invariant —
/// `inst` bit-identical (as a fact set, with counts and statistics) to a
/// fresh Materialize of the current base — is the maintenance engine's
/// headline correctness contract (tests/maintenance_differential_test.cc).
struct Materialization {
  Instance inst;
  Stats stats;
};

/// Outcome of one Maintain call: the net membership changes of the
/// materialized instance (every fact that appeared / disappeared, in the
/// deterministic order they were recorded) plus the DRed counters.
/// Consumers project these deltas further — MaintainedImage filters them
/// to the view predicates to keep the view image current.
struct MaintainResult {
  std::vector<Fact> inserts;  // net facts added to the materialization
  std::vector<Fact> deletes;  // net facts removed from it
  size_t overdeleted = 0;     // DRed provisional deletions across strata
  size_t rederived = 0;       // provisional deletions that came back
};

/// A Datalog program compiled for repeated semi-naive evaluation.
///
/// Compilation groups the rules into strata — the SCCs of the IDB
/// dependency graph, in topological order — and precomputes per-rule join
/// orderings: one for the initial full join and one per recursive body
/// atom (the semi-naive "delta" seat). Without statistics the compile-time
/// orders come from the shared GreedyAtomOrder heuristic (EDB atoms
/// first); BindStats re-plans them under the selectivity cost model, and
/// Eval by default plans from live statistics anyway (EvalOptions).
/// Construct once and Eval many times; the per-rule plans and strata are
/// reused across calls — and the same object serves the analyzer's plan
/// lints (AnalysisOptions::compiled) and evaluation, so lint and run judge
/// identical plans.
class CompiledProgram {
 public:
  explicit CompiledProgram(const Program& program);

  /// Re-plans the stored compile-time join orders under the selectivity
  /// cost model of `stats` and remembers the snapshot: DescribePlans then
  /// reports estimated intermediate sizes (so plan lints judge the plans
  /// against real numbers), and Eval with stats_planner=false runs these
  /// stats-driven orders verbatim.
  void BindStats(Stats stats);

  /// The snapshot from BindStats, or nullptr.
  const Stats* bound_stats() const {
    return bound_stats_ ? &*bound_stats_ : nullptr;
  }

  /// FPEval(Π, I) (Sec. 2): all facts of `input` plus every derivable IDB
  /// fact, over the same elements. Deterministic for any thread count and
  /// any statistics (plans affect order of exploration, not the result).
  /// When `stats` is non-null the run's counters are accumulated into it.
  Instance Eval(const Instance& input, EvalStats* stats = nullptr,
                const EvalOptions& options = {}) const;

  /// Eval plus derivation counting: the fixpoint of `input` whose facts
  /// carry exact derivation counts (number of rule derivations, plus one
  /// for base membership) for every non-recursive stratum, and exact
  /// statistics. Facts of recursive SCC strata keep count 1 — counting is
  /// unsound under recursion (a fact may support itself), which is
  /// exactly why Maintain switches to DRed there.
  Materialization Materialize(const Instance& input,
                              EvalStats* stats = nullptr,
                              const EvalOptions& options = {}) const;

  /// Incremental view maintenance: updates `m` in place so it equals
  /// Materialize(base) for the *new* base, given that it equaled
  /// Materialize of the old base. `base` is the already-mutated new base
  /// instance; `delta` lists its exact membership changes (see FactDelta).
  /// Non-recursive strata are maintained by counting (the ordered-delta
  /// join formula adjusts derivation counts; membership follows count
  /// zero-crossings), recursive SCC strata by delete-rederive (DRed):
  /// overdelete over the old state, remove, rederive survivors, then
  /// semi-naive insertion. Single-threaded and deterministic: the same
  /// schedule always yields the same instance, counts, and statistics.
  /// When `stats` is non-null the call's counters accumulate into it.
  MaintainResult Maintain(Materialization& m, const Instance& base,
                          const FactDelta& delta,
                          EvalStats* stats = nullptr) const;

  size_t num_strata() const { return strata_.size(); }
  const Program& program() const { return program_; }

  /// Description of one precomputed join order, for plan-level lints
  /// (analysis/) and debugging: the body-atom visit order of rule
  /// `rule` when seeded from `delta_atom` (-1 = the initial full join,
  /// otherwise a body-atom index whose variables start bound).
  struct JoinOrderDesc {
    size_t rule = 0;
    int delta_atom = -1;
    std::vector<uint32_t> order;  // body atom indices, join order
    // Estimated intermediate rows after each step; empty unless stats
    // are bound (BindStats).
    std::vector<double> est_rows;
  };

  /// All join orders of the compiled plans, one entry per (rule, seat).
  std::vector<JoinOrderDesc> DescribePlans() const;

  /// Human-readable rendering of DescribePlans, one line per (rule,
  /// seat), stable enough to pin in golden tests:
  ///   rule 0 (Head) full: R S(~4) T(~2.5)
  ///   rule 0 (Head) delta[1:S]: T R
  /// The (~n) estimates appear only when stats are bound. When the bound
  /// stats carry feedback corrections (Stats::Observe), a final line
  /// renders the correction table:
  ///   corrections: R x0.25 S x4
  std::string DescribePlansText() const;

 private:
  /// The fixed inputs of planning one (rule, delta-seat) pair, precomputed
  /// at compile time so per-stratum re-planning allocates next to nothing:
  /// the body atoms to order (the delta atom excluded), their variables,
  /// and the variables the delta fact pre-binds.
  struct SeatShape {
    std::vector<std::vector<ElemId>> sub;  // args of each atom to order
    std::vector<uint32_t> back;            // sub index -> body atom index
    std::vector<bool> bound0;              // vars pre-bound by the seat
  };
  struct RulePlan {
    QAtom head;
    std::vector<QAtom> body;
    size_t num_vars = 0;
    std::vector<int> recursive_atoms;  // body indices over same-SCC preds
    // seats[0]: the initial full join; seats[1 + i]: recursive_atoms[i]
    // as the delta seat. orders/est_rows align with seats; est_rows
    // entries are empty unless stats are bound.
    std::vector<SeatShape> seats;
    std::vector<std::vector<uint32_t>> orders;
    std::vector<std::vector<double>> est_rows;
  };
  struct Stratum {
    std::vector<uint32_t> plans;       // indices into plans_, program order
    std::unordered_set<PredId> preds;  // the SCC's predicates
    bool recursive = false;  // some rule has a same-SCC body atom
  };
  /// The recorded membership changes of one predicate during Maintain:
  /// `ins`/`del` in deterministic discovery order, `ins_set` for the
  /// old-state reconstruction (old = current − ins + del). Transparent
  /// hashing so stored rows probe the set as FactViews, copy-free.
  struct PredChange {
    std::vector<Fact> ins;
    std::vector<Fact> del;
    std::unordered_set<Fact, FactHash, FactEq> ins_set;
  };
  using ChangeMap = std::unordered_map<PredId, PredChange>;
  /// One unit of the per-iteration fan-out: fire plan `plan` either as a
  /// full join (rec < 0) or seeding recursive atom `rec` from each row of
  /// `*delta_rows` (rows of `delta_pred`), visiting the remaining atoms
  /// in `*order` — through `*kernel` when compiled, the interpreter
  /// otherwise.
  struct WorkItem {
    uint32_t plan = 0;
    int rec = -1;
    PredId delta_pred = kNoPred;
    const std::vector<uint32_t>* delta_rows = nullptr;
    const std::vector<uint32_t>* order = nullptr;
    const JoinKernel* kernel = nullptr;        // null = generic interpreter
    std::vector<size_t>* step_rows = nullptr;  // per-depth match counters
    size_t* seedings = nullptr;                // successful join seedings
  };

  /// Computes the join order for seat `seat` of `plan` (0 = full join,
  /// 1 + i = recursive atom i): selectivity-scored when `stats` is set,
  /// EDB-first greedy otherwise. `est_rows`, if non-null, receives the
  /// per-step estimates (cleared when no stats).
  std::vector<uint32_t> PlanOrder(const RulePlan& plan, size_t seat,
                                  const Stats* stats,
                                  std::vector<double>* est_rows) const;

  void RunItem(const WorkItem& item, const Instance& target, size_t* probes,
               DerivedBuffer* out) const;
  void Join(const RulePlan& plan, const std::vector<uint32_t>& order,
            size_t depth, std::vector<ElemId>& map, const Instance& target,
            size_t* probes, std::vector<size_t>* step_rows,
            DerivedBuffer* out) const;

  /// The maintenance engine's join: matches body atoms k.. of `plan` in
  /// body order (skipping `seat`, whose variables `map` pre-binds) and
  /// calls `out` once per complete match; `out` returns false to stop the
  /// enumeration early (rederivation checks need only a witness). Atoms
  /// flagged in `read_old` read the *old* state, reconstructed from the
  /// current instance and the recorded changes (current − ins + del);
  /// the rest read the current instance directly. Returns false iff some
  /// `out` call stopped the enumeration.
  bool MatchAtoms(const RulePlan& plan, int seat, size_t k,
                  const std::vector<uint8_t>& read_old, const Instance& inst,
                  const ChangeMap& changed, std::vector<ElemId>& map,
                  const std::function<bool(const std::vector<ElemId>&)>& out)
      const;

  /// Counting maintenance of the non-recursive stratum `si` (see
  /// Maintain); DRed maintenance of the recursive stratum `si`.
  void MaintainCounting(size_t si, const std::vector<const Fact*>& base_ins,
                        const std::vector<const Fact*>& base_del,
                        Instance& inst, ChangeMap& changed,
                        const std::function<void(const Fact&)>& record_ins,
                        const std::function<void(const Fact&)>& record_del)
      const;
  void MaintainDRed(size_t si, const Instance& base,
                    const std::vector<const Fact*>& base_ins,
                    const std::vector<const Fact*>& base_del, Instance& inst,
                    ChangeMap& changed, MaintainResult* res,
                    const std::function<void(const Fact&)>& record_ins,
                    const std::function<void(const Fact&)>& record_del) const;

  /// True iff some rule of stratum `si` derives `f` over `inst` as-is.
  bool Rederivable(const Fact& f, size_t si, const Instance& inst) const;

  Program program_;
  std::vector<RulePlan> plans_;
  std::vector<Stratum> strata_;
  std::unordered_map<PredId, size_t> stratum_of_;  // IDB pred -> stratum
  std::optional<Stats> bound_stats_;
};

}  // namespace mondet

#endif  // MONDET_DATALOG_EVAL_PLAN_H_
