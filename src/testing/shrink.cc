#include "testing/shrink.h"

#include <limits>
#include <optional>
#include <vector>

namespace mondet {
namespace testing {

namespace {

/// Drops body atom `ai`, recompacting variable ids densely (Rule::num_vars
/// requires it) in remaining-body first-use order. Returns nullopt when
/// the drop would leave the rule unsafe (a head variable no longer bound)
/// or the body empty.
std::optional<Rule> DropBodyAtom(const Rule& rule, size_t ai) {
  if (rule.body.size() <= 1) return std::nullopt;
  constexpr VarId kUnmapped = std::numeric_limits<VarId>::max();
  Rule out;
  std::vector<VarId> remap(rule.num_vars(), kUnmapped);
  auto used = [&](VarId raw) {
    if (remap[raw] == kUnmapped) {
      remap[raw] = static_cast<VarId>(out.var_names.size());
      out.var_names.push_back(rule.var_names[raw]);
    }
    return remap[raw];
  };
  for (size_t i = 0; i < rule.body.size(); ++i) {
    if (i == ai) continue;
    std::vector<VarId> args;
    for (VarId v : rule.body[i].args) args.push_back(used(v));
    out.body.push_back(QAtom(rule.body[i].pred, args));
  }
  std::vector<VarId> head_args;
  for (VarId v : rule.head.args) {
    if (remap[v] == kUnmapped) return std::nullopt;  // would be unsafe
    head_args.push_back(remap[v]);
  }
  out.head = QAtom(rule.head.pred, head_args);
  return out;
}

Program RebuildWithout(const Program& program, size_t drop_rule) {
  Program out(program.vocab());
  for (size_t ri = 0; ri < program.rules().size(); ++ri) {
    if (ri != drop_rule) out.AddRule(program.rules()[ri]);
  }
  return out;
}

Program RebuildWithRule(const Program& program, size_t ri, Rule replacement) {
  Program out(program.vocab());
  for (size_t rj = 0; rj < program.rules().size(); ++rj) {
    if (rj == ri) {
      out.AddRule(std::move(replacement));
    } else {
      out.AddRule(program.rules()[rj]);
    }
  }
  return out;
}

Instance RebuildWithoutFact(const Instance& inst, size_t drop_fact) {
  Instance out(inst.vocab());
  out.EnsureElements(inst.num_elements());
  for (size_t fi = 0; fi < inst.num_facts(); ++fi) {
    if (fi != drop_fact) out.AddFact(inst.FactAt(static_cast<uint32_t>(fi)));
  }
  return out;
}

/// All one-transition / one-final reductions of an NTA (states are kept:
/// an unreachable state is harmless and dropping it would renumber every
/// transition, defeating byte-level minimality comparisons).
std::vector<Nta> NtaReductions(const Nta& m) {
  std::vector<Nta> out;
  auto rebuild = [&](size_t drop_leaf, size_t drop_unary, size_t drop_binary,
                     std::optional<State> drop_final) {
    Nta r(m.width());
    for (size_t i = 0; i < m.num_states(); ++i) r.AddState();
    for (State q : m.finals()) {
      if (!drop_final.has_value() || q != *drop_final) r.AddFinal(q);
    }
    for (size_t i = 0; i < m.leaf_transitions().size(); ++i) {
      if (i == drop_leaf) continue;
      const Nta::LeafTransition& t = m.leaf_transitions()[i];
      r.AddLeaf(t.label, t.to);
    }
    for (size_t i = 0; i < m.unary_transitions().size(); ++i) {
      if (i == drop_unary) continue;
      const Nta::UnaryTransition& t = m.unary_transitions()[i];
      r.AddUnary(t.label, t.edge, t.child, t.to);
    }
    for (size_t i = 0; i < m.binary_transitions().size(); ++i) {
      if (i == drop_binary) continue;
      const Nta::BinaryTransition& t = m.binary_transitions()[i];
      r.AddBinary(t.label, t.edge1, t.edge2, t.child1, t.child2, t.to);
    }
    return r;
  };
  constexpr size_t kKeep = std::numeric_limits<size_t>::max();
  for (size_t i = 0; i < m.leaf_transitions().size(); ++i) {
    out.push_back(rebuild(i, kKeep, kKeep, std::nullopt));
  }
  for (size_t i = 0; i < m.unary_transitions().size(); ++i) {
    out.push_back(rebuild(kKeep, i, kKeep, std::nullopt));
  }
  for (size_t i = 0; i < m.binary_transitions().size(); ++i) {
    out.push_back(rebuild(kKeep, kKeep, i, std::nullopt));
  }
  for (State q : m.finals()) {
    out.push_back(rebuild(kKeep, kKeep, kKeep, q));
  }
  return out;
}

/// All one-step reductions of `c`, most impactful first (whole rules and
/// batches before single atoms and mutations).
std::vector<FuzzCase> Candidates(const FuzzCase& c) {
  std::vector<FuzzCase> out;
  if (c.program.has_value()) {
    for (size_t ri = 0; ri < c.program->rules().size(); ++ri) {
      FuzzCase cand = c;
      cand.program = RebuildWithout(*c.program, ri);
      out.push_back(std::move(cand));
    }
  }
  for (size_t bi = 0; bi < c.schedule.size(); ++bi) {
    FuzzCase cand = c;
    cand.schedule.erase(cand.schedule.begin() + bi);
    out.push_back(std::move(cand));
  }
  for (size_t vi = 0; vi < c.views.size(); ++vi) {
    FuzzCase cand = c;
    cand.views.erase(cand.views.begin() + vi);
    out.push_back(std::move(cand));
  }
  if (c.instance.has_value()) {
    for (size_t fi = 0; fi < c.instance->num_facts(); ++fi) {
      FuzzCase cand = c;
      cand.instance = RebuildWithoutFact(*c.instance, fi);
      out.push_back(std::move(cand));
    }
  }
  if (c.program.has_value()) {
    for (size_t ri = 0; ri < c.program->rules().size(); ++ri) {
      const Rule& rule = c.program->rules()[ri];
      for (size_t ai = 0; ai < rule.body.size(); ++ai) {
        std::optional<Rule> smaller = DropBodyAtom(rule, ai);
        if (!smaller.has_value()) continue;
        FuzzCase cand = c;
        cand.program = RebuildWithRule(*c.program, ri, std::move(*smaller));
        out.push_back(std::move(cand));
      }
    }
  }
  for (size_t bi = 0; bi < c.schedule.size(); ++bi) {
    for (size_t j = 0; j < c.schedule[bi].inserts.size(); ++j) {
      FuzzCase cand = c;
      cand.schedule[bi].inserts.erase(cand.schedule[bi].inserts.begin() + j);
      out.push_back(std::move(cand));
    }
    for (size_t j = 0; j < c.schedule[bi].deletes.size(); ++j) {
      FuzzCase cand = c;
      cand.schedule[bi].deletes.erase(cand.schedule[bi].deletes.begin() + j);
      out.push_back(std::move(cand));
    }
  }
  if (c.tm.has_value()) {
    for (size_t si = 0; si < c.tm->input.size(); ++si) {
      FuzzCase cand = c;
      cand.tm->input.erase(cand.tm->input.begin() + si);
      out.push_back(std::move(cand));
    }
  }
  if (c.nta_a.has_value()) {
    for (Nta& r : NtaReductions(*c.nta_a)) {
      FuzzCase cand = c;
      cand.nta_a = std::move(r);
      out.push_back(std::move(cand));
    }
  }
  if (c.nta_b.has_value()) {
    for (Nta& r : NtaReductions(*c.nta_b)) {
      FuzzCase cand = c;
      cand.nta_b = std::move(r);
      out.push_back(std::move(cand));
    }
  }
  return out;
}

}  // namespace

ShrinkResult ShrinkCase(const Oracle& oracle, const FuzzCase& failing,
                        size_t max_checks) {
  ShrinkResult res;
  res.best = failing;
  bool progress = true;
  while (progress && res.checks < max_checks) {
    progress = false;
    for (FuzzCase& cand : Candidates(res.best)) {
      if (res.checks >= max_checks) break;
      ++res.checks;
      if (!oracle.Check(cand).ok) {
        // Still failing: keep the smaller case and restart the scan so
        // earlier (more impactful) reductions get another chance on it.
        res.best = std::move(cand);
        res.changed = true;
        progress = true;
        break;
      }
    }
  }
  return res;
}

}  // namespace testing
}  // namespace mondet
