#include "testing/oracle.h"

#include <algorithm>
#include <optional>
#include <string>
#include <unordered_set>
#include <vector>

#include "analysis/dataflow.h"
#include "automata/ops.h"
#include "base/homomorphism.h"
#include "core/mondet_check.h"
#include "datalog/eval.h"
#include "datalog/eval_plan.h"
#include "reductions/thm9.h"
#include "reductions/tiling.h"
#include "testing/corpus.h"
#include "testing/reference.h"
#include "testing/tm.h"

namespace mondet {
namespace testing {

namespace {

OracleOutcome Fail(const FuzzCase& c, const std::string& detail) {
  return {false, detail + "\n--- case ---\n" + DescribeCase(c)};
}

OracleOutcome Pass() { return {true, ""}; }

// --- Shared comparison helpers (gtest-free ports of the test idioms). ----

/// Same fact *set*: `got` holds exactly the facts of `want`.
std::optional<std::string> DiffSets(const Instance& want, const Instance& got,
                                    const std::string& tag) {
  if (want.num_facts() != got.num_facts()) {
    return tag + ": fact counts differ (" + std::to_string(want.num_facts()) +
           " vs " + std::to_string(got.num_facts()) + ")";
  }
  for (const Fact& f : want.AllFacts()) {
    if (!got.HasFact(f)) {
      return tag + ": missing fact " + FactToString(want, f);
    }
  }
  return std::nullopt;
}

/// Same fact *sequence*: byte-identical insertion order.
std::optional<std::string> DiffSequences(const Instance& a, const Instance& b,
                                         const std::string& tag) {
  if (a.num_facts() != b.num_facts()) {
    return tag + ": fact counts differ (" + std::to_string(a.num_facts()) +
           " vs " + std::to_string(b.num_facts()) + ")";
  }
  for (uint32_t i = 0; i < a.num_facts(); ++i) {
    const FactView fa = a.ViewAt(i);
    const FactView fb = b.ViewAt(i);
    if (!(fa == fb)) {
      return tag + ": fact " + std::to_string(i) + " differs (" +
             FactToString(a, fa) + " vs " + FactToString(b, fb) + ")";
    }
  }
  return std::nullopt;
}

// --- eval-differential ------------------------------------------------------
// Port of tests/eval_differential_test.cc: naive reference vs semi-naive
// at 1 and 4 threads — same set vs the oracle, same *sequence* and stats
// across thread counts, and dataflow pruning invisible with it off.

class EvalOracle : public Oracle {
 public:
  std::string name() const override { return "eval-differential"; }
  GenProfile Profile() const override { return EvalProfile(); }

  FuzzCase Generate(unsigned seed) const override {
    FuzzCase c;
    c.oracle = name();
    c.seed = seed;
    c.profile = EvalProfile();
    c.program = RandomProgram(c.profile, 7000 + seed);
    c.instance =
        RandomInstance(c.profile.vocab, SeededPreds(c.profile, seed),
                       c.profile.elems, c.profile.facts, 9000 + seed);
    return c;
  }

  OracleOutcome Check(const FuzzCase& c) const override {
    const Program& program = *c.program;
    const Instance& inst = *c.instance;

    Instance naive = NaiveFpEval(program, inst);
    EvalStats stats1, stats4;
    Instance semi1 = FpEval(program, inst, &stats1, EvalOptions{1});
    Instance semi4 = FpEval(program, inst, &stats4, EvalOptions{4});

    if (auto d = DiffSets(naive, semi1, "naive vs 1T")) return Fail(c, *d);
    if (auto d = DiffSequences(semi1, semi4, "1T vs 4T")) return Fail(c, *d);
    if (stats1.facts_derived != stats4.facts_derived) {
      return Fail(c, "facts_derived differs across thread counts");
    }
    if (stats1.iterations != stats4.iterations) {
      return Fail(c, "iterations differs across thread counts");
    }

    EvalOptions off1{1}, off4{4};
    off1.dataflow_prune = false;
    off4.dataflow_prune = false;
    EvalStats stats_off1;
    Instance noprune1 = FpEval(program, inst, &stats_off1, off1);
    Instance noprune4 = FpEval(program, inst, nullptr, off4);
    if (stats_off1.rules_pruned != 0) {
      return Fail(c, "rules_pruned nonzero with pruning off");
    }
    if (auto d = DiffSequences(semi1, noprune1, "pruned vs unpruned 1T")) {
      return Fail(c, *d);
    }
    if (auto d = DiffSequences(semi1, noprune4, "pruned 1T vs unpruned 4T")) {
      return Fail(c, *d);
    }
    return Pass();
  }
};

// --- plan-differential ------------------------------------------------------
// Port of tests/plan_differential_test.cc: the stats-driven planner
// agrees with the naive oracle, is deterministic across threads,
// invariant under planner/feedback/pruning toggles, and never executes a
// cross product on a connected join graph.

/// True when the rule's join graph — body atoms as nodes, edges between
/// atoms sharing a variable — has a single component (nullary excluded).
bool ConnectedJoinGraph(const Rule& rule) {
  std::vector<int> nodes;
  for (int i = 0; i < static_cast<int>(rule.body.size()); ++i) {
    if (!rule.body[i].args.empty()) nodes.push_back(i);
  }
  if (nodes.size() <= 1) return true;
  std::vector<bool> seen(rule.body.size(), false);
  std::vector<int> stack = {nodes[0]};
  seen[nodes[0]] = true;
  size_t reached = 1;
  auto shares = [&](int a, int b) {
    for (VarId va : rule.body[a].args) {
      for (VarId vb : rule.body[b].args) {
        if (va == vb) return true;
      }
    }
    return false;
  };
  while (!stack.empty()) {
    int cur = stack.back();
    stack.pop_back();
    for (int nxt : nodes) {
      if (!seen[nxt] && shares(cur, nxt)) {
        seen[nxt] = true;
        ++reached;
        stack.push_back(nxt);
      }
    }
  }
  return reached == nodes.size();
}

/// Replays one executed seat order; returns a message if any step joins
/// an atom with no bound variable while something is already bound (=
/// cross product). Nullary atoms are filters and exempt.
std::optional<std::string> CrossProductError(const Rule& rule,
                                             const JoinSeatStats& seat) {
  std::vector<bool> bound(rule.num_vars(), false);
  bool anything_bound = false;
  if (seat.delta_atom >= 0) {
    for (VarId v : rule.body[seat.delta_atom].args) bound[v] = true;
    anything_bound = !rule.body[seat.delta_atom].args.empty();
  }
  for (size_t k = 0; k < seat.order.size(); ++k) {
    const QAtom& atom = rule.body[seat.order[k]];
    bool shares = false;
    for (VarId v : atom.args) {
      if (bound[v]) shares = true;
    }
    if (anything_bound && !shares && !atom.args.empty()) {
      return "cross product at step " + std::to_string(k) + " of rule " +
             std::to_string(seat.rule) + " (delta_atom " +
             std::to_string(seat.delta_atom) + ")";
    }
    for (VarId v : atom.args) bound[v] = true;
    if (!atom.args.empty()) anything_bound = true;
  }
  return std::nullopt;
}

class PlanOracle : public Oracle {
 public:
  std::string name() const override { return "plan-differential"; }
  GenProfile Profile() const override { return PlanProfile(); }

  FuzzCase Generate(unsigned seed) const override {
    FuzzCase c;
    c.oracle = name();
    c.seed = seed;
    c.profile = PlanProfile();
    c.program = RandomProgram(c.profile, 17000 + seed);
    c.instance =
        RandomInstance(c.profile.vocab, SeededPreds(c.profile, seed),
                       c.profile.elems, c.profile.facts, 19000 + seed);
    return c;
  }

  OracleOutcome Check(const FuzzCase& c) const override {
    const Program& program = *c.program;
    const Instance& inst = *c.instance;
    CompiledProgram compiled(program);
    Instance naive = NaiveFpEval(program, inst);

    // 1. Stats-driven vs the naive oracle (gates forced open: the
    // planner and the pruning, not their size gates, are under test).
    EvalOptions opt1;
    opt1.num_threads = 1;
    opt1.plan_stats = true;
    opt1.stats_min_facts = 0;
    opt1.dataflow_min_facts = 0;
    EvalStats stats1;
    Instance semi1 = compiled.Eval(inst, &stats1, opt1);
    if (auto d = DiffSets(naive, semi1, "naive vs stats-driven 1T")) {
      return Fail(c, *d);
    }

    // 2. Thread-count determinism: identical fact sequences.
    EvalOptions opt4 = opt1;
    opt4.num_threads = 4;
    Instance semi4 = compiled.Eval(inst, nullptr, opt4);
    if (auto d = DiffSequences(semi1, semi4, "1T vs 4T")) return Fail(c, *d);

    // 3. Planner off (compile-time EDB-first orders): same fact set.
    EvalOptions opt_static;
    opt_static.num_threads = 1;
    opt_static.stats_planner = false;
    Instance plain = compiled.Eval(inst, nullptr, opt_static);
    if (auto d = DiffSets(naive, plain, "naive vs planner-off")) {
      return Fail(c, *d);
    }

    // 4. Feedback corrections off: same fact set.
    EvalOptions opt_nofb = opt1;
    opt_nofb.plan_feedback = false;
    Instance nofb = compiled.Eval(inst, nullptr, opt_nofb);
    if (auto d = DiffSets(naive, nofb, "naive vs feedback-off")) {
      return Fail(c, *d);
    }

    // 5. Executed-seat sanity + no cross products on connected graphs.
    bool saw_seat = false;
    for (const StratumStats& ss : stats1.strata) {
      for (const JoinSeatStats& seat : ss.seats) {
        saw_seat = true;
        const Rule& rule = program.rules()[seat.rule];
        const size_t expect =
            rule.body.size() - (seat.delta_atom >= 0 ? 1 : 0);
        if (seat.order.size() != expect) {
          return Fail(c, "seat order length " +
                             std::to_string(seat.order.size()) + " != " +
                             std::to_string(expect) + " for rule " +
                             std::to_string(seat.rule));
        }
        if (seat.est_rows.size() != seat.order.size() ||
            seat.actual_rows.size() != seat.order.size()) {
          return Fail(c, "seat estimate/measurement sizes mismatch order");
        }
        if (ConnectedJoinGraph(rule)) {
          if (auto d = CrossProductError(rule, seat)) return Fail(c, *d);
        }
      }
    }
    const std::vector<bool> dead = DeadRuleMask(program, inst);
    size_t n_dead = 0;
    for (bool d : dead) n_dead += d ? 1 : 0;
    if (n_dead < dead.size() && !saw_seat) {
      return Fail(c, "plan_stats produced no seat observations");
    }
    if (stats1.rules_pruned != n_dead) {
      return Fail(c, "rules_pruned " + std::to_string(stats1.rules_pruned) +
                         " != dead-rule count " + std::to_string(n_dead));
    }

    // 6. Dataflow pruning off: byte-identical sequences, both threads.
    EvalOptions opt_noprune1 = opt1;
    opt_noprune1.dataflow_prune = false;
    EvalOptions opt_noprune4 = opt4;
    opt_noprune4.dataflow_prune = false;
    EvalStats stats_np;
    Instance noprune1 = compiled.Eval(inst, &stats_np, opt_noprune1);
    Instance noprune4 = compiled.Eval(inst, nullptr, opt_noprune4);
    if (stats_np.rules_pruned != 0) {
      return Fail(c, "rules_pruned nonzero with pruning off");
    }
    if (auto d = DiffSequences(semi1, noprune1, "pruned vs unpruned 1T")) {
      return Fail(c, *d);
    }
    if (auto d = DiffSequences(semi1, noprune4, "pruned 1T vs unpruned 4T")) {
      return Fail(c, *d);
    }
    return Pass();
  }
};

// --- kernel-differential ----------------------------------------------------
// The compiled-kernel data plane against its own escape hatch: the same
// program and instance evaluated with compiled kernels on and off, at 1
// and 4 threads, plus the static planner (compile-time EDB-first orders,
// which exercises kernel shapes the stats planner never picks). Kernels
// must be invisible in every observable — fact *sequences* byte-identical
// across all arms, derivation counters equal — while the naive reference
// anchors the fact *set*. join_probes is deliberately NOT compared: a
// fully-bound membership step costs one probe in a kernel but a
// bucket-size scan in the interpreter, so the counter legitimately
// differs between the two planes.

class KernelOracle : public Oracle {
 public:
  std::string name() const override { return "kernel-differential"; }
  GenProfile Profile() const override { return PlanProfile(); }

  FuzzCase Generate(unsigned seed) const override {
    FuzzCase c;
    c.oracle = name();
    c.seed = seed;
    c.profile = PlanProfile();
    c.program = RandomProgram(c.profile, 21000 + seed);
    c.instance =
        RandomInstance(c.profile.vocab, SeededPreds(c.profile, seed),
                       c.profile.elems, c.profile.facts, 23000 + seed);
    return c;
  }

  OracleOutcome Check(const FuzzCase& c) const override {
    const Program& program = *c.program;
    const Instance& inst = *c.instance;
    CompiledProgram compiled(program);
    Instance naive = NaiveFpEval(program, inst);

    // Kernels on, stats planner forced on (stats_min_facts = 0 so small
    // fuzz instances still take the planned path the kernels compile,
    // kernel_min_facts = 0 so the size gate never routes them to the
    // interpreter — every arm below exercises the plane it names).
    EvalOptions on1;
    on1.num_threads = 1;
    on1.stats_min_facts = 0;
    on1.kernel_min_facts = 0;
    EvalOptions on4 = on1;
    on4.num_threads = 4;
    EvalStats s_on1, s_on4;
    Instance r_on1 = compiled.Eval(inst, &s_on1, on1);
    Instance r_on4 = compiled.Eval(inst, &s_on4, on4);
    if (auto d = DiffSets(naive, r_on1, "naive vs kernels-on 1T")) {
      return Fail(c, *d);
    }
    if (auto d = DiffSequences(r_on1, r_on4, "kernels-on 1T vs 4T")) {
      return Fail(c, *d);
    }

    // The escape hatch: same plans, interpreted generically.
    EvalOptions off1 = on1, off4 = on4;
    off1.compiled_kernels = false;
    off4.compiled_kernels = false;
    EvalStats s_off1;
    Instance r_off1 = compiled.Eval(inst, &s_off1, off1);
    Instance r_off4 = compiled.Eval(inst, nullptr, off4);
    if (auto d = DiffSequences(r_on1, r_off1, "kernels on vs off 1T")) {
      return Fail(c, *d);
    }
    if (auto d = DiffSequences(r_on1, r_off4, "kernels-on 1T vs off 4T")) {
      return Fail(c, *d);
    }
    if (s_on1.facts_derived != s_off1.facts_derived) {
      return Fail(c, "facts_derived differs with kernels off");
    }
    if (s_on1.iterations != s_off1.iterations) {
      return Fail(c, "iterations differs with kernels off");
    }
    if (s_on1.facts_derived != s_on4.facts_derived) {
      return Fail(c, "facts_derived differs across thread counts");
    }

    // Static planner: different join orders, hence different kernels;
    // the set (not the sequence — orders differ) must still agree, with
    // kernels on and off.
    EvalOptions st_on;
    st_on.num_threads = 1;
    st_on.stats_planner = false;
    st_on.kernel_min_facts = 0;
    EvalOptions st_off = st_on;
    st_off.compiled_kernels = false;
    Instance r_st_on = compiled.Eval(inst, nullptr, st_on);
    Instance r_st_off = compiled.Eval(inst, nullptr, st_off);
    if (auto d = DiffSets(naive, r_st_on, "naive vs static+kernels")) {
      return Fail(c, *d);
    }
    if (auto d = DiffSequences(r_st_on, r_st_off,
                               "static planner, kernels on vs off")) {
      return Fail(c, *d);
    }
    return Pass();
  }
};

// --- maintenance-differential -----------------------------------------------
// Port of tests/maintenance_differential_test.cc: the maintained
// materialization equals a from-scratch Materialize (at 1 and 0=env
// threads) after every prefix of the raw insert/delete schedule.

/// The bit-identical contract: same elements, same fact set, same
/// derivation count per fact, same statistics.
std::optional<std::string> DiffMaterializations(const Materialization& got,
                                                const Materialization& want,
                                                const VocabularyPtr& vocab,
                                                const std::string& tag) {
  if (got.inst.num_elements() != want.inst.num_elements()) {
    return tag + ": element counts differ";
  }
  if (got.inst.num_facts() != want.inst.num_facts()) {
    return tag + ": fact counts differ (" +
           std::to_string(got.inst.num_facts()) + " vs " +
           std::to_string(want.inst.num_facts()) + ")";
  }
  std::vector<Fact> gf = got.inst.AllFacts(), wf = want.inst.AllFacts();
  std::sort(gf.begin(), gf.end());
  std::sort(wf.begin(), wf.end());
  for (size_t i = 0; i < gf.size(); ++i) {
    if (!(gf[i] == wf[i])) {
      return tag + ": sorted fact " + std::to_string(i) + " differs";
    }
    if (got.inst.FactCount(gf[i]) != want.inst.FactCount(wf[i])) {
      return tag + ": derivation count of " + FactToString(want.inst, wf[i]) +
             " differs (" + std::to_string(got.inst.FactCount(gf[i])) +
             " vs " + std::to_string(want.inst.FactCount(wf[i])) + ")";
    }
  }
  if (got.stats.counted_facts() != want.stats.counted_facts()) {
    return tag + ": stats counted_facts differ";
  }
  for (PredId p : vocab->AllPredicates()) {
    if (got.stats.cardinality(p) != want.stats.cardinality(p)) {
      return tag + ": cardinality of " + vocab->name(p) + " differs";
    }
    for (int i = 0; i < vocab->arity(p); ++i) {
      if (got.stats.distinct(p, i) != want.stats.distinct(p, i)) {
        return tag + ": distinct(" + vocab->name(p) + ", " +
               std::to_string(i) + ") differs";
      }
    }
  }
  return std::nullopt;
}

class MaintenanceOracle : public Oracle {
 public:
  std::string name() const override { return "maintenance-differential"; }
  GenProfile Profile() const override { return EvalProfile(); }

  FuzzCase Generate(unsigned seed) const override {
    FuzzCase c;
    c.oracle = name();
    c.seed = seed;
    c.profile = EvalProfile();
    c.program = RandomProgram(c.profile, 11000 + seed);
    std::mt19937 rng(12000 + seed);
    std::vector<PredId> churn = SeededPreds(c.profile, seed);
    // The historical oracle used a slightly smaller base (8 facts) than
    // the eval family so deletions bite.
    c.instance = RandomInstance(c.profile.vocab, churn, c.profile.elems, 8,
                                13000 + seed);
    const int steps = 4 + seed % 4;
    c.schedule = RandomSchedule(c.profile, churn, *c.instance, steps, rng);
    return c;
  }

  OracleOutcome Check(const FuzzCase& c) const override {
    const Program& program = *c.program;
    CompiledProgram compiled(program);
    Instance base = *c.instance;  // evolves under the schedule

    EvalOptions opt1;
    opt1.num_threads = 1;
    opt1.stats_min_facts = 0;
    // The second recompute runs at MONDET_THREADS when set (the ASan arm
    // of scripts/tier1.sh sweeps 1 and 4), else hardware concurrency.
    EvalOptions opt4;
    opt4.num_threads = 0;
    opt4.stats_min_facts = 0;

    Materialization m = compiled.Materialize(base, nullptr, opt1);
    if (auto d = DiffMaterializations(
            m, compiled.Materialize(base, nullptr, opt4), c.profile.vocab,
            "t0 1T vs envT")) {
      return Fail(c, *d);
    }

    for (size_t step = 0; step < c.schedule.size(); ++step) {
      RawBatch applied = NormalizeAndApply(c.schedule[step], base);
      FactDelta delta;
      delta.inserts = applied.inserts;
      delta.deletes = applied.deletes;
      compiled.Maintain(m, base, delta);

      const std::string tag = "step " + std::to_string(step);
      if (auto d = DiffMaterializations(
              m, compiled.Materialize(base, nullptr, opt1), c.profile.vocab,
              tag + " (vs 1T recompute)")) {
        return Fail(c, *d);
      }
      if (auto d = DiffMaterializations(
              m, compiled.Materialize(base, nullptr, opt4), c.profile.vocab,
              tag + " (vs envT recompute)")) {
        return Fail(c, *d);
      }
    }
    return Pass();
  }
};

// --- dataflow-soundness -----------------------------------------------------
// Port of tests/dataflow_soundness_test.cc's four TEST_P properties (the
// deterministic cases stay in the test file). The instance-free arms are
// gated on the case's actual content — no seeded IDB facts — rather than
// the historical seed parity, so shrunk cases remain fully checkable.

class DataflowOracle : public Oracle {
 public:
  std::string name() const override { return "dataflow-soundness"; }
  GenProfile Profile() const override { return DataflowProfile(); }

  FuzzCase Generate(unsigned seed) const override {
    FuzzCase c;
    c.oracle = name();
    c.seed = seed;
    c.profile = DataflowProfile();
    c.program = RandomProgram(c.profile, 7000 + seed);
    c.instance =
        RandomInstance(c.profile.vocab, SeededPreds(c.profile, seed),
                       c.profile.elems, c.profile.facts, 9000 + seed);
    return c;
  }

  OracleOutcome Check(const FuzzCase& c) const override {
    const Program& program = *c.program;
    const Instance& inst = *c.instance;
    const VocabularyPtr& vocab = c.profile.vocab;
    Instance fix = NaiveFpEval(program, inst);

    // The instance-free analysis assumes IDB relations start empty, so
    // its soundness arms only apply to IDB-free inputs.
    bool idb_free = true;
    for (const Fact& f : inst.AllFacts()) {
      if (program.IsIdb(f.pred)) idb_free = false;
    }

    // 1. Concrete fixpoint within gamma(abstract fixpoint).
    EmptinessResult er = AnalyzeEmptiness(program, &inst);
    for (const Fact& f : fix.AllFacts()) {
      auto it = er.preds.find(f.pred);
      if (it == er.preds.end()) {
        return Fail(c, "no abstract value for " + vocab->name(f.pred));
      }
      const PredAbstract& pa = it->second;
      if (!pa.nonempty) {
        return Fail(c, "fact over " + vocab->name(f.pred) +
                           " but predicate abstractly empty");
      }
      if (pa.pos.size() != f.args.size()) {
        return Fail(c, "abstract arity mismatch for " + vocab->name(f.pred));
      }
      for (size_t j = 0; j < f.args.size(); ++j) {
        if (!pa.pos[j].Admits(f.args[j])) {
          return Fail(c, vocab->name(f.pred) + " position " +
                             std::to_string(j) +
                             " rejects a concrete value");
        }
      }
    }
    for (PredId p : er.empty_idbs) {
      if (fix.NumRows(p) > 0) {
        return Fail(c, vocab->name(p) + " flagged empty but holds a fact");
      }
    }
    EmptinessResult free_er = AnalyzeEmptiness(program, nullptr);
    if (idb_free) {
      for (PredId p : free_er.empty_idbs) {
        if (fix.NumRows(p) > 0) {
          return Fail(c, "instance-free emptiness unsound for " +
                             vocab->name(p));
        }
      }
    }

    // 2. Dead rules never fire; instance-free mask weaker than seeded.
    if (er.rule_dead.size() != program.rules().size() ||
        free_er.rule_dead.size() != program.rules().size()) {
      return Fail(c, "rule_dead size mismatch");
    }
    for (size_t ri = 0; ri < program.rules().size(); ++ri) {
      if (idb_free && free_er.rule_dead[ri] && !er.rule_dead[ri]) {
        return Fail(c, "rule " + std::to_string(ri) +
                           " dead without a seed but live with one");
      }
      if (er.rule_dead[ri]) {
        const Rule& rule = program.rules()[ri];
        Instance pattern(vocab);
        pattern.EnsureElements(rule.num_vars());
        for (const QAtom& a : rule.body) {
          pattern.AddFact(a.pred,
                          std::vector<ElemId>(a.args.begin(), a.args.end()));
        }
        if (HasHomomorphism(pattern, fix)) {
          return Fail(c, "dead rule " + std::to_string(ri) +
                             " has a body match in the fixpoint");
        }
        if (er.dead_reasons[ri].detail.empty()) {
          return Fail(c, "dead rule " + std::to_string(ri) +
                             " carries no reason");
        }
      }
    }
    if (DeadRuleMask(program, inst) != er.rule_dead) {
      return Fail(c, "DeadRuleMask disagrees with seeded analysis");
    }

    // 3. Pruning is bit-identical (and saves, never adds, iterations).
    EvalOptions on1{1}, on4{4}, off1{1}, off4{4};
    on1.dataflow_min_facts = 0;
    on4.dataflow_min_facts = 0;
    off1.dataflow_prune = false;
    off4.dataflow_prune = false;
    EvalStats s_on1, s_on4, s_off1, s_off4;
    Instance r_on1 = FpEval(program, inst, &s_on1, on1);
    Instance r_on4 = FpEval(program, inst, &s_on4, on4);
    Instance r_off1 = FpEval(program, inst, &s_off1, off1);
    Instance r_off4 = FpEval(program, inst, &s_off4, off4);
    if (auto d = DiffSequences(r_on1, r_off1, "prune-on vs off 1T")) {
      return Fail(c, *d);
    }
    if (auto d = DiffSequences(r_on1, r_on4, "prune-on 1T vs 4T")) {
      return Fail(c, *d);
    }
    if (auto d = DiffSequences(r_on1, r_off4, "prune-on 1T vs off 4T")) {
      return Fail(c, *d);
    }
    if (s_on1.facts_derived != s_off1.facts_derived) {
      return Fail(c, "facts_derived differ with pruning");
    }
    if (s_on1.iterations > s_off1.iterations) {
      return Fail(c, "pruning increased iterations");
    }
    if (s_on1.rules_pruned != s_on4.rules_pruned) {
      return Fail(c, "rules_pruned differ across thread counts");
    }
    if (s_off1.rules_pruned != 0) {
      return Fail(c, "rules_pruned nonzero with pruning off");
    }
    const std::vector<bool> dead = DeadRuleMask(program, inst);
    size_t n_dead = 0;
    for (bool d : dead) n_dead += d ? 1 : 0;
    if (s_on1.rules_pruned != n_dead) {
      return Fail(c, "rules_pruned != dead-rule count");
    }

    // 4. Dropping subsumed rules / redundant atoms preserves the fixpoint.
    SubsumptionResult sr = AnalyzeSubsumption(program);
    if (sr.subsumed_by.size() != program.rules().size()) {
      return Fail(c, "subsumed_by size mismatch");
    }
    bool any_subsumed = false;
    Program reduced(vocab);
    for (size_t ri = 0; ri < program.rules().size(); ++ri) {
      if (sr.subsumed_by[ri] >= 0) {
        any_subsumed = true;
        if (sr.subsumed_by[ri] == static_cast<int>(ri) ||
            sr.subsumed_by[ri] >=
                static_cast<int>(program.rules().size())) {
          return Fail(c, "bad subsumer index for rule " + std::to_string(ri));
        }
        continue;
      }
      reduced.AddRule(program.rules()[ri]);
    }
    if (any_subsumed) {
      Instance fix2 = NaiveFpEval(reduced, inst);
      if (auto d = DiffSets(fix, fix2, "dropping subsumed rules")) {
        return Fail(c, *d);
      }
    }
    for (size_t ri = 0; ri < program.rules().size(); ++ri) {
      for (int ai : sr.redundant_atoms[ri]) {
        Program without(vocab);
        for (size_t rj = 0; rj < program.rules().size(); ++rj) {
          Rule r = program.rules()[rj];
          if (rj == ri) r.body.erase(r.body.begin() + ai);
          without.AddRule(r);
        }
        Instance fix2 = NaiveFpEval(without, inst);
        if (auto d = DiffSets(fix, fix2,
                              "dropping redundant atom " +
                                  std::to_string(ai) + " of rule " +
                                  std::to_string(ri))) {
          return Fail(c, *d);
        }
      }
    }
    return Pass();
  }
};

// --- mondet-parallel --------------------------------------------------------
// Port of tests/mondet_parallel_test.cc: CheckMonotonicDeterminacy is
// bit-identical across thread counts and cache settings.

std::optional<std::string> DiffMonDetInstances(const Instance& a,
                                               const Instance& b,
                                               const std::string& what) {
  if (a.num_elements() != b.num_elements()) {
    return what + ": element counts differ";
  }
  return DiffSequences(a, b, what);
}

std::optional<std::string> DiffMonDetResults(const MonDetResult& a,
                                             const MonDetResult& b,
                                             const std::string& what) {
  if (a.verdict != b.verdict) return what + ": verdicts differ";
  if (a.tests_run != b.tests_run) {
    return what + ": tests_run differ (" + std::to_string(a.tests_run) +
           " vs " + std::to_string(b.tests_run) + ")";
  }
  if (a.expansions_tried != b.expansions_tried) {
    return what + ": expansions_tried differ";
  }
  if (a.failure.has_value() != b.failure.has_value()) {
    return what + ": one run found a counterexample, the other did not";
  }
  if (a.failure) {
    if (auto d = DiffMonDetInstances(a.failure->approximation.inst,
                                     b.failure->approximation.inst,
                                     what + " approximation")) {
      return d;
    }
    if (a.failure->approximation.frontier !=
        b.failure->approximation.frontier) {
      return what + ": approximation frontiers differ";
    }
    if (auto d = DiffMonDetInstances(a.failure->dprime, b.failure->dprime,
                                     what + " dprime")) {
      return d;
    }
  }
  return std::nullopt;
}

class ParallelOracle : public Oracle {
 public:
  std::string name() const override { return "mondet-parallel"; }
  GenProfile Profile() const override { return QueryProfile(); }

  FuzzCase Generate(unsigned seed) const override {
    FuzzCase c;
    c.oracle = name();
    c.seed = seed;
    c.profile = QueryProfile();
    c.program = RandomGoalProgram(c.profile, 5000 + seed);
    c.views = RandomViewSpecs(c.profile, seed);
    return c;
  }

  OracleOutcome Check(const FuzzCase& c) const override {
    DatalogQuery query(*c.program, c.profile.goal);
    ViewSet views = BuildViews(c.profile.vocab, c.views);

    MonDetOptions base;
    base.query_depth = 3;
    base.view_depth = 3;
    base.max_query_expansions = 24;
    base.max_tests_per_expansion = 48;

    MonDetOptions t1 = base, t4 = base, t1n = base, t4n = base;
    t1.num_threads = 1;
    t1.test_cache = true;
    t4.num_threads = 4;
    t4.test_cache = true;
    t1n.num_threads = 1;
    t1n.test_cache = false;
    t4n.num_threads = 4;
    t4n.test_cache = false;

    MonDetResult r1 = CheckMonotonicDeterminacy(query, views, t1);
    MonDetResult r4 = CheckMonotonicDeterminacy(query, views, t4);
    MonDetResult r1n = CheckMonotonicDeterminacy(query, views, t1n);
    MonDetResult r4n = CheckMonotonicDeterminacy(query, views, t4n);

    if (auto d = DiffMonDetResults(r1, r4, "1T vs 4T (cache)")) {
      return Fail(c, *d);
    }
    if (auto d = DiffMonDetResults(r1, r1n, "cache vs no-cache (1T)")) {
      return Fail(c, *d);
    }
    if (auto d = DiffMonDetResults(r1, r4n, "1T cache vs 4T no-cache")) {
      return Fail(c, *d);
    }
    if (r1n.cache_hits + r1n.cache_misses != 0 ||
        r4n.cache_hits + r4n.cache_misses != 0) {
      return Fail(c, "cache-off run touched the cache");
    }
    if (r1.verdict != Verdict::kInvalidInput &&
        r1.cache_hits + r1.cache_misses > r1.tests_run) {
      return Fail(c, "cache traffic exceeds tests_run");
    }
    return Pass();
  }
};

// --- tm-reduction -----------------------------------------------------------
// The executable undecidability frontier: a builtin machine's bounded run
// is compiled through the tiling reduction (testing/tm.h); the extracted
// certificate must re-check, the backtracking solver must agree on the
// exact grid and refute the truncated grids, and the Thm 9 run-string
// gadget must accept both the faithful and a corrupted encoding of the
// same run. Machines that do not halt within the budget pass vacuously
// (the semi-decision boundary).

class TmOracle : public Oracle {
 public:
  std::string name() const override { return "tm-reduction"; }
  // TM cases carry no generated program; the profile is only the corpus
  // vocabulary anchor.
  GenProfile Profile() const override { return EvalProfile(); }

  FuzzCase Generate(unsigned seed) const override {
    FuzzCase c;
    c.oracle = name();
    c.seed = seed;
    c.profile = EvalProfile();
    const std::vector<std::string> names = BuiltinTmNames();
    TmCase tc;
    tc.machine = names[seed % names.size()];
    // Short all-ones inputs: the eraser is quadratic, so longer tapes
    // blow the grid up past what the backtracking solver refutes quickly.
    tc.input.assign(1 + (seed / names.size()) % 3, 1);
    tc.max_steps = 200;
    c.tm = tc;
    return c;
  }

  OracleOutcome Check(const FuzzCase& c) const override {
    if (!c.tm.has_value()) return Fail(c, "tm-reduction case without [tm]");
    const TmCase& tc = *c.tm;
    const std::vector<std::string> names = BuiltinTmNames();
    if (std::find(names.begin(), names.end(), tc.machine) == names.end()) {
      return Fail(c, "unknown machine " + tc.machine);
    }
    for (int sym : tc.input) {
      if (sym != 0 && sym != 1) return Fail(c, "input symbol out of range");
    }
    const TuringMachine tm = BuiltinTm(tc.machine);

    std::optional<TmTiling> tiling =
        CompileTmRun(tm, tc.input, tc.max_steps);
    if (!tiling.has_value()) return Pass();  // no halt, no verdict

    // (a) The certificate extracted from the trace re-checks directly.
    std::string why;
    if (!CheckTiling(tiling->tp, tiling->n, tiling->m, tiling->cert, &why)) {
      return Fail(c, "extracted certificate rejected: " + why);
    }
    // (b)/(c) use the exhaustive backtracking solver, whose refutation
    // arms must sweep the whole search space — exponential in grid area.
    // A 4x15 eraser grid (60 cells) exhausts in ~0.5s; 5x25 takes hours.
    // Gate the exhaustive arms on area so every machine/input still gets
    // the certificate re-check above and the Thm 9 arms below.
    const long area = static_cast<long>(tiling->n) * tiling->m;
    constexpr long kSolverAreaCap = 64;
    if (area <= kSolverAreaCap) {
      // (b) The solver solves the exact grid, and its witness re-checks.
      std::optional<std::vector<int>> sol =
          tiling->tp.Solve(tiling->n, tiling->m);
      if (!sol.has_value()) {
        return Fail(c, "solver found no tiling on the certified grid");
      }
      if (!CheckTiling(tiling->tp, tiling->n, tiling->m, *sol, &why)) {
        return Fail(c, "solver witness rejected: " + why);
      }
      // (c) Truncated grids are unsolvable: the construction pins the
      // run length, which is what makes the reduction faithful.
      if (tiling->m > 3 &&
          tiling->tp.Solve(tiling->n, tiling->m - 1).has_value()) {
        return Fail(c, "truncated grid unexpectedly solvable");
      }
    }
    // The height-2 refutation dies in the first rows; always cheap.
    if (tiling->tp.Solve(tiling->n, 2).has_value()) {
      return Fail(c, "height-2 grid unexpectedly solvable");
    }
    // (d) The Thm 9 run-string gadget accepts the faithful encoding (the
    // run reaches accept) and the corrupted one (local corruption fires).
    Thm9Gadget gadget = BuildThm9(tm);
    Instance run = gadget.EncodeRun(tc.input, tc.max_steps);
    if (!DatalogHoldsOn(gadget.query, run)) {
      return Fail(c, "Thm 9 query rejects the faithful run string");
    }
    Instance corrupted = gadget.EncodeCorruptedRun(tc.input, tc.max_steps);
    if (!DatalogHoldsOn(gadget.query, corrupted)) {
      return Fail(c, "Thm 9 query rejects the corrupted run string");
    }
    return Pass();
  }
};

// --- antichain-inclusion ----------------------------------------------------
// The lazy antichain inclusion check against every other way the library
// can decide the same question: the unpruned lazy walk (escape hatch),
// the explicit Complement + product-emptiness route (both materialized
// and via LazyProductEmptiness), and a brute-force sweep of the
// enumerable code universe. The first three are exact over the shared
// universe, so their verdicts must be *equal*; the enumeration is a
// sound refuter only (a separating code can be larger than the
// enumerated depth), so it participates in the sound directions:
// enumerated separating code => not included, and every non-inclusion
// witness must itself be accepted by `a` and rejected by `b`.

class AntichainOracle : public Oracle {
 public:
  std::string name() const override { return "antichain-inclusion"; }
  // NTA cases carry no generated program; the profile is only the corpus
  // vocabulary anchor (as with tm-reduction).
  GenProfile Profile() const override { return EvalProfile(); }

  FuzzCase Generate(unsigned seed) const override {
    FuzzCase c;
    c.oracle = name();
    c.seed = seed;
    c.profile = EvalProfile();
    c.nta_a = RandomNta(31000 + seed);
    Nta b = RandomNta(33000 + seed);
    // Every third seed unions the left side into the right, so
    // guaranteed-included instances (no early exit, full exploration)
    // are as common as the random mostly-not-included ones.
    if (seed % 3 == 0) b = UnionNta(b, *c.nta_a);
    c.nta_b = std::move(b);
    return c;
  }

  OracleOutcome Check(const FuzzCase& c) const override {
    if (!c.nta_a.has_value() || !c.nta_b.has_value()) {
      return Fail(c, "antichain-inclusion case without [nta a]/[nta b]");
    }
    const Nta& a = *c.nta_a;
    const Nta& b = *c.nta_b;
    SymbolUniverse universe = SymbolsOf(a);
    universe.Merge(SymbolsOf(b));

    const NtaInclusionResult anti = NtaIncluded(a, b, universe);
    NtaInclusionOptions no_prune;
    no_prune.antichain_prune = false;
    const NtaInclusionResult plain = NtaIncluded(a, b, universe, no_prune);
    if (anti.included != plain.included) {
      return Fail(c, "antichain vs unpruned lazy verdicts differ");
    }

    // Explicit route: complement, then product emptiness two ways.
    const Nta comp = Complement(b, universe);
    const bool explicit_included = IsEmpty(Product(a, comp));
    if (anti.included != explicit_included) {
      return Fail(c, std::string("antichain says ") +
                         (anti.included ? "included" : "not included") +
                         ", explicit Complement+Product disagrees");
    }
    const LazyProductResult lazy = LazyProductEmptiness(a, comp);
    if (lazy.empty != explicit_included) {
      return Fail(c, "LazyProductEmptiness disagrees with IsEmpty(Product)");
    }
    if (!lazy.empty) {
      if (!lazy.witness.has_value()) {
        return Fail(c, "nonempty lazy product without witness");
      }
      if (!lazy.witness->Validate() || !a.Accepts(*lazy.witness) ||
          !comp.Accepts(*lazy.witness)) {
        return Fail(c, "lazy product witness not accepted by both sides");
      }
    }

    // The antichain never materializes more macrostates than the
    // explicit determinization has states (every interned macrostate is
    // a reachable subset).
    const Nta det = Determinize(b, universe);
    if (anti.macrostates_visited > det.num_states()) {
      return Fail(c, "antichain interned more macrostates (" +
                         std::to_string(anti.macrostates_visited) +
                         ") than Determinize built (" +
                         std::to_string(det.num_states()) + ")");
    }
    if (anti.pairs_explored > plain.pairs_explored) {
      return Fail(c, "pruning increased the explored pair count");
    }
    if (plain.subsumption_prunes != 0) {
      return Fail(c, "subsumption_prunes nonzero with pruning off");
    }

    // Witness contract, for both lazy routes.
    for (const NtaInclusionResult* r : {&anti, &plain}) {
      if (r->included != !r->witness.has_value()) {
        return Fail(c, "witness presence disagrees with the verdict");
      }
      if (r->witness.has_value()) {
        if (!r->witness->Validate() || r->witness->width != a.width()) {
          return Fail(c, "malformed non-inclusion witness");
        }
        if (!a.Accepts(*r->witness)) {
          return Fail(c, "non-inclusion witness rejected by a");
        }
        if (b.Accepts(*r->witness)) {
          return Fail(c, "non-inclusion witness accepted by b");
        }
      }
    }

    // Brute force over the enumerable universe (sound directions only).
    for (const TreeCode& code : NtaEnumerationCodes()) {
      if (a.Accepts(code) && !b.Accepts(code) && anti.included) {
        return Fail(c, "enumerated separating code but verdict is included");
      }
    }

    // Reflexivity sanity on both sides.
    if (!NtaIncluded(a, a, universe).included ||
        !NtaIncluded(b, b, universe).included) {
      return Fail(c, "an automaton is not included in itself");
    }
    return Pass();
  }
};

}  // namespace

const std::vector<const Oracle*>& AllOracles() {
  static const std::vector<const Oracle*>* all = [] {
    auto* v = new std::vector<const Oracle*>();
    v->push_back(new EvalOracle());
    v->push_back(new PlanOracle());
    v->push_back(new KernelOracle());
    v->push_back(new MaintenanceOracle());
    v->push_back(new DataflowOracle());
    v->push_back(new ParallelOracle());
    v->push_back(new TmOracle());
    v->push_back(new AntichainOracle());
    return v;
  }();
  return *all;
}

const Oracle* FindOracle(const std::string& name) {
  for (const Oracle* o : AllOracles()) {
    if (o->name() == name) return o;
  }
  return nullptr;
}

std::string DescribeCase(const FuzzCase& c) { return SerializeCase(c); }

}  // namespace testing
}  // namespace mondet
