#include "testing/corpus.h"

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "base/check.h"
#include "datalog/parser.h"
#include "testing/describe.h"
#include "testing/generator.h"

namespace mondet {
namespace testing {

namespace {

std::string Trim(const std::string& s) {
  size_t b = s.find_first_not_of(" \t\r\n");
  if (b == std::string::npos) return "";
  size_t e = s.find_last_not_of(" \t\r\n");
  return s.substr(b, e - b + 1);
}

/// Parses one `Pred(e0,e3)` fact rendering (no sign, no trailing dot).
bool ParseFactBody(const std::string& text, const VocabularyPtr& vocab,
                   size_t num_elements, Fact* out, std::string* error) {
  size_t open = text.find('(');
  size_t close = text.rfind(')');
  if (open == std::string::npos || close == std::string::npos ||
      close < open) {
    *error = "malformed fact `" + text + "`";
    return false;
  }
  std::string name = Trim(text.substr(0, open));
  std::optional<PredId> pred = vocab->FindPredicate(name);
  if (!pred.has_value()) {
    *error = "unknown predicate `" + name + "`";
    return false;
  }
  std::vector<ElemId> args;
  std::string inner = Trim(text.substr(open + 1, close - open - 1));
  if (!inner.empty()) {
    std::istringstream in(inner);
    std::string tok;
    while (std::getline(in, tok, ',')) {
      tok = Trim(tok);
      if (tok.size() < 2 || tok[0] != 'e') {
        *error = "malformed element `" + tok + "`";
        return false;
      }
      int idx = -1;
      try {
        idx = std::stoi(tok.substr(1));
      } catch (...) {
        idx = -1;
      }
      if (idx < 0 || static_cast<size_t>(idx) >= num_elements) {
        *error = "element `" + tok + "` out of range";
        return false;
      }
      args.push_back(static_cast<ElemId>(idx));
    }
  }
  if (static_cast<int>(args.size()) != vocab->arity(*pred)) {
    *error = "arity mismatch for `" + name + "`";
    return false;
  }
  *out = Fact(*pred, std::move(args));
  return true;
}

struct Section {
  std::string header;  // inside the brackets, e.g. "view VA1"
  std::vector<std::string> lines;
};

/// The corpus NTA format covers exactly the antichain oracle's automaton
/// family (RandomNta and its shrinks): width-1 automata over the two-label
/// alphabet with empty edge labels. Anything else has no rendering.
std::string NtaLabelName(const NodeLabel& label) {
  if (label == NtaLabelA()) return "A";
  MONDET_CHECK(label == NtaLabelB());
  return "B";
}

void SerializeNta(const Nta& m, const std::string& name, std::string* out) {
  *out += "[nta " + name + "]\n";
  *out += "width " + std::to_string(m.width()) + "\n";
  *out += "states " + std::to_string(m.num_states()) + "\n";
  *out += "finals";
  for (State q : m.finals()) *out += " " + std::to_string(q);
  *out += "\n";
  for (const Nta::LeafTransition& t : m.leaf_transitions()) {
    *out += "leaf " + NtaLabelName(t.label) + " -> " + std::to_string(t.to) +
            "\n";
  }
  for (const Nta::UnaryTransition& t : m.unary_transitions()) {
    MONDET_CHECK(t.edge.same.empty());
    *out += "unary " + NtaLabelName(t.label) + " " + std::to_string(t.child) +
            " -> " + std::to_string(t.to) + "\n";
  }
  for (const Nta::BinaryTransition& t : m.binary_transitions()) {
    MONDET_CHECK(t.edge1.same.empty() && t.edge2.same.empty());
    *out += "binary " + NtaLabelName(t.label) + " " +
            std::to_string(t.child1) + " " + std::to_string(t.child2) +
            " -> " + std::to_string(t.to) + "\n";
  }
}

}  // namespace

std::string SerializeCase(const FuzzCase& c) {
  std::string out;
  out += "oracle: " + c.oracle + "\n";
  out += "profile: " + c.profile.name + "\n";
  out += "seed: " + std::to_string(c.seed) + "\n";
  if (c.program.has_value()) {
    out += "[program]\n" + DescribeProgram(*c.program);
    if (!out.empty() && out.back() != '\n') out += "\n";
  }
  if (c.instance.has_value()) {
    out += "[instance]\n" + DescribeInstance(*c.instance);
  }
  if (!c.schedule.empty()) {
    out += "[schedule]\n" + DescribeSchedule(c.schedule, c.profile.vocab);
  }
  for (const ViewSpec& spec : c.views) {
    out += "[view " + spec.name + "]\n";
    if (spec.atomic_base != kNoPred) {
      out += "atomic " + c.profile.vocab->name(spec.atomic_base) + "\n";
    } else {
      out += "goal " + spec.goal + "\n" + spec.text;
      if (!spec.text.empty() && spec.text.back() != '\n') out += "\n";
    }
  }
  if (c.tm.has_value()) {
    out += "[tm]\n";
    out += "machine " + c.tm->machine + "\n";
    out += "input";
    for (int sym : c.tm->input) out += " " + std::to_string(sym);
    out += "\n";
    out += "steps " + std::to_string(c.tm->max_steps) + "\n";
  }
  if (c.nta_a.has_value()) SerializeNta(*c.nta_a, "a", &out);
  if (c.nta_b.has_value()) SerializeNta(*c.nta_b, "b", &out);
  return out;
}

std::optional<FuzzCase> ParseCaseText(const std::string& text,
                                      std::string* error) {
  auto fail = [&](const std::string& msg) {
    if (error != nullptr) *error = msg;
    return std::nullopt;
  };

  std::vector<std::string> header_lines;
  std::vector<Section> sections;
  {
    std::istringstream in(text);
    std::string line;
    while (std::getline(in, line)) {
      std::string t = Trim(line);
      if (!t.empty() && t.front() == '[' && t.back() == ']') {
        sections.push_back(Section{Trim(t.substr(1, t.size() - 2)), {}});
      } else if (!sections.empty()) {
        sections.back().lines.push_back(line);
      } else if (!t.empty()) {
        header_lines.push_back(t);
      }
    }
  }

  FuzzCase c;
  std::string profile_name;
  for (const std::string& h : header_lines) {
    size_t colon = h.find(':');
    if (colon == std::string::npos) return fail("bad header line `" + h + "`");
    std::string key = Trim(h.substr(0, colon));
    std::string value = Trim(h.substr(colon + 1));
    if (key == "oracle") {
      c.oracle = value;
    } else if (key == "profile") {
      profile_name = value;
    } else if (key == "seed") {
      try {
        c.seed = static_cast<unsigned>(std::stoul(value));
      } catch (...) {
        return fail("bad seed `" + value + "`");
      }
    } else {
      return fail("unknown header key `" + key + "`");
    }
  }
  if (c.oracle.empty()) return fail("missing `oracle:` header");
  bool known_profile = false;
  for (const std::string& n : ProfileNames()) {
    if (n == profile_name) known_profile = true;
  }
  if (!known_profile) return fail("unknown profile `" + profile_name + "`");
  c.profile = ProfileByName(profile_name);

  for (const Section& sec : sections) {
    std::string body;
    for (const std::string& l : sec.lines) body += l + "\n";
    if (sec.header == "program") {
      ParseResult pr = ParseProgram(body, c.profile.vocab);
      if (!pr.ok()) return fail("program: " + pr.error);
      c.program = std::move(pr.program);
    } else if (sec.header == "instance") {
      Instance inst(c.profile.vocab);
      bool have_elements = false;
      for (const std::string& raw : sec.lines) {
        std::string t = Trim(raw);
        if (t.empty()) continue;
        if (!have_elements) {
          std::istringstream hl(t);
          std::string kw;
          int n = -1;
          hl >> kw >> n;
          if (kw != "elements" || n < 0) {
            return fail("instance: expected `elements N`, got `" + t + "`");
          }
          for (int i = 0; i < n; ++i) inst.AddElement();
          have_elements = true;
          continue;
        }
        if (t.back() != '.') return fail("instance: fact without `.`");
        Fact f(kNoPred, {});
        std::string err;
        if (!ParseFactBody(t.substr(0, t.size() - 1), c.profile.vocab,
                           inst.num_elements(), &f, &err)) {
          return fail("instance: " + err);
        }
        inst.AddFact(f);
      }
      if (!have_elements) return fail("instance: missing `elements N`");
      c.instance = std::move(inst);
    } else if (sec.header == "schedule") {
      size_t instance_elems =
          c.instance.has_value() ? c.instance->num_elements() : 0;
      for (const std::string& raw : sec.lines) {
        std::string t = Trim(raw);
        if (t.empty()) continue;
        if (t == "step") {
          c.schedule.push_back(RawBatch{});
          continue;
        }
        if (c.schedule.empty()) return fail("schedule: fact before `step`");
        if ((t[0] != '+' && t[0] != '-') || t.back() != '.') {
          return fail("schedule: expected `+Fact.`/`-Fact.`, got `" + t +
                      "`");
        }
        Fact f(kNoPred, {});
        std::string err;
        if (!ParseFactBody(t.substr(1, t.size() - 2), c.profile.vocab,
                           instance_elems, &f, &err)) {
          return fail("schedule: " + err);
        }
        if (t[0] == '+') {
          c.schedule.back().inserts.push_back(f);
        } else {
          c.schedule.back().deletes.push_back(f);
        }
      }
    } else if (sec.header.rfind("view ", 0) == 0) {
      ViewSpec spec;
      spec.name = Trim(sec.header.substr(5));
      if (spec.name.empty()) return fail("view section without a name");
      bool have_kind = false;
      for (const std::string& raw : sec.lines) {
        std::string t = Trim(raw);
        if (!have_kind) {
          if (t.empty()) continue;
          if (t.rfind("atomic ", 0) == 0) {
            std::string pred_name = Trim(t.substr(7));
            std::optional<PredId> pred =
                c.profile.vocab->FindPredicate(pred_name);
            if (!pred.has_value()) {
              return fail("view " + spec.name + ": unknown base predicate `" +
                          pred_name + "`");
            }
            spec.atomic_base = *pred;
          } else if (t.rfind("goal ", 0) == 0) {
            spec.goal = Trim(t.substr(5));
          } else {
            return fail("view " + spec.name +
                        ": expected `atomic <Pred>` or `goal <G>`");
          }
          have_kind = true;
          continue;
        }
        spec.text += raw + "\n";
      }
      if (!have_kind) return fail("view " + spec.name + ": empty section");
      c.views.push_back(std::move(spec));
    } else if (sec.header == "tm") {
      TmCase tc;
      for (const std::string& raw : sec.lines) {
        std::string t = Trim(raw);
        if (t.empty()) continue;
        std::istringstream in(t);
        std::string kw;
        in >> kw;
        if (kw == "machine") {
          in >> tc.machine;
        } else if (kw == "input") {
          tc.input.clear();
          int sym = 0;
          while (in >> sym) tc.input.push_back(sym);
        } else if (kw == "steps") {
          long long n = -1;
          in >> n;
          if (n < 0) return fail("tm: bad steps");
          tc.max_steps = static_cast<size_t>(n);
        } else {
          return fail("tm: unknown key `" + kw + "`");
        }
      }
      if (tc.machine.empty()) return fail("tm: missing machine");
      c.tm = std::move(tc);
    } else if (sec.header == "nta a" || sec.header == "nta b") {
      int width = -1;
      long long nstates = -1;
      std::vector<long long> finals;
      struct LeafLine {
        std::string label;
        long long to;
      };
      struct UnaryLine {
        std::string label;
        long long child, to;
      };
      struct BinaryLine {
        std::string label;
        long long c1, c2, to;
      };
      std::vector<LeafLine> leafs;
      std::vector<UnaryLine> unaries;
      std::vector<BinaryLine> binaries;
      for (const std::string& raw : sec.lines) {
        std::string t = Trim(raw);
        if (t.empty()) continue;
        std::istringstream in(t);
        std::string kw;
        in >> kw;
        std::string arrow;
        if (kw == "width") {
          in >> width;
        } else if (kw == "states") {
          in >> nstates;
        } else if (kw == "finals") {
          long long q = 0;
          while (in >> q) finals.push_back(q);
        } else if (kw == "leaf") {
          LeafLine l{"", -1};
          in >> l.label >> arrow >> l.to;
          if (!in || arrow != "->") return fail("nta: bad line `" + t + "`");
          leafs.push_back(l);
        } else if (kw == "unary") {
          UnaryLine u{"", -1, -1};
          in >> u.label >> u.child >> arrow >> u.to;
          if (!in || arrow != "->") return fail("nta: bad line `" + t + "`");
          unaries.push_back(u);
        } else if (kw == "binary") {
          BinaryLine b{"", -1, -1, -1};
          in >> b.label >> b.c1 >> b.c2 >> arrow >> b.to;
          if (!in || arrow != "->") return fail("nta: bad line `" + t + "`");
          binaries.push_back(b);
        } else {
          return fail("nta: unknown key `" + kw + "`");
        }
      }
      if (width < 0) return fail("nta: missing `width`");
      if (nstates < 0) return fail("nta: missing `states`");
      auto in_range = [&](long long q) { return q >= 0 && q < nstates; };
      auto label_of = [&](const std::string& name,
                          NodeLabel* out_label) -> bool {
        if (name == "A") {
          *out_label = NtaLabelA();
          return true;
        }
        if (name == "B") {
          *out_label = NtaLabelB();
          return true;
        }
        return false;
      };
      Nta m(width);
      for (long long i = 0; i < nstates; ++i) m.AddState();
      for (long long q : finals) {
        if (!in_range(q)) return fail("nta: final state out of range");
        m.AddFinal(static_cast<State>(q));
      }
      NodeLabel label;
      for (const LeafLine& l : leafs) {
        if (!label_of(l.label, &label)) {
          return fail("nta: unknown label `" + l.label + "`");
        }
        if (!in_range(l.to)) return fail("nta: leaf state out of range");
        m.AddLeaf(label, static_cast<State>(l.to));
      }
      for (const UnaryLine& u : unaries) {
        if (!label_of(u.label, &label)) {
          return fail("nta: unknown label `" + u.label + "`");
        }
        if (!in_range(u.child) || !in_range(u.to)) {
          return fail("nta: unary state out of range");
        }
        m.AddUnary(label, EdgeLabel{}, static_cast<State>(u.child),
                   static_cast<State>(u.to));
      }
      for (const BinaryLine& b : binaries) {
        if (!label_of(b.label, &label)) {
          return fail("nta: unknown label `" + b.label + "`");
        }
        if (!in_range(b.c1) || !in_range(b.c2) || !in_range(b.to)) {
          return fail("nta: binary state out of range");
        }
        m.AddBinary(label, EdgeLabel{}, EdgeLabel{}, static_cast<State>(b.c1),
                    static_cast<State>(b.c2), static_cast<State>(b.to));
      }
      if (sec.header == "nta a") {
        c.nta_a = std::move(m);
      } else {
        c.nta_b = std::move(m);
      }
    } else {
      return fail("unknown section `[" + sec.header + "]`");
    }
  }
  return c;
}

std::optional<FuzzCase> LoadCaseFile(const std::string& path,
                                     std::string* error) {
  std::ifstream in(path);
  if (!in) {
    if (error != nullptr) *error = "cannot open " + path;
    return std::nullopt;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return ParseCaseText(buf.str(), error);
}

bool SaveCaseFile(const FuzzCase& c, const std::string& path,
                  std::string* error) {
  std::ofstream out(path);
  if (!out) {
    if (error != nullptr) *error = "cannot open " + path + " for writing";
    return false;
  }
  out << SerializeCase(c);
  out.close();
  if (!out) {
    if (error != nullptr) *error = "write to " + path + " failed";
    return false;
  }
  return true;
}

}  // namespace testing
}  // namespace mondet
