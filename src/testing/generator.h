#ifndef MONDET_TESTING_GENERATOR_H_
#define MONDET_TESTING_GENERATOR_H_

#include <random>
#include <string>
#include <vector>

#include "automata/nta.h"
#include "base/instance.h"
#include "base/symbol_table.h"
#include "datalog/program.h"
#include "views/view_set.h"

namespace mondet {
namespace testing {

/// The knobs of one random-program family: predicate pools, rule shape
/// (variable / atom / rule counts) and instance size. The five historical
/// differential oracles are instances of this one scheme; their exact RNG
/// draw orders are preserved (tests/testing_golden_test.cc pins them), so
/// a (profile, seed) pair regenerates the same program bit for bit that
/// the pre-refactor test files generated.
struct GenProfile {
  /// Stable profile name ("eval", "plan", "dataflow", "query") — the key
  /// corpus files use to rebuild the vocabulary.
  std::string name;
  VocabularyPtr vocab;
  /// Predicate pools for rule generation.
  std::vector<PredId> body_preds;
  std::vector<PredId> head_preds;
  /// The distinguished 0-ary goal (used by goal-headed rules).
  PredId goal = kNoPred;
  /// Instance seeding pools: `base_preds` always participate,
  /// `rare_preds` only when seed % 3 == 0 (often-empty EDBs, so dead
  /// rules actually occur), `idb_preds` only when seed % 2 == 1 (FPEval
  /// is defined on instances that may mention IDB predicates, Prop. 4).
  std::vector<PredId> base_preds;
  std::vector<PredId> rare_preds;
  std::vector<PredId> idb_preds;
  /// Rule shape: variable pool and body length.
  int min_vars = 2, max_vars = 4;
  int min_atoms = 1, max_atoms = 3;
  /// Program shape.
  int min_rules = 2, max_rules = 6;
  /// Instance shape.
  int elems = 5, facts = 10;
};

/// The eval/maintenance family: EDBs E1/1, E2/2; IDBs I1/1, I2/2, G0/0.
GenProfile EvalProfile();
/// The planner family: adds the ternary EDB E3/3 and widens rules to
/// 2–5 variables / 1–4 atoms so join order genuinely matters.
GenProfile PlanProfile();
/// The dataflow family: adds the often-empty EDB Z1/1 and the IDB J2/2.
GenProfile DataflowProfile();
/// The mondet query family: eval schema with 1–4 rules plus a goal rule.
GenProfile QueryProfile();

/// Looks a profile factory up by its stable name; aborts on unknown names
/// (corpus files are the only caller and validate first).
GenProfile ProfileByName(const std::string& name);
/// All registered profile names.
std::vector<std::string> ProfileNames();

/// A random safe rule: min_atoms..max_atoms body atoms over `body_preds`
/// with variables from a pool of min_vars..max_vars, head over
/// `head_preds` (or the goal, when `goal_head`) with arguments drawn from
/// the variables the body actually used. Variable ids are compacted so
/// they are dense per rule (required by Rule::num_vars).
Rule RandomRule(const GenProfile& p, std::mt19937& rng,
                bool goal_head = false);

/// min_rules..max_rules random rules from a fresh mt19937(seed).
Program RandomProgram(const GenProfile& p, unsigned seed);

/// RandomProgram plus one final goal-headed rule (the mondet query shape).
Program RandomGoalProgram(const GenProfile& p, unsigned seed);

/// The instance predicate pool for `seed` (see GenProfile field docs).
std::vector<PredId> SeededPreds(const GenProfile& p, unsigned seed);

/// Random instance over the given predicates with `elems` elements and at
/// most `facts` facts (duplicates collapse). Draw order matches the
/// historical tests/test_util.h helper.
Instance RandomInstance(const VocabularyPtr& vocab,
                        const std::vector<PredId>& preds, int elems,
                        int facts, unsigned seed);

/// A random fact over `preds`, from a small element pool so duplicate
/// inserts and re-deletions are frequent.
Fact RandomBaseFact(const GenProfile& p, const std::vector<PredId>& preds,
                    size_t elems, std::mt19937& rng);

/// One raw insert/delete batch of a maintenance schedule, deliberately
/// unnormalized: duplicate inserts, deletes of absent facts and facts on
/// both sides are all legal (normalization is the documented caller
/// contract of CompiledProgram::Maintain).
struct RawBatch {
  std::vector<Fact> inserts;
  std::vector<Fact> deletes;
};

/// `steps` raw batches drawn against the *evolving* base: each batch is
/// normalized and applied to a working copy of `base` before the next is
/// drawn (deletes sample live base facts), exactly as the historical
/// maintenance oracle interleaved them.
std::vector<RawBatch> RandomSchedule(const GenProfile& p,
                                     const std::vector<PredId>& churn_preds,
                                     const Instance& base, int steps,
                                     std::mt19937& rng);

/// Normalizes one raw batch against `base` into the Maintain contract —
/// inserts win over deletes, duplicates collapse, only absent facts are
/// insertable and only present facts deletable — and applies it to `base`.
/// Returns {inserts, deletes} actually applied.
RawBatch NormalizeAndApply(const RawBatch& raw, Instance& base);

/// A view definition the generator can serialize: either an atomic view
/// over `atomic_base`, or a parsed Datalog definition (`text` + `goal`).
struct ViewSpec {
  std::string name;
  PredId atomic_base = kNoPred;
  std::string text;
  std::string goal;
};

/// One of three view-set shapes over {E1, E2} (keyed by seed % 3):
/// all-atomic (lossless), a projection CQ plus an atomic view (lossy), or
/// a recursive MDL reachability view plus an atomic one.
std::vector<ViewSpec> RandomViewSpecs(const GenProfile& p, unsigned seed);

/// Materializes view specs into a ViewSet over `vocab`.
ViewSet BuildViews(const VocabularyPtr& vocab,
                   const std::vector<ViewSpec>& specs);

/// A random width-1 tree automaton over the two-label alphabet the
/// automata_ops tests enumerate (A = pred 0, B = pred 1 on position 0):
/// 1–3 states, random leaf/unary/binary transitions, random finals. Used
/// by the language-enumeration oracle arm for Determinize / Complement /
/// Product round-trips.
Nta RandomNta(unsigned seed);

/// The two node labels RandomNta draws from (shared with the tests'
/// enumeration of small codes).
NodeLabel NtaLabelA();
NodeLabel NtaLabelB();

/// The enumerable code universe of the automata_ops tests: every chain
/// over {A, B} of length 1..3 plus the binary-over-leaves shapes (both
/// root labels). The antichain-inclusion oracle's brute-force arm sweeps
/// exactly these codes against the decision procedures.
std::vector<TreeCode> NtaEnumerationCodes();

/// The exponential inclusion family: accepts the chains over {A, B}
/// whose node k levels below the root is labeled A. Nondeterministic
/// with k + 2 states; determinizing over the chain universe materializes
/// ~2^(k+1) subset states, while the antichain walk against a
/// single-chain left side visits O(k) macrostates.
Nta NthBelowRootIsANta(int k);

/// Accepts exactly the chain of `len` nodes all labeled A (deterministic,
/// `len` states). NthBelowRootIsANta(k) includes ChainOfANta(k + 1).
Nta ChainOfANta(int len);

}  // namespace testing
}  // namespace mondet

#endif  // MONDET_TESTING_GENERATOR_H_
