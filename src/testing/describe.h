#ifndef MONDET_TESTING_DESCRIBE_H_
#define MONDET_TESTING_DESCRIBE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "base/instance.h"
#include "datalog/program.h"
#include "testing/generator.h"

namespace mondet {
namespace testing {

/// Canonical textual rendering of a generated program: exactly
/// Program::DebugString (one parseable rule per line). The golden test
/// hashes this, and corpus files embed it, so it doubles as the
/// serialization format.
std::string DescribeProgram(const Program& program);

/// Canonical textual rendering of an instance: an `elements N` header
/// followed by one `Pred(e0,e3).` line per fact in insertion order.
/// Element i renders as `e<i>` regardless of debug names — the corpus
/// parser maps the index back, so round-trips are id-exact (ParseInstance
/// is not: it interns elements in first-use order).
std::string DescribeInstance(const Instance& inst);

/// One `+Fact` / `-Fact` line per raw mutation, batches separated by
/// `step` lines. Raw batches are rendered as drawn (duplicates and
/// deletes of absent facts included): normalization is replayed by the
/// consumer against the evolving base, so the text stays base-independent.
std::string DescribeSchedule(const std::vector<RawBatch>& schedule,
                             const VocabularyPtr& vocab);

/// One block per view: `atomic <Pred>` or the goal plus definition text.
std::string DescribeViews(const std::vector<ViewSpec>& specs);

/// The standard failure-message preamble of the differential oracles:
/// profile, seed, full program, and (when given) the instance — so a bare
/// gtest failure line always carries enough to reproduce by hand.
std::string Describe(const GenProfile& profile, unsigned seed,
                     const Program& program, const Instance* inst);

/// FNV-1a 64-bit over the bytes of `s`; the golden tests pin aggregate
/// hashes of generated-artifact renderings with it.
uint64_t Fnv1a(const std::string& s);

}  // namespace testing
}  // namespace mondet

#endif  // MONDET_TESTING_DESCRIBE_H_
