#include "testing/generator.h"

#include <limits>
#include <unordered_set>

#include "base/check.h"
#include "datalog/parser.h"

namespace mondet {
namespace testing {

GenProfile EvalProfile() {
  GenProfile p;
  p.name = "eval";
  p.vocab = MakeVocabulary();
  PredId e1 = p.vocab->AddPredicate("E1", 1);
  PredId e2 = p.vocab->AddPredicate("E2", 2);
  PredId i1 = p.vocab->AddPredicate("I1", 1);
  PredId i2 = p.vocab->AddPredicate("I2", 2);
  p.goal = p.vocab->AddPredicate("G0", 0);
  p.body_preds = {e1, e2, i1, i2};
  p.head_preds = {i1, i2, p.goal};
  p.base_preds = {e1, e2};
  p.idb_preds = {i1, i2};
  p.min_vars = 2;
  p.max_vars = 4;
  p.min_atoms = 1;
  p.max_atoms = 3;
  p.min_rules = 2;
  p.max_rules = 6;
  p.elems = 5;
  p.facts = 10;
  return p;
}

GenProfile PlanProfile() {
  GenProfile p;
  p.name = "plan";
  p.vocab = MakeVocabulary();
  PredId e1 = p.vocab->AddPredicate("E1", 1);
  PredId e2 = p.vocab->AddPredicate("E2", 2);
  PredId e3 = p.vocab->AddPredicate("E3", 3);
  PredId i1 = p.vocab->AddPredicate("I1", 1);
  PredId i2 = p.vocab->AddPredicate("I2", 2);
  p.goal = p.vocab->AddPredicate("G0", 0);
  p.body_preds = {e1, e2, e3, i1, i2};
  p.head_preds = {i1, i2, p.goal};
  p.base_preds = {e1, e2, e3};
  p.idb_preds = {i1, i2};
  p.min_vars = 2;
  p.max_vars = 5;
  p.min_atoms = 1;
  p.max_atoms = 4;
  p.min_rules = 2;
  p.max_rules = 6;
  p.elems = 5;
  p.facts = 12;
  return p;
}

GenProfile DataflowProfile() {
  GenProfile p;
  p.name = "dataflow";
  p.vocab = MakeVocabulary();
  PredId e1 = p.vocab->AddPredicate("E1", 1);
  PredId e2 = p.vocab->AddPredicate("E2", 2);
  PredId z1 = p.vocab->AddPredicate("Z1", 1);
  PredId i1 = p.vocab->AddPredicate("I1", 1);
  PredId i2 = p.vocab->AddPredicate("I2", 2);
  PredId j2 = p.vocab->AddPredicate("J2", 2);
  p.goal = p.vocab->AddPredicate("G0", 0);
  p.body_preds = {e1, e2, z1, i1, i2, j2};
  p.head_preds = {i1, i2, j2, p.goal};
  p.base_preds = {e1, e2};
  p.rare_preds = {z1};
  p.idb_preds = {i1, i2};
  p.min_vars = 2;
  p.max_vars = 4;
  p.min_atoms = 1;
  p.max_atoms = 3;
  p.min_rules = 2;
  p.max_rules = 6;
  p.elems = 4;
  p.facts = 8;
  return p;
}

GenProfile QueryProfile() {
  GenProfile p = EvalProfile();
  p.name = "query";
  p.min_rules = 1;
  p.max_rules = 4;
  return p;
}

GenProfile ProfileByName(const std::string& name) {
  if (name == "eval") return EvalProfile();
  if (name == "plan") return PlanProfile();
  if (name == "dataflow") return DataflowProfile();
  if (name == "query") return QueryProfile();
  MONDET_CHECK(false && "unknown generator profile");
  return EvalProfile();
}

std::vector<std::string> ProfileNames() {
  return {"eval", "plan", "dataflow", "query"};
}

Rule RandomRule(const GenProfile& p, std::mt19937& rng, bool goal_head) {
  // The draw order below — nvars, natoms, then per body atom the
  // predicate followed by one variable per argument, then the head
  // predicate (not drawn when the goal is forced) and one body variable
  // per head argument — is the historical order of all five differential
  // tests. Do not reorder: testing_golden_test.cc pins it.
  std::uniform_int_distribution<int> nvars_dist(p.min_vars, p.max_vars);
  std::uniform_int_distribution<int> natoms_dist(p.min_atoms, p.max_atoms);
  const int nvars = nvars_dist(rng);
  const int natoms = natoms_dist(rng);
  std::uniform_int_distribution<int> var_dist(0, nvars - 1);
  std::uniform_int_distribution<size_t> body_pred_dist(
      0, p.body_preds.size() - 1);

  constexpr VarId kUnmapped = std::numeric_limits<VarId>::max();
  Rule rule;
  std::vector<VarId> remap(nvars, kUnmapped);
  auto used = [&](int raw) {
    if (remap[raw] == kUnmapped) {
      remap[raw] = static_cast<VarId>(rule.var_names.size());
      rule.var_names.push_back("v" + std::to_string(raw));
    }
    return remap[raw];
  };
  for (int a = 0; a < natoms; ++a) {
    PredId pred = p.body_preds[body_pred_dist(rng)];
    std::vector<VarId> args;
    for (int j = 0; j < p.vocab->arity(pred); ++j) {
      args.push_back(used(var_dist(rng)));
    }
    rule.body.push_back(QAtom(pred, args));
  }
  std::uniform_int_distribution<size_t> head_pred_dist(
      0, p.head_preds.size() - 1);
  PredId hp = goal_head ? p.goal : p.head_preds[head_pred_dist(rng)];
  std::uniform_int_distribution<size_t> body_var_dist(
      0, rule.var_names.size() - 1);
  std::vector<VarId> head_args;
  for (int j = 0; j < p.vocab->arity(hp); ++j) {
    head_args.push_back(static_cast<VarId>(body_var_dist(rng)));
  }
  rule.head = QAtom(hp, head_args);
  return rule;
}

Program RandomProgram(const GenProfile& p, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<int> nrules_dist(p.min_rules, p.max_rules);
  Program program(p.vocab);
  const int nrules = nrules_dist(rng);
  for (int i = 0; i < nrules; ++i) program.AddRule(RandomRule(p, rng));
  return program;
}

Program RandomGoalProgram(const GenProfile& p, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<int> nrules_dist(p.min_rules, p.max_rules);
  Program program(p.vocab);
  const int nrules = nrules_dist(rng);
  for (int i = 0; i < nrules; ++i) {
    program.AddRule(RandomRule(p, rng, /*goal_head=*/false));
  }
  // At least one rule derives the goal.
  program.AddRule(RandomRule(p, rng, /*goal_head=*/true));
  return program;
}

std::vector<PredId> SeededPreds(const GenProfile& p, unsigned seed) {
  std::vector<PredId> preds = p.base_preds;
  if (!p.rare_preds.empty() && seed % 3 == 0) {
    preds.insert(preds.end(), p.rare_preds.begin(), p.rare_preds.end());
  }
  if (seed % 2 == 1) {
    preds.insert(preds.end(), p.idb_preds.begin(), p.idb_preds.end());
  }
  return preds;
}

Instance RandomInstance(const VocabularyPtr& vocab,
                        const std::vector<PredId>& preds, int elems,
                        int facts, unsigned seed) {
  std::mt19937 rng(seed);
  Instance inst(vocab);
  for (int i = 0; i < elems; ++i) inst.AddElement();
  std::uniform_int_distribution<int> elem_dist(0, elems - 1);
  std::uniform_int_distribution<size_t> pred_dist(0, preds.size() - 1);
  for (int i = 0; i < facts; ++i) {
    PredId p = preds[pred_dist(rng)];
    std::vector<ElemId> args;
    for (int j = 0; j < vocab->arity(p); ++j) {
      args.push_back(static_cast<ElemId>(elem_dist(rng)));
    }
    inst.AddFact(p, args);
  }
  return inst;
}

Fact RandomBaseFact(const GenProfile& p, const std::vector<PredId>& preds,
                    size_t elems, std::mt19937& rng) {
  std::uniform_int_distribution<size_t> pred_dist(0, preds.size() - 1);
  std::uniform_int_distribution<ElemId> elem_dist(
      0, static_cast<ElemId>(elems - 1));
  PredId pred = preds[pred_dist(rng)];
  std::vector<ElemId> args;
  for (int j = 0; j < p.vocab->arity(pred); ++j) args.push_back(elem_dist(rng));
  return Fact(pred, std::move(args));
}

RawBatch NormalizeAndApply(const RawBatch& raw, Instance& base) {
  std::unordered_set<Fact, FactHash> raw_ins_set(raw.inserts.begin(),
                                                 raw.inserts.end());
  RawBatch delta;
  std::unordered_set<Fact, FactHash> seen_ins, seen_del;
  for (const Fact& f : raw.inserts) {
    if (!base.HasFact(f) && seen_ins.insert(f).second) {
      delta.inserts.push_back(f);
    }
  }
  for (const Fact& f : raw.deletes) {
    if (base.HasFact(f) && !raw_ins_set.count(f) && seen_del.insert(f).second) {
      delta.deletes.push_back(f);
    }
  }
  for (const Fact& f : delta.inserts) MONDET_CHECK(base.AddFact(f));
  for (const Fact& f : delta.deletes) MONDET_CHECK(base.RemoveFact(f));
  return delta;
}

std::vector<RawBatch> RandomSchedule(const GenProfile& p,
                                     const std::vector<PredId>& churn_preds,
                                     const Instance& base, int steps,
                                     std::mt19937& rng) {
  // Draw order per batch: insert count, one RandomBaseFact per insert,
  // delete count, then per delete one rng() coin (and one rng() index
  // into the live base facts on heads) or a RandomBaseFact on tails —
  // with the normalized batch applied to the working base before the
  // next batch is drawn. Historical order; do not reorder.
  Instance work = base;
  std::vector<RawBatch> schedule;
  std::uniform_int_distribution<int> batch_dist(0, 4);
  for (int step = 0; step < steps; ++step) {
    RawBatch raw;
    for (int i = batch_dist(rng); i > 0; --i) {
      raw.inserts.push_back(RandomBaseFact(p, churn_preds, p.elems, rng));
    }
    for (int i = batch_dist(rng); i > 0; --i) {
      if (work.num_facts() > 0 && rng() % 2 == 0) {
        raw.deletes.push_back(
            work.FactAt(static_cast<uint32_t>(rng() % work.num_facts())));
      } else {
        raw.deletes.push_back(RandomBaseFact(p, churn_preds, p.elems, rng));
      }
    }
    NormalizeAndApply(raw, work);
    schedule.push_back(std::move(raw));
  }
  return schedule;
}

std::vector<ViewSpec> RandomViewSpecs(const GenProfile& p, unsigned seed) {
  auto pred = [&](const char* name) {
    auto id = p.vocab->FindPredicate(name);
    MONDET_CHECK(id.has_value());
    return *id;
  };
  std::vector<ViewSpec> specs;
  switch (seed % 3) {
    case 0:
      specs.push_back({"VA1", pred("E1"), "", ""});
      specs.push_back({"VA2", pred("E2"), "", ""});
      break;
    case 1:
      specs.push_back({"VProj", kNoPred, "VP(x) :- E2(x,y).", "VP"});
      specs.push_back({"VA1", pred("E1"), "", ""});
      break;
    default:
      specs.push_back({"VReach", kNoPred,
                       "VR(x) :- E1(x).\nVR(x) :- E2(x,y), VR(y).", "VR"});
      specs.push_back({"VA2", pred("E2"), "", ""});
      break;
  }
  return specs;
}

ViewSet BuildViews(const VocabularyPtr& vocab,
                   const std::vector<ViewSpec>& specs) {
  ViewSet views(vocab);
  for (const ViewSpec& spec : specs) {
    if (spec.atomic_base != kNoPred) {
      views.AddAtomicView(spec.name, spec.atomic_base);
    } else {
      std::vector<Diagnostic> diags;
      auto query = ParseQuery(spec.text, spec.goal, vocab, &diags);
      MONDET_CHECK(query.has_value());
      views.AddView(spec.name, *query);
    }
  }
  return views;
}

NodeLabel NtaLabelA() { return {AtomLabel{0, {0}}}; }
NodeLabel NtaLabelB() { return {AtomLabel{1, {0}}}; }

Nta RandomNta(unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<int> nstates_dist(1, 3);
  Nta m(1);
  const int nstates = nstates_dist(rng);
  for (int i = 0; i < nstates; ++i) m.AddState();
  const NodeLabel labels[] = {NtaLabelA(), NtaLabelB()};
  std::uniform_int_distribution<size_t> label_dist(0, 1);
  std::uniform_int_distribution<State> state_dist(0, nstates - 1);
  std::uniform_int_distribution<int> nleaf_dist(1, 3);
  std::uniform_int_distribution<int> nunary_dist(0, 3);
  std::uniform_int_distribution<int> nbinary_dist(0, 2);
  for (int i = nleaf_dist(rng); i > 0; --i) {
    m.AddLeaf(labels[label_dist(rng)], state_dist(rng));
  }
  for (int i = nunary_dist(rng); i > 0; --i) {
    m.AddUnary(labels[label_dist(rng)], EdgeLabel{}, state_dist(rng),
               state_dist(rng));
  }
  for (int i = nbinary_dist(rng); i > 0; --i) {
    m.AddBinary(labels[label_dist(rng)], EdgeLabel{}, EdgeLabel{},
                state_dist(rng), state_dist(rng), state_dist(rng));
  }
  // Random finals: each state flips a coin, so some seeds produce the
  // empty language (a valid — and easy to get wrong — input to
  // Complement and Product).
  for (State q = 0; q < static_cast<State>(nstates); ++q) {
    if (rng() % 2 == 0) m.AddFinal(q);
  }
  return m;
}

namespace {

TreeCode NtaChainCode(const std::vector<NodeLabel>& top_down) {
  TreeCode code;
  code.width = 1;
  code.nodes.resize(top_down.size());
  for (size_t i = 0; i < top_down.size(); ++i) {
    code.nodes[i].atoms = top_down[i];
    if (i + 1 < top_down.size()) {
      code.nodes[i].children = {static_cast<int>(i) + 1};
      code.nodes[i].edge_labels = {EdgeLabel{}};
      code.nodes[i + 1].parent = static_cast<int>(i);
    }
  }
  return code;
}

TreeCode NtaBinaryCode(const NodeLabel& root, const NodeLabel& left,
                       const NodeLabel& right) {
  TreeCode code;
  code.width = 1;
  code.nodes.resize(3);
  code.nodes[0].atoms = root;
  code.nodes[0].children = {1, 2};
  code.nodes[0].edge_labels = {EdgeLabel{}, EdgeLabel{}};
  code.nodes[1].atoms = left;
  code.nodes[1].parent = 0;
  code.nodes[2].atoms = right;
  code.nodes[2].parent = 0;
  return code;
}

}  // namespace

std::vector<TreeCode> NtaEnumerationCodes() {
  const std::vector<NodeLabel> alphabet = {NtaLabelA(), NtaLabelB()};
  std::vector<TreeCode> codes;
  for (const NodeLabel& l0 : alphabet) {
    codes.push_back(NtaChainCode({l0}));
    for (const NodeLabel& l1 : alphabet) {
      codes.push_back(NtaChainCode({l0, l1}));
      for (const NodeLabel& l2 : alphabet) {
        codes.push_back(NtaChainCode({l0, l1, l2}));
      }
    }
  }
  for (const NodeLabel& root : alphabet) {
    for (const NodeLabel& l : alphabet) {
      for (const NodeLabel& r : alphabet) {
        codes.push_back(NtaBinaryCode(root, l, r));
      }
    }
  }
  return codes;
}

Nta NthBelowRootIsANta(int k) {
  Nta m(1);
  // State 0 = "don't care below the guessed A node"; states 1..k+1 =
  // "the A was guessed i - 1 levels below the current node".
  State dont_care = m.AddState();
  std::vector<State> count;
  for (int i = 0; i <= k; ++i) count.push_back(m.AddState());
  for (const NodeLabel& l : {NtaLabelA(), NtaLabelB()}) {
    m.AddLeaf(l, dont_care);
    m.AddUnary(l, EdgeLabel{}, dont_care, dont_care);
  }
  // Guess that the current node is the one k below the root.
  m.AddLeaf(NtaLabelA(), count[0]);
  m.AddUnary(NtaLabelA(), EdgeLabel{}, dont_care, count[0]);
  // Count the k levels up to the root.
  for (int i = 0; i < k; ++i) {
    for (const NodeLabel& l : {NtaLabelA(), NtaLabelB()}) {
      m.AddUnary(l, EdgeLabel{}, count[i], count[i + 1]);
    }
  }
  m.AddFinal(count[k]);
  return m;
}

Nta ChainOfANta(int len) {
  MONDET_CHECK(len >= 1);
  Nta m(1);
  std::vector<State> states;
  for (int i = 0; i < len; ++i) states.push_back(m.AddState());
  m.AddLeaf(NtaLabelA(), states[0]);
  for (int i = 0; i + 1 < len; ++i) {
    m.AddUnary(NtaLabelA(), EdgeLabel{}, states[i], states[i + 1]);
  }
  m.AddFinal(states[len - 1]);
  return m;
}

}  // namespace testing
}  // namespace mondet
