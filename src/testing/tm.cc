#include "testing/tm.h"

#include <map>
#include <sstream>
#include <string>

#include "base/check.h"

namespace mondet {
namespace testing {

namespace {

// --- .tm parsing. -----------------------------------------------------------

/// Strips `#` comments and splits a line into whitespace tokens.
std::vector<std::string> Tokens(const std::string& line) {
  std::string clean = line.substr(0, line.find('#'));
  std::vector<std::string> toks;
  std::istringstream in(clean);
  std::string t;
  while (in >> t) toks.push_back(t);
  return toks;
}

bool ParseInt(const std::string& s, int* out) {
  try {
    size_t pos = 0;
    *out = std::stoi(s, &pos);
    return pos == s.size();
  } catch (...) {
    return false;
  }
}

bool ParseMove(const std::string& s, int* out) {
  if (s == "L" || s == "-1") {
    *out = -1;
  } else if (s == "R" || s == "1" || s == "+1") {
    *out = 1;
  } else if (s == "S" || s == "0") {
    *out = 0;
  } else {
    return false;
  }
  return true;
}

}  // namespace

std::optional<TuringMachine> ParseTm(const std::string& text,
                                     std::string* error) {
  auto fail = [&](int line, const std::string& msg) {
    if (error != nullptr) {
      *error = "line " + std::to_string(line) + ": " + msg;
    }
    return std::nullopt;
  };
  TuringMachine tm;
  tm.num_states = -1;
  std::istringstream in(text);
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    std::vector<std::string> toks = Tokens(line);
    if (toks.empty()) continue;
    int v = 0;
    if (toks[0] == "states" || toks[0] == "symbols" || toks[0] == "start" ||
        toks[0] == "accept") {
      if (toks.size() != 2 || !ParseInt(toks[1], &v) || v < 0) {
        return fail(lineno, "expected `" + toks[0] + " <n>`");
      }
      if (toks[0] == "states") tm.num_states = v;
      if (toks[0] == "symbols") tm.num_symbols = v;
      if (toks[0] == "start") tm.start = v;
      if (toks[0] == "accept") tm.accept = v;
      continue;
    }
    // Delta line: Q A -> Q' B D.
    int q = 0, a = 0, q2 = 0, b = 0, d = 0;
    if (toks.size() != 6 || toks[2] != "->" || !ParseInt(toks[0], &q) ||
        !ParseInt(toks[1], &a) || !ParseInt(toks[3], &q2) ||
        !ParseInt(toks[4], &b) || !ParseMove(toks[5], &d)) {
      return fail(lineno, "expected `q a -> q' b L|R|S`");
    }
    if (tm.delta.count({q, a})) {
      return fail(lineno, "duplicate transition");
    }
    tm.delta[{q, a}] = TuringMachine::Action{q2, b, d};
  }
  if (tm.num_states <= 0) return fail(lineno, "missing `states` directive");
  if (tm.num_symbols <= 0) return fail(lineno, "missing `symbols` directive");
  if (tm.start >= tm.num_states || tm.accept >= tm.num_states) {
    return fail(lineno, "start/accept state out of range");
  }
  for (const auto& [key, act] : tm.delta) {
    if (key.first >= tm.num_states || key.second >= tm.num_symbols ||
        act.next_state >= tm.num_states || act.write >= tm.num_symbols) {
      return fail(lineno, "transition mentions out-of-range state/symbol");
    }
  }
  return tm;
}

std::string TmToText(const TuringMachine& tm) {
  std::string out;
  out += "states " + std::to_string(tm.num_states) + "\n";
  out += "symbols " + std::to_string(tm.num_symbols) + "\n";
  out += "start " + std::to_string(tm.start) + "\n";
  out += "accept " + std::to_string(tm.accept) + "\n";
  for (const auto& [key, act] : tm.delta) {
    const char* move = act.move < 0 ? "L" : (act.move > 0 ? "R" : "S");
    out += std::to_string(key.first) + " " + std::to_string(key.second) +
           " -> " + std::to_string(act.next_state) + " " +
           std::to_string(act.write) + " " + move + "\n";
  }
  return out;
}

// --- Builtin corpus. --------------------------------------------------------

namespace {

struct BuiltinEntry {
  const char* name;
  const char* text;
};

// The same texts are checked into tests/corpus/tm/<name>.tm;
// tests/tm_scenario_test.cc pins the equality so the two corpora cannot
// drift apart.
const BuiltinEntry kBuiltins[] = {
    {"eraser",
     "# Quadratic-time eraser: repeatedly erase the rightmost 1 and return\n"
     "# to the left end; accept when no 1 remains (Thm 9's theta(n^2)\n"
     "# machine — must match reductions/thm9's EraserMachine()).\n"
     "states 4\n"
     "symbols 2\n"
     "start 0\n"
     "accept 3\n"
     "0 1 -> 0 1 R\n"
     "0 0 -> 1 0 L\n"
     "1 1 -> 2 0 L\n"
     "1 0 -> 3 0 S\n"
     "2 1 -> 2 1 L\n"
     "2 0 -> 0 0 R\n"},
    {"wipe",
     "# Linear wiper: scan right erasing 1s, accept at the first blank.\n"
     "states 2\n"
     "symbols 2\n"
     "start 0\n"
     "accept 1\n"
     "0 1 -> 0 0 R\n"
     "0 0 -> 1 0 S\n"},
    {"parity",
     "# Parity scanner: alternate even/odd states moving right over 1s,\n"
     "# accept at the right blank (always halts; the parity is the\n"
     "# payload of the run string).\n"
     "states 3\n"
     "symbols 2\n"
     "start 0\n"
     "accept 2\n"
     "0 1 -> 1 1 R\n"
     "0 0 -> 2 0 S\n"
     "1 1 -> 0 1 R\n"
     "1 0 -> 2 0 S\n"},
    {"zigzag",
     "# Zigzag: run to the right end, return to the left end, accept at\n"
     "# the left blank — the minimal machine using both head directions.\n"
     "states 3\n"
     "symbols 2\n"
     "start 0\n"
     "accept 2\n"
     "0 1 -> 0 1 R\n"
     "0 0 -> 1 0 L\n"
     "1 1 -> 1 1 L\n"
     "1 0 -> 2 0 S\n"},
};

}  // namespace

std::vector<std::string> BuiltinTmNames() {
  std::vector<std::string> names;
  for (const BuiltinEntry& e : kBuiltins) names.push_back(e.name);
  return names;
}

const std::string& BuiltinTmText(const std::string& name) {
  static std::map<std::string, std::string>* cache =
      new std::map<std::string, std::string>();
  auto it = cache->find(name);
  if (it != cache->end()) return it->second;
  for (const BuiltinEntry& e : kBuiltins) {
    if (name == e.name) {
      return (*cache)[name] = e.text;
    }
  }
  MONDET_CHECK(false && "unknown builtin Turing machine");
  return (*cache)[name];
}

TuringMachine BuiltinTm(const std::string& name) {
  std::string error;
  std::optional<TuringMachine> tm = ParseTm(BuiltinTmText(name), &error);
  MONDET_CHECK(tm.has_value());
  return *tm;
}

// --- Run -> Wang tiling. ----------------------------------------------------

namespace {

///// Tile-id arithmetic for one (machine, window) pair. Layout:
/// [0, n)                         I_i   (init row, column i)
/// [n, n+K)                       S_a   (headless cell, symbol a)
/// then 5 blocks of S*K tiles     H, Sr, Sl, Hr, Hl  (q-major, symbol-minor)
/// last 3                         A0, A1, A2 (accept-marker row)
struct TileSet {
  int n = 0, S = 0, K = 0;

  int num() const { return n + K + 5 * S * K + 3; }
  int I(int i) const { return i; }
  int Sym(int a) const { return n + a; }
  int H(int q, int a) const { return n + K + q * K + a; }
  int Sr(int q, int b) const { return n + K + S * K + q * K + b; }
  int Sl(int q, int b) const { return n + K + 2 * S * K + q * K + b; }
  int Hr(int q, int c) const { return n + K + 3 * S * K + q * K + c; }
  int Hl(int q, int c) const { return n + K + 4 * S * K + q * K + c; }
  int A(int k) const { return n + K + 5 * S * K + k; }

  bool IsInit(int t) const { return t < n; }
  bool IsAccMark(int t) const { return t >= A(0); }
  bool IsConfig(int t) const { return !IsInit(t) && !IsAccMark(t); }
  /// Block index 0..4 (S/H/Sr/Sl/Hr/Hl -> -1/0/1/2/3/4) of a config tile.
  int Block(int t) const {
    if (t < n + K) return -1;  // plain headless S_a
    return (t - n - K) / (S * K);
  }
  int BlockQ(int t) const { return ((t - n - K) % (S * K)) / K; }
  int BlockSym(int t) const { return (t - n - K) % K; }

  /// The underlying cell of a config tile in its own row: head state (or
  /// -1 for headless) and tape symbol. Drives the uniform VC generation.
  void Underlying(int t, int* state, int* sym) const {
    if (t < n + K) {
      *state = -1;
      *sym = t - n;
      return;
    }
    int block = Block(t), q = BlockQ(t), a = BlockSym(t);
    if (block == 1 || block == 2) {  // Sr/Sl: head departed, cell headless
      *state = -1;
    } else {  // H/Hr/Hl: the head is here
      *state = q;
    }
    *sym = a;
    (void)q;
  }

  std::string Name(int t) const {
    if (IsInit(t)) return "I" + std::to_string(t);
    if (t == A(0)) return "A0";
    if (t == A(1)) return "A1";
    if (t == A(2)) return "A2";
    if (t < n + K) return "S" + std::to_string(t - n);
    static const char* kBlock[] = {"H", "Sr", "Sl", "Hr", "Hl"};
    return std::string(kBlock[Block(t)]) + std::to_string(BlockQ(t)) + "," +
           std::to_string(BlockSym(t));
  }
};

}  // namespace

std::optional<TmTiling> CompileTmRun(const TuringMachine& tm,
                                     const std::vector<int>& input,
                                     size_t max_steps) {
  std::optional<std::vector<TuringMachine::Config>> trace =
      tm.Run(input, max_steps);
  if (!trace.has_value()) return std::nullopt;  // semi-decision: no verdict

  TmTiling out;
  out.trace = *trace;
  const TileSet ts{static_cast<int>(input.size()) + 2, tm.num_states,
                   tm.num_symbols};
  const int n = ts.n;
  const int T = static_cast<int>(trace->size()) - 1;
  out.n = n;
  out.m = T + 3;

  TilingProblem& tp = out.tp;
  tp.num_tiles = ts.num();
  for (int t = 0; t < tp.num_tiles; ++t) out.tile_names.push_back(ts.Name(t));
  tp.initial = {ts.I(0)};
  tp.final_tiles = {ts.A(1), ts.A(2)};

  // Horizontal constraints. Init row chains I_0..I_{n-1}; the accept row
  // chains A0* A1 A2*; inside a config row the only restriction is the
  // marked-pair protocol — a right-departure tile Sr_q must sit
  // immediately left of an arrival Hr_q (and vice versa), and dually for
  // Hl_q/Sl_q — which welds each head move to its landing cell.
  for (int i = 0; i + 1 < n; ++i) tp.hc.push_back({ts.I(i), ts.I(i + 1)});
  tp.hc.push_back({ts.A(0), ts.A(0)});
  tp.hc.push_back({ts.A(0), ts.A(1)});
  tp.hc.push_back({ts.A(1), ts.A(2)});
  tp.hc.push_back({ts.A(2), ts.A(2)});
  for (int x = 0; x < tp.num_tiles; ++x) {
    if (!ts.IsConfig(x)) continue;
    for (int y = 0; y < tp.num_tiles; ++y) {
      if (!ts.IsConfig(y)) continue;
      const int bx = ts.Block(x), by = ts.Block(y);
      bool ok = true;
      if (bx == 1) ok = ok && by == 3 && ts.BlockQ(x) == ts.BlockQ(y);  // Sr|Hr
      if (by == 3) ok = ok && bx == 1 && ts.BlockQ(x) == ts.BlockQ(y);
      if (bx == 4) ok = ok && by == 2 && ts.BlockQ(x) == ts.BlockQ(y);  // Hl|Sl
      if (by == 2) ok = ok && bx == 4 && ts.BlockQ(x) == ts.BlockQ(y);
      if (ok) tp.hc.push_back({x, y});
    }
  }

  // Vertical constraints (pair = (below, above)). The init row pins C_0:
  // column 1 carries the head in the start state, every other column its
  // window symbol, all as plain tiles.
  const std::vector<int>& tape0 = (*trace)[0].tape;
  for (int i = 0; i < n; ++i) {
    if (i == (*trace)[0].head) {
      tp.vc.push_back({ts.I(i), ts.H(tm.start, tape0[i])});
    } else {
      tp.vc.push_back({ts.I(i), ts.Sym(tape0[i])});
    }
  }
  // Config row -> next row, uniformly over the underlying cell: a
  // headless cell keeps its symbol (plain, or an arriving head with the
  // same symbol under it, or an accept-marker); a head cell rewrites per
  // delta (departure tile for moves, plain head for stays), and an
  // accepting head admits only the A1 marker above it — so the grid must
  // end exactly one row above the first acceptance.
  for (int t = 0; t < tp.num_tiles; ++t) {
    if (!ts.IsConfig(t)) continue;
    int state = 0, sym = 0;
    ts.Underlying(t, &state, &sym);
    if (state < 0) {
      tp.vc.push_back({t, ts.Sym(sym)});
      for (int q = 0; q < tm.num_states; ++q) {
        tp.vc.push_back({t, ts.Hr(q, sym)});
        tp.vc.push_back({t, ts.Hl(q, sym)});
      }
      tp.vc.push_back({t, ts.A(0)});
      tp.vc.push_back({t, ts.A(2)});
      continue;
    }
    if (state == tm.accept) {
      tp.vc.push_back({t, ts.A(1)});
      continue;
    }
    auto it = tm.delta.find({state, sym});
    if (it == tm.delta.end()) continue;  // stuck head: nothing fits above
    const TuringMachine::Action& act = it->second;
    if (act.move > 0) {
      tp.vc.push_back({t, ts.Sr(act.next_state, act.write)});
    } else if (act.move < 0) {
      tp.vc.push_back({t, ts.Sl(act.next_state, act.write)});
    } else {
      tp.vc.push_back({t, ts.H(act.next_state, act.write)});
    }
  }

  // Certificate: read the rows straight off the trace.
  out.cert.assign(static_cast<size_t>(n) * out.m, -1);
  auto at = [&](int col, int row) -> int& {  // 0-based column, 1-based row
    return out.cert[static_cast<size_t>(row - 1) * n + col];
  };
  for (int i = 0; i < n; ++i) at(i, 1) = ts.I(i);
  for (int r = 0; r <= T; ++r) {
    const TuringMachine::Config& cfg = (*trace)[r];
    const int row = r + 2;
    for (int c = 0; c < n; ++c) at(c, row) = ts.Sym(cfg.tape[c]);
    if (r == 0) {
      at(cfg.head, row) = ts.H(cfg.state, cfg.tape[cfg.head]);
    } else {
      const TuringMachine::Config& prev = (*trace)[r - 1];
      const TuringMachine::Action& act =
          tm.delta.at({prev.state, prev.tape[prev.head]});
      if (act.move > 0) {
        at(prev.head, row) = ts.Sr(cfg.state, act.write);
        at(cfg.head, row) = ts.Hr(cfg.state, cfg.tape[cfg.head]);
      } else if (act.move < 0) {
        at(prev.head, row) = ts.Sl(cfg.state, act.write);
        at(cfg.head, row) = ts.Hl(cfg.state, cfg.tape[cfg.head]);
      } else {
        at(cfg.head, row) = ts.H(cfg.state, cfg.tape[cfg.head]);
      }
    }
  }
  const int accept_head = (*trace)[T].head;
  for (int c = 0; c < n; ++c) {
    at(c, out.m) = ts.A(c < accept_head ? 0 : (c == accept_head ? 1 : 2));
  }
  return out;
}

bool CheckTiling(const TilingProblem& tp, int n, int m,
                 const std::vector<int>& assign, std::string* why) {
  auto fail = [&](const std::string& msg) {
    if (why != nullptr) *why = msg;
    return false;
  };
  if (assign.size() != static_cast<size_t>(n) * m) {
    return fail("assignment size != n*m");
  }
  auto at = [&](int i, int j) {  // 1-based grid coordinates
    return assign[static_cast<size_t>(j - 1) * n + (i - 1)];
  };
  for (int j = 1; j <= m; ++j) {
    for (int i = 1; i <= n; ++i) {
      const int t = at(i, j);
      if (t < 0 || t >= tp.num_tiles) {
        return fail("tile out of range at (" + std::to_string(i) + "," +
                    std::to_string(j) + ")");
      }
      if (i > 1 && !tp.HcAllows(at(i - 1, j), t)) {
        return fail("hc violated at (" + std::to_string(i) + "," +
                    std::to_string(j) + ")");
      }
      if (j > 1 && !tp.VcAllows(at(i, j - 1), t)) {
        return fail("vc violated at (" + std::to_string(i) + "," +
                    std::to_string(j) + ")");
      }
    }
  }
  if (!tp.IsInitial(at(1, 1))) return fail("(1,1) not an initial tile");
  if (!tp.IsFinal(at(n, m))) return fail("(n,m) not a final tile");
  return true;
}

}  // namespace testing
}  // namespace mondet
