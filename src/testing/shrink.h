#ifndef MONDET_TESTING_SHRINK_H_
#define MONDET_TESTING_SHRINK_H_

#include <cstddef>

#include "testing/oracle.h"

namespace mondet {
namespace testing {

struct ShrinkResult {
  FuzzCase best;
  /// Oracle Check invocations spent.
  size_t checks = 0;
  /// True when at least one reduction was kept.
  bool changed = false;
};

/// Greedy delta debugging: starting from a case `failing` for which
/// `oracle.Check` fails, repeatedly tries dropping one component — a
/// rule, a body atom (when the rule stays safe), an instance fact, a
/// schedule batch, a single batched mutation, a view, a TM input symbol —
/// and keeps the candidate whenever the oracle still fails, looping to a
/// fixpoint or until `max_checks` checks are spent. The result is a
/// 1-minimal repro: no single further drop still fails.
ShrinkResult ShrinkCase(const Oracle& oracle, const FuzzCase& failing,
                        size_t max_checks = 400);

}  // namespace testing
}  // namespace mondet

#endif  // MONDET_TESTING_SHRINK_H_
