#ifndef MONDET_TESTING_REFERENCE_H_
#define MONDET_TESTING_REFERENCE_H_

#include <vector>

#include "base/homomorphism.h"
#include "base/instance.h"
#include "datalog/program.h"

namespace mondet {

/// Naive reference evaluation: fire every rule against the full instance
/// until no new facts appear. Slow but obviously correct — the oracle the
/// differential tests and the fuzz harness compare the semi-naive
/// evaluator against. Lives in src/testing (not tests/) so the mondet-fuzz
/// CLI can link it; kept in namespace mondet because it predates the
/// testing library and is reference semantics, not generation.
inline Instance NaiveFpEval(const Program& program, const Instance& inst) {
  Instance result = inst;
  bool changed = true;
  while (changed) {
    changed = false;
    std::vector<Fact> pending;
    for (const Rule& rule : program.rules()) {
      if (rule.body.empty()) {
        pending.push_back(Fact(rule.head.pred, {}));
        continue;
      }
      Instance pattern(result.vocab());
      pattern.EnsureElements(rule.num_vars());
      for (const QAtom& a : rule.body) {
        pattern.AddFact(a.pred,
                        std::vector<ElemId>(a.args.begin(), a.args.end()));
      }
      HomSearch search(pattern, result);
      search.ForEach({}, [&](const std::vector<ElemId>& map) {
        std::vector<ElemId> args;
        for (VarId v : rule.head.args) args.push_back(map[v]);
        pending.push_back(Fact(rule.head.pred, std::move(args)));
        return true;
      });
    }
    for (Fact& f : pending) {
      if (result.AddFact(f)) changed = true;
    }
  }
  return result;
}

}  // namespace mondet

#endif  // MONDET_TESTING_REFERENCE_H_
