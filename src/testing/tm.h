#ifndef MONDET_TESTING_TM_H_
#define MONDET_TESTING_TM_H_

#include <optional>
#include <string>
#include <vector>

#include "reductions/thm9.h"
#include "reductions/tiling.h"

namespace mondet {
namespace testing {

/// Parses the `.tm` corpus format (tests/corpus/tm/): directives
///
///   states N        # state count; states are 0..N-1
///   symbols K       # tape symbols 0..K-1, 0 = blank
///   start Q
///   accept Q
///   Q A -> Q' B D   # delta(Q, reading A) = (Q', write B, move D)
///
/// with D one of L/R/S (or -1/1/0), `#` comments, blank lines ignored.
/// Returns nullopt with `*error` set on malformed input.
std::optional<TuringMachine> ParseTm(const std::string& text,
                                     std::string* error);

/// Renders a machine back into the `.tm` format (corpus round-trips).
std::string TmToText(const TuringMachine& tm);

/// The built-in machine corpus, embedded so the fuzz harness needs no
/// files: the same texts are checked into tests/corpus/tm/<name>.tm and
/// tests/tm_scenario_test.cc pins the equality.
std::vector<std::string> BuiltinTmNames();
/// The `.tm` source of a builtin; aborts on unknown names.
const std::string& BuiltinTmText(const std::string& name);
/// The parsed builtin; aborts on unknown names.
TuringMachine BuiltinTm(const std::string& name);

/// A machine run compiled into a Wang tiling (the Thm 6–8 currency):
/// grid columns are the tape window [blank, input..., blank], rows are
/// (bottom to top) an initial marker row, the configurations C_0..C_T of
/// the accepting run, and an accept-marker top row. The constraints force
/// every solution of the n×m grid to spell out exactly that run — row 1
/// is pinned by the initial tile and horizontal chaining, each next row
/// by determinism of the machine, and the top row exists only above an
/// accepting head — so Solve(n, m) succeeds while Solve(n, m-1) and
/// Solve(n, 2) fail. `cert` is the certificate extracted directly from
/// the trace (row-major, (i,j) at (j-1)*n+(i-1), 1-based), checkable
/// without the solver via CheckTiling.
struct TmTiling {
  TilingProblem tp;
  int n = 0;
  int m = 0;
  std::vector<int> cert;
  /// Debug names parallel to tile ids ("I0", "S1", "H2,0", "Sr0,1", ...).
  std::vector<std::string> tile_names;
  /// The trace the certificate was extracted from.
  std::vector<TuringMachine::Config> trace;
};

/// Compiles the accepting run of `tm` on `input` into a tiling, or
/// nullopt when the machine does not accept within `max_steps` (the
/// semi-decision boundary of Thm 6/8: no certificate, no verdict).
std::optional<TmTiling> CompileTmRun(const TuringMachine& tm,
                                     const std::vector<int>& input,
                                     size_t max_steps);

/// Direct constraint check of a full n×m assignment against `tp` —
/// independent of TilingProblem::Solve, so certificate and solver verify
/// each other. On failure returns false and sets `*why` when non-null.
bool CheckTiling(const TilingProblem& tp, int n, int m,
                 const std::vector<int>& assign, std::string* why);

}  // namespace testing
}  // namespace mondet

#endif  // MONDET_TESTING_TM_H_
