#ifndef MONDET_TESTING_CORPUS_H_
#define MONDET_TESTING_CORPUS_H_

#include <optional>
#include <string>

#include "testing/oracle.h"

namespace mondet {
namespace testing {

/// The `.repro` corpus format (tests/corpus/cases/): a header naming the
/// oracle, profile and seed, then one bracketed section per populated
/// FuzzCase field —
///
///   oracle: eval-differential
///   profile: eval
///   seed: 17
///   [program]
///   I1(v0) :- E1(v0).
///   [instance]
///   elements 5
///   E1(e0).
///   [schedule]
///   step
///   +E2(e0,e3).
///   -E1(e2).
///   [view VReach]
///   goal VR
///   VR(x) :- E1(x).
///   VR(x) :- E2(x,y), VR(y).
///   [view VA2]
///   atomic E2
///   [tm]
///   machine eraser
///   input 1 1
///   steps 200
///
/// Programs re-parse on the profile's pre-seeded vocabulary (predicate
/// ids are stable by construction); instance elements are `e<id>` and
/// re-parsed by index, so round-trips are id-exact. Failure messages
/// (DescribeCase) and saved repros share this one rendering.
std::string SerializeCase(const FuzzCase& c);

/// Parses the `.repro` format; nullopt with `*error` set on malformed
/// input (unknown profile, unparseable rule/fact, out-of-range element).
std::optional<FuzzCase> ParseCaseText(const std::string& text,
                                      std::string* error);

/// File wrappers around SerializeCase / ParseCaseText.
std::optional<FuzzCase> LoadCaseFile(const std::string& path,
                                     std::string* error);
bool SaveCaseFile(const FuzzCase& c, const std::string& path,
                  std::string* error);

}  // namespace testing
}  // namespace mondet

#endif  // MONDET_TESTING_CORPUS_H_
