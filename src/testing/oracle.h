#ifndef MONDET_TESTING_ORACLE_H_
#define MONDET_TESTING_ORACLE_H_

#include <optional>
#include <string>
#include <vector>

#include "base/instance.h"
#include "datalog/program.h"
#include "testing/generator.h"

namespace mondet {
namespace testing {

/// A Turing-machine scenario: a builtin machine (testing/tm.h) run on an
/// input, compiled through the tiling reduction. `max_steps` bounds the
/// simulation — past it the oracle has no verdict (the semi-decision
/// boundary of Thm 6/8), so the case passes vacuously.
struct TmCase {
  std::string machine;
  std::vector<int> input;
  size_t max_steps = 200;
};

/// One self-contained fuzz case: everything an oracle's Check needs,
/// decoupled from how it was produced (Generate, a corpus file, or the
/// shrinker). Only the fields the owning oracle reads are populated.
struct FuzzCase {
  std::string oracle;
  unsigned seed = 0;
  GenProfile profile;
  std::optional<Program> program;
  std::optional<Instance> instance;
  std::vector<RawBatch> schedule;
  std::vector<ViewSpec> views;
  std::optional<TmCase> tm;
  /// The NTA pair of the antichain-inclusion oracle (the `[nta a]` /
  /// `[nta b]` corpus sections): does L(nta_a) ⊆ L(nta_b)?
  std::optional<Nta> nta_a;
  std::optional<Nta> nta_b;
};

struct OracleOutcome {
  bool ok = true;
  /// First failure, prefixed with what diverged and suffixed with the
  /// full case rendering (DescribeCase) — self-contained for bug reports.
  std::string message;
};

/// One randomized property: a deterministic seed -> case generator plus a
/// gtest-free checker. The historical differential tests are thin
/// wrappers over these; tools/mondet_fuzz.cc drives them standalone.
class Oracle {
 public:
  virtual ~Oracle() = default;
  virtual std::string name() const = 0;
  /// The generation profile of this oracle's case family.
  virtual GenProfile Profile() const = 0;
  /// The case for `seed` — bit-identical to what the pre-refactor test
  /// file generated for that seed (pinned by tests/testing_golden_test.cc).
  virtual FuzzCase Generate(unsigned seed) const = 0;
  /// Checks the property; stops at the first divergence.
  virtual OracleOutcome Check(const FuzzCase& c) const = 0;
};

/// The registry, in fixed order (the CLI's --list order).
const std::vector<const Oracle*>& AllOracles();
/// Lookup by name; nullptr when unknown.
const Oracle* FindOracle(const std::string& name);

/// Full textual rendering of a case (the corpus `.repro` format; see
/// testing/corpus.h). Failure messages embed it.
std::string DescribeCase(const FuzzCase& c);

}  // namespace testing
}  // namespace mondet

#endif  // MONDET_TESTING_ORACLE_H_
