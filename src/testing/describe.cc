#include "testing/describe.h"

#include <string>

namespace mondet {
namespace testing {

namespace {

std::string FactLine(const VocabularyPtr& vocab, const Fact& f) {
  std::string out = vocab->name(f.pred) + "(";
  for (size_t i = 0; i < f.args.size(); ++i) {
    if (i > 0) out += ",";
    out += "e" + std::to_string(f.args[i]);
  }
  out += ")";
  return out;
}

}  // namespace

std::string DescribeProgram(const Program& program) {
  return program.DebugString();
}

std::string DescribeInstance(const Instance& inst) {
  std::string out = "elements " + std::to_string(inst.num_elements()) + "\n";
  for (const Fact& f : inst.AllFacts()) {
    out += FactLine(inst.vocab(), f) + ".\n";
  }
  return out;
}

std::string DescribeSchedule(const std::vector<RawBatch>& schedule,
                             const VocabularyPtr& vocab) {
  std::string out;
  for (const RawBatch& batch : schedule) {
    out += "step\n";
    for (const Fact& f : batch.inserts) {
      out += "+" + FactLine(vocab, f) + ".\n";
    }
    for (const Fact& f : batch.deletes) {
      out += "-" + FactLine(vocab, f) + ".\n";
    }
  }
  return out;
}

std::string DescribeViews(const std::vector<ViewSpec>& specs) {
  std::string out;
  for (const ViewSpec& spec : specs) {
    out += "view " + spec.name + "\n";
    if (spec.atomic_base != kNoPred) {
      out += "atomic\n";
    } else {
      out += "goal " + spec.goal + "\n" + spec.text;
      if (!spec.text.empty() && spec.text.back() != '\n') out += "\n";
    }
  }
  return out;
}

std::string Describe(const GenProfile& profile, unsigned seed,
                     const Program& program, const Instance* inst) {
  std::string out = "profile " + profile.name + " seed " +
                    std::to_string(seed) + "\nprogram:\n" +
                    DescribeProgram(program);
  if (inst != nullptr) {
    out += "instance:\n" + DescribeInstance(*inst);
  }
  return out;
}

uint64_t Fnv1a(const std::string& s) {
  uint64_t h = 1469598103934665603ull;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace testing
}  // namespace mondet
