#ifndef MONDET_BASE_CANONICAL_H_
#define MONDET_BASE_CANONICAL_H_

#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "base/instance.h"

namespace mondet {

/// Order-independent structural hash of an instance with a distinguished
/// tuple: if some element bijection maps `a`'s fact set onto `b`'s and
/// `ta` pointwise onto `tb`, then CanonicalHash(a, ta) ==
/// CanonicalHash(b, tb). Based on Weisfeiler–Leman color refinement seeded
/// by tuple positions; the converse does not hold (hash-equal instances
/// still need an isomorphism check). Elements outside the active domain
/// and the tuple are ignored — they cannot affect any generic query.
uint64_t CanonicalHash(const Instance& inst, const std::vector<ElemId>& tuple);

/// Searches for an isomorphism witnessing the equivalence above: an
/// injective map from a's active-domain-or-tuple elements to b's, sending
/// ta[i] to tb[i] and a's fact set exactly onto b's. Backtracking over
/// refinement color classes, capped at `max_nodes` search nodes; returns
/// the element map (kNoElem for uncovered elements of `a`), or nullopt
/// when none exists or the cap is hit (callers must treat the cap as
/// "not isomorphic", which is always safe for caching).
std::optional<std::vector<ElemId>> FindIsomorphism(
    const Instance& a, const std::vector<ElemId>& ta, const Instance& b,
    const std::vector<ElemId>& tb, size_t max_nodes = 1u << 20);

/// A concurrent memo of boolean test outcomes keyed by the isomorphism
/// type of (instance, tuple). The determinacy checker uses it to run each
/// D' instance once across all (expansion, view-choice) tests: two
/// isomorphic D' instances give the same answer to any generic query.
///
/// Sharded by canonical hash; a lookup under a colliding hash verifies
/// isomorphism against each stored entry before trusting its value.
/// Thread-safe; `fn` runs outside the shard lock, so concurrent misses on
/// the same type may each compute (both arrive at the same value — callers
/// must not rely on exact hit/miss counts across thread counts).
class CanonicalTestCache {
 public:
  /// Returns the cached outcome for an instance isomorphic to
  /// (inst, tuple) if present; otherwise computes `fn()`, stores it under
  /// this type, and returns it. `was_hit` reports which path was taken.
  bool GetOrCompute(const Instance& inst, const std::vector<ElemId>& tuple,
                    const std::function<bool()>& fn, bool* was_hit);

  /// Number of stored canonical types (racy snapshot; for reporting).
  size_t size() const;

 private:
  struct Entry {
    Instance inst;
    std::vector<ElemId> tuple;
    bool value;
  };
  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<uint64_t, std::vector<Entry>> map;
  };
  static constexpr size_t kNumShards = 16;
  Shard shards_[kNumShards];
};

}  // namespace mondet

#endif  // MONDET_BASE_CANONICAL_H_
