#include "base/gaifman.h"

#include <algorithm>
#include <deque>

#include "base/check.h"

namespace mondet {

GaifmanGraph::GaifmanGraph(const Instance& inst) : inst_(inst) {
  adj_.resize(inst.num_elements());
  for (uint32_t g = 0; g < inst.num_facts(); ++g) {
    const std::span<const ElemId> args = inst.ViewAt(g).args;
    for (size_t i = 0; i < args.size(); ++i) {
      for (size_t j = i + 1; j < args.size(); ++j) {
        if (args[i] != args[j]) {
          adj_[args[i]].push_back(args[j]);
          adj_[args[j]].push_back(args[i]);
        }
      }
    }
  }
  for (auto& nbrs : adj_) {
    std::sort(nbrs.begin(), nbrs.end());
    nbrs.erase(std::unique(nbrs.begin(), nbrs.end()), nbrs.end());
  }
  active_ = inst.ActiveDomain();
}

std::vector<int> GaifmanGraph::DistancesFrom(ElemId source) const {
  std::vector<int> dist(adj_.size(), -1);
  if (source >= adj_.size()) return dist;
  std::deque<ElemId> queue{source};
  dist[source] = 0;
  while (!queue.empty()) {
    ElemId u = queue.front();
    queue.pop_front();
    for (ElemId v : adj_[u]) {
      if (dist[v] < 0) {
        dist[v] = dist[u] + 1;
        queue.push_back(v);
      }
    }
  }
  return dist;
}

int GaifmanGraph::Eccentricity(ElemId source) const {
  std::vector<int> dist = DistancesFrom(source);
  int ecc = 0;
  for (ElemId e : active_) {
    if (dist[e] < 0) return -1;
    ecc = std::max(ecc, dist[e]);
  }
  return ecc;
}

int GaifmanGraph::Radius() const {
  if (active_.empty()) return 0;
  int best = -1;
  for (ElemId e : active_) {
    int ecc = Eccentricity(e);
    if (ecc < 0) continue;
    if (best < 0 || ecc < best) best = ecc;
  }
  return best;
}

bool GaifmanGraph::IsConnected() const {
  if (active_.size() <= 1) return true;
  std::vector<int> dist = DistancesFrom(active_[0]);
  for (ElemId e : active_) {
    if (dist[e] < 0) return false;
  }
  return true;
}

std::vector<std::vector<ElemId>> GaifmanGraph::Components() const {
  std::vector<std::vector<ElemId>> comps;
  std::vector<bool> seen(adj_.size(), false);
  for (ElemId root : active_) {
    if (seen[root]) continue;
    comps.emplace_back();
    std::deque<ElemId> queue{root};
    seen[root] = true;
    while (!queue.empty()) {
      ElemId u = queue.front();
      queue.pop_front();
      comps.back().push_back(u);
      for (ElemId v : adj_[u]) {
        if (!seen[v]) {
          seen[v] = true;
          queue.push_back(v);
        }
      }
    }
  }
  return comps;
}

}  // namespace mondet
