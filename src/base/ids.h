#ifndef MONDET_BASE_IDS_H_
#define MONDET_BASE_IDS_H_

#include <cstdint>
#include <limits>

namespace mondet {

/// Identifier of a relation symbol within a Vocabulary.
using PredId = uint32_t;

/// Identifier of a domain element within an Instance.
using ElemId = uint32_t;

/// Identifier of a variable within a single query or rule.
using VarId = uint32_t;

/// Sentinel "no element" value used by partial maps.
inline constexpr ElemId kNoElem = std::numeric_limits<ElemId>::max();

/// Sentinel "no predicate" value.
inline constexpr PredId kNoPred = std::numeric_limits<PredId>::max();

}  // namespace mondet

#endif  // MONDET_BASE_IDS_H_
