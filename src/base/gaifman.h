#ifndef MONDET_BASE_GAIFMAN_H_
#define MONDET_BASE_GAIFMAN_H_

#include <vector>

#include "base/instance.h"

namespace mondet {

/// The Gaifman graph of an instance: nodes are active-domain elements,
/// edges connect elements co-occurring in a fact (Sec. 2 of the paper).
class GaifmanGraph {
 public:
  explicit GaifmanGraph(const Instance& inst);

  size_t num_nodes() const { return adj_.size(); }
  const std::vector<ElemId>& Neighbors(ElemId e) const { return adj_[e]; }

  /// BFS distances from `source`; unreachable nodes get -1. The vector is
  /// indexed by element id (inactive elements are unreachable).
  std::vector<int> DistancesFrom(ElemId source) const;

  /// Eccentricity of `source`: max distance to any active element in the
  /// same connected component; -1 if the graph is disconnected from the
  /// perspective of `source` (some active element unreachable).
  int Eccentricity(ElemId source) const;

  /// The radius min_u max_v dist(u,v). Returns -1 for a disconnected graph
  /// and 0 for an empty/singleton one.
  int Radius() const;

  /// True if all active elements lie in one connected component
  /// (vacuously true for <=1 active element).
  bool IsConnected() const;

  /// Connected components of the active domain, each a list of elements.
  std::vector<std::vector<ElemId>> Components() const;

 private:
  const Instance& inst_;
  std::vector<std::vector<ElemId>> adj_;
  std::vector<ElemId> active_;
};

}  // namespace mondet

#endif  // MONDET_BASE_GAIFMAN_H_
