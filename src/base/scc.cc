#include "base/scc.h"

#include <algorithm>

namespace mondet {

std::vector<int> SccIds(size_t n, const std::vector<std::vector<int>>& adj,
                        int* num_sccs) {
  std::vector<int> index(n, -1), low(n, 0), comp(n, -1);
  std::vector<bool> on_stack(n, false);
  std::vector<int> stack;
  int next_index = 0;
  int next_comp = 0;
  struct Frame {
    int node;
    size_t edge;
  };
  for (size_t root = 0; root < n; ++root) {
    if (index[root] >= 0) continue;
    std::vector<Frame> frames{{static_cast<int>(root), 0}};
    index[root] = low[root] = next_index++;
    stack.push_back(static_cast<int>(root));
    on_stack[root] = true;
    while (!frames.empty()) {
      Frame& f = frames.back();
      if (f.edge < adj[f.node].size()) {
        int next = adj[f.node][f.edge++];
        if (index[next] < 0) {
          index[next] = low[next] = next_index++;
          stack.push_back(next);
          on_stack[next] = true;
          frames.push_back({next, 0});
        } else if (on_stack[next]) {
          low[f.node] = std::min(low[f.node], index[next]);
        }
      } else {
        int node = f.node;
        frames.pop_back();
        if (!frames.empty()) {
          low[frames.back().node] =
              std::min(low[frames.back().node], low[node]);
        }
        if (low[node] == index[node]) {
          int member;
          do {
            member = stack.back();
            stack.pop_back();
            on_stack[member] = false;
            comp[member] = next_comp;
          } while (member != node);
          ++next_comp;
        }
      }
    }
  }
  *num_sccs = next_comp;
  return comp;
}

}  // namespace mondet
