#include "base/thread_pool.h"

#include <atomic>

namespace mondet {

namespace {

/// Set while the current thread is executing items for some job, so a
/// nested ParallelFor runs inline instead of re-entering the pool.
thread_local bool tls_in_pool_worker = false;

}  // namespace

/// One ParallelFor call: w shards over [0, n), each with an atomic claim
/// cursor. Workers (the caller plus parked pool threads) claim items from
/// their own shard first, then steal single items from the fullest other
/// shard. `active` counts threads still claiming; the caller waits for it
/// to reach zero — at that point every item has been claimed *and*
/// finished, because a worker only leaves after completing its claims.
struct ThreadPool::Job {
  const std::function<void(size_t, int)>* fn = nullptr;
  size_t n = 0;
  int shards = 0;
  std::unique_ptr<std::atomic<size_t>[]> head;  // next unclaimed, per shard
  std::vector<size_t> begin, end;               // shard bounds
  std::atomic<int> next_worker{1};  // worker ids handed to pool threads
  std::atomic<int> active{0};
  std::mutex done_mu;
  std::condition_variable done_cv;

  Job(const std::function<void(size_t, int)>& f, size_t items, int w)
      : fn(&f), n(items), shards(w), head(new std::atomic<size_t>[w]),
        begin(w), end(w) {
    // Contiguous shards of near-equal size; shard i starts at the caller
    // (worker 0) so a no-steal run touches items in index order per shard.
    size_t base = items / w, rem = items % w;
    size_t at = 0;
    for (int i = 0; i < w; ++i) {
      begin[i] = at;
      at += base + (static_cast<size_t>(i) < rem ? 1 : 0);
      end[i] = at;
      head[i].store(begin[i], std::memory_order_relaxed);
    }
  }

  bool done() const {
    for (int i = 0; i < shards; ++i) {
      if (head[i].load(std::memory_order_relaxed) < end[i]) return false;
    }
    return true;
  }
};

void ThreadPool::RunShards(Job& job, int worker) {
  bool was_worker = tls_in_pool_worker;
  tls_in_pool_worker = true;
  // Own shard first.
  for (;;) {
    size_t i = job.head[worker].fetch_add(1, std::memory_order_relaxed);
    if (i >= job.end[worker]) break;
    (*job.fn)(i, worker);
  }
  // Steal from the shard with the most remaining items until all drained.
  for (;;) {
    int victim = -1;
    size_t most = 0;
    for (int s = 0; s < job.shards; ++s) {
      size_t h = job.head[s].load(std::memory_order_relaxed);
      if (h < job.end[s] && job.end[s] - h > most) {
        most = job.end[s] - h;
        victim = s;
      }
    }
    if (victim < 0) break;
    size_t i = job.head[victim].fetch_add(1, std::memory_order_relaxed);
    if (i < job.end[victim]) (*job.fn)(i, worker);
  }
  tls_in_pool_worker = was_worker;
}

ThreadPool::ThreadPool(int num_threads) {
  threads_.reserve(num_threads > 0 ? num_threads : 0);
  for (int i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  wake_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::shared_ptr<Job> job;
    int worker = -1;
    {
      std::unique_lock<std::mutex> lock(mu_);
      wake_.wait(lock, [&] { return stop_ || !jobs_.empty(); });
      if (stop_) return;
      job = jobs_.front();
      worker = job->next_worker.fetch_add(1, std::memory_order_relaxed);
      if (worker >= job->shards || job->done()) {
        // Fully staffed or drained: retire it and look again.
        for (size_t i = 0; i < jobs_.size(); ++i) {
          if (jobs_[i] == job) {
            jobs_.erase(jobs_.begin() + i);
            break;
          }
        }
        continue;
      }
      job->active.fetch_add(1, std::memory_order_relaxed);
    }
    RunShards(*job, worker);
    if (job->active.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      std::lock_guard<std::mutex> lock(job->done_mu);
      job->done_cv.notify_all();
    }
  }
}

void ThreadPool::ParallelFor(
    size_t n, int max_workers,
    const std::function<void(size_t item, int worker)>& fn) {
  if (n == 0) return;
  int w = max_workers;
  if (w > static_cast<int>(n)) w = static_cast<int>(n);
  if (w > num_threads() + 1) w = num_threads() + 1;
  if (w <= 1 || tls_in_pool_worker) {
    // Inline: no pool interaction (and no deadlock when called from a
    // worker). The worker id is 0 for every item, matching the contract.
    bool was_worker = tls_in_pool_worker;
    tls_in_pool_worker = true;
    for (size_t i = 0; i < n; ++i) fn(i, 0);
    tls_in_pool_worker = was_worker;
    return;
  }
  auto job = std::make_shared<Job>(fn, n, w);
  job->active.store(1, std::memory_order_relaxed);  // the caller
  {
    std::lock_guard<std::mutex> lock(mu_);
    jobs_.push_back(job);
  }
  wake_.notify_all();
  RunShards(*job, 0);
  if (job->active.fetch_sub(1, std::memory_order_acq_rel) > 1) {
    std::unique_lock<std::mutex> lock(job->done_mu);
    job->done_cv.wait(lock, [&] {
      return job->active.load(std::memory_order_acquire) == 0;
    });
  }
  {
    // Drop the job from the queue if no worker retired it yet.
    std::lock_guard<std::mutex> lock(mu_);
    for (size_t i = 0; i < jobs_.size(); ++i) {
      if (jobs_[i] == job) {
        jobs_.erase(jobs_.begin() + i);
        break;
      }
    }
  }
}

ThreadPool& ThreadPool::Shared() {
  static ThreadPool* pool = [] {
    unsigned hw = std::thread::hardware_concurrency();
    int extra = hw > 1 ? static_cast<int>(hw) - 1 : 0;
    // Environments that report one core still get a small pool: callers
    // asking for N workers (MONDET_THREADS) should fan out on any machine
    // — correctness tests exercise 4-way runs on single-core CI.
    if (extra < 3) extra = 3;
    return new ThreadPool(extra);
  }();
  return *pool;
}

}  // namespace mondet
