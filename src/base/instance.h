#ifndef MONDET_BASE_INSTANCE_H_
#define MONDET_BASE_INSTANCE_H_

#include <cstddef>
#include <functional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "base/ids.h"
#include "base/symbol_table.h"

namespace mondet {

/// A single ground fact R(c1..cn).
struct Fact {
  PredId pred = kNoPred;
  std::vector<ElemId> args;

  Fact() = default;
  Fact(PredId p, std::vector<ElemId> a) : pred(p), args(std::move(a)) {}

  bool operator==(const Fact& o) const {
    return pred == o.pred && args == o.args;
  }
  /// Lexicographic (pred, args) order: the canonical fact order used by
  /// the maintenance engine to apply delta batches deterministically and
  /// by tests comparing maintained against recomputed instances.
  bool operator<(const Fact& o) const {
    if (pred != o.pred) return pred < o.pred;
    return args < o.args;
  }
};

struct FactHash {
  size_t operator()(const Fact& f) const {
    size_t h = std::hash<uint32_t>()(f.pred);
    for (ElemId e : f.args) h = h * 1315423911u + e + 0x9e3779b9u;
    return h;
  }
};

/// A database instance: a finite set of facts over a shared Vocabulary.
///
/// Elements are dense ids 0..num_elements()-1 local to this instance.
/// The active domain (Sec. 2 of the paper) is the set of elements occurring
/// in some fact; elements can also exist unused (e.g. reserved names).
class Instance {
 public:
  explicit Instance(VocabularyPtr vocab) : vocab_(std::move(vocab)) {}

  const VocabularyPtr& vocab() const { return vocab_; }

  /// Creates a fresh element, optionally with a debug name.
  ElemId AddElement(std::string name = "");

  /// Ensures at least n elements exist; returns nothing.
  void EnsureElements(size_t n);

  size_t num_elements() const { return num_elements_; }
  const std::string& element_name(ElemId e) const { return names_[e]; }
  void set_element_name(ElemId e, std::string name) {
    names_[e] = std::move(name);
  }

  /// Adds a fact if not already present. Returns true if newly added.
  /// All argument elements must already exist.
  bool AddFact(PredId pred, const std::vector<ElemId>& args);
  bool AddFact(const Fact& f) { return AddFact(f.pred, f.args); }

  /// Removes a fact if present. Returns true if it was removed. Removal
  /// moves the last fact into the freed slot, so indices into facts() and
  /// insertion order are not stable across RemoveFact; every internal
  /// index (per-predicate, positional, degrees) is repaired in place.
  bool RemoveFact(PredId pred, const std::vector<ElemId>& args);
  bool RemoveFact(const Fact& f) { return RemoveFact(f.pred, f.args); }

  bool HasFact(PredId pred, const std::vector<ElemId>& args) const;
  bool HasFact(const Fact& f) const { return HasFact(f.pred, f.args); }

  /// Per-fact derivation count, used by the maintenance engine: the
  /// number of distinct derivations (plus one for base membership) that
  /// support the fact. Facts start at 1; the count is bookkeeping only
  /// and has no effect on set semantics. Zero for absent facts.
  uint64_t FactCount(const Fact& f) const;
  void SetFactCount(const Fact& f, uint64_t count);

  /// All facts, in insertion order.
  const std::vector<Fact>& facts() const { return facts_; }
  size_t num_facts() const { return facts_.size(); }

  /// Indices (into facts()) of the facts with the given predicate.
  const std::vector<uint32_t>& FactsWith(PredId pred) const;

  /// Indices of the facts with predicate `pred` whose argument at `pos`
  /// equals `val`. Backed by a lazily-built index that is maintained
  /// incrementally: facts added after the index is first queried are
  /// visible to later queries.
  const std::vector<uint32_t>& FactsWith(PredId pred, int pos,
                                         ElemId val) const;

  /// Forces the (pred, pos, val) index to cover every current fact. After
  /// this call, FactsWith(pred, pos, val) performs no writes until the
  /// next AddFact, so concurrent readers of a non-mutating instance are
  /// safe (the parallel evaluator calls this before fanning out).
  void PrepareIndexes() const;

  /// The active domain: elements occurring in some fact.
  std::vector<ElemId> ActiveDomain() const;

  /// True if the element occurs in some fact.
  bool InActiveDomain(ElemId e) const;

  /// Number of facts that mention element `e`.
  size_t Degree(ElemId e) const;

  /// Copies all facts of `other` into this instance, mapping element `e` of
  /// `other` to a fresh element here. Returns the element translation.
  /// Both instances must share the same Vocabulary object.
  std::vector<ElemId> DisjointUnionWith(const Instance& other);

  /// Returns the subinstance containing only facts over the given predicate
  /// set (the restriction F|Σ' of the paper). Elements are preserved.
  Instance RestrictTo(const std::unordered_set<PredId>& preds) const;

  /// Human-readable rendering (for logs / examples).
  std::string DebugString() const;

 private:
  VocabularyPtr vocab_;
  size_t num_elements_ = 0;
  std::vector<std::string> names_;
  std::vector<Fact> facts_;
  // Maps each fact to its index in facts_ (membership test + the hook
  // RemoveFact needs to find and repair the swapped-in fact).
  std::unordered_map<Fact, uint32_t, FactHash> fact_index_;
  // Parallel to facts_: derivation counts (see FactCount).
  std::vector<uint64_t> counts_;
  std::vector<std::vector<uint32_t>> by_pred_;
  // Built lazily on the first positional query, then maintained
  // incrementally by AddFact. Key packs (pred, pos, val).
  mutable std::unordered_map<uint64_t, std::vector<uint32_t>> pos_index_;
  mutable size_t pos_indexed_upto_ = 0;
  mutable bool pos_index_live_ = false;
  std::vector<uint32_t> degree_;

  void IndexUpTo(size_t n) const;
};

/// Renders a fact like "R(a,b)" using instance element names (or e<i>).
std::string FactToString(const Instance& inst, const Fact& f);

}  // namespace mondet

#endif  // MONDET_BASE_INSTANCE_H_
