#ifndef MONDET_BASE_INSTANCE_H_
#define MONDET_BASE_INSTANCE_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <unordered_set>
#include <utility>
#include <vector>

#include "base/ids.h"
#include "base/symbol_table.h"

namespace mondet {

/// A single ground fact R(c1..cn), as an owning value. The store keeps
/// facts columnar (see Instance); Fact is the exchange currency of deltas,
/// change logs and tests.
struct Fact {
  PredId pred = kNoPred;
  std::vector<ElemId> args;

  Fact() = default;
  Fact(PredId p, std::vector<ElemId> a) : pred(p), args(std::move(a)) {}

  bool operator==(const Fact& o) const {
    return pred == o.pred && args == o.args;
  }
  /// Lexicographic (pred, args) order: the canonical fact order used by
  /// the maintenance engine to apply delta batches deterministically and
  /// by tests comparing maintained against recomputed instances.
  bool operator<(const Fact& o) const {
    if (pred != o.pred) return pred < o.pred;
    return args < o.args;
  }
};

/// SplitMix64 finalizer: three xor-shift-multiply rounds, full avalanche.
/// Every input bit flips each output bit with probability ~1/2, so dense
/// consecutive ElemIds spread over the whole 64-bit range instead of
/// clustering in neighboring hash-table buckets (the failure mode of the
/// previous multiplicative mix, pinned by the collision regression test).
inline uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// The fact hash shared by FactHash and the Instance-internal fact table:
/// a SplitMix64 round per argument, seeded from the predicate.
inline uint64_t HashFactKey(PredId pred, std::span<const ElemId> args) {
  uint64_t h = SplitMix64(0x243f6a8885a308d3ull ^ pred);
  for (ElemId a : args) h = SplitMix64(h ^ a);
  return h;
}

/// A borrowed, allocation-free view of one stored fact: the predicate and
/// a span into the instance's argument arena. Valid until the instance is
/// mutated. Hashes and compares like the Fact with the same content
/// (FactHash / FactEq are transparent over both).
struct FactView {
  PredId pred = kNoPred;
  std::span<const ElemId> args;

  Fact ToFact() const {
    return Fact(pred, std::vector<ElemId>(args.begin(), args.end()));
  }
  friend bool operator==(const FactView& a, const FactView& b) {
    return a.pred == b.pred &&
           std::equal(a.args.begin(), a.args.end(), b.args.begin(),
                      b.args.end());
  }
};

struct FactHash {
  using is_transparent = void;
  size_t operator()(const Fact& f) const {
    return static_cast<size_t>(HashFactKey(f.pred, f.args));
  }
  size_t operator()(const FactView& f) const {
    return static_cast<size_t>(HashFactKey(f.pred, f.args));
  }
};

/// Transparent Fact/FactView equality, for heterogeneous lookups in
/// unordered containers keyed by Fact (probe with a FactView, no copy).
struct FactEq {
  using is_transparent = void;
  static bool Same(PredId ap, std::span<const ElemId> aa, PredId bp,
                   std::span<const ElemId> ba) {
    return ap == bp && std::equal(aa.begin(), aa.end(), ba.begin(), ba.end());
  }
  bool operator()(const Fact& a, const Fact& b) const {
    return Same(a.pred, a.args, b.pred, b.args);
  }
  bool operator()(const Fact& a, const FactView& b) const {
    return Same(a.pred, a.args, b.pred, b.args);
  }
  bool operator()(const FactView& a, const Fact& b) const {
    return Same(a.pred, a.args, b.pred, b.args);
  }
  bool operator()(const FactView& a, const FactView& b) const {
    return Same(a.pred, a.args, b.pred, b.args);
  }
};

/// A database instance: a finite set of facts over a shared Vocabulary.
///
/// Elements are dense ids 0..num_elements()-1 local to this instance.
/// The active domain (Sec. 2 of the paper) is the set of elements occurring
/// in some fact; elements can also exist unused (e.g. reserved names).
///
/// Storage is columnar, struct-of-arrays at the relation level: each
/// predicate owns one flat ElemId arena in which row r occupies
/// [r*arity, (r+1)*arity), plus parallel per-row vectors (derivation
/// counts, global ids). Facts are addressed two ways:
///   - by *global id* 0..num_facts()-1 in insertion order (ViewAt/FactAt),
///     the order the determinism contracts are phrased in;
///   - by *(pred, row)* with row 0..NumRows(pred)-1 (Args/RowsWith), the
///     dense coordinates the join kernels and positional indexes use.
/// RemoveFact swap-and-pops in both spaces, so neither ids nor rows are
/// stable across removals; every index is repaired in O(arity).
class Instance {
 public:
  explicit Instance(VocabularyPtr vocab) : vocab_(std::move(vocab)) {}

  /// Copying skips the lazily-built positional indexes: they are caches,
  /// a copy rarely probes the same (pred,pos) pairs before mutating, and
  /// re-materializing one is a single counting pass — cheaper than
  /// deep-copying its per-value bucket vectors. A copy that is shared
  /// across threads read-only must call PrepareIndexes() first, same as
  /// any other instance.
  Instance(const Instance& o);
  Instance& operator=(const Instance& o);
  Instance(Instance&&) = default;
  Instance& operator=(Instance&&) = default;

  const VocabularyPtr& vocab() const { return vocab_; }

  /// Creates a fresh element, optionally with a debug name.
  ElemId AddElement(std::string name = "");

  /// Ensures at least n elements exist; returns nothing.
  void EnsureElements(size_t n);

  size_t num_elements() const { return num_elements_; }
  /// The element's debug name; elements created without one render as
  /// "e<id>", synthesized here on demand (storing 4M default names was a
  /// measurable construction cost in the checker's instance-churn loops).
  std::string element_name(ElemId e) const {
    return names_[e].empty() ? "e" + std::to_string(e) : names_[e];
  }
  void set_element_name(ElemId e, std::string name) {
    names_[e] = std::move(name);
  }

  /// Adds a fact if not already present. Returns true if newly added.
  /// All argument elements must already exist.
  bool AddFact(PredId pred, std::span<const ElemId> args);
  bool AddFact(PredId pred, const std::vector<ElemId>& args) {
    return AddFact(pred, std::span<const ElemId>(args));
  }
  bool AddFact(const Fact& f) { return AddFact(f.pred, f.args); }

  /// Removes a fact if present. Returns true if it was removed. Removal
  /// swap-and-pops in both id spaces — the last row of the predicate moves
  /// into the freed row, the last global id into the freed id — so ids,
  /// rows and iteration order are not stable across RemoveFact; every
  /// internal index (positional buckets, degrees, the fact table) is
  /// repaired in place in O(arity).
  bool RemoveFact(PredId pred, std::span<const ElemId> args);
  bool RemoveFact(PredId pred, const std::vector<ElemId>& args) {
    return RemoveFact(pred, std::span<const ElemId>(args));
  }
  bool RemoveFact(const Fact& f) { return RemoveFact(f.pred, f.args); }

  bool HasFact(PredId pred, std::span<const ElemId> args) const;
  bool HasFact(PredId pred, const std::vector<ElemId>& args) const {
    return HasFact(pred, std::span<const ElemId>(args));
  }
  bool HasFact(const Fact& f) const { return HasFact(f.pred, f.args); }

  /// Per-fact derivation count, used by the maintenance engine: the
  /// number of distinct derivations (plus one for base membership) that
  /// support the fact. Facts start at 1; the count is bookkeeping only
  /// and has no effect on set semantics. Zero for absent facts.
  uint64_t FactCount(const Fact& f) const;
  void SetFactCount(const Fact& f, uint64_t count);

  size_t num_facts() const { return order_.size(); }

  /// The (pred, row) coordinates of global fact id `g`.
  std::pair<PredId, uint32_t> Locate(uint32_t g) const {
    const uint64_t v = order_[g];
    return {static_cast<PredId>(v >> 32), static_cast<uint32_t>(v)};
  }

  /// Borrowed view of the fact with global id `g` (insertion order).
  FactView ViewAt(uint32_t g) const {
    const auto [p, row] = Locate(g);
    return {p, Args(p, row)};
  }

  /// Owning copy of the fact with global id `g`.
  Fact FactAt(uint32_t g) const { return ViewAt(g).ToFact(); }

  /// All facts in insertion order, materialized (cold paths and tests;
  /// hot paths iterate ViewAt or per-predicate rows instead).
  std::vector<Fact> AllFacts() const;

  /// Rows currently stored for `pred` (0 for a predicate with no facts).
  uint32_t NumRows(PredId pred) const {
    return pred < preds_.size()
               ? static_cast<uint32_t>(preds_[pred].counts.size())
               : 0;
  }

  /// The arguments of row `row` of `pred` (unchecked hot-path accessor;
  /// row must be < NumRows(pred)).
  std::span<const ElemId> Args(PredId pred, uint32_t row) const {
    const PredStore& st = preds_[pred];
    return {st.data.data() + static_cast<size_t>(row) * st.arity, st.arity};
  }

  /// The whole row-major argument arena of `pred`: row r occupies
  /// [r*arity, (r+1)*arity). Empty for a predicate with no facts.
  std::span<const ElemId> FlatArgs(PredId pred) const {
    if (pred >= preds_.size()) return {};
    return {preds_[pred].data.data(), preds_[pred].data.size()};
  }

  /// Global id of row `row` of `pred`.
  uint32_t GlobalOf(PredId pred, uint32_t row) const {
    return preds_[pred].global_of[row];
  }

  /// Derivation count by (pred, row) coordinates.
  uint64_t CountAt(PredId pred, uint32_t row) const {
    return preds_[pred].counts[row];
  }
  void SetCountAt(PredId pred, uint32_t row, uint64_t count);

  /// Rows of `pred` whose argument at `pos` equals `val`, in row (=
  /// insertion) order. Backed by a dense per-(pred,pos) bucket index,
  /// bulk-built by a counting pass on first use and maintained
  /// incrementally by AddFact/RemoveFact afterwards (appends, and O(1)
  /// swap-and-pop removals via the row->bucket-slot map).
  std::span<const uint32_t> RowsWith(PredId pred, int pos, ElemId val) const {
    if (pred >= index_.size() ||
        static_cast<size_t>(pos) >= index_[pred].size() ||
        !index_[pred][pos].built) {
      return BuildAndProbe(pred, pos, val);
    }
    const PosIndex& ix = index_[pred][pos];
    if (val >= ix.buckets.size()) return {};
    const std::vector<uint32_t>& b = ix.buckets[val];
    return {b.data(), b.size()};
  }

  /// Builds every per-(pred,pos) bucket index now. After this call,
  /// RowsWith performs no writes until the next AddFact/RemoveFact, so
  /// concurrent readers of a non-mutating instance are safe (the parallel
  /// evaluator calls this before fanning out).
  void PrepareIndexes() const;

  /// The active domain: elements occurring in some fact.
  std::vector<ElemId> ActiveDomain() const;

  /// True if the element occurs in some fact.
  bool InActiveDomain(ElemId e) const;

  /// Number of facts that mention element `e`.
  size_t Degree(ElemId e) const;

  /// Copies all facts of `other` into this instance, mapping element `e` of
  /// `other` to a fresh element here. Returns the element translation.
  /// Both instances must share the same Vocabulary object.
  std::vector<ElemId> DisjointUnionWith(const Instance& other);

  /// Returns the subinstance containing only facts over the given predicate
  /// set (the restriction F|Σ' of the paper). Elements are preserved.
  Instance RestrictTo(const std::unordered_set<PredId>& preds) const;

  /// Human-readable rendering (for logs / examples).
  std::string DebugString() const;

 private:
  /// Columnar storage of one relation.
  struct PredStore {
    uint32_t arity = 0;              // cached vocab arity
    std::vector<ElemId> data;        // row-major argument arena
    std::vector<uint64_t> counts;    // row -> derivation count
    std::vector<uint32_t> global_of;  // row -> global fact id
  };
  /// Dense (val -> rows) index of one (pred, pos) pair. `slots[row]` is
  /// row's position inside its bucket, which makes removal swap-and-pop.
  struct PosIndex {
    bool built = false;
    std::vector<std::vector<uint32_t>> buckets;  // val -> rows, add order
    std::vector<uint32_t> slots;                 // row -> index in bucket
  };
  /// One slot of the open-addressing fact table (linear probing,
  /// power-of-two capacity). `gid` doubles as the empty/tombstone marker.
  struct TableSlot {
    uint64_t hash = 0;
    uint32_t gid = kEmptySlot;
  };
  static constexpr uint32_t kEmptySlot = 0xFFFFFFFFu;
  static constexpr uint32_t kTombSlot = 0xFFFFFFFEu;
  static constexpr size_t kNoSlot = static_cast<size_t>(-1);

  /// Grows preds_/index_ to cover `pred` and caches its arity.
  PredStore& EnsurePred(PredId pred);

  /// Slot holding (pred, args), or kNoSlot. Table must be non-empty.
  size_t FindSlot(PredId pred, std::span<const ElemId> args,
                  uint64_t hash) const;
  /// Re-points the table entry of an existing fact at a new global id.
  void RepointTableGid(PredId pred, std::span<const ElemId> args,
                       uint32_t gid);
  void RehashTable(size_t min_live);

  /// Counting-pass bulk build of one (pred,pos) index, then probe.
  std::span<const uint32_t> BuildAndProbe(PredId pred, int pos,
                                          ElemId val) const;
  void BuildPosIndex(PredId pred, int pos) const;

  VocabularyPtr vocab_;
  size_t num_elements_ = 0;
  std::vector<std::string> names_;
  std::vector<PredStore> preds_;
  // Positional indexes, built lazily per (pred,pos) pair; mutable so the
  // const probe path can materialize them (PrepareIndexes freezes).
  mutable std::vector<std::vector<PosIndex>> index_;
  // Global id -> packed (pred << 32 | row); insertion order.
  std::vector<uint64_t> order_;
  // Open-addressing fact table: membership, counts lookup, and the hook
  // RemoveFact needs to find and repair the swapped-in fact.
  std::vector<TableSlot> table_;
  size_t table_live_ = 0;  // live entries
  size_t table_used_ = 0;  // live + tombstones
  std::vector<uint32_t> degree_;
};

/// Renders a fact like "R(a,b)" using instance element names (or e<i>).
std::string FactToString(const Instance& inst, const Fact& f);
std::string FactToString(const Instance& inst, const FactView& f);

}  // namespace mondet

#endif  // MONDET_BASE_INSTANCE_H_
