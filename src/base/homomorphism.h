#ifndef MONDET_BASE_HOMOMORPHISM_H_
#define MONDET_BASE_HOMOMORPHISM_H_

#include <functional>
#include <optional>
#include <utility>
#include <vector>

#include "base/instance.h"

namespace mondet {

/// Greedy join ordering shared by HomSearch and the Datalog rule planner
/// (datalog/eval_plan): repeatedly picks the unprocessed atom binding the
/// most already-bound variables, breaking ties toward the smaller relation
/// estimate. `atom_vars[i]` lists the variables of atom i, `rel_size(i)`
/// estimates how many target facts atom i ranges over, and `bound`
/// (resized to `num_vars`) marks variables bound before the join starts.
std::vector<uint32_t> GreedyAtomOrder(
    const std::vector<std::vector<ElemId>>& atom_vars, size_t num_vars,
    const std::function<size_t(size_t)>& rel_size,
    std::vector<bool> bound = {});

/// Selectivity-scored join ordering, the statistics-driven sibling of
/// GreedyAtomOrder (used by CompiledProgram when instance statistics are
/// available). `est_matches` is typically Stats::EstimateMatches, which
/// already folds in any feedback correction factors (Stats::Observe) — the
/// order and the reported per-step rows are corrected estimates whenever
/// the statistics carry corrections. At each step it picks,
/// lexicographically:
///   1. an atom sharing at least one already-bound variable (so rules with
///      a connected join graph never plan a cross product; nullary atoms
///      count as sharing — they are pure filters),
///   2. the smallest estimated match count `est_matches(i, bound)`, where
///      `bound` flags the variables bound before this step,
///   3. the lowest atom index (deterministic ties).
/// If `est_rows` is non-null it receives, per step, the estimated number
/// of intermediate rows after joining that atom (the running product of
/// match estimates), aligned with the returned order.
std::vector<uint32_t> SelectivityAtomOrder(
    const std::vector<std::vector<ElemId>>& atom_vars, size_t num_vars,
    const std::function<double(size_t, const std::vector<bool>&)>& est_matches,
    std::vector<bool> bound = {}, std::vector<double>* est_rows = nullptr);

/// Backtracking homomorphism search between instances.
///
/// A homomorphism h from pattern P to target T maps every element of P to an
/// element of T such that R(c1..cn) in P implies R(h(c1)..h(cn)) in T
/// (Sec. 2). This is the workhorse behind CQ evaluation, containment,
/// canonical tests and the pebble-game preconditions.
///
/// Pattern elements that occur in no fact are mapped canonically to target
/// element 0 (any image is valid for them); if the pattern has such elements
/// and the target is empty, no homomorphism exists.
class HomSearch {
 public:
  /// Both instances must share the same Vocabulary object.
  HomSearch(const Instance& pattern, const Instance& target);

  using Fixed = std::vector<std::pair<ElemId, ElemId>>;
  using Callback = std::function<bool(const std::vector<ElemId>&)>;

  /// True if a homomorphism extending `fixed` exists.
  bool Exists(const Fixed& fixed = {}) const;

  /// Returns one homomorphism extending `fixed` (a full element map of the
  /// pattern), or nullopt.
  std::optional<std::vector<ElemId>> FindOne(const Fixed& fixed = {}) const;

  /// Enumerates every homomorphism extending `fixed` exactly once.
  /// The callback returns false to stop early.
  void ForEach(const Fixed& fixed, const Callback& cb) const;

  /// Number of homomorphisms extending `fixed` (each counted once).
  size_t Count(const Fixed& fixed = {}) const;

 private:
  const Instance& pattern_;
  const Instance& target_;
  // Pattern facts materialized once at construction (the pattern is small
  // and immutable for the search's lifetime; the columnar target is always
  // read in place through RowsWith/Args).
  std::vector<Fact> pattern_facts_;
  std::vector<uint32_t> atom_order_;  // pattern fact indices, search order

  bool Search(size_t depth, std::vector<ElemId>& map, const Callback& cb) const;
  bool Run(const Fixed& fixed, const Callback& cb) const;
};

/// Convenience: does `pattern` map homomorphically into `target`?
bool HasHomomorphism(const Instance& pattern, const Instance& target);

/// Verifies that `map` (indexed by pattern element) is a homomorphism.
bool IsHomomorphism(const Instance& pattern, const Instance& target,
                    const std::vector<ElemId>& map);

/// True if the instances are homomorphically equivalent (maps both ways).
bool HomEquivalent(const Instance& a, const Instance& b);

}  // namespace mondet

#endif  // MONDET_BASE_HOMOMORPHISM_H_
