#ifndef MONDET_BASE_SYMBOL_TABLE_H_
#define MONDET_BASE_SYMBOL_TABLE_H_

#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "base/ids.h"

namespace mondet {

/// A relational schema: an interned set of relation symbols with arities.
///
/// Vocabularies are shared (via std::shared_ptr) between instances, queries
/// and views so that predicate ids are globally consistent within one
/// reasoning task. Predicates may be added at any time (e.g. IDB predicates
/// of a Datalog program, view predicates, annotated predicates produced by
/// the inverse-rules algorithm); existing ids are never invalidated.
class Vocabulary {
 public:
  Vocabulary() = default;

  /// Interns `name` with the given arity and returns its id. If `name` is
  /// already present its arity must match.
  PredId AddPredicate(const std::string& name, int arity);

  /// Returns the id of `name` if present.
  std::optional<PredId> FindPredicate(const std::string& name) const;

  const std::string& name(PredId p) const { return names_[p]; }
  int arity(PredId p) const { return arities_[p]; }
  size_t size() const { return names_.size(); }

  /// All predicate ids, in insertion order.
  std::vector<PredId> AllPredicates() const;

 private:
  std::vector<std::string> names_;
  std::vector<int> arities_;
  std::unordered_map<std::string, PredId> by_name_;
};

using VocabularyPtr = std::shared_ptr<Vocabulary>;

/// Convenience factory.
inline VocabularyPtr MakeVocabulary() { return std::make_shared<Vocabulary>(); }

}  // namespace mondet

#endif  // MONDET_BASE_SYMBOL_TABLE_H_
