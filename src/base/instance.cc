#include "base/instance.h"

#include <algorithm>
#include <sstream>

#include "base/check.h"

namespace mondet {

namespace {
uint64_t PackKey(PredId pred, int pos, ElemId val) {
  return (static_cast<uint64_t>(pred) << 40) ^
         (static_cast<uint64_t>(pos) << 32) ^ static_cast<uint64_t>(val);
}
const std::vector<uint32_t> kEmptyIndex;
}  // namespace

ElemId Instance::AddElement(std::string name) {
  ElemId id = static_cast<ElemId>(num_elements_++);
  if (name.empty()) name = "e" + std::to_string(id);
  names_.push_back(std::move(name));
  degree_.push_back(0);
  return id;
}

void Instance::EnsureElements(size_t n) {
  while (num_elements_ < n) AddElement();
}

bool Instance::AddFact(PredId pred, const std::vector<ElemId>& args) {
  MONDET_CHECK(pred < vocab_->size());
  MONDET_CHECK(static_cast<int>(args.size()) == vocab_->arity(pred));
  for (ElemId a : args) MONDET_CHECK(a < num_elements_);
  Fact f(pred, args);
  uint32_t idx = static_cast<uint32_t>(facts_.size());
  if (!fact_index_.emplace(f, idx).second) return false;
  facts_.push_back(std::move(f));
  counts_.push_back(1);
  if (by_pred_.size() <= pred) by_pred_.resize(vocab_->size());
  by_pred_[pred].push_back(idx);
  for (ElemId a : args) degree_[a]++;
  // Keep the position index current once it has been materialized, so a
  // fixpoint loop probing the index between insertions never rescans.
  if (pos_index_live_ && pos_indexed_upto_ == idx) {
    for (int pos = 0; pos < static_cast<int>(args.size()); ++pos) {
      pos_index_[PackKey(pred, pos, args[pos])].push_back(idx);
    }
    pos_indexed_upto_ = idx + 1;
  }
  return true;
}

bool Instance::HasFact(PredId pred, const std::vector<ElemId>& args) const {
  Fact f(pred, args);
  return fact_index_.count(f) > 0;
}

namespace {
/// Drops one occurrence of `idx` from a sorted-insertion index vector.
void EraseIndexEntry(std::vector<uint32_t>& v, uint32_t idx) {
  auto it = std::find(v.begin(), v.end(), idx);
  MONDET_CHECK(it != v.end());
  v.erase(it);
}
/// Re-points the entry for a moved fact: `from` becomes `to`.
void RenameIndexEntry(std::vector<uint32_t>& v, uint32_t from, uint32_t to) {
  auto it = std::find(v.begin(), v.end(), from);
  MONDET_CHECK(it != v.end());
  *it = to;
}
}  // namespace

bool Instance::RemoveFact(PredId pred, const std::vector<ElemId>& args) {
  Fact f(pred, args);
  auto hit = fact_index_.find(f);
  if (hit == fact_index_.end()) return false;
  const uint32_t idx = hit->second;
  const uint32_t last = static_cast<uint32_t>(facts_.size()) - 1;

  // Bring the positional index fully current first: swap-remove moves the
  // last fact, and an unindexed fact must never land below the watermark.
  if (pos_index_live_) IndexUpTo(facts_.size());

  // Unhook the doomed fact from every index.
  EraseIndexEntry(by_pred_[pred], idx);
  if (pos_index_live_) {
    for (int pos = 0; pos < static_cast<int>(args.size()); ++pos) {
      auto it = pos_index_.find(PackKey(pred, pos, args[pos]));
      MONDET_CHECK(it != pos_index_.end());
      EraseIndexEntry(it->second, idx);
      if (it->second.empty()) pos_index_.erase(it);
    }
  }
  for (ElemId a : args) degree_[a]--;
  fact_index_.erase(hit);

  // Swap-remove: move the last fact into the freed slot and re-point its
  // index entries from `last` to `idx`.
  if (idx != last) {
    Fact moved = std::move(facts_[last]);
    RenameIndexEntry(by_pred_[moved.pred], last, idx);
    if (pos_index_live_) {
      for (int pos = 0; pos < static_cast<int>(moved.args.size()); ++pos) {
        auto it = pos_index_.find(PackKey(moved.pred, pos, moved.args[pos]));
        MONDET_CHECK(it != pos_index_.end());
        RenameIndexEntry(it->second, last, idx);
      }
    }
    fact_index_[moved] = idx;
    counts_[idx] = counts_[last];
    facts_[idx] = std::move(moved);
  }
  facts_.pop_back();
  counts_.pop_back();
  if (pos_index_live_) pos_indexed_upto_ = facts_.size();
  return true;
}

uint64_t Instance::FactCount(const Fact& f) const {
  auto it = fact_index_.find(f);
  if (it == fact_index_.end()) return 0;
  return counts_[it->second];
}

void Instance::SetFactCount(const Fact& f, uint64_t count) {
  auto it = fact_index_.find(f);
  MONDET_CHECK(it != fact_index_.end());
  MONDET_CHECK(count > 0);
  counts_[it->second] = count;
}

const std::vector<uint32_t>& Instance::FactsWith(PredId pred) const {
  if (pred >= by_pred_.size()) return kEmptyIndex;
  return by_pred_[pred];
}

void Instance::IndexUpTo(size_t n) const {
  pos_index_live_ = true;
  for (size_t i = pos_indexed_upto_; i < n; ++i) {
    const Fact& f = facts_[i];
    for (int pos = 0; pos < static_cast<int>(f.args.size()); ++pos) {
      pos_index_[PackKey(f.pred, pos, f.args[pos])].push_back(
          static_cast<uint32_t>(i));
    }
  }
  pos_indexed_upto_ = n;
}

const std::vector<uint32_t>& Instance::FactsWith(PredId pred, int pos,
                                                 ElemId val) const {
  if (pos_indexed_upto_ < facts_.size()) IndexUpTo(facts_.size());
  auto it = pos_index_.find(PackKey(pred, pos, val));
  if (it == pos_index_.end()) return kEmptyIndex;
  return it->second;
}

void Instance::PrepareIndexes() const {
  if (pos_indexed_upto_ < facts_.size()) IndexUpTo(facts_.size());
}

std::vector<ElemId> Instance::ActiveDomain() const {
  std::vector<ElemId> out;
  for (ElemId e = 0; e < num_elements_; ++e) {
    if (degree_[e] > 0) out.push_back(e);
  }
  return out;
}

bool Instance::InActiveDomain(ElemId e) const {
  return e < num_elements_ && degree_[e] > 0;
}

size_t Instance::Degree(ElemId e) const {
  MONDET_CHECK(e < num_elements_);
  return degree_[e];
}

std::vector<ElemId> Instance::DisjointUnionWith(const Instance& other) {
  MONDET_CHECK(vocab_.get() == other.vocab_.get());
  std::vector<ElemId> translation(other.num_elements());
  for (ElemId e = 0; e < other.num_elements(); ++e) {
    translation[e] = AddElement(other.element_name(e) + "'");
  }
  for (const Fact& f : other.facts()) {
    std::vector<ElemId> args;
    args.reserve(f.args.size());
    for (ElemId a : f.args) args.push_back(translation[a]);
    AddFact(f.pred, args);
  }
  return translation;
}

Instance Instance::RestrictTo(const std::unordered_set<PredId>& preds) const {
  Instance out(vocab_);
  out.EnsureElements(num_elements_);
  for (ElemId e = 0; e < num_elements_; ++e) out.names_[e] = names_[e];
  for (const Fact& f : facts_) {
    if (preds.count(f.pred)) out.AddFact(f);
  }
  return out;
}

std::string Instance::DebugString() const {
  std::ostringstream os;
  os << "{";
  bool first = true;
  for (const Fact& f : facts_) {
    if (!first) os << ", ";
    first = false;
    os << FactToString(*this, f);
  }
  os << "}";
  return os.str();
}

std::string FactToString(const Instance& inst, const Fact& f) {
  std::ostringstream os;
  os << inst.vocab()->name(f.pred) << "(";
  for (size_t i = 0; i < f.args.size(); ++i) {
    if (i) os << ",";
    os << inst.element_name(f.args[i]);
  }
  os << ")";
  return os.str();
}

}  // namespace mondet
