#include "base/instance.h"

#include <sstream>

#include "base/check.h"

namespace mondet {

namespace {
uint64_t PackKey(PredId pred, int pos, ElemId val) {
  return (static_cast<uint64_t>(pred) << 40) ^
         (static_cast<uint64_t>(pos) << 32) ^ static_cast<uint64_t>(val);
}
const std::vector<uint32_t> kEmptyIndex;
}  // namespace

ElemId Instance::AddElement(std::string name) {
  ElemId id = static_cast<ElemId>(num_elements_++);
  if (name.empty()) name = "e" + std::to_string(id);
  names_.push_back(std::move(name));
  degree_.push_back(0);
  return id;
}

void Instance::EnsureElements(size_t n) {
  while (num_elements_ < n) AddElement();
}

bool Instance::AddFact(PredId pred, const std::vector<ElemId>& args) {
  MONDET_CHECK(pred < vocab_->size());
  MONDET_CHECK(static_cast<int>(args.size()) == vocab_->arity(pred));
  for (ElemId a : args) MONDET_CHECK(a < num_elements_);
  Fact f(pred, args);
  if (!fact_set_.insert(f).second) return false;
  uint32_t idx = static_cast<uint32_t>(facts_.size());
  facts_.push_back(std::move(f));
  if (by_pred_.size() <= pred) by_pred_.resize(vocab_->size());
  by_pred_[pred].push_back(idx);
  for (ElemId a : args) degree_[a]++;
  // Keep the position index current once it has been materialized, so a
  // fixpoint loop probing the index between insertions never rescans.
  if (pos_index_live_ && pos_indexed_upto_ == idx) {
    for (int pos = 0; pos < static_cast<int>(args.size()); ++pos) {
      pos_index_[PackKey(pred, pos, args[pos])].push_back(idx);
    }
    pos_indexed_upto_ = idx + 1;
  }
  return true;
}

bool Instance::HasFact(PredId pred, const std::vector<ElemId>& args) const {
  Fact f(pred, args);
  return fact_set_.count(f) > 0;
}

const std::vector<uint32_t>& Instance::FactsWith(PredId pred) const {
  if (pred >= by_pred_.size()) return kEmptyIndex;
  return by_pred_[pred];
}

void Instance::IndexUpTo(size_t n) const {
  pos_index_live_ = true;
  for (size_t i = pos_indexed_upto_; i < n; ++i) {
    const Fact& f = facts_[i];
    for (int pos = 0; pos < static_cast<int>(f.args.size()); ++pos) {
      pos_index_[PackKey(f.pred, pos, f.args[pos])].push_back(
          static_cast<uint32_t>(i));
    }
  }
  pos_indexed_upto_ = n;
}

const std::vector<uint32_t>& Instance::FactsWith(PredId pred, int pos,
                                                 ElemId val) const {
  if (pos_indexed_upto_ < facts_.size()) IndexUpTo(facts_.size());
  auto it = pos_index_.find(PackKey(pred, pos, val));
  if (it == pos_index_.end()) return kEmptyIndex;
  return it->second;
}

void Instance::PrepareIndexes() const {
  if (pos_indexed_upto_ < facts_.size()) IndexUpTo(facts_.size());
}

std::vector<ElemId> Instance::ActiveDomain() const {
  std::vector<ElemId> out;
  for (ElemId e = 0; e < num_elements_; ++e) {
    if (degree_[e] > 0) out.push_back(e);
  }
  return out;
}

bool Instance::InActiveDomain(ElemId e) const {
  return e < num_elements_ && degree_[e] > 0;
}

size_t Instance::Degree(ElemId e) const {
  MONDET_CHECK(e < num_elements_);
  return degree_[e];
}

std::vector<ElemId> Instance::DisjointUnionWith(const Instance& other) {
  MONDET_CHECK(vocab_.get() == other.vocab_.get());
  std::vector<ElemId> translation(other.num_elements());
  for (ElemId e = 0; e < other.num_elements(); ++e) {
    translation[e] = AddElement(other.element_name(e) + "'");
  }
  for (const Fact& f : other.facts()) {
    std::vector<ElemId> args;
    args.reserve(f.args.size());
    for (ElemId a : f.args) args.push_back(translation[a]);
    AddFact(f.pred, args);
  }
  return translation;
}

Instance Instance::RestrictTo(const std::unordered_set<PredId>& preds) const {
  Instance out(vocab_);
  out.EnsureElements(num_elements_);
  for (ElemId e = 0; e < num_elements_; ++e) out.names_[e] = names_[e];
  for (const Fact& f : facts_) {
    if (preds.count(f.pred)) out.AddFact(f);
  }
  return out;
}

std::string Instance::DebugString() const {
  std::ostringstream os;
  os << "{";
  bool first = true;
  for (const Fact& f : facts_) {
    if (!first) os << ", ";
    first = false;
    os << FactToString(*this, f);
  }
  os << "}";
  return os.str();
}

std::string FactToString(const Instance& inst, const Fact& f) {
  std::ostringstream os;
  os << inst.vocab()->name(f.pred) << "(";
  for (size_t i = 0; i < f.args.size(); ++i) {
    if (i) os << ",";
    os << inst.element_name(f.args[i]);
  }
  os << ")";
  return os.str();
}

}  // namespace mondet
