#include "base/instance.h"

#include <algorithm>
#include <sstream>

#include "base/check.h"

namespace mondet {

Instance::Instance(const Instance& o)
    : vocab_(o.vocab_),
      num_elements_(o.num_elements_),
      names_(o.names_),
      preds_(o.preds_),
      index_(o.preds_.size()),
      order_(o.order_),
      table_(o.table_),
      table_live_(o.table_live_),
      table_used_(o.table_used_),
      degree_(o.degree_) {
  // index_ mirrors preds_ in shape (EnsurePred sizes them together) but
  // every PosIndex starts unbuilt; see the header note on copy semantics.
  for (size_t p = 0; p < preds_.size(); ++p) index_[p].resize(preds_[p].arity);
}

Instance& Instance::operator=(const Instance& o) {
  if (this != &o) {
    Instance tmp(o);
    *this = std::move(tmp);
  }
  return *this;
}

ElemId Instance::AddElement(std::string name) {
  ElemId id = static_cast<ElemId>(num_elements_++);
  // Unnamed elements store ""; element_name synthesizes "e<id>" on read.
  names_.push_back(std::move(name));
  degree_.push_back(0);
  return id;
}

void Instance::EnsureElements(size_t n) {
  while (num_elements_ < n) AddElement();
}

Instance::PredStore& Instance::EnsurePred(PredId pred) {
  if (preds_.size() <= pred) {
    preds_.resize(vocab_->size());
    index_.resize(vocab_->size());
  }
  PredStore& st = preds_[pred];
  if (st.counts.empty() && st.arity == 0) {
    st.arity = static_cast<uint32_t>(vocab_->arity(pred));
    index_[pred].resize(st.arity);
  }
  return st;
}

size_t Instance::FindSlot(PredId pred, std::span<const ElemId> args,
                          uint64_t hash) const {
  const size_t mask = table_.size() - 1;
  for (size_t i = hash & mask;; i = (i + 1) & mask) {
    const TableSlot& s = table_[i];
    if (s.gid == kEmptySlot) return kNoSlot;
    if (s.gid == kTombSlot || s.hash != hash) continue;
    const auto [p, row] = Locate(s.gid);
    if (FactEq::Same(p, Args(p, row), pred, args)) return i;
  }
}

void Instance::RehashTable(size_t min_live) {
  size_t cap = 16;
  while (cap * 3 < min_live * 4 * 2) cap <<= 1;  // target load <= 0.375
  std::vector<TableSlot> fresh(cap);
  const size_t mask = cap - 1;
  for (const TableSlot& s : table_) {
    if (s.gid == kEmptySlot || s.gid == kTombSlot) continue;
    size_t i = s.hash & mask;
    while (fresh[i].gid != kEmptySlot) i = (i + 1) & mask;
    fresh[i] = s;
  }
  table_ = std::move(fresh);
  table_used_ = table_live_;
}

void Instance::RepointTableGid(PredId pred, std::span<const ElemId> args,
                               uint32_t gid) {
  const size_t slot = FindSlot(pred, args, HashFactKey(pred, args));
  MONDET_CHECK(slot != kNoSlot && "Instance: repointing an absent fact");
  table_[slot].gid = gid;
}

bool Instance::AddFact(PredId pred, std::span<const ElemId> args) {
  MONDET_CHECK(pred < vocab_->size());
  MONDET_CHECK(static_cast<int>(args.size()) == vocab_->arity(pred));
  for (ElemId a : args) MONDET_CHECK(a < num_elements_);
  // Keep the table under 3/4 load counting tombstones; rehashing drops
  // them and keeps probe chains short.
  if (table_.empty() || (table_used_ + 1) * 4 > table_.size() * 3) {
    RehashTable(table_live_ + 1);
  }
  const uint64_t hash = HashFactKey(pred, args);
  const size_t mask = table_.size() - 1;
  size_t insert_at = kNoSlot;
  for (size_t i = hash & mask;; i = (i + 1) & mask) {
    const TableSlot& s = table_[i];
    if (s.gid == kEmptySlot) {
      if (insert_at == kNoSlot) {
        insert_at = i;
        ++table_used_;
      }
      break;
    }
    if (s.gid == kTombSlot) {
      if (insert_at == kNoSlot) insert_at = i;
      continue;
    }
    if (s.hash == hash) {
      const auto [p, row] = Locate(s.gid);
      if (FactEq::Same(p, Args(p, row), pred, args)) return false;
    }
  }
  const uint32_t gid = static_cast<uint32_t>(order_.size());
  table_[insert_at] = {hash, gid};
  ++table_live_;

  PredStore& st = EnsurePred(pred);
  const uint32_t row = static_cast<uint32_t>(st.counts.size());
  st.data.insert(st.data.end(), args.begin(), args.end());
  st.counts.push_back(1);
  st.global_of.push_back(gid);
  order_.push_back((static_cast<uint64_t>(pred) << 32) | row);
  for (ElemId a : args) degree_[a]++;
  // Keep built positional indexes current, so a fixpoint loop probing
  // between insertions never rebuilds.
  std::vector<PosIndex>& pix = index_[pred];
  for (uint32_t pos = 0; pos < st.arity; ++pos) {
    PosIndex& ix = pix[pos];
    if (!ix.built) continue;
    const ElemId val = args[pos];
    if (val >= ix.buckets.size()) ix.buckets.resize(val + 1);
    ix.slots.push_back(static_cast<uint32_t>(ix.buckets[val].size()));
    ix.buckets[val].push_back(row);
  }
  return true;
}

bool Instance::HasFact(PredId pred, std::span<const ElemId> args) const {
  if (table_.empty()) return false;
  return FindSlot(pred, args, HashFactKey(pred, args)) != kNoSlot;
}

bool Instance::RemoveFact(PredId pred, std::span<const ElemId> args) {
  if (table_.empty()) return false;
  const size_t slot = FindSlot(pred, args, HashFactKey(pred, args));
  if (slot == kNoSlot) return false;
  const uint32_t gid = table_[slot].gid;
  const auto [p, row] = Locate(gid);
  PredStore& st = preds_[pred];
  const uint32_t arity = st.arity;
  const uint32_t rlast = static_cast<uint32_t>(st.counts.size()) - 1;

  // 1. Unhook `row` from every built positional index: O(1) swap-and-pop
  //    inside its bucket via the row -> bucket-slot map.
  std::vector<PosIndex>& pix = index_[pred];
  for (uint32_t pos = 0; pos < arity; ++pos) {
    PosIndex& ix = pix[pos];
    if (!ix.built) continue;
    const ElemId val = st.data[static_cast<size_t>(row) * arity + pos];
    std::vector<uint32_t>& b = ix.buckets[val];
    const uint32_t i = ix.slots[row];
    b[i] = b.back();
    ix.slots[b[i]] = i;
    b.pop_back();
  }
  for (ElemId a : args) degree_[a]--;
  table_[slot].gid = kTombSlot;
  --table_live_;

  // 2. Compact the predicate's rows: move the last row into the freed one
  //    and re-point its index entries, global id and row coordinates.
  if (row != rlast) {
    for (uint32_t pos = 0; pos < arity; ++pos) {
      PosIndex& ix = pix[pos];
      if (!ix.built) continue;
      const ElemId val = st.data[static_cast<size_t>(rlast) * arity + pos];
      const uint32_t i = ix.slots[rlast];
      ix.buckets[val][i] = row;
      ix.slots[row] = i;
    }
    std::copy_n(st.data.begin() + static_cast<size_t>(rlast) * arity, arity,
                st.data.begin() + static_cast<size_t>(row) * arity);
    st.counts[row] = st.counts[rlast];
    const uint32_t moved_gid = st.global_of[rlast];
    st.global_of[row] = moved_gid;
    order_[moved_gid] = (static_cast<uint64_t>(pred) << 32) | row;
  }
  st.data.resize(st.data.size() - arity);
  st.counts.pop_back();
  st.global_of.pop_back();
  for (uint32_t pos = 0; pos < arity; ++pos) {
    if (pix[pos].built) pix[pos].slots.pop_back();
  }

  // 3. Compact the global order: the last global id moves into the freed
  //    one; its (pred,row) coordinates and table entry follow.
  const uint32_t glast = static_cast<uint32_t>(order_.size()) - 1;
  if (gid != glast) {
    const uint64_t packed = order_[glast];
    order_[gid] = packed;
    const PredId mp = static_cast<PredId>(packed >> 32);
    const uint32_t mr = static_cast<uint32_t>(packed);
    preds_[mp].global_of[mr] = gid;
    RepointTableGid(mp, Args(mp, mr), gid);
  }
  order_.pop_back();
  return true;
}

uint64_t Instance::FactCount(const Fact& f) const {
  if (table_.empty()) return 0;
  const size_t slot = FindSlot(f.pred, f.args, HashFactKey(f.pred, f.args));
  if (slot == kNoSlot) return 0;
  const auto [p, row] = Locate(table_[slot].gid);
  return preds_[p].counts[row];
}

void Instance::SetFactCount(const Fact& f, uint64_t count) {
  MONDET_CHECK(!table_.empty());
  const size_t slot = FindSlot(f.pred, f.args, HashFactKey(f.pred, f.args));
  MONDET_CHECK(slot != kNoSlot);
  MONDET_CHECK(count > 0);
  const auto [p, row] = Locate(table_[slot].gid);
  preds_[p].counts[row] = count;
}

void Instance::SetCountAt(PredId pred, uint32_t row, uint64_t count) {
  MONDET_CHECK(count > 0);
  preds_[pred].counts[row] = count;
}

std::vector<Fact> Instance::AllFacts() const {
  std::vector<Fact> out;
  out.reserve(order_.size());
  for (uint32_t g = 0; g < order_.size(); ++g) out.push_back(FactAt(g));
  return out;
}

void Instance::BuildPosIndex(PredId pred, int pos) const {
  const PredStore& st = preds_[pred];
  PosIndex& ix = index_[pred][pos];
  ix.built = true;
  const uint32_t rows = static_cast<uint32_t>(st.counts.size());
  const uint32_t arity = st.arity;
  const ElemId* col = st.data.data() + pos;
  // Counting-sort build: count per-value occurrences, reserve each bucket
  // exactly, then scatter rows in row order (so bucket order == insertion
  // order, the order the determinism contracts rely on).
  ElemId max_val = 0;
  for (uint32_t r = 0; r < rows; ++r) {
    max_val = std::max(max_val, col[static_cast<size_t>(r) * arity]);
  }
  std::vector<uint32_t> cnt(rows == 0 ? 0 : max_val + 1, 0);
  for (uint32_t r = 0; r < rows; ++r) {
    ++cnt[col[static_cast<size_t>(r) * arity]];
  }
  ix.buckets.assign(cnt.size(), {});
  for (ElemId v = 0; v < cnt.size(); ++v) {
    if (cnt[v] > 0) ix.buckets[v].reserve(cnt[v]);
  }
  ix.slots.resize(rows);
  for (uint32_t r = 0; r < rows; ++r) {
    std::vector<uint32_t>& b = ix.buckets[col[static_cast<size_t>(r) * arity]];
    ix.slots[r] = static_cast<uint32_t>(b.size());
    b.push_back(r);
  }
}

std::span<const uint32_t> Instance::BuildAndProbe(PredId pred, int pos,
                                                  ElemId val) const {
  if (pred >= preds_.size() || preds_[pred].counts.empty()) return {};
  if (!index_[pred][pos].built) BuildPosIndex(pred, pos);
  const PosIndex& ix = index_[pred][pos];
  if (val >= ix.buckets.size()) return {};
  const std::vector<uint32_t>& b = ix.buckets[val];
  return {b.data(), b.size()};
}

void Instance::PrepareIndexes() const {
  for (PredId p = 0; p < preds_.size(); ++p) {
    if (preds_[p].counts.empty()) continue;
    for (uint32_t pos = 0; pos < preds_[p].arity; ++pos) {
      if (!index_[p][pos].built) BuildPosIndex(p, pos);
    }
  }
}

std::vector<ElemId> Instance::ActiveDomain() const {
  std::vector<ElemId> out;
  for (ElemId e = 0; e < num_elements_; ++e) {
    if (degree_[e] > 0) out.push_back(e);
  }
  return out;
}

bool Instance::InActiveDomain(ElemId e) const {
  return e < num_elements_ && degree_[e] > 0;
}

size_t Instance::Degree(ElemId e) const {
  MONDET_CHECK(e < num_elements_);
  return degree_[e];
}

std::vector<ElemId> Instance::DisjointUnionWith(const Instance& other) {
  MONDET_CHECK(vocab_.get() == other.vocab_.get());
  std::vector<ElemId> translation(other.num_elements());
  for (ElemId e = 0; e < other.num_elements(); ++e) {
    translation[e] = AddElement(other.element_name(e) + "'");
  }
  std::vector<ElemId> args;
  for (uint32_t g = 0; g < other.num_facts(); ++g) {
    const FactView f = other.ViewAt(g);
    args.clear();
    for (ElemId a : f.args) args.push_back(translation[a]);
    AddFact(f.pred, args);
  }
  return translation;
}

Instance Instance::RestrictTo(const std::unordered_set<PredId>& preds) const {
  Instance out(vocab_);
  out.EnsureElements(num_elements_);
  for (ElemId e = 0; e < num_elements_; ++e) out.names_[e] = names_[e];
  for (uint32_t g = 0; g < num_facts(); ++g) {
    const FactView f = ViewAt(g);
    if (preds.count(f.pred)) out.AddFact(f.pred, f.args);
  }
  return out;
}

namespace {
std::string FactToStringImpl(const Instance& inst, PredId pred,
                             std::span<const ElemId> args) {
  std::ostringstream os;
  os << inst.vocab()->name(pred) << "(";
  for (size_t i = 0; i < args.size(); ++i) {
    if (i) os << ",";
    os << inst.element_name(args[i]);
  }
  os << ")";
  return os.str();
}
}  // namespace

std::string Instance::DebugString() const {
  std::ostringstream os;
  os << "{";
  for (uint32_t g = 0; g < num_facts(); ++g) {
    if (g) os << ", ";
    const FactView f = ViewAt(g);
    os << FactToStringImpl(*this, f.pred, f.args);
  }
  os << "}";
  return os.str();
}

std::string FactToString(const Instance& inst, const Fact& f) {
  return FactToStringImpl(inst, f.pred, f.args);
}

std::string FactToString(const Instance& inst, const FactView& f) {
  return FactToStringImpl(inst, f.pred, f.args);
}

}  // namespace mondet
