#ifndef MONDET_BASE_SCC_H_
#define MONDET_BASE_SCC_H_

#include <cstddef>
#include <vector>

namespace mondet {

/// Iterative Tarjan SCC over a dense adjacency list. Components receive
/// ids in pop order, so every component a node depends on (reaches) has a
/// smaller id than the node's own component; processing components in
/// ascending id order therefore visits dependencies first. Shared by the
/// evaluator's stratification (eval_plan) and the static analyzer's
/// recursion-structure report (analysis/).
std::vector<int> SccIds(size_t n, const std::vector<std::vector<int>>& adj,
                        int* num_sccs);

}  // namespace mondet

#endif  // MONDET_BASE_SCC_H_
