#ifndef MONDET_BASE_STATS_H_
#define MONDET_BASE_STATS_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "base/instance.h"

namespace mondet {

/// Exact per-predicate statistics of one relation.
struct PredicateStats {
  size_t cardinality = 0;        // number of facts
  std::vector<size_t> distinct;  // distinct values at each position
  // Exact per-position value multiplicities, the state that makes
  // Stats::Apply O(delta). Counts (not just a set) so the structure stays
  // correct if a future caller ever retracts facts; today's callers are
  // insert-only.
  //
  // Materialized lazily: CountPred leaves the maps empty and keeps the
  // sorted column snapshot instead; the first Apply touching the
  // predicate rebuilds the maps from the snapshot (EnsureMaps), after
  // which distinct[pos] == value_counts[pos].size() holds and is
  // maintained incrementally. Predicates that never see a delta — every
  // EDB relation of a fixpoint run — never pay the per-value map nodes,
  // which is most of Collect's cost on the µs-scale evals the checker's
  // canonical-test loops issue.
  std::vector<std::unordered_map<ElemId, uint32_t>> value_counts;
  // Per-position sorted column snapshot backing the lazy maps; cleared
  // once EnsureMaps runs. maps_built is true for default-constructed
  // stats (empty maps match an empty relation).
  std::vector<std::vector<ElemId>> sorted_vals;
  bool maps_built = true;
  // Feedback correction factor (see Stats::Observe), multiplied into
  // EstimateMatches. 1.0 = no observations yet. Survives recounts:
  // Refresh/Apply update the counts, not the learned selectivity error.
  double correction = 1.0;
  // Per-position correction factors (see the masked Stats::Observe):
  // pos_correction[i] scales every estimate whose probe binds position i,
  // encoding *which* position's uniformity assumption is off — a skewed
  // join column no longer taxes probes on the relation's other columns.
  // Empty means all 1.0; sized to the arity on first positional
  // observation. Survives recounts, like `correction`.
  std::vector<double> pos_correction;
};

/// Per-predicate cardinalities and per-(pred, pos) distinct-value counts
/// collected from a bound instance, feeding the selectivity cost model of
/// the join planner (SelectivityAtomOrder / CompiledProgram).
///
/// Statistics are a snapshot: evaluating a program on an instance that has
/// since grown (or on a different instance entirely) is still *correct* —
/// stale stats can only produce slower join orders, never wrong results.
/// During a fixpoint run the snapshot is kept exact at O(delta) cost by
/// Apply, which folds the merge barrier's newly-added facts into the
/// counts; Refresh (a full recount of chosen predicates) remains for
/// callers without a delta stream (see docs/EVALUATION.md).
///
/// On top of the exact counts sits a feedback layer: Observe folds a
/// measured-vs-estimated row ratio into a damped per-predicate correction
/// factor, clamped to [1/16, 16], which EstimateMatches multiplies into
/// every estimate for that predicate. Corrections encode how far the
/// uniformity/independence assumptions are off for a relation, so repeated
/// plan-observe rounds converge toward measured selectivities
/// (EvalOptions::plan_feedback).
class Stats {
 public:
  Stats() = default;

  /// Exact counts for every predicate of `inst`'s vocabulary.
  static Stats Collect(const Instance& inst);

  /// Recounts just the given predicates from `inst`, leaving the rest of
  /// the snapshot (and all correction factors) untouched.
  void Refresh(const Instance& inst, const std::vector<PredId>& preds);

  /// Folds newly-added facts into the counts in O(|added| · arity): the
  /// exact-maintenance path of the evaluator's merge barrier. The contract
  /// is insert-only growth of the *counted* instance: this snapshot covered
  /// every fact of `inst` except exactly the facts of `added` (which
  /// `Instance::AddFact` has already deduplicated). Feeding a delta from a
  /// different instance — or one containing already-counted facts — is a
  /// programming error, caught by a fact-count MONDET_CHECK.
  void Apply(const Instance& inst, std::span<const Fact> added);

  /// Same insert-only fold, but the delta is given as global fact ids into
  /// `inst` (what the evaluator's merge barrier holds) — no Fact
  /// materialization, the columnar rows are read in place.
  void Apply(const Instance& inst, std::span<const uint32_t> added_gids);

  /// Deletion-aware variant: folds `added` in and `removed` out, in
  /// O((|added| + |removed|) · arity). The contract generalizes the
  /// insert-only one: this snapshot covered exactly
  /// (facts of `inst`) ∖ added ∪ removed, with `added` and `removed`
  /// disjoint sets of genuinely applied mutations (Instance::AddFact /
  /// RemoveFact both report whether they changed the instance). Removing
  /// a fact this snapshot never counted — including a double-delete —
  /// breaks the equation or a per-value multiplicity and aborts.
  void Apply(const Instance& inst, std::span<const Fact> added,
             std::span<const Fact> removed);

  /// Total facts this snapshot has counted (sum of cardinalities). Equals
  /// inst.num_facts() whenever the snapshot is current for `inst`; the
  /// Apply contract check is phrased in terms of this.
  size_t counted_facts() const { return counted_facts_; }

  size_t cardinality(PredId p) const {
    return p < by_pred_.size() ? by_pred_[p].cardinality : 0;
  }
  size_t distinct(PredId p, size_t pos) const {
    if (p >= by_pred_.size()) return 0;
    const auto& d = by_pred_[p].distinct;
    return pos < d.size() ? d[pos] : 0;
  }

  /// Feedback: the planner estimated `estimated` rows for a join step on
  /// predicate `p` and measured `actual`. Folds the ratio into the
  /// predicate's correction factor with square-root damping (one
  /// observation moves the factor at most half the error, in log space)
  /// and clamps both the per-observation ratio and the running factor to
  /// [1/16, 16] so one pathological step cannot poison the model.
  /// Observations with a nonpositive estimate carry no signal and are
  /// ignored; `actual == 0` is treated as the lower ratio clamp (a strong
  /// overestimate).
  void Observe(PredId p, double estimated, double actual);

  /// Positional feedback: the same measurement, plus which positions of
  /// `p` the estimated probe had bound. With k > 0 bound positions the
  /// error is attributed to those positions' correction factors — each
  /// moves by ratio^(1/(2k)) in log space, so the combined positional
  /// nudge equals the scalar overload's sqrt(ratio) — and the scalar
  /// factor is left alone. With no bound position (a full scan: nothing
  /// positional to blame) this degrades to the scalar overload.
  void Observe(PredId p, const std::vector<bool>& bound_pos, double estimated,
               double actual);

  /// The current correction factor for `p` (1.0 when never observed).
  double correction(PredId p) const {
    return p < by_pred_.size() ? by_pred_[p].correction : 1.0;
  }

  /// The correction factor for probes binding position `pos` of `p`.
  double pos_correction(PredId p, size_t pos) const {
    if (p >= by_pred_.size()) return 1.0;
    const auto& pc = by_pred_[p].pos_correction;
    return pos < pc.size() ? pc[pos] : 1.0;
  }

  /// Number of predicates with any correction factor (scalar or
  /// positional) differing from 1.0.
  size_t ActiveCorrections() const;

  /// Copies every correction factor of `from` into this snapshot (counts
  /// are untouched). Lets a caller carry learned corrections across
  /// evaluations: EvalOptions::feedback imports before planning and
  /// exports after the run.
  void ImportCorrections(const Stats& from);

  /// System-R style estimate of how many facts of `p` match a probe with
  /// the positions flagged in `bound_pos` already bound:
  ///   corr(p) · |p| · prod_{i bound} poscorr(p, i) / max(1, distinct(p, i))
  /// assuming uniform values and independent positions, scaled by the
  /// predicate's scalar correction factor and by the positional factor of
  /// every bound position. Returns 0 for an empty (or never-counted)
  /// relation; results are fractional on purpose — the planner compares
  /// them, it never rounds.
  double EstimateMatches(PredId p, const std::vector<bool>& bound_pos) const;

  /// Same estimate, phrased for the planner's inner loop: `args[pos]` is
  /// the variable at position pos and `bound_var` flags bound variables,
  /// so no per-call position mask needs to be materialized.
  double EstimateMatches(PredId p, const std::vector<ElemId>& args,
                         const std::vector<bool>& bound_var) const;

 private:
  void CountPred(const Instance& inst, PredId p);
  /// Materializes `ps.value_counts` from the sorted snapshot CountPred
  /// left behind (see PredicateStats::sorted_vals). Idempotent.
  static void EnsureMaps(PredicateStats& ps);

  std::vector<PredicateStats> by_pred_;
  size_t counted_facts_ = 0;
};

}  // namespace mondet

#endif  // MONDET_BASE_STATS_H_
