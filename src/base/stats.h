#ifndef MONDET_BASE_STATS_H_
#define MONDET_BASE_STATS_H_

#include <cstddef>
#include <vector>

#include "base/instance.h"

namespace mondet {

/// Exact per-predicate statistics of one relation.
struct PredicateStats {
  size_t cardinality = 0;        // number of facts
  std::vector<size_t> distinct;  // distinct values at each position
};

/// Per-predicate cardinalities and per-(pred, pos) distinct-value counts
/// collected from a bound instance, feeding the selectivity cost model of
/// the join planner (SelectivityAtomOrder / CompiledProgram).
///
/// Statistics are a snapshot: evaluating a program on an instance that has
/// since grown (or on a different instance entirely) is still *correct* —
/// stale stats can only produce slower join orders, never wrong results —
/// which is what makes cheap per-stratum Refresh calls during a fixpoint
/// run sound (see docs/EVALUATION.md).
class Stats {
 public:
  Stats() = default;

  /// Exact counts for every predicate of `inst`'s vocabulary.
  static Stats Collect(const Instance& inst);

  /// Recounts just the given predicates from `inst`, leaving the rest of
  /// the snapshot untouched. Used between strata / delta rounds where only
  /// the predicates of the active stratum change.
  void Refresh(const Instance& inst, const std::vector<PredId>& preds);

  size_t cardinality(PredId p) const {
    return p < by_pred_.size() ? by_pred_[p].cardinality : 0;
  }
  size_t distinct(PredId p, size_t pos) const {
    if (p >= by_pred_.size()) return 0;
    const auto& d = by_pred_[p].distinct;
    return pos < d.size() ? d[pos] : 0;
  }

  /// System-R style estimate of how many facts of `p` match a probe with
  /// the positions flagged in `bound_pos` already bound:
  ///   |p| / prod_{i bound} max(1, distinct(p, i))
  /// assuming uniform values and independent positions. Returns 0 for an
  /// empty (or never-counted) relation; results are fractional on purpose —
  /// the planner compares them, it never rounds.
  double EstimateMatches(PredId p, const std::vector<bool>& bound_pos) const;

  /// Same estimate, phrased for the planner's inner loop: `args[pos]` is
  /// the variable at position pos and `bound_var` flags bound variables,
  /// so no per-call position mask needs to be materialized.
  double EstimateMatches(PredId p, const std::vector<ElemId>& args,
                         const std::vector<bool>& bound_var) const;

 private:
  void CountPred(const Instance& inst, PredId p);

  std::vector<PredicateStats> by_pred_;
};

}  // namespace mondet

#endif  // MONDET_BASE_STATS_H_
