#ifndef MONDET_BASE_CHECK_H_
#define MONDET_BASE_CHECK_H_

#include <cstdio>
#include <cstdlib>

/// MONDET_CHECK(cond) aborts with a diagnostic when `cond` is false.
///
/// The library does not use exceptions (per the project style); invariant
/// violations are programming errors and terminate the process. Recoverable
/// failures (e.g. parse errors) are reported through return values instead.
#define MONDET_CHECK(cond)                                                   \
  do {                                                                       \
    if (!(cond)) {                                                           \
      std::fprintf(stderr, "MONDET_CHECK failed at %s:%d: %s\n", __FILE__,   \
                   __LINE__, #cond);                                         \
      std::abort();                                                          \
    }                                                                        \
  } while (0)

#endif  // MONDET_BASE_CHECK_H_
