#include "base/canonical.h"

#include <algorithm>

namespace mondet {

namespace {

uint64_t Mix(uint64_t x) {
  // splitmix64 finalizer.
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

uint64_t Mix2(uint64_t a, uint64_t b) { return Mix(a ^ Mix(b)); }

/// Elements that matter for generic queries: active domain plus the
/// distinguished tuple.
std::vector<char> RelevantElements(const Instance& inst,
                                   const std::vector<ElemId>& tuple) {
  std::vector<char> rel(inst.num_elements(), 0);
  for (uint32_t g = 0; g < inst.num_facts(); ++g) {
    for (ElemId e : inst.ViewAt(g).args) rel[e] = 1;
  }
  for (ElemId e : tuple) rel[e] = 1;
  return rel;
}

/// Color refinement: start from (degree, tuple positions), then fold in
/// the multiset of (fact signature, argument position) for a fixed number
/// of rounds. Iso-invariant by construction — every input to a color is
/// itself preserved under any isomorphism respecting the tuple.
std::vector<uint64_t> RefinedColors(const Instance& inst,
                                    const std::vector<ElemId>& tuple) {
  size_t n = inst.num_elements();
  std::vector<uint64_t> color(n, 0);
  for (ElemId e = 0; e < n; ++e) {
    color[e] = Mix2(0x1111, inst.Degree(e));
  }
  for (size_t i = 0; i < tuple.size(); ++i) {
    color[tuple[i]] = Mix2(color[tuple[i]], Mix2(0x2222, i));
  }
  std::vector<std::vector<uint64_t>> occ(n);
  constexpr int kRounds = 3;
  for (int round = 0; round < kRounds; ++round) {
    for (auto& v : occ) v.clear();
    for (uint32_t g = 0; g < inst.num_facts(); ++g) {
      const FactView f = inst.ViewAt(g);
      uint64_t sig = Mix2(0x3333, f.pred);
      for (ElemId a : f.args) sig = Mix2(sig, color[a]);
      for (size_t pos = 0; pos < f.args.size(); ++pos) {
        occ[f.args[pos]].push_back(Mix2(sig, pos));
      }
    }
    for (ElemId e = 0; e < n; ++e) {
      std::sort(occ[e].begin(), occ[e].end());
      uint64_t c = color[e];
      for (uint64_t o : occ[e]) c = Mix2(c, o);
      color[e] = c;
    }
  }
  return color;
}

}  // namespace

uint64_t CanonicalHash(const Instance& inst, const std::vector<ElemId>& tuple) {
  std::vector<uint64_t> color = RefinedColors(inst, tuple);
  std::vector<char> rel = RelevantElements(inst, tuple);
  size_t nrel = 0;
  for (char r : rel) nrel += r;

  // Fact multiset under final colors, order-independent.
  std::vector<uint64_t> sigs;
  sigs.reserve(inst.num_facts());
  for (uint32_t g = 0; g < inst.num_facts(); ++g) {
    const FactView f = inst.ViewAt(g);
    uint64_t sig = Mix2(0x4444, f.pred);
    for (ElemId a : f.args) sig = Mix2(sig, color[a]);
    sigs.push_back(sig);
  }
  std::sort(sigs.begin(), sigs.end());

  uint64_t h = Mix2(Mix2(0x5555, nrel), inst.num_facts());
  for (uint64_t s : sigs) h = Mix2(h, s);
  for (ElemId e : tuple) h = Mix2(h, color[e]);  // tuple order matters
  return h;
}

std::optional<std::vector<ElemId>> FindIsomorphism(
    const Instance& a, const std::vector<ElemId>& ta, const Instance& b,
    const std::vector<ElemId>& tb, size_t max_nodes) {
  if (ta.size() != tb.size()) return std::nullopt;
  if (a.num_facts() != b.num_facts()) return std::nullopt;
  std::vector<char> rel_a = RelevantElements(a, ta);
  std::vector<char> rel_b = RelevantElements(b, tb);
  size_t na = 0, nb = 0;
  for (char r : rel_a) na += r;
  for (char r : rel_b) nb += r;
  if (na != nb) return std::nullopt;

  std::vector<uint64_t> color_a = RefinedColors(a, ta);
  std::vector<uint64_t> color_b = RefinedColors(b, tb);

  // Candidate targets per color.
  std::unordered_map<uint64_t, std::vector<ElemId>> by_color_b;
  for (ElemId e = 0; e < b.num_elements(); ++e) {
    if (rel_b[e]) by_color_b[color_b[e]].push_back(e);
  }

  std::vector<ElemId> map(a.num_elements(), kNoElem);
  std::vector<char> used_b(b.num_elements(), 0);

  // Assignment order: tuple elements first (forced), then the rest of a's
  // relevant elements, rarest color class first (fail-fast).
  std::vector<ElemId> order;
  std::vector<char> ordered(a.num_elements(), 0);
  for (ElemId e : ta) {
    if (!ordered[e]) {
      ordered[e] = 1;
      order.push_back(e);
    }
  }
  std::vector<ElemId> rest;
  for (ElemId e = 0; e < a.num_elements(); ++e) {
    if (rel_a[e] && !ordered[e]) rest.push_back(e);
  }
  std::sort(rest.begin(), rest.end(), [&](ElemId x, ElemId y) {
    auto ix = by_color_b.find(color_a[x]);
    auto iy = by_color_b.find(color_a[y]);
    size_t cx = ix == by_color_b.end() ? 0 : ix->second.size();
    size_t cy = iy == by_color_b.end() ? 0 : iy->second.size();
    if (cx != cy) return cx < cy;
    return x < y;
  });
  order.insert(order.end(), rest.begin(), rest.end());

  // Forced images for the tuple prefix.
  std::vector<ElemId> forced(a.num_elements(), kNoElem);
  for (size_t i = 0; i < ta.size(); ++i) {
    if (forced[ta[i]] != kNoElem && forced[ta[i]] != tb[i]) {
      return std::nullopt;  // ta repeats where tb does not
    }
    forced[ta[i]] = tb[i];
  }

  // Facts anchored at the latest-assigned argument: once order[k] is
  // mapped, every anchored fact is fully mapped and must exist in b.
  std::vector<size_t> when(a.num_elements(), 0);
  for (size_t k = 0; k < order.size(); ++k) when[order[k]] = k;
  std::vector<std::vector<uint32_t>> anchored(order.size());
  for (uint32_t fi = 0; fi < a.num_facts(); ++fi) {
    const FactView f = a.ViewAt(fi);
    size_t latest = 0;
    for (ElemId e : f.args) latest = std::max(latest, when[e]);
    if (!f.args.empty()) {
      anchored[latest].push_back(fi);
    } else if (!b.HasFact(f.pred, f.args)) {
      // Nullary facts have no anchor; check them up front.
      return std::nullopt;
    }
  }

  size_t nodes = 0;
  std::vector<ElemId> mapped_args;
  std::function<bool(size_t)> extend = [&](size_t k) -> bool {
    if (k == order.size()) return true;
    if (++nodes > max_nodes) return false;
    ElemId e = order[k];
    auto it = by_color_b.find(color_a[e]);
    if (it == by_color_b.end()) return false;
    for (ElemId f : it->second) {
      if (used_b[f]) continue;
      if (forced[e] != kNoElem && forced[e] != f) continue;
      map[e] = f;
      used_b[f] = 1;
      bool ok = true;
      for (uint32_t fi : anchored[k]) {
        const FactView fact = a.ViewAt(fi);
        mapped_args.clear();
        for (ElemId x : fact.args) mapped_args.push_back(map[x]);
        if (!b.HasFact(fact.pred, mapped_args)) {
          ok = false;
          break;
        }
      }
      if (ok && extend(k + 1)) return true;
      map[e] = kNoElem;
      used_b[f] = 0;
      if (nodes > max_nodes) return false;
    }
    return false;
  };
  if (!extend(0)) return std::nullopt;
  // Every a-fact maps into b's set, the map is injective, and the fact
  // counts match — so the fact sets correspond exactly.
  return map;
}

bool CanonicalTestCache::GetOrCompute(const Instance& inst,
                                      const std::vector<ElemId>& tuple,
                                      const std::function<bool()>& fn,
                                      bool* was_hit) {
  uint64_t h = CanonicalHash(inst, tuple);
  Shard& shard = shards_[h % kNumShards];
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.map.find(h);
    if (it != shard.map.end()) {
      for (const Entry& e : it->second) {
        if (FindIsomorphism(e.inst, e.tuple, inst, tuple)) {
          if (was_hit) *was_hit = true;
          return e.value;
        }
      }
    }
  }
  bool value = fn();
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.map[h].push_back(Entry{inst, tuple, value});
  }
  if (was_hit) *was_hit = false;
  return value;
}

size_t CanonicalTestCache::size() const {
  size_t n = 0;
  for (const Shard& s : shards_) {
    std::lock_guard<std::mutex> lock(s.mu);
    for (const auto& [h, entries] : s.map) {
      (void)h;
      n += entries.size();
    }
  }
  return n;
}

}  // namespace mondet
