#include "base/homomorphism.h"

#include <algorithm>

#include "base/check.h"

namespace mondet {

std::vector<uint32_t> GreedyAtomOrder(
    const std::vector<std::vector<ElemId>>& atom_vars, size_t num_vars,
    const std::function<size_t(size_t)>& rel_size, std::vector<bool> bound) {
  size_t n = atom_vars.size();
  bound.resize(num_vars, false);
  std::vector<bool> used(n, false);
  std::vector<uint32_t> order;
  order.reserve(n);
  for (size_t step = 0; step < n; ++step) {
    int best = -1;
    int best_bound = -1;
    size_t best_rel = 0;
    for (size_t i = 0; i < n; ++i) {
      if (used[i]) continue;
      int nb = 0;
      for (ElemId a : atom_vars[i]) nb += bound[a] ? 1 : 0;
      size_t rel = rel_size(i);
      if (nb > best_bound || (nb == best_bound && rel < best_rel)) {
        best = static_cast<int>(i);
        best_bound = nb;
        best_rel = rel;
      }
    }
    used[best] = true;
    order.push_back(static_cast<uint32_t>(best));
    for (ElemId a : atom_vars[best]) bound[a] = true;
  }
  return order;
}

std::vector<uint32_t> SelectivityAtomOrder(
    const std::vector<std::vector<ElemId>>& atom_vars, size_t num_vars,
    const std::function<double(size_t, const std::vector<bool>&)>& est_matches,
    std::vector<bool> bound, std::vector<double>* est_rows) {
  size_t n = atom_vars.size();
  bound.resize(num_vars, false);
  bool anything_bound =
      std::find(bound.begin(), bound.end(), true) != bound.end();
  std::vector<bool> used(n, false);
  std::vector<uint32_t> order;
  order.reserve(n);
  if (est_rows) {
    est_rows->clear();
    est_rows->reserve(n);
  }
  double rows = 1.0;
  for (size_t step = 0; step < n; ++step) {
    int best = -1;
    bool best_shares = false;
    double best_est = 0.0;
    for (size_t i = 0; i < n; ++i) {
      if (used[i]) continue;
      bool shares = atom_vars[i].empty();  // nullary atoms are filters
      for (ElemId a : atom_vars[i]) {
        if (bound[a]) {
          shares = true;
          break;
        }
      }
      // Before anything is bound every pick is a scan; "shares" only
      // separates candidates once a prefix exists.
      if (!anything_bound) shares = true;
      double est = est_matches(i, bound);
      if (best < 0 || (shares && !best_shares) ||
          (shares == best_shares && est < best_est)) {
        best = static_cast<int>(i);
        best_shares = shares;
        best_est = est;
      }
    }
    used[best] = true;
    order.push_back(static_cast<uint32_t>(best));
    rows *= best_est;
    if (est_rows) est_rows->push_back(rows);
    for (ElemId a : atom_vars[best]) bound[a] = true;
    if (!atom_vars[best].empty()) anything_bound = true;
  }
  return order;
}

HomSearch::HomSearch(const Instance& pattern, const Instance& target)
    : pattern_(pattern),
      target_(target),
      pattern_facts_(pattern.AllFacts()) {
  MONDET_CHECK(pattern.vocab().get() == target.vocab().get());
  // Greedy atom ordering: repeatedly pick the unprocessed pattern fact
  // sharing the most elements with already-processed facts (ties: fewer
  // target facts of that predicate). Keeps the search tree narrow.
  std::vector<std::vector<ElemId>> atom_vars;
  atom_vars.reserve(pattern_facts_.size());
  for (const Fact& f : pattern_facts_) atom_vars.push_back(f.args);
  atom_order_ = GreedyAtomOrder(atom_vars, pattern_.num_elements(),
                                [this](size_t i) {
                                  return target_.NumRows(
                                      pattern_facts_[i].pred);
                                });
}

bool HomSearch::Search(size_t depth, std::vector<ElemId>& map,
                       const Callback& cb) const {
  if (depth == atom_order_.size()) {
    // Assign isolated (fact-free) pattern elements canonically.
    std::vector<size_t> filled;
    for (ElemId e = 0; e < pattern_.num_elements(); ++e) {
      if (map[e] == kNoElem) {
        if (target_.num_elements() == 0) return true;  // continue: no hom
        map[e] = 0;
        filled.push_back(e);
      }
    }
    bool keep_going = cb(map);
    for (size_t e : filled) map[e] = kNoElem;
    return keep_going;
  }
  const Fact& atom = pattern_facts_[atom_order_[depth]];
  // Candidate target rows: use the tightest available index; a fully
  // unbound atom scans every row of the predicate.
  std::span<const uint32_t> candidates;
  int anchor_pos = -1;
  for (int pos = 0; pos < static_cast<int>(atom.args.size()); ++pos) {
    if (map[atom.args[pos]] != kNoElem) {
      const std::span<const uint32_t> idx =
          target_.RowsWith(atom.pred, pos, map[atom.args[pos]]);
      if (anchor_pos < 0 || idx.size() < candidates.size()) {
        candidates = idx;
        anchor_pos = pos;
      }
    }
  }
  std::vector<ElemId> newly_bound;
  auto try_row = [&](uint32_t row) {
    const std::span<const ElemId> targs = target_.Args(atom.pred, row);
    newly_bound.clear();
    bool ok = true;
    for (size_t pos = 0; pos < atom.args.size(); ++pos) {
      ElemId pe = atom.args[pos];
      if (map[pe] == kNoElem) {
        map[pe] = targs[pos];
        newly_bound.push_back(pe);
      } else if (map[pe] != targs[pos]) {
        ok = false;
        break;
      }
    }
    if (ok) {
      if (!Search(depth + 1, map, cb)) {
        for (ElemId pe : newly_bound) map[pe] = kNoElem;
        return false;
      }
    }
    for (ElemId pe : newly_bound) map[pe] = kNoElem;
    return true;
  };
  if (anchor_pos < 0) {
    const uint32_t n = target_.NumRows(atom.pred);
    for (uint32_t row = 0; row < n; ++row) {
      if (!try_row(row)) return false;
    }
  } else {
    for (uint32_t row : candidates) {
      if (!try_row(row)) return false;
    }
  }
  return true;
}

bool HomSearch::Run(const Fixed& fixed, const Callback& cb) const {
  std::vector<ElemId> map(pattern_.num_elements(), kNoElem);
  for (const auto& [pe, te] : fixed) {
    MONDET_CHECK(pe < pattern_.num_elements());
    MONDET_CHECK(te < target_.num_elements());
    if (map[pe] != kNoElem && map[pe] != te) return true;  // inconsistent
    map[pe] = te;
  }
  return Search(0, map, cb);
}

bool HomSearch::Exists(const Fixed& fixed) const {
  bool found = false;
  Run(fixed, [&found](const std::vector<ElemId>&) {
    found = true;
    return false;
  });
  return found;
}

std::optional<std::vector<ElemId>> HomSearch::FindOne(
    const Fixed& fixed) const {
  std::optional<std::vector<ElemId>> result;
  Run(fixed, [&result](const std::vector<ElemId>& map) {
    result = map;
    return false;
  });
  return result;
}

void HomSearch::ForEach(const Fixed& fixed, const Callback& cb) const {
  Run(fixed, cb);
}

size_t HomSearch::Count(const Fixed& fixed) const {
  size_t n = 0;
  Run(fixed, [&n](const std::vector<ElemId>&) {
    ++n;
    return true;
  });
  return n;
}

bool HasHomomorphism(const Instance& pattern, const Instance& target) {
  return HomSearch(pattern, target).Exists();
}

bool IsHomomorphism(const Instance& pattern, const Instance& target,
                    const std::vector<ElemId>& map) {
  if (map.size() != pattern.num_elements()) return false;
  for (ElemId e = 0; e < pattern.num_elements(); ++e) {
    if (map[e] >= target.num_elements()) return false;
  }
  std::vector<ElemId> img;
  for (uint32_t g = 0; g < pattern.num_facts(); ++g) {
    const FactView f = pattern.ViewAt(g);
    img.clear();
    for (ElemId a : f.args) img.push_back(map[a]);
    if (!target.HasFact(f.pred, img)) return false;
  }
  return true;
}

bool HomEquivalent(const Instance& a, const Instance& b) {
  return HasHomomorphism(a, b) && HasHomomorphism(b, a);
}

}  // namespace mondet
