#include "base/stats.h"

#include <algorithm>
#include <cmath>

#include "base/check.h"

namespace mondet {

namespace {

constexpr double kCorrectionMin = 1.0 / 16.0;
constexpr double kCorrectionMax = 16.0;

double ClampCorrection(double v) {
  return std::min(kCorrectionMax, std::max(kCorrectionMin, v));
}

}  // namespace

Stats Stats::Collect(const Instance& inst) {
  Stats s;
  const size_t n = inst.vocab()->size();
  s.by_pred_.resize(n);
  for (PredId p = 0; p < n; ++p) s.CountPred(inst, p);
  return s;
}

void Stats::Refresh(const Instance& inst, const std::vector<PredId>& preds) {
  for (PredId p : preds) CountPred(inst, p);
}

void Stats::Apply(const Instance& inst, std::span<const Fact> added) {
  Apply(inst, added, {});
}

void Stats::Apply(const Instance& inst, std::span<const uint32_t> added_gids) {
  MONDET_CHECK(counted_facts_ + added_gids.size() == inst.num_facts() &&
               "Stats::Apply: delta does not extend the counted instance");
  for (uint32_t g : added_gids) {
    const FactView f = inst.ViewAt(g);
    if (f.pred >= by_pred_.size()) by_pred_.resize(f.pred + 1);
    PredicateStats& ps = by_pred_[f.pred];
    EnsureMaps(ps);
    if (ps.distinct.size() < f.args.size()) {
      ps.distinct.resize(f.args.size(), 0);
      ps.value_counts.resize(f.args.size());
    }
    ++ps.cardinality;
    ++counted_facts_;
    for (size_t pos = 0; pos < f.args.size(); ++pos) {
      if (++ps.value_counts[pos][f.args[pos]] == 1) ++ps.distinct[pos];
    }
  }
}

void Stats::Apply(const Instance& inst, std::span<const Fact> added,
                  std::span<const Fact> removed) {
  // The contract check: this snapshot counted every fact of `inst` except
  // exactly the ones in `added`, plus exactly the ones in `removed`. A
  // delta from another instance, a partially-counted snapshot, a delta
  // containing already-counted facts, or a removal of a never-counted
  // fact all break the equation (Instance::AddFact / RemoveFact report
  // whether they changed the instance, which is what guarantees the
  // deltas hold genuinely applied mutations).
  MONDET_CHECK(counted_facts_ + added.size() ==
                   inst.num_facts() + removed.size() &&
               "Stats::Apply: delta does not extend the counted instance");
  for (const Fact& f : removed) {
    MONDET_CHECK(f.pred < by_pred_.size() &&
                 "Stats::Apply: removal of a never-counted predicate");
    PredicateStats& ps = by_pred_[f.pred];
    EnsureMaps(ps);
    MONDET_CHECK(ps.cardinality > 0 &&
                 "Stats::Apply: removal from an empty relation");
    MONDET_CHECK(f.args.size() <= ps.value_counts.size() &&
                 "Stats::Apply: removal wider than the counted relation");
    --ps.cardinality;
    --counted_facts_;
    for (size_t pos = 0; pos < f.args.size(); ++pos) {
      auto it = ps.value_counts[pos].find(f.args[pos]);
      MONDET_CHECK(it != ps.value_counts[pos].end() && it->second > 0 &&
                   "Stats::Apply: removal of a never-counted value");
      if (--it->second == 0) {
        ps.value_counts[pos].erase(it);
        --ps.distinct[pos];
      }
    }
  }
  for (const Fact& f : added) {
    if (f.pred >= by_pred_.size()) by_pred_.resize(f.pred + 1);
    PredicateStats& ps = by_pred_[f.pred];
    EnsureMaps(ps);
    if (ps.distinct.size() < f.args.size()) {
      ps.distinct.resize(f.args.size(), 0);
      ps.value_counts.resize(f.args.size());
    }
    ++ps.cardinality;
    ++counted_facts_;
    for (size_t pos = 0; pos < f.args.size(); ++pos) {
      if (++ps.value_counts[pos][f.args[pos]] == 1) ++ps.distinct[pos];
    }
  }
}

void Stats::CountPred(const Instance& inst, PredId p) {
  if (p >= by_pred_.size()) by_pred_.resize(p + 1);
  PredicateStats& ps = by_pred_[p];
  const uint32_t rows = inst.NumRows(p);
  const int arity = inst.vocab()->arity(p);
  counted_facts_ += rows - ps.cardinality;
  ps.cardinality = rows;
  ps.distinct.assign(arity, 0);
  ps.value_counts.assign(arity, {});
  ps.sorted_vals.assign(arity, {});
  ps.maps_built = rows == 0;
  if (rows == 0) return;
  // Sort each column and count runs for the distinct counts the planner
  // reads. The per-value multiplicity maps are NOT built here: the sorted
  // snapshot is kept instead, and EnsureMaps turns it into maps only if a
  // delta ever lands on this predicate (see PredicateStats::sorted_vals).
  const std::span<const ElemId> flat = inst.FlatArgs(p);
  for (int pos = 0; pos < arity; ++pos) {
    std::vector<ElemId>& vals = ps.sorted_vals[pos];
    vals.reserve(rows);
    for (uint32_t row = 0; row < rows; ++row) {
      vals.push_back(flat[static_cast<size_t>(row) * arity + pos]);
    }
    std::sort(vals.begin(), vals.end());
    size_t runs = 0;
    for (size_t i = 0; i < vals.size();) {
      size_t j = i + 1;
      while (j < vals.size() && vals[j] == vals[i]) ++j;
      ++runs;
      i = j;
    }
    ps.distinct[pos] = runs;
  }
}

void Stats::EnsureMaps(PredicateStats& ps) {
  if (ps.maps_built) return;
  for (size_t pos = 0; pos < ps.sorted_vals.size(); ++pos) {
    const std::vector<ElemId>& vals = ps.sorted_vals[pos];
    auto& counts = ps.value_counts[pos];
    counts.reserve(ps.distinct[pos]);
    for (size_t i = 0; i < vals.size();) {
      size_t j = i + 1;
      while (j < vals.size() && vals[j] == vals[i]) ++j;
      counts.emplace(vals[i], static_cast<uint32_t>(j - i));
      i = j;
    }
  }
  ps.sorted_vals.clear();
  ps.sorted_vals.shrink_to_fit();
  ps.maps_built = true;
}

void Stats::Observe(PredId p, double estimated, double actual) {
  if (!(estimated > 0.0) || actual < 0.0) return;
  if (p >= by_pred_.size()) by_pred_.resize(p + 1);
  double ratio = ClampCorrection(actual / estimated);
  PredicateStats& ps = by_pred_[p];
  // Square-root damping: the factor moves half the observed error in log
  // space, so alternating over/under observations settle instead of
  // oscillating.
  ps.correction = ClampCorrection(ps.correction * std::sqrt(ratio));
}

void Stats::Observe(PredId p, const std::vector<bool>& bound_pos,
                    double estimated, double actual) {
  if (!(estimated > 0.0) || actual < 0.0) return;
  size_t k = 0;
  for (bool b : bound_pos) k += b ? 1 : 0;
  if (k == 0) {
    // A full scan: no position to blame, fold into the scalar factor.
    Observe(p, estimated, actual);
    return;
  }
  if (p >= by_pred_.size()) by_pred_.resize(p + 1);
  PredicateStats& ps = by_pred_[p];
  if (ps.pos_correction.size() < bound_pos.size()) {
    ps.pos_correction.resize(bound_pos.size(), 1.0);
  }
  const double ratio = ClampCorrection(actual / estimated);
  // Split the sqrt-damped error evenly over the bound positions in log
  // space: the product of the k per-position nudges is sqrt(ratio), the
  // same total correction the scalar overload would have applied.
  const double nudge = std::pow(ratio, 1.0 / (2.0 * static_cast<double>(k)));
  for (size_t pos = 0; pos < bound_pos.size(); ++pos) {
    if (!bound_pos[pos]) continue;
    ps.pos_correction[pos] = ClampCorrection(ps.pos_correction[pos] * nudge);
  }
}

size_t Stats::ActiveCorrections() const {
  size_t n = 0;
  for (const PredicateStats& ps : by_pred_) {
    bool active = ps.correction != 1.0;
    for (double c : ps.pos_correction) active = active || c != 1.0;
    if (active) ++n;
  }
  return n;
}

void Stats::ImportCorrections(const Stats& from) {
  if (by_pred_.size() < from.by_pred_.size()) {
    by_pred_.resize(from.by_pred_.size());
  }
  for (size_t p = 0; p < from.by_pred_.size(); ++p) {
    by_pred_[p].correction = from.by_pred_[p].correction;
    by_pred_[p].pos_correction = from.by_pred_[p].pos_correction;
  }
}

double Stats::EstimateMatches(PredId p,
                              const std::vector<bool>& bound_pos) const {
  if (p >= by_pred_.size()) return 0.0;
  const PredicateStats& ps = by_pred_[p];
  if (ps.cardinality == 0) return 0.0;
  double est = static_cast<double>(ps.cardinality);
  const size_t n = std::min(bound_pos.size(), ps.distinct.size());
  for (size_t i = 0; i < n; ++i) {
    if (bound_pos[i]) {
      est /= static_cast<double>(std::max<size_t>(1, ps.distinct[i]));
      if (i < ps.pos_correction.size()) est *= ps.pos_correction[i];
    }
  }
  return est * ps.correction;
}

double Stats::EstimateMatches(PredId p, const std::vector<ElemId>& args,
                              const std::vector<bool>& bound_var) const {
  if (p >= by_pred_.size()) return 0.0;
  const PredicateStats& ps = by_pred_[p];
  if (ps.cardinality == 0) return 0.0;
  double est = static_cast<double>(ps.cardinality);
  const size_t n = std::min(args.size(), ps.distinct.size());
  for (size_t i = 0; i < n; ++i) {
    if (args[i] < bound_var.size() && bound_var[args[i]]) {
      est /= static_cast<double>(std::max<size_t>(1, ps.distinct[i]));
      if (i < ps.pos_correction.size()) est *= ps.pos_correction[i];
    }
  }
  return est * ps.correction;
}

}  // namespace mondet
