#include "base/stats.h"

#include <algorithm>
#include <cmath>

#include "base/check.h"

namespace mondet {

namespace {

constexpr double kCorrectionMin = 1.0 / 16.0;
constexpr double kCorrectionMax = 16.0;

double ClampCorrection(double v) {
  return std::min(kCorrectionMax, std::max(kCorrectionMin, v));
}

}  // namespace

Stats Stats::Collect(const Instance& inst) {
  Stats s;
  const size_t n = inst.vocab()->size();
  s.by_pred_.resize(n);
  for (PredId p = 0; p < n; ++p) s.CountPred(inst, p);
  return s;
}

void Stats::Refresh(const Instance& inst, const std::vector<PredId>& preds) {
  for (PredId p : preds) CountPred(inst, p);
}

void Stats::Apply(const Instance& inst, std::span<const Fact> added) {
  Apply(inst, added, {});
}

void Stats::Apply(const Instance& inst, std::span<const Fact> added,
                  std::span<const Fact> removed) {
  // The contract check: this snapshot counted every fact of `inst` except
  // exactly the ones in `added`, plus exactly the ones in `removed`. A
  // delta from another instance, a partially-counted snapshot, a delta
  // containing already-counted facts, or a removal of a never-counted
  // fact all break the equation (Instance::AddFact / RemoveFact report
  // whether they changed the instance, which is what guarantees the
  // deltas hold genuinely applied mutations).
  MONDET_CHECK(counted_facts_ + added.size() ==
                   inst.num_facts() + removed.size() &&
               "Stats::Apply: delta does not extend the counted instance");
  for (const Fact& f : removed) {
    MONDET_CHECK(f.pred < by_pred_.size() &&
                 "Stats::Apply: removal of a never-counted predicate");
    PredicateStats& ps = by_pred_[f.pred];
    MONDET_CHECK(ps.cardinality > 0 &&
                 "Stats::Apply: removal from an empty relation");
    MONDET_CHECK(f.args.size() <= ps.value_counts.size() &&
                 "Stats::Apply: removal wider than the counted relation");
    --ps.cardinality;
    --counted_facts_;
    for (size_t pos = 0; pos < f.args.size(); ++pos) {
      auto it = ps.value_counts[pos].find(f.args[pos]);
      MONDET_CHECK(it != ps.value_counts[pos].end() && it->second > 0 &&
                   "Stats::Apply: removal of a never-counted value");
      if (--it->second == 0) {
        ps.value_counts[pos].erase(it);
        --ps.distinct[pos];
      }
    }
  }
  for (const Fact& f : added) {
    if (f.pred >= by_pred_.size()) by_pred_.resize(f.pred + 1);
    PredicateStats& ps = by_pred_[f.pred];
    if (ps.distinct.size() < f.args.size()) {
      ps.distinct.resize(f.args.size(), 0);
      ps.value_counts.resize(f.args.size());
    }
    ++ps.cardinality;
    ++counted_facts_;
    for (size_t pos = 0; pos < f.args.size(); ++pos) {
      if (++ps.value_counts[pos][f.args[pos]] == 1) ++ps.distinct[pos];
    }
  }
}

void Stats::CountPred(const Instance& inst, PredId p) {
  if (p >= by_pred_.size()) by_pred_.resize(p + 1);
  PredicateStats& ps = by_pred_[p];
  const std::vector<uint32_t>& rows = inst.FactsWith(p);
  const int arity = inst.vocab()->arity(p);
  counted_facts_ += rows.size() - ps.cardinality;
  ps.cardinality = rows.size();
  ps.distinct.assign(arity, 0);
  ps.value_counts.assign(arity, {});
  if (rows.empty()) return;
  // Sort, then turn the runs into (value, multiplicity) entries: the sort
  // beats a per-row hash insert on the short columns this sees, and the
  // map — the state Apply maintains incrementally — costs only
  // O(distinct) insertions this way.
  std::vector<ElemId> vals;
  vals.reserve(rows.size());
  for (int pos = 0; pos < arity; ++pos) {
    vals.clear();
    for (uint32_t fi : rows) vals.push_back(inst.facts()[fi].args[pos]);
    std::sort(vals.begin(), vals.end());
    auto& counts = ps.value_counts[pos];
    for (size_t i = 0; i < vals.size();) {
      size_t j = i + 1;
      while (j < vals.size() && vals[j] == vals[i]) ++j;
      counts.emplace(vals[i], static_cast<uint32_t>(j - i));
      i = j;
    }
    ps.distinct[pos] = counts.size();
  }
}

void Stats::Observe(PredId p, double estimated, double actual) {
  if (!(estimated > 0.0) || actual < 0.0) return;
  if (p >= by_pred_.size()) by_pred_.resize(p + 1);
  double ratio = ClampCorrection(actual / estimated);
  PredicateStats& ps = by_pred_[p];
  // Square-root damping: the factor moves half the observed error in log
  // space, so alternating over/under observations settle instead of
  // oscillating.
  ps.correction = ClampCorrection(ps.correction * std::sqrt(ratio));
}

size_t Stats::ActiveCorrections() const {
  size_t n = 0;
  for (const PredicateStats& ps : by_pred_) {
    if (ps.correction != 1.0) ++n;
  }
  return n;
}

void Stats::ImportCorrections(const Stats& from) {
  if (by_pred_.size() < from.by_pred_.size()) {
    by_pred_.resize(from.by_pred_.size());
  }
  for (size_t p = 0; p < from.by_pred_.size(); ++p) {
    by_pred_[p].correction = from.by_pred_[p].correction;
  }
}

double Stats::EstimateMatches(PredId p,
                              const std::vector<bool>& bound_pos) const {
  if (p >= by_pred_.size()) return 0.0;
  const PredicateStats& ps = by_pred_[p];
  if (ps.cardinality == 0) return 0.0;
  double est = static_cast<double>(ps.cardinality);
  const size_t n = std::min(bound_pos.size(), ps.distinct.size());
  for (size_t i = 0; i < n; ++i) {
    if (bound_pos[i]) {
      est /= static_cast<double>(std::max<size_t>(1, ps.distinct[i]));
    }
  }
  return est * ps.correction;
}

double Stats::EstimateMatches(PredId p, const std::vector<ElemId>& args,
                              const std::vector<bool>& bound_var) const {
  if (p >= by_pred_.size()) return 0.0;
  const PredicateStats& ps = by_pred_[p];
  if (ps.cardinality == 0) return 0.0;
  double est = static_cast<double>(ps.cardinality);
  const size_t n = std::min(args.size(), ps.distinct.size());
  for (size_t i = 0; i < n; ++i) {
    if (args[i] < bound_var.size() && bound_var[args[i]]) {
      est /= static_cast<double>(std::max<size_t>(1, ps.distinct[i]));
    }
  }
  return est * ps.correction;
}

}  // namespace mondet
