#include "base/stats.h"

#include <algorithm>

namespace mondet {

Stats Stats::Collect(const Instance& inst) {
  Stats s;
  const size_t n = inst.vocab()->size();
  s.by_pred_.resize(n);
  for (PredId p = 0; p < n; ++p) s.CountPred(inst, p);
  return s;
}

void Stats::Refresh(const Instance& inst, const std::vector<PredId>& preds) {
  for (PredId p : preds) CountPred(inst, p);
}

void Stats::CountPred(const Instance& inst, PredId p) {
  if (p >= by_pred_.size()) by_pred_.resize(p + 1);
  PredicateStats& ps = by_pred_[p];
  const std::vector<uint32_t>& rows = inst.FactsWith(p);
  const int arity = inst.vocab()->arity(p);
  ps.cardinality = rows.size();
  ps.distinct.assign(arity, 0);
  if (rows.empty()) return;
  // Sort + unique beats a hash set by a wide margin on the short columns
  // this sees (a fixpoint run recounts predicates every stratum).
  std::vector<ElemId> vals;
  vals.reserve(rows.size());
  for (int pos = 0; pos < arity; ++pos) {
    vals.clear();
    for (uint32_t fi : rows) vals.push_back(inst.facts()[fi].args[pos]);
    std::sort(vals.begin(), vals.end());
    ps.distinct[pos] = static_cast<size_t>(
        std::unique(vals.begin(), vals.end()) - vals.begin());
  }
}

double Stats::EstimateMatches(PredId p,
                              const std::vector<bool>& bound_pos) const {
  if (p >= by_pred_.size()) return 0.0;
  const PredicateStats& ps = by_pred_[p];
  if (ps.cardinality == 0) return 0.0;
  double est = static_cast<double>(ps.cardinality);
  const size_t n = std::min(bound_pos.size(), ps.distinct.size());
  for (size_t i = 0; i < n; ++i) {
    if (bound_pos[i]) {
      est /= static_cast<double>(std::max<size_t>(1, ps.distinct[i]));
    }
  }
  return est;
}

double Stats::EstimateMatches(PredId p, const std::vector<ElemId>& args,
                              const std::vector<bool>& bound_var) const {
  if (p >= by_pred_.size()) return 0.0;
  const PredicateStats& ps = by_pred_[p];
  if (ps.cardinality == 0) return 0.0;
  double est = static_cast<double>(ps.cardinality);
  const size_t n = std::min(args.size(), ps.distinct.size());
  for (size_t i = 0; i < n; ++i) {
    if (args[i] < bound_var.size() && bound_var[args[i]]) {
      est /= static_cast<double>(std::max<size_t>(1, ps.distinct[i]));
    }
  }
  return est;
}

}  // namespace mondet
