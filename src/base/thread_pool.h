#ifndef MONDET_BASE_THREAD_POOL_H_
#define MONDET_BASE_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace mondet {

/// A work-stealing thread pool shared by the parallel fan-outs of the
/// system (the semi-naive evaluator's per-round rule items, the
/// monotonic-determinacy checker's D'-test pipeline). Threads are spawned
/// once and parked between jobs, so a caller that fans out thousands of
/// small batches — the checker runs one batch per expansion block — pays
/// no thread-creation cost per batch.
///
/// Scheduling model: ParallelFor(n, w, fn) splits [0, n) into w contiguous
/// shards, one per participating worker (the calling thread is always
/// worker 0). Each shard's items are claimed through an atomic cursor; a
/// worker that drains its own shard steals single items from the fullest
/// remaining shard. Every item therefore runs exactly once, on exactly one
/// worker, and callers that write results into per-item slots get
/// deterministic output regardless of how the items were interleaved.
///
/// Nesting: a ParallelFor issued from inside a pool worker runs inline on
/// that worker (no new fan-out), so nested parallel code cannot deadlock
/// the pool or oversubscribe the machine.
class ThreadPool {
 public:
  /// Spawns `num_threads` persistent worker threads (in addition to any
  /// caller that participates). 0 threads is valid: ParallelFor then runs
  /// everything inline on the caller.
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(threads_.size()); }

  /// Runs fn(item, worker) for every item in [0, n), on up to
  /// `max_workers` workers (the caller plus at most max_workers - 1 pool
  /// threads); blocks until every item has finished. `worker` is a dense
  /// id in [0, max_workers) identifying which scratch slot the item may
  /// use; the same worker id is never active on two threads at once.
  void ParallelFor(size_t n, int max_workers,
                   const std::function<void(size_t item, int worker)>& fn);

  /// The process-wide shared pool, sized on first use to
  /// hardware_concurrency() - 1 threads (the caller is the remaining
  /// worker). Never destroyed: the threads live for the process.
  static ThreadPool& Shared();

 private:
  struct Job;

  void WorkerLoop();
  /// Participates in `job` as the given worker id until no more items can
  /// be claimed; returns when the worker's contribution is done.
  static void RunShards(Job& job, int worker);

  std::mutex mu_;
  std::condition_variable wake_;
  std::vector<std::shared_ptr<Job>> jobs_;  // active jobs, FIFO
  bool stop_ = false;
  std::vector<std::thread> threads_;
};

}  // namespace mondet

#endif  // MONDET_BASE_THREAD_POOL_H_
