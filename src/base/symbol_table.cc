#include "base/symbol_table.h"

#include "base/check.h"

namespace mondet {

PredId Vocabulary::AddPredicate(const std::string& name, int arity) {
  auto it = by_name_.find(name);
  if (it != by_name_.end()) {
    MONDET_CHECK(arities_[it->second] == arity);
    return it->second;
  }
  PredId id = static_cast<PredId>(names_.size());
  names_.push_back(name);
  arities_.push_back(arity);
  by_name_.emplace(name, id);
  return id;
}

std::optional<PredId> Vocabulary::FindPredicate(const std::string& name) const {
  auto it = by_name_.find(name);
  if (it == by_name_.end()) return std::nullopt;
  return it->second;
}

std::vector<PredId> Vocabulary::AllPredicates() const {
  std::vector<PredId> out;
  out.reserve(names_.size());
  for (PredId p = 0; p < names_.size(); ++p) out.push_back(p);
  return out;
}

}  // namespace mondet
