#include "cq/cq.h"

#include <sstream>

#include "base/check.h"
#include "base/gaifman.h"
#include "base/homomorphism.h"

namespace mondet {

VarId CQ::AddVar(std::string name) {
  VarId id = static_cast<VarId>(var_names_.size());
  if (name.empty()) name = "v" + std::to_string(id);
  var_names_.push_back(std::move(name));
  return id;
}

void CQ::AddAtom(PredId pred, const std::vector<VarId>& args) {
  MONDET_CHECK(pred < vocab_->size());
  MONDET_CHECK(static_cast<int>(args.size()) == vocab_->arity(pred));
  for (VarId v : args) MONDET_CHECK(v < var_names_.size());
  atoms_.emplace_back(pred, args);
}

void CQ::SetFreeVars(std::vector<VarId> free_vars) {
  for (VarId v : free_vars) MONDET_CHECK(v < var_names_.size());
  free_vars_ = std::move(free_vars);
}

Instance CQ::CanonicalDb() const {
  Instance inst(vocab_);
  for (size_t v = 0; v < var_names_.size(); ++v) {
    inst.AddElement(var_names_[v]);
  }
  for (const QAtom& a : atoms_) {
    std::vector<ElemId> args(a.args.begin(), a.args.end());
    inst.AddFact(a.pred, args);
  }
  return inst;
}

std::set<std::vector<ElemId>> CQ::Evaluate(const Instance& inst) const {
  std::set<std::vector<ElemId>> out;
  if (atoms_.empty()) {
    // Trivially true Boolean query; for arity > 0 there is nothing safe to
    // range over, so we only support the Boolean case.
    MONDET_CHECK(free_vars_.empty());
    out.insert({});
    return out;
  }
  Instance canon = CanonicalDb();
  HomSearch search(canon, inst);
  search.ForEach({}, [&](const std::vector<ElemId>& map) {
    std::vector<ElemId> tuple;
    tuple.reserve(free_vars_.size());
    for (VarId v : free_vars_) tuple.push_back(map[v]);
    out.insert(std::move(tuple));
    return true;
  });
  return out;
}

bool CQ::HoldsOn(const Instance& inst) const {
  if (atoms_.empty()) return true;
  Instance canon = CanonicalDb();
  return HomSearch(canon, inst).Exists();
}

bool CQ::HoldsOn(const Instance& inst,
                 const std::vector<ElemId>& tuple) const {
  MONDET_CHECK(tuple.size() == free_vars_.size());
  if (atoms_.empty()) return true;
  Instance canon = CanonicalDb();
  HomSearch::Fixed fixed;
  for (size_t i = 0; i < tuple.size(); ++i) {
    fixed.emplace_back(free_vars_[i], tuple[i]);
  }
  return HomSearch(canon, inst).Exists(fixed);
}

int CQ::Radius() const {
  Instance canon = CanonicalDb();
  return GaifmanGraph(canon).Radius();
}

bool CQ::IsConnected() const {
  Instance canon = CanonicalDb();
  return GaifmanGraph(canon).IsConnected();
}

std::string CQ::DebugString(const std::string& head_name) const {
  std::ostringstream os;
  os << head_name << "(";
  for (size_t i = 0; i < free_vars_.size(); ++i) {
    if (i) os << ",";
    os << var_names_[free_vars_[i]];
  }
  os << ") :- ";
  if (atoms_.empty()) os << "true";
  for (size_t i = 0; i < atoms_.size(); ++i) {
    if (i) os << ", ";
    os << vocab_->name(atoms_[i].pred) << "(";
    for (size_t j = 0; j < atoms_[i].args.size(); ++j) {
      if (j) os << ",";
      os << var_names_[atoms_[i].args[j]];
    }
    os << ")";
  }
  return os.str();
}

}  // namespace mondet
