#ifndef MONDET_CQ_CQ_H_
#define MONDET_CQ_CQ_H_

#include <optional>
#include <set>
#include <string>
#include <vector>

#include "base/instance.h"
#include "base/symbol_table.h"

namespace mondet {

/// An atom R(x1..xn) over variables, used in CQ bodies and Datalog rules.
struct QAtom {
  PredId pred = kNoPred;
  std::vector<VarId> args;

  QAtom() = default;
  QAtom(PredId p, std::vector<VarId> a) : pred(p), args(std::move(a)) {}

  bool operator==(const QAtom& o) const {
    return pred == o.pred && args == o.args;
  }
};

/// A conjunctive query q(x) = ∃y φ(x,y): a set of atoms with an ordered
/// tuple of free variables (Sec. 2). Constants are not supported (the paper
/// uses none); every free variable must occur in some atom unless the CQ is
/// the trivial Boolean query with an empty body.
class CQ {
 public:
  explicit CQ(VocabularyPtr vocab) : vocab_(std::move(vocab)) {}

  const VocabularyPtr& vocab() const { return vocab_; }

  /// Creates a fresh variable (optionally named) and returns its id.
  VarId AddVar(std::string name = "");

  size_t num_vars() const { return var_names_.size(); }
  const std::string& var_name(VarId v) const { return var_names_[v]; }

  /// Appends an atom; arity must match the predicate.
  void AddAtom(PredId pred, const std::vector<VarId>& args);
  void AddAtom(const QAtom& a) { AddAtom(a.pred, a.args); }

  /// Sets the ordered tuple of free (answer) variables.
  void SetFreeVars(std::vector<VarId> free_vars);

  const std::vector<QAtom>& atoms() const { return atoms_; }
  const std::vector<VarId>& free_vars() const { return free_vars_; }
  int arity() const { return static_cast<int>(free_vars_.size()); }

  /// The canonical database Canondb(Q): one element per variable, one fact
  /// per atom. Element i corresponds to variable i.
  Instance CanonicalDb() const;

  /// Output(Q, I): the set of answer tuples.
  std::set<std::vector<ElemId>> Evaluate(const Instance& inst) const;

  /// True if the Boolean query (ignoring free vars) holds on `inst`.
  bool HoldsOn(const Instance& inst) const;

  /// True if the given answer tuple is in Output(Q, inst).
  bool HoldsOn(const Instance& inst, const std::vector<ElemId>& tuple) const;

  /// Radius of the Gaifman graph of the canonical database; -1 when
  /// disconnected (Sec. 2).
  int Radius() const;

  /// True when the canonical database is connected.
  bool IsConnected() const;

  /// Human-readable rendering, e.g. "Q(x) :- R(x,y), S(y)".
  std::string DebugString(const std::string& head_name = "Q") const;

 private:
  VocabularyPtr vocab_;
  std::vector<std::string> var_names_;
  std::vector<QAtom> atoms_;
  std::vector<VarId> free_vars_;
};

}  // namespace mondet

#endif  // MONDET_CQ_CQ_H_
