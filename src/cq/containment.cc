#include "cq/containment.h"

#include <unordered_set>

#include "base/check.h"
#include "base/homomorphism.h"

namespace mondet {

bool CqContained(const CQ& q1, const CQ& q2) {
  MONDET_CHECK(q1.vocab().get() == q2.vocab().get());
  MONDET_CHECK(q1.arity() == q2.arity());
  if (q2.atoms().empty()) return true;  // q2 trivially true (Boolean)
  if (q1.atoms().empty()) {
    // q1 is trivially true; containment would require q2 to hold on the
    // empty instance, which a nonempty-body CQ never does.
    return false;
  }
  Instance canon1 = q1.CanonicalDb();
  Instance canon2 = q2.CanonicalDb();
  HomSearch::Fixed fixed;
  for (size_t i = 0; i < q2.free_vars().size(); ++i) {
    fixed.emplace_back(q2.free_vars()[i], q1.free_vars()[i]);
  }
  return HomSearch(canon2, canon1).Exists(fixed);
}

bool CqEquivalent(const CQ& q1, const CQ& q2) {
  return CqContained(q1, q2) && CqContained(q2, q1);
}

bool UcqContained(const UCQ& q1, const UCQ& q2) {
  for (const CQ& d1 : q1.disjuncts()) {
    bool covered = false;
    for (const CQ& d2 : q2.disjuncts()) {
      if (CqContained(d1, d2)) {
        covered = true;
        break;
      }
    }
    if (!covered) return false;
  }
  return true;
}

bool UcqEquivalent(const UCQ& q1, const UCQ& q2) {
  return UcqContained(q1, q2) && UcqContained(q2, q1);
}

CQ CqCore(const CQ& q) {
  if (q.atoms().empty()) return q;
  Instance canon = q.CanonicalDb();
  size_t n = canon.num_elements();
  // Current retraction, as an element map (initially the identity).
  std::vector<ElemId> retract(n);
  for (ElemId e = 0; e < n; ++e) retract[e] = e;

  bool changed = true;
  while (changed) {
    changed = false;
    // Build the current image instance.
    Instance image(q.vocab());
    image.EnsureElements(n);
    std::unordered_set<ElemId> live;
    for (uint32_t fg = 0; fg < canon.num_facts(); ++fg) {
      const FactView f = canon.ViewAt(fg);
      std::vector<ElemId> args;
      for (ElemId a : f.args) args.push_back(retract[a]);
      image.AddFact(f.pred, args);
      for (ElemId a : args) live.insert(a);
    }
    HomSearch search(image, image);
    HomSearch::Fixed fixed;
    for (VarId v : q.free_vars()) fixed.emplace_back(retract[v], retract[v]);
    search.ForEach(fixed, [&](const std::vector<ElemId>& h) {
      std::unordered_set<ElemId> img;
      for (ElemId e : live) img.insert(h[e]);
      if (img.size() < live.size()) {
        for (ElemId e = 0; e < n; ++e) retract[e] = h[retract[e]];
        changed = true;
        return false;  // restart with the smaller image
      }
      return true;
    });
  }

  // Rebuild a CQ over the surviving elements.
  CQ core(q.vocab());
  std::vector<VarId> new_var(n, kNoElem);
  std::unordered_set<std::string> seen_atoms;
  auto var_of = [&](ElemId e) {
    if (new_var[e] == kNoElem) new_var[e] = core.AddVar(q.var_name(e));
    return new_var[e];
  };
  for (uint32_t fg = 0; fg < canon.num_facts(); ++fg) {
    const FactView f = canon.ViewAt(fg);
    std::vector<VarId> args;
    std::string key = std::to_string(f.pred);
    for (ElemId a : f.args) {
      VarId v = var_of(retract[a]);
      args.push_back(v);
      key += "," + std::to_string(v);
    }
    if (seen_atoms.insert(key).second) core.AddAtom(f.pred, args);
  }
  std::vector<VarId> frees;
  for (VarId v : q.free_vars()) frees.push_back(var_of(retract[v]));
  core.SetFreeVars(frees);
  return core;
}

}  // namespace mondet
