#ifndef MONDET_CQ_CONTAINMENT_H_
#define MONDET_CQ_CONTAINMENT_H_

#include "cq/cq.h"
#include "cq/ucq.h"

namespace mondet {

/// Q1 ⊑ Q2: every output tuple of Q1 is an output of Q2 on every instance.
/// Decided by the Chandra–Merlin criterion: a homomorphism from
/// Canondb(Q2) into Canondb(Q1) mapping the i-th free variable of Q2 to the
/// i-th free variable of Q1.
bool CqContained(const CQ& q1, const CQ& q2);

/// CQ equivalence (containment both ways).
bool CqEquivalent(const CQ& q1, const CQ& q2);

/// UCQ containment (Sagiv–Yannakakis): Q1 ⊑ Q2 iff every disjunct of Q1 is
/// contained in some disjunct of Q2.
bool UcqContained(const UCQ& q1, const UCQ& q2);

bool UcqEquivalent(const UCQ& q1, const UCQ& q2);

/// The core of a CQ: a minimal equivalent subquery, computed by greedily
/// folding the canonical database into itself. Free variables are kept
/// fixed. Used to normalize gadget outputs and speed up containment tests.
CQ CqCore(const CQ& q);

}  // namespace mondet

#endif  // MONDET_CQ_CONTAINMENT_H_
