#ifndef MONDET_CQ_UCQ_H_
#define MONDET_CQ_UCQ_H_

#include <set>
#include <string>
#include <vector>

#include "cq/cq.h"

namespace mondet {

/// A union of conjunctive queries. All disjuncts share one arity.
class UCQ {
 public:
  explicit UCQ(VocabularyPtr vocab) : vocab_(std::move(vocab)) {}

  const VocabularyPtr& vocab() const { return vocab_; }

  /// Appends a disjunct; its arity must match previously-added ones.
  void AddDisjunct(CQ cq);

  const std::vector<CQ>& disjuncts() const { return disjuncts_; }
  int arity() const;
  bool empty() const { return disjuncts_.empty(); }

  /// Output(Q, I): union of disjunct outputs.
  std::set<std::vector<ElemId>> Evaluate(const Instance& inst) const;
  bool HoldsOn(const Instance& inst) const;
  bool HoldsOn(const Instance& inst, const std::vector<ElemId>& tuple) const;

  std::string DebugString(const std::string& head_name = "Q") const;

 private:
  VocabularyPtr vocab_;
  std::vector<CQ> disjuncts_;
};

}  // namespace mondet

#endif  // MONDET_CQ_UCQ_H_
