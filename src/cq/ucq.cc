#include "cq/ucq.h"

#include <sstream>

#include "base/check.h"

namespace mondet {

void UCQ::AddDisjunct(CQ cq) {
  MONDET_CHECK(cq.vocab().get() == vocab_.get());
  if (!disjuncts_.empty()) {
    MONDET_CHECK(cq.arity() == disjuncts_.front().arity());
  }
  disjuncts_.push_back(std::move(cq));
}

int UCQ::arity() const {
  return disjuncts_.empty() ? 0 : disjuncts_.front().arity();
}

std::set<std::vector<ElemId>> UCQ::Evaluate(const Instance& inst) const {
  std::set<std::vector<ElemId>> out;
  for (const CQ& cq : disjuncts_) {
    auto part = cq.Evaluate(inst);
    out.insert(part.begin(), part.end());
  }
  return out;
}

bool UCQ::HoldsOn(const Instance& inst) const {
  for (const CQ& cq : disjuncts_) {
    if (cq.HoldsOn(inst)) return true;
  }
  return false;
}

bool UCQ::HoldsOn(const Instance& inst,
                  const std::vector<ElemId>& tuple) const {
  for (const CQ& cq : disjuncts_) {
    if (cq.HoldsOn(inst, tuple)) return true;
  }
  return false;
}

std::string UCQ::DebugString(const std::string& head_name) const {
  std::ostringstream os;
  for (size_t i = 0; i < disjuncts_.size(); ++i) {
    if (i) os << "\n";
    os << disjuncts_[i].DebugString(head_name);
  }
  return os.str();
}

}  // namespace mondet
