#ifndef MONDET_TREE_DECOMPOSITION_H_
#define MONDET_TREE_DECOMPOSITION_H_

#include <vector>

#include "base/instance.h"

namespace mondet {

/// A rooted tree decomposition TD = (τ, λ) of an instance (Sec. 3). Bags
/// are tuples of distinct elements; node 0 is the root. Following the
/// paper's convention, the *width* of a decomposition is the maximum bag
/// size k (not k-1).
struct TreeDecomposition {
  struct Node {
    std::vector<ElemId> bag;
    std::vector<int> children;
    int parent = -1;
  };

  std::vector<Node> nodes;

  int width() const;

  /// l(TD): the maximum, over elements, of the number of bags containing
  /// the element.
  int MaxBagsPerElement() const;

  /// Checks the two tree-decomposition conditions against `inst`:
  /// every fact's elements lie in one bag, and each element's bags form a
  /// connected subtree. Also checks bag elements are distinct.
  bool Validate(const Instance& inst) const;

  /// Maximum node outdegree.
  int MaxOutdegree() const;
};

/// Rewrites the decomposition so every node has outdegree <= 2 by chaining
/// copies of over-full nodes (the paper notes this is always possible
/// without increasing the width).
TreeDecomposition Binarize(const TreeDecomposition& td);

/// The r-extension of a decomposition (proof of Lemma 3): each bag b is
/// replaced by ext(b, r), where ext(b, 0) = b and ext(b, n) adds every
/// element sharing a bag with ext(b, n-1). The result decomposes any
/// instance whose facts connect elements within distance r of a bag.
TreeDecomposition ExtendDecomposition(const TreeDecomposition& td, int r);

}  // namespace mondet

#endif  // MONDET_TREE_DECOMPOSITION_H_
