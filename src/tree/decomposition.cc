#include "tree/decomposition.h"

#include <algorithm>
#include <deque>
#include <functional>
#include <map>
#include <set>

#include "base/check.h"

namespace mondet {

int TreeDecomposition::width() const {
  int w = 0;
  for (const Node& n : nodes) w = std::max(w, static_cast<int>(n.bag.size()));
  return w;
}

int TreeDecomposition::MaxBagsPerElement() const {
  std::map<ElemId, int> count;
  for (const Node& n : nodes) {
    for (ElemId e : n.bag) count[e]++;
  }
  int l = 0;
  for (const auto& [e, c] : count) {
    (void)e;
    l = std::max(l, c);
  }
  return l;
}

int TreeDecomposition::MaxOutdegree() const {
  int d = 0;
  for (const Node& n : nodes) {
    d = std::max(d, static_cast<int>(n.children.size()));
  }
  return d;
}

bool TreeDecomposition::Validate(const Instance& inst) const {
  // Bags have distinct elements.
  for (const Node& n : nodes) {
    std::set<ElemId> s(n.bag.begin(), n.bag.end());
    if (s.size() != n.bag.size()) return false;
  }
  // Every fact is covered by some bag.
  for (uint32_t fg = 0; fg < inst.num_facts(); ++fg) {
    const FactView f = inst.ViewAt(fg);
    bool covered = false;
    for (const Node& n : nodes) {
      std::set<ElemId> s(n.bag.begin(), n.bag.end());
      bool all = true;
      for (ElemId e : f.args) all = all && s.count(e) > 0;
      if (all) {
        covered = true;
        break;
      }
    }
    if (!covered) return false;
  }
  // Connectivity: for each element, the nodes containing it form a subtree.
  std::map<ElemId, std::vector<int>> occ;
  for (size_t i = 0; i < nodes.size(); ++i) {
    for (ElemId e : nodes[i].bag) occ[e].push_back(static_cast<int>(i));
  }
  for (const auto& [e, where] : occ) {
    (void)e;
    std::set<int> member(where.begin(), where.end());
    // BFS within member nodes from where[0]; all must be reached.
    std::set<int> seen{where[0]};
    std::deque<int> queue{where[0]};
    while (!queue.empty()) {
      int u = queue.front();
      queue.pop_front();
      std::vector<int> nbrs = nodes[u].children;
      if (nodes[u].parent >= 0) nbrs.push_back(nodes[u].parent);
      for (int v : nbrs) {
        if (member.count(v) && !seen.count(v)) {
          seen.insert(v);
          queue.push_back(v);
        }
      }
    }
    if (seen.size() != member.size()) return false;
  }
  return true;
}

TreeDecomposition Binarize(const TreeDecomposition& td) {
  TreeDecomposition out;
  // Recursively copy, chaining children beyond the second through duplicate
  // bags.
  std::function<int(int, int)> copy = [&](int src, int parent) -> int {
    int id = static_cast<int>(out.nodes.size());
    out.nodes.push_back({td.nodes[src].bag, {}, parent});
    const auto& kids = td.nodes[src].children;
    int attach = id;
    for (size_t i = 0; i < kids.size(); ++i) {
      if (out.nodes[attach].children.size() == 2 ||
          (out.nodes[attach].children.size() == 1 && i + 1 < kids.size())) {
        // Insert a duplicate bag to continue the chain.
        int dup = static_cast<int>(out.nodes.size());
        out.nodes.push_back({td.nodes[src].bag, {}, attach});
        out.nodes[attach].children.push_back(dup);
        attach = dup;
      }
      int child = copy(kids[i], attach);
      out.nodes[attach].children.push_back(child);
    }
    return id;
  };
  if (!td.nodes.empty()) copy(0, -1);
  return out;
}

TreeDecomposition ExtendDecomposition(const TreeDecomposition& td, int r) {
  // adjacency of bags (tree edges) and element -> bags map.
  size_t n = td.nodes.size();
  std::map<ElemId, std::vector<int>> occ;
  for (size_t i = 0; i < n; ++i) {
    for (ElemId e : td.nodes[i].bag) occ[e].push_back(static_cast<int>(i));
  }
  TreeDecomposition out;
  out.nodes.resize(n);
  for (size_t i = 0; i < n; ++i) {
    out.nodes[i].children = td.nodes[i].children;
    out.nodes[i].parent = td.nodes[i].parent;
    std::set<ElemId> ext(td.nodes[i].bag.begin(), td.nodes[i].bag.end());
    for (int step = 0; step < r; ++step) {
      std::set<ElemId> next = ext;
      for (ElemId e : ext) {
        for (int b : occ[e]) {
          next.insert(td.nodes[b].bag.begin(), td.nodes[b].bag.end());
        }
      }
      ext.swap(next);
    }
    out.nodes[i].bag.assign(ext.begin(), ext.end());
  }
  return out;
}

}  // namespace mondet
