#ifndef MONDET_TREE_DECOMPOSE_H_
#define MONDET_TREE_DECOMPOSE_H_

#include "tree/decomposition.h"

namespace mondet {

/// Computes a tree decomposition of `inst` using the min-fill elimination
/// heuristic on the Gaifman graph. The result validates against `inst`;
/// its width is an upper bound on the treewidth (tight on the families the
/// paper's constructions produce: trees, grids with small sides, expansion
/// canonical databases).
TreeDecomposition DecomposeMinFill(const Instance& inst);

/// Exact treewidth (paper convention: max bag size) by branch-and-bound
/// over elimination orderings. Only feasible for small active domains
/// (<= ~20 elements); used by tests and the Lemma 3 bench.
int ExactTreewidth(const Instance& inst, int upper_bound);

}  // namespace mondet

#endif  // MONDET_TREE_DECOMPOSE_H_
