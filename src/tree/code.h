#ifndef MONDET_TREE_CODE_H_
#define MONDET_TREE_CODE_H_

#include <optional>
#include <set>
#include <string>
#include <vector>

#include "base/instance.h"
#include "tree/decomposition.h"

namespace mondet {

/// A unary label T^R_n of the code signature Code(S,k) (Sec. 3): the atom
/// R applied to the bag positions `positions` (0-based).
struct AtomLabel {
  PredId pred = kNoPred;
  std::vector<int> positions;

  bool operator<(const AtomLabel& o) const {
    if (pred != o.pred) return pred < o.pred;
    return positions < o.positions;
  }
  bool operator==(const AtomLabel& o) const {
    return pred == o.pred && positions == o.positions;
  }
};

/// An edge label T_s: a partial 1-1 map between parent and child positions,
/// stored as sorted (parent_pos, child_pos) pairs. (parent, child) in T_s
/// with s(i) = j means parent position i and child position j denote the
/// same element.
struct EdgeLabel {
  std::vector<std::pair<int, int>> same;

  bool operator<(const EdgeLabel& o) const { return same < o.same; }
  bool operator==(const EdgeLabel& o) const { return same == o.same; }
};

/// The label content of one code node (its atoms plus the edge labels to
/// its <= 2 children). Leaf/internal distinction is by children count.
struct CodeNode {
  std::set<AtomLabel> atoms;
  std::vector<int> children;          // node indices, size <= 2
  std::vector<EdgeLabel> edge_labels; // parallel to children
  int parent = -1;
};

/// A tree code of width k for a schema (Sec. 3): a labelled binary tree
/// whose decoding D(T) is an instance. Node 0 is the root.
struct TreeCode {
  int width = 0;  // k: the number of positions per bag
  std::vector<CodeNode> nodes;

  /// D(T): the decoded instance. Elements are the ≡0-equivalence classes
  /// of (node, position) pairs that occur in some atom. If `class_of` is
  /// non-null it receives, per node, the element of each position
  /// (kNoElem for positions whose class carries no atom).
  Instance Decode(const VocabularyPtr& vocab,
                  std::vector<std::vector<ElemId>>* class_of = nullptr) const;

  /// Structural sanity: positions within range, edge labels 1-1, binary.
  bool Validate() const;

  std::string DebugString(const Vocabulary& vocab) const;
};

/// Encodes an instance with a (binarized) tree decomposition of width <= k
/// into a tree code of width k. Every fact is attached to one node whose
/// bag covers it.
TreeCode EncodeInstance(const Instance& inst, const TreeDecomposition& td,
                        int k);

}  // namespace mondet

#endif  // MONDET_TREE_CODE_H_
