#include "tree/decompose.h"

#include <algorithm>
#include <map>
#include <set>

#include "base/check.h"
#include "base/gaifman.h"

namespace mondet {

namespace {

using AdjMap = std::map<ElemId, std::set<ElemId>>;

AdjMap BuildAdjacency(const Instance& inst) {
  AdjMap adj;
  for (ElemId e : inst.ActiveDomain()) adj[e];  // ensure presence
  for (uint32_t fg = 0; fg < inst.num_facts(); ++fg) {
    const FactView f = inst.ViewAt(fg);
    for (size_t i = 0; i < f.args.size(); ++i) {
      for (size_t j = i + 1; j < f.args.size(); ++j) {
        if (f.args[i] != f.args[j]) {
          adj[f.args[i]].insert(f.args[j]);
          adj[f.args[j]].insert(f.args[i]);
        }
      }
    }
  }
  return adj;
}

int FillIn(const AdjMap& adj, ElemId v) {
  const auto& nbrs = adj.at(v);
  int fill = 0;
  for (auto it1 = nbrs.begin(); it1 != nbrs.end(); ++it1) {
    auto it2 = it1;
    for (++it2; it2 != nbrs.end(); ++it2) {
      if (!adj.at(*it1).count(*it2)) ++fill;
    }
  }
  return fill;
}

}  // namespace

TreeDecomposition DecomposeMinFill(const Instance& inst) {
  AdjMap adj = BuildAdjacency(inst);

  // Elimination: record (vertex, bag = {v} ∪ N(v)) per step.
  std::vector<std::pair<ElemId, std::vector<ElemId>>> elim;
  while (!adj.empty()) {
    ElemId best = adj.begin()->first;
    int best_fill = FillIn(adj, best);
    size_t best_deg = adj.begin()->second.size();
    for (const auto& [v, nbrs] : adj) {
      int fill = FillIn(adj, v);
      if (fill < best_fill ||
          (fill == best_fill && nbrs.size() < best_deg)) {
        best = v;
        best_fill = fill;
        best_deg = nbrs.size();
      }
    }
    std::vector<ElemId> bag{best};
    const auto nbrs = adj.at(best);
    bag.insert(bag.end(), nbrs.begin(), nbrs.end());
    // Make N(v) a clique, remove v.
    for (ElemId a : nbrs) {
      for (ElemId b : nbrs) {
        if (a != b) adj[a].insert(b);
      }
    }
    for (ElemId a : nbrs) adj[a].erase(best);
    adj.erase(best);
    elim.emplace_back(best, std::move(bag));
  }

  TreeDecomposition td;
  if (elim.empty()) {
    td.nodes.push_back({{}, {}, -1});
    return td;
  }
  // Build nodes in reverse elimination order; the parent of step i's bag is
  // the node of the earliest-uneliminated neighbor (standard clique-tree
  // construction). Node ids follow reverse order so the root is the last
  // eliminated vertex.
  std::map<ElemId, int> node_of;  // vertex -> node index in td
  for (int i = static_cast<int>(elim.size()) - 1; i >= 0; --i) {
    const auto& [v, bag] = elim[i];
    int id = static_cast<int>(td.nodes.size());
    int parent = -1;
    // Find the neighbor eliminated soonest after v (bag minus v are all
    // eliminated after v).
    int best_step = static_cast<int>(elim.size());
    for (ElemId u : bag) {
      if (u == v) continue;
      for (int j = i + 1; j < static_cast<int>(elim.size()); ++j) {
        if (elim[j].first == u) {
          if (j < best_step) best_step = j;
          break;
        }
      }
    }
    if (best_step < static_cast<int>(elim.size())) {
      parent = node_of.at(elim[best_step].first);
    } else if (id != 0) {
      parent = 0;  // disconnected component: hang off the root
    }
    td.nodes.push_back({bag, {}, parent});
    if (parent >= 0) td.nodes[parent].children.push_back(id);
    node_of[v] = id;
  }
  return td;
}

namespace {

/// Branch and bound over elimination orderings for exact treewidth
/// (max-bag-size convention).
int BnB(AdjMap& adj, int current_max, int best) {
  if (current_max >= best) return best;
  if (adj.empty()) return current_max;
  // Simplicial vertices can always be eliminated first.
  for (const auto& [v, nbrs] : adj) {
    if (FillIn(adj, v) == 0) {
      int bag = static_cast<int>(nbrs.size()) + 1;
      AdjMap copy = adj;
      for (ElemId a : copy[v]) copy[a].erase(v);
      copy.erase(v);
      return BnB(copy, std::max(current_max, bag), best);
    }
  }
  for (const auto& [v, nbrs] : adj) {
    int bag = static_cast<int>(nbrs.size()) + 1;
    if (std::max(current_max, bag) >= best) continue;
    AdjMap copy = adj;
    for (ElemId a : copy[v]) {
      for (ElemId b : copy[v]) {
        if (a != b) copy[a].insert(b);
      }
    }
    for (ElemId a : copy[v]) copy[a].erase(v);
    copy.erase(v);
    int result = BnB(copy, std::max(current_max, bag), best);
    best = std::min(best, result);
  }
  return best;
}

}  // namespace

int ExactTreewidth(const Instance& inst, int upper_bound) {
  AdjMap adj = BuildAdjacency(inst);
  if (adj.empty()) return 0;
  return BnB(adj, 0, upper_bound + 1);
}

}  // namespace mondet
