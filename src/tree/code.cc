#include "tree/code.h"

#include <map>
#include <sstream>

#include "base/check.h"

namespace mondet {

namespace {

/// Union-find over flat (node * width + position) indices.
class Dsu {
 public:
  explicit Dsu(size_t n) : parent_(n) {
    for (size_t i = 0; i < n; ++i) parent_[i] = static_cast<int>(i);
  }
  int Find(int x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void Union(int a, int b) { parent_[Find(a)] = Find(b); }

 private:
  std::vector<int> parent_;
};

}  // namespace

Instance TreeCode::Decode(const VocabularyPtr& vocab,
                          std::vector<std::vector<ElemId>>* class_of) const {
  size_t n = nodes.size();
  Dsu dsu(n * width);
  auto flat = [&](int node, int pos) { return node * width + pos; };
  for (size_t u = 0; u < n; ++u) {
    for (size_t c = 0; c < nodes[u].children.size(); ++c) {
      int child = nodes[u].children[c];
      for (const auto& [pi, ci] : nodes[u].edge_labels[c].same) {
        dsu.Union(flat(static_cast<int>(u), pi), flat(child, ci));
      }
    }
  }
  Instance inst(vocab);
  std::map<int, ElemId> elem_of_class;
  auto elem = [&](int node, int pos) {
    int root = dsu.Find(flat(node, pos));
    auto it = elem_of_class.find(root);
    if (it != elem_of_class.end()) return it->second;
    ElemId e = inst.AddElement();
    elem_of_class.emplace(root, e);
    return e;
  };
  for (size_t u = 0; u < n; ++u) {
    for (const AtomLabel& a : nodes[u].atoms) {
      std::vector<ElemId> args;
      args.reserve(a.positions.size());
      for (int p : a.positions) args.push_back(elem(static_cast<int>(u), p));
      inst.AddFact(a.pred, args);
    }
  }
  if (class_of) {
    class_of->assign(n, std::vector<ElemId>(width, kNoElem));
    for (size_t u = 0; u < n; ++u) {
      for (int p = 0; p < width; ++p) {
        int root = dsu.Find(flat(static_cast<int>(u), p));
        auto it = elem_of_class.find(root);
        if (it != elem_of_class.end()) (*class_of)[u][p] = it->second;
      }
    }
  }
  return inst;
}

bool TreeCode::Validate() const {
  for (const CodeNode& node : nodes) {
    if (node.children.size() > 2) return false;
    if (node.children.size() != node.edge_labels.size()) return false;
    for (const AtomLabel& a : node.atoms) {
      for (int p : a.positions) {
        if (p < 0 || p >= width) return false;
      }
    }
    for (const EdgeLabel& e : node.edge_labels) {
      std::set<int> from;
      std::set<int> to;
      for (const auto& [pi, ci] : e.same) {
        if (pi < 0 || pi >= width || ci < 0 || ci >= width) return false;
        if (!from.insert(pi).second) return false;  // not a partial map
        if (!to.insert(ci).second) return false;    // not injective
      }
    }
  }
  return true;
}

std::string TreeCode::DebugString(const Vocabulary& vocab) const {
  std::ostringstream os;
  for (size_t u = 0; u < nodes.size(); ++u) {
    os << "node " << u << " [";
    bool first = true;
    for (const AtomLabel& a : nodes[u].atoms) {
      if (!first) os << " ";
      first = false;
      os << vocab.name(a.pred) << "(";
      for (size_t i = 0; i < a.positions.size(); ++i) {
        if (i) os << ",";
        os << a.positions[i];
      }
      os << ")";
    }
    os << "]";
    for (size_t c = 0; c < nodes[u].children.size(); ++c) {
      os << " ->" << nodes[u].children[c] << "{";
      for (const auto& [pi, ci] : nodes[u].edge_labels[c].same) {
        os << pi << "=" << ci << " ";
      }
      os << "}";
    }
    os << "\n";
  }
  return os.str();
}

TreeCode EncodeInstance(const Instance& inst, const TreeDecomposition& td,
                        int k) {
  MONDET_CHECK(td.width() <= k);
  MONDET_CHECK(td.MaxOutdegree() <= 2);
  TreeCode code;
  code.width = k;
  code.nodes.resize(td.nodes.size());

  // Position of an element within a bag (bag order).
  auto pos_in = [&](int node, ElemId e) -> int {
    const auto& bag = td.nodes[node].bag;
    for (size_t i = 0; i < bag.size(); ++i) {
      if (bag[i] == e) return static_cast<int>(i);
    }
    return -1;
  };

  for (size_t u = 0; u < td.nodes.size(); ++u) {
    code.nodes[u].parent = td.nodes[u].parent;
    for (int child : td.nodes[u].children) {
      EdgeLabel label;
      const auto& cbag = td.nodes[child].bag;
      for (size_t ci = 0; ci < cbag.size(); ++ci) {
        int pi = pos_in(static_cast<int>(u), cbag[ci]);
        if (pi >= 0) label.same.emplace_back(pi, static_cast<int>(ci));
      }
      code.nodes[u].children.push_back(child);
      code.nodes[u].edge_labels.push_back(std::move(label));
    }
  }

  // Attach each fact to the first node whose bag covers it.
  for (uint32_t fg = 0; fg < inst.num_facts(); ++fg) {
    const FactView f = inst.ViewAt(fg);
    bool attached = false;
    for (size_t u = 0; u < td.nodes.size() && !attached; ++u) {
      AtomLabel label;
      label.pred = f.pred;
      bool ok = true;
      for (ElemId e : f.args) {
        int p = pos_in(static_cast<int>(u), e);
        if (p < 0) {
          ok = false;
          break;
        }
        label.positions.push_back(p);
      }
      if (ok) {
        code.nodes[u].atoms.insert(std::move(label));
        attached = true;
      }
    }
    MONDET_CHECK(attached);
  }
  return code;
}

}  // namespace mondet
