#ifndef MONDET_CORE_BACKWARD_H_
#define MONDET_CORE_BACKWARD_H_

#include <vector>

#include "automata/nta.h"
#include "datalog/program.h"

namespace mondet {

/// The backward mapping of Sec. 3: converts an NTA A running on width-k
/// codes into a Boolean Datalog query Q_A over the given schema
/// predicates. For every transition q1,q2,σ^{s1,s2}_L → q the construction
/// emits a rule
///
///   P_q(x1..xk) ← Adom(x1) ∧ .. ∧ P_q1(x^1) ∧ P_q2(x^2)
///                 ∧ equalities from s1,s2 ∧ atoms of L,
///
/// with equalities applied by unification, plus Adom-saturation rules for
/// every schema predicate and Goal_A ← P_q(x) for accepting q.
///
/// By Prop. 7, when A sandwiches the view images of the approximations of
/// a homomorphically-determined query, Q_A is a Datalog rewriting.
DatalogQuery BackwardMapping(const Nta& automaton,
                             const std::vector<PredId>& schema_preds,
                             const VocabularyPtr& vocab,
                             const std::string& name_prefix = "bw");

/// The frontier-one refinement (appendix of Thm 1): when the automaton
/// respects frontier-one codes — every edge label is a single pair
/// (p, 0), i.e. a child shares exactly its position-0 element with the
/// parent — the backward mapping can use *unary* state predicates
/// P_q(x) = "the subtree derives state q with frontier element x",
/// producing a Monadic Datalog query. MONDET_CHECK-fails on automata
/// violating the frontier-one shape (leaf transitions are unrestricted).
///
/// Applying this to ApproximationAutomaton of a normalized MDL query
/// yields an MDL query equivalent to the original.
DatalogQuery BackwardMappingMdl(const Nta& automaton,
                                const std::vector<PredId>& schema_preds,
                                const VocabularyPtr& vocab,
                                const std::string& name_prefix = "bwm");

}  // namespace mondet

#endif  // MONDET_CORE_BACKWARD_H_
