#ifndef MONDET_CORE_FORWARD_H_
#define MONDET_CORE_FORWARD_H_

#include "automata/nta.h"
#include "datalog/program.h"

namespace mondet {

/// Result of the forward mapping (Prop. 3): an NTA that captures the
/// canonical databases of the CQ approximations of a Datalog query, over
/// standard codes of width `width`. Accepted codes decode exactly to
/// expansion canonical databases; every expansion has an accepted code.
struct ForwardResult {
  Nta automaton;
  int width = 0;
  /// Per rule, the canonical variable order used for its bag
  /// (deduplicated head variables first, then the rest).
  std::vector<std::vector<VarId>> bag_order;
};

/// Builds the approximation automaton A_Q of Prop. 3.
///
/// Preprocessing ensures every rule has at most two IDB body atoms (extra
/// atoms are folded into auxiliary predicates, which leaves the expansion
/// set unchanged). Requirements checked: body IDB atoms have pairwise
/// distinct arguments and IDB rule heads have pairwise distinct variables
/// (true of every construction in the paper).
ForwardResult ApproximationAutomaton(const DatalogQuery& query);

/// Rewrites the program so that every rule body contains at most `max_idb`
/// IDB atoms, by folding surplus IDB atoms into fresh auxiliary
/// predicates. The set of CQ approximations of the query is preserved.
DatalogQuery LimitIdbAtomsPerRule(const DatalogQuery& query, int max_idb);

}  // namespace mondet

#endif  // MONDET_CORE_FORWARD_H_
