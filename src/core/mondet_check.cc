#include "core/mondet_check.h"

#include <functional>
#include <map>

#include "base/check.h"
#include "core/cq_automaton.h"
#include "core/forward.h"
#include "datalog/eval.h"
#include "datalog/eval_plan.h"
#include "datalog/fragment.h"

namespace mondet {

namespace {

/// All expansions of a view definition up to `depth`, capped. Returns
/// (expansions, exhaustive).
std::pair<std::vector<Expansion>, bool> ViewExpansions(const View& view,
                                                       int depth,
                                                       size_t cap) {
  std::vector<Expansion> out;
  bool exhaustive = EnumeratePredExpansions(
      view.definition.program, view.definition.goal, depth, cap,
      [&](const Expansion& e) {
        out.push_back(e);
        return true;
      });
  return {std::move(out), exhaustive};
}

/// Builds D' for one choice of per-fact view expansions: each view fact
/// V(c) is replaced by the chosen expansion's facts, frontier unified with
/// c and other elements fresh. Returns nullopt when some expansion's
/// frontier cannot be unified with its fact's arguments.
std::optional<Instance> BuildDPrime(
    const VocabularyPtr& vocab, const Instance& image,
    const std::vector<const Expansion*>& choice, size_t base_elems) {
  Instance dprime(vocab);
  dprime.EnsureElements(base_elems);
  for (size_t fi = 0; fi < image.num_facts(); ++fi) {
    const Fact& fact = image.facts()[fi];
    const Expansion& exp = *choice[fi];
    // Map the expansion's elements: frontier -> fact args, others fresh.
    std::vector<ElemId> map(exp.inst.num_elements(), kNoElem);
    for (size_t i = 0; i < exp.frontier.size(); ++i) {
      ElemId from = exp.frontier[i];
      if (map[from] != kNoElem && map[from] != fact.args[i]) {
        return std::nullopt;  // frontier repeats, fact args differ
      }
      map[from] = fact.args[i];
    }
    for (ElemId e = 0; e < exp.inst.num_elements(); ++e) {
      if (map[e] == kNoElem) map[e] = dprime.AddElement();
    }
    for (const Fact& f : exp.inst.facts()) {
      std::vector<ElemId> args;
      args.reserve(f.args.size());
      for (ElemId a : f.args) args.push_back(map[a]);
      dprime.AddFact(f.pred, args);
    }
  }
  return dprime;
}

}  // namespace

MonDetResult CheckMonotonicDeterminacy(const DatalogQuery& query,
                                       const ViewSet& views,
                                       const MonDetOptions& options) {
  const VocabularyPtr& vocab = query.program.vocab();
  MonDetResult result;

  // Validate the inputs through the analyzer: user-reachable precondition
  // failures return kInvalidInput with witnesses instead of aborting or
  // silently computing garbage.
  if (query.program.vocab().get() != views.vocab().get()) {
    result.diagnostics.push_back(MakeDiagnostic(
        Severity::kError, "view-vocabulary",
        "query and views are defined over different vocabularies"));
  } else {
    if (!query.program.IsIdb(query.goal)) {
      result.diagnostics.push_back(MakeDiagnostic(
          Severity::kError, "goal",
          "goal predicate " + vocab->name(query.goal) +
              " is not the head of any rule"));
    }
    if (options.require_query_fragment) {
      std::vector<Diagnostic> witnesses = FragmentViolations(
          query.program, *options.require_query_fragment);
      result.diagnostics.insert(result.diagnostics.end(), witnesses.begin(),
                                witnesses.end());
    }
    if (options.require_view_fragment) {
      for (const View& v : views.views()) {
        std::vector<Diagnostic> witnesses = FragmentViolations(
            v.definition.program, *options.require_view_fragment);
        for (Diagnostic& d : witnesses) {
          d.message = "view " + vocab->name(v.pred) + ": " + d.message;
        }
        result.diagnostics.insert(result.diagnostics.end(), witnesses.begin(),
                                  witnesses.end());
      }
    }
  }
  if (HasErrors(result.diagnostics)) {
    result.verdict = Verdict::kInvalidInput;
    return result;
  }

  // The query program is evaluated on every candidate D'; compile it once.
  CompiledProgram compiled_query(query.program);

  // Pre-enumerate view definition expansions.
  std::map<PredId, std::vector<Expansion>> view_exps;
  bool views_exhaustive = true;
  for (const View& v : views.views()) {
    auto [exps, exhaustive] =
        ViewExpansions(v, options.view_depth, options.max_tests_per_expansion);
    views_exhaustive = views_exhaustive && exhaustive &&
                       IsNonRecursive(v.definition.program);
    view_exps[v.pred] = std::move(exps);
  }

  bool query_exhaustive =
      IsNonRecursive(query.program) &&
      options.query_depth >=
          static_cast<int>(query.program.Idbs().size()) + 1;
  bool all_tests_built = true;

  bool stopped_early = false;
  bool enumeration_complete = EnumerateExpansions(
      query, options.query_depth, options.max_query_expansions,
      [&](const Expansion& qi) {
        result.expansions_tried++;
        Instance image = views.Image(qi.inst);
        // Per-fact expansion choices.
        size_t nfacts = image.num_facts();
        std::vector<const std::vector<Expansion>*> options_per_fact;
        for (const Fact& f : image.facts()) {
          options_per_fact.push_back(&view_exps.at(f.pred));
          if (options_per_fact.back()->empty()) {
            // No expansion of this view within the depth bound: cannot
            // build any D' through this fact.
            all_tests_built = false;
          }
        }
        std::vector<const Expansion*> choice(nfacts, nullptr);
        size_t tests_here = 0;
        std::function<bool(size_t)> descend = [&](size_t fi) -> bool {
          if (tests_here >= options.max_tests_per_expansion) {
            all_tests_built = false;
            return true;
          }
          if (fi == nfacts) {
            ++tests_here;
            ++result.tests_run;
            auto dprime = BuildDPrime(vocab, image, choice,
                                      qi.inst.num_elements());
            if (!dprime) return true;  // unbuildable choice, not a test
            // The test succeeds if D' |= Q(c) for Qi's frontier tuple c
            // (the paper states the Boolean case; the tuple version is the
            // natural non-Boolean extension).
            if (!compiled_query.Eval(*dprime).HasFact(query.goal,
                                                      qi.frontier)) {
              result.failure.emplace(qi, std::move(*dprime));
              return false;  // counterexample found
            }
            return true;
          }
          for (const Expansion& e : *options_per_fact[fi]) {
            choice[fi] = &e;
            if (!descend(fi + 1)) return false;
          }
          return true;
        };
        if (!descend(0)) {
          stopped_early = true;
          return false;  // stop expansion enumeration
        }
        return true;
      });

  if (result.failure) {
    result.verdict = Verdict::kNotDetermined;
    return result;
  }
  (void)stopped_early;
  if (query_exhaustive && views_exhaustive && enumeration_complete &&
      all_tests_built) {
    result.verdict = Verdict::kDetermined;
  } else {
    result.verdict = Verdict::kUnknownBounded;
  }
  return result;
}

ContainmentResult DatalogContainedInUcq(const DatalogQuery& query,
                                        const UCQ& ucq) {
  ContainmentResult result;
  ForwardResult fwd = ApproximationAutomaton(query);
  UcqMatchAutomaton dp(ucq, fwd.width);
  const Nta& nta = fwd.automaton;

  // Discovered pairs (NTA state, DP state) with their derivations.
  struct Deriv {
    int kind = -1;  // 0 leaf, 1 unary, 2 binary
    size_t trans = 0;
    int child1 = -1;
    int child2 = -1;
  };
  std::map<std::pair<State, uint32_t>, int> pair_id;
  std::vector<std::pair<State, uint32_t>> pairs;
  std::vector<Deriv> derivs;
  auto intern = [&](State q, uint32_t d, Deriv deriv) {
    auto key = std::make_pair(q, d);
    auto it = pair_id.find(key);
    if (it != pair_id.end()) return std::make_pair(it->second, false);
    int id = static_cast<int>(pairs.size());
    pair_id.emplace(key, id);
    pairs.push_back(key);
    derivs.push_back(deriv);
    return std::make_pair(id, true);
  };

  for (size_t ti = 0; ti < nta.leaf_transitions().size(); ++ti) {
    const auto& t = nta.leaf_transitions()[ti];
    intern(t.to, dp.Leaf(t.label), Deriv{0, ti, -1, -1});
  }
  bool changed = true;
  while (changed) {
    changed = false;
    size_t n = pairs.size();
    for (size_t ti = 0; ti < nta.unary_transitions().size(); ++ti) {
      const auto& t = nta.unary_transitions()[ti];
      for (size_t pi = 0; pi < n; ++pi) {
        if (pairs[pi].first != t.child) continue;
        uint32_t d = dp.Unary(pairs[pi].second, t.label, t.edge);
        auto [id, fresh] =
            intern(t.to, d, Deriv{1, ti, static_cast<int>(pi), -1});
        (void)id;
        if (fresh) changed = true;
      }
    }
    for (size_t ti = 0; ti < nta.binary_transitions().size(); ++ti) {
      const auto& t = nta.binary_transitions()[ti];
      for (size_t p1 = 0; p1 < n; ++p1) {
        if (pairs[p1].first != t.child1) continue;
        for (size_t p2 = 0; p2 < n; ++p2) {
          if (pairs[p2].first != t.child2) continue;
          uint32_t d = dp.Binary(pairs[p1].second, pairs[p2].second, t.label,
                                 t.edge1, t.edge2);
          auto [id, fresh] =
              intern(t.to, d,
                     Deriv{2, ti, static_cast<int>(p1),
                           static_cast<int>(p2)});
          (void)id;
          if (fresh) changed = true;
        }
      }
    }
  }
  result.pairs_explored = pairs.size();

  // A counterexample: a final NTA state paired with a rejecting DP state.
  int bad = -1;
  for (size_t pi = 0; pi < pairs.size(); ++pi) {
    if (nta.finals().count(pairs[pi].first) && !dp.Accepting(pairs[pi].second)) {
      bad = static_cast<int>(pi);
      break;
    }
  }
  if (bad < 0) {
    result.contained = true;
    return result;
  }
  // Reconstruct the violating code.
  TreeCode code;
  code.width = fwd.width;
  std::function<int(int, int)> build = [&](int pi, int parent) -> int {
    const Deriv& d = derivs[pi];
    int id = static_cast<int>(code.nodes.size());
    code.nodes.emplace_back();
    code.nodes[id].parent = parent;
    if (d.kind == 0) {
      const auto& t = nta.leaf_transitions()[d.trans];
      code.nodes[id].atoms.insert(t.label.begin(), t.label.end());
    } else if (d.kind == 1) {
      const auto& t = nta.unary_transitions()[d.trans];
      code.nodes[id].atoms.insert(t.label.begin(), t.label.end());
      int c = build(d.child1, id);
      code.nodes[id].children.push_back(c);
      code.nodes[id].edge_labels.push_back(t.edge);
    } else {
      const auto& t = nta.binary_transitions()[d.trans];
      code.nodes[id].atoms.insert(t.label.begin(), t.label.end());
      int c1 = build(d.child1, id);
      code.nodes[id].children.push_back(c1);
      code.nodes[id].edge_labels.push_back(t.edge1);
      int c2 = build(d.child2, id);
      code.nodes[id].children.push_back(c2);
      code.nodes[id].edge_labels.push_back(t.edge2);
    }
    return id;
  };
  build(bad, -1);
  result.counterexample = std::move(code);
  return result;
}

Thm5Result CheckCqOverDatalogViews(const CQ& query, const ViewSet& views) {
  MONDET_CHECK(query.free_vars().empty());
  const VocabularyPtr& vocab = query.vocab();

  // Q'' = Π_V ∪ { Goal'' ← V(Q) }: the views applied to Q's canonical
  // database, read back as a query over the view schema, with the view
  // definitions as rules.
  Instance canon = query.CanonicalDb();
  Instance image = views.Image(canon);
  Program program = views.CombinedProgram();
  PredId goal2 = vocab->AddPredicate("Thm5.Goal", 0);
  Rule goal_rule;
  for (size_t e = 0; e < canon.num_elements(); ++e) {
    goal_rule.var_names.push_back(canon.element_name(static_cast<ElemId>(e)));
  }
  goal_rule.head = QAtom(goal2, {});
  for (const Fact& f : image.facts()) {
    goal_rule.body.push_back(
        QAtom(f.pred, std::vector<VarId>(f.args.begin(), f.args.end())));
  }
  program.AddRule(std::move(goal_rule));
  DatalogQuery q2(std::move(program), goal2);

  UCQ target(vocab);
  target.AddDisjunct(query);
  ContainmentResult contained = DatalogContainedInUcq(q2, target);

  Thm5Result out;
  out.determined = contained.contained;
  out.pairs_explored = contained.pairs_explored;
  out.counterexample = std::move(contained.counterexample);
  return out;
}

}  // namespace mondet
