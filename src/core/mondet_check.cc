#include "core/mondet_check.h"

#include <algorithm>
#include <atomic>
#include <functional>
#include <map>
#include <optional>
#include <unordered_map>

#include "base/canonical.h"
#include "base/check.h"
#include "base/stats.h"
#include "base/thread_pool.h"
#include "core/cq_automaton.h"
#include "core/forward.h"
#include "datalog/eval.h"
#include "datalog/eval_plan.h"
#include "datalog/fragment.h"

namespace mondet {

namespace {

/// All expansions of a view definition up to `depth`, capped. Returns
/// (expansions, exhaustive).
std::pair<std::vector<Expansion>, bool> ViewExpansions(const View& view,
                                                       int depth,
                                                       size_t cap) {
  std::vector<Expansion> out;
  bool exhaustive = EnumeratePredExpansions(
      view.definition.program, view.definition.goal, depth, cap,
      [&](const Expansion& e) {
        out.push_back(e);
        return true;
      });
  return {std::move(out), exhaustive};
}

/// Builds D' for one choice of per-fact view expansions: each view fact
/// V(c) is replaced by the chosen expansion's facts, frontier unified with
/// c and other elements fresh. Returns nullopt when some expansion's
/// frontier cannot be unified with its fact's arguments.
std::optional<Instance> BuildDPrime(
    const VocabularyPtr& vocab, const Instance& image,
    const std::vector<const Expansion*>& choice, size_t base_elems) {
  Instance dprime(vocab);
  dprime.EnsureElements(base_elems);
  for (uint32_t fi = 0; fi < image.num_facts(); ++fi) {
    const FactView fact = image.ViewAt(fi);
    const Expansion& exp = *choice[fi];
    // Map the expansion's elements: frontier -> fact args, others fresh.
    std::vector<ElemId> map(exp.inst.num_elements(), kNoElem);
    for (size_t i = 0; i < exp.frontier.size(); ++i) {
      ElemId from = exp.frontier[i];
      if (map[from] != kNoElem && map[from] != fact.args[i]) {
        return std::nullopt;  // frontier repeats, fact args differ
      }
      map[from] = fact.args[i];
    }
    for (ElemId e = 0; e < exp.inst.num_elements(); ++e) {
      if (map[e] == kNoElem) map[e] = dprime.AddElement();
    }
    for (uint32_t fg = 0; fg < exp.inst.num_facts(); ++fg) {
      const FactView f = exp.inst.ViewAt(fg);
      std::vector<ElemId> args;
      args.reserve(f.args.size());
      for (ElemId a : f.args) args.push_back(map[a]);
      dprime.AddFact(f.pred, args);
    }
  }
  return dprime;
}

/// Orders facts by (pred, args): the per-expansion test enumeration walks
/// the image facts in this order, so the test numbering is a function of
/// the image's fact *set* — identical whether the image was evaluated
/// directly or translated out of the isomorphism memo.
bool FactLess(const Fact& a, const Fact& b) {
  if (a.pred != b.pred) return a.pred < b.pred;
  return a.args < b.args;
}

}  // namespace

MonDetResult CheckMonotonicDeterminacy(const DatalogQuery& query,
                                       const ViewSet& views,
                                       const MonDetOptions& options) {
  const VocabularyPtr& vocab = query.program.vocab();
  MonDetResult result;

  // Validate the inputs through the analyzer: user-reachable precondition
  // failures return kInvalidInput with witnesses instead of aborting or
  // silently computing garbage.
  if (query.program.vocab().get() != views.vocab().get()) {
    result.diagnostics.push_back(MakeDiagnostic(
        Severity::kError, "view-vocabulary",
        "query and views are defined over different vocabularies"));
  } else {
    if (!query.program.IsIdb(query.goal)) {
      result.diagnostics.push_back(MakeDiagnostic(
          Severity::kError, "goal",
          "goal predicate " + vocab->name(query.goal) +
              " is not the head of any rule"));
    }
    if (options.require_query_fragment) {
      std::vector<Diagnostic> witnesses = FragmentViolations(
          query.program, *options.require_query_fragment);
      result.diagnostics.insert(result.diagnostics.end(), witnesses.begin(),
                                witnesses.end());
    }
    if (options.require_view_fragment) {
      for (const View& v : views.views()) {
        std::vector<Diagnostic> witnesses = FragmentViolations(
            v.definition.program, *options.require_view_fragment);
        for (Diagnostic& d : witnesses) {
          d.message = "view " + vocab->name(v.pred) + ": " + d.message;
        }
        result.diagnostics.insert(result.diagnostics.end(), witnesses.begin(),
                                  witnesses.end());
      }
    }
  }
  if (HasErrors(result.diagnostics)) {
    result.verdict = Verdict::kInvalidInput;
    return result;
  }

  // The query program is evaluated on every candidate D'; compile it once.
  CompiledProgram compiled_query(query.program);

  // Pre-enumerate view definition expansions.
  std::map<PredId, std::vector<Expansion>> view_exps;
  bool views_exhaustive = true;
  for (const View& v : views.views()) {
    auto [exps, exhaustive] =
        ViewExpansions(v, options.view_depth, options.max_tests_per_expansion);
    views_exhaustive = views_exhaustive && exhaustive &&
                       IsNonRecursive(v.definition.program);
    view_exps[v.pred] = std::move(exps);
  }

  bool query_exhaustive =
      IsNonRecursive(query.program) &&
      options.query_depth >=
          static_cast<int>(query.program.Idbs().size()) + 1;

  // Collect the query approximations up front; the search then runs one
  // bounded block of (view-choice) tests per expansion, in expansion
  // order, fanning each block out over the shared thread pool.
  std::vector<Expansion> expansions;
  bool enumeration_complete = EnumerateExpansions(
      query, options.query_depth, options.max_query_expansions,
      [&](const Expansion& qi) {
        expansions.push_back(qi);
        return true;
      });

  const int nthreads = std::max(1, ResolveEvalThreads(options.num_threads));
  ThreadPool& pool = ThreadPool::Shared();
  CanonicalTestCache cache;
  // Memo for ViewSet::Image keyed by the expansion's isomorphism type:
  // Datalog is generic, so for an isomorphism m : rep -> qi the image of
  // qi is exactly m applied to the image of rep.
  struct ImageMemoEntry {
    Instance inst;
    std::vector<ElemId> frontier;
    std::vector<Fact> image_facts;
  };
  std::unordered_map<uint64_t, std::vector<ImageMemoEntry>> image_memo;

  bool all_tests_built = true;
  size_t tests_before = 0;  // Σ block sizes of completed expansions
  constexpr size_t kNoTest = static_cast<size_t>(-1);

  for (size_t ei = 0; ei < expansions.size(); ++ei) {
    const Expansion& qi = expansions[ei];

    std::vector<Fact> image_facts;
    bool memo_hit = false;
    uint64_t qi_hash = 0;
    if (options.test_cache) {
      qi_hash = CanonicalHash(qi.inst, qi.frontier);
      auto it = image_memo.find(qi_hash);
      if (it != image_memo.end()) {
        for (const ImageMemoEntry& entry : it->second) {
          auto m = FindIsomorphism(entry.inst, entry.frontier, qi.inst,
                                   qi.frontier);
          if (!m) continue;
          for (const Fact& f : entry.image_facts) {
            std::vector<ElemId> args;
            args.reserve(f.args.size());
            for (ElemId a : f.args) args.push_back((*m)[a]);
            image_facts.emplace_back(f.pred, std::move(args));
          }
          memo_hit = true;
          break;
        }
      }
    }
    if (!memo_hit) {
      // One image per expansion, instances a few facts each: like the
      // query evals below, too small to amortize per-instance dataflow
      // analysis.
      EvalOptions img_opts;
      img_opts.dataflow_prune = false;
      Instance raw = views.Image(qi.inst, nullptr, img_opts);
      image_facts = raw.AllFacts();
      if (options.test_cache) {
        image_memo[qi_hash].push_back(
            ImageMemoEntry{qi.inst, qi.frontier, image_facts});
      }
    }
    std::sort(image_facts.begin(), image_facts.end(), FactLess);
    Instance image(vocab);
    image.EnsureElements(qi.inst.num_elements());
    for (const Fact& f : image_facts) image.AddFact(f);

    // Per-fact expansion choices; block size = min(Π choices, cap), the
    // exact number of tests a sequential lexicographic walk would count.
    const size_t nfacts = image.num_facts();
    std::vector<const std::vector<Expansion>*> options_per_fact;
    options_per_fact.reserve(nfacts);
    bool has_empty = false;
    for (uint32_t fg = 0; fg < image.num_facts(); ++fg) {
      const FactView f = image.ViewAt(fg);
      options_per_fact.push_back(&view_exps.at(f.pred));
      if (options_per_fact.back()->empty()) {
        // No expansion of this view within the depth bound: cannot build
        // any D' through this fact.
        has_empty = true;
      }
    }
    const size_t cap = options.max_tests_per_expansion;
    size_t block = 1;
    if (has_empty) {
      all_tests_built = false;
      block = 0;
    } else {
      for (const auto* opts : options_per_fact) {
        size_t c = opts->size();
        if (block > cap / c) {
          all_tests_built = false;
          block = cap;
          break;
        }
        block *= c;
      }
    }

    // Decodes a flat test index into per-fact choices, fact 0 most
    // significant — flat-index order IS the sequential lexicographic
    // order, so "lowest failing index" means "first failure a sequential
    // run would hit".
    auto decode = [&](size_t t, std::vector<const Expansion*>* choice) {
      choice->assign(nfacts, nullptr);
      for (size_t fi = nfacts; fi-- > 0;) {
        const std::vector<Expansion>& opts = *options_per_fact[fi];
        (*choice)[fi] = &opts[t % opts.size()];
        t /= opts.size();
      }
    };

    // One statistics snapshot per block, collected from the first
    // buildable D': every test's D' assembles the same view expansions
    // over the same image facts, so one test's counts describe them all
    // well. The snapshot spares each of the (up to `cap`) inner Evals its
    // own live collection — stale stats stay correct by construction —
    // and, being built sequentially before the fan-out, keeps the planned
    // orders identical at every thread count.
    std::optional<Stats> block_stats;
    {
      std::vector<const Expansion*> probe_choice;
      const size_t probe_limit = std::min<size_t>(block, 4);
      for (size_t t = 0; t < probe_limit && !block_stats; ++t) {
        decode(t, &probe_choice);
        std::optional<Instance> dprime =
            BuildDPrime(vocab, image, probe_choice, qi.inst.num_elements());
        if (dprime) block_stats = Stats::Collect(*dprime);
      }
    }

    std::atomic<size_t> best{kNoTest};
    std::vector<std::vector<const Expansion*>> scratch(nthreads);
    std::vector<size_t> hits(nthreads, 0), misses(nthreads, 0);
    pool.ParallelFor(block, nthreads, [&](size_t t, int w) {
      // Only skip tests above a known failure: `best` never increases, so
      // the minimum failing index is always evaluated.
      if (t >= best.load(std::memory_order_acquire)) return;
      decode(t, &scratch[w]);
      std::optional<Instance> dprime =
          BuildDPrime(vocab, image, scratch[w], qi.inst.num_elements());
      if (!dprime) return;  // unbuildable choice: counted, never a failure
      // The test succeeds if D' |= Q(c) for Qi's frontier tuple c (the
      // paper states the Boolean case; the tuple version is the natural
      // non-Boolean extension). Inner evaluations stay single-threaded —
      // the parallelism budget is spent on the test fan-out.
      auto run = [&] {
        EvalOptions eopts;
        eopts.num_threads = 1;
        if (block_stats) eopts.stats = &*block_stats;
        // Thousands of µs-scale evals per check: the per-instance
        // dataflow analysis can never amortize here, same reason the
        // stats snapshot above bypasses live collection.
        eopts.dataflow_prune = false;
        return compiled_query.Eval(*dprime, nullptr, eopts)
            .HasFact(query.goal, qi.frontier);
      };
      bool holds;
      if (options.test_cache) {
        bool hit = false;
        holds = cache.GetOrCompute(*dprime, qi.frontier, run, &hit);
        ++(hit ? hits : misses)[w];
      } else {
        holds = run();
      }
      if (!holds) {
        size_t cur = best.load(std::memory_order_relaxed);
        while (t < cur && !best.compare_exchange_weak(
                              cur, t, std::memory_order_acq_rel)) {
        }
      }
    });
    for (int w = 0; w < nthreads; ++w) {
      result.cache_hits += hits[w];
      result.cache_misses += misses[w];
    }

    size_t t_fail = best.load(std::memory_order_acquire);
    if (t_fail != kNoTest) {
      // As-if-sequential accounting: a 1-thread lexicographic walk would
      // have stopped at exactly this test.
      result.expansions_tried = ei + 1;
      result.tests_run = tests_before + t_fail + 1;
      std::vector<const Expansion*> choice;
      decode(t_fail, &choice);
      std::optional<Instance> dprime =
          BuildDPrime(vocab, image, choice, qi.inst.num_elements());
      result.failure.emplace(qi, std::move(*dprime));
      result.verdict = Verdict::kNotDetermined;
      return result;
    }
    tests_before += block;
  }

  result.expansions_tried = expansions.size();
  result.tests_run = tests_before;
  if (query_exhaustive && views_exhaustive && enumeration_complete &&
      all_tests_built) {
    result.verdict = Verdict::kDetermined;
  } else {
    result.verdict = Verdict::kUnknownBounded;
  }
  return result;
}

namespace {

/// One (NTA state, DP state) reachability walk — the engine shared by the
/// antichain route and the explicit escape hatch of DatalogContainedInUcq.
/// With `prune` off and `early_exit` off this is the pre-antichain full
/// fixpoint, byte for byte; `early_exit` stops at the first pair interned
/// with a final NTA state and a rejecting DP state, which is exactly the
/// pair the full fixpoint's lowest-id post-scan finds (pairs are checked
/// in intern order and nothing before the first bad pair differs).
struct ContainmentWalk {
  struct Deriv {
    int kind = -1;  // 0 leaf, 1 unary, 2 binary
    size_t trans = 0;
    int child1 = -1;
    int child2 = -1;
  };
  std::vector<std::pair<State, uint32_t>> pairs;
  std::vector<Deriv> derivs;
  size_t transition_visits = 0;
  size_t subsumption_prunes = 0;
  int bad = -1;  // pair id, or -1 (only set when early_exit)
};

ContainmentWalk RunContainmentWalk(const Nta& nta, UcqMatchAutomaton& dp,
                                   bool prune, bool early_exit) {
  ContainmentWalk w;
  using Deriv = ContainmentWalk::Deriv;
  std::map<std::pair<State, uint32_t>, int> pair_id;
  std::map<State, std::vector<int>> pairs_by_state;
  // Per NTA-state antichain filter: pair ids whose DP match sets are the
  // current ⊆-minimal ones. Dominated entries leave the filter but stay
  // in `pairs` (their derivations may already be referenced).
  std::map<State, std::vector<int>> frontier;
  std::vector<int> worklist;  // FIFO; grows as pairs are discovered
  auto intern = [&](State q, uint32_t d, Deriv deriv) {
    if (w.bad >= 0) return;
    auto key = std::make_pair(q, d);
    auto it = pair_id.find(key);
    if (it != pair_id.end()) return;
    if (prune) {
      for (int old : frontier[q]) {
        if (dp.SubsetOf(w.pairs[old].second, d)) {
          ++w.subsumption_prunes;
          return;
        }
      }
    }
    int id = static_cast<int>(w.pairs.size());
    pair_id.emplace(key, id);
    w.pairs.push_back(key);
    w.derivs.push_back(deriv);
    pairs_by_state[q].push_back(id);
    if (prune) {
      auto& fr = frontier[q];
      fr.erase(std::remove_if(fr.begin(), fr.end(),
                              [&](int old) {
                                return dp.SubsetOf(d, w.pairs[old].second);
                              }),
               fr.end());
      fr.push_back(id);
    }
    worklist.push_back(id);
    // A pruned bad pair is never missed: its match sets contain a kept
    // pair's, and rejection is downward closed, so the kept pair was
    // already bad when it was interned.
    if (early_exit && nta.finals().count(q) > 0 && !dp.Accepting(d)) {
      w.bad = id;
    }
  };

  // Transition indexes keyed by child state: popping a pair consults only
  // the transitions it can feed, joining against the pairs already known
  // for the sibling state — the same delta-against-saturated shape as
  // semi-naive rule evaluation, replacing the full rescan per round.
  std::map<State, std::vector<size_t>> unary_by_child;
  for (size_t ti = 0; ti < nta.unary_transitions().size(); ++ti) {
    unary_by_child[nta.unary_transitions()[ti].child].push_back(ti);
  }
  std::map<State, std::vector<size_t>> binary_by_child1, binary_by_child2;
  for (size_t ti = 0; ti < nta.binary_transitions().size(); ++ti) {
    binary_by_child1[nta.binary_transitions()[ti].child1].push_back(ti);
    binary_by_child2[nta.binary_transitions()[ti].child2].push_back(ti);
  }

  for (size_t ti = 0; ti < nta.leaf_transitions().size() && w.bad < 0;
       ++ti) {
    const auto& t = nta.leaf_transitions()[ti];
    ++w.transition_visits;
    intern(t.to, dp.Leaf(t.label), Deriv{0, ti, -1, -1});
  }
  for (size_t wi = 0; wi < worklist.size() && w.bad < 0; ++wi) {
    const int pi = worklist[wi];
    const State q = w.pairs[pi].first;
    const uint32_t dq = w.pairs[pi].second;
    if (auto it = unary_by_child.find(q); it != unary_by_child.end()) {
      for (size_t ti : it->second) {
        if (w.bad >= 0) break;
        const auto& t = nta.unary_transitions()[ti];
        ++w.transition_visits;
        intern(t.to, dp.Unary(dq, t.label, t.edge), Deriv{1, ti, pi, -1});
      }
    }
    // Binary joins pair the popped state with every known sibling pair.
    // The partner list is snapshotted by size: partners interned later
    // re-pair with `pi` when they pop (pi is already in pairs_by_state),
    // so every combination is applied at least once and O(1) times.
    if (auto it = binary_by_child1.find(q);
        it != binary_by_child1.end() && w.bad < 0) {
      for (size_t ti : it->second) {
        if (w.bad >= 0) break;
        const auto& t = nta.binary_transitions()[ti];
        auto pit = pairs_by_state.find(t.child2);
        if (pit == pairs_by_state.end()) continue;
        size_t n = pit->second.size();
        for (size_t k = 0; k < n && w.bad < 0; ++k) {
          int p2 = pit->second[k];
          ++w.transition_visits;
          intern(t.to,
                 dp.Binary(dq, w.pairs[p2].second, t.label, t.edge1, t.edge2),
                 Deriv{2, ti, pi, p2});
        }
      }
    }
    if (auto it = binary_by_child2.find(q);
        it != binary_by_child2.end() && w.bad < 0) {
      for (size_t ti : it->second) {
        if (w.bad >= 0) break;
        const auto& t = nta.binary_transitions()[ti];
        auto pit = pairs_by_state.find(t.child1);
        if (pit == pairs_by_state.end()) continue;
        size_t n = pit->second.size();
        for (size_t k = 0; k < n && w.bad < 0; ++k) {
          int p1 = pit->second[k];
          ++w.transition_visits;
          intern(t.to,
                 dp.Binary(w.pairs[p1].second, dq, t.label, t.edge1, t.edge2),
                 Deriv{2, ti, p1, pi});
        }
      }
    }
  }
  return w;
}

/// Reconstructs the violating code from a walk's derivation records.
TreeCode BuildContainmentCode(const Nta& nta, int width,
                              const ContainmentWalk& w, int bad) {
  TreeCode code;
  code.width = width;
  std::function<int(int, int)> build = [&](int pi, int parent) -> int {
    const ContainmentWalk::Deriv& d = w.derivs[pi];
    int id = static_cast<int>(code.nodes.size());
    code.nodes.emplace_back();
    code.nodes[id].parent = parent;
    if (d.kind == 0) {
      const auto& t = nta.leaf_transitions()[d.trans];
      code.nodes[id].atoms.insert(t.label.begin(), t.label.end());
    } else if (d.kind == 1) {
      const auto& t = nta.unary_transitions()[d.trans];
      code.nodes[id].atoms.insert(t.label.begin(), t.label.end());
      int c = build(d.child1, id);
      code.nodes[id].children.push_back(c);
      code.nodes[id].edge_labels.push_back(t.edge);
    } else {
      const auto& t = nta.binary_transitions()[d.trans];
      code.nodes[id].atoms.insert(t.label.begin(), t.label.end());
      int c1 = build(d.child1, id);
      code.nodes[id].children.push_back(c1);
      code.nodes[id].edge_labels.push_back(t.edge1);
      int c2 = build(d.child2, id);
      code.nodes[id].children.push_back(c2);
      code.nodes[id].edge_labels.push_back(t.edge2);
    }
    return id;
  };
  build(bad, -1);
  return code;
}

}  // namespace

ContainmentResult DatalogContainedInUcq(const DatalogQuery& query,
                                        const UCQ& ucq,
                                        const ContainmentOptions& options) {
  ContainmentResult result;
  ForwardResult fwd = ApproximationAutomaton(query);
  const Nta& nta = fwd.automaton;

  if (options.antichain) {
    // Verdict from the pruned early-exit walk. On failure, the witness
    // comes from a second, unpruned early-exit walk: it interns the
    // identical pair prefix as the escape hatch's full fixpoint, so the
    // counterexample is byte-identical to the antichain-off route.
    UcqMatchAutomaton dp(ucq, fwd.width);
    ContainmentWalk w = RunContainmentWalk(nta, dp, /*prune=*/true,
                                           /*early_exit=*/true);
    result.pairs_explored = w.pairs.size();
    result.transition_visits = w.transition_visits;
    result.subsumption_prunes = w.subsumption_prunes;
    result.macrostates_visited = dp.num_states();
    if (w.bad < 0) {
      result.contained = true;
      return result;
    }
    UcqMatchAutomaton dp_witness(ucq, fwd.width);
    ContainmentWalk ww = RunContainmentWalk(nta, dp_witness, /*prune=*/false,
                                            /*early_exit=*/true);
    MONDET_CHECK(ww.bad >= 0);
    result.transition_visits += ww.transition_visits;
    result.counterexample = BuildContainmentCode(nta, fwd.width, ww, ww.bad);
    return result;
  }

  // Escape hatch: the pre-antichain full fixpoint plus lowest-id scan.
  UcqMatchAutomaton dp(ucq, fwd.width);
  ContainmentWalk w = RunContainmentWalk(nta, dp, /*prune=*/false,
                                         /*early_exit=*/false);
  result.pairs_explored = w.pairs.size();
  result.transition_visits = w.transition_visits;
  result.macrostates_visited = dp.num_states();

  // A counterexample: a final NTA state paired with a rejecting DP state.
  int bad = -1;
  for (size_t pi = 0; pi < w.pairs.size(); ++pi) {
    if (nta.finals().count(w.pairs[pi].first) &&
        !dp.Accepting(w.pairs[pi].second)) {
      bad = static_cast<int>(pi);
      break;
    }
  }
  if (bad < 0) {
    result.contained = true;
    return result;
  }
  result.counterexample = BuildContainmentCode(nta, fwd.width, w, bad);
  return result;
}

Thm5Result CheckCqOverDatalogViews(const CQ& query, const ViewSet& views,
                                   const ContainmentOptions& options) {
  MONDET_CHECK(query.free_vars().empty());
  const VocabularyPtr& vocab = query.vocab();

  // Q'' = Π_V ∪ { Goal'' ← V(Q) }: the views applied to Q's canonical
  // database, read back as a query over the view schema, with the view
  // definitions as rules.
  Instance canon = query.CanonicalDb();
  Instance image = views.Image(canon);
  Program program = views.CombinedProgram();
  PredId goal2 = vocab->AddPredicate("Thm5.Goal", 0);
  Rule goal_rule;
  for (size_t e = 0; e < canon.num_elements(); ++e) {
    goal_rule.var_names.push_back(canon.element_name(static_cast<ElemId>(e)));
  }
  goal_rule.head = QAtom(goal2, {});
  for (uint32_t fg = 0; fg < image.num_facts(); ++fg) {
    const FactView f = image.ViewAt(fg);
    goal_rule.body.push_back(
        QAtom(f.pred, std::vector<VarId>(f.args.begin(), f.args.end())));
  }
  program.AddRule(std::move(goal_rule));
  DatalogQuery q2(std::move(program), goal2);

  UCQ target(vocab);
  target.AddDisjunct(query);
  ContainmentResult contained = DatalogContainedInUcq(q2, target, options);

  Thm5Result out;
  out.determined = contained.contained;
  out.pairs_explored = contained.pairs_explored;
  out.transition_visits = contained.transition_visits;
  out.macrostates_visited = contained.macrostates_visited;
  out.subsumption_prunes = contained.subsumption_prunes;
  out.counterexample = std::move(contained.counterexample);
  return out;
}

}  // namespace mondet
