#include "core/backward.h"

#include <map>
#include <set>
#include <string>

#include "base/check.h"

namespace mondet {

namespace {

/// Shared builder state for emitting the backward-mapping rules.
class BackwardBuilder {
 public:
  BackwardBuilder(const Nta& nta, const std::vector<PredId>& schema_preds,
                  VocabularyPtr vocab, const std::string& prefix)
      : nta_(nta), vocab_(std::move(vocab)), program_(vocab_) {
    k_ = nta.width();
    adom_ = vocab_->AddPredicate(prefix + ".Adom", 1);
    goal_ = vocab_->AddPredicate(prefix + ".Goal", 0);
    for (State q = 0; q < nta_.num_states(); ++q) {
      state_pred_.push_back(
          vocab_->AddPredicate(prefix + ".P" + std::to_string(q), k_));
    }
    // Adom saturation: Adom(xi) ← R(x1..xn) for every schema predicate.
    for (PredId r : schema_preds) {
      int arity = vocab_->arity(r);
      for (int i = 0; i < arity; ++i) {
        Rule rule;
        std::vector<VarId> args;
        for (int j = 0; j < arity; ++j) {
          args.push_back(static_cast<VarId>(j));
        }
        for (int j = 0; j < arity; ++j) {
          rule.var_names.push_back("x" + std::to_string(j));
        }
        rule.head = QAtom(adom_, {static_cast<VarId>(i)});
        rule.body.push_back(QAtom(r, args));
        program_.AddRule(std::move(rule));
      }
    }
  }

  /// Emits the rule for one transition. `children` pairs each child state
  /// with its edge label.
  void EmitTransition(const NodeLabel& label, State to,
                      const std::vector<std::pair<State, const EdgeLabel*>>&
                          children) {
    Rule rule;
    // Head variables x_0..x_{k-1}.
    for (int i = 0; i < k_; ++i) {
      rule.var_names.push_back("x" + std::to_string(i));
    }
    std::vector<VarId> head_args;
    for (int i = 0; i < k_; ++i) head_args.push_back(static_cast<VarId>(i));
    rule.head = QAtom(state_pred_[to], head_args);
    // Adom(x_i) for all head variables.
    for (int i = 0; i < k_; ++i) {
      rule.body.push_back(QAtom(adom_, {static_cast<VarId>(i)}));
    }
    // Child state atoms with equalities applied by unification: child
    // position j equals head position i whenever s(i)=j.
    for (size_t c = 0; c < children.size(); ++c) {
      std::vector<VarId> child_args(k_, kNoElem);
      for (const auto& [pi, ci] : children[c].second->same) {
        child_args[ci] = static_cast<VarId>(pi);
      }
      for (int j = 0; j < k_; ++j) {
        if (child_args[j] == kNoElem) {
          child_args[j] = static_cast<VarId>(rule.var_names.size());
          rule.var_names.push_back("y" + std::to_string(c) + "_" +
                                   std::to_string(j));
        }
      }
      rule.body.push_back(QAtom(state_pred_[children[c].first], child_args));
    }
    // Atoms of the node label.
    for (const AtomLabel& a : label) {
      std::vector<VarId> args;
      for (int p : a.positions) args.push_back(static_cast<VarId>(p));
      rule.body.push_back(QAtom(a.pred, args));
    }
    program_.AddRule(std::move(rule));
  }

  DatalogQuery Finish() {
    for (State q : nta_.finals()) {
      Rule rule;
      std::vector<VarId> args;
      for (int i = 0; i < k_; ++i) {
        args.push_back(static_cast<VarId>(i));
        rule.var_names.push_back("x" + std::to_string(i));
      }
      rule.head = QAtom(goal_, {});
      rule.body.push_back(QAtom(state_pred_[q], args));
      program_.AddRule(std::move(rule));
    }
    return DatalogQuery(std::move(program_), goal_);
  }

 private:
  const Nta& nta_;
  VocabularyPtr vocab_;
  Program program_;
  int k_;
  PredId adom_;
  PredId goal_;
  std::vector<PredId> state_pred_;
};

}  // namespace

DatalogQuery BackwardMapping(const Nta& automaton,
                             const std::vector<PredId>& schema_preds,
                             const VocabularyPtr& vocab,
                             const std::string& name_prefix) {
  BackwardBuilder builder(automaton, schema_preds, vocab, name_prefix);
  for (const auto& t : automaton.leaf_transitions()) {
    builder.EmitTransition(t.label, t.to, {});
  }
  for (const auto& t : automaton.unary_transitions()) {
    builder.EmitTransition(t.label, t.to, {{t.child, &t.edge}});
  }
  for (const auto& t : automaton.binary_transitions()) {
    builder.EmitTransition(t.label, t.to,
                           {{t.child1, &t.edge1}, {t.child2, &t.edge2}});
  }
  return builder.Finish();
}

namespace {

/// Builder for the frontier-one (MDL) variant.
class MdlBackwardBuilder {
 public:
  MdlBackwardBuilder(const Nta& nta, const std::vector<PredId>& schema_preds,
                     VocabularyPtr vocab, const std::string& prefix)
      : nta_(nta), vocab_(std::move(vocab)), program_(vocab_) {
    adom_ = vocab_->AddPredicate(prefix + ".Adom", 1);
    goal_ = vocab_->AddPredicate(prefix + ".Goal", 0);
    for (State q = 0; q < nta_.num_states(); ++q) {
      state_pred_.push_back(
          vocab_->AddPredicate(prefix + ".P" + std::to_string(q), 1));
    }
    for (PredId r : schema_preds) {
      int arity = vocab_->arity(r);
      for (int i = 0; i < arity; ++i) {
        Rule rule;
        std::vector<VarId> args;
        for (int j = 0; j < arity; ++j) {
          args.push_back(static_cast<VarId>(j));
          rule.var_names.push_back("x" + std::to_string(j));
        }
        rule.head = QAtom(adom_, {static_cast<VarId>(i)});
        rule.body.push_back(QAtom(r, args));
        program_.AddRule(std::move(rule));
      }
    }
  }

  void EmitTransition(
      const NodeLabel& label, State to,
      const std::vector<std::pair<State, const EdgeLabel*>>& children) {
    // Collect the positions this rule actually constrains.
    std::set<int> used{0};
    for (const AtomLabel& a : label) {
      used.insert(a.positions.begin(), a.positions.end());
    }
    std::vector<int> child_pos;
    for (const auto& [child, edge] : children) {
      (void)child;
      MONDET_CHECK(edge->same.size() == 1);
      MONDET_CHECK(edge->same[0].second == 0);  // child frontier at 0
      used.insert(edge->same[0].first);
      child_pos.push_back(edge->same[0].first);
    }
    Rule rule;
    std::map<int, VarId> var_of;
    for (int p : used) {
      var_of[p] = static_cast<VarId>(rule.var_names.size());
      rule.var_names.push_back("x" + std::to_string(p));
    }
    rule.head = QAtom(state_pred_[to], {var_of.at(0)});
    for (int p : used) {
      rule.body.push_back(QAtom(adom_, {var_of.at(p)}));
    }
    for (size_t c = 0; c < children.size(); ++c) {
      rule.body.push_back(
          QAtom(state_pred_[children[c].first], {var_of.at(child_pos[c])}));
    }
    for (const AtomLabel& a : label) {
      std::vector<VarId> args;
      for (int p : a.positions) args.push_back(var_of.at(p));
      rule.body.push_back(QAtom(a.pred, args));
    }
    program_.AddRule(std::move(rule));
  }

  DatalogQuery Finish() {
    for (State q : nta_.finals()) {
      Rule rule;
      rule.var_names.push_back("x");
      rule.head = QAtom(goal_, {});
      rule.body.push_back(QAtom(state_pred_[q], {0}));
      program_.AddRule(std::move(rule));
    }
    return DatalogQuery(std::move(program_), goal_);
  }

 private:
  const Nta& nta_;
  VocabularyPtr vocab_;
  Program program_;
  PredId adom_;
  PredId goal_;
  std::vector<PredId> state_pred_;
};

}  // namespace

DatalogQuery BackwardMappingMdl(const Nta& automaton,
                                const std::vector<PredId>& schema_preds,
                                const VocabularyPtr& vocab,
                                const std::string& name_prefix) {
  MdlBackwardBuilder builder(automaton, schema_preds, vocab, name_prefix);
  for (const auto& t : automaton.leaf_transitions()) {
    builder.EmitTransition(t.label, t.to, {});
  }
  for (const auto& t : automaton.unary_transitions()) {
    builder.EmitTransition(t.label, t.to, {{t.child, &t.edge}});
  }
  for (const auto& t : automaton.binary_transitions()) {
    builder.EmitTransition(t.label, t.to,
                           {{t.child1, &t.edge1}, {t.child2, &t.edge2}});
  }
  return builder.Finish();
}

}  // namespace mondet
