#include "core/forward.h"

#include <algorithm>
#include <map>
#include <set>
#include <unordered_set>

#include "base/check.h"

namespace mondet {

DatalogQuery LimitIdbAtomsPerRule(const DatalogQuery& query, int max_idb) {
  MONDET_CHECK(max_idb >= 1);
  const Program& prog = query.program;
  VocabularyPtr vocab = prog.vocab();
  Program out(vocab);
  int aux_counter = 0;
  // Iterate to a fixpoint: each pass folds the tail of over-full rules.
  std::vector<Rule> worklist(prog.rules().begin(), prog.rules().end());
  // IDB predicates: the original program's plus the fold auxiliaries
  // introduced below (a folded rule can need further folding).
  std::unordered_set<PredId> idbs(prog.Idbs().begin(), prog.Idbs().end());
  auto is_idb = [&idbs](PredId p) { return idbs.count(p) > 0; };
  while (!worklist.empty()) {
    Rule rule = std::move(worklist.back());
    worklist.pop_back();
    std::vector<int> idb_atoms;
    for (int i = 0; i < static_cast<int>(rule.body.size()); ++i) {
      if (is_idb(rule.body[i].pred)) idb_atoms.push_back(i);
    }
    if (static_cast<int>(idb_atoms.size()) <= max_idb) {
      out.AddRule(std::move(rule));
      continue;
    }
    // Fold the last two IDB atoms into a fresh auxiliary predicate whose
    // arguments are the union of their variables.
    int i1 = idb_atoms[idb_atoms.size() - 2];
    int i2 = idb_atoms[idb_atoms.size() - 1];
    std::vector<VarId> aux_vars;
    for (VarId v : rule.body[i1].args) {
      if (std::find(aux_vars.begin(), aux_vars.end(), v) == aux_vars.end()) {
        aux_vars.push_back(v);
      }
    }
    for (VarId v : rule.body[i2].args) {
      if (std::find(aux_vars.begin(), aux_vars.end(), v) == aux_vars.end()) {
        aux_vars.push_back(v);
      }
    }
    PredId aux = vocab->AddPredicate(
        "Fold" + std::to_string(aux_counter++) + "." +
            vocab->name(query.goal),
        static_cast<int>(aux_vars.size()));
    idbs.insert(aux);
    // Auxiliary rule: Aux(vars) ← I1, I2 (variables renumbered densely).
    Rule aux_rule;
    std::map<VarId, VarId> remap;
    auto mapped = [&](VarId v) {
      auto it = remap.find(v);
      if (it != remap.end()) return it->second;
      VarId nv = static_cast<VarId>(aux_rule.var_names.size());
      aux_rule.var_names.push_back(rule.var_names[v]);
      remap.emplace(v, nv);
      return nv;
    };
    std::vector<VarId> aux_head;
    for (VarId v : aux_vars) aux_head.push_back(mapped(v));
    aux_rule.head = QAtom(aux, aux_head);
    for (int i : {i1, i2}) {
      std::vector<VarId> args;
      for (VarId v : rule.body[i].args) args.push_back(mapped(v));
      aux_rule.body.push_back(QAtom(rule.body[i].pred, args));
    }
    // This auxiliary rule is final (exactly two IDB atoms when max_idb>=2,
    // or refolded later since aux preds count as IDB in `out`)…
    // Replace the two atoms with the auxiliary atom in the original rule.
    Rule folded = rule;
    std::vector<QAtom> new_body;
    for (int i = 0; i < static_cast<int>(folded.body.size()); ++i) {
      if (i == i1) {
        new_body.push_back(QAtom(aux, aux_vars));
      } else if (i != i2) {
        new_body.push_back(folded.body[i]);
      }
    }
    folded.body = std::move(new_body);
    worklist.push_back(std::move(folded));
    out.AddRule(std::move(aux_rule));
  }
  return DatalogQuery(std::move(out), query.goal);
}

ForwardResult ApproximationAutomaton(const DatalogQuery& query_in) {
  DatalogQuery query = LimitIdbAtomsPerRule(query_in, 2);
  const Program& prog = query.program;

  // Canonical bag order per rule: deduplicated head variables first, then
  // remaining variables ascending. Only variables that occur in the rule
  // participate.
  std::vector<std::vector<VarId>> bag_order;
  int width = 0;
  for (const Rule& rule : prog.rules()) {
    std::vector<VarId> order;
    for (VarId v : rule.head.args) {
      if (std::find(order.begin(), order.end(), v) == order.end()) {
        order.push_back(v);
      }
    }
    for (VarId v = 0; v < rule.num_vars(); ++v) {
      bool used = false;
      for (const QAtom& a : rule.body) {
        for (VarId av : a.args) used = used || av == v;
      }
      for (VarId hv : rule.head.args) used = used || hv == v;
      if (used &&
          std::find(order.begin(), order.end(), v) == order.end()) {
        order.push_back(v);
      }
    }
    width = std::max(width, static_cast<int>(order.size()));
    bag_order.push_back(std::move(order));
  }

  // Sanity requirements for the standard-code construction.
  for (const Rule& rule : prog.rules()) {
    std::set<VarId> head_set(rule.head.args.begin(), rule.head.args.end());
    MONDET_CHECK(head_set.size() == rule.head.args.size());
    for (const QAtom& a : rule.body) {
      if (!prog.IsIdb(a.pred)) continue;
      std::set<VarId> args(a.args.begin(), a.args.end());
      MONDET_CHECK(args.size() == a.args.size());
    }
  }

  Nta nta(width);
  // One state per IDB predicate: "this subtree derives P with P's head
  // variables at positions 0..arity-1 of its root bag".
  std::map<PredId, State> state_of;
  for (PredId p : prog.Idbs()) state_of[p] = nta.AddState();
  nta.AddFinal(state_of.at(query.goal));

  for (size_t ri = 0; ri < prog.rules().size(); ++ri) {
    const Rule& rule = prog.rules()[ri];
    const std::vector<VarId>& order = bag_order[ri];
    auto pos_of = [&](VarId v) {
      for (size_t i = 0; i < order.size(); ++i) {
        if (order[i] == v) return static_cast<int>(i);
      }
      MONDET_CHECK(false);
      return -1;
    };
    NodeLabel label;
    std::vector<const QAtom*> idb_atoms;
    for (const QAtom& a : rule.body) {
      if (prog.IsIdb(a.pred)) {
        idb_atoms.push_back(&a);
        continue;
      }
      AtomLabel al;
      al.pred = a.pred;
      for (VarId v : a.args) al.positions.push_back(pos_of(v));
      label.insert(std::move(al));
    }
    auto edge_for = [&](const QAtom& atom) {
      // Child bag starts with the child's head variables at positions
      // 0..arity-1, matching atom argument order.
      EdgeLabel edge;
      for (size_t i = 0; i < atom.args.size(); ++i) {
        edge.same.emplace_back(pos_of(atom.args[i]), static_cast<int>(i));
      }
      std::sort(edge.same.begin(), edge.same.end());
      return edge;
    };
    State head = state_of.at(rule.head.pred);
    MONDET_CHECK(idb_atoms.size() <= 2);
    if (idb_atoms.empty()) {
      nta.AddLeaf(label, head);
    } else if (idb_atoms.size() == 1) {
      nta.AddUnary(label, edge_for(*idb_atoms[0]),
                   state_of.at(idb_atoms[0]->pred), head);
    } else {
      nta.AddBinary(label, edge_for(*idb_atoms[0]), edge_for(*idb_atoms[1]),
                    state_of.at(idb_atoms[0]->pred),
                    state_of.at(idb_atoms[1]->pred), head);
    }
  }
  return ForwardResult{std::move(nta), width, std::move(bag_order)};
}

}  // namespace mondet
