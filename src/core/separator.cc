#include "core/separator.h"

#include <functional>
#include <map>
#include <optional>

#include "base/check.h"
#include "base/homomorphism.h"
#include "base/stats.h"
#include "datalog/approximation.h"
#include "datalog/eval.h"
#include "datalog/eval_plan.h"

namespace mondet {

namespace {

/// Applies an element-merging map to an instance (quotient).
Instance Quotient(const Instance& inst, const std::vector<ElemId>& to_class,
                  size_t num_classes) {
  Instance out(inst.vocab());
  out.EnsureElements(num_classes);
  for (uint32_t fg = 0; fg < inst.num_facts(); ++fg) {
    const FactView f = inst.ViewAt(fg);
    std::vector<ElemId> args;
    args.reserve(f.args.size());
    for (ElemId a : f.args) args.push_back(to_class[a]);
    out.AddFact(f.pred, args);
  }
  return out;
}

/// Enumerates set partitions of {0..n-1} as class-assignment vectors
/// (restricted growth strings); callback returns false to stop.
bool EnumeratePartitions(size_t n, size_t cap,
                         const std::function<bool(const std::vector<ElemId>&,
                                                  size_t)>& cb) {
  std::vector<ElemId> assign(n, 0);
  size_t count = 0;
  std::function<bool(size_t, size_t)> rec = [&](size_t i,
                                                size_t used) -> bool {
    if (i == n) {
      if (++count > cap) return false;
      return cb(assign, used);
    }
    for (ElemId c = 0; c <= used && c <= i; ++c) {
      assign[i] = c;
      if (!rec(i + 1, std::max<size_t>(used, c + 1))) return false;
    }
    return true;
  };
  if (n == 0) return cb(assign, 0);
  return rec(0, 0);
}

}  // namespace

bool NpSeparatorAccepts(const DatalogQuery& query, const ViewSet& views,
                        const Instance& j, int expansion_depth,
                        size_t max_expansions, size_t max_quotients) {
  bool accepted = false;
  EnumerateExpansions(
      query, expansion_depth, max_expansions, [&](const Expansion& e) {
        EnumeratePartitions(
            e.inst.num_elements(), max_quotients,
            [&](const std::vector<ElemId>& assign, size_t classes) {
              Instance x = Quotient(e.inst, assign, classes);
              // Quotients are enumerated by the thousand and each image
              // eval is µs-scale: per-instance dataflow analysis off.
              EvalOptions img_opts;
              img_opts.dataflow_prune = false;
              Instance image = views.Image(x, nullptr, img_opts);
              // V(X) ⊆ J up to a homomorphism matching J's elements:
              // check the image maps into J as an instance.
              if (HasHomomorphism(image, j)) {
                accepted = true;
                return false;
              }
              return true;
            });
        return !accepted;
      });
  return accepted;
}

bool ChaseSeparatorAccepts(const DatalogQuery& query, const ViewSet& views,
                           const Instance& j, int view_depth,
                           size_t max_choices) {
  const VocabularyPtr& vocab = query.program.vocab();
  // The query program runs on every chase witness; compile it once.
  CompiledProgram compiled_query(query.program);
  // Pre-enumerate expansions of each view definition.
  std::map<PredId, std::vector<Expansion>> view_exps;
  for (const View& v : views.views()) {
    std::vector<Expansion> exps;
    EnumeratePredExpansions(v.definition.program, v.definition.goal,
                            view_depth, max_choices,
                            [&](const Expansion& e) {
                              exps.push_back(e);
                              return true;
                            });
    view_exps[v.pred] = std::move(exps);
  }
  size_t nfacts = j.num_facts();
  std::vector<const Expansion*> choice(nfacts, nullptr);
  size_t tried = 0;
  bool all_hold = true;
  std::optional<Stats> chase_stats;
  std::function<bool(size_t)> descend = [&](size_t fi) -> bool {
    if (tried >= max_choices) return false;
    if (fi == nfacts) {
      ++tried;
      Instance dprime(vocab);
      dprime.EnsureElements(j.num_elements());
      for (uint32_t i = 0; i < nfacts; ++i) {
        const FactView fact = j.ViewAt(i);
        const Expansion& exp = *choice[i];
        std::vector<ElemId> map(exp.inst.num_elements(), kNoElem);
        bool ok = true;
        for (size_t p = 0; p < exp.frontier.size(); ++p) {
          ElemId from = exp.frontier[p];
          if (map[from] != kNoElem && map[from] != fact.args[p]) ok = false;
          map[from] = fact.args[p];
        }
        if (!ok) return true;  // unbuildable choice; skip
        for (ElemId e = 0; e < exp.inst.num_elements(); ++e) {
          if (map[e] == kNoElem) map[e] = dprime.AddElement();
        }
        for (uint32_t fg = 0; fg < exp.inst.num_facts(); ++fg) {
          const FactView f = exp.inst.ViewAt(fg);
          std::vector<ElemId> args;
          for (ElemId a : f.args) args.push_back(map[a]);
          dprime.AddFact(f.pred, args);
        }
      }
      // Every chase witness assembles the same view expansions over J's
      // facts; statistics from the first one describe them all, and the
      // snapshot spares the remaining Evals their own live collection
      // (stale stats are correct by construction).
      if (!chase_stats) chase_stats = Stats::Collect(dprime);
      EvalOptions eopts;
      eopts.stats = &*chase_stats;
      // Same trade as the stats snapshot: one chase runs many µs-scale
      // evals, too small to amortize per-instance dataflow analysis.
      eopts.dataflow_prune = false;
      if (compiled_query.Eval(dprime, nullptr, eopts)
              .NumRows(query.goal) == 0) {
        all_hold = false;
        return false;
      }
      return true;
    }
    const auto& options = view_exps.at(j.ViewAt(static_cast<uint32_t>(fi)).pred);
    if (options.empty()) return true;  // no inverse within bound: skip fact
    for (const Expansion& e : options) {
      choice[fi] = &e;
      if (!descend(fi + 1)) return false;
    }
    return true;
  };
  descend(0);
  return all_hold;
}

}  // namespace mondet
