#ifndef MONDET_CORE_REWRITING_H_
#define MONDET_CORE_REWRITING_H_

#include <optional>
#include <vector>

#include "analysis/diagnostic.h"
#include "cq/ucq.h"
#include "datalog/program.h"
#include "views/view_set.h"

namespace mondet {

/// Prop. 8's "degenerate forward–backward" rewriting: V(Q), the view image
/// of Q's canonical database read back as a CQ over the view schema, with
/// free variables the images of Q's free variables. If Q is monotonically
/// determined by V, this is a CQ rewriting. Returns nullopt when a free
/// variable of Q does not occur in the image (unsafe rewriting).
std::optional<CQ> SimpleCqRewriting(const CQ& query, const ViewSet& views);

/// Prop. 8(b): per-disjunct application of SimpleCqRewriting.
std::optional<UCQ> SimpleUcqRewriting(const UCQ& query, const ViewSet& views);

/// Composes a rewriting R over the view schema with the view definitions:
/// the result is a Datalog query over the base schema, equivalent to
/// evaluating R on V(I). Used to machine-verify rewritings by equivalence
/// checks and instance sweeps.
DatalogQuery ComposeWithViews(const DatalogQuery& rewriting,
                              const ViewSet& views);

/// Checks Q(I) == R(V(I)) on one instance (Boolean queries).
bool RewritingAgreesOn(const DatalogQuery& query, const DatalogQuery& rewriting,
                       const ViewSet& views, const Instance& inst);

/// As RewritingAgreesOn, but non-Boolean inputs yield nullopt with a
/// "query-not-boolean" diagnostic appended to `diags` (may be null)
/// instead of aborting.
std::optional<bool> TryRewritingAgreesOn(const DatalogQuery& query,
                                         const DatalogQuery& rewriting,
                                         const ViewSet& views,
                                         const Instance& inst,
                                         std::vector<Diagnostic>* diags);

}  // namespace mondet

#endif  // MONDET_CORE_REWRITING_H_
