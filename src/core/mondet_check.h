#ifndef MONDET_CORE_MONDET_CHECK_H_
#define MONDET_CORE_MONDET_CHECK_H_

#include <optional>
#include <vector>

#include "analysis/analyzer.h"
#include "datalog/approximation.h"
#include "datalog/program.h"
#include "tree/code.h"
#include "views/view_set.h"

namespace mondet {

/// Outcome of a monotonic-determinacy check.
enum class Verdict {
  /// Every canonical test succeeds and the search space was exhausted:
  /// Q is monotonically determined over V.
  kDetermined,
  /// A failing canonical test was found: Q is NOT monotonically determined.
  kNotDetermined,
  /// All tests within the bounds succeeded but the enumeration was not
  /// exhaustive (recursive query/views or caps hit): no counterexample up
  /// to the bounds.
  kUnknownBounded,
  /// The inputs fail a precondition (non-Boolean query, vocabulary
  /// mismatch, required fragment violated): see MonDetResult::diagnostics
  /// for the witnesses. No tests were run.
  kInvalidInput,
};

/// A failing canonical test (Qi, D'): the approximation satisfies Q, its
/// inverse-expanded view image D' does not (Lemma 5).
struct FailingTest {
  Expansion approximation;
  Instance dprime;

  FailingTest(Expansion a, Instance d)
      : approximation(std::move(a)), dprime(std::move(d)) {}
};

struct MonDetOptions {
  /// Expansion depth for the query's CQ approximations.
  int query_depth = 4;
  /// Expansion depth for the view definitions during inverse application.
  int view_depth = 4;
  /// Cap on the number of query approximations considered.
  size_t max_query_expansions = 500;
  /// Cap on the number of D' instances per approximation.
  size_t max_tests_per_expansion = 2000;
  /// Table 2 preconditions: when set, the query/views must lie in the
  /// given fragment or the check returns kInvalidInput with the analyzer's
  /// witnesses instead of running (e.g. kFrontierGuarded for the Thm 4
  /// rows).
  std::optional<Fragment> require_query_fragment;
  std::optional<Fragment> require_view_fragment;
  /// Worker threads for the D'-test fan-out. 0 = the MONDET_THREADS
  /// environment variable, falling back to hardware concurrency
  /// (ResolveEvalThreads). The result — verdict, counterexample,
  /// tests_run, expansions_tried — is identical for every thread count.
  int num_threads = 0;
  /// Canonical-form deduplication: run each D' isomorphism type once
  /// (CanonicalTestCache) and memoize ViewSet::Image per expansion type.
  /// On or off, the result is bit-identical; only the work differs. Off by
  /// default: the canonical hash costs ~O(|D'| log |D'|) per test, which
  /// only pays off when per-test evaluation dominates it (deep recursive
  /// queries, large D'). On the Table 2 gadget families evaluation is a
  /// few µs per test and the hash is pure overhead — see
  /// docs/EVALUATION.md for measured crossover numbers.
  bool test_cache = false;
};

struct MonDetResult {
  Verdict verdict = Verdict::kUnknownBounded;
  std::optional<FailingTest> failure;
  size_t tests_run = 0;
  size_t expansions_tried = 0;
  /// Canonical test-cache traffic (both 0 when MonDetOptions::test_cache
  /// is off). Unlike the counters above these are NOT deterministic
  /// across thread counts: concurrent misses on one isomorphism type may
  /// each compute before either stores.
  size_t cache_hits = 0;
  size_t cache_misses = 0;
  /// Precondition violations when verdict == kInvalidInput.
  std::vector<Diagnostic> diagnostics;
};

/// The canonical-test procedure of Lemma 5: enumerates tests (Qi, D') and
/// evaluates Q on each D'. Sound refuter for all of Datalog; exact decision
/// when query and views are non-recursive and the bounds cover every
/// expansion (in particular: the NP-complete CQ/CQ case of [21] and the
/// Πp2 UCQ/UCQ case). The query must be Boolean.
MonDetResult CheckMonotonicDeterminacy(const DatalogQuery& query,
                                       const ViewSet& views,
                                       const MonDetOptions& options = {});

/// Options for the Datalog ⊑ UCQ containment walk (and hence Thm 5).
struct ContainmentOptions {
  /// Antichain subsumption pruning over the (NTA state, DP state) search:
  /// a new pair whose match sets contain an already-visited pair's for
  /// the same NTA state is discarded — DP transitions are monotone in
  /// match-set inclusion and rejection is downward closed, so a
  /// counterexample reachable through the pruned pair is also reachable
  /// through the kept one. Verdicts and counterexamples are bit-identical
  /// on or off (only the work counters differ; on failure an unpruned
  /// early-exit pass re-derives the exact witness the escape hatch
  /// produces). Off = the pre-antichain full fixpoint, kept as the
  /// explicit escape hatch for differential testing.
  bool antichain = true;
};

/// Exact decision for a Boolean CQ query over arbitrary Datalog views
/// (Thm 5, 2ExpTime): builds Q'' = Π_V ∪ {Goal'' ← V(Q)} and decides the
/// Datalog-in-CQ containment Q'' ⊑ Q via the approximation automaton
/// (Prop. 3) intersected with the complement of the CQ-match evaluator.
/// Returns a witness expansion of Q'' violating Q when not determined.
struct Thm5Result {
  bool determined = false;
  /// Number of (NTA state, DP state) pairs explored (2ExpTime witness).
  size_t pairs_explored = 0;
  /// Transition applications performed by the containment fixpoint.
  size_t transition_visits = 0;
  /// Distinct DP macrostates materialized by the verdict pass; comparable
  /// across antichain on/off (the explicit route interns every reachable
  /// one, the antichain route only what survives pruning).
  size_t macrostates_visited = 0;
  /// Pairs discarded by the antichain prune (0 with antichain off). Like
  /// the counters above this is work accounting, not part of the
  /// bit-identical contract.
  size_t subsumption_prunes = 0;
  std::optional<TreeCode> counterexample;
};
Thm5Result CheckCqOverDatalogViews(const CQ& query, const ViewSet& views,
                                   const ContainmentOptions& options = {});

/// Decides Datalog ⊑ UCQ containment (Chaudhuri–Vardi style) exactly:
/// true iff every CQ approximation of `query` satisfies `ucq`. Both
/// Boolean. Exposed because Thm 5 reduces to it; also used by Prop. 9's
/// reductions. Returns a violating code when not contained.
struct ContainmentResult {
  bool contained = false;
  size_t pairs_explored = 0;
  /// Transition applications performed while reaching the fixpoint: one
  /// per (transition, pair) for unary and one per (transition, pair,
  /// partner pair) for binary transitions. The worklist fixpoint visits
  /// each combination O(1) times; the naive re-scan visited them once per
  /// round.
  size_t transition_visits = 0;
  /// Distinct DP macrostates materialized by the verdict pass (see
  /// Thm5Result::macrostates_visited).
  size_t macrostates_visited = 0;
  /// Pairs discarded by the antichain prune (0 with antichain off).
  size_t subsumption_prunes = 0;
  std::optional<TreeCode> counterexample;
};
ContainmentResult DatalogContainedInUcq(const DatalogQuery& query,
                                        const UCQ& ucq,
                                        const ContainmentOptions& options = {});

}  // namespace mondet

#endif  // MONDET_CORE_MONDET_CHECK_H_
