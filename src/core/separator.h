#ifndef MONDET_CORE_SEPARATOR_H_
#define MONDET_CORE_SEPARATOR_H_

#include "datalog/program.h"
#include "views/view_set.h"

namespace mondet {

/// Separators (Sec. 2 / Sec. 7): functions over view-schema instances that
/// agree with Q ∘ V^{-1} on view images. Rewritings are separators in a
/// logic; these are the complexity-theoretic ones the paper discusses.

/// The NP separator for (bounded) Datalog queries over views: accepts J
/// iff some quotient of some CQ approximation of Q (depth-bounded) has its
/// view image contained in J — the "small preimage" guess. Exact on view
/// images of instances whose witnessing expansions fit the bounds.
bool NpSeparatorAccepts(const DatalogQuery& query, const ViewSet& views,
                        const Instance& j, int expansion_depth,
                        size_t max_expansions = 200,
                        size_t max_quotients = 2000);

/// The co-NP-style separator via chasing with inverse view rules: J is
/// expanded into base instances by replacing every J-fact with a choice of
/// view-definition expansion over fresh nulls; accepts iff Q holds under
/// EVERY choice (a failing choice is the co-NP refutation certificate).
/// For CQ views there is exactly one choice and this is the PTime
/// certain-answer separator.
bool ChaseSeparatorAccepts(const DatalogQuery& query, const ViewSet& views,
                           const Instance& j, int view_depth,
                           size_t max_choices = 5000);

}  // namespace mondet

#endif  // MONDET_CORE_SEPARATOR_H_
