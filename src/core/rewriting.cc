#include "core/rewriting.h"

#include "base/check.h"
#include "datalog/eval.h"

namespace mondet {

std::optional<CQ> SimpleCqRewriting(const CQ& query, const ViewSet& views) {
  Instance canon = query.CanonicalDb();
  Instance image = views.Image(canon);
  CQ out(query.vocab());
  // One variable per canonical element (some may end up unused).
  for (size_t e = 0; e < canon.num_elements(); ++e) {
    out.AddVar(canon.element_name(static_cast<ElemId>(e)));
  }
  std::vector<bool> used(canon.num_elements(), false);
  for (uint32_t fg = 0; fg < image.num_facts(); ++fg) {
    const FactView f = image.ViewAt(fg);
    out.AddAtom(f.pred, std::vector<VarId>(f.args.begin(), f.args.end()));
    for (ElemId a : f.args) used[a] = true;
  }
  std::vector<VarId> frees;
  for (VarId v : query.free_vars()) {
    if (!used[v]) return std::nullopt;  // unsafe: free var not in image
    frees.push_back(v);
  }
  out.SetFreeVars(frees);
  return out;
}

std::optional<UCQ> SimpleUcqRewriting(const UCQ& query, const ViewSet& views) {
  UCQ out(query.vocab());
  for (const CQ& d : query.disjuncts()) {
    auto r = SimpleCqRewriting(d, views);
    if (!r) return std::nullopt;
    out.AddDisjunct(std::move(*r));
  }
  return out;
}

DatalogQuery ComposeWithViews(const DatalogQuery& rewriting,
                              const ViewSet& views) {
  Program program = views.CombinedProgram();
  program.AddRules(rewriting.program);
  return DatalogQuery(std::move(program), rewriting.goal);
}

std::optional<bool> TryRewritingAgreesOn(const DatalogQuery& query,
                                         const DatalogQuery& rewriting,
                                         const ViewSet& views,
                                         const Instance& inst,
                                         std::vector<Diagnostic>* diags) {
  bool ok = true;
  auto require_boolean = [&](const DatalogQuery& q, const char* what) {
    if (q.arity() == 0) return;
    ok = false;
    if (diags) {
      diags->push_back(MakeDiagnostic(
          Severity::kError, "query-not-boolean",
          std::string(what) + " goal " + q.program.vocab()->name(q.goal) +
              " has arity " + std::to_string(q.arity()) +
              "; instance-sweep verification needs Boolean queries"));
    }
  };
  require_boolean(query, "query");
  require_boolean(rewriting, "rewriting");
  if (!ok) return std::nullopt;
  bool q = DatalogHoldsOn(query, inst);
  bool r = DatalogHoldsOn(rewriting, views.Image(inst));
  return q == r;
}

bool RewritingAgreesOn(const DatalogQuery& query,
                       const DatalogQuery& rewriting, const ViewSet& views,
                       const Instance& inst) {
  std::optional<bool> agreed =
      TryRewritingAgreesOn(query, rewriting, views, inst, nullptr);
  MONDET_CHECK(agreed.has_value());
  return *agreed;
}

}  // namespace mondet
