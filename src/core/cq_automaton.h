#ifndef MONDET_CORE_CQ_AUTOMATON_H_
#define MONDET_CORE_CQ_AUTOMATON_H_

#include <map>
#include <vector>

#include "automata/nta.h"
#include "cq/cq.h"
#include "cq/ucq.h"

namespace mondet {

/// A deterministic bottom-up evaluator deciding whether a Boolean CQ
/// embeds homomorphically into the decoding D(T) of a tree code, one node
/// at a time. This realizes the "recognizing" direction of the paper's
/// forward machinery (Props. 4/6 for the nonrecursive case) without
/// materializing the doubly-exponential transition table: transitions are
/// computed on demand and states are interned.
///
/// A DP state is a set of matches (A, h), where A is the set of CQ atoms
/// already witnessed in the subtree and h places every variable that some
/// unsatisfied atom still needs at a bag position (matches whose needed
/// variables fall out of scope are dropped — such embeddings can never
/// complete above).
class CqMatchAutomaton {
 public:
  using DpState = uint32_t;

  /// The CQ must be Boolean (no free variables) and have at most 64 atoms.
  CqMatchAutomaton(const CQ& cq, int width);

  DpState Leaf(const NodeLabel& label);
  DpState Unary(DpState child, const NodeLabel& label, const EdgeLabel& edge);
  DpState Binary(DpState child1, DpState child2, const NodeLabel& label,
                 const EdgeLabel& edge1, const EdgeLabel& edge2);

  /// True iff some match has witnessed every atom (the CQ holds on the
  /// decoded instance of the subtree).
  bool Accepting(DpState state) const;

  /// True iff s's match set is a subset of t's. Leaf/Unary/Binary are
  /// monotone in this order and Accepting is upward closed along it, so
  /// rejection propagates downward — the partial order the antichain
  /// prune of DatalogContainedInUcq relies on.
  bool SubsetOf(DpState s, DpState t) const;

  size_t num_states() const { return states_.size(); }

 private:
  // One match: satisfied-atom bitmask + position per variable
  // (kUnseen = not yet placed, otherwise a bag position).
  static constexpr int8_t kUnseen = -1;
  struct Match {
    uint64_t atoms = 0;
    std::vector<int8_t> pos;

    bool operator<(const Match& o) const {
      if (atoms != o.atoms) return atoms < o.atoms;
      return pos < o.pos;
    }
    bool operator==(const Match& o) const {
      return atoms == o.atoms && pos == o.pos;
    }
  };
  using MatchSet = std::vector<Match>;  // sorted, unique

  const CQ cq_;
  int width_;
  uint64_t all_atoms_;
  std::map<MatchSet, DpState> intern_;
  std::vector<MatchSet> states_;
  std::vector<bool> accepting_;

  DpState Intern(MatchSet set);
  /// Drops need-tracking for variables whose atoms are all satisfied and
  /// kills matches whose needed variables are unplaced forever.
  bool Canonicalize(Match* m) const;  // false = match dead (never here)
  /// Lifts a match through an edge label (child -> parent positions);
  /// false if a needed variable's element does not survive.
  bool Lift(const EdgeLabel& edge, Match* m) const;
  /// Closes a match set under satisfying atoms at a node with `label`.
  void Saturate(const NodeLabel& label, MatchSet* set) const;
  static void InsertMatch(MatchSet* set, Match m);
};

/// Disjunction of CqMatchAutomaton runs (accepts iff any disjunct embeds).
class UcqMatchAutomaton {
 public:
  using DpState = uint32_t;

  UcqMatchAutomaton(const UCQ& ucq, int width);

  DpState Leaf(const NodeLabel& label);
  DpState Unary(DpState child, const NodeLabel& label, const EdgeLabel& edge);
  DpState Binary(DpState child1, DpState child2, const NodeLabel& label,
                 const EdgeLabel& edge1, const EdgeLabel& edge2);
  bool Accepting(DpState state) const;

  /// Componentwise CqMatchAutomaton::SubsetOf over the disjunct tuple.
  bool SubsetOf(DpState s, DpState t) const;

  /// Distinct DP states interned so far (macrostates materialized).
  size_t num_states() const { return states_.size(); }

 private:
  std::vector<CqMatchAutomaton> parts_;
  std::map<std::vector<uint32_t>, DpState> intern_;
  std::vector<std::vector<uint32_t>> states_;

  DpState Intern(std::vector<uint32_t> tuple);
};

}  // namespace mondet

#endif  // MONDET_CORE_CQ_AUTOMATON_H_
