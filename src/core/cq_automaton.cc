#include "core/cq_automaton.h"

#include <algorithm>
#include <set>

#include "base/check.h"

namespace mondet {

namespace {
constexpr int8_t kGone = -2;
}  // namespace

CqMatchAutomaton::CqMatchAutomaton(const CQ& cq, int width)
    : cq_(cq), width_(width) {
  MONDET_CHECK(cq_.free_vars().empty());
  MONDET_CHECK(cq_.atoms().size() <= 64);
  MONDET_CHECK(width_ <= 120);
  all_atoms_ = cq_.atoms().size() == 64
                   ? ~uint64_t{0}
                   : ((uint64_t{1} << cq_.atoms().size()) - 1);
}

bool CqMatchAutomaton::Canonicalize(Match* m) const {
  // Dead if some unsatisfied atom mentions a Gone variable: that atom's
  // witness bag can never materialize above this subtree.
  for (size_t ai = 0; ai < cq_.atoms().size(); ++ai) {
    if (m->atoms & (uint64_t{1} << ai)) continue;
    for (VarId v : cq_.atoms()[ai].args) {
      if (m->pos[v] == kGone) return false;
    }
  }
  return true;
}

bool CqMatchAutomaton::Lift(const EdgeLabel& edge, Match* m) const {
  // child position -> parent position
  std::vector<int8_t> to_parent(width_, kGone);
  for (const auto& [pi, ci] : edge.same) {
    to_parent[ci] = static_cast<int8_t>(pi);
  }
  for (size_t v = 0; v < m->pos.size(); ++v) {
    if (m->pos[v] >= 0) m->pos[v] = to_parent[m->pos[v]];
  }
  return Canonicalize(m);
}

void CqMatchAutomaton::InsertMatch(MatchSet* set, Match m) {
  auto it = std::lower_bound(set->begin(), set->end(), m);
  if (it == set->end() || !(*it == m)) set->insert(it, std::move(m));
}

void CqMatchAutomaton::Saturate(const NodeLabel& label, MatchSet* set) const {
  // Worklist closure: satisfy one more atom at this node.
  std::vector<Match> work(set->begin(), set->end());
  while (!work.empty()) {
    Match m = std::move(work.back());
    work.pop_back();
    for (size_t ai = 0; ai < cq_.atoms().size(); ++ai) {
      if (m.atoms & (uint64_t{1} << ai)) continue;
      const QAtom& qa = cq_.atoms()[ai];
      for (const AtomLabel& la : label) {
        if (la.pred != qa.pred) continue;
        // Unify the atom's variables with the label's positions.
        Match next = m;
        bool ok = true;
        for (size_t j = 0; j < qa.args.size() && ok; ++j) {
          VarId v = qa.args[j];
          int8_t p = static_cast<int8_t>(la.positions[j]);
          if (next.pos[v] == kUnseen) {
            next.pos[v] = p;
          } else if (next.pos[v] != p) {
            ok = false;
          }
        }
        if (!ok) continue;
        next.atoms |= uint64_t{1} << ai;
        size_t before = set->size();
        InsertMatch(set, next);
        if (set->size() != before) work.push_back(std::move(next));
      }
    }
  }
}

CqMatchAutomaton::DpState CqMatchAutomaton::Intern(MatchSet set) {
  auto it = intern_.find(set);
  if (it != intern_.end()) return it->second;
  DpState id = static_cast<DpState>(states_.size());
  bool accepting = false;
  for (const Match& m : set) accepting = accepting || m.atoms == all_atoms_;
  states_.push_back(set);
  accepting_.push_back(accepting);
  intern_.emplace(std::move(set), id);
  return id;
}

CqMatchAutomaton::DpState CqMatchAutomaton::Leaf(const NodeLabel& label) {
  MatchSet set;
  Match base;
  base.pos.assign(cq_.num_vars(), kUnseen);
  InsertMatch(&set, std::move(base));
  Saturate(label, &set);
  return Intern(std::move(set));
}

CqMatchAutomaton::DpState CqMatchAutomaton::Unary(DpState child,
                                                  const NodeLabel& label,
                                                  const EdgeLabel& edge) {
  MatchSet set;
  for (const Match& m : states_[child]) {
    Match lifted = m;
    if (Lift(edge, &lifted)) InsertMatch(&set, std::move(lifted));
  }
  Saturate(label, &set);
  return Intern(std::move(set));
}

CqMatchAutomaton::DpState CqMatchAutomaton::Binary(DpState child1,
                                                   DpState child2,
                                                   const NodeLabel& label,
                                                   const EdgeLabel& edge1,
                                                   const EdgeLabel& edge2) {
  MatchSet lifted1;
  for (const Match& m : states_[child1]) {
    Match lm = m;
    if (Lift(edge1, &lm)) InsertMatch(&lifted1, std::move(lm));
  }
  MatchSet lifted2;
  for (const Match& m : states_[child2]) {
    Match lm = m;
    if (Lift(edge2, &lm)) InsertMatch(&lifted2, std::move(lm));
  }
  MatchSet set;
  for (const Match& m1 : lifted1) {
    for (const Match& m2 : lifted2) {
      Match combined;
      combined.atoms = m1.atoms | m2.atoms;
      combined.pos.resize(cq_.num_vars());
      bool ok = true;
      for (size_t v = 0; v < cq_.num_vars() && ok; ++v) {
        int8_t a = m1.pos[v];
        int8_t b = m2.pos[v];
        if (a == kUnseen) {
          combined.pos[v] = b;
        } else if (b == kUnseen) {
          combined.pos[v] = a;
        } else if (a >= 0 && a == b) {
          combined.pos[v] = a;
        } else {
          // Gone/Gone, Gone/placed or mismatched placements: two distinct
          // elements were used for v in the two subtrees.
          ok = false;
        }
      }
      if (ok && Canonicalize(&combined)) {
        InsertMatch(&set, std::move(combined));
      }
    }
  }
  Saturate(label, &set);
  return Intern(std::move(set));
}

bool CqMatchAutomaton::Accepting(DpState state) const {
  return accepting_[state];
}

bool CqMatchAutomaton::SubsetOf(DpState s, DpState t) const {
  const MatchSet& sub = states_[s];
  const MatchSet& sup = states_[t];
  return std::includes(sup.begin(), sup.end(), sub.begin(), sub.end());
}

UcqMatchAutomaton::UcqMatchAutomaton(const UCQ& ucq, int width) {
  for (const CQ& cq : ucq.disjuncts()) parts_.emplace_back(cq, width);
  MONDET_CHECK(!parts_.empty());
}

UcqMatchAutomaton::DpState UcqMatchAutomaton::Intern(
    std::vector<uint32_t> tuple) {
  auto it = intern_.find(tuple);
  if (it != intern_.end()) return it->second;
  DpState id = static_cast<DpState>(states_.size());
  states_.push_back(tuple);
  intern_.emplace(std::move(tuple), id);
  return id;
}

UcqMatchAutomaton::DpState UcqMatchAutomaton::Leaf(const NodeLabel& label) {
  std::vector<uint32_t> tuple;
  for (auto& p : parts_) tuple.push_back(p.Leaf(label));
  return Intern(std::move(tuple));
}

UcqMatchAutomaton::DpState UcqMatchAutomaton::Unary(DpState child,
                                                    const NodeLabel& label,
                                                    const EdgeLabel& edge) {
  std::vector<uint32_t> tuple;
  for (size_t i = 0; i < parts_.size(); ++i) {
    tuple.push_back(parts_[i].Unary(states_[child][i], label, edge));
  }
  return Intern(std::move(tuple));
}

UcqMatchAutomaton::DpState UcqMatchAutomaton::Binary(DpState child1,
                                                     DpState child2,
                                                     const NodeLabel& label,
                                                     const EdgeLabel& edge1,
                                                     const EdgeLabel& edge2) {
  std::vector<uint32_t> tuple;
  for (size_t i = 0; i < parts_.size(); ++i) {
    tuple.push_back(parts_[i].Binary(states_[child1][i], states_[child2][i],
                                     label, edge1, edge2));
  }
  return Intern(std::move(tuple));
}

bool UcqMatchAutomaton::Accepting(DpState state) const {
  for (size_t i = 0; i < parts_.size(); ++i) {
    if (parts_[i].Accepting(states_[state][i])) return true;
  }
  return false;
}

bool UcqMatchAutomaton::SubsetOf(DpState s, DpState t) const {
  for (size_t i = 0; i < parts_.size(); ++i) {
    if (!parts_[i].SubsetOf(states_[s][i], states_[t][i])) return false;
  }
  return true;
}

}  // namespace mondet
