#include "reductions/thm9.h"

#include <string>

#include "base/check.h"

namespace mondet {

std::optional<std::vector<TuringMachine::Config>> TuringMachine::Run(
    const std::vector<int>& input, size_t max_steps) const {
  Config config;
  config.tape.push_back(0);  // left blank
  for (int s : input) config.tape.push_back(s);
  config.tape.push_back(0);  // right blank
  config.head = 1;
  config.state = start;
  std::vector<Config> trace{config};
  for (size_t step = 0; step < max_steps; ++step) {
    if (config.state == accept) return trace;
    auto it = delta.find({config.state, config.tape[config.head]});
    if (it == delta.end()) return std::nullopt;  // stuck (should not happen)
    config.tape[config.head] = it->second.write;
    config.state = it->second.next_state;
    config.head += it->second.move;
    MONDET_CHECK(config.head >= 0 &&
                 config.head < static_cast<int>(config.tape.size()));
    trace.push_back(config);
  }
  if (config.state == accept) return trace;
  return std::nullopt;
}

TuringMachine EraserMachine() {
  // States: 0 = scan right, 1 = at right end / erase, 2 = return left,
  // 3 = accept. Symbols: 0 = blank, 1 = one.
  TuringMachine tm;
  tm.num_states = 4;
  tm.num_symbols = 2;
  tm.start = 0;
  tm.accept = 3;
  tm.delta[{0, 1}] = {0, 1, +1};   // scan right over 1s
  tm.delta[{0, 0}] = {1, 0, -1};   // hit right blank: step back
  tm.delta[{1, 1}] = {2, 0, -1};   // erase rightmost 1, return
  tm.delta[{1, 0}] = {3, 0, 0};    // nothing left: accept
  tm.delta[{2, 1}] = {2, 1, -1};   // walk left over 1s
  tm.delta[{2, 0}] = {0, 0, +1};   // hit left blank: restart scan
  return tm;
}

namespace {

/// Label bundle used when generating the run-checking rules.
struct RunSchema {
  PredId succ;
  PredId inp_begin, inp_end, sep, run_end;
  std::vector<PredId> inp_sym;
  std::vector<std::vector<PredId>> cell;  // [state+1][symbol], 0 = headless

  std::vector<PredId> AllLabels() const {
    std::vector<PredId> out{inp_begin, inp_end, sep, run_end};
    out.insert(out.end(), inp_sym.begin(), inp_sym.end());
    for (const auto& row : cell) out.insert(out.end(), row.begin(), row.end());
    return out;
  }
  std::vector<PredId> CellLabels() const {
    std::vector<PredId> out;
    for (const auto& row : cell) out.insert(out.end(), row.begin(), row.end());
    return out;
  }
};

/// A window symbol: a cell (state -1 = headless) or the boundary marker.
struct WinSym {
  bool boundary = false;
  int state = -1;  // -1 = headless
  int symbol = 0;
};

/// Emits the run-consistency rules into `prog` with head `goal`:
/// duplicate labels, bad adjacencies, configuration alignment and
/// determinism-violation windows; optionally the acceptance rules.
/// IDB helper predicates are prefixed to keep different copies disjoint.
void AddRunCheckRules(Program& prog, PredId goal, const RunSchema& s,
                      const TuringMachine& tm, const std::string& prefix,
                      bool include_accept, bool include_bad) {
  VocabularyPtr vocab = prog.vocab();
  PredId cellp = vocab->AddPredicate(prefix + ".Cell", 1);
  PredId seplike = vocab->AddPredicate(prefix + ".SepLike", 1);
  PredId chain = vocab->AddPredicate(prefix + ".Chain", 2);
  PredId par = vocab->AddPredicate(prefix + ".Par", 2);
  PredId corr = vocab->AddPredicate(prefix + ".Corr", 2);

  // Cell and SepLike unions.
  for (PredId c : s.CellLabels()) {
    RuleBuilder b(vocab);
    b.Head(cellp, {"x"}).Atom(c, {"x"});
    prog.AddRule(b.Build());
  }
  for (PredId m : {s.inp_end, s.sep}) {
    RuleBuilder b(vocab);
    b.Head(seplike, {"x"}).Atom(m, {"x"});
    prog.AddRule(b.Build());
  }
  // Chain / Par / Corr (configuration alignment).
  {
    RuleBuilder b(vocab);
    b.Head(chain, {"s", "x"})
        .Atom(seplike, {"s"})
        .Atom(s.succ, {"s", "x"})
        .Atom(cellp, {"x"});
    prog.AddRule(b.Build());
  }
  {
    RuleBuilder b(vocab);
    b.Head(chain, {"s", "y"})
        .Atom(chain, {"s", "x"})
        .Atom(s.succ, {"x", "y"})
        .Atom(cellp, {"y"});
    prog.AddRule(b.Build());
  }
  {
    RuleBuilder b(vocab);
    b.Head(par, {"s1", "s2"})
        .Atom(chain, {"s1", "x"})
        .Atom(s.succ, {"x", "s2"})
        .Atom(s.sep, {"s2"});
    prog.AddRule(b.Build());
  }
  {
    RuleBuilder b(vocab);
    b.Head(corr, {"x", "y"})
        .Atom(par, {"s1", "s2"})
        .Atom(s.succ, {"s1", "x"})
        .Atom(s.succ, {"s2", "y"})
        .Atom(cellp, {"x"})
        .Atom(cellp, {"y"});
    prog.AddRule(b.Build());
  }
  {
    RuleBuilder b(vocab);
    b.Head(corr, {"xp", "yp"})
        .Atom(corr, {"x", "y"})
        .Atom(s.succ, {"x", "xp"})
        .Atom(s.succ, {"y", "yp"})
        .Atom(cellp, {"xp"})
        .Atom(cellp, {"yp"});
    prog.AddRule(b.Build());
  }

  if (include_bad) {
    // (a) Duplicate labels on one node.
    std::vector<PredId> labels = s.AllLabels();
    for (size_t i = 0; i < labels.size(); ++i) {
      for (size_t j = i + 1; j < labels.size(); ++j) {
        RuleBuilder b(vocab);
        b.Head(goal, {}).Atom(labels[i], {"x"}).Atom(labels[j], {"x"});
        prog.AddRule(b.Build());
      }
    }
    // (b) Forbidden adjacencies.
    auto allowed = [&](PredId x, PredId y) {
      auto is_inp = [&](PredId p) {
        for (PredId q : s.inp_sym) {
          if (p == q) return true;
        }
        return false;
      };
      auto is_cell = [&](PredId p) {
        for (PredId q : s.CellLabels()) {
          if (p == q) return true;
        }
        return false;
      };
      if (x == s.inp_begin) return is_inp(y) || y == s.inp_end;
      if (is_inp(x)) return is_inp(y) || y == s.inp_end;
      if (x == s.inp_end) return is_cell(y);
      if (is_cell(x)) return is_cell(y) || y == s.sep || y == s.run_end;
      if (x == s.sep) return is_cell(y);
      return false;  // nothing follows run_end
    };
    for (PredId x : labels) {
      for (PredId y : labels) {
        if (allowed(x, y)) continue;
        RuleBuilder b(vocab);
        b.Head(goal, {})
            .Atom(x, {"x"})
            .Atom(s.succ, {"x", "y"})
            .Atom(y, {"y"});
        prog.AddRule(b.Build());
      }
    }
    // (c) Determinism-violation windows: Corr(x,y) aligned positions with
    // context (l, c, r) around x whose successor-config center differs
    // from the machine's transition function.
    std::vector<WinSym> contexts;
    contexts.push_back(WinSym{true, -1, 0});
    for (int st = -1; st < tm.num_states; ++st) {
      for (int sym = 0; sym < tm.num_symbols; ++sym) {
        contexts.push_back(WinSym{false, st, sym});
      }
    }
    auto states_in = [&](const WinSym& w) { return !w.boundary && w.state >= 0; };
    auto expected_center = [&](const WinSym& l, const WinSym& c,
                               const WinSym& r) -> std::optional<WinSym> {
      if (states_in(c)) {
        auto it = tm.delta.find({c.state, c.symbol});
        if (it == tm.delta.end()) return std::nullopt;  // halt: unconstrained
        if (it->second.move == 0) {
          return WinSym{false, it->second.next_state, it->second.write};
        }
        return WinSym{false, -1, it->second.write};
      }
      if (states_in(l)) {
        auto it = tm.delta.find({l.state, l.symbol});
        if (it == tm.delta.end()) return std::nullopt;
        if (it->second.move == +1) {
          return WinSym{false, it->second.next_state, c.symbol};
        }
        return WinSym{false, -1, c.symbol};
      }
      if (states_in(r)) {
        auto it = tm.delta.find({r.state, r.symbol});
        if (it == tm.delta.end()) return std::nullopt;
        if (it->second.move == -1) {
          return WinSym{false, it->second.next_state, c.symbol};
        }
        return WinSym{false, -1, c.symbol};
      }
      return WinSym{false, -1, c.symbol};
    };
    auto add_context_atom = [&](RuleBuilder& b, const WinSym& w,
                                const std::string& var, bool left) {
      if (w.boundary) {
        b.Atom(seplike, {var});
        (void)left;
      } else {
        b.Atom(s.cell[w.state + 1][w.symbol], {var});
      }
    };
    for (const WinSym& l : contexts) {
      for (const WinSym& c : contexts) {
        if (c.boundary) continue;
        for (const WinSym& r : contexts) {
          int stateful = (states_in(l) ? 1 : 0) + (states_in(c) ? 1 : 0) +
                         (states_in(r) ? 1 : 0);
          if (stateful > 1) continue;
          auto expect = expected_center(l, c, r);
          if (!expect) continue;
          for (int st = -1; st < tm.num_states; ++st) {
            for (int sym = 0; sym < tm.num_symbols; ++sym) {
              if (st == expect->state && sym == expect->symbol) continue;
              RuleBuilder b(vocab);
              b.Head(goal, {});
              b.Atom(corr, {"x", "y"});
              add_context_atom(b, l, "xl", true);
              b.Atom(s.succ, {"xl", "x"});
              add_context_atom(b, c, "x", false);
              b.Atom(s.succ, {"x", "xr"});
              add_context_atom(b, r, "xr", false);
              b.Atom(s.cell[st + 1][sym], {"y"});
              prog.AddRule(b.Build());
            }
          }
        }
      }
    }
  }

  if (include_accept) {
    for (int sym = 0; sym < tm.num_symbols; ++sym) {
      RuleBuilder b(vocab);
      b.Head(goal, {}).Atom(s.cell[tm.accept + 1][sym], {"x"});
      prog.AddRule(b.Build());
    }
  }
}

RunSchema MakeRunSchema(const VocabularyPtr& vocab, const TuringMachine& tm) {
  RunSchema s;
  s.succ = vocab->AddPredicate("Succ", 2);
  s.inp_begin = vocab->AddPredicate("InpBegin", 1);
  s.inp_end = vocab->AddPredicate("InpEnd", 1);
  s.sep = vocab->AddPredicate("Sep", 1);
  s.run_end = vocab->AddPredicate("RunEnd", 1);
  for (int sym = 0; sym < tm.num_symbols; ++sym) {
    s.inp_sym.push_back(vocab->AddPredicate("In" + std::to_string(sym), 1));
  }
  s.cell.resize(tm.num_states + 1);
  for (int st = -1; st < tm.num_states; ++st) {
    for (int sym = 0; sym < tm.num_symbols; ++sym) {
      std::string name = st < 0 ? "Cl_" + std::to_string(sym)
                                : "Cl_q" + std::to_string(st) + "_" +
                                      std::to_string(sym);
      s.cell[st + 1].push_back(vocab->AddPredicate(name, 1));
    }
  }
  return s;
}

}  // namespace

Thm9Gadget BuildThm9(const TuringMachine& tm) {
  VocabularyPtr vocab = MakeVocabulary();
  RunSchema schema = MakeRunSchema(vocab, tm);

  // Query: badly-shaped ∨ accepting.
  PredId goal = vocab->AddPredicate("Q9", 0);
  Program prog(vocab);
  AddRunCheckRules(prog, goal, schema, tm, "q", /*include_accept=*/true,
                   /*include_bad=*/true);
  DatalogQuery query(std::move(prog), goal);

  // Views.
  ViewSet views(vocab);
  // Input views: begin/end markers, symbols and input edges.
  views.AddAtomicView("VInpBegin", schema.inp_begin);
  views.AddAtomicView("VInpEnd", schema.inp_end);
  for (int sym = 0; sym < tm.num_symbols; ++sym) {
    views.AddAtomicView("VIn" + std::to_string(sym), schema.inp_sym[sym]);
  }
  {
    // Successor edges within the input segment (and its borders), so that
    // the separator sees the input but not the run's length.
    auto edge_view = [&](const std::string& name, PredId left, PredId right) {
      CQ cq(vocab);
      VarId x = cq.AddVar("x"), y = cq.AddVar("y");
      cq.AddAtom(left, {x});
      cq.AddAtom(schema.succ, {x, y});
      cq.AddAtom(right, {y});
      cq.SetFreeVars({x, y});
      views.AddCqView(name, cq);
    };
    for (int a = 0; a < tm.num_symbols; ++a) {
      edge_view("VEdgeB" + std::to_string(a), schema.inp_begin,
                schema.inp_sym[a]);
      edge_view("VEdgeE" + std::to_string(a), schema.inp_sym[a],
                schema.inp_end);
      for (int b = 0; b < tm.num_symbols; ++b) {
        edge_view("VEdge" + std::to_string(a) + "_" + std::to_string(b),
                  schema.inp_sym[a], schema.inp_sym[b]);
      }
    }
  }
  {
    // V_badly_shaped: 0-ary Datalog view flagging corruption.
    Program bad(vocab);
    PredId bad_goal = vocab->AddPredicate("VBad.def", 0);
    AddRunCheckRules(bad, bad_goal, schema, tm, "vb",
                     /*include_accept=*/false, /*include_bad=*/true);
    views.AddView("VBad", DatalogQuery(std::move(bad), bad_goal));
  }
  {
    // V_prerun: x is an input-end marker from which a completed run
    // (ending in RunEnd) is reachable.
    Program pre(vocab);
    PredId reach = vocab->AddPredicate("VPre.Reach", 1);
    PredId pre_goal = vocab->AddPredicate("VPre.def", 1);
    {
      RuleBuilder b(vocab);
      b.Head(reach, {"x"}).Atom(schema.succ, {"x", "y"}).Atom(
          schema.run_end, {"y"});
      pre.AddRule(b.Build());
    }
    {
      RuleBuilder b(vocab);
      b.Head(reach, {"x"}).Atom(schema.succ, {"x", "y"}).Atom(reach, {"y"});
      pre.AddRule(b.Build());
    }
    {
      RuleBuilder b(vocab);
      b.Head(pre_goal, {"x"}).Atom(schema.inp_end, {"x"}).Atom(reach, {"x"});
      pre.AddRule(b.Build());
    }
    views.AddView("VPreRun", DatalogQuery(std::move(pre), pre_goal));
  }

  Thm9Gadget gadget(vocab, std::move(query), std::move(views), tm);
  gadget.succ = schema.succ;
  gadget.inp_begin = schema.inp_begin;
  gadget.inp_end = schema.inp_end;
  gadget.sep = schema.sep;
  gadget.run_end = schema.run_end;
  gadget.inp_sym = schema.inp_sym;
  gadget.cell = schema.cell;
  return gadget;
}

Instance Thm9Gadget::EncodeRun(const std::vector<int>& input,
                               size_t max_steps) const {
  auto trace = machine.Run(input, max_steps);
  MONDET_CHECK(trace.has_value());
  Instance inst(vocab);
  ElemId prev = inst.AddElement("begin");
  inst.AddFact(inp_begin, {prev});
  auto append = [&](PredId label, const std::string& name) {
    ElemId e = inst.AddElement(name);
    inst.AddFact(succ, {prev, e});
    inst.AddFact(label, {e});
    prev = e;
    return e;
  };
  for (size_t i = 0; i < input.size(); ++i) {
    append(inp_sym[input[i]], "in" + std::to_string(i));
  }
  append(inp_end, "inpend");
  for (size_t t = 0; t < trace->size(); ++t) {
    const auto& config = (*trace)[t];
    for (size_t pos = 0; pos < config.tape.size(); ++pos) {
      int st = static_cast<int>(pos) == config.head ? config.state : -1;
      append(cell[st + 1][config.tape[pos]],
             "c" + std::to_string(t) + "_" + std::to_string(pos));
    }
    if (t + 1 < trace->size()) {
      append(sep, "sep" + std::to_string(t));
    }
  }
  append(run_end, "end");
  return inst;
}

Instance Thm9Gadget::EncodeCorruptedRun(const std::vector<int>& input,
                                        size_t max_steps) const {
  Instance inst = EncodeRun(input, max_steps);
  // Flip one mid-run headless cell label to corrupt the computation: find
  // a fact with a headless cell label and swap its symbol.
  Instance out(vocab);
  out.EnsureElements(inst.num_elements());
  bool flipped = false;
  size_t midpoint = inst.num_facts() / 2;
  for (uint32_t fi = 0; fi < inst.num_facts(); ++fi) {
    Fact g = inst.FactAt(fi);
    if (!flipped && fi >= midpoint) {
      for (int sym = 0; sym < machine.num_symbols && !flipped; ++sym) {
        if (g.pred == cell[0][sym]) {
          g.pred = cell[0][(sym + 1) % machine.num_symbols];
          flipped = true;
        }
      }
    }
    out.AddFact(g);
  }
  MONDET_CHECK(flipped);
  return out;
}

}  // namespace mondet
