#ifndef MONDET_REDUCTIONS_THM6_STRATIFIED_H_
#define MONDET_REDUCTIONS_THM6_STRATIFIED_H_

#include "reductions/thm6.h"

namespace mondet {

/// The appendix's "Additional comments on non-Datalog-rewritable examples":
/// for every tiling problem TP whose rectangular grids cannot be tiled,
/// the query Q_TP has a *stratified* rewriting over V_TP — the positive
/// Boolean combination
///
///   Vhelper_C ∨ Vhelper_D ∨ Q*_verify ∨ (Q*_start ∧ ProductTest),
///
/// where Q*_start replaces C/D by the projections of the grid-generating
/// view S, Q*_verify replaces base atoms by the corresponding views, and
/// ProductTest (relational algebra) checks S = π1(S) × π2(S).
///
/// Evaluates that rewriting on a view-schema instance. When TP has no
/// solution, this agrees with Q_TP ∘ V_TP^{-1} on every view image — a
/// PTime separator even though no Datalog rewriting exists (Thm 8).
bool StratifiedRewritingHolds(const Thm6Gadget& gadget,
                              const Instance& image);

}  // namespace mondet

#endif  // MONDET_REDUCTIONS_THM6_STRATIFIED_H_
