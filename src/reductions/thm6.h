#ifndef MONDET_REDUCTIONS_THM6_H_
#define MONDET_REDUCTIONS_THM6_H_

#include <vector>

#include "datalog/program.h"
#include "reductions/tiling.h"
#include "views/view_set.h"

namespace mondet {

/// The Thm 6 reduction: given a tiling problem TP, builds the MDL query
/// Q_TP (rules (1)–(11)) and the UCQ views V_TP (grid-generating view S,
/// atomic views, special views) such that Q_TP is monotonically determined
/// by V_TP iff TP has no solution (Prop. 10).
struct Thm6Gadget {
  VocabularyPtr vocab;
  DatalogQuery query;
  ViewSet views;

  // Base schema σ.
  PredId xsucc, ysucc, cpred, dpred, xend, yend, xproj, yproj;
  std::vector<PredId> tile_preds;

  const TilingProblem tp;

  Thm6Gadget(VocabularyPtr v, DatalogQuery q, ViewSet vs, TilingProblem t)
      : vocab(std::move(v)),
        query(std::move(q)),
        views(std::move(vs)),
        tp(std::move(t)) {}

  /// Figure 2(a): the expansion of Qstart generating the two axes of
  /// length n (x-axis, marked C) and m (y-axis, marked D), joined at z0.
  Instance MakeAxes(int n, int m) const;

  /// Figure 1(a): a grid-like test instance for an n×m grid carrying the
  /// given tile assignment (row-major, as produced by TilingProblem::Solve).
  Instance MakeGridTest(int n, int m, const std::vector<int>& tiles) const;
};

Thm6Gadget BuildThm6(const TilingProblem& tp);

}  // namespace mondet

#endif  // MONDET_REDUCTIONS_THM6_H_
