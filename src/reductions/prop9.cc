#include "reductions/prop9.h"

#include <algorithm>
#include <set>

#include "base/check.h"

namespace mondet {

Prop9Reduction ContainmentToMonDet(const DatalogQuery& q1,
                                   const DatalogQuery& q2) {
  VocabularyPtr vocab = q1.program.vocab();
  MONDET_CHECK(q2.program.vocab().get() == vocab.get());
  MONDET_CHECK(q1.arity() == 0 && q2.arity() == 0);

  PredId e = vocab->AddPredicate("e.marker", 0);
  PredId goal = vocab->AddPredicate("QLemma8", 0);

  Program prog(vocab);
  prog.AddRules(q1.program);
  prog.AddRules(q2.program);
  {
    // Q ← Q1 ∧ e.
    Rule r;
    r.head = QAtom(goal, {});
    r.body.push_back(QAtom(q1.goal, {}));
    r.body.push_back(QAtom(e, {}));
    prog.AddRule(std::move(r));
  }
  {
    // Q ← Q2.
    Rule r;
    r.head = QAtom(goal, {});
    r.body.push_back(QAtom(q2.goal, {}));
    prog.AddRule(std::move(r));
  }
  DatalogQuery query(std::move(prog), goal);

  // Views: atomic copies of every extensional predicate except e.
  ViewSet views(vocab);
  std::set<PredId> edbs;
  for (PredId p : query.program.Edbs()) edbs.insert(p);
  edbs.erase(e);
  for (PredId p : edbs) {
    views.AddAtomicView(vocab->name(p) + "'", p);
  }
  return Prop9Reduction(std::move(query), std::move(views));
}

Lemma7Instance EquivalenceToMonDet(const DatalogQuery& q,
                                   const DatalogQuery& view_def) {
  VocabularyPtr vocab = q.program.vocab();
  MONDET_CHECK(view_def.program.vocab().get() == vocab.get());
  ViewSet views(vocab);
  views.AddView("VLemma7", view_def);
  return Lemma7Instance(q, std::move(views));
}

}  // namespace mondet
