#include "reductions/thm8.h"

#include <map>

#include "base/check.h"
#include "base/homomorphism.h"
#include "reductions/tiling.h"

namespace mondet {

namespace {

PredId ViewByName(const Thm6Gadget& gadget, const std::string& name) {
  auto id = gadget.vocab->FindPredicate(name);
  MONDET_CHECK(id.has_value());
  return *id;
}

}  // namespace

std::optional<Thm8Pipeline> BuildThm8Pipeline(const Thm6Gadget& gadget,
                                              int ell, int k, int depth,
                                              size_t max_nodes) {
  MONDET_CHECK(ell >= 2);
  const VocabularyPtr& vocab = gadget.vocab;
  PredId s = ViewByName(gadget, "S");
  PredId vxsucc = ViewByName(gadget, "VXSucc");
  PredId vysucc = ViewByName(gadget, "VYSucc");
  PredId vxend = ViewByName(gadget, "VXEnd");
  PredId vyend = ViewByName(gadget, "VYEnd");

  // I_ℓ: the axes (element layout of MakeAxes: z0 = 0, x-axis 1..ℓ,
  // y-axis ℓ+1..2ℓ).
  Instance axes = gadget.MakeAxes(ell, ell);
  ElemId x1 = 1;
  ElemId xl = static_cast<ElemId>(ell);
  ElemId y1 = static_cast<ElemId>(ell + 1);
  ElemId yl = static_cast<ElemId>(2 * ell);

  // E_ℓ: the view image.
  Instance image = gadget.views.Image(axes);

  // U_ℓ: a bounded k-unravelling of E_ℓ.
  UnravelOptions options;
  options.k = k;
  options.depth = depth;
  options.one_overlap = false;
  options.connected_subsets_only = true;
  options.max_nodes = max_nodes;
  Unravelling unravelling = BoundedUnravelling(image, options);
  const Instance& u = unravelling.inst;
  const std::vector<ElemId>& phi = unravelling.phi;

  // W_ℓ: the δ-structure whose elements are the S-facts of U_ℓ. Our S
  // convention: S(x, y) with x on the x-axis (C side), y on the y-axis.
  DeltaSchema delta = DeltaSchema::Create(vocab);
  Instance w(vocab);
  std::map<uint32_t, ElemId> w_elem;  // U_ℓ fact index -> W element
  for (uint32_t row = 0; row < u.NumRows(s); ++row) {
    const uint32_t fi = u.GlobalOf(s, row);
    w_elem[fi] = w.AddElement("p" + std::to_string(fi));
  }
  for (const auto& [fi, we] : w_elem) {
    const FactView f = u.ViewAt(fi);
    if (phi[f.args[0]] == x1 && phi[f.args[1]] == y1) {
      w.AddFact(delta.i, {we});
    }
    if (phi[f.args[0]] == xl && phi[f.args[1]] == yl) {
      w.AddFact(delta.f, {we});
    }
  }
  for (const auto& [f1, w1] : w_elem) {
    const FactView a = u.ViewAt(f1);
    for (const auto& [f2, w2] : w_elem) {
      const FactView b = u.ViewAt(f2);
      // H: same y-element, x advances by a VXSucc edge of U_ℓ.
      if (a.args[1] == b.args[1] && u.HasFact(vxsucc, {a.args[0], b.args[0]})) {
        w.AddFact(delta.h, {w1, w2});
      }
      // V: same x-element, y advances by a VYSucc edge.
      if (a.args[0] == b.args[0] && u.HasFact(vysucc, {a.args[1], b.args[1]})) {
        w.AddFact(delta.v, {w1, w2});
      }
    }
  }

  // χ: a TP*-tiling of W_ℓ, i.e. a homomorphism into I_TP (Lemma 6).
  Instance target = TilingProblemAsInstance(gadget.tp, vocab, delta);
  auto chi = HomSearch(w, target).FindOne();

  bool tiled = chi.has_value();
  std::vector<int> tiling;
  Instance iprime(vocab);
  if (tiled) {
    tiling.assign(chi->begin(), chi->end());
    // I'_ℓ: chase U_ℓ back to the base schema. Elements of U_ℓ keep their
    // ids; each S-fact gets a fresh grid-point element with its tile.
    iprime.EnsureElements(u.num_elements());
    for (const Fact& f : u.AllFacts()) {
      if (f.pred == vxsucc) {
        iprime.AddFact(gadget.xsucc, f.args);
      } else if (f.pred == vysucc) {
        iprime.AddFact(gadget.ysucc, f.args);
      } else if (f.pred == vxend) {
        iprime.AddFact(gadget.xend, f.args);
      } else if (f.pred == vyend) {
        iprime.AddFact(gadget.yend, f.args);
      }
    }
    for (const auto& [fi, we] : w_elem) {
      const FactView f = u.ViewAt(fi);
      ElemId grid_point = iprime.AddElement("s" + std::to_string(fi));
      iprime.AddFact(gadget.xproj, {f.args[0], grid_point});
      iprime.AddFact(gadget.yproj, {f.args[1], grid_point});
      int tile = tiling[we];
      iprime.AddFact(gadget.tile_preds[tile], {grid_point});
    }
  }
  return Thm8Pipeline{std::move(axes),   std::move(image),
                      std::move(unravelling), std::move(w),
                      std::move(tiling), std::move(iprime),
                      tiled};
}

}  // namespace mondet
