#ifndef MONDET_REDUCTIONS_THM9_H_
#define MONDET_REDUCTIONS_THM9_H_

#include <map>
#include <optional>
#include <vector>

#include "datalog/program.h"
#include "views/view_set.h"

namespace mondet {

/// A deterministic single-tape Turing machine with a fixed tape window
/// (symbol 0 is blank). Used by the Thm 9 construction: separators for
/// the derived query/views must effectively re-simulate the machine.
struct TuringMachine {
  struct Action {
    int next_state = 0;
    int write = 0;
    int move = 0;  // -1, 0, +1
  };
  int num_states = 0;
  int num_symbols = 2;
  int start = 0;
  int accept = 0;
  std::map<std::pair<int, int>, Action> delta;  // (state, symbol) -> action

  struct Config {
    std::vector<int> tape;
    int head = 0;
    int state = 0;
  };

  /// Runs on the window [blank, input..., blank]; returns the
  /// configuration sequence up to (and including) the accepting
  /// configuration, or nullopt if the machine does not halt in max_steps.
  std::optional<std::vector<Config>> Run(const std::vector<int>& input,
                                         size_t max_steps) const;
};

/// The quadratic-time "eraser" machine: repeatedly erases the rightmost 1
/// and returns to the left end; accepts when no 1s remain. Θ(n²) steps on
/// input 1^n.
TuringMachine EraserMachine();

/// The Thm 9 gadget for a machine M: base schema encodes run strings
/// (input segment + configurations separated by markers); the query holds
/// iff the string is locally corrupted (badly shaped / not a valid step)
/// or reaches the accepting state; views expose the input segment and a
/// "badly shaped" flag. Determinism of M makes the query monotonically
/// determined; any separator must decide acceptance, i.e. re-simulate M.
struct Thm9Gadget {
  VocabularyPtr vocab;
  DatalogQuery query;
  ViewSet views;
  TuringMachine machine;

  PredId succ;                 // run-string successor
  PredId inp_begin, inp_end;   // markers
  PredId sep, run_end;         // markers
  std::vector<PredId> inp_sym;               // input labels per symbol
  std::vector<std::vector<PredId>> cell;     // cell[state+1][symbol]
                                             // (index 0 = headless cell)

  Thm9Gadget(VocabularyPtr v, DatalogQuery q, ViewSet vs, TuringMachine tm)
      : vocab(std::move(v)),
        query(std::move(q)),
        views(std::move(vs)),
        machine(std::move(tm)) {}

  /// Encodes input + full run as a well-shaped run-string instance.
  Instance EncodeRun(const std::vector<int>& input, size_t max_steps) const;

  /// Encodes a corrupted run (one cell's symbol flipped mid-run).
  Instance EncodeCorruptedRun(const std::vector<int>& input,
                              size_t max_steps) const;
};

Thm9Gadget BuildThm9(const TuringMachine& tm);

}  // namespace mondet

#endif  // MONDET_REDUCTIONS_THM9_H_
