#include "reductions/tiling.h"

#include <algorithm>
#include <functional>

#include "base/check.h"
#include "base/homomorphism.h"

namespace mondet {

bool TilingProblem::HcAllows(int a, int b) const {
  return std::find(hc.begin(), hc.end(), std::make_pair(a, b)) != hc.end();
}

bool TilingProblem::VcAllows(int a, int b) const {
  return std::find(vc.begin(), vc.end(), std::make_pair(a, b)) != vc.end();
}

bool TilingProblem::IsInitial(int t) const {
  return std::find(initial.begin(), initial.end(), t) != initial.end();
}

bool TilingProblem::IsFinal(int t) const {
  return std::find(final_tiles.begin(), final_tiles.end(), t) !=
         final_tiles.end();
}

std::optional<std::vector<int>> TilingProblem::Solve(int n, int m) const {
  std::vector<int> assign(static_cast<size_t>(n) * m, -1);
  auto at = [&](int i, int j) -> int& {
    return assign[static_cast<size_t>(j - 1) * n + (i - 1)];
  };
  std::function<bool(int)> place = [&](int idx) -> bool {
    if (idx == n * m) return true;
    int i = idx % n + 1;
    int j = idx / n + 1;
    for (int t = 0; t < num_tiles; ++t) {
      if (i == 1 && j == 1 && !IsInitial(t)) continue;
      if (i == n && j == m && !IsFinal(t)) continue;
      if (i > 1 && !HcAllows(at(i - 1, j), t)) continue;
      if (j > 1 && !VcAllows(at(i, j - 1), t)) continue;
      at(i, j) = t;
      if (place(idx + 1)) return true;
      at(i, j) = -1;
    }
    return false;
  };
  if (place(0)) return assign;
  return std::nullopt;
}

bool TilingProblem::HasSolutionUpTo(int max_n, int max_m) const {
  for (int n = 1; n <= max_n; ++n) {
    for (int m = 1; m <= max_m; ++m) {
      if (Solve(n, m)) return true;
    }
  }
  return false;
}

DeltaSchema DeltaSchema::Create(const VocabularyPtr& vocab) {
  DeltaSchema s;
  s.h = vocab->AddPredicate("H", 2);
  s.v = vocab->AddPredicate("V", 2);
  s.i = vocab->AddPredicate("I", 1);
  s.f = vocab->AddPredicate("F", 1);
  return s;
}

Instance TilingProblemAsInstance(const TilingProblem& tp,
                                 const VocabularyPtr& vocab,
                                 const DeltaSchema& schema) {
  Instance inst(vocab);
  for (int t = 0; t < tp.num_tiles; ++t) {
    inst.AddElement("tile" + std::to_string(t));
  }
  for (const auto& [a, b] : tp.hc) {
    inst.AddFact(schema.h, {static_cast<ElemId>(a), static_cast<ElemId>(b)});
  }
  for (const auto& [a, b] : tp.vc) {
    inst.AddFact(schema.v, {static_cast<ElemId>(a), static_cast<ElemId>(b)});
  }
  for (int t : tp.initial) inst.AddFact(schema.i, {static_cast<ElemId>(t)});
  for (int t : tp.final_tiles) {
    inst.AddFact(schema.f, {static_cast<ElemId>(t)});
  }
  return inst;
}

Instance GridInstance(int n, int m, const VocabularyPtr& vocab,
                      const DeltaSchema& schema) {
  Instance inst(vocab);
  auto elem = [&](int i, int j) {
    return static_cast<ElemId>((j - 1) * n + (i - 1));
  };
  for (int j = 1; j <= m; ++j) {
    for (int i = 1; i <= n; ++i) {
      inst.AddElement("g" + std::to_string(i) + "_" + std::to_string(j));
    }
  }
  inst.AddFact(schema.i, {elem(1, 1)});
  inst.AddFact(schema.f, {elem(n, m)});
  for (int j = 1; j <= m; ++j) {
    for (int i = 1; i < n; ++i) {
      inst.AddFact(schema.h, {elem(i, j), elem(i + 1, j)});
    }
  }
  for (int j = 1; j < m; ++j) {
    for (int i = 1; i <= n; ++i) {
      inst.AddFact(schema.v, {elem(i, j), elem(i, j + 1)});
    }
  }
  return inst;
}

bool CanBeTiled(const Instance& delta_instance, const TilingProblem& tp,
                const DeltaSchema& schema) {
  Instance target =
      TilingProblemAsInstance(tp, delta_instance.vocab(), schema);
  return HasHomomorphism(delta_instance, target);
}

TilingProblem SolvableTilingProblem() {
  // Two tiles alternating in both directions; tile 0 is initial, both are
  // final. Any n×m grid with the right parity can be tiled.
  TilingProblem tp;
  tp.num_tiles = 2;
  tp.hc = {{0, 1}, {1, 0}};
  tp.vc = {{0, 1}, {1, 0}};
  tp.initial = {0};
  tp.final_tiles = {0, 1};
  return tp;
}

TilingProblem UnsolvableTilingProblem() {
  // A single tile incompatible with itself horizontally and vertically:
  // only the 1×1 grid could be tiled, but the tile is not final.
  TilingProblem tp;
  tp.num_tiles = 1;
  tp.hc = {};
  tp.vc = {};
  tp.initial = {0};
  tp.final_tiles = {};
  return tp;
}

}  // namespace mondet
