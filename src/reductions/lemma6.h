#ifndef MONDET_REDUCTIONS_LEMMA6_H_
#define MONDET_REDUCTIONS_LEMMA6_H_

#include "reductions/tiling.h"

namespace mondet {

/// The Lemma 6 construction (adapted from Atserias–Bulatov–Dalmau [4]):
/// a tiling problem TP* such that no rectangular grid can be tiled, but
/// every grid is k-approximately tileable — I^grid_{n,m} →k I_TP* for all
/// 2 <= k < min{n,m}.
///
/// Tiles are pairs (u, b) of an abstract grid point u of the 3×3 grid and
/// a 0/1 assignment b to u's incident edges, with odd parity at (1,1) and
/// even parity elsewhere; compatibility forces edge assignments to agree
/// between neighbors.
TilingProblem MakeParityTilingProblem();

/// The abstract grid point (1..3, 1..3) of a TP* tile index.
std::pair<int, int> ParityTileAbstractPoint(int tile);

}  // namespace mondet

#endif  // MONDET_REDUCTIONS_LEMMA6_H_
