#include "reductions/thm6_stratified.h"

#include <set>
#include <string>

#include "base/check.h"
#include "datalog/eval.h"

namespace mondet {

namespace {

PredId ViewByName(const Thm6Gadget& gadget, const std::string& name) {
  auto id = gadget.vocab->FindPredicate(name);
  MONDET_CHECK(id.has_value());
  return *id;
}

}  // namespace

bool StratifiedRewritingHolds(const Thm6Gadget& gadget,
                              const Instance& image) {
  const VocabularyPtr& vocab = gadget.vocab;
  PredId s = ViewByName(gadget, "S");
  PredId vxsucc = ViewByName(gadget, "VXSucc");
  PredId vysucc = ViewByName(gadget, "VYSucc");
  PredId vxend = ViewByName(gadget, "VXEnd");
  PredId vyend = ViewByName(gadget, "VYEnd");
  PredId vhc = ViewByName(gadget, "VhelperC");
  PredId vhd = ViewByName(gadget, "VhelperD");
  PredId vha = ViewByName(gadget, "VHA");
  PredId vva = ViewByName(gadget, "VVA");
  PredId vi = ViewByName(gadget, "VI");
  PredId vf = ViewByName(gadget, "VF");
  std::vector<PredId> vtiles;
  for (int t = 0; t < gadget.tp.num_tiles; ++t) {
    vtiles.push_back(ViewByName(gadget, "VT" + std::to_string(t)));
  }

  // --- Disjunct 1/2: the helper views are non-empty. ----------------------
  if (image.NumRows(vhc) > 0 || image.NumRows(vhd) > 0) {
    return true;
  }

  // --- Disjunct 3: Q*_verify over the view atoms. --------------------------
  auto tile_of = [&](ElemId z) {
    std::set<int> tiles;
    for (int t = 0; t < gadget.tp.num_tiles; ++t) {
      if (!image.RowsWith(vtiles[t], 0, z).empty()) tiles.insert(t);
    }
    return tiles;
  };
  for (uint32_t row = 0; row < image.NumRows(vha); ++row) {
    const std::span<const ElemId> args = image.Args(vha, row);  // VHA(z1,z2,y,x1,x2)
    for (int t1 : tile_of(args[0])) {
      for (int t2 : tile_of(args[1])) {
        if (!gadget.tp.HcAllows(t1, t2)) return true;
      }
    }
  }
  for (uint32_t row = 0; row < image.NumRows(vva); ++row) {
    const std::span<const ElemId> args = image.Args(vva, row);  // VVA(z1,z2,y1,y2,x)
    for (int t1 : tile_of(args[0])) {
      for (int t2 : tile_of(args[1])) {
        if (!gadget.tp.VcAllows(t1, t2)) return true;
      }
    }
  }
  for (uint32_t row = 0; row < image.NumRows(vi); ++row) {
    const std::span<const ElemId> args = image.Args(vi, row);  // VI(o,x,y,z)
    for (int t : tile_of(args[3])) {
      if (!gadget.tp.IsInitial(t)) return true;
    }
  }
  for (uint32_t row = 0; row < image.NumRows(vf); ++row) {
    const std::span<const ElemId> args = image.Args(vf, row);  // VF(x,y,z)
    for (int t : tile_of(args[2])) {
      if (!gadget.tp.IsFinal(t)) return true;
    }
  }

  // --- Disjunct 4: Q*_start ∧ ProductTest. ---------------------------------
  // ProductTest: S equals the product of its projections (relational
  // algebra; the stratified stratum).
  std::set<ElemId> proj1;
  std::set<ElemId> proj2;
  for (uint32_t row = 0; row < image.NumRows(s); ++row) {
    const std::span<const ElemId> args = image.Args(s, row);
    proj1.insert(args[0]);
    proj2.insert(args[1]);
  }
  for (ElemId x : proj1) {
    for (ElemId y : proj2) {
      if (!image.HasFact(s, {x, y})) return false;  // ProductTest fails
    }
  }

  // Q*_start: Qstart with C/D replaced by the S-projections (mirroring the
  // repaired base rules of BuildThm6).
  Program prog(vocab);
  PredId sp1 = vocab->AddPredicate("Strat.SP1", 1);
  PredId sp2 = vocab->AddPredicate("Strat.SP2", 1);
  PredId apred = vocab->AddPredicate("Strat.A", 1);
  PredId bpred = vocab->AddPredicate("Strat.B", 1);
  PredId goal = vocab->AddPredicate("Strat.Goal", 0);
  {
    RuleBuilder b(vocab);
    b.Head(sp1, {"x"}).Atom(s, {"x", "y"});
    prog.AddRule(b.Build());
  }
  {
    RuleBuilder b(vocab);
    b.Head(sp2, {"y"}).Atom(s, {"x", "y"});
    prog.AddRule(b.Build());
  }
  {
    RuleBuilder b(vocab);
    b.Head(apred, {"x"})
        .Atom(vxsucc, {"x", "xp"})
        .Atom(sp1, {"xp"})
        .Atom(vxend, {"xp"});
    prog.AddRule(b.Build());
  }
  {
    RuleBuilder b(vocab);
    b.Head(apred, {"x"})
        .Atom(vxsucc, {"x", "xp"})
        .Atom(apred, {"xp"})
        .Atom(sp1, {"xp"});
    prog.AddRule(b.Build());
  }
  {
    RuleBuilder b(vocab);
    b.Head(bpred, {"y"})
        .Atom(vysucc, {"y", "yp"})
        .Atom(sp2, {"yp"})
        .Atom(vyend, {"yp"});
    prog.AddRule(b.Build());
  }
  {
    RuleBuilder b(vocab);
    b.Head(bpred, {"y"})
        .Atom(vysucc, {"y", "yp"})
        .Atom(bpred, {"yp"})
        .Atom(sp2, {"yp"});
    prog.AddRule(b.Build());
  }
  {
    RuleBuilder b(vocab);
    b.Head(goal, {}).Atom(apred, {"x"}).Atom(bpred, {"x"});
    prog.AddRule(b.Build());
  }
  return DatalogHoldsOn(DatalogQuery(std::move(prog), goal), image);
}

}  // namespace mondet
