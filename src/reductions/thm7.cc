#include "reductions/thm7.h"

#include <string>

#include "base/check.h"

namespace mondet {

Thm7Gadget BuildThm7() {
  VocabularyPtr vocab = MakeVocabulary();
  PredId a = vocab->AddPredicate("A", 2);
  PredId b = vocab->AddPredicate("B", 2);
  PredId c = vocab->AddPredicate("C", 2);
  PredId d = vocab->AddPredicate("D", 2);
  PredId u = vocab->AddPredicate("U", 1);
  PredId m = vocab->AddPredicate("M", 1);

  // Query: W(x) ← A(x,y),B(y,v),C(x,z),D(z,v),U(v)
  //        W(x) ← A(x,y),B(y,v),C(x,z),D(z,v),W(v)
  //        Goal ← W(x),M(x)
  PredId w = vocab->AddPredicate("W", 1);
  PredId goal = vocab->AddPredicate("Goal7", 0);
  Program prog(vocab);
  {
    RuleBuilder rb(vocab);
    rb.Head(w, {"x"})
        .Atom(a, {"x", "y"})
        .Atom(b, {"y", "v"})
        .Atom(c, {"x", "z"})
        .Atom(d, {"z", "v"})
        .Atom(u, {"v"});
    prog.AddRule(rb.Build());
  }
  {
    RuleBuilder rb(vocab);
    rb.Head(w, {"x"})
        .Atom(a, {"x", "y"})
        .Atom(b, {"y", "v"})
        .Atom(c, {"x", "z"})
        .Atom(d, {"z", "v"})
        .Atom(w, {"v"});
    prog.AddRule(rb.Build());
  }
  {
    RuleBuilder rb(vocab);
    rb.Head(goal, {}).Atom(w, {"x"}).Atom(m, {"x"});
    prog.AddRule(rb.Build());
  }
  DatalogQuery query(std::move(prog), goal);

  // Views: S(x,y,z) ← M(x),A(x,y),C(x,z)
  //        R(y,z,y',z') ← B(y,v),D(z,v),A(v,y'),C(v,z')
  //        T(y,z,v) ← U(v),B(y,v),D(z,v)
  ViewSet views(vocab);
  PredId s_view;
  PredId r_view;
  PredId t_view;
  {
    CQ cq(vocab);
    VarId x = cq.AddVar("x"), y = cq.AddVar("y"), z = cq.AddVar("z");
    cq.AddAtom(m, {x});
    cq.AddAtom(a, {x, y});
    cq.AddAtom(c, {x, z});
    cq.SetFreeVars({x, y, z});
    s_view = views.AddCqView("S", cq);
  }
  {
    CQ cq(vocab);
    VarId y = cq.AddVar("y"), z = cq.AddVar("z"), v = cq.AddVar("v"),
          yp = cq.AddVar("yp"), zp = cq.AddVar("zp");
    cq.AddAtom(b, {y, v});
    cq.AddAtom(d, {z, v});
    cq.AddAtom(a, {v, yp});
    cq.AddAtom(c, {v, zp});
    cq.SetFreeVars({y, z, yp, zp});
    r_view = views.AddCqView("R", cq);
  }
  {
    CQ cq(vocab);
    VarId y = cq.AddVar("y"), z = cq.AddVar("z"), v = cq.AddVar("v");
    cq.AddAtom(u, {v});
    cq.AddAtom(b, {y, v});
    cq.AddAtom(d, {z, v});
    cq.SetFreeVars({y, z, v});
    t_view = views.AddCqView("T", cq);
  }

  Thm7Gadget gadget(vocab, std::move(query), std::move(views));
  gadget.a = a;
  gadget.b = b;
  gadget.c = c;
  gadget.d = d;
  gadget.u = u;
  gadget.m = m;
  gadget.s_view = s_view;
  gadget.r_view = r_view;
  gadget.t_view = t_view;
  return gadget;
}

Instance Thm7Gadget::DiamondChain(int diamonds, bool mark_ends) const {
  MONDET_CHECK(diamonds >= 1);
  Instance inst(vocab);
  // Spine points s = p0, p1, .., p_n (n = diamonds); diamond i connects
  // p_{i-1} to p_i through fresh y_i (A/B path) and z_i (C/D path).
  std::vector<ElemId> spine;
  for (int i = 0; i <= diamonds; ++i) {
    spine.push_back(inst.AddElement("p" + std::to_string(i)));
  }
  for (int i = 1; i <= diamonds; ++i) {
    ElemId y = inst.AddElement("y" + std::to_string(i));
    ElemId z = inst.AddElement("z" + std::to_string(i));
    inst.AddFact(a, {spine[i - 1], y});
    inst.AddFact(b, {y, spine[i]});
    inst.AddFact(c, {spine[i - 1], z});
    inst.AddFact(d, {z, spine[i]});
  }
  if (mark_ends) {
    inst.AddFact(m, {spine.front()});
    inst.AddFact(u, {spine.back()});
  }
  return inst;
}

Instance Thm7Gadget::RRowPattern(int count) const {
  MONDET_CHECK(count >= 1);
  Instance inst(vocab);
  // R(y_i, z_i, y_{i+1}, z_{i+1}) for i = 0..count-1.
  std::vector<ElemId> ys;
  std::vector<ElemId> zs;
  for (int i = 0; i <= count; ++i) {
    ys.push_back(inst.AddElement("ry" + std::to_string(i)));
    zs.push_back(inst.AddElement("rz" + std::to_string(i)));
  }
  for (int i = 0; i < count; ++i) {
    inst.AddFact(r_view, {ys[i], zs[i], ys[i + 1], zs[i + 1]});
  }
  return inst;
}

}  // namespace mondet
