#ifndef MONDET_REDUCTIONS_TILING_H_
#define MONDET_REDUCTIONS_TILING_H_

#include <optional>
#include <utility>
#include <vector>

#include "base/instance.h"

namespace mondet {

/// A tiling problem TP = (Tiles, HC, VC, IT, FT) (Sec. 6). Tiles are
/// 0..num_tiles-1; HC/VC are the allowed horizontal/vertical neighbor
/// pairs; IT/FT are the initial (bottom-left) and final (top-right) tiles.
struct TilingProblem {
  int num_tiles = 0;
  std::vector<std::pair<int, int>> hc;
  std::vector<std::pair<int, int>> vc;
  std::vector<int> initial;
  std::vector<int> final_tiles;

  bool HcAllows(int a, int b) const;
  bool VcAllows(int a, int b) const;
  bool IsInitial(int t) const;
  bool IsFinal(int t) const;

  /// Searches for a solution on the n×m grid by backtracking. Returns the
  /// tile assignment in row-major order ((i,j) at index (j-1)*n+(i-1),
  /// 1-based grid coordinates) or nullopt.
  std::optional<std::vector<int>> Solve(int n, int m) const;

  /// True if some n×m grid with n <= max_n, m <= max_m has a solution.
  bool HasSolutionUpTo(int max_n, int max_m) const;
};

/// The δ = {H, V, I, F} schema used to phrase tilings as homomorphism
/// problems (Thm 8).
struct DeltaSchema {
  PredId h = kNoPred;  // binary
  PredId v = kNoPred;  // binary
  PredId i = kNoPred;  // unary
  PredId f = kNoPred;  // unary

  static DeltaSchema Create(const VocabularyPtr& vocab);
};

/// I_TP: the tiling problem as a δ-structure with the tiles as domain.
Instance TilingProblemAsInstance(const TilingProblem& tp,
                                 const VocabularyPtr& vocab,
                                 const DeltaSchema& schema);

/// I^grid_{n,m}: the n×m grid δ-instance with I((1,1)) and F((n,m)).
/// Element of grid point (i,j) (1-based) is (j-1)*n + (i-1).
Instance GridInstance(int n, int m, const VocabularyPtr& vocab,
                      const DeltaSchema& schema);

/// A δ-instance can be tiled by TP exactly when it maps homomorphically
/// into I_TP (Thm 8's characterization).
bool CanBeTiled(const Instance& delta_instance, const TilingProblem& tp,
                const DeltaSchema& schema);

/// A small tiling problem with a solution (used by undecidability benches).
TilingProblem SolvableTilingProblem();

/// A small tiling problem without any rectangular solution.
TilingProblem UnsolvableTilingProblem();

}  // namespace mondet

#endif  // MONDET_REDUCTIONS_TILING_H_
