#ifndef MONDET_REDUCTIONS_THM8_H_
#define MONDET_REDUCTIONS_THM8_H_

#include <optional>

#include "games/unravel.h"
#include "reductions/thm6.h"

namespace mondet {

/// The Thm 8 instance pipeline, executed on bounded unravellings:
///
///   I_ℓ  — the axes expansion of Qstart (Q_TP*(I_ℓ) = True);
///   E_ℓ  — its view image (S-facts form the ℓ×ℓ grid);
///   U_ℓ  — a k-unravelling of E_ℓ (depth-bounded truncation);
///   W_ℓ  — the δ-structure on U_ℓ's S-facts (grid points);
///   χ    — a TP*-tiling of W_ℓ (exists by Lemma 6: W_ℓ maps into I_TP*);
///   I'_ℓ — U_ℓ chased back to the base schema using χ.
///
/// The punchline (Q_TP* has no Datalog rewriting): Q(I_ℓ) = True,
/// Q(I'_ℓ) = False, yet U_ℓ ⊆ V(I'_ℓ), so the view images are
/// k-indistinguishable (Fact 4) and Fact 2 applies.
struct Thm8Pipeline {
  Instance axes;        // I_ℓ
  Instance image;       // E_ℓ
  Unravelling unravelling;  // U_ℓ with Φ
  Instance w_structure;     // W_ℓ over the δ schema
  std::vector<int> tiling;  // χ, per W_ℓ element
  Instance iprime;          // I'_ℓ

  bool tiled = false;  // χ was found (Lemma 6 direction)
};

/// Runs the pipeline for the ℓ×ℓ axes with bag size k and unravelling
/// depth `depth`. `gadget` must be built from a tiling problem; for the
/// theorem use MakeParityTilingProblem(). If no tiling of W_ℓ exists the
/// result has `tiled == false` and `iprime` empty (cannot happen for TP*
/// with 2 <= k < ℓ, per Lemma 6).
std::optional<Thm8Pipeline> BuildThm8Pipeline(const Thm6Gadget& gadget,
                                              int ell, int k, int depth,
                                              size_t max_nodes = 100000);

}  // namespace mondet

#endif  // MONDET_REDUCTIONS_THM8_H_
