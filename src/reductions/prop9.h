#ifndef MONDET_REDUCTIONS_PROP9_H_
#define MONDET_REDUCTIONS_PROP9_H_

#include "datalog/program.h"
#include "views/view_set.h"

namespace mondet {

/// Lemma 8 (Prop. 9): given Boolean Datalog queries Q1, Q2 over a shared
/// base schema, builds Q = (Q1 ∧ e) ∨ Q2 (e a fresh 0-ary EDB) and the
/// views exposing every base predicate of Q except e. Then Q1 ⊑ Q2 iff Q
/// is monotonically determined by the views.
struct Prop9Reduction {
  DatalogQuery query;
  ViewSet views;

  Prop9Reduction(DatalogQuery q, ViewSet v)
      : query(std::move(q)), views(std::move(v)) {}
};

Prop9Reduction ContainmentToMonDet(const DatalogQuery& q1,
                                   const DatalogQuery& q2);

/// Lemma 7 (Prop. 9): Q is monotonically determined by the single view
/// (V, Q_V) iff Q ≡ Q_V. This builder just packages the pair for the
/// equivalence-based benches.
struct Lemma7Instance {
  DatalogQuery query;
  ViewSet views;

  Lemma7Instance(DatalogQuery q, ViewSet v)
      : query(std::move(q)), views(std::move(v)) {}
};

Lemma7Instance EquivalenceToMonDet(const DatalogQuery& q,
                                   const DatalogQuery& view_def);

}  // namespace mondet

#endif  // MONDET_REDUCTIONS_PROP9_H_
