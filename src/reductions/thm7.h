#ifndef MONDET_REDUCTIONS_THM7_H_
#define MONDET_REDUCTIONS_THM7_H_

#include "datalog/program.h"
#include "views/view_set.h"

namespace mondet {

/// The Thm 7 gadget: an MDL query Q over schema {A,B,C,D,U,M} that checks
/// for an M-point connected to a U-point by a chain of "diamonds", and CQ
/// views {S,R,T} over which Q is Datalog-rewritable but not
/// MDL-rewritable.
struct Thm7Gadget {
  VocabularyPtr vocab;
  DatalogQuery query;
  ViewSet views;

  PredId a, b, c, d, u, m;        // base schema
  PredId s_view, r_view, t_view;  // view predicates

  Thm7Gadget(VocabularyPtr v, DatalogQuery q, ViewSet vs)
      : vocab(std::move(v)), query(std::move(q)), views(std::move(vs)) {}

  /// I_k: a chain of `diamonds` diamonds from an M-marked source to a
  /// U-marked sink (Figure 3(a)). Q holds iff `mark_ends` is true.
  Instance DiamondChain(int diamonds, bool mark_ends = true) const;

  /// The Figure 4 pattern: a row of `count` R-rectangles, as an instance
  /// over the view schema.
  Instance RRowPattern(int count) const;
};

Thm7Gadget BuildThm7();

}  // namespace mondet

#endif  // MONDET_REDUCTIONS_THM7_H_
