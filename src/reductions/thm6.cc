#include "reductions/thm6.h"

#include <string>

#include "base/check.h"
#include "datalog/parser.h"

namespace mondet {

namespace {

/// Adds rule (8)/(9)-style adjacency bodies. HA(z1,z2,x1,x2,y) checks that
/// z2 is the right neighbor of z1; VA checks vertical adjacency. (The
/// paper's displayed VA formula has a typo — "XSucc(y1,y2)" — which
/// Figure 1(b) and the Thm 8 proof correct to YSucc(y1,y2); rule (10) is
/// likewise used with YProj(y,z) in the Thm 8 proof.)
void AddHaBody(RuleBuilder& b, const Thm6Gadget& g) {
  b.Atom(g.yproj, {"y", "z1"});
  b.Atom(g.yproj, {"y", "z2"});
  b.Atom(g.xproj, {"x1", "z1"});
  b.Atom(g.xproj, {"x2", "z2"});
  b.Atom(g.xsucc, {"x1", "x2"});
}

void AddVaBody(RuleBuilder& b, const Thm6Gadget& g) {
  b.Atom(g.yproj, {"y1", "z1"});
  b.Atom(g.yproj, {"y2", "z2"});
  b.Atom(g.xproj, {"x", "z1"});
  b.Atom(g.xproj, {"x", "z2"});
  b.Atom(g.ysucc, {"y1", "y2"});
}

}  // namespace

Thm6Gadget BuildThm6(const TilingProblem& tp) {
  VocabularyPtr vocab = MakeVocabulary();

  // Base schema σ.
  PredId xsucc = vocab->AddPredicate("XSucc", 2);
  PredId ysucc = vocab->AddPredicate("YSucc", 2);
  PredId cpred = vocab->AddPredicate("C", 1);
  PredId dpred = vocab->AddPredicate("D", 1);
  PredId xend = vocab->AddPredicate("XEnd", 1);
  PredId yend = vocab->AddPredicate("YEnd", 1);
  PredId xproj = vocab->AddPredicate("XProj", 2);
  PredId yproj = vocab->AddPredicate("YProj", 2);
  std::vector<PredId> tiles;
  for (int t = 0; t < tp.num_tiles; ++t) {
    tiles.push_back(vocab->AddPredicate("T" + std::to_string(t), 1));
  }

  // --- Query Q_TP: rules (1)–(11) with one 0-ary goal. ------------------
  PredId goal = vocab->AddPredicate("QTP", 0);
  PredId apred = vocab->AddPredicate("A", 1);
  PredId bpred = vocab->AddPredicate("B", 1);
  Program prog(vocab);

  {  // (1) Qstart ← A(x), B(x)
    RuleBuilder b(vocab);
    b.Head(goal, {}).Atom(apred, {"x"}).Atom(bpred, {"x"});
    prog.AddRule(b.Build());
  }
  {  // (2) A(x) ← XSucc(x,x'), A(x'), C(x')
    RuleBuilder b(vocab);
    b.Head(apred, {"x"})
        .Atom(xsucc, {"x", "xp"})
        .Atom(apred, {"xp"})
        .Atom(cpred, {"xp"});
    prog.AddRule(b.Build());
  }
  {  // (3) base case. The paper writes A(x) ← XEnd(x); we use
     //     A(x) ← XSucc(x,x'), C(x'), XEnd(x') so that every Qstart
     //     approximation carries at least one C (and, symmetrically, one
     //     D) mark. Without this, the degenerate approximation with an
     //     empty y-axis has a view image with no S-facts at all, whose
     //     inverse expansion loses the C marks and falsifies Q — a
     //     failing test that exists regardless of the tiling problem.
     //     The repaired gadget restores Prop. 10 verbatim (grids start at
     //     1×1). See DESIGN.md, "substitutions".
    RuleBuilder b(vocab);
    b.Head(apred, {"x"})
        .Atom(xsucc, {"x", "xp"})
        .Atom(cpred, {"xp"})
        .Atom(xend, {"xp"});
    prog.AddRule(b.Build());
  }
  {  // (4) B(y) ← YSucc(y,y'), B(y'), D(y')
    RuleBuilder b(vocab);
    b.Head(bpred, {"y"})
        .Atom(ysucc, {"y", "yp"})
        .Atom(bpred, {"yp"})
        .Atom(dpred, {"yp"});
    prog.AddRule(b.Build());
  }
  {  // (5) base case, repaired symmetrically to (3).
    RuleBuilder b(vocab);
    b.Head(bpred, {"y"})
        .Atom(ysucc, {"y", "yp"})
        .Atom(dpred, {"yp"})
        .Atom(yend, {"yp"});
    prog.AddRule(b.Build());
  }
  {  // (6) Qhelper ← C(u), YProj(y,z), XProj(x,z)
    RuleBuilder b(vocab);
    b.Head(goal, {})
        .Atom(cpred, {"u"})
        .Atom(yproj, {"y", "z"})
        .Atom(xproj, {"x", "z"});
    prog.AddRule(b.Build());
  }
  {  // (7) Qhelper ← D(u), YProj(y,z), XProj(x,z)
    RuleBuilder b(vocab);
    b.Head(goal, {})
        .Atom(dpred, {"u"})
        .Atom(yproj, {"y", "z"})
        .Atom(xproj, {"x", "z"});
    prog.AddRule(b.Build());
  }

  Thm6Gadget partial(vocab, DatalogQuery(Program(vocab), goal),
                     ViewSet(vocab), tp);
  partial.xsucc = xsucc;
  partial.ysucc = ysucc;
  partial.cpred = cpred;
  partial.dpred = dpred;
  partial.xend = xend;
  partial.yend = yend;
  partial.xproj = xproj;
  partial.yproj = yproj;
  partial.tile_preds = tiles;

  // (8) horizontal violations.
  for (int t1 = 0; t1 < tp.num_tiles; ++t1) {
    for (int t2 = 0; t2 < tp.num_tiles; ++t2) {
      if (tp.HcAllows(t1, t2)) continue;
      RuleBuilder b(vocab);
      b.Head(goal, {});
      AddHaBody(b, partial);
      b.Atom(tiles[t1], {"z1"}).Atom(tiles[t2], {"z2"});
      prog.AddRule(b.Build());
    }
  }
  // (9) vertical violations.
  for (int t1 = 0; t1 < tp.num_tiles; ++t1) {
    for (int t2 = 0; t2 < tp.num_tiles; ++t2) {
      if (tp.VcAllows(t1, t2)) continue;
      RuleBuilder b(vocab);
      b.Head(goal, {});
      AddVaBody(b, partial);
      b.Atom(tiles[t1], {"z1"}).Atom(tiles[t2], {"z2"});
      prog.AddRule(b.Build());
    }
  }
  // (10) initial-tile violations at the origin cell (1,1).
  for (int t = 0; t < tp.num_tiles; ++t) {
    if (tp.IsInitial(t)) continue;
    RuleBuilder b(vocab);
    b.Head(goal, {})
        .Atom(ysucc, {"o", "y"})
        .Atom(yproj, {"y", "z"})
        .Atom(xsucc, {"o", "x"})
        .Atom(xproj, {"x", "z"})
        .Atom(tiles[t], {"z"});
    prog.AddRule(b.Build());
  }
  // (11) final-tile violations at the top-right cell (n,m).
  for (int t = 0; t < tp.num_tiles; ++t) {
    if (tp.IsFinal(t)) continue;
    RuleBuilder b(vocab);
    b.Head(goal, {})
        .Atom(yend, {"y"})
        .Atom(yproj, {"y", "z"})
        .Atom(tiles[t], {"z"})
        .Atom(xproj, {"x", "z"})
        .Atom(xend, {"x"});
    prog.AddRule(b.Build());
  }

  DatalogQuery query(std::move(prog), goal);

  // --- Views V_TP. --------------------------------------------------------
  ViewSet views(vocab);
  {
    // Grid-generating view S (a UCQ view).
    Program sdef(vocab);
    PredId sgoal = vocab->AddPredicate("S.def", 2);
    {
      RuleBuilder b(vocab);
      b.Head(sgoal, {"x", "y"}).Atom(cpred, {"x"}).Atom(dpred, {"y"});
      sdef.AddRule(b.Build());
    }
    for (int t = 0; t < tp.num_tiles; ++t) {
      RuleBuilder b(vocab);
      b.Head(sgoal, {"x", "y"})
          .Atom(xproj, {"x", "z"})
          .Atom(tiles[t], {"z"})
          .Atom(yproj, {"y", "z"});
      sdef.AddRule(b.Build());
    }
    views.AddView("S", DatalogQuery(std::move(sdef), sgoal));
  }
  views.AddAtomicView("VYSucc", ysucc);
  views.AddAtomicView("VXSucc", xsucc);
  views.AddAtomicView("VYEnd", yend);
  views.AddAtomicView("VXEnd", xend);
  for (int t = 0; t < tp.num_tiles; ++t) {
    views.AddAtomicView("VT" + std::to_string(t), tiles[t]);
  }
  {
    CQ cq(vocab);
    VarId u = cq.AddVar("u"), x = cq.AddVar("x"), y = cq.AddVar("y"),
          z = cq.AddVar("z");
    cq.AddAtom(cpred, {u});
    cq.AddAtom(xproj, {x, z});
    cq.AddAtom(yproj, {y, z});
    cq.SetFreeVars({u, x, y, z});
    views.AddCqView("VhelperC", cq);
  }
  {
    CQ cq(vocab);
    VarId u = cq.AddVar("u"), x = cq.AddVar("x"), y = cq.AddVar("y"),
          z = cq.AddVar("z");
    cq.AddAtom(dpred, {u});
    cq.AddAtom(xproj, {x, z});
    cq.AddAtom(yproj, {y, z});
    cq.SetFreeVars({u, x, y, z});
    views.AddCqView("VhelperD", cq);
  }
  {
    CQ cq(vocab);
    VarId z1 = cq.AddVar("z1"), z2 = cq.AddVar("z2"), y = cq.AddVar("y"),
          x1 = cq.AddVar("x1"), x2 = cq.AddVar("x2");
    cq.AddAtom(yproj, {y, z1});
    cq.AddAtom(yproj, {y, z2});
    cq.AddAtom(xproj, {x1, z1});
    cq.AddAtom(xproj, {x2, z2});
    cq.AddAtom(xsucc, {x1, x2});
    cq.SetFreeVars({z1, z2, y, x1, x2});
    views.AddCqView("VHA", cq);
  }
  {
    CQ cq(vocab);
    VarId z1 = cq.AddVar("z1"), z2 = cq.AddVar("z2"), y1 = cq.AddVar("y1"),
          y2 = cq.AddVar("y2"), x = cq.AddVar("x");
    cq.AddAtom(yproj, {y1, z1});
    cq.AddAtom(yproj, {y2, z2});
    cq.AddAtom(xproj, {x, z1});
    cq.AddAtom(xproj, {x, z2});
    cq.AddAtom(ysucc, {y1, y2});
    cq.SetFreeVars({z1, z2, y1, y2, x});
    views.AddCqView("VVA", cq);
  }
  {
    CQ cq(vocab);
    VarId o = cq.AddVar("o"), x = cq.AddVar("x"), y = cq.AddVar("y"),
          z = cq.AddVar("z");
    cq.AddAtom(xsucc, {o, x});
    cq.AddAtom(xproj, {x, z});
    cq.AddAtom(ysucc, {o, y});
    cq.AddAtom(yproj, {y, z});
    cq.SetFreeVars({o, x, y, z});
    views.AddCqView("VI", cq);
  }
  {
    CQ cq(vocab);
    VarId x = cq.AddVar("x"), y = cq.AddVar("y"), z = cq.AddVar("z");
    cq.AddAtom(xproj, {x, z});
    cq.AddAtom(xend, {x});
    cq.AddAtom(yend, {y});
    cq.AddAtom(yproj, {y, z});
    cq.SetFreeVars({x, y, z});
    views.AddCqView("VF", cq);
  }

  Thm6Gadget gadget(vocab, std::move(query), std::move(views), tp);
  gadget.xsucc = xsucc;
  gadget.ysucc = ysucc;
  gadget.cpred = cpred;
  gadget.dpred = dpred;
  gadget.xend = xend;
  gadget.yend = yend;
  gadget.xproj = xproj;
  gadget.yproj = yproj;
  gadget.tile_preds = tiles;
  return gadget;
}

Instance Thm6Gadget::MakeAxes(int n, int m) const {
  Instance inst(vocab);
  ElemId z0 = inst.AddElement("z0");
  std::vector<ElemId> xs;
  std::vector<ElemId> ys;
  for (int i = 1; i <= n; ++i) {
    xs.push_back(inst.AddElement("x" + std::to_string(i)));
  }
  for (int j = 1; j <= m; ++j) {
    ys.push_back(inst.AddElement("y" + std::to_string(j)));
  }
  inst.AddFact(xsucc, {z0, xs[0]});
  inst.AddFact(ysucc, {z0, ys[0]});
  for (int i = 0; i + 1 < n; ++i) inst.AddFact(xsucc, {xs[i], xs[i + 1]});
  for (int j = 0; j + 1 < m; ++j) inst.AddFact(ysucc, {ys[j], ys[j + 1]});
  for (ElemId x : xs) inst.AddFact(cpred, {x});
  for (ElemId y : ys) inst.AddFact(dpred, {y});
  inst.AddFact(xend, {xs.back()});
  inst.AddFact(yend, {ys.back()});
  return inst;
}

Instance Thm6Gadget::MakeGridTest(int n, int m,
                                  const std::vector<int>& assignment) const {
  MONDET_CHECK(assignment.size() == static_cast<size_t>(n) * m);
  Instance inst(vocab);
  ElemId z0 = inst.AddElement("z0");
  std::vector<ElemId> xs;
  std::vector<ElemId> ys;
  for (int i = 1; i <= n; ++i) {
    xs.push_back(inst.AddElement("x" + std::to_string(i)));
  }
  for (int j = 1; j <= m; ++j) {
    ys.push_back(inst.AddElement("y" + std::to_string(j)));
  }
  inst.AddFact(xsucc, {z0, xs[0]});
  inst.AddFact(ysucc, {z0, ys[0]});
  for (int i = 0; i + 1 < n; ++i) inst.AddFact(xsucc, {xs[i], xs[i + 1]});
  for (int j = 0; j + 1 < m; ++j) inst.AddFact(ysucc, {ys[j], ys[j + 1]});
  inst.AddFact(xend, {xs.back()});
  inst.AddFact(yend, {ys.back()});
  for (int j = 1; j <= m; ++j) {
    for (int i = 1; i <= n; ++i) {
      ElemId z = inst.AddElement("z" + std::to_string(i) + "_" +
                                 std::to_string(j));
      inst.AddFact(xproj, {xs[i - 1], z});
      inst.AddFact(yproj, {ys[j - 1], z});
      int tile = assignment[static_cast<size_t>(j - 1) * n + (i - 1)];
      inst.AddFact(tile_preds[tile], {z});
    }
  }
  return inst;
}

}  // namespace mondet
