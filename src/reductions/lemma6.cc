#include "reductions/lemma6.h"

#include <map>
#include <vector>

#include "base/check.h"

namespace mondet {

namespace {

struct Point {
  int i = 0;
  int j = 0;
  bool operator<(const Point& o) const {
    if (i != o.i) return i < o.i;
    return j < o.j;
  }
  bool operator==(const Point& o) const { return i == o.i && j == o.j; }
};

using Edge = std::pair<Point, Point>;  // endpoints, smaller first

Edge MakeEdge(Point a, Point b) {
  if (b < a) std::swap(a, b);
  return {a, b};
}

/// Incident edges of u in the fixed order: left, right, down, up
/// (only those present in the 3×3 grid).
std::vector<Edge> IncidentEdges(Point u) {
  std::vector<Edge> out;
  if (u.i > 1) out.push_back(MakeEdge({u.i - 1, u.j}, u));
  if (u.i < 3) out.push_back(MakeEdge(u, {u.i + 1, u.j}));
  if (u.j > 1) out.push_back(MakeEdge({u.i, u.j - 1}, u));
  if (u.j < 3) out.push_back(MakeEdge(u, {u.i, u.j + 1}));
  return out;
}

int EdgeIndex(const std::vector<Edge>& edges, const Edge& e) {
  for (size_t i = 0; i < edges.size(); ++i) {
    if (edges[i] == e) return static_cast<int>(i);
  }
  return -1;
}

struct Tile {
  Point point;
  std::vector<int> bits;  // parallel to IncidentEdges(point)
};

}  // namespace

TilingProblem MakeParityTilingProblem() {
  // Enumerate tiles.
  std::vector<Tile> tiles;
  for (int i = 1; i <= 3; ++i) {
    for (int j = 1; j <= 3; ++j) {
      Point u{i, j};
      int degree = static_cast<int>(IncidentEdges(u).size());
      int want_parity = (i == 1 && j == 1) ? 1 : 0;
      for (int mask = 0; mask < (1 << degree); ++mask) {
        int parity = 0;
        std::vector<int> bits(degree);
        for (int b = 0; b < degree; ++b) {
          bits[b] = (mask >> b) & 1;
          parity ^= bits[b];
        }
        if (parity == want_parity) tiles.push_back(Tile{u, bits});
      }
    }
  }

  TilingProblem tp;
  tp.num_tiles = static_cast<int>(tiles.size());
  for (int t = 0; t < tp.num_tiles; ++t) {
    if (tiles[t].point == Point{1, 1}) tp.initial.push_back(t);
    if (tiles[t].point == Point{3, 3}) tp.final_tiles.push_back(t);
  }

  auto bit_of = [&](const Tile& t, const Edge& e) {
    int idx = EdgeIndex(IncidentEdges(t.point), e);
    return idx < 0 ? -1 : t.bits[idx];
  };

  for (int t1 = 0; t1 < tp.num_tiles; ++t1) {
    for (int t2 = 0; t2 < tp.num_tiles; ++t2) {
      const Tile& a = tiles[t1];
      const Tile& b = tiles[t2];
      // Horizontal compatibility.
      if (a.point.j == b.point.j) {
        if (b.point.i == a.point.i + 1) {
          // Distinct abstract points joined by a horizontal edge.
          Edge e = MakeEdge(a.point, b.point);
          if (bit_of(a, e) == bit_of(b, e)) tp.hc.emplace_back(t1, t2);
        } else if (a.point == b.point && a.point.i == 2) {
          // Repeated interior column: right edge of a = left edge of b.
          Edge right = MakeEdge(a.point, {3, a.point.j});
          Edge left = MakeEdge({1, a.point.j}, a.point);
          if (bit_of(a, right) == bit_of(b, left)) {
            tp.hc.emplace_back(t1, t2);
          }
        }
      }
      // Vertical compatibility.
      if (a.point.i == b.point.i) {
        if (b.point.j == a.point.j + 1) {
          Edge e = MakeEdge(a.point, b.point);
          if (bit_of(a, e) == bit_of(b, e)) tp.vc.emplace_back(t1, t2);
        } else if (a.point == b.point && a.point.j == 2) {
          Edge up = MakeEdge(a.point, {a.point.i, 3});
          Edge down = MakeEdge({a.point.i, 1}, a.point);
          if (bit_of(a, up) == bit_of(b, down)) {
            tp.vc.emplace_back(t1, t2);
          }
        }
      }
    }
  }
  return tp;
}

std::pair<int, int> ParityTileAbstractPoint(int tile) {
  // Reconstruct by re-enumerating in the same order as the builder.
  int index = 0;
  for (int i = 1; i <= 3; ++i) {
    for (int j = 1; j <= 3; ++j) {
      Point u{i, j};
      int degree = static_cast<int>(IncidentEdges(u).size());
      int want_parity = (i == 1 && j == 1) ? 1 : 0;
      for (int mask = 0; mask < (1 << degree); ++mask) {
        int parity = 0;
        for (int b = 0; b < degree; ++b) parity ^= (mask >> b) & 1;
        if (parity == want_parity) {
          if (index == tile) return {i, j};
          ++index;
        }
      }
    }
  }
  MONDET_CHECK(false);
  return {0, 0};
}

}  // namespace mondet
