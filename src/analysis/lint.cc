#include "analysis/lint.h"

#include <cctype>
#include <map>
#include <sstream>

#include "analysis/dataflow.h"
#include "datalog/parser.h"

namespace mondet {

namespace {

/// Extracts the name from the first "# goal: Name" comment line, if any.
std::string GoalFromComments(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    size_t hash = line.find('#');
    if (hash == std::string::npos) continue;
    size_t pos = line.find("goal:", hash);
    if (pos == std::string::npos) continue;
    pos += 5;
    while (pos < line.size() && std::isspace(static_cast<unsigned char>(
                                    line[pos]))) {
      ++pos;
    }
    size_t end = pos;
    while (end < line.size() &&
           (std::isalnum(static_cast<unsigned char>(line[end])) ||
            line[end] == '_' || line[end] == '\'')) {
      ++end;
    }
    if (end > pos) return line.substr(pos, end - pos);
  }
  return "";
}

const char* YesNo(bool b) { return b ? "yes" : "no"; }

std::string RenderText(const LintResult& result, const Program* program,
                       const VocabularyPtr& vocab) {
  std::ostringstream os;
  if (program) {
    os << "program: " << result.num_rules << " rules, "
       << program->Idbs().size() << " IDB(s), " << program->Edbs().size()
       << " EDB(s)\n";
    const FragmentClassification& f = result.analysis.fragments;
    os << "fragments: non-recursive=" << YesNo(f.non_recursive)
       << " monadic=" << YesNo(f.monadic)
       << " frontier-guarded=" << YesNo(f.frontier_guarded) << "\n";
  }
  os << FormatDiagnostics(result.diagnostics);
  os << "summary: " << CountSeverity(result.diagnostics, Severity::kError)
     << " error(s), " << CountSeverity(result.diagnostics, Severity::kWarning)
     << " warning(s), " << CountSeverity(result.diagnostics, Severity::kNote)
     << " note(s)\n";
  (void)vocab;
  return os.str();
}

std::string RenderJson(const LintResult& result, const Program* program) {
  std::ostringstream os;
  os << "{\"ok\":" << (result.exit_code == 0 ? "true" : "false")
     << ",\"parsed\":" << (result.parsed ? "true" : "false")
     << ",\"rules\":" << result.num_rules << ",\"errors\":"
     << CountSeverity(result.diagnostics, Severity::kError)
     << ",\"warnings\":"
     << CountSeverity(result.diagnostics, Severity::kWarning)
     << ",\"notes\":" << CountSeverity(result.diagnostics, Severity::kNote)
     << ",\"disabled_checks\":[";
  for (size_t i = 0; i < result.analysis.disabled_checks.size(); ++i) {
    if (i) os << ",";
    os << JsonQuote(result.analysis.disabled_checks[i]);
  }
  os << "]";
  if (program) {
    const FragmentClassification& f = result.analysis.fragments;
    const RecursionReport& r = result.analysis.recursion;
    os << ",\"fragments\":{\"non_recursive\":"
       << (f.non_recursive ? "true" : "false")
       << ",\"monadic\":" << (f.monadic ? "true" : "false")
       << ",\"frontier_guarded\":" << (f.frontier_guarded ? "true" : "false")
       << "}";
    os << ",\"recursion\":{\"strata\":" << r.num_strata
       << ",\"recursive\":" << (r.recursive ? "true" : "false")
       << ",\"linear\":" << (r.linear ? "true" : "false")
       << ",\"cyclic_idbs\":[";
    for (size_t i = 0; i < r.cyclic_idbs.size(); ++i) {
      if (i) os << ",";
      os << JsonQuote(program->vocab()->name(r.cyclic_idbs[i]));
    }
    os << "]}";
  }
  if (!result.dataflow.empty()) {
    os << ",\"dataflow\":" << JsonQuote(result.dataflow);
  }
  os << ",\"diagnostics\":" << DiagnosticsToJson(result.diagnostics) << "}";
  return os.str();
}

const char* SarifLevel(Severity s) {
  switch (s) {
    case Severity::kError:
      return "error";
    case Severity::kWarning:
      return "warning";
    case Severity::kNote:
      return "note";
  }
  return "none";
}

}  // namespace

std::string LintRunToSarif(const std::vector<FileLint>& files) {
  // Rule table: the distinct check ids across all files, sorted so the
  // document is independent of diagnostic order.
  std::map<std::string, size_t> rule_index;
  for (const FileLint& f : files) {
    for (const Diagnostic& d : f.result.diagnostics) {
      rule_index.emplace(d.check, 0);
    }
  }
  size_t next = 0;
  for (auto& [check, index] : rule_index) index = next++;

  std::ostringstream os;
  os << "{\"$schema\":"
        "\"https://json.schemastore.org/sarif-2.1.0.json\","
        "\"version\":\"2.1.0\",\"runs\":[{\"tool\":{\"driver\":"
        "{\"name\":\"mondet-lint\","
        "\"informationUri\":\"docs/ANALYSIS.md\",\"rules\":[";
  bool first = true;
  for (const auto& [check, index] : rule_index) {
    if (!first) os << ",";
    first = false;
    os << "{\"id\":" << JsonQuote(check) << "}";
  }
  os << "]}},\"artifacts\":[";
  for (size_t i = 0; i < files.size(); ++i) {
    if (i) os << ",";
    os << "{\"location\":{\"uri\":" << JsonQuote(files[i].path) << "}}";
  }
  os << "],\"results\":[";
  first = true;
  for (size_t i = 0; i < files.size(); ++i) {
    for (const Diagnostic& d : files[i].result.diagnostics) {
      if (!first) os << ",";
      first = false;
      os << "{\"ruleId\":" << JsonQuote(d.check)
         << ",\"ruleIndex\":" << rule_index.at(d.check)
         << ",\"level\":\"" << SarifLevel(d.severity)
         << "\",\"message\":{\"text\":" << JsonQuote(d.message)
         << "},\"locations\":[{\"physicalLocation\":{\"artifactLocation\":"
            "{\"uri\":"
         << JsonQuote(files[i].path) << ",\"index\":" << i << "}";
      if (d.loc.line > 0) {
        os << ",\"region\":{\"startLine\":" << d.loc.line;
        if (d.loc.col > 0) os << ",\"startColumn\":" << d.loc.col;
        os << "}";
      }
      os << "}}]}";
    }
  }
  os << "]}]}";
  return os.str();
}

std::optional<Fragment> ParseFragmentName(const std::string& name) {
  if (name == "non-recursive") return Fragment::kNonRecursive;
  if (name == "monadic") return Fragment::kMonadic;
  if (name == "frontier-guarded") return Fragment::kFrontierGuarded;
  return std::nullopt;
}

LintResult LintProgramText(const std::string& text,
                           const LintOptions& options) {
  LintResult result;
  VocabularyPtr vocab = MakeVocabulary();
  ParseResult parsed = ParseProgram(text, vocab);
  if (!parsed.ok()) {
    result.diagnostics = parsed.diagnostics;
    result.exit_code = 1;
    result.text = RenderText(result, nullptr, vocab);
    result.json = RenderJson(result, nullptr);
    return result;
  }
  result.parsed = true;
  const Program& program = *parsed.program;
  result.num_rules = program.rules().size();

  AnalysisOptions analysis_options;
  analysis_options.required_fragments = options.required_fragments;
  std::string goal_name =
      options.goal.empty() ? GoalFromComments(text) : options.goal;
  if (!goal_name.empty()) {
    auto goal = vocab->FindPredicate(goal_name);
    if (goal) {
      analysis_options.goal = *goal;
    } else {
      result.diagnostics.push_back(MakeDiagnostic(
          Severity::kError, "goal",
          "goal predicate " + goal_name + " does not occur in the program"));
    }
  }
  ProgramAnalyzer analyzer;
  for (const std::string& id : options.disabled_checks) {
    if (!analyzer.DisableCheck(id)) {
      result.diagnostics.push_back(MakeDiagnostic(
          Severity::kWarning, "unknown-check",
          "--disable-check " + id + " matches no registered check"));
    }
  }
  result.analysis = analyzer.Analyze(program, analysis_options);
  result.diagnostics.insert(result.diagnostics.end(),
                            result.analysis.diagnostics.begin(),
                            result.analysis.diagnostics.end());
  if (options.dataflow_dump) {
    result.dataflow = DescribeDataflow(
        program,
        AnalyzeDataflow(program, analysis_options.goal, nullptr), nullptr);
  }
  bool failed = HasErrors(result.diagnostics) ||
                (options.werror &&
                 CountSeverity(result.diagnostics, Severity::kWarning) > 0);
  result.exit_code = failed ? 1 : 0;
  result.text = RenderText(result, &program, vocab) + result.dataflow;
  result.json = RenderJson(result, &program);
  return result;
}

}  // namespace mondet
