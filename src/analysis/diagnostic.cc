#include "analysis/diagnostic.h"

#include <sstream>

namespace mondet {

const char* SeverityName(Severity s) {
  switch (s) {
    case Severity::kNote:
      return "note";
    case Severity::kWarning:
      return "warning";
    case Severity::kError:
      return "error";
  }
  return "unknown";
}

Diagnostic MakeDiagnostic(Severity severity, std::string check,
                          std::string message, SourceLoc loc) {
  Diagnostic d;
  d.severity = severity;
  d.check = std::move(check);
  d.message = std::move(message);
  d.loc = std::move(loc);
  return d;
}

bool HasErrors(const std::vector<Diagnostic>& diagnostics) {
  for (const Diagnostic& d : diagnostics) {
    if (d.severity == Severity::kError) return true;
  }
  return false;
}

size_t CountSeverity(const std::vector<Diagnostic>& diagnostics, Severity s) {
  size_t n = 0;
  for (const Diagnostic& d : diagnostics) {
    if (d.severity == s) ++n;
  }
  return n;
}

std::string FormatDiagnostic(const Diagnostic& d) {
  std::ostringstream os;
  os << SeverityName(d.severity) << "[" << d.check << "]";
  if (d.loc.line > 0) os << " line " << d.loc.line << ":" << d.loc.col;
  if (d.loc.rule >= 0) {
    os << " rule " << d.loc.rule;
    if (!d.loc.atoms.empty()) {
      os << " (";
      for (size_t i = 0; i < d.loc.atoms.size(); ++i) {
        if (i) os << ", ";
        if (d.loc.atoms[i] == SourceLoc::kHead) {
          os << "head";
        } else {
          os << "atom " << d.loc.atoms[i];
        }
      }
      os << ")";
    }
  }
  if (!d.loc.vars.empty()) {
    os << " {";
    for (size_t i = 0; i < d.loc.vars.size(); ++i) {
      if (i) os << ", ";
      os << d.loc.vars[i];
    }
    os << "}";
  }
  os << ": " << d.message;
  return os.str();
}

std::string FormatDiagnostics(const std::vector<Diagnostic>& diagnostics) {
  std::string out;
  for (const Diagnostic& d : diagnostics) {
    out += FormatDiagnostic(d);
    out += '\n';
  }
  return out;
}

std::string JsonQuote(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

std::string DiagnosticsToJson(const std::vector<Diagnostic>& diagnostics) {
  std::ostringstream os;
  os << "[";
  for (size_t i = 0; i < diagnostics.size(); ++i) {
    const Diagnostic& d = diagnostics[i];
    if (i) os << ",";
    os << "{\"severity\":" << JsonQuote(SeverityName(d.severity))
       << ",\"check\":" << JsonQuote(d.check)
       << ",\"message\":" << JsonQuote(d.message)
       << ",\"rule\":" << d.loc.rule << ",\"atoms\":[";
    for (size_t j = 0; j < d.loc.atoms.size(); ++j) {
      if (j) os << ",";
      os << d.loc.atoms[j];
    }
    os << "],\"vars\":[";
    for (size_t j = 0; j < d.loc.vars.size(); ++j) {
      if (j) os << ",";
      os << JsonQuote(d.loc.vars[j]);
    }
    os << "],\"line\":" << d.loc.line << ",\"col\":" << d.loc.col << "}";
  }
  os << "]";
  return os.str();
}

}  // namespace mondet
