#ifndef MONDET_ANALYSIS_ANALYZER_H_
#define MONDET_ANALYSIS_ANALYZER_H_

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "analysis/diagnostic.h"
#include "datalog/program.h"

namespace mondet {

class CompiledProgram;

/// Syntactic fragments the paper's results are conditioned on: every cell
/// of Table 1 (rewritability) and Table 2 (decidability of monotonic
/// determinacy) assumes the query/views lie in one of these. The analyzer
/// classifies programs and produces *witnesses* — the concrete rule and
/// atoms violating a fragment — instead of a bare boolean.
enum class Fragment {
  kNonRecursive,     // equivalent to a UCQ (Table 1/2 UCQ rows)
  kMonadic,          // MDL rows; Lemma 1/Prop. 2 need unary IDBs
  kFrontierGuarded,  // FGDL rows (Thm 3, Thm 4)
};

const char* FragmentName(Fragment f);

/// The violations keeping `program` outside `fragment`; empty iff the
/// program is in the fragment. Each diagnostic names the offending rule
/// and the atoms/variables involved. Emitted with the given severity
/// (procedures gating on a fragment use kError; reports use kNote).
std::vector<Diagnostic> FragmentViolations(const Program& program,
                                           Fragment fragment,
                                           Severity severity = Severity::kError);

/// True iff the program lies in the fragment (no violations).
bool InFragment(const Program& program, Fragment fragment);

/// Recursion structure of a program: the strata (SCCs of the IDB
/// dependency graph), the IDBs on cycles, and whether the recursion is
/// linear (every rule uses at most one body atom from its own stratum).
struct RecursionReport {
  size_t num_strata = 0;
  std::vector<PredId> cyclic_idbs;  // sorted; IDBs on a dependency cycle
  bool recursive = false;
  bool linear = true;
};
RecursionReport AnalyzeRecursion(const Program& program);

/// Which fragments the program lies in (bare classification; witnesses
/// are in the diagnostics under check ids "fragment-*").
struct FragmentClassification {
  bool non_recursive = false;
  bool monadic = false;
  bool frontier_guarded = false;
};

struct AnalysisOptions {
  /// Goal predicate; enables the reachability checks "unused-predicate"
  /// and "unreachable-rule".
  std::optional<PredId> goal;
  /// Compile the program and lint its join plans ("plan-cross-product").
  bool plan_lints = true;
  /// Reuse this compiled program for the plan lints instead of compiling
  /// a fresh one; it must have been compiled from the analyzed program.
  /// When it carries bound statistics (CompiledProgram::BindStats) the
  /// cross-product lint reports the estimated row blowup, so the lint is
  /// judged against real numbers. Not owned; may be null.
  const CompiledProgram* compiled = nullptr;
  /// Classify the program against all fragments and emit kNote witnesses
  /// for the fragments it falls outside of.
  bool fragment_notes = true;
  /// Fragments the caller *requires*: violations become kError.
  std::vector<Fragment> required_fragments;
  /// Run the abstract-interpretation dataflow checks (analysis/dataflow.h):
  /// "always-empty-predicate", "dead-rule", "subsumed-rule",
  /// "redundant-body-atom" and (goal-directed) "unbound-adornment".
  bool dataflow = true;
};

struct AnalysisResult {
  std::vector<Diagnostic> diagnostics;
  FragmentClassification fragments;
  RecursionReport recursion;
  /// Check ids removed from the registry via DisableCheck, so consumers
  /// (mondet-lint --json) can tell "clean" apart from "not run".
  std::vector<std::string> disabled_checks;

  bool ok() const { return !HasErrors(diagnostics); }
};

/// A static-analysis pass framework over datalog::Program: a registry of
/// named checks run in registration order. Construct with the default
/// registry (safety, arity, reachability, singleton-variable,
/// recursion-structure, fragment classification, plan lints — see
/// docs/ANALYSIS.md); extend with AddCheck or prune with DisableCheck.
class ProgramAnalyzer {
 public:
  struct Input {
    const Program& program;
    const AnalysisOptions& options;
  };
  using CheckFn = std::function<void(const Input&, std::vector<Diagnostic>*)>;

  /// Registers the default checks.
  ProgramAnalyzer();

  void AddCheck(std::string id, CheckFn fn);
  /// Removes a check by id; returns false when no such check exists.
  /// Disabled ids are recorded and surface in
  /// AnalysisResult::disabled_checks of every later Analyze call.
  bool DisableCheck(const std::string& id);
  std::vector<std::string> CheckIds() const;

  AnalysisResult Analyze(const Program& program,
                         const AnalysisOptions& options = {}) const;

 private:
  struct Check {
    std::string id;
    CheckFn fn;
  };
  std::vector<Check> checks_;
  std::vector<std::string> disabled_ids_;
};

/// Convenience: runs the default analyzer.
AnalysisResult AnalyzeProgram(const Program& program,
                              const AnalysisOptions& options = {});

/// Safety / range restriction of one rule (every head variable occurs in
/// some body atom — the Sec. 2 well-formedness condition Program::AddRule
/// asserts). Exposed separately so the parser can report violations with
/// source positions *before* constructing the Program. Check id "safety".
void CheckRuleSafety(const Rule& rule, int rule_index,
                     std::vector<Diagnostic>* out);

/// Arity consistency of every atom of one rule against the vocabulary.
/// Check id "arity".
void CheckRuleArity(const Rule& rule, int rule_index, const Vocabulary& vocab,
                    std::vector<Diagnostic>* out);

}  // namespace mondet

#endif  // MONDET_ANALYSIS_ANALYZER_H_
