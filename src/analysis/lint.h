#ifndef MONDET_ANALYSIS_LINT_H_
#define MONDET_ANALYSIS_LINT_H_

#include <optional>
#include <string>
#include <vector>

#include "analysis/analyzer.h"

namespace mondet {

/// Options of the mondet-lint driver (tools/mondet_lint.cc). The driver is
/// a library function so the CLI stays a thin wrapper and the exact CLI
/// output is covered by golden tests.
struct LintOptions {
  /// Goal predicate name; enables the reachability checks. When empty the
  /// program text is scanned for a "# goal: Name" comment line.
  std::string goal;
  /// Fragments the program must lie in; violations become errors.
  std::vector<Fragment> required_fragments;
  /// Treat warnings as errors for the exit code.
  bool werror = false;
  /// Check ids to remove from the analyzer registry before running
  /// (mondet-lint --disable-check). Disabled ids surface in the JSON
  /// output ("disabled_checks"), so "clean" and "not run" stay
  /// distinguishable; unknown ids produce an "unknown-check" warning.
  std::vector<std::string> disabled_checks;
  /// Append the abstract dataflow fixpoint dump (mondet-lint --dataflow,
  /// analysis/dataflow.h DescribeDataflow) to the text report and embed
  /// it in the JSON output.
  bool dataflow_dump = false;
};

struct LintResult {
  std::vector<Diagnostic> diagnostics;
  AnalysisResult analysis;  // empty when parsing failed
  size_t num_rules = 0;
  bool parsed = false;
  /// 0 = clean (warnings/notes allowed unless werror), 1 = errors.
  int exit_code = 0;
  /// Human-readable report, '\n'-terminated.
  std::string text;
  /// Machine-readable report: one JSON object (stable field order).
  std::string json;
  /// DescribeDataflow dump; filled only under LintOptions::dataflow_dump
  /// (it is already appended to `text` and embedded in `json`).
  std::string dataflow;
};

/// Parses and analyzes one program. Never aborts: parse failures become
/// "parse" diagnostics in the result.
LintResult LintProgramText(const std::string& text,
                           const LintOptions& options = {});

/// Parses a --require-fragment value ("non-recursive", "monadic",
/// "frontier-guarded"); nullopt for anything else.
std::optional<Fragment> ParseFragmentName(const std::string& name);

/// One linted file, for multi-file report formats.
struct FileLint {
  std::string path;
  LintResult result;
};

/// Renders one SARIF 2.1.0 document with a single run covering every
/// file of the invocation (mondet-lint --sarif): tool.driver.rules holds
/// the distinct check ids (sorted), each diagnostic becomes a result with
/// ruleId/ruleIndex, its severity mapped to the SARIF level, and a
/// physicalLocation into the file's artifact (region only when the parser
/// recorded a source line). Stable field order, suitable for golden tests
/// and for PR annotation tooling.
std::string LintRunToSarif(const std::vector<FileLint>& files);

}  // namespace mondet

#endif  // MONDET_ANALYSIS_LINT_H_
