#ifndef MONDET_ANALYSIS_DIAGNOSTIC_H_
#define MONDET_ANALYSIS_DIAGNOSTIC_H_

#include <string>
#include <vector>

namespace mondet {

/// How bad a finding is. Errors make inputs unusable for the procedure
/// that reported them; warnings are likely mistakes; notes are reports.
enum class Severity { kNote, kWarning, kError };

const char* SeverityName(Severity s);

/// Where a diagnostic points inside a program: the rule, the body atoms
/// involved, the variables involved, and (when the program came from
/// ParseProgram) the 1-based source position of the rule.
struct SourceLoc {
  /// `atoms` entry denoting the head atom rather than a body index.
  static constexpr int kHead = -1;

  int rule = -1;                  // index into Program::rules(); -1 = program
  std::vector<int> atoms;        // body atom indices (kHead = head atom)
  std::vector<std::string> vars;  // names of the variables involved
  int line = 0;                   // 1-based; 0 = unknown
  int col = 0;
};

/// One finding of the static analyzer (or a parse/validation failure):
/// a stable check id, a severity, a human-readable message and a location.
/// Check ids are documented in docs/ANALYSIS.md.
struct Diagnostic {
  Severity severity = Severity::kError;
  std::string check;    // stable id, e.g. "safety", "fragment-frontier-guarded"
  std::string message;
  SourceLoc loc;
};

/// Builds a diagnostic in one expression.
Diagnostic MakeDiagnostic(Severity severity, std::string check,
                          std::string message, SourceLoc loc = {});

bool HasErrors(const std::vector<Diagnostic>& diagnostics);
size_t CountSeverity(const std::vector<Diagnostic>& diagnostics, Severity s);

/// "error[safety] line 3: rule 2 (head, atom 1) [x, y]: message".
std::string FormatDiagnostic(const Diagnostic& d);

/// One FormatDiagnostic line per entry, '\n'-terminated; "" when empty.
std::string FormatDiagnostics(const std::vector<Diagnostic>& diagnostics);

/// The diagnostics as a JSON array (stable field order, suitable for
/// golden tests): [{"severity":...,"check":...,"message":...,"rule":N,
/// "atoms":[...],"vars":[...],"line":N,"col":N}, ...].
std::string DiagnosticsToJson(const std::vector<Diagnostic>& diagnostics);

/// Escapes a string for embedding in JSON output (quotes included).
std::string JsonQuote(const std::string& s);

}  // namespace mondet

#endif  // MONDET_ANALYSIS_DIAGNOSTIC_H_
