#include "analysis/analyzer.h"

#include <algorithm>
#include <optional>
#include <queue>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "analysis/dataflow.h"
#include "base/scc.h"
#include "datalog/eval_plan.h"

namespace mondet {

namespace {

SourceLoc RuleLoc(const Program& program, int rule_index) {
  SourceLoc loc;
  loc.rule = rule_index;
  if (rule_index >= 0 &&
      rule_index < static_cast<int>(program.rules().size())) {
    const Rule& r = program.rules()[rule_index];
    loc.line = r.line;
    loc.col = r.col;
  }
  return loc;
}

std::string AtomSignature(const Vocabulary& vocab, const QAtom& a) {
  return vocab.name(a.pred) + "/" + std::to_string(vocab.arity(a.pred));
}

/// Dense node ids for the IDB predicates (sorted for determinism) and the
/// dependency edges P -> Q for Q in the body of a rule with head P. The
/// same graph CompiledProgram stratifies with.
struct IdbGraph {
  std::vector<PredId> idbs;
  std::unordered_map<PredId, int> node_of;
  std::vector<std::vector<int>> adj;
};

IdbGraph BuildIdbGraph(const Program& program) {
  IdbGraph g;
  g.idbs.assign(program.Idbs().begin(), program.Idbs().end());
  std::sort(g.idbs.begin(), g.idbs.end());
  for (size_t i = 0; i < g.idbs.size(); ++i) {
    g.node_of[g.idbs[i]] = static_cast<int>(i);
  }
  g.adj.resize(g.idbs.size());
  for (const Rule& rule : program.rules()) {
    int from = g.node_of.at(rule.head.pred);
    for (const QAtom& a : rule.body) {
      auto it = g.node_of.find(a.pred);
      if (it != g.node_of.end()) g.adj[from].push_back(it->second);
    }
  }
  return g;
}

/// For each IDB node, whether its SCC contains a cycle (size > 1, or a
/// self-loop edge).
std::vector<bool> CyclicNodes(const IdbGraph& g, const std::vector<int>& scc,
                              int num_sccs) {
  std::vector<int> scc_size(num_sccs, 0);
  for (int c : scc) ++scc_size[c];
  std::vector<bool> scc_cyclic(num_sccs, false);
  for (size_t u = 0; u < g.adj.size(); ++u) {
    for (int v : g.adj[u]) {
      if (scc[u] == scc[v] &&
          (scc_size[scc[u]] > 1 || static_cast<int>(u) == v)) {
        scc_cyclic[scc[u]] = true;
      }
    }
  }
  std::vector<bool> out(g.adj.size());
  for (size_t u = 0; u < g.adj.size(); ++u) out[u] = scc_cyclic[scc[u]];
  return out;
}

}  // namespace

const char* FragmentName(Fragment f) {
  switch (f) {
    case Fragment::kNonRecursive:
      return "non-recursive";
    case Fragment::kMonadic:
      return "monadic";
    case Fragment::kFrontierGuarded:
      return "frontier-guarded";
  }
  return "unknown";
}

RecursionReport AnalyzeRecursion(const Program& program) {
  RecursionReport report;
  IdbGraph g = BuildIdbGraph(program);
  int num_sccs = 0;
  std::vector<int> scc = SccIds(g.idbs.size(), g.adj, &num_sccs);
  report.num_strata = static_cast<size_t>(num_sccs);
  std::vector<bool> cyclic = CyclicNodes(g, scc, num_sccs);
  for (size_t i = 0; i < g.idbs.size(); ++i) {
    if (cyclic[i]) report.cyclic_idbs.push_back(g.idbs[i]);
  }
  report.recursive = !report.cyclic_idbs.empty();
  for (const Rule& rule : program.rules()) {
    int head_node = g.node_of.at(rule.head.pred);
    if (!cyclic[head_node]) continue;
    int same_scc_atoms = 0;
    for (const QAtom& a : rule.body) {
      auto it = g.node_of.find(a.pred);
      if (it != g.node_of.end() && scc[it->second] == scc[head_node]) {
        ++same_scc_atoms;
      }
    }
    if (same_scc_atoms > 1) report.linear = false;
  }
  return report;
}

std::vector<Diagnostic> FragmentViolations(const Program& program,
                                           Fragment fragment,
                                           Severity severity) {
  std::vector<Diagnostic> out;
  const Vocabulary& vocab = *program.vocab();
  std::string check = std::string("fragment-") + FragmentName(fragment);
  switch (fragment) {
    case Fragment::kMonadic: {
      std::vector<PredId> idbs(program.Idbs().begin(), program.Idbs().end());
      std::sort(idbs.begin(), idbs.end());
      for (PredId p : idbs) {
        if (vocab.arity(p) <= 1) continue;
        std::vector<size_t> rules = program.RulesFor(p);
        SourceLoc loc =
            RuleLoc(program, rules.empty() ? -1 : static_cast<int>(rules[0]));
        loc.atoms = {SourceLoc::kHead};
        std::ostringstream os;
        os << "IDB predicate " << vocab.name(p) << " has arity "
           << vocab.arity(p)
           << " > 1; monadic Datalog requires unary intensional predicates"
           << " (defined by rule";
        for (size_t i = 0; i < rules.size(); ++i) {
          os << (i ? "," : "") << " " << rules[i];
        }
        os << ")";
        out.push_back(MakeDiagnostic(severity, check, os.str(), loc));
      }
      break;
    }
    case Fragment::kFrontierGuarded: {
      // Paper convention: every monadic program counts as frontier-guarded.
      if (InFragment(program, Fragment::kMonadic)) break;
      for (size_t ri = 0; ri < program.rules().size(); ++ri) {
        const Rule& rule = program.rules()[ri];
        if (rule.head.args.empty()) continue;  // vacuously guarded
        bool guarded = false;
        std::vector<int> edb_atoms;
        for (size_t ai = 0; ai < rule.body.size(); ++ai) {
          const QAtom& a = rule.body[ai];
          if (program.IsIdb(a.pred)) continue;  // guard must be extensional
          edb_atoms.push_back(static_cast<int>(ai));
          bool covers = true;
          for (VarId v : rule.head.args) {
            if (std::find(a.args.begin(), a.args.end(), v) == a.args.end()) {
              covers = false;
              break;
            }
          }
          if (covers) {
            guarded = true;
            break;
          }
        }
        if (guarded) continue;
        SourceLoc loc = RuleLoc(program, static_cast<int>(ri));
        loc.atoms = edb_atoms;
        std::unordered_set<VarId> seen;
        for (VarId v : rule.head.args) {
          if (seen.insert(v).second) loc.vars.push_back(rule.var_names[v]);
        }
        std::ostringstream os;
        os << "head variables of rule " << ri << " {";
        for (size_t i = 0; i < loc.vars.size(); ++i) {
          os << (i ? "," : "") << loc.vars[i];
        }
        os << "} are not covered by any single EDB body atom";
        if (edb_atoms.empty()) {
          os << " (the body has no EDB atoms)";
        } else {
          os << "; candidate guards:";
          for (int ai : edb_atoms) {
            os << " " << AtomSignature(vocab, rule.body[ai]) << "[atom " << ai
               << "]";
          }
        }
        out.push_back(MakeDiagnostic(severity, check, os.str(), loc));
      }
      break;
    }
    case Fragment::kNonRecursive: {
      IdbGraph g = BuildIdbGraph(program);
      int num_sccs = 0;
      std::vector<int> scc = SccIds(g.idbs.size(), g.adj, &num_sccs);
      std::vector<bool> cyclic = CyclicNodes(g, scc, num_sccs);
      for (size_t ri = 0; ri < program.rules().size(); ++ri) {
        const Rule& rule = program.rules()[ri];
        int head_node = g.node_of.at(rule.head.pred);
        if (!cyclic[head_node]) continue;
        std::vector<int> rec_atoms;
        for (size_t ai = 0; ai < rule.body.size(); ++ai) {
          auto it = g.node_of.find(rule.body[ai].pred);
          if (it != g.node_of.end() && scc[it->second] == scc[head_node]) {
            rec_atoms.push_back(static_cast<int>(ai));
          }
        }
        if (rec_atoms.empty()) continue;  // head cyclic via other rules
        SourceLoc loc = RuleLoc(program, static_cast<int>(ri));
        loc.atoms = rec_atoms;
        std::ostringstream os;
        os << "rule " << ri << " recurses: " << vocab.name(rule.head.pred)
           << " depends cyclically on";
        for (int ai : rec_atoms) {
          os << " " << AtomSignature(vocab, rule.body[ai]) << "[atom " << ai
             << "]";
        }
        out.push_back(MakeDiagnostic(severity, check, os.str(), loc));
      }
      break;
    }
  }
  return out;
}

bool InFragment(const Program& program, Fragment fragment) {
  return FragmentViolations(program, fragment).empty();
}

void CheckRuleSafety(const Rule& rule, int rule_index,
                     std::vector<Diagnostic>* out) {
  std::unordered_set<VarId> reported;
  for (VarId v : rule.head.args) {
    if (reported.count(v)) continue;
    bool found = false;
    for (const QAtom& a : rule.body) {
      if (std::find(a.args.begin(), a.args.end(), v) != a.args.end()) {
        found = true;
        break;
      }
    }
    if (found) continue;
    reported.insert(v);
    SourceLoc loc;
    loc.rule = rule_index;
    loc.line = rule.line;
    loc.col = rule.col;
    loc.atoms = {SourceLoc::kHead};
    loc.vars = {rule.var_names[v]};
    out->push_back(MakeDiagnostic(
        Severity::kError, "safety",
        "head variable '" + rule.var_names[v] +
            "' does not occur in the rule body (range restriction, Sec. 2)",
        loc));
  }
}

void CheckRuleArity(const Rule& rule, int rule_index, const Vocabulary& vocab,
                    std::vector<Diagnostic>* out) {
  auto check_atom = [&](const QAtom& a, int atom_index) {
    SourceLoc loc;
    loc.rule = rule_index;
    loc.line = rule.line;
    loc.col = rule.col;
    loc.atoms = {atom_index};
    if (a.pred == kNoPred || a.pred >= vocab.size()) {
      out->push_back(MakeDiagnostic(Severity::kError, "arity",
                                    "atom uses a predicate id outside the "
                                    "vocabulary",
                                    loc));
      return;
    }
    if (vocab.arity(a.pred) != static_cast<int>(a.args.size())) {
      std::ostringstream os;
      os << "atom " << AtomSignature(vocab, a) << " used with "
         << a.args.size() << " argument(s)";
      out->push_back(
          MakeDiagnostic(Severity::kError, "arity", os.str(), loc));
    }
  };
  check_atom(rule.head, SourceLoc::kHead);
  for (size_t ai = 0; ai < rule.body.size(); ++ai) {
    check_atom(rule.body[ai], static_cast<int>(ai));
  }
}

namespace {

void SafetyCheck(const ProgramAnalyzer::Input& in,
                 std::vector<Diagnostic>* out) {
  for (size_t ri = 0; ri < in.program.rules().size(); ++ri) {
    CheckRuleSafety(in.program.rules()[ri], static_cast<int>(ri), out);
  }
}

void ArityCheck(const ProgramAnalyzer::Input& in,
                std::vector<Diagnostic>* out) {
  for (size_t ri = 0; ri < in.program.rules().size(); ++ri) {
    CheckRuleArity(in.program.rules()[ri], static_cast<int>(ri),
                   *in.program.vocab(), out);
  }
}

void ReachabilityCheck(const ProgramAnalyzer::Input& in,
                       std::vector<Diagnostic>* out) {
  if (!in.options.goal) return;
  const Program& program = in.program;
  PredId goal = *in.options.goal;
  if (!program.IsIdb(goal)) {
    SourceLoc loc;
    out->push_back(MakeDiagnostic(
        Severity::kError, "goal",
        "goal predicate " + program.vocab()->name(goal) +
            " is not the head of any rule",
        loc));
    return;
  }
  IdbGraph g = BuildIdbGraph(program);
  std::vector<bool> reached(g.idbs.size(), false);
  std::queue<int> frontier;
  reached[g.node_of.at(goal)] = true;
  frontier.push(g.node_of.at(goal));
  while (!frontier.empty()) {
    int u = frontier.front();
    frontier.pop();
    for (int v : g.adj[u]) {
      if (!reached[v]) {
        reached[v] = true;
        frontier.push(v);
      }
    }
  }
  for (size_t i = 0; i < g.idbs.size(); ++i) {
    if (reached[i]) continue;
    PredId p = g.idbs[i];
    std::vector<size_t> rules = program.RulesFor(p);
    SourceLoc loc =
        RuleLoc(program, rules.empty() ? -1 : static_cast<int>(rules[0]));
    out->push_back(MakeDiagnostic(
        Severity::kWarning, "unused-predicate",
        "IDB predicate " + program.vocab()->name(p) +
            " is not reachable from the goal " +
            program.vocab()->name(goal) + " (dead code)",
        loc));
    for (size_t ri : rules) {
      SourceLoc rloc = RuleLoc(program, static_cast<int>(ri));
      out->push_back(MakeDiagnostic(
          Severity::kWarning, "unreachable-rule",
          "rule " + std::to_string(ri) + " defines unreachable predicate " +
              program.vocab()->name(p),
          rloc));
    }
  }
}

void SingletonVariableCheck(const ProgramAnalyzer::Input& in,
                            std::vector<Diagnostic>* out) {
  for (size_t ri = 0; ri < in.program.rules().size(); ++ri) {
    const Rule& rule = in.program.rules()[ri];
    // A singleton in a single-atom body is a plain projection; only
    // multi-atom bodies make a lone variable look like a mistyped join.
    if (rule.body.size() < 2) continue;
    std::vector<int> count(rule.num_vars(), 0);
    std::vector<int> first_atom(rule.num_vars(), SourceLoc::kHead);
    for (VarId v : rule.head.args) ++count[v];
    for (size_t ai = 0; ai < rule.body.size(); ++ai) {
      for (VarId v : rule.body[ai].args) {
        if (count[v] == 0) first_atom[v] = static_cast<int>(ai);
        ++count[v];
      }
    }
    for (size_t v = 0; v < rule.num_vars(); ++v) {
      if (count[v] != 1) continue;
      const std::string& name = rule.var_names[v];
      if (!name.empty() && name[0] == '_') continue;  // deliberate
      SourceLoc loc = RuleLoc(in.program, static_cast<int>(ri));
      loc.atoms = {first_atom[v]};
      loc.vars = {name};
      out->push_back(MakeDiagnostic(
          Severity::kWarning, "singleton-variable",
          "variable '" + name + "' occurs only once in rule " +
              std::to_string(ri) +
              " (possible typo; prefix with '_' if deliberate)",
          loc));
    }
  }
}

void RecursionStructureCheck(const ProgramAnalyzer::Input& in,
                             std::vector<Diagnostic>* out) {
  RecursionReport report = AnalyzeRecursion(in.program);
  std::ostringstream os;
  os << report.num_strata << " strat" << (report.num_strata == 1 ? "um" : "a");
  if (report.recursive) {
    os << "; recursive IDBs:";
    for (PredId p : report.cyclic_idbs) {
      os << " " << in.program.vocab()->name(p);
    }
    os << "; recursion is " << (report.linear ? "linear" : "non-linear");
  } else {
    os << "; no recursion (the query is equivalent to a UCQ)";
  }
  out->push_back(
      MakeDiagnostic(Severity::kNote, "recursion-structure", os.str()));
}

void FragmentCheck(Fragment fragment, const ProgramAnalyzer::Input& in,
                   std::vector<Diagnostic>* out) {
  bool required =
      std::find(in.options.required_fragments.begin(),
                in.options.required_fragments.end(),
                fragment) != in.options.required_fragments.end();
  if (!required && !in.options.fragment_notes) return;
  Severity severity = required ? Severity::kError : Severity::kNote;
  std::vector<Diagnostic> violations =
      FragmentViolations(in.program, fragment, severity);
  out->insert(out->end(), violations.begin(), violations.end());
}

void PlanLintCheck(const ProgramAnalyzer::Input& in,
                   std::vector<Diagnostic>* out) {
  if (!in.options.plan_lints) return;
  const Program& program = in.program;
  // Reuse the caller's compiled program when provided (mondet_cli passes
  // the one it is about to evaluate, so lint and run judge identical
  // plans); otherwise compile a throwaway one.
  std::optional<CompiledProgram> local;
  const CompiledProgram* compiled = in.options.compiled;
  if (compiled == nullptr) {
    local.emplace(program);
    compiled = &*local;
  }
  for (const CompiledProgram::JoinOrderDesc& desc : compiled->DescribePlans()) {
    const Rule& rule = program.rules()[desc.rule];
    std::vector<bool> bound(rule.num_vars(), false);
    bool anything_bound = false;
    if (desc.delta_atom >= 0) {
      for (VarId v : rule.body[desc.delta_atom].args) bound[v] = true;
      anything_bound = true;
    }
    for (size_t k = 0; k < desc.order.size(); ++k) {
      const QAtom& atom = rule.body[desc.order[k]];
      bool shares = false;
      for (VarId v : atom.args) {
        if (bound[v]) shares = true;
      }
      // The first atom of a full join is the scan; every later atom (and
      // every atom after a delta seed) should share a bound variable, or
      // the join degenerates to a cross product.
      if (anything_bound && !shares && !atom.args.empty()) {
        SourceLoc loc = RuleLoc(program, static_cast<int>(desc.rule));
        loc.atoms = {static_cast<int>(desc.order[k])};
        std::ostringstream os;
        os << "join step " << k << " of rule " << desc.rule
           << (desc.delta_atom >= 0
                   ? " (delta seat " + std::to_string(desc.delta_atom) + ")"
                   : "")
           << " joins " << AtomSignature(*program.vocab(), atom)
           << " with zero bound positions (cross product)";
        if (!desc.est_rows.empty()) {
          os << "; est ~" << desc.est_rows[k] << " intermediate rows";
        }
        out->push_back(MakeDiagnostic(Severity::kWarning,
                                      "plan-cross-product", os.str(), loc));
      }
      for (VarId v : atom.args) bound[v] = true;
      if (!atom.args.empty()) anything_bound = true;
    }
  }
}

// --- Abstract-interpretation dataflow checks (analysis/dataflow.h). --------
// Each check recomputes the analysis it needs: the fixpoints are linear in
// the program (emptiness) or pairwise over rules of one head predicate
// (subsumption), which is negligible at lint scale, and stateless checks
// keep the registry trivially re-orderable.

void AlwaysEmptyPredicateCheck(const ProgramAnalyzer::Input& in,
                               std::vector<Diagnostic>* out) {
  if (!in.options.dataflow) return;
  EmptinessResult emptiness = AnalyzeEmptiness(in.program);
  for (PredId p : emptiness.empty_idbs) {
    std::vector<size_t> rules = in.program.RulesFor(p);
    SourceLoc loc =
        RuleLoc(in.program, rules.empty() ? -1 : static_cast<int>(rules[0]));
    loc.atoms = {SourceLoc::kHead};
    std::ostringstream os;
    os << "IDB predicate " << in.program.vocab()->name(p)
       << " can never derive a fact: every rule defining it is dead"
       << " (rule";
    for (size_t i = 0; i < rules.size(); ++i) {
      os << (i ? "," : "") << " " << rules[i];
    }
    os << ")";
    out->push_back(MakeDiagnostic(Severity::kWarning,
                                  "always-empty-predicate", os.str(), loc));
  }
}

void DeadRuleCheck(const ProgramAnalyzer::Input& in,
                   std::vector<Diagnostic>* out) {
  if (!in.options.dataflow) return;
  EmptinessResult emptiness = AnalyzeEmptiness(in.program);
  for (size_t ri = 0; ri < emptiness.rule_dead.size(); ++ri) {
    if (!emptiness.rule_dead[ri]) continue;
    const DeadRuleReason& reason = emptiness.dead_reasons[ri];
    SourceLoc loc = RuleLoc(in.program, static_cast<int>(ri));
    if (reason.atom >= 0) loc.atoms = {reason.atom};
    out->push_back(MakeDiagnostic(
        Severity::kWarning, "dead-rule",
        "rule " + std::to_string(ri) + " can never fire: " + reason.detail,
        loc));
  }
}

void SubsumedRuleCheck(const ProgramAnalyzer::Input& in,
                       std::vector<Diagnostic>* out) {
  if (!in.options.dataflow) return;
  SubsumptionResult sub = AnalyzeSubsumption(in.program);
  for (size_t ri = 0; ri < sub.subsumed_by.size(); ++ri) {
    if (sub.subsumed_by[ri] < 0) continue;
    SourceLoc loc = RuleLoc(in.program, static_cast<int>(ri));
    loc.atoms = {SourceLoc::kHead};
    std::ostringstream os;
    os << "rule " << ri << " is subsumed by rule " << sub.subsumed_by[ri]
       << ": every fact it derives, rule " << sub.subsumed_by[ri]
       << " derives from the same facts; it can be removed";
    out->push_back(
        MakeDiagnostic(Severity::kWarning, "subsumed-rule", os.str(), loc));
  }
}

void RedundantBodyAtomCheck(const ProgramAnalyzer::Input& in,
                            std::vector<Diagnostic>* out) {
  if (!in.options.dataflow) return;
  SubsumptionResult sub = AnalyzeSubsumption(in.program);
  for (size_t ri = 0; ri < sub.redundant_atoms.size(); ++ri) {
    for (int ai : sub.redundant_atoms[ri]) {
      const Rule& rule = in.program.rules()[ri];
      SourceLoc loc = RuleLoc(in.program, static_cast<int>(ri));
      loc.atoms = {ai};
      std::ostringstream os;
      os << "body atom " << ai << " ("
         << AtomSignature(*in.program.vocab(), rule.body[ai]) << ") of rule "
         << ri << " is implied by the rest of the body; removing it leaves"
         << " an equivalent rule";
      out->push_back(MakeDiagnostic(Severity::kWarning, "redundant-body-atom",
                                    os.str(), loc));
    }
  }
}

void UnboundAdornmentCheck(const ProgramAnalyzer::Input& in,
                           std::vector<Diagnostic>* out) {
  if (!in.options.dataflow || !in.options.goal) return;
  const Program& program = in.program;
  if (!program.IsIdb(*in.options.goal)) return;  // "goal" check reports it
  AdornmentResult ad = AnalyzeAdornments(program, *in.options.goal);
  // A nullary goal binds nothing, so all-free call patterns are the only
  // possibility everywhere — vacuous, not a finding.
  if (!ad.goal_binds) return;
  for (const auto& [site, patterns] : ad.atom_calls) {
    auto [ri, ai] = site;
    const QAtom& atom = program.rules()[ri].body[ai];
    if (atom.args.empty()) continue;
    bool all_free = true;
    for (const std::string& p : patterns) {
      if (p.find('b') != std::string::npos) all_free = false;
    }
    if (!all_free) continue;
    SourceLoc loc = RuleLoc(program, static_cast<int>(ri));
    loc.atoms = {ai};
    std::ostringstream os;
    os << "IDB atom " << AtomSignature(*program.vocab(), atom)
       << " at rule " << ri << " is only ever called with no bound"
       << " arguments (adornment '" << std::string(atom.args.size(), 'f')
       << "'): bindings from the goal "
       << program.vocab()->name(*in.options.goal)
       << " never reach it, so magic-sets specialization cannot restrict"
       << " its evaluation";
    out->push_back(MakeDiagnostic(Severity::kNote, "unbound-adornment",
                                  os.str(), loc));
  }
}

}  // namespace

ProgramAnalyzer::ProgramAnalyzer() {
  AddCheck("safety", SafetyCheck);
  AddCheck("arity", ArityCheck);
  AddCheck("reachability", ReachabilityCheck);
  AddCheck("singleton-variable", SingletonVariableCheck);
  AddCheck("recursion-structure", RecursionStructureCheck);
  AddCheck("fragment-non-recursive", [](const Input& in, auto* out) {
    FragmentCheck(Fragment::kNonRecursive, in, out);
  });
  AddCheck("fragment-monadic", [](const Input& in, auto* out) {
    FragmentCheck(Fragment::kMonadic, in, out);
  });
  AddCheck("fragment-frontier-guarded", [](const Input& in, auto* out) {
    FragmentCheck(Fragment::kFrontierGuarded, in, out);
  });
  AddCheck("plan-lints", PlanLintCheck);
  AddCheck("always-empty-predicate", AlwaysEmptyPredicateCheck);
  AddCheck("dead-rule", DeadRuleCheck);
  AddCheck("subsumed-rule", SubsumedRuleCheck);
  AddCheck("redundant-body-atom", RedundantBodyAtomCheck);
  AddCheck("unbound-adornment", UnboundAdornmentCheck);
}

void ProgramAnalyzer::AddCheck(std::string id, CheckFn fn) {
  checks_.push_back({std::move(id), std::move(fn)});
}

bool ProgramAnalyzer::DisableCheck(const std::string& id) {
  size_t before = checks_.size();
  checks_.erase(std::remove_if(checks_.begin(), checks_.end(),
                               [&](const Check& c) { return c.id == id; }),
                checks_.end());
  if (checks_.size() == before) return false;
  // Remember what was switched off: Analyze reports it so result
  // consumers can tell a clean check apart from one that never ran.
  if (std::find(disabled_ids_.begin(), disabled_ids_.end(), id) ==
      disabled_ids_.end()) {
    disabled_ids_.push_back(id);
  }
  return true;
}

std::vector<std::string> ProgramAnalyzer::CheckIds() const {
  std::vector<std::string> out;
  out.reserve(checks_.size());
  for (const Check& c : checks_) out.push_back(c.id);
  return out;
}

AnalysisResult ProgramAnalyzer::Analyze(const Program& program,
                                        const AnalysisOptions& options) const {
  AnalysisResult result;
  result.disabled_checks = disabled_ids_;
  Input in{program, options};
  for (const Check& c : checks_) c.fn(in, &result.diagnostics);
  result.fragments.non_recursive =
      InFragment(program, Fragment::kNonRecursive);
  result.fragments.monadic = InFragment(program, Fragment::kMonadic);
  result.fragments.frontier_guarded =
      InFragment(program, Fragment::kFrontierGuarded);
  result.recursion = AnalyzeRecursion(program);
  return result;
}

AnalysisResult AnalyzeProgram(const Program& program,
                              const AnalysisOptions& options) {
  static const ProgramAnalyzer analyzer;
  return analyzer.Analyze(program, options);
}

}  // namespace mondet
