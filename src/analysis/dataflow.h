#ifndef MONDET_ANALYSIS_DATAFLOW_H_
#define MONDET_ANALYSIS_DATAFLOW_H_

#include <algorithm>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "base/instance.h"
#include "datalog/program.h"

namespace mondet {

/// Abstract-interpretation dataflow analyses over datalog::Program.
///
/// The core is a generic bottom-up fixpoint engine (RunBottomUpFixpoint):
/// a worklist over the strata of the IDB dependency graph — the same SCC
/// stratification CompiledProgram evaluates with — iterating a pluggable
/// transfer function per rule until the per-predicate abstract values
/// stabilize. Three analyses are instantiated on top (docs/ANALYSIS.md,
/// "Dataflow analyses"):
///
///   1. Emptiness + constant-set analysis (AnalyzeEmptiness): a
///      {bottom, small constant set, top} domain per (predicate, position)
///      computing which predicates are provably empty — and which argument
///      positions are restricted to a small value set — given the EDB
///      vocabulary (optionally seeded from a concrete instance). Sound
///      overapproximation: the concrete fixpoint of any instance
///      compatible with the seed is contained in the concretization
///      (tests/dataflow_soundness_test.cc pins this), so a rule flagged
///      dead can never fire and CompiledProgram::Eval skips it
///      (EvalOptions::dataflow_prune).
///   2. Binding-pattern / adornment analysis (AnalyzeAdornments):
///      propagates bound/free argument positions from the goal through
///      rule bodies left-to-right (the magic-sets sideways
///      information-passing convention), collecting every reachable call
///      pattern per IDB predicate.
///   3. Rule subsumption / redundancy (AnalyzeSubsumption): a rule is
///      subsumed when another rule for the same head derives a superset
///      of its facts on every database state (a homomorphism between the
///      rule bodies fixing the head, via base/homomorphism); a body atom
///      is redundant when the body folds onto the body without it.

/// The rules of one program grouped into strata: SCCs of the IDB
/// dependency graph in dependency-first topological order (the order
/// CompiledProgram evaluates them in). Rules whose head predicates share
/// an SCC share a stratum; rule indices inside a stratum keep program
/// order so fixpoint iteration is deterministic.
struct RuleStrata {
  std::vector<std::vector<size_t>> strata;  // rule indices per stratum
};
RuleStrata ComputeRuleStrata(const Program& program);

/// Generic bottom-up fixpoint: runs `domain` over the strata of `program`
/// until every per-predicate abstract value is stable, and returns the
/// final environment. The Domain concept:
///
///   struct Domain {
///     using Value = ...;            // per-predicate abstract value
///     // Starting value of predicate `p` (bottom for IDBs; the EDB seed
///     // for extensional predicates).
///     Value Init(PredId p) const;
///     // Abstract evaluation of one rule under environment `env` (total
///     // over the program's predicates). Returns false when the rule
///     // provably contributes nothing; otherwise fills `*head`.
///     bool Transfer(const Program&, const Rule&, size_t rule_index,
///                   const std::unordered_map<PredId, Value>& env,
///                   Value* head) const;
///     // Least-upper-bound accumulation; returns true iff *into changed.
///     // Must have finite ascending chains for termination.
///     bool Join(Value* into, const Value& v) const;
///   };
template <typename Domain>
std::unordered_map<PredId, typename Domain::Value> RunBottomUpFixpoint(
    const Program& program, const Domain& domain) {
  std::unordered_map<PredId, typename Domain::Value> env;
  const Vocabulary& vocab = *program.vocab();
  for (PredId p = 0; p < static_cast<PredId>(vocab.size()); ++p) {
    env.emplace(p, domain.Init(p));
  }
  RuleStrata rs = ComputeRuleStrata(program);
  for (const std::vector<size_t>& stratum : rs.strata) {
    // Worklist over the stratum's rules: re-fire until a full sweep adds
    // nothing. Termination: Join only moves up a finite-height lattice.
    bool changed = true;
    while (changed) {
      changed = false;
      for (size_t ri : stratum) {
        const Rule& rule = program.rules()[ri];
        typename Domain::Value head;
        if (!domain.Transfer(program, rule, ri, env, &head)) continue;
        if (domain.Join(&env.at(rule.head.pred), head)) changed = true;
      }
    }
  }
  return env;
}

// --- Emptiness + constant-set analysis. ------------------------------------

/// Cap on tracked per-position constant sets; beyond it a position
/// saturates to top. Keeps the lattice height (and the fixpoint cost)
/// bounded by O(preds * arity * kMaxTrackedConsts).
inline constexpr size_t kMaxTrackedConsts = 4;

/// Abstract value of one argument position: top (any element), or a set
/// of at most kMaxTrackedConsts possible elements. The empty set is the
/// position-level bottom: no value can occur there.
struct PosAbstract {
  bool top = false;
  std::vector<ElemId> consts;  // sorted, distinct; meaningful iff !top

  bool Admits(ElemId e) const {
    return top || std::binary_search(consts.begin(), consts.end(), e);
  }
};

/// Abstract value of one predicate: provably empty (`nonempty == false`,
/// the relation-level bottom), or possibly nonempty with one PosAbstract
/// per argument position.
struct PredAbstract {
  bool nonempty = false;
  std::vector<PosAbstract> pos;  // arity entries; meaningful iff nonempty
};

/// The emptiness domain for RunBottomUpFixpoint. Exposed (rather than
/// hidden in the .cc) so tests can run the generic engine directly.
struct EmptinessDomain {
  using Value = PredAbstract;

  const Program* program = nullptr;
  /// Optional concrete seed: every predicate (IDB facts may occur in
  /// FPEval inputs) starts from the instance's actual per-position value
  /// sets (top above kMaxTrackedConsts), and predicates without facts
  /// start empty (EDB) or bottom (IDB). The analysis is then sound for
  /// exactly this instance; without a seed it is sound for every
  /// instance whose intensional relations start empty.
  const Instance* edb = nullptr;

  Value Init(PredId p) const;
  bool Transfer(const Program& program_in, const Rule& rule,
                size_t rule_index,
                const std::unordered_map<PredId, Value>& env,
                Value* head) const;
  bool Join(Value* into, const Value& v) const;
};

/// Why one rule can never fire (AnalyzeEmptiness flags it dead).
struct DeadRuleReason {
  int atom = -1;        // body atom index the proof points at
  std::string detail;   // human-readable explanation
};

struct EmptinessResult {
  /// Final abstract value per predicate of the vocabulary.
  std::unordered_map<PredId, PredAbstract> preds;
  /// Per rule index: true when the body is abstractly unsatisfiable, so
  /// the rule can never fire on any instance compatible with the seed.
  std::vector<bool> rule_dead;
  /// Reasons, parallel to rule_dead (empty detail when the rule is live).
  std::vector<DeadRuleReason> dead_reasons;
  /// IDB predicates provably empty (sorted): every rule deriving them is
  /// dead, so they never hold a fact.
  std::vector<PredId> empty_idbs;

  bool IsEmpty(PredId p) const {
    auto it = preds.find(p);
    return it != preds.end() && !it->second.nonempty;
  }
};

/// Runs the emptiness + constant-set fixpoint. With `edb == nullptr` the
/// result is sound for every instance over the vocabulary whose IDB
/// relations start empty (EDB predicates assumed arbitrary); with a seed
/// it is sound for that exact instance, IDB input facts included.
EmptinessResult AnalyzeEmptiness(const Program& program,
                                 const Instance* edb = nullptr);

/// Rule indices CompiledProgram::Eval may skip for `input`: exactly the
/// dead rules of AnalyzeEmptiness(program, &input). Cheap relative to any
/// fixpoint run — O(program size * lattice height).
std::vector<bool> DeadRuleMask(const Program& program, const Instance& input);

// --- Binding-pattern / adornment analysis. ---------------------------------

/// One reachable call pattern of an IDB predicate, rendered magic-sets
/// style: one char per argument position, 'b' (bound) or 'f' (free).
/// The goal is called all-bound (its arguments are the query constants);
/// bindings propagate through rule bodies left-to-right.
struct AdornmentResult {
  /// Reachable call adornments per IDB predicate (only predicates
  /// actually called somewhere reachable from the goal appear).
  std::map<PredId, std::set<std::string>> calls;
  /// Adornments seen at each reachable IDB body-atom call site
  /// (rule index, body atom index).
  std::map<std::pair<size_t, int>, std::set<std::string>> atom_calls;
  /// False when the goal is nullary: no binding exists anywhere, so an
  /// all-free call pattern is vacuous rather than a finding.
  bool goal_binds = false;
};

AdornmentResult AnalyzeAdornments(const Program& program, PredId goal);

// --- Rule subsumption / redundancy. ----------------------------------------

struct SubsumptionResult {
  /// Per rule index: the lowest-index distinct rule that derives a
  /// superset of its facts on every database state, or -1. Of two
  /// equivalent rules only the later one is marked, so dropping every
  /// marked rule is always sound.
  std::vector<int> subsumed_by;
  /// Per rule index: body atom indices implied by the rest of the body
  /// (removing any single one leaves a uniformly equivalent rule).
  std::vector<std::vector<int>> redundant_atoms;
};

SubsumptionResult AnalyzeSubsumption(const Program& program);

// --- Combined result + rendering. ------------------------------------------

struct DataflowResult {
  EmptinessResult emptiness;
  SubsumptionResult subsumption;
  /// Present when a goal was supplied.
  std::optional<AdornmentResult> adornments;
};

/// Runs all three analyses (adornments only when `goal` is set; emptiness
/// seeded from `edb` when non-null).
DataflowResult AnalyzeDataflow(const Program& program,
                               std::optional<PredId> goal = std::nullopt,
                               const Instance* edb = nullptr);

/// Human-readable dump of the abstract fixpoint, one line per predicate
/// (mondet-lint --dataflow). Position values render as `T` (top), `{..}`
/// (constant sets, element names from `edb` when given) or `{}` (bottom);
/// empty predicates render as `empty`. Stable order, suitable for goldens.
std::string DescribeDataflow(const Program& program,
                             const DataflowResult& result,
                             const Instance* edb = nullptr);

}  // namespace mondet

#endif  // MONDET_ANALYSIS_DATAFLOW_H_
