#include "analysis/dataflow.h"

#include <deque>
#include <sstream>

#include "base/homomorphism.h"
#include "base/scc.h"

namespace mondet {

namespace {

/// Meet of two position values (set intersection; top is the identity).
/// Returns true when the result changed relative to `*into`.
void Meet(PosAbstract* into, const PosAbstract& v) {
  if (v.top) return;
  if (into->top) {
    into->top = false;
    into->consts = v.consts;
    return;
  }
  std::vector<ElemId> out;
  std::set_intersection(into->consts.begin(), into->consts.end(),
                        v.consts.begin(), v.consts.end(),
                        std::back_inserter(out));
  into->consts = std::move(out);
}

/// The shared core of EmptinessDomain::Transfer and the dead-rule
/// explanation: abstract evaluation of one rule body. Returns false when
/// the body is abstractly unsatisfiable; `reason`, when non-null,
/// receives the first failing atom and a human-readable why.
bool EvalRuleBody(const Program& program, const Rule& rule,
                  const std::unordered_map<PredId, PredAbstract>& env,
                  std::vector<PosAbstract>* var_val, DeadRuleReason* reason) {
  const Vocabulary& vocab = *program.vocab();
  var_val->assign(rule.num_vars(), PosAbstract{true, {}});
  for (size_t ai = 0; ai < rule.body.size(); ++ai) {
    const QAtom& a = rule.body[ai];
    auto it = env.find(a.pred);
    if (it == env.end()) continue;  // outside the vocabulary: assume top
    const PredAbstract& pv = it->second;
    if (!pv.nonempty) {
      if (reason != nullptr) {
        reason->atom = static_cast<int>(ai);
        reason->detail = "body atom " + std::to_string(ai) + " is over " +
                         vocab.name(a.pred) +
                         ", which is provably empty";
      }
      return false;
    }
    for (size_t j = 0; j < a.args.size() && j < pv.pos.size(); ++j) {
      VarId v = a.args[j];
      if (v >= var_val->size()) continue;  // malformed rule: stay sound
      PosAbstract& slot = (*var_val)[v];
      bool was_sat = slot.top || !slot.consts.empty();
      Meet(&slot, pv.pos[j]);
      if (was_sat && !slot.top && slot.consts.empty()) {
        if (reason != nullptr) {
          reason->atom = static_cast<int>(ai);
          reason->detail = "variable '" + rule.var_names[v] +
                           "' admits no value at body atom " +
                           std::to_string(ai) + " (" + vocab.name(a.pred) +
                           " position " + std::to_string(j) +
                           "): the possible value sets are disjoint";
        }
        return false;
      }
    }
  }
  return true;
}

}  // namespace

RuleStrata ComputeRuleStrata(const Program& program) {
  // Dense node ids for the IDB predicates (sorted for determinism) and
  // the dependency edges head -> body IDB — the same graph the evaluator
  // and the recursion report stratify with.
  std::vector<PredId> idbs(program.Idbs().begin(), program.Idbs().end());
  std::sort(idbs.begin(), idbs.end());
  std::unordered_map<PredId, int> node_of;
  for (size_t i = 0; i < idbs.size(); ++i) {
    node_of[idbs[i]] = static_cast<int>(i);
  }
  std::vector<std::vector<int>> adj(idbs.size());
  for (const Rule& rule : program.rules()) {
    int from = node_of.at(rule.head.pred);
    for (const QAtom& a : rule.body) {
      auto it = node_of.find(a.pred);
      if (it != node_of.end()) adj[from].push_back(it->second);
    }
  }
  int num_sccs = 0;
  std::vector<int> scc = SccIds(idbs.size(), adj, &num_sccs);
  RuleStrata out;
  out.strata.resize(static_cast<size_t>(num_sccs));
  // SccIds assigns dependencies smaller component ids, so ascending SCC
  // order is dependency-first; rule order inside a stratum stays program
  // order.
  for (size_t ri = 0; ri < program.rules().size(); ++ri) {
    int node = node_of.at(program.rules()[ri].head.pred);
    out.strata[static_cast<size_t>(scc[node])].push_back(ri);
  }
  return out;
}

// --- Emptiness + constant-set analysis. ------------------------------------

PredAbstract EmptinessDomain::Init(PredId p) const {
  const Vocabulary& vocab = *program->vocab();
  auto arity = static_cast<size_t>(vocab.arity(p));
  PredAbstract out;
  if (edb != nullptr) {
    // Seed every predicate from the concrete instance: the input of
    // FPEval may carry IDB facts too, and soundness requires the seed to
    // cover them (rule contributions join in on top).
    const uint32_t rows = edb->NumRows(p);
    if (rows == 0) return out;  // bottom: no fact in the input
    out.nonempty = true;
    out.pos.resize(arity);
    for (PosAbstract& pa : out.pos) pa.top = false;
    for (uint32_t row = 0; row < rows; ++row) {
      const std::span<const ElemId> fargs = edb->Args(p, row);
      for (size_t j = 0; j < arity && j < fargs.size(); ++j) {
        PosAbstract& pa = out.pos[j];
        if (pa.top) continue;
        auto it = std::lower_bound(pa.consts.begin(), pa.consts.end(),
                                   fargs[j]);
        if (it != pa.consts.end() && *it == fargs[j]) continue;
        if (pa.consts.size() >= kMaxTrackedConsts) {
          pa.top = true;
          pa.consts.clear();
        } else {
          pa.consts.insert(it, fargs[j]);
        }
      }
    }
    return out;
  }
  if (program->IsIdb(p)) return out;  // bottom: only rules populate IDBs
  // Unconstrained EDB predicate: possibly nonempty, every position top.
  out.nonempty = true;
  out.pos.assign(arity, PosAbstract{true, {}});
  return out;
}

bool EmptinessDomain::Transfer(const Program& program_in, const Rule& rule,
                               size_t /*rule_index*/,
                               const std::unordered_map<PredId, Value>& env,
                               Value* head) const {
  std::vector<PosAbstract> var_val;
  if (!EvalRuleBody(program_in, rule, env, &var_val, nullptr)) return false;
  std::vector<bool> in_body(rule.num_vars(), false);
  for (const QAtom& a : rule.body) {
    for (VarId v : a.args) {
      if (v < in_body.size()) in_body[v] = true;
    }
  }
  head->nonempty = true;
  head->pos.resize(rule.head.args.size());
  for (size_t i = 0; i < rule.head.args.size(); ++i) {
    VarId v = rule.head.args[i];
    // A head variable missing from the body is a safety violation; the
    // analysis stays sound by assuming it can be anything.
    if (v < var_val.size() && in_body[v]) {
      head->pos[i] = var_val[v];
    } else {
      head->pos[i] = PosAbstract{true, {}};
    }
  }
  return true;
}

bool EmptinessDomain::Join(Value* into, const Value& v) const {
  if (!v.nonempty) return false;
  if (!into->nonempty) {
    *into = v;
    return true;
  }
  if (into->pos.size() != v.pos.size()) {
    // Arity mismatch (ill-formed program): saturate to all-top.
    bool was_top = true;
    for (const PosAbstract& pa : into->pos) was_top &= pa.top;
    if (was_top) return false;
    for (PosAbstract& pa : into->pos) pa = PosAbstract{true, {}};
    return true;
  }
  bool changed = false;
  for (size_t i = 0; i < into->pos.size(); ++i) {
    PosAbstract& a = into->pos[i];
    const PosAbstract& b = v.pos[i];
    if (a.top) continue;
    if (b.top) {
      a = PosAbstract{true, {}};
      changed = true;
      continue;
    }
    std::vector<ElemId> merged;
    std::set_union(a.consts.begin(), a.consts.end(), b.consts.begin(),
                   b.consts.end(), std::back_inserter(merged));
    if (merged.size() > kMaxTrackedConsts) {
      a = PosAbstract{true, {}};
      changed = true;
    } else if (merged != a.consts) {
      a.consts = std::move(merged);
      changed = true;
    }
  }
  return changed;
}

EmptinessResult AnalyzeEmptiness(const Program& program, const Instance* edb) {
  EmptinessDomain domain;
  domain.program = &program;
  domain.edb = edb;
  EmptinessResult out;
  out.preds = RunBottomUpFixpoint(program, domain);
  out.rule_dead.assign(program.rules().size(), false);
  out.dead_reasons.assign(program.rules().size(), DeadRuleReason{});
  for (size_t ri = 0; ri < program.rules().size(); ++ri) {
    std::vector<PosAbstract> var_val;
    DeadRuleReason reason;
    if (!EvalRuleBody(program, program.rules()[ri], out.preds, &var_val,
                      &reason)) {
      out.rule_dead[ri] = true;
      out.dead_reasons[ri] = std::move(reason);
    }
  }
  std::vector<PredId> idbs(program.Idbs().begin(), program.Idbs().end());
  std::sort(idbs.begin(), idbs.end());
  for (PredId p : idbs) {
    if (out.IsEmpty(p)) out.empty_idbs.push_back(p);
  }
  return out;
}

std::vector<bool> DeadRuleMask(const Program& program, const Instance& input) {
  return AnalyzeEmptiness(program, &input).rule_dead;
}

// --- Binding-pattern / adornment analysis. ---------------------------------

AdornmentResult AnalyzeAdornments(const Program& program, PredId goal) {
  AdornmentResult res;
  const Vocabulary& vocab = *program.vocab();
  if (goal >= static_cast<PredId>(vocab.size()) || !program.IsIdb(goal)) {
    return res;
  }
  res.goal_binds = vocab.arity(goal) > 0;
  // Worklist over (predicate, adornment) call patterns; the goal is
  // called all-bound (its arguments are the query constants). At most
  // preds * 2^arity patterns; the saturation guard below caps pathological
  // wide-arity vocabularies.
  constexpr size_t kMaxPatterns = 4096;
  std::string goal_ad(static_cast<size_t>(vocab.arity(goal)), 'b');
  std::set<std::pair<PredId, std::string>> seen;
  std::deque<std::pair<PredId, std::string>> work;
  seen.emplace(goal, goal_ad);
  work.emplace_back(goal, goal_ad);
  res.calls[goal].insert(goal_ad);
  while (!work.empty()) {
    auto [p, ad] = work.front();
    work.pop_front();
    for (size_t ri : program.RulesFor(p)) {
      const Rule& rule = program.rules()[ri];
      if (rule.head.args.size() != ad.size()) continue;  // arity error
      std::vector<bool> bound(rule.num_vars(), false);
      for (size_t i = 0; i < ad.size(); ++i) {
        if (ad[i] == 'b' && rule.head.args[i] < bound.size()) {
          bound[rule.head.args[i]] = true;
        }
      }
      // Left-to-right sideways information passing: each atom is called
      // with the bindings accumulated so far, then binds its variables.
      for (size_t ai = 0; ai < rule.body.size(); ++ai) {
        const QAtom& a = rule.body[ai];
        if (program.IsIdb(a.pred)) {
          std::string aad;
          aad.reserve(a.args.size());
          for (VarId v : a.args) {
            aad += (v < bound.size() && bound[v]) ? 'b' : 'f';
          }
          res.calls[a.pred].insert(aad);
          res.atom_calls[{ri, static_cast<int>(ai)}].insert(aad);
          if (seen.size() < kMaxPatterns &&
              seen.emplace(a.pred, aad).second) {
            work.emplace_back(a.pred, aad);
          }
        }
        for (VarId v : a.args) {
          if (v < bound.size()) bound[v] = true;
        }
      }
    }
  }
  return res;
}

// --- Rule subsumption / redundancy. ----------------------------------------

namespace {

/// The rule body as an instance over the rule's variables: element v is
/// variable v, one fact per body atom. `skip_atom` (when >= 0) leaves
/// that atom out. The canonical-database encoding HomSearch containment
/// checks run on.
Instance BodyInstance(const Program& program, const Rule& rule,
                      int skip_atom = -1) {
  Instance inst(program.vocab());
  inst.EnsureElements(rule.num_vars());
  for (size_t ai = 0; ai < rule.body.size(); ++ai) {
    if (static_cast<int>(ai) == skip_atom) continue;
    const QAtom& a = rule.body[ai];
    std::vector<ElemId> args(a.args.begin(), a.args.end());
    inst.AddFact(a.pred, args);
  }
  return inst;
}

/// Does rule `general` derive, on every database state, a superset of
/// what rule `specific` derives? Holds iff there is a homomorphism from
/// general's body to specific's body mapping general's head arguments
/// onto specific's (uniform containment — sound under recursion).
bool Subsumes(const Rule& general, const Instance& general_body,
              const Rule& specific, const Instance& specific_body) {
  if (general.head.pred != specific.head.pred) return false;
  if (general.head.args.size() != specific.head.args.size()) return false;
  // The head mapping must be functional: a repeated variable in the
  // general head can only map onto a repeated variable in the specific.
  std::unordered_map<VarId, VarId> head_map;
  HomSearch::Fixed fixed;
  for (size_t i = 0; i < general.head.args.size(); ++i) {
    VarId from = general.head.args[i];
    VarId to = specific.head.args[i];
    auto it = head_map.find(from);
    if (it != head_map.end()) {
      if (it->second != to) return false;
      continue;
    }
    head_map.emplace(from, to);
    fixed.emplace_back(from, to);
  }
  return HomSearch(general_body, specific_body).Exists(fixed);
}

}  // namespace

SubsumptionResult AnalyzeSubsumption(const Program& program) {
  const std::vector<Rule>& rules = program.rules();
  SubsumptionResult out;
  out.subsumed_by.assign(rules.size(), -1);
  out.redundant_atoms.resize(rules.size());
  std::vector<Instance> bodies;
  bodies.reserve(rules.size());
  for (const Rule& r : rules) bodies.push_back(BodyInstance(program, r));

  for (size_t r1 = 0; r1 < rules.size(); ++r1) {
    // Whole-rule subsumption: the lowest-index distinct rule deriving a
    // superset. Of two equivalent rules only the later is marked, so the
    // set of marked rules is always droppable together.
    for (size_t r2 = 0; r2 < rules.size(); ++r2) {
      if (r2 == r1 || rules[r2].head.pred != rules[r1].head.pred) continue;
      if (!Subsumes(rules[r2], bodies[r2], rules[r1], bodies[r1])) {
        continue;
      }
      if (r2 > r1 &&
          Subsumes(rules[r1], bodies[r1], rules[r2], bodies[r2])) {
        continue;  // equivalent: the later rule gets marked instead
      }
      out.subsumed_by[r1] = static_cast<int>(r2);
      break;
    }
    // Per-atom redundancy: the body folds onto the body without the atom
    // while fixing the head variables, so dropping it is an equivalence.
    const Rule& rule = rules[r1];
    if (rule.body.size() < 2) continue;
    HomSearch::Fixed fixed;
    std::unordered_set<VarId> fixed_vars;
    for (VarId v : rule.head.args) {
      if (fixed_vars.insert(v).second) fixed.emplace_back(v, v);
    }
    for (size_t ai = 0; ai < rule.body.size(); ++ai) {
      Instance reduced = BodyInstance(program, rule, static_cast<int>(ai));
      if (HomSearch(bodies[r1], reduced).Exists(fixed)) {
        out.redundant_atoms[r1].push_back(static_cast<int>(ai));
      }
    }
  }
  return out;
}

// --- Combined result + rendering. ------------------------------------------

DataflowResult AnalyzeDataflow(const Program& program,
                               std::optional<PredId> goal,
                               const Instance* edb) {
  DataflowResult out;
  out.emptiness = AnalyzeEmptiness(program, edb);
  out.subsumption = AnalyzeSubsumption(program);
  if (goal) out.adornments = AnalyzeAdornments(program, *goal);
  return out;
}

namespace {

std::string ElemName(const Instance* edb, ElemId e) {
  if (edb != nullptr && e < edb->num_elements() &&
      !edb->element_name(e).empty()) {
    return edb->element_name(e);
  }
  return "e" + std::to_string(e);
}

std::string PosToString(const PosAbstract& pa, const Instance* edb) {
  if (pa.top) return "T";
  std::string out = "{";
  for (size_t i = 0; i < pa.consts.size(); ++i) {
    if (i) out += ",";
    out += ElemName(edb, pa.consts[i]);
  }
  return out + "}";
}

}  // namespace

std::string DescribeDataflow(const Program& program,
                             const DataflowResult& result,
                             const Instance* edb) {
  const Vocabulary& vocab = *program.vocab();
  std::ostringstream os;
  os << "dataflow: emptiness/constant-set fixpoint"
     << (edb != nullptr ? " (seeded from instance)" : "") << "\n";
  for (PredId p = 0; p < static_cast<PredId>(vocab.size()); ++p) {
    auto it = result.emptiness.preds.find(p);
    if (it == result.emptiness.preds.end()) continue;
    os << "  " << vocab.name(p) << "/" << vocab.arity(p)
       << (program.IsIdb(p) ? " idb: " : " edb: ");
    if (!it->second.nonempty) {
      os << "empty\n";
      continue;
    }
    os << "(";
    for (size_t j = 0; j < it->second.pos.size(); ++j) {
      if (j) os << ", ";
      os << PosToString(it->second.pos[j], edb);
    }
    os << ")\n";
  }
  for (size_t ri = 0; ri < result.emptiness.rule_dead.size(); ++ri) {
    if (!result.emptiness.rule_dead[ri]) continue;
    os << "  rule " << ri << ": dead ("
       << result.emptiness.dead_reasons[ri].detail << ")\n";
  }
  for (size_t ri = 0; ri < result.subsumption.subsumed_by.size(); ++ri) {
    if (result.subsumption.subsumed_by[ri] < 0) continue;
    os << "  rule " << ri << ": subsumed by rule "
       << result.subsumption.subsumed_by[ri] << "\n";
  }
  for (size_t ri = 0; ri < result.subsumption.redundant_atoms.size(); ++ri) {
    for (int ai : result.subsumption.redundant_atoms[ri]) {
      os << "  rule " << ri << ": body atom " << ai << " redundant\n";
    }
  }
  if (result.adornments) {
    os << "adornments (goal called all-bound):\n";
    for (const auto& [p, ads] : result.adornments->calls) {
      os << "  " << vocab.name(p) << ":";
      for (const std::string& ad : ads) {
        os << " " << (ad.empty() ? "()" : ad);
      }
      os << "\n";
    }
  }
  return os.str();
}

}  // namespace mondet
