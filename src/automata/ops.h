#ifndef MONDET_AUTOMATA_OPS_H_
#define MONDET_AUTOMATA_OPS_H_

#include <optional>
#include <unordered_set>

#include "automata/nta.h"

namespace mondet {

/// Intersection: accepts exactly the codes accepted by both automata.
Nta Product(const Nta& a, const Nta& b);

/// Union of languages (disjoint union of automata).
Nta UnionNta(const Nta& a, const Nta& b);

/// Projection onto a subsignature (Prop. 5): relabels every transition by
/// dropping atom labels whose predicate is outside `keep`. Captures the
/// class of restricted instances; same size.
Nta ProjectLabels(const Nta& a, const std::unordered_set<PredId>& keep);

/// Emptiness test (least fixpoint of inhabited states).
bool IsEmpty(const Nta& a);

/// A witness code for non-emptiness (minimal-height derivation), or
/// nullopt when the language is empty.
std::optional<TreeCode> EmptinessWitness(const Nta& a);

/// The symbol universe of an automaton or code: the node/edge label
/// combinations appearing in its transitions. Determinization and
/// complementation are relative to such a universe.
struct SymbolUniverse {
  struct UnSym {
    NodeLabel label;
    EdgeLabel edge;
    bool operator<(const UnSym& o) const {
      if (!(label == o.label)) return label < o.label;
      return edge < o.edge;
    }
  };
  struct BinSym {
    NodeLabel label;
    EdgeLabel edge1;
    EdgeLabel edge2;
    bool operator<(const BinSym& o) const {
      if (!(label == o.label)) return label < o.label;
      if (!(edge1 == o.edge1)) return edge1 < o.edge1;
      return edge2 < o.edge2;
    }
  };
  std::set<NodeLabel> leaves;
  std::set<UnSym> unaries;
  std::set<BinSym> binaries;

  void Merge(const SymbolUniverse& o);
};

SymbolUniverse SymbolsOf(const Nta& a);
SymbolUniverse SymbolsOf(const TreeCode& code);

/// Subset-construction determinization relative to `universe`. The result
/// is a deterministic, complete automaton over exactly those symbols that
/// accepts the same codes built from the universe.
Nta Determinize(const Nta& a, const SymbolUniverse& universe);

/// Complement relative to `universe` (determinize, then flip finals).
Nta Complement(const Nta& a, const SymbolUniverse& universe);

/// Removes states that are not inhabited (bottom-up reachable) or not
/// co-reachable from a final state. Language-preserving.
Nta Trim(const Nta& a);

}  // namespace mondet

#endif  // MONDET_AUTOMATA_OPS_H_
