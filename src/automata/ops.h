#ifndef MONDET_AUTOMATA_OPS_H_
#define MONDET_AUTOMATA_OPS_H_

#include <optional>
#include <unordered_set>

#include "automata/nta.h"

namespace mondet {

/// Intersection: accepts exactly the codes accepted by both automata.
Nta Product(const Nta& a, const Nta& b);

/// Union of languages (disjoint union of automata).
Nta UnionNta(const Nta& a, const Nta& b);

/// Projection onto a subsignature (Prop. 5): relabels every transition by
/// dropping atom labels whose predicate is outside `keep`. Captures the
/// class of restricted instances; same size.
Nta ProjectLabels(const Nta& a, const std::unordered_set<PredId>& keep);

/// Emptiness test (least fixpoint of inhabited states).
bool IsEmpty(const Nta& a);

/// A witness code for non-emptiness (minimal-height derivation), or
/// nullopt when the language is empty.
std::optional<TreeCode> EmptinessWitness(const Nta& a);

/// The symbol universe of an automaton or code: the node/edge label
/// combinations appearing in its transitions. Determinization and
/// complementation are relative to such a universe.
struct SymbolUniverse {
  struct UnSym {
    NodeLabel label;
    EdgeLabel edge;
    bool operator<(const UnSym& o) const {
      if (!(label == o.label)) return label < o.label;
      return edge < o.edge;
    }
  };
  struct BinSym {
    NodeLabel label;
    EdgeLabel edge1;
    EdgeLabel edge2;
    bool operator<(const BinSym& o) const {
      if (!(label == o.label)) return label < o.label;
      if (!(edge1 == o.edge1)) return edge1 < o.edge1;
      return edge2 < o.edge2;
    }
  };
  std::set<NodeLabel> leaves;
  std::set<UnSym> unaries;
  std::set<BinSym> binaries;

  void Merge(const SymbolUniverse& o);
};

SymbolUniverse SymbolsOf(const Nta& a);
SymbolUniverse SymbolsOf(const TreeCode& code);

/// Subset-construction determinization relative to `universe`. The result
/// is a deterministic, complete automaton over exactly those symbols that
/// accepts the same codes built from the universe.
Nta Determinize(const Nta& a, const SymbolUniverse& universe);

/// Complement relative to `universe` (determinize, then flip finals).
/// This is the explicit-construction escape hatch: it materializes every
/// reachable subset up front, which is exponential in the worst case.
/// Inclusion checks should prefer `NtaIncluded`, which explores the same
/// subsets lazily with antichain subsumption pruning and only falls back
/// to this route for differential testing (the `antichain-inclusion`
/// oracle checks both give the same answer).
Nta Complement(const Nta& a, const SymbolUniverse& universe);

struct NtaInclusionOptions {
  /// Antichain subsumption pruning: per a-state, keep only the ⊆-minimal
  /// b-macrostates. Sound because DP continuations from a smaller
  /// macrostate reject whenever those from a larger one do, so any
  /// counterexample reachable through a pruned (superset) macrostate is
  /// also reachable through the kept one. Off = the same lazy walk
  /// without pruning (the escape hatch for differential testing).
  bool antichain_prune = true;
};

/// Outcome of NtaIncluded. Counters describe the lazy search; `witness`
/// is populated exactly when the inclusion fails.
struct NtaInclusionResult {
  bool included = true;
  /// (a-state, b-macrostate) pairs interned by the search.
  size_t pairs_explored = 0;
  /// Distinct b-macrostates interned — directly comparable to
  /// Determinize(b, universe).num_states(), and never larger.
  size_t macrostates_visited = 0;
  /// Candidate pairs discarded because a ⊆-smaller macrostate was
  /// already visited for the same a-state (0 with pruning off).
  size_t subsumption_prunes = 0;
  size_t transition_visits = 0;
  /// When !included: a code accepted by `a` and rejected by `b`.
  std::optional<TreeCode> witness;
};

/// Decides L(a) ⊆ L(b) over codes built from `universe` symbols, without
/// materializing Determinize(b): explores (state-of-a, subset-of-b) pairs
/// on demand from the leaves up, pruning ⊆-dominated macrostates, and
/// stops at the first pair witnessing non-inclusion (final in `a`, no
/// final of `b` in the macrostate). Equivalent to
/// IsEmpty(Product(a, Complement(b, universe))); transitions of `a` whose
/// symbols fall outside `universe` do not participate, matching the
/// explicit route.
NtaInclusionResult NtaIncluded(const Nta& a, const Nta& b,
                               const SymbolUniverse& universe,
                               const NtaInclusionOptions& options = {});

/// Outcome of LazyProductEmptiness; `witness` is a code accepted by both
/// automata exactly when the intersection is nonempty.
struct LazyProductResult {
  bool empty = true;
  /// (a-state, b-state) pairs interned by the walk — at most
  /// |a|·|b| but typically far fewer than Product materializes.
  size_t pairs_explored = 0;
  size_t transition_visits = 0;
  std::optional<TreeCode> witness;
};

/// On-demand product emptiness: decides L(a) ∩ L(b) = ∅ by expanding
/// reachable (a-state, b-state) pairs from the leaf frontier with the
/// worklist machinery of DatalogContainedInUcq, never building
/// Product(a, b). Stops at the first final×final pair.
LazyProductResult LazyProductEmptiness(const Nta& a, const Nta& b);

/// Removes states that are not inhabited (bottom-up reachable) or not
/// co-reachable from a final state. Language-preserving.
Nta Trim(const Nta& a);

}  // namespace mondet

#endif  // MONDET_AUTOMATA_OPS_H_
