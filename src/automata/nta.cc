#include "automata/nta.h"

#include <functional>

#include "base/check.h"

namespace mondet {

std::vector<std::set<State>> Nta::Run(const TreeCode& code) const {
  std::vector<std::set<State>> states(code.nodes.size());
  std::function<void(int)> visit = [&](int u) {
    const CodeNode& node = code.nodes[u];
    for (int c : node.children) visit(c);
    NodeLabel label(node.atoms.begin(), node.atoms.end());
    if (node.children.empty()) {
      for (const LeafTransition& t : leaf_) {
        if (t.label == label) states[u].insert(t.to);
      }
    } else if (node.children.size() == 1) {
      for (const UnaryTransition& t : unary_) {
        if (t.label == label && t.edge == node.edge_labels[0] &&
            states[node.children[0]].count(t.child)) {
          states[u].insert(t.to);
        }
      }
    } else {
      for (const BinaryTransition& t : binary_) {
        if (t.label == label && t.edge1 == node.edge_labels[0] &&
            t.edge2 == node.edge_labels[1] &&
            states[node.children[0]].count(t.child1) &&
            states[node.children[1]].count(t.child2)) {
          states[u].insert(t.to);
        }
      }
    }
  };
  if (!code.nodes.empty()) visit(0);
  return states;
}

bool Nta::Accepts(const TreeCode& code) const {
  if (code.nodes.empty()) return false;
  std::vector<std::set<State>> states = Run(code);
  for (State q : states[0]) {
    if (finals_.count(q)) return true;
  }
  return false;
}

}  // namespace mondet
