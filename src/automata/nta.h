#ifndef MONDET_AUTOMATA_NTA_H_
#define MONDET_AUTOMATA_NTA_H_

#include <set>
#include <string>
#include <vector>

#include "tree/code.h"

namespace mondet {

/// Automaton state id.
using State = uint32_t;

/// A node label: the set of unary predicates T^R_n holding at a code node.
using NodeLabel = std::set<AtomLabel>;

/// A nondeterministic bottom-up tree automaton over tree codes of a fixed
/// width (Sec. 3). Transitions exist for leaves, unary nodes and binary
/// nodes; edge labels participate in the symbol, matching the paper's
/// consolidated alphabet σ^{s1,s2}_L.
class Nta {
 public:
  struct LeafTransition {
    NodeLabel label;
    State to;
  };
  struct UnaryTransition {
    NodeLabel label;
    EdgeLabel edge;
    State child;
    State to;
  };
  struct BinaryTransition {
    NodeLabel label;
    EdgeLabel edge1;
    EdgeLabel edge2;
    State child1;
    State child2;
    State to;
  };

  explicit Nta(int width) : width_(width) {}

  int width() const { return width_; }

  State AddState() { return num_states_++; }
  size_t num_states() const { return num_states_; }

  void AddFinal(State q) { finals_.insert(q); }
  const std::set<State>& finals() const { return finals_; }

  void AddLeaf(NodeLabel label, State to) {
    leaf_.push_back({std::move(label), to});
  }
  void AddUnary(NodeLabel label, EdgeLabel edge, State child, State to) {
    unary_.push_back({std::move(label), std::move(edge), child, to});
  }
  void AddBinary(NodeLabel label, EdgeLabel e1, EdgeLabel e2, State c1,
                 State c2, State to) {
    binary_.push_back({std::move(label), std::move(e1), std::move(e2), c1,
                       c2, to});
  }

  const std::vector<LeafTransition>& leaf_transitions() const {
    return leaf_;
  }
  const std::vector<UnaryTransition>& unary_transitions() const {
    return unary_;
  }
  const std::vector<BinaryTransition>& binary_transitions() const {
    return binary_;
  }

  size_t num_transitions() const {
    return leaf_.size() + unary_.size() + binary_.size();
  }

  /// Bottom-up run: the set of states reachable at each code node.
  std::vector<std::set<State>> Run(const TreeCode& code) const;

  /// True iff some run labels the root with a final state.
  bool Accepts(const TreeCode& code) const;

 private:
  int width_;
  State num_states_ = 0;
  std::set<State> finals_;
  std::vector<LeafTransition> leaf_;
  std::vector<UnaryTransition> unary_;
  std::vector<BinaryTransition> binary_;
};

}  // namespace mondet

#endif  // MONDET_AUTOMATA_NTA_H_
