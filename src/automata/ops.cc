#include "automata/ops.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <map>
#include <tuple>
#include <utility>
#include <vector>

#include "base/check.h"

namespace mondet {

Nta Product(const Nta& a, const Nta& b) {
  MONDET_CHECK(a.width() == b.width());
  Nta out(a.width());
  size_t nb = b.num_states();
  auto pair_state = [&](State qa, State qb) {
    return static_cast<State>(qa * nb + qb);
  };
  for (size_t i = 0; i < a.num_states() * b.num_states(); ++i) out.AddState();
  for (State qa : a.finals()) {
    for (State qb : b.finals()) out.AddFinal(pair_state(qa, qb));
  }
  for (const auto& ta : a.leaf_transitions()) {
    for (const auto& tb : b.leaf_transitions()) {
      if (ta.label == tb.label) {
        out.AddLeaf(ta.label, pair_state(ta.to, tb.to));
      }
    }
  }
  for (const auto& ta : a.unary_transitions()) {
    for (const auto& tb : b.unary_transitions()) {
      if (ta.label == tb.label && ta.edge == tb.edge) {
        out.AddUnary(ta.label, ta.edge, pair_state(ta.child, tb.child),
                     pair_state(ta.to, tb.to));
      }
    }
  }
  for (const auto& ta : a.binary_transitions()) {
    for (const auto& tb : b.binary_transitions()) {
      if (ta.label == tb.label && ta.edge1 == tb.edge1 &&
          ta.edge2 == tb.edge2) {
        out.AddBinary(ta.label, ta.edge1, ta.edge2,
                      pair_state(ta.child1, tb.child1),
                      pair_state(ta.child2, tb.child2),
                      pair_state(ta.to, tb.to));
      }
    }
  }
  return out;
}

Nta UnionNta(const Nta& a, const Nta& b) {
  MONDET_CHECK(a.width() == b.width());
  Nta out(a.width());
  for (size_t i = 0; i < a.num_states() + b.num_states(); ++i) out.AddState();
  State off = static_cast<State>(a.num_states());
  for (State q : a.finals()) out.AddFinal(q);
  for (State q : b.finals()) out.AddFinal(q + off);
  for (const auto& t : a.leaf_transitions()) out.AddLeaf(t.label, t.to);
  for (const auto& t : a.unary_transitions()) {
    out.AddUnary(t.label, t.edge, t.child, t.to);
  }
  for (const auto& t : a.binary_transitions()) {
    out.AddBinary(t.label, t.edge1, t.edge2, t.child1, t.child2, t.to);
  }
  for (const auto& t : b.leaf_transitions()) out.AddLeaf(t.label, t.to + off);
  for (const auto& t : b.unary_transitions()) {
    out.AddUnary(t.label, t.edge, t.child + off, t.to + off);
  }
  for (const auto& t : b.binary_transitions()) {
    out.AddBinary(t.label, t.edge1, t.edge2, t.child1 + off, t.child2 + off,
                  t.to + off);
  }
  return out;
}

namespace {
NodeLabel FilterLabel(const NodeLabel& label,
                      const std::unordered_set<PredId>& keep) {
  NodeLabel out;
  for (const AtomLabel& a : label) {
    if (keep.count(a.pred)) out.insert(a);
  }
  return out;
}
}  // namespace

Nta ProjectLabels(const Nta& a, const std::unordered_set<PredId>& keep) {
  Nta out(a.width());
  for (size_t i = 0; i < a.num_states(); ++i) out.AddState();
  for (State q : a.finals()) out.AddFinal(q);
  for (const auto& t : a.leaf_transitions()) {
    out.AddLeaf(FilterLabel(t.label, keep), t.to);
  }
  for (const auto& t : a.unary_transitions()) {
    out.AddUnary(FilterLabel(t.label, keep), t.edge, t.child, t.to);
  }
  for (const auto& t : a.binary_transitions()) {
    out.AddBinary(FilterLabel(t.label, keep), t.edge1, t.edge2, t.child1,
                  t.child2, t.to);
  }
  return out;
}

namespace {

/// Computes the inhabited (bottom-up reachable) states.
std::vector<bool> Inhabited(const Nta& a) {
  std::vector<bool> in(a.num_states(), false);
  for (const auto& t : a.leaf_transitions()) in[t.to] = true;
  bool changed = true;
  while (changed) {
    changed = false;
    for (const auto& t : a.unary_transitions()) {
      if (!in[t.to] && in[t.child]) {
        in[t.to] = true;
        changed = true;
      }
    }
    for (const auto& t : a.binary_transitions()) {
      if (!in[t.to] && in[t.child1] && in[t.child2]) {
        in[t.to] = true;
        changed = true;
      }
    }
  }
  return in;
}

}  // namespace

bool IsEmpty(const Nta& a) {
  std::vector<bool> in = Inhabited(a);
  for (State q : a.finals()) {
    if (in[q]) return false;
  }
  return true;
}

std::optional<TreeCode> EmptinessWitness(const Nta& a) {
  // For each state, remember one minimal derivation: -1 = none,
  // otherwise (kind, transition index).
  struct Deriv {
    int kind = -1;  // 0 leaf, 1 unary, 2 binary
    size_t idx = 0;
  };
  std::vector<Deriv> deriv(a.num_states());
  std::vector<bool> in(a.num_states(), false);
  for (size_t i = 0; i < a.leaf_transitions().size(); ++i) {
    State q = a.leaf_transitions()[i].to;
    if (!in[q]) {
      in[q] = true;
      deriv[q] = {0, i};
    }
  }
  bool changed = true;
  while (changed) {
    changed = false;
    for (size_t i = 0; i < a.unary_transitions().size(); ++i) {
      const auto& t = a.unary_transitions()[i];
      if (!in[t.to] && in[t.child]) {
        in[t.to] = true;
        deriv[t.to] = {1, i};
        changed = true;
      }
    }
    for (size_t i = 0; i < a.binary_transitions().size(); ++i) {
      const auto& t = a.binary_transitions()[i];
      if (!in[t.to] && in[t.child1] && in[t.child2]) {
        in[t.to] = true;
        deriv[t.to] = {2, i};
        changed = true;
      }
    }
  }
  State root = kNoElem;
  for (State q : a.finals()) {
    if (in[q]) {
      root = q;
      break;
    }
  }
  if (root == kNoElem) return std::nullopt;

  TreeCode code;
  code.width = a.width();
  std::function<int(State, int)> build = [&](State q, int parent) -> int {
    int id = static_cast<int>(code.nodes.size());
    code.nodes.emplace_back();
    code.nodes[id].parent = parent;
    const Deriv& d = deriv[q];
    MONDET_CHECK(d.kind >= 0);
    if (d.kind == 0) {
      const auto& t = a.leaf_transitions()[d.idx];
      code.nodes[id].atoms.insert(t.label.begin(), t.label.end());
    } else if (d.kind == 1) {
      const auto& t = a.unary_transitions()[d.idx];
      code.nodes[id].atoms.insert(t.label.begin(), t.label.end());
      int c = build(t.child, id);
      code.nodes[id].children.push_back(c);
      code.nodes[id].edge_labels.push_back(t.edge);
    } else {
      const auto& t = a.binary_transitions()[d.idx];
      code.nodes[id].atoms.insert(t.label.begin(), t.label.end());
      int c1 = build(t.child1, id);
      code.nodes[id].children.push_back(c1);
      code.nodes[id].edge_labels.push_back(t.edge1);
      int c2 = build(t.child2, id);
      code.nodes[id].children.push_back(c2);
      code.nodes[id].edge_labels.push_back(t.edge2);
    }
    return id;
  };
  build(root, -1);
  return code;
}

void SymbolUniverse::Merge(const SymbolUniverse& o) {
  leaves.insert(o.leaves.begin(), o.leaves.end());
  unaries.insert(o.unaries.begin(), o.unaries.end());
  binaries.insert(o.binaries.begin(), o.binaries.end());
}

SymbolUniverse SymbolsOf(const Nta& a) {
  SymbolUniverse u;
  for (const auto& t : a.leaf_transitions()) u.leaves.insert(t.label);
  for (const auto& t : a.unary_transitions()) {
    u.unaries.insert({t.label, t.edge});
  }
  for (const auto& t : a.binary_transitions()) {
    u.binaries.insert({t.label, t.edge1, t.edge2});
  }
  return u;
}

SymbolUniverse SymbolsOf(const TreeCode& code) {
  SymbolUniverse u;
  for (const CodeNode& n : code.nodes) {
    NodeLabel label(n.atoms.begin(), n.atoms.end());
    if (n.children.empty()) {
      u.leaves.insert(label);
    } else if (n.children.size() == 1) {
      u.unaries.insert({label, n.edge_labels[0]});
    } else {
      u.binaries.insert({label, n.edge_labels[0], n.edge_labels[1]});
    }
  }
  return u;
}

Nta Determinize(const Nta& a, const SymbolUniverse& universe) {
  Nta out(a.width());
  std::map<std::set<State>, State> subset_id;
  std::vector<std::set<State>> subsets;
  auto intern = [&](const std::set<State>& s) {
    auto it = subset_id.find(s);
    if (it != subset_id.end()) return it->second;
    State q = out.AddState();
    subset_id.emplace(s, q);
    subsets.push_back(s);
    return q;
  };

  // Leaf transitions, one per leaf symbol (deterministic, complete).
  for (const NodeLabel& sym : universe.leaves) {
    std::set<State> s;
    for (const auto& t : a.leaf_transitions()) {
      if (t.label == sym) s.insert(t.to);
    }
    out.AddLeaf(sym, intern(s));
  }
  // Saturate unary/binary transitions over discovered subsets, emitting
  // each (children, symbol) combination exactly once.
  std::set<std::pair<size_t, size_t>> done_unary;  // (subset, symbol idx)
  std::set<std::tuple<size_t, size_t, size_t>> done_binary;
  std::vector<SymbolUniverse::UnSym> unaries(universe.unaries.begin(),
                                             universe.unaries.end());
  std::vector<SymbolUniverse::BinSym> binaries(universe.binaries.begin(),
                                               universe.binaries.end());
  bool changed = true;
  while (changed) {
    changed = false;
    size_t n = subsets.size();
    for (size_t si = 0; si < n; ++si) {
      for (size_t yi = 0; yi < unaries.size(); ++yi) {
        if (!done_unary.insert({si, yi}).second) continue;
        const auto& sym = unaries[yi];
        std::set<State> to;
        for (const auto& t : a.unary_transitions()) {
          if (t.label == sym.label && t.edge == sym.edge &&
              subsets[si].count(t.child)) {
            to.insert(t.to);
          }
        }
        State from = subset_id.at(subsets[si]);
        size_t before = subsets.size();
        out.AddUnary(sym.label, sym.edge, from, intern(to));
        if (before != subsets.size()) changed = true;
      }
    }
    for (size_t s1 = 0; s1 < n; ++s1) {
      for (size_t s2 = 0; s2 < n; ++s2) {
        for (size_t yi = 0; yi < binaries.size(); ++yi) {
          if (!done_binary.insert({s1, s2, yi}).second) continue;
          const auto& sym = binaries[yi];
          std::set<State> to;
          for (const auto& t : a.binary_transitions()) {
            if (t.label == sym.label && t.edge1 == sym.edge1 &&
                t.edge2 == sym.edge2 && subsets[s1].count(t.child1) &&
                subsets[s2].count(t.child2)) {
              to.insert(t.to);
            }
          }
          State f1 = subset_id.at(subsets[s1]);
          State f2 = subset_id.at(subsets[s2]);
          size_t before = subsets.size();
          out.AddBinary(sym.label, sym.edge1, sym.edge2, f1, f2, intern(to));
          if (before != subsets.size()) changed = true;
        }
      }
    }
    if (subsets.size() != n) changed = true;
  }
  for (const auto& [s, q] : subset_id) {
    for (State f : a.finals()) {
      if (s.count(f)) {
        out.AddFinal(q);
        break;
      }
    }
  }
  return out;
}

Nta Complement(const Nta& a, const SymbolUniverse& universe) {
  Nta det = Determinize(a, universe);
  Nta out(det.width());
  for (size_t i = 0; i < det.num_states(); ++i) out.AddState();
  for (State q = 0; q < det.num_states(); ++q) {
    if (!det.finals().count(q)) out.AddFinal(q);
  }
  for (const auto& t : det.leaf_transitions()) out.AddLeaf(t.label, t.to);
  for (const auto& t : det.unary_transitions()) {
    out.AddUnary(t.label, t.edge, t.child, t.to);
  }
  for (const auto& t : det.binary_transitions()) {
    out.AddBinary(t.label, t.edge1, t.edge2, t.child1, t.child2, t.to);
  }
  return out;
}

namespace {

/// Self-test hook (scripts/check_fuzz_fault.sh): makes the antichain
/// prune fire on ⊆-comparability in *either* direction, which wrongly
/// discards strictly-smaller macrostates — exactly the unsound prune the
/// antichain-inclusion oracle must catch.
bool FaultSkipAntichainPrune() {
  static const bool on = [] {
    const char* env = std::getenv("MONDET_FAULT");
    return env != nullptr && std::strcmp(env, "skip-antichain-prune") == 0;
  }();
  return on;
}

/// A b-macrostate: a sorted, duplicate-free set of b-states.
using Macro = std::vector<State>;

bool MacroSubset(const Macro& sub, const Macro& sup) {
  return std::includes(sup.begin(), sup.end(), sub.begin(), sub.end());
}

void SortUnique(Macro* m) {
  std::sort(m->begin(), m->end());
  m->erase(std::unique(m->begin(), m->end()), m->end());
}

}  // namespace

NtaInclusionResult NtaIncluded(const Nta& a, const Nta& b,
                               const SymbolUniverse& universe,
                               const NtaInclusionOptions& options) {
  MONDET_CHECK(a.width() == b.width());
  NtaInclusionResult result;
  const bool fault = FaultSkipAntichainPrune();

  // b's transitions bucketed by symbol: successor macrostates are
  // computed on demand against these lists, never via Determinize.
  std::map<NodeLabel, Macro> b_leaf;
  for (const auto& t : b.leaf_transitions()) b_leaf[t.label].push_back(t.to);
  for (auto& [sym, m] : b_leaf) SortUnique(&m);
  std::map<SymbolUniverse::UnSym, std::vector<std::pair<State, State>>>
      b_unary;
  for (const auto& t : b.unary_transitions()) {
    b_unary[{t.label, t.edge}].push_back({t.child, t.to});
  }
  std::map<SymbolUniverse::BinSym,
           std::vector<std::tuple<State, State, State>>>
      b_binary;
  for (const auto& t : b.binary_transitions()) {
    b_binary[{t.label, t.edge1, t.edge2}].push_back(
        {t.child1, t.child2, t.to});
  }
  auto unary_succ = [&](const SymbolUniverse::UnSym& sym, const Macro& s) {
    Macro out;
    if (auto it = b_unary.find(sym); it != b_unary.end()) {
      for (const auto& [child, to] : it->second) {
        if (std::binary_search(s.begin(), s.end(), child)) out.push_back(to);
      }
    }
    SortUnique(&out);
    return out;
  };
  auto binary_succ = [&](const SymbolUniverse::BinSym& sym, const Macro& s1,
                         const Macro& s2) {
    Macro out;
    if (auto it = b_binary.find(sym); it != b_binary.end()) {
      for (const auto& [c1, c2, to] : it->second) {
        if (std::binary_search(s1.begin(), s1.end(), c1) &&
            std::binary_search(s2.begin(), s2.end(), c2)) {
          out.push_back(to);
        }
      }
    }
    SortUnique(&out);
    return out;
  };

  // Interned macrostates (kept pairs only, so macrostates_visited counts
  // subsets actually materialized) and discovered pairs with their
  // derivations, mirroring the DatalogContainedInUcq worklist.
  std::map<Macro, int> macro_id;
  std::vector<Macro> macros;
  std::vector<bool> macro_final;
  struct Deriv {
    int kind = -1;  // 0 leaf, 1 unary, 2 binary
    size_t trans = 0;
    int child1 = -1;
    int child2 = -1;
  };
  std::map<std::pair<State, int>, int> pair_id;
  std::vector<std::pair<State, int>> pairs;
  std::vector<Deriv> derivs;
  std::map<State, std::vector<int>> pairs_by_state;
  /// Per a-state antichain filter: pair ids whose macrostates are the
  /// current ⊆-minimal ones. Dominated entries leave the filter but stay
  /// in `pairs` (their derivations may already be referenced).
  std::map<State, std::vector<int>> frontier;
  std::vector<int> worklist;
  int bad = -1;

  auto intern = [&](State q, Macro m, Deriv deriv) {
    if (bad >= 0) return;
    auto mit = macro_id.find(m);
    int mid = mit == macro_id.end() ? -1 : mit->second;
    if (mid >= 0 && pair_id.count({q, mid})) return;
    if (options.antichain_prune) {
      for (int old : frontier[q]) {
        const Macro& seen = macros[pairs[old].second];
        if (MacroSubset(seen, m) || (fault && MacroSubset(m, seen))) {
          ++result.subsumption_prunes;
          return;
        }
      }
    }
    if (mid < 0) {
      mid = static_cast<int>(macros.size());
      macro_id.emplace(m, mid);
      bool fin = false;
      for (State qb : m) fin = fin || b.finals().count(qb) > 0;
      macros.push_back(std::move(m));
      macro_final.push_back(fin);
    }
    int id = static_cast<int>(pairs.size());
    pair_id.emplace(std::make_pair(q, mid), id);
    pairs.emplace_back(q, mid);
    derivs.push_back(deriv);
    pairs_by_state[q].push_back(id);
    if (options.antichain_prune) {
      auto& fr = frontier[q];
      fr.erase(std::remove_if(fr.begin(), fr.end(),
                              [&](int old) {
                                return MacroSubset(macros[mid],
                                                   macros[pairs[old].second]);
                              }),
               fr.end());
      fr.push_back(id);
    }
    worklist.push_back(id);
    if (a.finals().count(q) > 0 && !macro_final[mid]) bad = id;
  };

  // Only a-transitions whose symbols lie in the universe participate —
  // the same restriction Product(a, Complement(b, universe)) applies.
  std::map<State, std::vector<size_t>> unary_by_child;
  for (size_t ti = 0; ti < a.unary_transitions().size(); ++ti) {
    const auto& t = a.unary_transitions()[ti];
    if (universe.unaries.count({t.label, t.edge})) {
      unary_by_child[t.child].push_back(ti);
    }
  }
  std::map<State, std::vector<size_t>> binary_by_child1, binary_by_child2;
  for (size_t ti = 0; ti < a.binary_transitions().size(); ++ti) {
    const auto& t = a.binary_transitions()[ti];
    if (universe.binaries.count({t.label, t.edge1, t.edge2})) {
      binary_by_child1[t.child1].push_back(ti);
      binary_by_child2[t.child2].push_back(ti);
    }
  }

  for (size_t ti = 0; ti < a.leaf_transitions().size() && bad < 0; ++ti) {
    const auto& t = a.leaf_transitions()[ti];
    if (!universe.leaves.count(t.label)) continue;
    ++result.transition_visits;
    auto it = b_leaf.find(t.label);
    intern(t.to, it == b_leaf.end() ? Macro{} : it->second,
           Deriv{0, ti, -1, -1});
  }
  for (size_t wi = 0; wi < worklist.size() && bad < 0; ++wi) {
    const int pi = worklist[wi];
    const State q = pairs[pi].first;
    const int mq = pairs[pi].second;
    if (auto it = unary_by_child.find(q); it != unary_by_child.end()) {
      for (size_t ti : it->second) {
        if (bad >= 0) break;
        const auto& t = a.unary_transitions()[ti];
        ++result.transition_visits;
        intern(t.to, unary_succ({t.label, t.edge}, macros[mq]),
               Deriv{1, ti, pi, -1});
      }
    }
    // Binary joins pair the popped pair with every known sibling pair;
    // the partner list is snapshotted by size, so partners interned later
    // re-pair with `pi` when they pop (see DatalogContainedInUcq).
    if (auto it = binary_by_child1.find(q);
        it != binary_by_child1.end() && bad < 0) {
      for (size_t ti : it->second) {
        if (bad >= 0) break;
        const auto& t = a.binary_transitions()[ti];
        auto pit = pairs_by_state.find(t.child2);
        if (pit == pairs_by_state.end()) continue;
        size_t n = pit->second.size();
        for (size_t k = 0; k < n && bad < 0; ++k) {
          int p2 = pit->second[k];
          ++result.transition_visits;
          intern(t.to,
                 binary_succ({t.label, t.edge1, t.edge2}, macros[mq],
                             macros[pairs[p2].second]),
                 Deriv{2, ti, pi, p2});
        }
      }
    }
    if (auto it = binary_by_child2.find(q);
        it != binary_by_child2.end() && bad < 0) {
      for (size_t ti : it->second) {
        if (bad >= 0) break;
        const auto& t = a.binary_transitions()[ti];
        auto pit = pairs_by_state.find(t.child1);
        if (pit == pairs_by_state.end()) continue;
        size_t n = pit->second.size();
        for (size_t k = 0; k < n && bad < 0; ++k) {
          int p1 = pit->second[k];
          ++result.transition_visits;
          intern(t.to,
                 binary_succ({t.label, t.edge1, t.edge2},
                             macros[pairs[p1].second], macros[mq]),
                 Deriv{2, ti, p1, pi});
        }
      }
    }
  }
  result.pairs_explored = pairs.size();
  result.macrostates_visited = macros.size();
  if (bad < 0) {
    result.included = true;
    return result;
  }
  result.included = false;

  TreeCode code;
  code.width = a.width();
  std::function<int(int, int)> build = [&](int pi, int parent) -> int {
    const Deriv& d = derivs[pi];
    int id = static_cast<int>(code.nodes.size());
    code.nodes.emplace_back();
    code.nodes[id].parent = parent;
    if (d.kind == 0) {
      const auto& t = a.leaf_transitions()[d.trans];
      code.nodes[id].atoms.insert(t.label.begin(), t.label.end());
    } else if (d.kind == 1) {
      const auto& t = a.unary_transitions()[d.trans];
      code.nodes[id].atoms.insert(t.label.begin(), t.label.end());
      int c = build(d.child1, id);
      code.nodes[id].children.push_back(c);
      code.nodes[id].edge_labels.push_back(t.edge);
    } else {
      const auto& t = a.binary_transitions()[d.trans];
      code.nodes[id].atoms.insert(t.label.begin(), t.label.end());
      int c1 = build(d.child1, id);
      code.nodes[id].children.push_back(c1);
      code.nodes[id].edge_labels.push_back(t.edge1);
      int c2 = build(d.child2, id);
      code.nodes[id].children.push_back(c2);
      code.nodes[id].edge_labels.push_back(t.edge2);
    }
    return id;
  };
  build(bad, -1);
  result.witness = std::move(code);
  return result;
}

LazyProductResult LazyProductEmptiness(const Nta& a, const Nta& b) {
  MONDET_CHECK(a.width() == b.width());
  LazyProductResult result;

  std::map<SymbolUniverse::UnSym, std::vector<size_t>> b_unary;
  for (size_t ti = 0; ti < b.unary_transitions().size(); ++ti) {
    const auto& t = b.unary_transitions()[ti];
    b_unary[{t.label, t.edge}].push_back(ti);
  }
  std::map<SymbolUniverse::BinSym, std::vector<size_t>> b_binary;
  for (size_t ti = 0; ti < b.binary_transitions().size(); ++ti) {
    const auto& t = b.binary_transitions()[ti];
    b_binary[{t.label, t.edge1, t.edge2}].push_back(ti);
  }
  std::map<State, std::vector<size_t>> unary_by_child;
  for (size_t ti = 0; ti < a.unary_transitions().size(); ++ti) {
    unary_by_child[a.unary_transitions()[ti].child].push_back(ti);
  }
  std::map<State, std::vector<size_t>> binary_by_child1, binary_by_child2;
  for (size_t ti = 0; ti < a.binary_transitions().size(); ++ti) {
    binary_by_child1[a.binary_transitions()[ti].child1].push_back(ti);
    binary_by_child2[a.binary_transitions()[ti].child2].push_back(ti);
  }

  struct Deriv {
    int kind = -1;  // 0 leaf, 1 unary, 2 binary
    size_t trans = 0;  // index into a's transitions of that kind
    int child1 = -1;
    int child2 = -1;
  };
  std::map<std::pair<State, State>, int> pair_id;
  std::vector<std::pair<State, State>> pairs;
  std::vector<Deriv> derivs;
  std::vector<int> worklist;
  int bad = -1;
  auto intern = [&](State qa, State qb, Deriv deriv) {
    if (bad >= 0) return;
    auto key = std::make_pair(qa, qb);
    if (pair_id.count(key)) return;
    int id = static_cast<int>(pairs.size());
    pair_id.emplace(key, id);
    pairs.push_back(key);
    derivs.push_back(deriv);
    worklist.push_back(id);
    if (a.finals().count(qa) > 0 && b.finals().count(qb) > 0) bad = id;
  };

  for (size_t ti = 0; ti < a.leaf_transitions().size() && bad < 0; ++ti) {
    const auto& ta = a.leaf_transitions()[ti];
    for (const auto& tb : b.leaf_transitions()) {
      if (bad >= 0) break;
      if (!(ta.label == tb.label)) continue;
      ++result.transition_visits;
      intern(ta.to, tb.to, Deriv{0, ti, -1, -1});
    }
  }
  for (size_t wi = 0; wi < worklist.size() && bad < 0; ++wi) {
    const int pi = worklist[wi];
    const State qa = pairs[pi].first;
    const State qb = pairs[pi].second;
    if (auto it = unary_by_child.find(qa); it != unary_by_child.end()) {
      for (size_t ti : it->second) {
        if (bad >= 0) break;
        const auto& ta = a.unary_transitions()[ti];
        auto bit = b_unary.find({ta.label, ta.edge});
        if (bit == b_unary.end()) continue;
        for (size_t tj : bit->second) {
          if (bad >= 0) break;
          const auto& tb = b.unary_transitions()[tj];
          if (tb.child != qb) continue;
          ++result.transition_visits;
          intern(ta.to, tb.to, Deriv{1, ti, pi, -1});
        }
      }
    }
    // A binary step needs both child product-pairs discovered. Joining
    // the popped pair as one child, the sibling is a direct pair_id
    // lookup; combinations whose sibling is interned later fire when the
    // sibling pops with the roles swapped.
    auto binary_from = [&](size_t ti, bool popped_is_child1) {
      const auto& ta = a.binary_transitions()[ti];
      auto bit = b_binary.find({ta.label, ta.edge1, ta.edge2});
      if (bit == b_binary.end()) return;
      for (size_t tj : bit->second) {
        if (bad >= 0) break;
        const auto& tb = b.binary_transitions()[tj];
        if ((popped_is_child1 ? tb.child1 : tb.child2) != qb) continue;
        State sib_a = popped_is_child1 ? ta.child2 : ta.child1;
        State sib_b = popped_is_child1 ? tb.child2 : tb.child1;
        auto sit = pair_id.find({sib_a, sib_b});
        if (sit == pair_id.end()) continue;
        ++result.transition_visits;
        if (popped_is_child1) {
          intern(ta.to, tb.to, Deriv{2, ti, pi, sit->second});
        } else {
          intern(ta.to, tb.to, Deriv{2, ti, sit->second, pi});
        }
      }
    };
    if (auto it = binary_by_child1.find(qa);
        it != binary_by_child1.end() && bad < 0) {
      for (size_t ti : it->second) {
        if (bad >= 0) break;
        binary_from(ti, true);
      }
    }
    if (auto it = binary_by_child2.find(qa);
        it != binary_by_child2.end() && bad < 0) {
      for (size_t ti : it->second) {
        if (bad >= 0) break;
        binary_from(ti, false);
      }
    }
  }
  result.pairs_explored = pairs.size();
  if (bad < 0) return result;
  result.empty = false;

  TreeCode code;
  code.width = a.width();
  std::function<int(int, int)> build = [&](int pi, int parent) -> int {
    const Deriv& d = derivs[pi];
    int id = static_cast<int>(code.nodes.size());
    code.nodes.emplace_back();
    code.nodes[id].parent = parent;
    if (d.kind == 0) {
      const auto& t = a.leaf_transitions()[d.trans];
      code.nodes[id].atoms.insert(t.label.begin(), t.label.end());
    } else if (d.kind == 1) {
      const auto& t = a.unary_transitions()[d.trans];
      code.nodes[id].atoms.insert(t.label.begin(), t.label.end());
      int c = build(d.child1, id);
      code.nodes[id].children.push_back(c);
      code.nodes[id].edge_labels.push_back(t.edge);
    } else {
      const auto& t = a.binary_transitions()[d.trans];
      code.nodes[id].atoms.insert(t.label.begin(), t.label.end());
      int c1 = build(d.child1, id);
      code.nodes[id].children.push_back(c1);
      code.nodes[id].edge_labels.push_back(t.edge1);
      int c2 = build(d.child2, id);
      code.nodes[id].children.push_back(c2);
      code.nodes[id].edge_labels.push_back(t.edge2);
    }
    return id;
  };
  build(bad, -1);
  result.witness = std::move(code);
  return result;
}

Nta Trim(const Nta& a) {
  std::vector<bool> in = Inhabited(a);
  std::vector<bool> useful(a.num_states(), false);
  for (State q : a.finals()) {
    if (in[q]) useful[q] = true;
  }
  bool changed = true;
  while (changed) {
    changed = false;
    for (const auto& t : a.unary_transitions()) {
      if (useful[t.to] && in[t.child] && !useful[t.child]) {
        useful[t.child] = true;
        changed = true;
      }
    }
    for (const auto& t : a.binary_transitions()) {
      if (useful[t.to] && in[t.child1] && in[t.child2]) {
        if (!useful[t.child1]) {
          useful[t.child1] = true;
          changed = true;
        }
        if (!useful[t.child2]) {
          useful[t.child2] = true;
          changed = true;
        }
      }
    }
  }
  std::vector<State> remap(a.num_states(), kNoElem);
  Nta out(a.width());
  for (State q = 0; q < a.num_states(); ++q) {
    if (in[q] && useful[q]) remap[q] = out.AddState();
  }
  for (State q : a.finals()) {
    if (remap[q] != kNoElem) out.AddFinal(remap[q]);
  }
  auto live = [&](State q) { return remap[q] != kNoElem; };
  for (const auto& t : a.leaf_transitions()) {
    if (live(t.to)) out.AddLeaf(t.label, remap[t.to]);
  }
  for (const auto& t : a.unary_transitions()) {
    if (live(t.to) && live(t.child)) {
      out.AddUnary(t.label, t.edge, remap[t.child], remap[t.to]);
    }
  }
  for (const auto& t : a.binary_transitions()) {
    if (live(t.to) && live(t.child1) && live(t.child2)) {
      out.AddBinary(t.label, t.edge1, t.edge2, remap[t.child1],
                    remap[t.child2], remap[t.to]);
    }
  }
  return out;
}

}  // namespace mondet
