#include "automata/ops.h"

#include <algorithm>
#include <functional>
#include <map>

#include "base/check.h"

namespace mondet {

Nta Product(const Nta& a, const Nta& b) {
  MONDET_CHECK(a.width() == b.width());
  Nta out(a.width());
  size_t nb = b.num_states();
  auto pair_state = [&](State qa, State qb) {
    return static_cast<State>(qa * nb + qb);
  };
  for (size_t i = 0; i < a.num_states() * b.num_states(); ++i) out.AddState();
  for (State qa : a.finals()) {
    for (State qb : b.finals()) out.AddFinal(pair_state(qa, qb));
  }
  for (const auto& ta : a.leaf_transitions()) {
    for (const auto& tb : b.leaf_transitions()) {
      if (ta.label == tb.label) {
        out.AddLeaf(ta.label, pair_state(ta.to, tb.to));
      }
    }
  }
  for (const auto& ta : a.unary_transitions()) {
    for (const auto& tb : b.unary_transitions()) {
      if (ta.label == tb.label && ta.edge == tb.edge) {
        out.AddUnary(ta.label, ta.edge, pair_state(ta.child, tb.child),
                     pair_state(ta.to, tb.to));
      }
    }
  }
  for (const auto& ta : a.binary_transitions()) {
    for (const auto& tb : b.binary_transitions()) {
      if (ta.label == tb.label && ta.edge1 == tb.edge1 &&
          ta.edge2 == tb.edge2) {
        out.AddBinary(ta.label, ta.edge1, ta.edge2,
                      pair_state(ta.child1, tb.child1),
                      pair_state(ta.child2, tb.child2),
                      pair_state(ta.to, tb.to));
      }
    }
  }
  return out;
}

Nta UnionNta(const Nta& a, const Nta& b) {
  MONDET_CHECK(a.width() == b.width());
  Nta out(a.width());
  for (size_t i = 0; i < a.num_states() + b.num_states(); ++i) out.AddState();
  State off = static_cast<State>(a.num_states());
  for (State q : a.finals()) out.AddFinal(q);
  for (State q : b.finals()) out.AddFinal(q + off);
  for (const auto& t : a.leaf_transitions()) out.AddLeaf(t.label, t.to);
  for (const auto& t : a.unary_transitions()) {
    out.AddUnary(t.label, t.edge, t.child, t.to);
  }
  for (const auto& t : a.binary_transitions()) {
    out.AddBinary(t.label, t.edge1, t.edge2, t.child1, t.child2, t.to);
  }
  for (const auto& t : b.leaf_transitions()) out.AddLeaf(t.label, t.to + off);
  for (const auto& t : b.unary_transitions()) {
    out.AddUnary(t.label, t.edge, t.child + off, t.to + off);
  }
  for (const auto& t : b.binary_transitions()) {
    out.AddBinary(t.label, t.edge1, t.edge2, t.child1 + off, t.child2 + off,
                  t.to + off);
  }
  return out;
}

namespace {
NodeLabel FilterLabel(const NodeLabel& label,
                      const std::unordered_set<PredId>& keep) {
  NodeLabel out;
  for (const AtomLabel& a : label) {
    if (keep.count(a.pred)) out.insert(a);
  }
  return out;
}
}  // namespace

Nta ProjectLabels(const Nta& a, const std::unordered_set<PredId>& keep) {
  Nta out(a.width());
  for (size_t i = 0; i < a.num_states(); ++i) out.AddState();
  for (State q : a.finals()) out.AddFinal(q);
  for (const auto& t : a.leaf_transitions()) {
    out.AddLeaf(FilterLabel(t.label, keep), t.to);
  }
  for (const auto& t : a.unary_transitions()) {
    out.AddUnary(FilterLabel(t.label, keep), t.edge, t.child, t.to);
  }
  for (const auto& t : a.binary_transitions()) {
    out.AddBinary(FilterLabel(t.label, keep), t.edge1, t.edge2, t.child1,
                  t.child2, t.to);
  }
  return out;
}

namespace {

/// Computes the inhabited (bottom-up reachable) states.
std::vector<bool> Inhabited(const Nta& a) {
  std::vector<bool> in(a.num_states(), false);
  for (const auto& t : a.leaf_transitions()) in[t.to] = true;
  bool changed = true;
  while (changed) {
    changed = false;
    for (const auto& t : a.unary_transitions()) {
      if (!in[t.to] && in[t.child]) {
        in[t.to] = true;
        changed = true;
      }
    }
    for (const auto& t : a.binary_transitions()) {
      if (!in[t.to] && in[t.child1] && in[t.child2]) {
        in[t.to] = true;
        changed = true;
      }
    }
  }
  return in;
}

}  // namespace

bool IsEmpty(const Nta& a) {
  std::vector<bool> in = Inhabited(a);
  for (State q : a.finals()) {
    if (in[q]) return false;
  }
  return true;
}

std::optional<TreeCode> EmptinessWitness(const Nta& a) {
  // For each state, remember one minimal derivation: -1 = none,
  // otherwise (kind, transition index).
  struct Deriv {
    int kind = -1;  // 0 leaf, 1 unary, 2 binary
    size_t idx = 0;
  };
  std::vector<Deriv> deriv(a.num_states());
  std::vector<bool> in(a.num_states(), false);
  for (size_t i = 0; i < a.leaf_transitions().size(); ++i) {
    State q = a.leaf_transitions()[i].to;
    if (!in[q]) {
      in[q] = true;
      deriv[q] = {0, i};
    }
  }
  bool changed = true;
  while (changed) {
    changed = false;
    for (size_t i = 0; i < a.unary_transitions().size(); ++i) {
      const auto& t = a.unary_transitions()[i];
      if (!in[t.to] && in[t.child]) {
        in[t.to] = true;
        deriv[t.to] = {1, i};
        changed = true;
      }
    }
    for (size_t i = 0; i < a.binary_transitions().size(); ++i) {
      const auto& t = a.binary_transitions()[i];
      if (!in[t.to] && in[t.child1] && in[t.child2]) {
        in[t.to] = true;
        deriv[t.to] = {2, i};
        changed = true;
      }
    }
  }
  State root = kNoElem;
  for (State q : a.finals()) {
    if (in[q]) {
      root = q;
      break;
    }
  }
  if (root == kNoElem) return std::nullopt;

  TreeCode code;
  code.width = a.width();
  std::function<int(State, int)> build = [&](State q, int parent) -> int {
    int id = static_cast<int>(code.nodes.size());
    code.nodes.emplace_back();
    code.nodes[id].parent = parent;
    const Deriv& d = deriv[q];
    MONDET_CHECK(d.kind >= 0);
    if (d.kind == 0) {
      const auto& t = a.leaf_transitions()[d.idx];
      code.nodes[id].atoms.insert(t.label.begin(), t.label.end());
    } else if (d.kind == 1) {
      const auto& t = a.unary_transitions()[d.idx];
      code.nodes[id].atoms.insert(t.label.begin(), t.label.end());
      int c = build(t.child, id);
      code.nodes[id].children.push_back(c);
      code.nodes[id].edge_labels.push_back(t.edge);
    } else {
      const auto& t = a.binary_transitions()[d.idx];
      code.nodes[id].atoms.insert(t.label.begin(), t.label.end());
      int c1 = build(t.child1, id);
      code.nodes[id].children.push_back(c1);
      code.nodes[id].edge_labels.push_back(t.edge1);
      int c2 = build(t.child2, id);
      code.nodes[id].children.push_back(c2);
      code.nodes[id].edge_labels.push_back(t.edge2);
    }
    return id;
  };
  build(root, -1);
  return code;
}

void SymbolUniverse::Merge(const SymbolUniverse& o) {
  leaves.insert(o.leaves.begin(), o.leaves.end());
  unaries.insert(o.unaries.begin(), o.unaries.end());
  binaries.insert(o.binaries.begin(), o.binaries.end());
}

SymbolUniverse SymbolsOf(const Nta& a) {
  SymbolUniverse u;
  for (const auto& t : a.leaf_transitions()) u.leaves.insert(t.label);
  for (const auto& t : a.unary_transitions()) {
    u.unaries.insert({t.label, t.edge});
  }
  for (const auto& t : a.binary_transitions()) {
    u.binaries.insert({t.label, t.edge1, t.edge2});
  }
  return u;
}

SymbolUniverse SymbolsOf(const TreeCode& code) {
  SymbolUniverse u;
  for (const CodeNode& n : code.nodes) {
    NodeLabel label(n.atoms.begin(), n.atoms.end());
    if (n.children.empty()) {
      u.leaves.insert(label);
    } else if (n.children.size() == 1) {
      u.unaries.insert({label, n.edge_labels[0]});
    } else {
      u.binaries.insert({label, n.edge_labels[0], n.edge_labels[1]});
    }
  }
  return u;
}

Nta Determinize(const Nta& a, const SymbolUniverse& universe) {
  Nta out(a.width());
  std::map<std::set<State>, State> subset_id;
  std::vector<std::set<State>> subsets;
  auto intern = [&](const std::set<State>& s) {
    auto it = subset_id.find(s);
    if (it != subset_id.end()) return it->second;
    State q = out.AddState();
    subset_id.emplace(s, q);
    subsets.push_back(s);
    return q;
  };

  // Leaf transitions, one per leaf symbol (deterministic, complete).
  for (const NodeLabel& sym : universe.leaves) {
    std::set<State> s;
    for (const auto& t : a.leaf_transitions()) {
      if (t.label == sym) s.insert(t.to);
    }
    out.AddLeaf(sym, intern(s));
  }
  // Saturate unary/binary transitions over discovered subsets, emitting
  // each (children, symbol) combination exactly once.
  std::set<std::pair<size_t, size_t>> done_unary;  // (subset, symbol idx)
  std::set<std::tuple<size_t, size_t, size_t>> done_binary;
  std::vector<SymbolUniverse::UnSym> unaries(universe.unaries.begin(),
                                             universe.unaries.end());
  std::vector<SymbolUniverse::BinSym> binaries(universe.binaries.begin(),
                                               universe.binaries.end());
  bool changed = true;
  while (changed) {
    changed = false;
    size_t n = subsets.size();
    for (size_t si = 0; si < n; ++si) {
      for (size_t yi = 0; yi < unaries.size(); ++yi) {
        if (!done_unary.insert({si, yi}).second) continue;
        const auto& sym = unaries[yi];
        std::set<State> to;
        for (const auto& t : a.unary_transitions()) {
          if (t.label == sym.label && t.edge == sym.edge &&
              subsets[si].count(t.child)) {
            to.insert(t.to);
          }
        }
        State from = subset_id.at(subsets[si]);
        size_t before = subsets.size();
        out.AddUnary(sym.label, sym.edge, from, intern(to));
        if (before != subsets.size()) changed = true;
      }
    }
    for (size_t s1 = 0; s1 < n; ++s1) {
      for (size_t s2 = 0; s2 < n; ++s2) {
        for (size_t yi = 0; yi < binaries.size(); ++yi) {
          if (!done_binary.insert({s1, s2, yi}).second) continue;
          const auto& sym = binaries[yi];
          std::set<State> to;
          for (const auto& t : a.binary_transitions()) {
            if (t.label == sym.label && t.edge1 == sym.edge1 &&
                t.edge2 == sym.edge2 && subsets[s1].count(t.child1) &&
                subsets[s2].count(t.child2)) {
              to.insert(t.to);
            }
          }
          State f1 = subset_id.at(subsets[s1]);
          State f2 = subset_id.at(subsets[s2]);
          size_t before = subsets.size();
          out.AddBinary(sym.label, sym.edge1, sym.edge2, f1, f2, intern(to));
          if (before != subsets.size()) changed = true;
        }
      }
    }
    if (subsets.size() != n) changed = true;
  }
  for (const auto& [s, q] : subset_id) {
    for (State f : a.finals()) {
      if (s.count(f)) {
        out.AddFinal(q);
        break;
      }
    }
  }
  return out;
}

Nta Complement(const Nta& a, const SymbolUniverse& universe) {
  Nta det = Determinize(a, universe);
  Nta out(det.width());
  for (size_t i = 0; i < det.num_states(); ++i) out.AddState();
  for (State q = 0; q < det.num_states(); ++q) {
    if (!det.finals().count(q)) out.AddFinal(q);
  }
  for (const auto& t : det.leaf_transitions()) out.AddLeaf(t.label, t.to);
  for (const auto& t : det.unary_transitions()) {
    out.AddUnary(t.label, t.edge, t.child, t.to);
  }
  for (const auto& t : det.binary_transitions()) {
    out.AddBinary(t.label, t.edge1, t.edge2, t.child1, t.child2, t.to);
  }
  return out;
}

Nta Trim(const Nta& a) {
  std::vector<bool> in = Inhabited(a);
  std::vector<bool> useful(a.num_states(), false);
  for (State q : a.finals()) {
    if (in[q]) useful[q] = true;
  }
  bool changed = true;
  while (changed) {
    changed = false;
    for (const auto& t : a.unary_transitions()) {
      if (useful[t.to] && in[t.child] && !useful[t.child]) {
        useful[t.child] = true;
        changed = true;
      }
    }
    for (const auto& t : a.binary_transitions()) {
      if (useful[t.to] && in[t.child1] && in[t.child2]) {
        if (!useful[t.child1]) {
          useful[t.child1] = true;
          changed = true;
        }
        if (!useful[t.child2]) {
          useful[t.child2] = true;
          changed = true;
        }
      }
    }
  }
  std::vector<State> remap(a.num_states(), kNoElem);
  Nta out(a.width());
  for (State q = 0; q < a.num_states(); ++q) {
    if (in[q] && useful[q]) remap[q] = out.AddState();
  }
  for (State q : a.finals()) {
    if (remap[q] != kNoElem) out.AddFinal(remap[q]);
  }
  auto live = [&](State q) { return remap[q] != kNoElem; };
  for (const auto& t : a.leaf_transitions()) {
    if (live(t.to)) out.AddLeaf(t.label, remap[t.to]);
  }
  for (const auto& t : a.unary_transitions()) {
    if (live(t.to) && live(t.child)) {
      out.AddUnary(t.label, t.edge, remap[t.child], remap[t.to]);
    }
  }
  for (const auto& t : a.binary_transitions()) {
    if (live(t.to) && live(t.child1) && live(t.child2)) {
      out.AddBinary(t.label, t.edge1, t.edge2, remap[t.child1],
                    remap[t.child2], remap[t.to]);
    }
  }
  return out;
}

}  // namespace mondet
