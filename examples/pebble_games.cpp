// Existential pebble games and the Lemma 6 parity tiling problem: grids
// cannot be tiled (no homomorphism into I_TP*), yet the Duplicator wins
// the k-pebble game for small k — the engine behind the Thm 8
// non-rewritability result.

#include <cstdio>

#include "base/homomorphism.h"
#include "games/pebble.h"
#include "games/unravel.h"
#include "reductions/lemma6.h"
#include "reductions/tiling.h"

using namespace mondet;

int main() {
  TilingProblem tp = MakeParityTilingProblem();
  std::printf("parity tiling problem TP*: %d tiles, |HC|=%zu, |VC|=%zu\n",
              tp.num_tiles, tp.hc.size(), tp.vc.size());

  auto vocab = MakeVocabulary();
  DeltaSchema schema = DeltaSchema::Create(vocab);
  Instance target = TilingProblemAsInstance(tp, vocab, schema);

  for (int n = 2; n <= 4; ++n) {
    Instance grid = GridInstance(n, n, vocab, schema);
    bool hom = HasHomomorphism(grid, target);
    std::printf("grid %dx%d: tileable (hom into I_TP*) = %s", n, n,
                hom ? "yes" : "no");
    if (n >= 3) {
      bool game = DuplicatorWins(grid, target, 2);
      std::printf(", duplicator wins 2-pebble game = %s", game ? "yes" : "no");
    }
    std::printf("\n");
  }

  // Unravellings: the tree-shaped approximations behind Fact 4.
  PredId r = vocab->AddPredicate("R", 2);
  Instance cycle(vocab);
  {
    ElemId a = cycle.AddElement();
    ElemId b = cycle.AddElement();
    ElemId c = cycle.AddElement();
    cycle.AddFact(r, {a, b});
    cycle.AddFact(r, {b, c});
    cycle.AddFact(r, {c, a});
  }
  UnravelOptions options;
  options.k = 2;
  options.depth = 3;
  Unravelling u = BoundedUnravelling(cycle, options);
  std::printf(
      "3-cycle: 2-unravelling has %zu nodes; cycle maps into unravelling = "
      "%s (acyclic), unravelling maps back = %s\n",
      u.nodes, HasHomomorphism(cycle, u.inst) ? "yes" : "no",
      HasHomomorphism(u.inst, cycle) ? "yes" : "no");
  return 0;
}
