// The automata-theoretic machinery on display: the forward mapping
// (Prop. 3), the Thm 5 exact decision for CQ queries over recursive
// Datalog views (with counterexample extraction), and the frontier-one
// backward mapping producing an MDL rewriting (Thm 1, MDL case).

#include <cstdio>

#include "automata/ops.h"
#include "core/backward.h"
#include "core/forward.h"
#include "core/mondet_check.h"
#include "datalog/eval.h"
#include "datalog/fragment.h"
#include "datalog/parser.h"
#include "tests/test_util.h"

using namespace mondet;

int main() {
  // --- Forward mapping: approximation automaton of a reachability query.
  auto vocab = MakeVocabulary();
  std::string error;
  std::vector<Diagnostic> diags;
  auto query = ParseQuery(R"(
    P(x) :- U(x).
    P(x) :- R(x,y), P(y).
    Goal() :- P(x), M(x).
  )",
                          "Goal", vocab, &diags);
  if (!query) return 1;
  ForwardResult fwd = ApproximationAutomaton(*query);
  std::printf("approximation automaton: %zu states, %zu transitions, "
              "width %d\n",
              fwd.automaton.num_states(), fwd.automaton.num_transitions(),
              fwd.width);
  auto witness = EmptinessWitness(fwd.automaton);
  std::printf("smallest expansion (decoded witness): %s\n",
              witness->Decode(vocab).DebugString().c_str());

  // --- Backward mapping, frontier-one variant: an MDL rewriting back
  //     over the base schema.
  std::vector<PredId> schema{*vocab->FindPredicate("R"),
                             *vocab->FindPredicate("U"),
                             *vocab->FindPredicate("M")};
  DatalogQuery mdl = BackwardMappingMdl(fwd.automaton, schema, vocab);
  std::printf("backward-mapped query: %zu rules, monadic=%s\n",
              mdl.program.rules().size(),
              IsMonadic(mdl.program) ? "yes" : "no");
  bool all_agree = true;
  for (unsigned seed = 0; seed < 20; ++seed) {
    Instance inst = RandomInstance(vocab, schema, 4, 8, seed);
    all_agree = all_agree &&
                DatalogHoldsOn(*query, inst) == DatalogHoldsOn(mdl, inst);
  }
  std::printf("round-trip agreement on 20 random instances: %s\n",
              all_agree ? "yes" : "NO");

  // --- Thm 5: exact decision for a CQ over a recursive Datalog view.
  auto vocab2 = MakeVocabulary();
  CQ q2 = *ParseCq("Q() :- R(x,y), R(y,z).", vocab2, &error);
  auto def = ParseQuery(
      "W(x) :- R(x,y).\nW(x) :- R(x,y), W(y).", "W", vocab2, &diags);
  ViewSet views(vocab2);
  views.AddView("VW", *def);
  Thm5Result result = CheckCqOverDatalogViews(q2, views);
  std::printf(
      "Thm 5 decision for the 2-hop CQ over the 'has-chain' view: %s "
      "(%zu state pairs explored)\n",
      result.determined ? "determined" : "NOT determined",
      result.pairs_explored);
  if (result.counterexample) {
    std::printf("counterexample instance (query fails here): %s\n",
                result.counterexample->Decode(vocab2).DebugString().c_str());
  }
  return all_agree ? 0 : 1;
}
