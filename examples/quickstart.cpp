// Quickstart: define a Datalog query and views, test monotonic
// determinacy, build a rewriting and evaluate it over the views.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "core/mondet_check.h"
#include "datalog/eval.h"
#include "datalog/parser.h"
#include "views/inverse_rules.h"

using namespace mondet;

int main() {
  auto vocab = MakeVocabulary();

  // A recursive query: is some element connected to a U-marked element
  // through R-edges?
  std::string error;
  std::vector<Diagnostic> diags;
  auto query = ParseQuery(R"(
    P(x) :- U(x).
    P(x) :- R(x,y), P(y).
    Goal() :- P(x).
  )",
                          "Goal", vocab, &diags);
  if (!query) {
    std::printf("parse error: %s\n", error.c_str());
    return 1;
  }

  // Views: the R-edges and the U-marks, exposed verbatim.
  ViewSet views(vocab);
  views.AddAtomicView("VR", *vocab->FindPredicate("R"));
  views.AddAtomicView("VU", *vocab->FindPredicate("U"));

  // 1. Is the query monotonically determined over the views?
  //    (Lemma 5 canonical tests; recursive queries get a bounded verdict.)
  MonDetResult result = CheckMonotonicDeterminacy(*query, views);
  std::printf("monotonic determinacy: %s (%zu tests)\n",
              result.verdict == Verdict::kNotDetermined ? "REFUTED"
              : result.verdict == Verdict::kDetermined  ? "PROVED"
                                                        : "no counterexample",
              result.tests_run);

  // 2. Build the Datalog rewriting over the view schema via the
  //    inverse-rules algorithm (Duschka–Genesereth–Levy).
  DatalogQuery rewriting = InverseRulesRewriting(*query, views);
  std::printf("rewriting has %zu rules over the view schema\n",
              rewriting.program.rules().size());

  // 3. Evaluate both sides on an instance: a 4-chain ending in U.
  Instance inst(vocab);
  PredId r = *vocab->FindPredicate("R");
  PredId u = *vocab->FindPredicate("U");
  ElemId a = inst.AddElement("a");
  ElemId b = inst.AddElement("b");
  ElemId c = inst.AddElement("c");
  inst.AddFact(r, {a, b});
  inst.AddFact(r, {b, c});
  inst.AddFact(u, {c});

  bool direct = DatalogHoldsOn(*query, inst);
  bool via_views = DatalogHoldsOn(rewriting, views.Image(inst));
  std::printf("Q(I) = %s, rewriting(V(I)) = %s\n", direct ? "true" : "false",
              via_views ? "true" : "false");
  return direct == via_views ? 0 : 1;
}
