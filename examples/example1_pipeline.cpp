// The paper's Example 1, end to end: the Datalog query Q over
// {T, B, U1, U2}, the two view families V0–V2 and V3–V4, and both
// rewritings (the Datalog one and the CQ one), machine-verified on a
// family of diamond-chain instances.

#include <cstdio>

#include "core/mondet_check.h"
#include "datalog/eval.h"
#include "datalog/parser.h"
#include "views/inverse_rules.h"

using namespace mondet;

namespace {

Instance MakeChain(const VocabularyPtr& vocab, int diamonds) {
  Instance inst(vocab);
  PredId t = *vocab->FindPredicate("T");
  PredId b = *vocab->FindPredicate("B");
  PredId u1 = *vocab->FindPredicate("U1");
  PredId u2 = *vocab->FindPredicate("U2");
  ElemId prev = inst.AddElement("x0");
  inst.AddFact(u1, {prev});
  for (int i = 0; i < diamonds; ++i) {
    ElemId y = inst.AddElement();
    ElemId z = inst.AddElement();
    ElemId next = inst.AddElement();
    inst.AddFact(t, {prev, y, z});
    inst.AddFact(b, {z, next});
    inst.AddFact(b, {y, next});
    prev = next;
  }
  inst.AddFact(u2, {prev});
  return inst;
}

}  // namespace

int main() {
  auto vocab = MakeVocabulary();
  std::string error;
  std::vector<Diagnostic> diags;
  auto query = ParseQuery(R"(
    Q() :- U1(x), W1(x).
    W1(x) :- T(x,y,z), B(z,w), B(y,w), W1(w).
    W1(x) :- U2(x).
  )",
                          "Q", vocab, &diags);
  if (!query) return 1;

  // --- View family 1: V0, V1, V2 (CQ views). -----------------------------
  ViewSet views1(vocab);
  views1.AddCqView(
      "V0", *ParseCq("V0(x,w) :- T(x,y,z), B(z,w), B(y,w).", vocab, &error));
  views1.AddCqView("V1", *ParseCq("V1(x) :- U1(x).", vocab, &error));
  views1.AddCqView("V2", *ParseCq("V2(x) :- U2(x).", vocab, &error));

  MonDetResult mondet = CheckMonotonicDeterminacy(*query, views1);
  std::printf("[V0-V2] monotonic determinacy: %s\n",
              mondet.verdict == Verdict::kNotDetermined ? "REFUTED"
                                                        : "no counterexample");

  DatalogQuery rewriting1 = InverseRulesRewriting(*query, views1);
  std::printf("[V0-V2] inverse-rules rewriting: %zu rules\n",
              rewriting1.program.rules().size());
  for (int n = 1; n <= 5; ++n) {
    Instance chain = MakeChain(vocab, n);
    bool direct = DatalogHoldsOn(*query, chain);
    bool rewritten = DatalogHoldsOn(rewriting1, views1.Image(chain));
    std::printf("  chain(%d): Q=%d rewriting=%d %s\n", n, direct, rewritten,
                direct == rewritten ? "AGREE" : "MISMATCH");
  }

  // --- View family 2: V3 (CQ) and V4 (recursive Datalog view). -----------
  ViewSet views2(vocab);
  PredId v3 =
      views2.AddCqView("V3", *ParseCq("V3(y,z) :- U1(x), T(x,y,z).", vocab,
                                      &error));
  auto v4_def = ParseQuery(R"(
    GoalV4(y,z) :- T(x,y,z), B(z,w), B(y,w), T(w,q,r), GoalV4(q,r).
    GoalV4(y,z) :- B(y,w), B(z,w), U2(w).
  )",
                           "GoalV4", vocab, &diags);
  if (!v4_def) return 1;
  PredId v4 = views2.AddView("V4", *v4_def);

  // The paper's CQ rewriting: ∃yz V3(y,z) ∧ V4(y,z).
  CQ cq_rewriting(vocab);
  VarId y = cq_rewriting.AddVar("y");
  VarId z = cq_rewriting.AddVar("z");
  cq_rewriting.AddAtom(v3, {y, z});
  cq_rewriting.AddAtom(v4, {y, z});
  cq_rewriting.SetFreeVars({});
  std::printf("[V3-V4] CQ rewriting: exists y,z. V3(y,z) AND V4(y,z)\n");
  for (int n = 1; n <= 5; ++n) {
    Instance chain = MakeChain(vocab, n);
    bool direct = DatalogHoldsOn(*query, chain);
    bool rewritten = cq_rewriting.HoldsOn(views2.Image(chain));
    std::printf("  chain(%d): Q=%d cq-rewriting=%d %s\n", n, direct,
                rewritten, direct == rewritten ? "AGREE" : "MISMATCH");
  }
  return 0;
}
