// A command-line driver: reads a task file describing a query, views and
// (optionally) an instance, then reports fragment classification, the
// monotonic-determinacy verdict, a rewriting when one is constructible,
// and evaluation results.
//
// Task file format (sections in any order, one `.query`, any number of
// `.view`s, optional `.instance`):
//
//   .query Goal
//   P(x) :- U(x).
//   P(x) :- R(x,y), P(y).
//   Goal() :- P(x).
//
//   .view VR
//   VR(x,y) :- R(x,y).
//
//   .instance
//   R(a,b). R(b,c). U(c).
//
// Usage: mondet_cli <task-file>     (defaults to a built-in demo task)

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/mondet_check.h"
#include "datalog/eval.h"
#include "datalog/fragment.h"
#include "datalog/parser.h"
#include "views/inverse_rules.h"

using namespace mondet;

namespace {

constexpr char kDemoTask[] = R"(
.query Goal
P(x) :- U(x).
P(x) :- R(x,y), P(y).
Goal() :- P(x).

.view VR
VR(x,y) :- R(x,y).

.view VU
VU(x) :- U(x).

.instance
R(a,b). R(b,c). U(c).
)";

struct Section {
  std::string kind;  // "query", "view", "instance"
  std::string arg;   // goal / view predicate name
  std::string body;
};

std::vector<Section> SplitSections(const std::string& text) {
  std::vector<Section> sections;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind(".", 0) == 0) {
      std::istringstream header(line.substr(1));
      Section s;
      header >> s.kind >> s.arg;
      sections.push_back(s);
    } else if (!sections.empty()) {
      sections.back().body += line + "\n";
    }
  }
  return sections;
}

}  // namespace

int main(int argc, char** argv) {
  std::string text = kDemoTask;
  if (argc > 1) {
    std::ifstream file(argv[1]);
    if (!file) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 1;
    }
    std::stringstream buffer;
    buffer << file.rdbuf();
    text = buffer.str();
  } else {
    std::printf("(no task file given; running the built-in demo)\n\n");
  }

  auto vocab = MakeVocabulary();
  std::optional<DatalogQuery> query;
  ViewSet views(vocab);
  std::optional<Instance> instance;
  std::string error;

  for (const Section& s : SplitSections(text)) {
    if (s.kind == "query") {
      query = ParseQuery(s.body, s.arg, vocab, &error);
      if (!query) {
        std::fprintf(stderr, "query parse error: %s\n", error.c_str());
        return 1;
      }
    } else if (s.kind == "view") {
      ParseResult result = ParseProgram(s.body, vocab);
      if (!result.ok()) {
        std::fprintf(stderr, "view parse error: %s\n", result.error.c_str());
        return 1;
      }
      auto goal = vocab->FindPredicate(s.arg);
      if (!goal || !result.program->IsIdb(*goal)) {
        std::fprintf(stderr, "view %s has no rules\n", s.arg.c_str());
        return 1;
      }
      views.AddView(s.arg, DatalogQuery(std::move(*result.program), *goal));
    } else if (s.kind == "instance") {
      instance = ParseInstance(s.body, vocab, &error);
      if (!instance) {
        std::fprintf(stderr, "instance parse error: %s\n", error.c_str());
        return 1;
      }
    } else {
      std::fprintf(stderr, "unknown section .%s\n", s.kind.c_str());
      return 1;
    }
  }
  if (!query) {
    std::fprintf(stderr, "task has no .query section\n");
    return 1;
  }

  // --- Fragment report. ----------------------------------------------------
  std::printf("query: goal %s, %zu rules; monadic=%s frontier-guarded=%s "
              "recursive=%s\n",
              vocab->name(query->goal).c_str(),
              query->program.rules().size(),
              IsMonadic(query->program) ? "yes" : "no",
              IsFrontierGuarded(query->program) ? "yes" : "no",
              IsNonRecursive(query->program) ? "no" : "yes");
  std::printf("views: %zu (all CQ: %s)\n", views.views().size(),
              views.AllCq() ? "yes" : "no");

  // --- Monotonic determinacy. ----------------------------------------------
  MonDetResult verdict = CheckMonotonicDeterminacy(*query, views);
  const char* verdict_name =
      verdict.verdict == Verdict::kDetermined       ? "DETERMINED (exact)"
      : verdict.verdict == Verdict::kNotDetermined  ? "NOT DETERMINED"
                                                    : "no counterexample "
                                                      "within bounds";
  std::printf("monotonic determinacy: %s (%zu canonical tests)\n",
              verdict_name, verdict.tests_run);
  if (verdict.failure) {
    std::printf("  failing test D': %s\n",
                verdict.failure->dprime.DebugString().c_str());
  }

  // --- Rewriting (CQ views only). -------------------------------------------
  if (views.AllCq() && verdict.verdict != Verdict::kNotDetermined) {
    DatalogQuery rewriting = InverseRulesRewriting(*query, views);
    std::printf("inverse-rules rewriting over the view schema (%zu rules):\n%s",
                rewriting.program.rules().size(),
                rewriting.program.DebugString().c_str());
    if (instance) {
      Instance image = views.Image(*instance);
      std::printf("on the instance: Q = %s, rewriting(V(I)) = %s\n",
                  DatalogHoldsOn(*query, *instance) ? "true" : "false",
                  DatalogHoldsOn(rewriting, image) ? "true" : "false");
    }
  } else if (instance) {
    std::printf("on the instance: Q = %s\n",
                DatalogHoldsOn(*query, *instance) ? "true" : "false");
  }
  return 0;
}
