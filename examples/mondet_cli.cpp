// A command-line driver: reads a task file describing a query, views and
// (optionally) an instance, then reports static analysis findings,
// fragment classification, the monotonic-determinacy verdict, a rewriting
// when one is constructible, and evaluation results.
//
// Bad inputs produce diagnostics with source positions and a nonzero exit
// code — never a MONDET_CHECK abort. Every section is parsed even after a
// failure so one run reports everything wrong with the task file.
//
// Task file format (sections in any order, one `.query`, any number of
// `.view`s, optional `.instance`, optional `.stream` — the stream
// requires an instance):
//
//   .query Goal
//   P(x) :- U(x).
//   P(x) :- R(x,y), P(y).
//   Goal() :- P(x).
//
//   .view VR
//   VR(x,y) :- R(x,y).
//
//   .instance
//   R(a,b). R(b,c). U(c).
//
//   .stream
//   +R(c,d). +U(d).
//   -R(a,b).
//
// Each non-empty `.stream` line is one batch of raw inserts (+) and
// deletes (-) against the instance; batches are applied in order to a
// MaintainedImage (incremental view maintenance: counting + DRed), the
// per-batch net view-image change is reported, and at the end the
// maintained image is cross-checked against a from-scratch recompute and
// the monotonic-determinacy verdict is re-checked.
//
// Usage: mondet_cli <task-file>     (defaults to a built-in demo task)

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/analyzer.h"
#include "base/stats.h"
#include "core/mondet_check.h"
#include "datalog/eval.h"
#include "datalog/eval_plan.h"
#include "datalog/fragment.h"
#include "datalog/parser.h"
#include "views/inverse_rules.h"
#include "views/maintained_image.h"

using namespace mondet;

namespace {

constexpr char kDemoTask[] = R"(
.query Goal
P(x) :- U(x).
P(x) :- R(x,y), P(y).
Goal() :- P(x).

.view VR
VR(x,y) :- R(x,y).

.view VU
VU(x) :- U(x).

.instance
R(a,b). R(b,c). U(c).
)";

struct Section {
  std::string kind;  // "query", "view", "instance"
  std::string arg;   // goal / view predicate name
  std::string body;
};

std::vector<Section> SplitSections(const std::string& text) {
  std::vector<Section> sections;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind(".", 0) == 0) {
      std::istringstream header(line.substr(1));
      Section s;
      header >> s.kind >> s.arg;
      sections.push_back(s);
    } else if (!sections.empty()) {
      sections.back().body += line + "\n";
    }
  }
  return sections;
}

/// Prints the diagnostics of one section under a heading; returns true
/// when any of them is an error.
bool Report(const std::string& where, const std::vector<Diagnostic>& diags) {
  if (!diags.empty()) {
    std::fprintf(stderr, "%s:\n%s", where.c_str(),
                 FormatDiagnostics(diags).c_str());
  }
  return HasErrors(diags);
}

}  // namespace

int main(int argc, char** argv) {
  std::string text = kDemoTask;
  if (argc > 1) {
    std::ifstream file(argv[1]);
    if (!file) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 1;
    }
    std::stringstream buffer;
    buffer << file.rdbuf();
    text = buffer.str();
  } else {
    std::printf("(no task file given; running the built-in demo)\n\n");
  }

  auto vocab = MakeVocabulary();
  std::optional<DatalogQuery> query;
  ViewSet views(vocab);
  std::optional<Instance> instance;
  std::optional<std::string> stream_body;
  bool failed = false;

  for (const Section& s : SplitSections(text)) {
    std::vector<Diagnostic> diags;
    if (s.kind == "query") {
      query = ParseQuery(s.body, s.arg, vocab, &diags);
      failed |= Report(".query " + s.arg, diags);
    } else if (s.kind == "view") {
      ParseResult result = ParseProgram(s.body, vocab);
      if (!result.ok()) {
        failed |= Report(".view " + s.arg, result.diagnostics);
        continue;
      }
      auto goal = vocab->FindPredicate(s.arg);
      if (!goal) {
        diags.push_back(MakeDiagnostic(
            Severity::kError, "goal",
            "view " + s.arg + ": predicate " + s.arg +
                " does not occur in the definition"));
        failed |= Report(".view " + s.arg, diags);
        continue;
      }
      views.TryAddView(s.arg, DatalogQuery(std::move(*result.program), *goal),
                       &diags);
      failed |= Report(".view " + s.arg, diags);
    } else if (s.kind == "instance") {
      instance = ParseInstance(s.body, vocab, &diags);
      failed |= Report(".instance", diags);
    } else if (s.kind == "stream") {
      stream_body = s.body;  // parsed below: it needs the instance
    } else {
      std::fprintf(stderr, "unknown section .%s\n", s.kind.c_str());
      failed = true;
    }
  }
  // The stream references elements of the instance, so it parses after
  // every section is in (sections may appear in any order).
  std::optional<StreamParse> stream;
  if (stream_body) {
    if (!instance) {
      std::fprintf(stderr, ".stream requires an .instance section\n");
      failed = true;
    } else {
      std::vector<Diagnostic> diags;
      stream = ParseStream(*stream_body, vocab, *instance, &diags);
      failed |= Report(".stream", diags);
    }
  }
  if (!query) {
    if (!failed) std::fprintf(stderr, "task has no .query section\n");
    return 1;
  }
  if (failed) return 1;

  // --- Static analysis. ----------------------------------------------------
  // One compiled program serves the analyzer's plan lints, the plan
  // report and evaluation below, so what the lints judge is exactly what
  // runs. Binding instance statistics makes the plan report (and any
  // cross-product lint) carry estimated row counts.
  CompiledProgram compiled(query->program);
  if (instance) compiled.BindStats(Stats::Collect(*instance));
  AnalysisOptions aopts;
  aopts.goal = query->goal;
  aopts.fragment_notes = false;
  aopts.compiled = &compiled;
  AnalysisResult analysis = AnalyzeProgram(query->program, aopts);
  std::vector<Diagnostic> findings;
  for (const Diagnostic& d : analysis.diagnostics) {
    if (d.severity != Severity::kNote) findings.push_back(d);
  }
  if (Report("analysis", findings)) return 1;

  // --- Fragment report. ----------------------------------------------------
  std::printf("query: goal %s, %zu rules; monadic=%s frontier-guarded=%s "
              "recursive=%s\n",
              vocab->name(query->goal).c_str(),
              query->program.rules().size(),
              analysis.fragments.monadic ? "yes" : "no",
              analysis.fragments.frontier_guarded ? "yes" : "no",
              analysis.fragments.non_recursive ? "no" : "yes");
  std::printf("views: %zu (all CQ: %s)\n", views.views().size(),
              views.AllCq() ? "yes" : "no");

  // --- Join plans. ---------------------------------------------------------
  std::printf("join plans%s:\n%s",
              instance ? " (est rows from instance stats)" : "",
              compiled.DescribePlansText().c_str());

  // --- Monotonic determinacy. ----------------------------------------------
  MonDetResult verdict = CheckMonotonicDeterminacy(*query, views);
  const char* verdict_name =
      verdict.verdict == Verdict::kDetermined       ? "DETERMINED (exact)"
      : verdict.verdict == Verdict::kNotDetermined  ? "NOT DETERMINED"
      : verdict.verdict == Verdict::kInvalidInput   ? "INVALID INPUT"
                                                    : "no counterexample "
                                                      "within bounds";
  std::printf("monotonic determinacy: %s (%zu canonical tests)\n",
              verdict_name, verdict.tests_run);
  if (verdict.failure) {
    std::printf("  failing test D': %s\n",
                verdict.failure->dprime.DebugString().c_str());
  }

  // --- Rewriting (CQ views only). -------------------------------------------
  std::optional<DatalogQuery> rewriting;
  if (views.AllCq() && verdict.verdict != Verdict::kNotDetermined) {
    rewriting = InverseRulesRewriting(*query, views);
    std::printf("inverse-rules rewriting over the view schema (%zu rules):\n%s",
                rewriting->program.rules().size(),
                rewriting->program.DebugString().c_str());
  }

  // --- Evaluation, with the same compiled program the lints judged. ---------
  if (instance) {
    EvalStats estats;
    Instance fixpoint = compiled.Eval(*instance, &estats);
    bool holds = fixpoint.NumRows(query->goal) > 0;
    std::printf("eval: %s\n", estats.Summary().c_str());
    if (rewriting) {
      Instance image = views.Image(*instance);
      std::printf("on the instance: Q = %s, rewriting(V(I)) = %s\n",
                  holds ? "true" : "false",
                  DatalogHoldsOn(*rewriting, image) ? "true" : "false");
    } else {
      std::printf("on the instance: Q = %s\n", holds ? "true" : "false");
    }
  }

  // --- Maintained view image under the stream. ------------------------------
  if (stream) {
    MaintainedImage maintained(views, *instance);
    for (const std::string& name : stream->new_elements) {
      maintained.AddElement(name);
    }
    EvalStats mstats;
    for (const StreamBatch& batch : stream->batches) {
      ImageDelta d = maintained.ApplyDelta(batch.inserts, batch.deletes,
                                           &mstats);
      std::printf(
          "stream line %d: +%zu/-%zu base facts -> image +%zu/-%zu"
          " (overdeleted %zu, rederived %zu)\n",
          batch.line, batch.inserts.size(), batch.deletes.size(),
          d.inserts.size(), d.deletes.size(), d.overdeleted, d.rederived);
    }
    std::printf("stream maintenance: %s\n", mstats.Summary().c_str());

    // Cross-check: the maintained image must equal a from-scratch
    // recompute of the mutated base (the maintenance engine's contract).
    Instance fresh = maintained.FreshImage();
    std::vector<Fact> got = maintained.image().AllFacts();
    std::vector<Fact> want = fresh.AllFacts();
    std::sort(got.begin(), got.end());
    std::sort(want.begin(), want.end());
    bool image_ok = got == want;
    std::printf("maintained image: %zu facts, matches recompute: %s\n",
                maintained.image().num_facts(), image_ok ? "yes" : "NO");
    if (!image_ok) return 1;

    MonDetResult recheck = maintained.RecheckVerdict(*query);
    std::printf("verdict over the maintained views: %s\n",
                recheck.verdict == verdict.verdict ? "unchanged" : "CHANGED");
  }
  return 0;
}
