// The Thm 6 undecidability gadget in action: for a tiling problem TP, the
// builder produces an MDL query Q_TP and UCQ views V_TP such that Q_TP is
// monotonically determined by V_TP iff TP has no solution (Prop. 10).
//
// We run both directions on concrete tiling problems and print the failing
// canonical test for the solvable one.

#include <cstdio>

#include "core/mondet_check.h"
#include "datalog/eval.h"
#include "reductions/thm6.h"

using namespace mondet;

namespace {

void RunCase(const char* name, const TilingProblem& tp) {
  Thm6Gadget gadget = BuildThm6(tp);
  std::printf("== %s: %d tiles, solvable(<=3x3)=%s\n", name, tp.num_tiles,
              tp.HasSolutionUpTo(3, 3) ? "yes" : "no");
  std::printf("   query: %zu MDL rules; views: %zu\n",
              gadget.query.program.rules().size(),
              gadget.views.views().size());

  MonDetOptions options;
  options.query_depth = 5;
  options.view_depth = 3;
  options.max_query_expansions = 60;
  options.max_tests_per_expansion = 5000;
  MonDetResult result =
      CheckMonotonicDeterminacy(gadget.query, gadget.views, options);
  switch (result.verdict) {
    case Verdict::kNotDetermined:
      std::printf("   NOT monotonically determined (%zu tests).\n",
                  result.tests_run);
      std::printf("   failing test D' (a correctly tiled grid):\n   %s\n",
                  result.failure->dprime.DebugString().c_str());
      break;
    case Verdict::kDetermined:
      std::printf("   monotonically determined (exact).\n");
      break;
    case Verdict::kUnknownBounded:
      std::printf(
          "   no failing test within bounds (%zu tests) — consistent with "
          "monotonic determinacy.\n",
          result.tests_run);
      break;
    case Verdict::kInvalidInput:
      std::printf("   invalid input:\n%s",
                  FormatDiagnostics(result.diagnostics).c_str());
      break;
  }
}

}  // namespace

int main() {
  RunCase("solvable tiling problem", SolvableTilingProblem());
  RunCase("unsolvable tiling problem", UnsolvableTilingProblem());
  return 0;
}
