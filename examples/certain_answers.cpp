// Certain answers via the inverse-rules algorithm: given only a view
// image J, compute the answers of Q that hold in EVERY instance whose
// view image contains J (appendix Thm 10). When Q is monotonically
// determined this is a rewriting; in general it is a sound lower bound
// and a PTime separator for CQ views.

#include <cstdio>

#include "datalog/eval.h"
#include "datalog/parser.h"
#include "views/inverse_rules.h"

using namespace mondet;

int main() {
  auto vocab = MakeVocabulary();
  std::string error;
  std::vector<Diagnostic> diags;

  // Query: elements with an R-path of length two.
  auto query = ParseQuery("Q(x) :- R(x,y), R(y,z).", "Q", vocab, &diags);
  if (!query) return 1;

  // Single view: V2 = pairs at R-distance two. (Q is monotonically
  // determined: Q(x) = ∃z V2(x,z).)
  ViewSet views(vocab);
  views.AddCqView("V2", *ParseCq("V2(x,z) :- R(x,y), R(y,z).", vocab, &error));
  PredId v2 = views.views()[0].pred;

  // A view-schema instance J that was never computed from a base
  // instance: V2(a,b), V2(b,c).
  Instance j(vocab);
  ElemId a = j.AddElement("a");
  ElemId b = j.AddElement("b");
  ElemId c = j.AddElement("c");
  j.AddFact(v2, {a, b});
  j.AddFact(v2, {b, c});

  auto certain = CertainAnswers(*query, views, j);
  std::printf("certain answers of Q over J = {V2(a,b), V2(b,c)}:\n");
  for (const auto& tuple : certain) {
    std::printf("  Q(%s)\n", j.element_name(tuple[0]).c_str());
  }
  // a and b have certain 2-paths; c does not (its V2-successors are
  // unknown).
  std::printf("expected: Q(a), Q(b)\n");

  // Contrast with a projection view that loses the join: nothing is
  // certain anymore.
  auto vocab2 = MakeVocabulary();
  auto query2 = ParseQuery("Q(x) :- R(x,y), R(y,z).", "Q", vocab2, &diags);
  ViewSet views2(vocab2);
  views2.AddCqView("V1", *ParseCq("V1(x) :- R(x,y).", vocab2, &error));
  Instance j2(vocab2);
  ElemId d = j2.AddElement("d");
  j2.AddFact(views2.views()[0].pred, {d});
  auto certain2 = CertainAnswers(*query2, views2, j2);
  std::printf("with the lossy view V1: %zu certain answers (expected 0)\n",
              certain2.size());
  return 0;
}
