#include <gtest/gtest.h>

#include "base/homomorphism.h"
#include "core/mondet_check.h"
#include "datalog/eval.h"
#include "datalog/fragment.h"
#include "games/unravel.h"
#include "reductions/thm7.h"
#include "views/inverse_rules.h"

namespace mondet {
namespace {

TEST(Thm7, QueryShape) {
  Thm7Gadget gadget = BuildThm7();
  EXPECT_TRUE(IsMonadic(gadget.query.program));
  EXPECT_TRUE(gadget.views.AllCq());
}

TEST(Thm7, QueryHoldsOnDiamondChains) {
  Thm7Gadget gadget = BuildThm7();
  for (int n = 1; n <= 4; ++n) {
    EXPECT_TRUE(DatalogHoldsOn(gadget.query, gadget.DiamondChain(n))) << n;
    EXPECT_FALSE(
        DatalogHoldsOn(gadget.query, gadget.DiamondChain(n, false)))
        << n;
  }
}

TEST(Thm7, ViewImageShape) {
  // Figure 3(b): the image of a k-diamond chain is S, R^{k-1}, T.
  Thm7Gadget gadget = BuildThm7();
  Instance chain = gadget.DiamondChain(3);
  Instance image = gadget.views.Image(chain);
  EXPECT_EQ(image.NumRows(gadget.s_view), 1u);
  EXPECT_EQ(image.NumRows(gadget.r_view), 2u);
  EXPECT_EQ(image.NumRows(gadget.t_view), 1u);
}

TEST(Thm7, DatalogRewritingViaInverseRulesIsExact) {
  // The paper: Q IS Datalog-rewritable over these views. The inverse-rules
  // rewriting agrees with Q on diamond chains and their breakages.
  Thm7Gadget gadget = BuildThm7();
  DatalogQuery rewriting =
      InverseRulesRewriting(gadget.query, gadget.views);
  for (int n = 1; n <= 4; ++n) {
    Instance chain = gadget.DiamondChain(n);
    EXPECT_TRUE(DatalogHoldsOn(rewriting, gadget.views.Image(chain))) << n;
    Instance unmarked = gadget.DiamondChain(n, false);
    EXPECT_FALSE(DatalogHoldsOn(rewriting, gadget.views.Image(unmarked)))
        << n;
  }
}

TEST(Thm7, MonotonicallyDeterminedUpToBounds) {
  Thm7Gadget gadget = BuildThm7();
  MonDetOptions options;
  options.query_depth = 4;
  options.view_depth = 2;
  options.max_query_expansions = 40;
  MonDetResult result =
      CheckMonotonicDeterminacy(gadget.query, gadget.views, options);
  EXPECT_NE(result.verdict, Verdict::kNotDetermined);
  EXPECT_GT(result.tests_run, 0u);
}

TEST(Thm7, RRowNeedsLongChains) {
  // The Figure 4 pattern of n R-rectangles maps into the image of an
  // m-diamond chain iff m >= n + 1.
  Thm7Gadget gadget = BuildThm7();
  Instance row3 = gadget.RRowPattern(3);
  Instance image4 = gadget.views.Image(gadget.DiamondChain(4));  // R^3
  Instance image3 = gadget.views.Image(gadget.DiamondChain(3));  // R^2
  EXPECT_TRUE(HasHomomorphism(row3, image4));
  EXPECT_FALSE(HasHomomorphism(row3, image3));
}

TEST(Thm7, UnravelledImageBreaksLongRows) {
  // The proof of Thm 7: in a (1,k)-unravelling of the view image, the
  // long R-row pattern has no homomorphic image, while short rows do.
  Thm7Gadget gadget = BuildThm7();
  Instance image = gadget.views.Image(gadget.DiamondChain(4));
  UnravelOptions options;
  options.k = 4;  // R is 4-ary: bags must fit one R-fact
  options.depth = 2;
  options.one_overlap = true;
  options.max_nodes = 100000;
  Unravelling unravelled = BoundedUnravelling(image, options);
  ASSERT_FALSE(unravelled.truncated);
  // Single R-facts still map in...
  EXPECT_TRUE(HasHomomorphism(gadget.RRowPattern(1), unravelled.inst));
  // ...but two chained R-rectangles share two elements, which no pair of
  // (1,k)-bags can reproduce.
  EXPECT_FALSE(HasHomomorphism(gadget.RRowPattern(2), unravelled.inst));
}

}  // namespace
}  // namespace mondet
