// Differential test oracle for the compiled semi-naive evaluator: on
// randomized Datalog programs and instances, the naive full-rescan
// reference (tests/naive_eval.h), the single-threaded semi-naive
// evaluator, and the parallel semi-naive evaluator must all produce the
// same fixpoint. The two semi-naive runs must moreover produce the same
// fact *sequence* (determinism across thread counts).

#include <gtest/gtest.h>

#include <limits>
#include <random>
#include <vector>

#include "datalog/eval.h"
#include "datalog/eval_plan.h"
#include "datalog/program.h"
#include "tests/naive_eval.h"
#include "tests/test_util.h"

namespace mondet {
namespace {

struct RandomSchema {
  VocabularyPtr vocab;
  // EDB predicates (arities 1, 2) and IDB predicates (arities 1, 2, 0).
  PredId e1, e2, i1, i2, g0;
};

RandomSchema MakeSchema() {
  RandomSchema s;
  s.vocab = MakeVocabulary();
  s.e1 = s.vocab->AddPredicate("E1", 1);
  s.e2 = s.vocab->AddPredicate("E2", 2);
  s.i1 = s.vocab->AddPredicate("I1", 1);
  s.i2 = s.vocab->AddPredicate("I2", 2);
  s.g0 = s.vocab->AddPredicate("G0", 0);
  return s;
}

/// A random safe rule: 1–3 body atoms over {E1, E2, I1, I2} with variables
/// drawn from a small pool, head over {I1, I2, G0} with arguments drawn
/// from the variables actually used in the body. Variable ids are
/// compacted so they are dense per rule (required by Rule::num_vars).
Rule RandomRule(const RandomSchema& s, std::mt19937& rng) {
  std::uniform_int_distribution<int> nvars_dist(2, 4);
  std::uniform_int_distribution<int> natoms_dist(1, 3);
  const int nvars = nvars_dist(rng);
  const int natoms = natoms_dist(rng);
  std::uniform_int_distribution<int> var_dist(0, nvars - 1);
  const PredId body_preds[] = {s.e1, s.e2, s.i1, s.i2};
  std::uniform_int_distribution<size_t> body_pred_dist(0, 3);

  constexpr VarId kUnmapped = std::numeric_limits<VarId>::max();
  Rule rule;
  std::vector<VarId> remap(nvars, kUnmapped);
  auto used = [&](int raw) {
    if (remap[raw] == kUnmapped) {
      remap[raw] = static_cast<VarId>(rule.var_names.size());
      rule.var_names.push_back("v" + std::to_string(raw));
    }
    return remap[raw];
  };
  for (int a = 0; a < natoms; ++a) {
    PredId p = body_preds[body_pred_dist(rng)];
    std::vector<VarId> args;
    for (int j = 0; j < s.vocab->arity(p); ++j) args.push_back(used(var_dist(rng)));
    rule.body.push_back(QAtom(p, args));
  }
  const PredId head_preds[] = {s.i1, s.i2, s.g0};
  std::uniform_int_distribution<size_t> head_pred_dist(0, 2);
  PredId hp = head_preds[head_pred_dist(rng)];
  std::uniform_int_distribution<size_t> body_var_dist(0, rule.var_names.size() - 1);
  std::vector<VarId> head_args;
  for (int j = 0; j < s.vocab->arity(hp); ++j) {
    head_args.push_back(static_cast<VarId>(body_var_dist(rng)));
  }
  rule.head = QAtom(hp, head_args);
  return rule;
}

Program RandomProgram(const RandomSchema& s, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<int> nrules_dist(2, 6);
  Program program(s.vocab);
  const int nrules = nrules_dist(rng);
  for (int i = 0; i < nrules; ++i) program.AddRule(RandomRule(s, rng));
  return program;
}

class EvalDifferential : public ::testing::TestWithParam<unsigned> {};

TEST_P(EvalDifferential, NaiveSeminaiveParallelAgree) {
  unsigned seed = GetParam();
  RandomSchema s = MakeSchema();
  Program program = RandomProgram(s, 7000 + seed);
  // Half the cases include input IDB facts (FPEval is defined on
  // instances that may already mention IDB predicates, cf. Prop. 4).
  std::vector<PredId> inst_preds = {s.e1, s.e2};
  if (seed % 2 == 1) {
    inst_preds.push_back(s.i1);
    inst_preds.push_back(s.i2);
  }
  Instance inst = RandomInstance(s.vocab, inst_preds, 5, 10, 9000 + seed);

  Instance naive = NaiveFpEval(program, inst);
  EvalStats stats1, stats4;
  Instance semi1 = FpEval(program, inst, &stats1, EvalOptions{1});
  Instance semi4 = FpEval(program, inst, &stats4, EvalOptions{4});

  // Same fact set as the oracle.
  ASSERT_EQ(naive.num_facts(), semi1.num_facts())
      << "seed " << seed << "\n" << program.DebugString();
  for (const Fact& f : naive.facts()) {
    EXPECT_TRUE(semi1.HasFact(f)) << "seed " << seed;
  }

  // Determinism: 1-thread and 4-thread runs produce the exact same fact
  // sequence, not just the same set.
  ASSERT_EQ(semi1.num_facts(), semi4.num_facts()) << "seed " << seed;
  for (size_t i = 0; i < semi1.num_facts(); ++i) {
    EXPECT_EQ(semi1.facts()[i], semi4.facts()[i])
        << "seed " << seed << " fact " << i;
  }
  EXPECT_EQ(stats1.facts_derived, stats4.facts_derived) << "seed " << seed;
  EXPECT_EQ(stats1.iterations, stats4.iterations) << "seed " << seed;

  // Dataflow pruning (on by default above) must be invisible: with it
  // off, both thread counts still produce the exact same fact sequence.
  EvalOptions off1{1}, off4{4};
  off1.dataflow_prune = false;
  off4.dataflow_prune = false;
  EvalStats stats_off1;
  Instance noprune1 = FpEval(program, inst, &stats_off1, off1);
  Instance noprune4 = FpEval(program, inst, nullptr, off4);
  EXPECT_EQ(stats_off1.rules_pruned, 0u);
  ASSERT_EQ(semi1.num_facts(), noprune1.num_facts()) << "seed " << seed;
  ASSERT_EQ(semi1.num_facts(), noprune4.num_facts()) << "seed " << seed;
  for (size_t i = 0; i < semi1.num_facts(); ++i) {
    EXPECT_EQ(semi1.facts()[i], noprune1.facts()[i])
        << "seed " << seed << " fact " << i;
    EXPECT_EQ(semi1.facts()[i], noprune4.facts()[i])
        << "seed " << seed << " fact " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EvalDifferential, ::testing::Range(0u, 220u));

}  // namespace
}  // namespace mondet
