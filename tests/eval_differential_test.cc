// Differential test for the compiled semi-naive evaluator: on randomized
// Datalog programs and instances, the naive full-rescan reference
// (testing/reference.h), the single-threaded semi-naive evaluator, and
// the parallel semi-naive evaluator must all produce the same fixpoint,
// and the two semi-naive runs the same fact *sequence* (determinism
// across thread counts), with dataflow pruning invisible.
//
// The generator and checker live in the shared randomized-testing
// library (testing/oracle.h, oracle `eval-differential`) so the
// `mondet-fuzz` CLI can drive the same property over open-ended seed
// ranges and shrink any failure to a minimal repro. This suite pins the
// historical seed range; a failure message carries the full generated
// case (testing::Describe), so it can be saved as a `.repro` and
// replayed with `mondet-fuzz --replay`.

#include <gtest/gtest.h>

#include "testing/oracle.h"

namespace mondet {
namespace {

class EvalDifferential : public ::testing::TestWithParam<unsigned> {};

TEST_P(EvalDifferential, NaiveSeminaiveParallelAgree) {
  const testing::Oracle* oracle = testing::FindOracle("eval-differential");
  ASSERT_NE(oracle, nullptr);
  testing::OracleOutcome out = oracle->Check(oracle->Generate(GetParam()));
  EXPECT_TRUE(out.ok) << out.message;
}

INSTANTIATE_TEST_SUITE_P(Seeds, EvalDifferential, ::testing::Range(0u, 220u));

}  // namespace
}  // namespace mondet
