// Soundness test for the abstract-interpretation dataflow analyses
// (analysis/dataflow.h):
//
//   * randomized arm — the concrete fixpoint is contained in the
//     concretization of the abstract emptiness/constant-set fixpoint,
//     rules flagged dead never fire, pruning is bit-identical at 1 and 4
//     threads, and dropping subsumed rules / redundant atoms preserves
//     the fixpoint. The generator and checker live in the shared
//     randomized-testing library (testing/oracle.h, oracle
//     `dataflow-soundness`); `mondet-fuzz` drives the same property over
//     open-ended seed ranges with shrinking.
//   * deterministic arm — hand-built adornment, emptiness and
//     subsumption cases with exact expected analysis output.

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "analysis/dataflow.h"
#include "base/instance.h"
#include "base/symbol_table.h"
#include "datalog/program.h"
#include "testing/oracle.h"

namespace mondet {
namespace {

class DataflowSoundness : public ::testing::TestWithParam<unsigned> {};

TEST_P(DataflowSoundness, AnalysesSoundAndPruningInvisible) {
  const testing::Oracle* oracle = testing::FindOracle("dataflow-soundness");
  ASSERT_NE(oracle, nullptr);
  testing::OracleOutcome out = oracle->Check(oracle->Generate(GetParam()));
  EXPECT_TRUE(out.ok) << out.message;
}

INSTANTIATE_TEST_SUITE_P(Seeds, DataflowSoundness,
                         ::testing::Range(0u, 220u));

// --- Deterministic cases. ---------------------------------------------------

// Transitive closure with a disconnected helper: the goal binds its
// argument, the helper's body atom is reached all-free.
TEST(DataflowAdornment, PropagatesBindingsLeftToRight) {
  VocabularyPtr vocab = MakeVocabulary();
  PredId e = vocab->AddPredicate("E", 2);
  PredId t = vocab->AddPredicate("T", 2);
  PredId a = vocab->AddPredicate("A", 1);
  PredId b = vocab->AddPredicate("B", 1);
  Program program(vocab);
  // T(x,y) :- E(x,y).        T(x,y) :- E(x,z), T(z,y).
  program.AddRule(Rule{QAtom(t, {0, 1}), {QAtom(e, {0, 1})}, {"x", "y"}});
  program.AddRule(Rule{QAtom(t, {0, 1}),
                       {QAtom(e, {0, 2}), QAtom(t, {2, 1})},
                       {"x", "y", "z"}});
  // A(x) :- B(y), T(y,x).    B(x) :- E(x,x).
  program.AddRule(Rule{QAtom(a, {0}), {QAtom(b, {1}), QAtom(t, {1, 0})},
                       {"x", "y"}});
  program.AddRule(Rule{QAtom(b, {0}), {QAtom(e, {0, 0})}, {"x"}});

  AdornmentResult ad = AnalyzeAdornments(program, a);
  EXPECT_TRUE(ad.goal_binds);
  ASSERT_TRUE(ad.calls.count(a));
  EXPECT_EQ(ad.calls.at(a), std::set<std::string>{"b"});
  // B is called before any of its variables is bound.
  ASSERT_TRUE(ad.calls.count(b));
  EXPECT_EQ(ad.calls.at(b), std::set<std::string>{"f"});
  // T is called "bb" from rule 2 (y bound by the B atom, x by the goal);
  // the recursive rule re-calls it "bb" (z bound by E, y by the head),
  // so no weaker pattern ever appears.
  ASSERT_TRUE(ad.calls.count(t));
  EXPECT_EQ(ad.calls.at(t), std::set<std::string>{"bb"});
  // The call sites record the same patterns.
  EXPECT_EQ(ad.atom_calls.at({2, 0}), std::set<std::string>{"f"});
  EXPECT_EQ(ad.atom_calls.at({2, 1}), std::set<std::string>{"bb"});
}

TEST(DataflowAdornment, NullaryGoalDoesNotBind) {
  VocabularyPtr vocab = MakeVocabulary();
  PredId e = vocab->AddPredicate("E", 2);
  PredId g = vocab->AddPredicate("G", 0);
  Program program(vocab);
  program.AddRule(Rule{QAtom(g, {}), {QAtom(e, {0, 1})}, {"x", "y"}});
  AdornmentResult ad = AnalyzeAdornments(program, g);
  EXPECT_FALSE(ad.goal_binds);
  EXPECT_EQ(ad.calls.at(g), std::set<std::string>{""});
}

// Recursion without a base case is provably empty even with no instance.
TEST(DataflowEmptiness, RecursionWithoutBaseCaseIsEmpty) {
  VocabularyPtr vocab = MakeVocabulary();
  PredId e = vocab->AddPredicate("E", 2);
  PredId p = vocab->AddPredicate("P", 1);
  PredId q = vocab->AddPredicate("Q", 1);
  Program program(vocab);
  // P(x) :- E(x,y), P(y).   Q(x) :- P(x).
  program.AddRule(Rule{QAtom(p, {0}), {QAtom(e, {0, 1}), QAtom(p, {1})},
                       {"x", "y"}});
  program.AddRule(Rule{QAtom(q, {0}), {QAtom(p, {0})}, {"x"}});
  EmptinessResult er = AnalyzeEmptiness(program, nullptr);
  EXPECT_TRUE(er.IsEmpty(p));
  EXPECT_TRUE(er.IsEmpty(q));
  EXPECT_EQ(er.empty_idbs, (std::vector<PredId>{p, q}));
  EXPECT_TRUE(er.rule_dead[0]);
  EXPECT_TRUE(er.rule_dead[1]);
  // The EDB is unconstrained without a seed.
  EXPECT_FALSE(er.IsEmpty(e));
}

// A seeded instance restricts EDB positions to small constant sets, and
// the meet over a shared variable can prove a rule dead even though every
// body predicate is nonempty.
TEST(DataflowEmptiness, DisjointConstantSetsKillRule) {
  VocabularyPtr vocab = MakeVocabulary();
  PredId r = vocab->AddPredicate("R", 1);
  PredId t = vocab->AddPredicate("S", 1);
  PredId h = vocab->AddPredicate("H", 1);
  Program program(vocab);
  // H(x) :- R(x), S(x).
  program.AddRule(Rule{QAtom(h, {0}), {QAtom(r, {0}), QAtom(t, {0})},
                       {"x"}});
  Instance inst(vocab);
  ElemId a = inst.AddElement(), b = inst.AddElement();
  inst.AddFact(r, {a});
  inst.AddFact(t, {b});
  EmptinessResult er = AnalyzeEmptiness(program, &inst);
  EXPECT_TRUE(er.rule_dead[0]);
  EXPECT_TRUE(er.IsEmpty(h));
  EXPECT_FALSE(er.IsEmpty(r));
  // Same program over an overlapping seed: live.
  inst.AddFact(t, {a});
  EmptinessResult er2 = AnalyzeEmptiness(program, &inst);
  EXPECT_FALSE(er2.rule_dead[0]);
  EXPECT_FALSE(er2.IsEmpty(h));
}

// Classic subsumption: a rule with an extra body atom is subsumed by the
// unconstrained rule, and a duplicated atom is redundant.
TEST(DataflowSubsumption, DetectsSubsumedRuleAndRedundantAtom) {
  VocabularyPtr vocab = MakeVocabulary();
  PredId e = vocab->AddPredicate("E", 2);
  PredId p = vocab->AddPredicate("P", 2);
  Program program(vocab);
  // P(x,y) :- E(x,y).            (rule 0)
  // P(x,y) :- E(x,y), E(y,z).    (rule 1: subsumed by rule 0)
  // P(x,y) :- E(x,y), E(x,y).    (rule 2: atom 1 redundant; also subsumed)
  program.AddRule(Rule{QAtom(p, {0, 1}), {QAtom(e, {0, 1})}, {"x", "y"}});
  program.AddRule(Rule{QAtom(p, {0, 1}),
                       {QAtom(e, {0, 1}), QAtom(e, {1, 2})},
                       {"x", "y", "z"}});
  program.AddRule(Rule{QAtom(p, {0, 1}),
                       {QAtom(e, {0, 1}), QAtom(e, {0, 1})},
                       {"x", "y"}});
  SubsumptionResult sr = AnalyzeSubsumption(program);
  EXPECT_EQ(sr.subsumed_by[0], -1);
  EXPECT_EQ(sr.subsumed_by[1], 0);
  EXPECT_EQ(sr.subsumed_by[2], 0);
  EXPECT_TRUE(sr.redundant_atoms[0].empty());
  EXPECT_TRUE(sr.redundant_atoms[1].empty());
  ASSERT_FALSE(sr.redundant_atoms[2].empty());
}

}  // namespace
}  // namespace mondet
