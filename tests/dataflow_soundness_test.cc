// Soundness oracle for the abstract-interpretation dataflow analyses
// (analysis/dataflow.h), over randomized Datalog programs and instances:
//
//   * the concrete fixpoint is contained in the concretization of the
//     abstract emptiness/constant-set fixpoint (every derived fact lands
//     in a nonempty abstract predicate, every argument in an admitted
//     position value);
//   * rules flagged dead never fire (their bodies have no homomorphic
//     match into the concrete fixpoint), and the instance-free mask is
//     monotonically weaker than any seeded mask;
//   * evaluation with EvalOptions::dataflow_prune produces the exact
//     same fact sequence, derivation counts and iteration counts as
//     evaluation without it, at 1 and 4 threads;
//   * dropping every subsumed rule — and any single redundant body
//     atom — leaves the fixpoint fact set unchanged.
//
// The schema deliberately includes an often-empty EDB predicate and an
// IDB predicate that frequently lacks a base case, so dead rules and
// empty predicates actually occur across the seed range.

#include <gtest/gtest.h>

#include <limits>
#include <random>
#include <vector>

#include "analysis/dataflow.h"
#include "base/homomorphism.h"
#include "datalog/eval.h"
#include "datalog/eval_plan.h"
#include "datalog/program.h"
#include "tests/naive_eval.h"
#include "tests/test_util.h"

namespace mondet {
namespace {

struct RandomSchema {
  VocabularyPtr vocab;
  // EDBs E1/1, E2/2 and Z1/1 (Z1 is seeded only every third instance, so
  // rules over it are often provably dead). IDBs I1/1, I2/2, J2/2, G0/0.
  PredId e1, e2, z1, i1, i2, j2, g0;
};

RandomSchema MakeSchema() {
  RandomSchema s;
  s.vocab = MakeVocabulary();
  s.e1 = s.vocab->AddPredicate("E1", 1);
  s.e2 = s.vocab->AddPredicate("E2", 2);
  s.z1 = s.vocab->AddPredicate("Z1", 1);
  s.i1 = s.vocab->AddPredicate("I1", 1);
  s.i2 = s.vocab->AddPredicate("I2", 2);
  s.j2 = s.vocab->AddPredicate("J2", 2);
  s.g0 = s.vocab->AddPredicate("G0", 0);
  return s;
}

/// A random safe rule (cf. eval_differential_test): 1-3 body atoms with
/// dense per-rule variable ids, head arguments drawn from body variables.
Rule RandomRule(const RandomSchema& s, std::mt19937& rng) {
  std::uniform_int_distribution<int> nvars_dist(2, 4);
  std::uniform_int_distribution<int> natoms_dist(1, 3);
  const int nvars = nvars_dist(rng);
  const int natoms = natoms_dist(rng);
  std::uniform_int_distribution<int> var_dist(0, nvars - 1);
  const PredId body_preds[] = {s.e1, s.e2, s.z1, s.i1, s.i2, s.j2};
  std::uniform_int_distribution<size_t> body_pred_dist(0, 5);

  constexpr VarId kUnmapped = std::numeric_limits<VarId>::max();
  Rule rule;
  std::vector<VarId> remap(nvars, kUnmapped);
  auto used = [&](int raw) {
    if (remap[raw] == kUnmapped) {
      remap[raw] = static_cast<VarId>(rule.var_names.size());
      rule.var_names.push_back("v" + std::to_string(raw));
    }
    return remap[raw];
  };
  for (int a = 0; a < natoms; ++a) {
    PredId p = body_preds[body_pred_dist(rng)];
    std::vector<VarId> args;
    for (int j = 0; j < s.vocab->arity(p); ++j) {
      args.push_back(used(var_dist(rng)));
    }
    rule.body.push_back(QAtom(p, args));
  }
  const PredId head_preds[] = {s.i1, s.i2, s.j2, s.g0};
  std::uniform_int_distribution<size_t> head_pred_dist(0, 3);
  PredId hp = head_preds[head_pred_dist(rng)];
  std::uniform_int_distribution<size_t> body_var_dist(
      0, rule.var_names.size() - 1);
  std::vector<VarId> head_args;
  for (int j = 0; j < s.vocab->arity(hp); ++j) {
    head_args.push_back(static_cast<VarId>(body_var_dist(rng)));
  }
  rule.head = QAtom(hp, head_args);
  return rule;
}

Program RandomProgram(const RandomSchema& s, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<int> nrules_dist(2, 6);
  Program program(s.vocab);
  const int nrules = nrules_dist(rng);
  for (int i = 0; i < nrules; ++i) program.AddRule(RandomRule(s, rng));
  return program;
}

Instance RandomSeedInstance(const RandomSchema& s, unsigned seed) {
  std::vector<PredId> inst_preds = {s.e1, s.e2};
  // Z1 stays empty two thirds of the time; input IDB facts half the time
  // (FPEval is defined on instances that may mention IDB predicates).
  if (seed % 3 == 0) inst_preds.push_back(s.z1);
  if (seed % 2 == 1) {
    inst_preds.push_back(s.i1);
    inst_preds.push_back(s.i2);
  }
  return RandomInstance(s.vocab, inst_preds, 4, 8, 9000 + seed);
}

/// Does the rule body have a satisfying assignment over `db`? Checked
/// independently of the evaluator: the body's canonical instance (element
/// v = variable v, one fact per atom) maps homomorphically into db iff
/// the body is satisfiable.
bool BodySatisfiable(const Program& program, const Rule& rule,
                     const Instance& db) {
  Instance pattern(program.vocab());
  pattern.EnsureElements(rule.num_vars());
  for (const QAtom& a : rule.body) {
    std::vector<ElemId> args(a.args.begin(), a.args.end());
    pattern.AddFact(a.pred, args);
  }
  return HasHomomorphism(pattern, db);
}

class DataflowSoundness : public ::testing::TestWithParam<unsigned> {};

// Concrete fixpoint \subseteq gamma(abstract fixpoint): every fact of the
// naive evaluation lands in a nonempty abstract predicate whose position
// values admit its arguments, and predicates flagged empty hold no fact.
TEST_P(DataflowSoundness, AbstractOverapproximatesConcrete) {
  unsigned seed = GetParam();
  RandomSchema s = MakeSchema();
  Program program = RandomProgram(s, 7000 + seed);
  Instance inst = RandomSeedInstance(s, seed);
  Instance fix = NaiveFpEval(program, inst);

  EmptinessResult er = AnalyzeEmptiness(program, &inst);
  for (const Fact& f : fix.facts()) {
    auto it = er.preds.find(f.pred);
    ASSERT_NE(it, er.preds.end()) << "seed " << seed;
    const PredAbstract& pa = it->second;
    ASSERT_TRUE(pa.nonempty)
        << "seed " << seed << ": fact over "
        << s.vocab->name(f.pred) << " but predicate abstractly empty\n"
        << program.DebugString();
    ASSERT_EQ(pa.pos.size(), f.args.size()) << "seed " << seed;
    for (size_t j = 0; j < f.args.size(); ++j) {
      EXPECT_TRUE(pa.pos[j].Admits(f.args[j]))
          << "seed " << seed << ": " << s.vocab->name(f.pred) << " position "
          << j << " rejects a concrete value\n" << program.DebugString();
    }
  }
  for (PredId p : er.empty_idbs) {
    EXPECT_TRUE(fix.FactsWith(p).empty())
        << "seed " << seed << ": " << s.vocab->name(p)
        << " flagged empty but holds a fact";
  }

  // The instance-free analysis assumes IDB relations start empty, so it
  // is sound for every *EDB* instance — odd seeds inject IDB facts into
  // the input and void that premise (the seeded analysis covers them).
  if (seed % 2 == 0) {
    EmptinessResult free_er = AnalyzeEmptiness(program, nullptr);
    for (PredId p : free_er.empty_idbs) {
      EXPECT_TRUE(fix.FactsWith(p).empty())
          << "seed " << seed << ": instance-free emptiness unsound for "
          << s.vocab->name(p);
    }
  }
}

// Rules flagged dead never fire: their bodies are unsatisfiable over the
// concrete fixpoint. Both masks are checked; the instance-free mask must
// moreover be a subset of the seeded mask (monotonicity).
TEST_P(DataflowSoundness, DeadRulesNeverFire) {
  unsigned seed = GetParam();
  RandomSchema s = MakeSchema();
  Program program = RandomProgram(s, 7000 + seed);
  Instance inst = RandomSeedInstance(s, seed);
  Instance fix = NaiveFpEval(program, inst);

  EmptinessResult seeded = AnalyzeEmptiness(program, &inst);
  EmptinessResult free_er = AnalyzeEmptiness(program, nullptr);
  ASSERT_EQ(seeded.rule_dead.size(), program.rules().size());
  ASSERT_EQ(free_er.rule_dead.size(), program.rules().size());
  for (size_t ri = 0; ri < program.rules().size(); ++ri) {
    // Monotonicity holds on EDB-only inputs: whatever the instance-free
    // analysis kills, any concrete seed without IDB facts kills too.
    if (seed % 2 == 0 && free_er.rule_dead[ri]) {
      EXPECT_TRUE(seeded.rule_dead[ri])
          << "seed " << seed << ": rule " << ri
          << " dead without a seed but live with one";
    }
    if (seeded.rule_dead[ri]) {
      EXPECT_FALSE(BodySatisfiable(program, program.rules()[ri], fix))
          << "seed " << seed << ": dead rule " << ri
          << " has a body match in the fixpoint\n" << program.DebugString();
      EXPECT_FALSE(seeded.dead_reasons[ri].detail.empty());
    }
  }
  // DeadRuleMask is exactly the seeded dead set (the evaluator contract).
  EXPECT_EQ(DeadRuleMask(program, inst), seeded.rule_dead);
}

// EvalOptions::dataflow_prune is invisible in the result: same fact
// sequence, derivation count and iteration count with pruning on and off,
// at 1 and 4 threads.
TEST_P(DataflowSoundness, PruningIsBitIdentical) {
  unsigned seed = GetParam();
  RandomSchema s = MakeSchema();
  Program program = RandomProgram(s, 7000 + seed);
  Instance inst = RandomSeedInstance(s, seed);

  EvalOptions on1{1}, on4{4}, off1{1}, off4{4};
  // The random instances sit below the pruning size gate; force the
  // analysis — bit-identity of pruning itself is what is under test.
  on1.dataflow_min_facts = 0;
  on4.dataflow_min_facts = 0;
  off1.dataflow_prune = false;
  off4.dataflow_prune = false;
  EvalStats s_on1, s_on4, s_off1, s_off4;
  Instance r_on1 = FpEval(program, inst, &s_on1, on1);
  Instance r_on4 = FpEval(program, inst, &s_on4, on4);
  Instance r_off1 = FpEval(program, inst, &s_off1, off1);
  Instance r_off4 = FpEval(program, inst, &s_off4, off4);

  ASSERT_EQ(r_on1.num_facts(), r_off1.num_facts())
      << "seed " << seed << "\n" << program.DebugString();
  ASSERT_EQ(r_on1.num_facts(), r_on4.num_facts()) << "seed " << seed;
  ASSERT_EQ(r_on1.num_facts(), r_off4.num_facts()) << "seed " << seed;
  for (size_t i = 0; i < r_on1.num_facts(); ++i) {
    ASSERT_EQ(r_on1.facts()[i], r_off1.facts()[i])
        << "seed " << seed << " fact " << i;
    ASSERT_EQ(r_on1.facts()[i], r_on4.facts()[i])
        << "seed " << seed << " fact " << i;
    ASSERT_EQ(r_on1.facts()[i], r_off4.facts()[i])
        << "seed " << seed << " fact " << i;
  }
  EXPECT_EQ(s_on1.facts_derived, s_off1.facts_derived) << "seed " << seed;
  // Iterations may shrink when a stratum's rules are all pruned (its
  // empty rounds disappear) — that is the saving, not a divergence.
  EXPECT_LE(s_on1.iterations, s_off1.iterations) << "seed " << seed;
  EXPECT_EQ(s_on1.rules_pruned, s_on4.rules_pruned) << "seed " << seed;
  EXPECT_EQ(s_off1.rules_pruned, 0u) << "seed " << seed;

  const std::vector<bool> dead = DeadRuleMask(program, inst);
  size_t n_dead = 0;
  for (bool d : dead) n_dead += d ? 1 : 0;
  EXPECT_EQ(s_on1.rules_pruned, n_dead) << "seed " << seed;
}

// Dropping every subsumed rule leaves the fixpoint fact set unchanged
// (uniform containment is sound under recursion), and removing any single
// redundant body atom leaves an equivalent rule.
TEST_P(DataflowSoundness, SubsumptionPreservesFixpoint) {
  unsigned seed = GetParam();
  RandomSchema s = MakeSchema();
  Program program = RandomProgram(s, 7000 + seed);
  Instance inst = RandomSeedInstance(s, seed);
  Instance fix = NaiveFpEval(program, inst);

  SubsumptionResult sr = AnalyzeSubsumption(program);
  ASSERT_EQ(sr.subsumed_by.size(), program.rules().size());

  bool any_subsumed = false;
  Program reduced(s.vocab);
  for (size_t ri = 0; ri < program.rules().size(); ++ri) {
    if (sr.subsumed_by[ri] >= 0) {
      any_subsumed = true;
      // A strict subsumer may sit anywhere; only equivalent rules must
      // point backwards (the lowest of an equivalence class stays
      // unmarked so all marked rules are droppable together).
      ASSERT_NE(sr.subsumed_by[ri], static_cast<int>(ri)) << "seed " << seed;
      ASSERT_LT(sr.subsumed_by[ri], static_cast<int>(program.rules().size()))
          << "seed " << seed;
      continue;
    }
    reduced.AddRule(program.rules()[ri]);
  }
  if (any_subsumed) {
    Instance fix2 = NaiveFpEval(reduced, inst);
    ASSERT_EQ(fix.num_facts(), fix2.num_facts())
        << "seed " << seed << ": dropping subsumed rules changed the "
        << "fixpoint\n" << program.DebugString();
    for (const Fact& f : fix.facts()) {
      EXPECT_TRUE(fix2.HasFact(f)) << "seed " << seed;
    }
  }

  for (size_t ri = 0; ri < program.rules().size(); ++ri) {
    for (int ai : sr.redundant_atoms[ri]) {
      Program without(s.vocab);
      for (size_t rj = 0; rj < program.rules().size(); ++rj) {
        Rule r = program.rules()[rj];
        if (rj == ri) {
          r.body.erase(r.body.begin() + ai);
        }
        without.AddRule(r);
      }
      Instance fix2 = NaiveFpEval(without, inst);
      ASSERT_EQ(fix.num_facts(), fix2.num_facts())
          << "seed " << seed << ": dropping body atom " << ai << " of rule "
          << ri << " changed the fixpoint\n" << program.DebugString();
      for (const Fact& f : fix.facts()) {
        EXPECT_TRUE(fix2.HasFact(f)) << "seed " << seed;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DataflowSoundness,
                         ::testing::Range(0u, 220u));

// --- Deterministic cases. ---------------------------------------------------

// Transitive closure with a disconnected helper: the goal binds its
// argument, the helper's body atom is reached all-free.
TEST(DataflowAdornment, PropagatesBindingsLeftToRight) {
  VocabularyPtr vocab = MakeVocabulary();
  PredId e = vocab->AddPredicate("E", 2);
  PredId t = vocab->AddPredicate("T", 2);
  PredId a = vocab->AddPredicate("A", 1);
  PredId b = vocab->AddPredicate("B", 1);
  Program program(vocab);
  // T(x,y) :- E(x,y).        T(x,y) :- E(x,z), T(z,y).
  program.AddRule(Rule{QAtom(t, {0, 1}), {QAtom(e, {0, 1})}, {"x", "y"}});
  program.AddRule(Rule{QAtom(t, {0, 1}),
                       {QAtom(e, {0, 2}), QAtom(t, {2, 1})},
                       {"x", "y", "z"}});
  // A(x) :- B(y), T(y,x).    B(x) :- E(x,x).
  program.AddRule(Rule{QAtom(a, {0}), {QAtom(b, {1}), QAtom(t, {1, 0})},
                       {"x", "y"}});
  program.AddRule(Rule{QAtom(b, {0}), {QAtom(e, {0, 0})}, {"x"}});

  AdornmentResult ad = AnalyzeAdornments(program, a);
  EXPECT_TRUE(ad.goal_binds);
  ASSERT_TRUE(ad.calls.count(a));
  EXPECT_EQ(ad.calls.at(a), std::set<std::string>{"b"});
  // B is called before any of its variables is bound.
  ASSERT_TRUE(ad.calls.count(b));
  EXPECT_EQ(ad.calls.at(b), std::set<std::string>{"f"});
  // T is called "bb" from rule 2 (y bound by the B atom, x by the goal);
  // the recursive rule re-calls it "bb" (z bound by E, y by the head),
  // so no weaker pattern ever appears.
  ASSERT_TRUE(ad.calls.count(t));
  EXPECT_EQ(ad.calls.at(t), std::set<std::string>{"bb"});
  // The call sites record the same patterns.
  EXPECT_EQ(ad.atom_calls.at({2, 0}), std::set<std::string>{"f"});
  EXPECT_EQ(ad.atom_calls.at({2, 1}), std::set<std::string>{"bb"});
}

TEST(DataflowAdornment, NullaryGoalDoesNotBind) {
  VocabularyPtr vocab = MakeVocabulary();
  PredId e = vocab->AddPredicate("E", 2);
  PredId g = vocab->AddPredicate("G", 0);
  Program program(vocab);
  program.AddRule(Rule{QAtom(g, {}), {QAtom(e, {0, 1})}, {"x", "y"}});
  AdornmentResult ad = AnalyzeAdornments(program, g);
  EXPECT_FALSE(ad.goal_binds);
  EXPECT_EQ(ad.calls.at(g), std::set<std::string>{""});
}

// Recursion without a base case is provably empty even with no instance.
TEST(DataflowEmptiness, RecursionWithoutBaseCaseIsEmpty) {
  VocabularyPtr vocab = MakeVocabulary();
  PredId e = vocab->AddPredicate("E", 2);
  PredId p = vocab->AddPredicate("P", 1);
  PredId q = vocab->AddPredicate("Q", 1);
  Program program(vocab);
  // P(x) :- E(x,y), P(y).   Q(x) :- P(x).
  program.AddRule(Rule{QAtom(p, {0}), {QAtom(e, {0, 1}), QAtom(p, {1})},
                       {"x", "y"}});
  program.AddRule(Rule{QAtom(q, {0}), {QAtom(p, {0})}, {"x"}});
  EmptinessResult er = AnalyzeEmptiness(program, nullptr);
  EXPECT_TRUE(er.IsEmpty(p));
  EXPECT_TRUE(er.IsEmpty(q));
  EXPECT_EQ(er.empty_idbs, (std::vector<PredId>{p, q}));
  EXPECT_TRUE(er.rule_dead[0]);
  EXPECT_TRUE(er.rule_dead[1]);
  // The EDB is unconstrained without a seed.
  EXPECT_FALSE(er.IsEmpty(e));
}

// A seeded instance restricts EDB positions to small constant sets, and
// the meet over a shared variable can prove a rule dead even though every
// body predicate is nonempty.
TEST(DataflowEmptiness, DisjointConstantSetsKillRule) {
  VocabularyPtr vocab = MakeVocabulary();
  PredId r = vocab->AddPredicate("R", 1);
  PredId t = vocab->AddPredicate("S", 1);
  PredId h = vocab->AddPredicate("H", 1);
  Program program(vocab);
  // H(x) :- R(x), S(x).
  program.AddRule(Rule{QAtom(h, {0}), {QAtom(r, {0}), QAtom(t, {0})},
                       {"x"}});
  Instance inst(vocab);
  ElemId a = inst.AddElement(), b = inst.AddElement();
  inst.AddFact(r, {a});
  inst.AddFact(t, {b});
  EmptinessResult er = AnalyzeEmptiness(program, &inst);
  EXPECT_TRUE(er.rule_dead[0]);
  EXPECT_TRUE(er.IsEmpty(h));
  EXPECT_FALSE(er.IsEmpty(r));
  // Same program over an overlapping seed: live.
  inst.AddFact(t, {a});
  EmptinessResult er2 = AnalyzeEmptiness(program, &inst);
  EXPECT_FALSE(er2.rule_dead[0]);
  EXPECT_FALSE(er2.IsEmpty(h));
}

// Classic subsumption: a rule with an extra body atom is subsumed by the
// unconstrained rule, and a duplicated atom is redundant.
TEST(DataflowSubsumption, DetectsSubsumedRuleAndRedundantAtom) {
  VocabularyPtr vocab = MakeVocabulary();
  PredId e = vocab->AddPredicate("E", 2);
  PredId p = vocab->AddPredicate("P", 2);
  Program program(vocab);
  // P(x,y) :- E(x,y).            (rule 0)
  // P(x,y) :- E(x,y), E(y,z).    (rule 1: subsumed by rule 0)
  // P(x,y) :- E(x,y), E(x,y).    (rule 2: atom 1 redundant; also subsumed)
  program.AddRule(Rule{QAtom(p, {0, 1}), {QAtom(e, {0, 1})}, {"x", "y"}});
  program.AddRule(Rule{QAtom(p, {0, 1}),
                       {QAtom(e, {0, 1}), QAtom(e, {1, 2})},
                       {"x", "y", "z"}});
  program.AddRule(Rule{QAtom(p, {0, 1}),
                       {QAtom(e, {0, 1}), QAtom(e, {0, 1})},
                       {"x", "y"}});
  SubsumptionResult sr = AnalyzeSubsumption(program);
  EXPECT_EQ(sr.subsumed_by[0], -1);
  EXPECT_EQ(sr.subsumed_by[1], 0);
  EXPECT_EQ(sr.subsumed_by[2], 0);
  EXPECT_TRUE(sr.redundant_atoms[0].empty());
  EXPECT_TRUE(sr.redundant_atoms[1].empty());
  ASSERT_FALSE(sr.redundant_atoms[2].empty());
}

}  // namespace
}  // namespace mondet
