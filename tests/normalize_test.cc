#include <gtest/gtest.h>

#include "datalog/eval.h"
#include "datalog/normalize.h"
#include "datalog/parser.h"
#include "tests/test_util.h"

namespace mondet {
namespace {

DatalogQuery MustParseQuery(const std::string& text, const std::string& goal,
                            const VocabularyPtr& vocab) {
  std::string error;
  std::vector<Diagnostic> diags;
  auto q = ParseQuery(text, goal, vocab, &diags);
  EXPECT_TRUE(q.has_value()) << FormatDiagnostics(diags);
  return *q;
}

/// Both queries agree on a batch of random instances.
void ExpectEquivalentOnRandom(const DatalogQuery& q1, const DatalogQuery& q2,
                              const std::vector<PredId>& preds, int rounds) {
  for (int seed = 0; seed < rounds; ++seed) {
    Instance inst =
        RandomInstance(q1.program.vocab(), preds, 4, 8, 7000 + seed);
    EXPECT_EQ(DatalogHoldsOn(q1, inst), DatalogHoldsOn(q2, inst))
        << "seed " << seed << "\n"
        << inst.DebugString();
  }
}

TEST(Normalize, AlreadyNormalizedPassesCheck) {
  auto vocab = MakeVocabulary();
  DatalogQuery q = MustParseQuery(R"(
    P(x) :- U(x).
    P(x) :- R(x,y), P(y).
    Goal() :- P(x), M(x).
  )",
                                  "Goal", vocab);
  EXPECT_TRUE(IsNormalizedMdl(q));
}

TEST(Normalize, HeadVarIdbAtomDetected) {
  auto vocab = MakeVocabulary();
  DatalogQuery q = MustParseQuery(R"(
    P(x) :- U(x).
    P(x) :- R(x,y), P(x), M(y).
    Goal() :- P(x).
  )",
                                  "Goal", vocab);
  EXPECT_FALSE(IsNormalizedMdl(q));
  DatalogQuery normalized = NormalizeMdl(q);
  EXPECT_TRUE(IsNormalizedMdl(normalized));
  ExpectEquivalentOnRandom(q, normalized,
                           {*vocab->FindPredicate("U"),
                            *vocab->FindPredicate("R"),
                            *vocab->FindPredicate("M")},
                           30);
}

TEST(Normalize, TwoIdbAtomsOnOneVariable) {
  auto vocab = MakeVocabulary();
  DatalogQuery q = MustParseQuery(R"(
    A(x) :- U(x).
    A(x) :- R(x,y), A(y), B(y).
    B(x) :- M(x).
    B(x) :- R(x,y), B(y).
    Goal() :- A(x), S(x).
  )",
                                  "Goal", vocab);
  EXPECT_FALSE(IsNormalizedMdl(q));
  DatalogQuery normalized = NormalizeMdl(q);
  EXPECT_TRUE(IsNormalizedMdl(normalized));
  ExpectEquivalentOnRandom(q, normalized,
                           {*vocab->FindPredicate("U"),
                            *vocab->FindPredicate("R"),
                            *vocab->FindPredicate("M"),
                            *vocab->FindPredicate("S")},
                           30);
}

TEST(Normalize, MutualRecursionThroughHeadVar) {
  auto vocab = MakeVocabulary();
  // A(x) needs B(x) which needs A-steps elsewhere: exercises the acyclic
  // self-support enumeration.
  DatalogQuery q = MustParseQuery(R"(
    A(x) :- B(x), U(x).
    B(x) :- M(x).
    B(x) :- R(x,y), A(y).
    Goal() :- A(x).
  )",
                                  "Goal", vocab);
  DatalogQuery normalized = NormalizeMdl(q);
  EXPECT_TRUE(IsNormalizedMdl(normalized));
  ExpectEquivalentOnRandom(q, normalized,
                           {*vocab->FindPredicate("U"),
                            *vocab->FindPredicate("R"),
                            *vocab->FindPredicate("M")},
                           30);
}

TEST(Normalize, CircularSupportWithoutBaseUnderivable) {
  auto vocab = MakeVocabulary();
  // A and B only support each other at the same element: nothing should
  // ever be derivable, before or after normalization.
  DatalogQuery q = MustParseQuery(R"(
    A(x) :- B(x), U(x).
    B(x) :- A(x), U(x).
    Goal() :- A(x).
  )",
                                  "Goal", vocab);
  DatalogQuery normalized = NormalizeMdl(q);
  PredId u = *vocab->FindPredicate("U");
  Instance inst(vocab);
  ElemId a = inst.AddElement();
  inst.AddFact(u, {a});
  EXPECT_FALSE(DatalogHoldsOn(q, inst));
  EXPECT_FALSE(DatalogHoldsOn(normalized, inst));
}

TEST(Normalize, GoalRulesAreExempt) {
  auto vocab = MakeVocabulary();
  // The goal rule may mention IDB atoms on its variables freely.
  DatalogQuery q = MustParseQuery(R"(
    A(x) :- U(x).
    B(x) :- M(x).
    Goal() :- A(x), B(x).
  )",
                                  "Goal", vocab);
  EXPECT_TRUE(IsNormalizedMdl(q));
  DatalogQuery normalized = NormalizeMdl(q);
  ExpectEquivalentOnRandom(q, normalized,
                           {*vocab->FindPredicate("U"),
                            *vocab->FindPredicate("M")},
                           20);
}

TEST(Normalize, NullaryIdbInBodyIsDiagnosedNotAborted) {
  auto vocab = MakeVocabulary();
  // Aux() is a nullary IDB used in a body: inside the monadic fragment
  // (arity <= 1), but the conjunction-set construction has no variable to
  // group it on. TryNormalizeMdl must reject with a diagnostic.
  DatalogQuery q = MustParseQuery(R"(
    Aux() :- W(x).
    P(x) :- U(x), Aux().
    Goal() :- P(x).
  )",
                                  "Goal", vocab);
  std::vector<Diagnostic> diags;
  EXPECT_FALSE(TryNormalizeMdl(q, &diags).has_value());
  ASSERT_FALSE(diags.empty());
  EXPECT_EQ(diags[0].check, "normalize-nullary-idb");
  EXPECT_EQ(diags[0].loc.rule, 1);
  EXPECT_EQ(diags[0].loc.atoms, (std::vector<int>{1}));
}

TEST(Normalize, GoalNameClashGetsFreshNormName) {
  auto vocab = MakeVocabulary();
  // The program already uses "Goal_norm" — with a different arity, so a
  // blind AddPredicate("Goal_norm", 0) would abort on the arity clash.
  DatalogQuery q = MustParseQuery(R"(
    Goal_norm(x) :- U(x).
    P(x) :- Goal_norm(x).
    Goal() :- P(x), M(x).
  )",
                                  "Goal", vocab);
  std::vector<Diagnostic> diags;
  auto normalized = TryNormalizeMdl(q, &diags);
  ASSERT_TRUE(normalized.has_value()) << FormatDiagnostics(diags);
  EXPECT_NE(normalized->goal, *vocab->FindPredicate("Goal_norm"));
  EXPECT_EQ(vocab->name(normalized->goal), "Goal_norm1");
  ExpectEquivalentOnRandom(q, *normalized,
                           {*vocab->FindPredicate("U"),
                            *vocab->FindPredicate("M")},
                           20);
}

}  // namespace
}  // namespace mondet
