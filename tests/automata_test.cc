#include <gtest/gtest.h>

#include "automata/nta.h"
#include "automata/ops.h"

namespace mondet {
namespace {

/// Test fixture over a tiny alphabet: unary label "a" at position 0 or
/// label "b" at position 0, chained by the identity edge {0->0}.
class ChainAutomataTest : public ::testing::Test {
 protected:
  static constexpr PredId kA = 0;
  static constexpr PredId kB = 1;

  NodeLabel LabelA() { return {AtomLabel{kA, {0}}}; }
  NodeLabel LabelB() { return {AtomLabel{kB, {0}}}; }
  EdgeLabel Id() { return EdgeLabel{{{0, 0}}}; }

  /// Unary chain code with the given labels, root first.
  TreeCode Chain(const std::vector<NodeLabel>& labels) {
    TreeCode code;
    code.width = 1;
    for (size_t i = 0; i < labels.size(); ++i) {
      CodeNode node;
      node.atoms = labels[i];
      node.parent = static_cast<int>(i) - 1;
      if (i + 1 < labels.size()) {
        node.children.push_back(static_cast<int>(i) + 1);
        node.edge_labels.push_back(Id());
      }
      code.nodes.push_back(node);
    }
    return code;
  }

  /// Accepts chains whose labels are all "a".
  Nta AllA() {
    Nta nta(1);
    State q = nta.AddState();
    nta.AddFinal(q);
    nta.AddLeaf(LabelA(), q);
    nta.AddUnary(LabelA(), Id(), q, q);
    return nta;
  }

  /// Accepts chains containing at least one "b".
  Nta SomeB() {
    Nta nta(1);
    State no = nta.AddState();
    State yes = nta.AddState();
    nta.AddFinal(yes);
    nta.AddLeaf(LabelA(), no);
    nta.AddLeaf(LabelB(), yes);
    nta.AddUnary(LabelA(), Id(), no, no);
    nta.AddUnary(LabelB(), Id(), no, yes);
    nta.AddUnary(LabelA(), Id(), yes, yes);
    nta.AddUnary(LabelB(), Id(), yes, yes);
    return nta;
  }
};

TEST_F(ChainAutomataTest, RunAndAccept) {
  Nta all_a = AllA();
  EXPECT_TRUE(all_a.Accepts(Chain({LabelA(), LabelA()})));
  EXPECT_FALSE(all_a.Accepts(Chain({LabelA(), LabelB()})));
  Nta some_b = SomeB();
  EXPECT_TRUE(some_b.Accepts(Chain({LabelA(), LabelB(), LabelA()})));
  EXPECT_FALSE(some_b.Accepts(Chain({LabelA(), LabelA()})));
}

TEST_F(ChainAutomataTest, ProductIsIntersection) {
  Nta product = Product(AllA(), SomeB());
  // "all a" and "some b" is unsatisfiable.
  EXPECT_TRUE(IsEmpty(product));
}

TEST_F(ChainAutomataTest, UnionIsUnion) {
  Nta u = UnionNta(AllA(), SomeB());
  EXPECT_TRUE(u.Accepts(Chain({LabelA()})));
  EXPECT_TRUE(u.Accepts(Chain({LabelB()})));
  EXPECT_TRUE(u.Accepts(Chain({LabelA(), LabelB()})));
}

TEST_F(ChainAutomataTest, EmptinessWitness) {
  Nta some_b = SomeB();
  auto witness = EmptinessWitness(some_b);
  ASSERT_TRUE(witness.has_value());
  EXPECT_TRUE(some_b.Accepts(*witness));
  Nta empty = Product(AllA(), SomeB());
  EXPECT_FALSE(EmptinessWitness(empty).has_value());
}

TEST_F(ChainAutomataTest, ProjectionDropsPredicates) {
  // Projecting away "b" maps b-labels to the empty label (Prop. 5).
  Nta some_b = SomeB();
  Nta projected = ProjectLabels(some_b, {kA});
  // The b-label became {}, so a chain with an empty-label node is accepted.
  TreeCode code = Chain({LabelA(), NodeLabel{}, LabelA()});
  EXPECT_TRUE(projected.Accepts(code));
}

TEST_F(ChainAutomataTest, DeterminizePreservesLanguage) {
  Nta some_b = SomeB();
  SymbolUniverse universe = SymbolsOf(some_b);
  Nta det = Determinize(some_b, universe);
  for (const auto& labels :
       std::vector<std::vector<int>>{{0}, {1}, {0, 0}, {0, 1}, {1, 0, 0}}) {
    std::vector<NodeLabel> chain;
    for (int l : labels) chain.push_back(l == 0 ? LabelA() : LabelB());
    TreeCode code = Chain(chain);
    EXPECT_EQ(det.Accepts(code), some_b.Accepts(code));
  }
}

TEST_F(ChainAutomataTest, ComplementFlipsAcceptance) {
  Nta some_b = SomeB();
  SymbolUniverse universe = SymbolsOf(some_b);
  universe.Merge(SymbolsOf(AllA()));
  Nta complement = Complement(some_b, universe);
  EXPECT_FALSE(complement.Accepts(Chain({LabelA(), LabelB()})));
  EXPECT_TRUE(complement.Accepts(Chain({LabelA(), LabelA()})));
  // some_b ∩ ¬some_b is empty.
  EXPECT_TRUE(IsEmpty(Product(some_b, complement)));
  // all_a ⊆ ¬some_b.
  EXPECT_FALSE(IsEmpty(Product(AllA(), complement)));
}

TEST_F(ChainAutomataTest, TrimKeepsLanguage) {
  Nta some_b = SomeB();
  // Add junk states.
  State junk = some_b.AddState();
  some_b.AddUnary(LabelA(), Id(), junk, junk);
  Nta trimmed = Trim(some_b);
  EXPECT_LT(trimmed.num_states(), some_b.num_states());
  EXPECT_TRUE(trimmed.Accepts(Chain({LabelB()})));
  EXPECT_FALSE(trimmed.Accepts(Chain({LabelA()})));
}

TEST(BinaryAutomata, BinaryTransitionsWork) {
  // Accepts full binary trees where every leaf is labelled "a" and inner
  // nodes are unlabelled.
  NodeLabel leaf_label{AtomLabel{0, {0}}};
  EdgeLabel id{{{0, 0}}};
  Nta nta(1);
  State q = nta.AddState();
  nta.AddFinal(q);
  nta.AddLeaf(leaf_label, q);
  nta.AddBinary(NodeLabel{}, id, id, q, q, q);

  TreeCode code;
  code.width = 1;
  code.nodes.resize(3);
  code.nodes[0].children = {1, 2};
  code.nodes[0].edge_labels = {id, id};
  code.nodes[1].parent = 0;
  code.nodes[1].atoms = leaf_label;
  code.nodes[2].parent = 0;
  code.nodes[2].atoms = leaf_label;
  EXPECT_TRUE(nta.Accepts(code));
  code.nodes[2].atoms.clear();
  EXPECT_FALSE(nta.Accepts(code));
}

}  // namespace
}  // namespace mondet
