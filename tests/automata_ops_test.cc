// Direct unit tests for the NTA operations (automata/ops.h) on
// hand-built automata and codes — product, union, emptiness (with and
// without witnesses), determinization, complement and trim, including
// binary transitions, which the chain fixtures of automata_test.cc
// mostly bypass. The enumeration style pins the *languages*: an
// operation is checked against every code of a small universe, not
// against a few hand-picked members.

#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "automata/nta.h"
#include "automata/ops.h"
#include "testing/generator.h"

namespace mondet {
namespace {

// Two unary atom labels over dummy predicates; the automata only ever
// compare labels for equality, so no vocabulary is needed.
NodeLabel LabelA() { return {AtomLabel{0, {0}}}; }
NodeLabel LabelB() { return {AtomLabel{1, {0}}}; }

TreeCode Chain(const std::vector<NodeLabel>& top_down) {
  TreeCode code;
  code.width = 1;
  code.nodes.resize(top_down.size());
  for (size_t i = 0; i < top_down.size(); ++i) {
    code.nodes[i].atoms = top_down[i];
    if (i + 1 < top_down.size()) {
      code.nodes[i].children = {static_cast<int>(i) + 1};
      code.nodes[i].edge_labels = {EdgeLabel{}};
      code.nodes[i + 1].parent = static_cast<int>(i);
    }
  }
  return code;
}

TreeCode BinaryOverLeaves(const NodeLabel& root, const NodeLabel& left,
                          const NodeLabel& right) {
  TreeCode code;
  code.width = 1;
  code.nodes.resize(3);
  code.nodes[0].atoms = root;
  code.nodes[0].children = {1, 2};
  code.nodes[0].edge_labels = {EdgeLabel{}, EdgeLabel{}};
  code.nodes[1].atoms = left;
  code.nodes[1].parent = 0;
  code.nodes[2].atoms = right;
  code.nodes[2].parent = 0;
  return code;
}

/// Every chain code over {A, B} of length 1..3 (14 codes).
std::vector<TreeCode> AllChains() {
  const std::vector<NodeLabel> alphabet = {LabelA(), LabelB()};
  std::vector<TreeCode> codes;
  for (const NodeLabel& l0 : alphabet) {
    codes.push_back(Chain({l0}));
    for (const NodeLabel& l1 : alphabet) {
      codes.push_back(Chain({l0, l1}));
      for (const NodeLabel& l2 : alphabet) {
        codes.push_back(Chain({l0, l1, l2}));
      }
    }
  }
  return codes;
}

/// Accepts chains with an odd number of nodes (parity automaton; total
/// over the chain universe).
Nta OddLengthChains() {
  Nta m(1);
  State even = m.AddState(), odd = m.AddState();
  for (const NodeLabel& l : {LabelA(), LabelB()}) {
    m.AddLeaf(l, odd);
    m.AddUnary(l, EdgeLabel{}, odd, even);
    m.AddUnary(l, EdgeLabel{}, even, odd);
  }
  m.AddFinal(odd);
  return m;
}

/// Accepts chains whose root label is A.
Nta RootIsA() {
  Nta m(1);
  State root_a = m.AddState(), root_b = m.AddState();
  m.AddLeaf(LabelA(), root_a);
  m.AddLeaf(LabelB(), root_b);
  for (State child : {root_a, root_b}) {
    m.AddUnary(LabelA(), EdgeLabel{}, child, root_a);
    m.AddUnary(LabelB(), EdgeLabel{}, child, root_b);
  }
  m.AddFinal(root_a);
  return m;
}

TEST(AutomataOps, ProductIsLanguageIntersection) {
  Nta odd = OddLengthChains();
  Nta root_a = RootIsA();
  Nta both = Product(odd, root_a);
  size_t accepted = 0;
  for (const TreeCode& code : AllChains()) {
    ASSERT_TRUE(code.Validate());
    EXPECT_EQ(both.Accepts(code), odd.Accepts(code) && root_a.Accepts(code))
        << code.nodes.size() << "-node chain";
    accepted += both.Accepts(code);
  }
  // Odd length with root A: the leaf A plus the four 3-chains A??.
  EXPECT_EQ(accepted, 5u);
}

TEST(AutomataOps, UnionIsLanguageUnion) {
  Nta odd = OddLengthChains();
  Nta root_a = RootIsA();
  Nta either = UnionNta(odd, root_a);
  for (const TreeCode& code : AllChains()) {
    EXPECT_EQ(either.Accepts(code),
              odd.Accepts(code) || root_a.Accepts(code))
        << code.nodes.size() << "-node chain";
  }
}

TEST(AutomataOps, EmptinessNoFinals) {
  Nta m(1);
  State q = m.AddState();
  m.AddLeaf(LabelA(), q);
  EXPECT_TRUE(IsEmpty(m));
  EXPECT_FALSE(EmptinessWitness(m).has_value());
}

TEST(AutomataOps, EmptinessUninhabitedBinaryChild) {
  // The only path to the final state is a binary transition whose second
  // child state is never inhabited: the language is empty even though
  // every state is syntactically "used".
  Nta m(1);
  State leaf = m.AddState(), dead = m.AddState(), fin = m.AddState();
  m.AddLeaf(LabelA(), leaf);
  m.AddBinary(LabelB(), EdgeLabel{}, EdgeLabel{}, leaf, dead, fin);
  m.AddFinal(fin);
  EXPECT_TRUE(IsEmpty(m));
  EXPECT_FALSE(EmptinessWitness(m).has_value());

  // Making `dead` inhabited flips the verdict.
  m.AddLeaf(LabelB(), dead);
  EXPECT_FALSE(IsEmpty(m));
}

TEST(AutomataOps, WitnessThroughBinaryTransition) {
  // Acceptance requires a binary node: the minimal witness is the 3-node
  // tree B(A, A), and it must itself be accepted.
  Nta m(1);
  State leaf = m.AddState(), fin = m.AddState();
  m.AddLeaf(LabelA(), leaf);
  m.AddBinary(LabelB(), EdgeLabel{}, EdgeLabel{}, leaf, leaf, fin);
  m.AddFinal(fin);
  ASSERT_FALSE(IsEmpty(m));
  std::optional<TreeCode> witness = EmptinessWitness(m);
  ASSERT_TRUE(witness.has_value());
  EXPECT_TRUE(witness->Validate());
  EXPECT_TRUE(m.Accepts(*witness));
  EXPECT_EQ(witness->nodes.size(), 3u);
}

TEST(AutomataOps, WitnessIsMinimalHeight) {
  // Accepts the single leaf A and arbitrarily deep chains above it; the
  // witness must be the minimal-height member, the bare leaf.
  Nta m(1);
  State fin = m.AddState();
  m.AddLeaf(LabelA(), fin);
  m.AddUnary(LabelA(), EdgeLabel{}, fin, fin);
  m.AddFinal(fin);
  std::optional<TreeCode> witness = EmptinessWitness(m);
  ASSERT_TRUE(witness.has_value());
  EXPECT_TRUE(m.Accepts(*witness));
  EXPECT_EQ(witness->nodes.size(), 1u);
}

/// The 6 codes buildable from {leaf A, leaf B, binary B(·,·)}.
std::vector<TreeCode> AllBinaryShapes() {
  std::vector<TreeCode> codes = {Chain({LabelA()}), Chain({LabelB()})};
  for (const NodeLabel& l : {LabelA(), LabelB()}) {
    for (const NodeLabel& r : {LabelA(), LabelB()}) {
      codes.push_back(BinaryOverLeaves(LabelB(), l, r));
    }
  }
  return codes;
}

TEST(AutomataOps, DeterminizeAndComplementOverBinaryUniverse) {
  // Accepts exactly B(A, A) — a single binary-transition language.
  Nta m(1);
  State leaf_a = m.AddState(), fin = m.AddState();
  m.AddLeaf(LabelA(), leaf_a);
  m.AddBinary(LabelB(), EdgeLabel{}, EdgeLabel{}, leaf_a, leaf_a, fin);
  m.AddFinal(fin);

  SymbolUniverse universe = SymbolsOf(m);
  for (const TreeCode& code : AllBinaryShapes()) {
    universe.Merge(SymbolsOf(code));
  }
  Nta det = Determinize(m, universe);
  Nta comp = Complement(m, universe);
  size_t accepted = 0;
  for (const TreeCode& code : AllBinaryShapes()) {
    EXPECT_EQ(det.Accepts(code), m.Accepts(code));
    EXPECT_EQ(comp.Accepts(code), !m.Accepts(code));
    accepted += m.Accepts(code);
  }
  EXPECT_EQ(accepted, 1u);
  // L(M) ∩ L(M)^c = ∅ — and the product construction must see it.
  EXPECT_TRUE(IsEmpty(Product(m, comp)));
  EXPECT_FALSE(IsEmpty(comp));
}

// --- Randomized language-enumeration arm. -----------------------------------
//
// Random automata from the shared testing library (testing::RandomNta —
// same two labels as the fixtures above, 1–3 states, random leaf / unary
// / binary transitions, random finals, so empty and total languages both
// occur) checked against the *whole* enumerable universe of chains and
// binary shapes: Determinize preserves the language, Complement flips
// exactly it, their product is empty, their union is total over the
// universe, Trim preserves the language, and a nonempty automaton's
// emptiness witness is itself accepted.

class NtaLanguageEnumeration : public ::testing::TestWithParam<unsigned> {};

TEST_P(NtaLanguageEnumeration, OpsAgreeOnEnumeratedUniverse) {
  const unsigned seed = GetParam();
  Nta m = testing::RandomNta(seed);

  std::vector<TreeCode> codes = AllChains();
  for (const TreeCode& code : AllBinaryShapes()) codes.push_back(code);

  SymbolUniverse universe = SymbolsOf(m);
  for (const TreeCode& code : codes) universe.Merge(SymbolsOf(code));

  Nta det = Determinize(m, universe);
  Nta comp = Complement(m, universe);
  Nta trimmed = Trim(m);
  Nta either = UnionNta(m, comp);
  for (const TreeCode& code : codes) {
    const bool in_l = m.Accepts(code);
    EXPECT_EQ(det.Accepts(code), in_l) << "seed " << seed;
    EXPECT_EQ(comp.Accepts(code), !in_l) << "seed " << seed;
    EXPECT_EQ(trimmed.Accepts(code), in_l) << "seed " << seed;
    EXPECT_TRUE(either.Accepts(code)) << "seed " << seed;
  }
  // L(M) ∩ L(M)^c = ∅, whatever M the generator produced.
  EXPECT_TRUE(IsEmpty(Product(m, comp))) << "seed " << seed;

  // Emptiness and its witness agree with acceptance.
  std::optional<TreeCode> witness = EmptinessWitness(m);
  EXPECT_EQ(IsEmpty(m), !witness.has_value()) << "seed " << seed;
  if (witness.has_value()) {
    EXPECT_TRUE(witness->Validate()) << "seed " << seed;
    EXPECT_TRUE(m.Accepts(*witness)) << "seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, NtaLanguageEnumeration,
                         ::testing::Range(0u, 60u));

TEST(AutomataOps, TrimDropsDeadStatesAndPreservesLanguage) {
  Nta m = RootIsA();
  // Junk: a state reachable bottom-up but never co-reachable (no path to
  // a final), and one not reachable at all.
  State junk = m.AddState();
  m.AddLeaf(LabelA(), junk);
  State unreachable = m.AddState();
  m.AddUnary(LabelB(), EdgeLabel{}, unreachable, junk);
  Nta trimmed = Trim(m);
  EXPECT_LT(trimmed.num_states(), m.num_states());
  for (const TreeCode& code : AllChains()) {
    EXPECT_EQ(trimmed.Accepts(code), m.Accepts(code))
        << code.nodes.size() << "-node chain";
  }
}

}  // namespace
}  // namespace mondet
