#include <gtest/gtest.h>

#include "core/mondet_check.h"
#include "datalog/eval.h"
#include "datalog/fragment.h"
#include "reductions/thm6.h"

namespace mondet {
namespace {

TEST(Thm6, QueryIsMonadic) {
  Thm6Gadget gadget = BuildThm6(SolvableTilingProblem());
  EXPECT_TRUE(IsMonadic(gadget.query.program));
}

TEST(Thm6, ViewsAreUcqs) {
  Thm6Gadget gadget = BuildThm6(SolvableTilingProblem());
  for (const View& v : gadget.views.views()) {
    EXPECT_TRUE(IsNonRecursive(v.definition.program));
  }
}

TEST(Thm6, QueryHoldsOnAxes) {
  // The axes instance is an expansion of Qstart: Q is true on it.
  Thm6Gadget gadget = BuildThm6(SolvableTilingProblem());
  for (int n = 1; n <= 3; ++n) {
    Instance axes = gadget.MakeAxes(n, n);
    EXPECT_TRUE(DatalogHoldsOn(gadget.query, axes)) << n;
  }
}

TEST(Thm6, AxesImageHasGridOfSFacts) {
  Thm6Gadget gadget = BuildThm6(SolvableTilingProblem());
  Instance axes = gadget.MakeAxes(2, 3);
  Instance image = gadget.views.Image(axes);
  PredId s = kNoPred;
  for (const View& v : gadget.views.views()) {
    if (gadget.vocab->name(v.pred) == "S") s = v.pred;
  }
  ASSERT_NE(s, kNoPred);
  // S = C × D: 2 * 3 facts (Figure 2(b)).
  EXPECT_EQ(image.NumRows(s), 6u);
}

TEST(Thm6, GridTestFalsifiesQueryIffTilingValid) {
  TilingProblem tp = SolvableTilingProblem();
  Thm6Gadget gadget = BuildThm6(tp);
  auto solution = tp.Solve(2, 2);
  ASSERT_TRUE(solution.has_value());
  Instance good = gadget.MakeGridTest(2, 2, *solution);
  // A valid tiling: no Qverify disjunct fires, Qstart/Qhelper can't (no
  // C/D facts): the test FAILS the query — monotonic determinacy broken.
  EXPECT_FALSE(DatalogHoldsOn(gadget.query, good));

  // An invalid tiling (break the initial-tile constraint) re-fires Q.
  std::vector<int> bad = *solution;
  bad[0] = tp.initial.empty() ? 0 : (bad[0] + 1) % tp.num_tiles;
  if (!tp.IsInitial(bad[0])) {
    Instance broken = gadget.MakeGridTest(2, 2, bad);
    EXPECT_TRUE(DatalogHoldsOn(gadget.query, broken));
  }
}

TEST(Thm6, Prop10SolvableTilingRefutesMonDet) {
  // TP has a solution ⇒ Q_TP is NOT monotonically determined by V_TP;
  // the canonical-test enumerator finds the grid counterexample.
  TilingProblem tp = SolvableTilingProblem();
  Thm6Gadget gadget = BuildThm6(tp);
  MonDetOptions options;
  options.query_depth = 5;  // axes up to 2x2 grids
  options.view_depth = 3;
  options.max_query_expansions = 60;
  options.max_tests_per_expansion = 5000;
  MonDetResult result =
      CheckMonotonicDeterminacy(gadget.query, gadget.views, options);
  EXPECT_EQ(result.verdict, Verdict::kNotDetermined);
  ASSERT_TRUE(result.failure.has_value());
  // The failing D' does not satisfy Q (it is a correctly tiled grid).
  EXPECT_FALSE(DatalogHoldsOn(gadget.query, result.failure->dprime));
}

TEST(Thm6, Prop10UnsolvableTilingPassesBoundedTests) {
  TilingProblem tp = UnsolvableTilingProblem();
  Thm6Gadget gadget = BuildThm6(tp);
  MonDetOptions options;
  options.query_depth = 5;
  options.view_depth = 3;
  options.max_query_expansions = 60;
  options.max_tests_per_expansion = 5000;
  MonDetResult result =
      CheckMonotonicDeterminacy(gadget.query, gadget.views, options);
  // No failing test exists at all (Prop. 10); the bounded enumerator can
  // only certify "no counterexample up to the bounds".
  EXPECT_NE(result.verdict, Verdict::kNotDetermined);
  EXPECT_GT(result.tests_run, 0u);
}

}  // namespace
}  // namespace mondet
