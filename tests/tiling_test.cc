#include <gtest/gtest.h>

#include "base/homomorphism.h"
#include "games/pebble.h"
#include "reductions/lemma6.h"
#include "reductions/tiling.h"

namespace mondet {
namespace {

TEST(Tiling, SolvableProblemSolves) {
  TilingProblem tp = SolvableTilingProblem();
  auto solution = tp.Solve(3, 3);
  ASSERT_TRUE(solution.has_value());
  // Verify constraints by hand.
  auto at = [&](int i, int j) { return (*solution)[(j - 1) * 3 + (i - 1)]; };
  EXPECT_TRUE(tp.IsInitial(at(1, 1)));
  EXPECT_TRUE(tp.IsFinal(at(3, 3)));
  for (int j = 1; j <= 3; ++j) {
    for (int i = 1; i < 3; ++i) {
      EXPECT_TRUE(tp.HcAllows(at(i, j), at(i + 1, j)));
    }
  }
  for (int j = 1; j < 3; ++j) {
    for (int i = 1; i <= 3; ++i) {
      EXPECT_TRUE(tp.VcAllows(at(i, j), at(i, j + 1)));
    }
  }
}

TEST(Tiling, UnsolvableProblemFails) {
  TilingProblem tp = UnsolvableTilingProblem();
  EXPECT_FALSE(tp.HasSolutionUpTo(3, 3));
}

TEST(Tiling, GridInstanceShape) {
  auto vocab = MakeVocabulary();
  DeltaSchema schema = DeltaSchema::Create(vocab);
  Instance grid = GridInstance(3, 2, vocab, schema);
  EXPECT_EQ(grid.num_elements(), 6u);
  // H edges: 2 per row * 2 rows; V edges: 3 per column-step * 1.
  EXPECT_EQ(grid.NumRows(schema.h), 4u);
  EXPECT_EQ(grid.NumRows(schema.v), 3u);
  EXPECT_EQ(grid.NumRows(schema.i), 1u);
  EXPECT_EQ(grid.NumRows(schema.f), 1u);
}

TEST(Tiling, TilabilityMatchesHomomorphism) {
  auto vocab = MakeVocabulary();
  DeltaSchema schema = DeltaSchema::Create(vocab);
  TilingProblem solvable = SolvableTilingProblem();
  Instance grid = GridInstance(3, 3, vocab, schema);
  EXPECT_TRUE(CanBeTiled(grid, solvable, schema));
  EXPECT_EQ(CanBeTiled(grid, solvable, schema),
            solvable.Solve(3, 3).has_value());
  TilingProblem unsolvable = UnsolvableTilingProblem();
  EXPECT_FALSE(CanBeTiled(grid, unsolvable, schema));
}

TEST(Lemma6, ParityProblemShape) {
  TilingProblem tp = MakeParityTilingProblem();
  // 4 corners with 2 tiles, 4 edge-midpoints with 4, center with 8.
  EXPECT_EQ(tp.num_tiles, 32);
  EXPECT_FALSE(tp.initial.empty());
  EXPECT_FALSE(tp.final_tiles.empty());
  for (int t : tp.initial) {
    EXPECT_EQ(ParityTileAbstractPoint(t), std::make_pair(1, 1));
  }
  for (int t : tp.final_tiles) {
    EXPECT_EQ(ParityTileAbstractPoint(t), std::make_pair(3, 3));
  }
}

TEST(Lemma6, NoGridCanBeTiled) {
  TilingProblem tp = MakeParityTilingProblem();
  auto vocab = MakeVocabulary();
  DeltaSchema schema = DeltaSchema::Create(vocab);
  for (int n = 1; n <= 4; ++n) {
    for (int m = 1; m <= 4; ++m) {
      Instance grid = GridInstance(n, m, vocab, schema);
      EXPECT_FALSE(CanBeTiled(grid, tp, schema)) << n << "x" << m;
    }
  }
}

TEST(Lemma6, GridsAreKApproximatelyTileable) {
  // I^grid_{n,m} →k I_TP* for 2 <= k < min{n,m}: the Duplicator wins the
  // existential k-pebble game.
  TilingProblem tp = MakeParityTilingProblem();
  auto vocab = MakeVocabulary();
  DeltaSchema schema = DeltaSchema::Create(vocab);
  Instance target = TilingProblemAsInstance(tp, vocab, schema);
  Instance grid = GridInstance(3, 3, vocab, schema);
  EXPECT_TRUE(DuplicatorWins(grid, target, 2));
  // And of course there is no homomorphism (no tiling).
  EXPECT_FALSE(HasHomomorphism(grid, target));
}

}  // namespace
}  // namespace mondet
