#include <gtest/gtest.h>

#include "cq/containment.h"
#include "cq/cq.h"
#include "cq/ucq.h"
#include "datalog/parser.h"
#include "tests/test_util.h"

namespace mondet {
namespace {

CQ MustParseCq(const std::string& text, const VocabularyPtr& vocab) {
  std::string error;
  auto cq = ParseCq(text, vocab, &error);
  EXPECT_TRUE(cq.has_value()) << error;
  return *cq;
}

TEST(Cq, CanonicalDatabase) {
  auto vocab = MakeVocabulary();
  CQ cq = MustParseCq("Q(x) :- R(x,y), R(y,x).", vocab);
  Instance canon = cq.CanonicalDb();
  EXPECT_EQ(canon.num_elements(), 2u);
  EXPECT_EQ(canon.num_facts(), 2u);
}

TEST(Cq, EvaluatePath) {
  auto vocab = MakeVocabulary();
  CQ cq = MustParseCq("Q(x,z) :- R(x,y), R(y,z).", vocab);
  PredId r = *vocab->FindPredicate("R");
  Instance path = MakePath(vocab, r, 3);  // 0->1->2->3
  auto out = cq.Evaluate(path);
  EXPECT_EQ(out.size(), 2u);  // (0,2), (1,3)
  EXPECT_TRUE(out.count({0, 2}));
  EXPECT_TRUE(out.count({1, 3}));
  EXPECT_TRUE(cq.HoldsOn(path, {0, 2}));
  EXPECT_FALSE(cq.HoldsOn(path, {0, 3}));
}

TEST(Cq, BooleanEvaluation) {
  auto vocab = MakeVocabulary();
  CQ cq = MustParseCq("Q() :- R(x,x).", vocab);
  PredId r = *vocab->FindPredicate("R");
  Instance path = MakePath(vocab, r, 2);
  EXPECT_FALSE(cq.HoldsOn(path));
  Instance loop = MakeCycle(vocab, r, 1);
  EXPECT_TRUE(cq.HoldsOn(loop));
}

TEST(Cq, RadiusAndConnectivity) {
  auto vocab = MakeVocabulary();
  CQ path2 = MustParseCq("Q() :- R(x,y), R(y,z).", vocab);
  EXPECT_EQ(path2.Radius(), 1);
  EXPECT_TRUE(path2.IsConnected());
  CQ disconnected = MustParseCq("Q() :- R(x,y), R(u,v).", vocab);
  EXPECT_FALSE(disconnected.IsConnected());
  EXPECT_EQ(disconnected.Radius(), -1);
}

TEST(CqContainment, PathsContainLongerPaths) {
  auto vocab = MakeVocabulary();
  CQ p2 = MustParseCq("Q(x) :- R(x,y), R(y,z).", vocab);
  CQ p1 = MustParseCq("Q(x) :- R(x,y).", vocab);
  // Longer path is contained in shorter one.
  EXPECT_TRUE(CqContained(p2, p1));
  EXPECT_FALSE(CqContained(p1, p2));
}

TEST(CqContainment, FreeVariablesMatter) {
  auto vocab = MakeVocabulary();
  CQ qx = MustParseCq("Q(x) :- R(x,y).", vocab);
  CQ qy = MustParseCq("Q(y) :- R(x,y).", vocab);
  EXPECT_FALSE(CqContained(qx, qy));
  EXPECT_FALSE(CqContained(qy, qx));
}

TEST(CqContainment, EquivalenceUpToRedundantAtoms) {
  auto vocab = MakeVocabulary();
  CQ q1 = MustParseCq("Q(x) :- R(x,y).", vocab);
  CQ q2 = MustParseCq("Q(x) :- R(x,y), R(x,z).", vocab);
  EXPECT_TRUE(CqEquivalent(q1, q2));
}

TEST(CqContainment, TrivialBooleanQuery) {
  auto vocab = MakeVocabulary();
  vocab->AddPredicate("R", 2);
  CQ trivial(vocab);  // empty body, Boolean
  CQ q = MustParseCq("Q() :- R(x,y).", vocab);
  EXPECT_TRUE(CqContained(q, trivial));
  EXPECT_FALSE(CqContained(trivial, q));
}

TEST(CqCore, FoldsRedundantAtoms) {
  auto vocab = MakeVocabulary();
  CQ q = MustParseCq("Q(x) :- R(x,y), R(x,z), R(x,w).", vocab);
  CQ core = CqCore(q);
  EXPECT_EQ(core.atoms().size(), 1u);
  EXPECT_TRUE(CqEquivalent(q, core));
}

TEST(CqCore, KeepsNonRedundantStructure) {
  auto vocab = MakeVocabulary();
  CQ q = MustParseCq("Q() :- R(x,y), R(y,z).", vocab);
  CQ core = CqCore(q);
  EXPECT_EQ(core.atoms().size(), 2u);
  EXPECT_TRUE(CqEquivalent(q, core));
}

TEST(CqCore, CollapsesHomEquivalentCycle) {
  auto vocab = MakeVocabulary();
  // A 2-cycle with a pendant path folds into the 2-cycle... the pendant
  // can be retracted into the cycle.
  CQ q = MustParseCq("Q() :- R(x,y), R(y,x), R(y,z), R(z,w).", vocab);
  CQ core = CqCore(q);
  EXPECT_EQ(core.atoms().size(), 2u);
  EXPECT_TRUE(CqEquivalent(q, core));
}

TEST(Ucq, EvaluateUnion) {
  auto vocab = MakeVocabulary();
  std::string error;
  auto ucq = ParseUcq("Q(x) :- R(x,y).\nQ(x) :- S(x).", vocab, &error);
  ASSERT_TRUE(ucq.has_value()) << error;
  PredId r = *vocab->FindPredicate("R");
  PredId s = *vocab->FindPredicate("S");
  Instance inst(vocab);
  ElemId a = inst.AddElement();
  ElemId b = inst.AddElement();
  ElemId c = inst.AddElement();
  inst.AddFact(r, {a, b});
  inst.AddFact(s, {c});
  auto out = ucq->Evaluate(inst);
  EXPECT_EQ(out.size(), 2u);
  EXPECT_TRUE(out.count({a}));
  EXPECT_TRUE(out.count({c}));
}

TEST(UcqContainment, SagivYannakakis) {
  auto vocab = MakeVocabulary();
  std::string error;
  auto u1 = ParseUcq("Q() :- R(x,y), R(y,z).", vocab, &error);
  auto u2 = ParseUcq("Q() :- R(x,y).\nQ() :- S(x).", vocab, &error);
  ASSERT_TRUE(u1 && u2);
  EXPECT_TRUE(UcqContained(*u1, *u2));
  EXPECT_FALSE(UcqContained(*u2, *u1));
}

TEST(UcqContainment, DisjunctsCoveredIndividually) {
  auto vocab = MakeVocabulary();
  std::string error;
  auto u1 = ParseUcq("Q() :- R(x,x).\nQ() :- S(x).", vocab, &error);
  auto u2 = ParseUcq("Q() :- R(x,y).\nQ() :- S(z).", vocab, &error);
  ASSERT_TRUE(u1 && u2);
  EXPECT_TRUE(UcqContained(*u1, *u2));
  EXPECT_TRUE(UcqEquivalent(*u1, *u1));
}

}  // namespace
}  // namespace mondet
