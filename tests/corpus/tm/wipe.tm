# Linear wiper: scan right erasing 1s, accept at the first blank.
states 2
symbols 2
start 0
accept 1
0 1 -> 0 0 R
0 0 -> 1 0 S
