# Zigzag: run to the right end, return to the left end, accept at
# the left blank — the minimal machine using both head directions.
states 3
symbols 2
start 0
accept 2
0 1 -> 0 1 R
0 0 -> 1 0 L
1 1 -> 1 1 L
1 0 -> 2 0 S
