# Parity scanner: alternate even/odd states moving right over 1s,
# accept at the right blank (always halts; the parity is the
# payload of the run string).
states 3
symbols 2
start 0
accept 2
0 1 -> 1 1 R
0 0 -> 2 0 S
1 1 -> 0 1 R
1 0 -> 2 0 S
