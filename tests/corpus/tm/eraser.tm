# Quadratic-time eraser: repeatedly erase the rightmost 1 and return
# to the left end; accept when no 1 remains (Thm 9's theta(n^2)
# machine — must match reductions/thm9's EraserMachine()).
states 4
symbols 2
start 0
accept 3
0 1 -> 0 1 R
0 0 -> 1 0 L
1 1 -> 2 0 L
1 0 -> 3 0 S
2 1 -> 2 1 L
2 0 -> 0 0 R
