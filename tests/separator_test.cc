#include <gtest/gtest.h>

#include "core/separator.h"
#include "datalog/eval.h"
#include "datalog/parser.h"
#include "tests/test_util.h"

namespace mondet {
namespace {

DatalogQuery MustParseQuery(const std::string& text, const std::string& goal,
                            const VocabularyPtr& vocab) {
  std::string error;
  std::vector<Diagnostic> diags;
  auto q = ParseQuery(text, goal, vocab, &diags);
  EXPECT_TRUE(q.has_value()) << FormatDiagnostics(diags);
  return *q;
}

struct ReachSetup {
  VocabularyPtr vocab = MakeVocabulary();
  DatalogQuery query;
  ViewSet views;
  PredId r, u;

  ReachSetup()
      : query(MustParseQuery(R"(
          P(x) :- U(x).
          P(x) :- R(x,y), P(y).
          Goal() :- P(x).
        )",
                             "Goal", vocab)),
        views(vocab),
        r(*vocab->FindPredicate("R")),
        u(*vocab->FindPredicate("U")) {
    views.AddAtomicView("VR", r);
    views.AddAtomicView("VU", u);
  }
};

TEST(NpSeparator, AcceptsTrueImages) {
  ReachSetup setup;
  Instance inst = MakePath(setup.vocab, setup.r, 3);
  inst.AddFact(setup.u, {3});
  EXPECT_TRUE(DatalogHoldsOn(setup.query, inst));
  Instance image = setup.views.Image(inst);
  EXPECT_TRUE(NpSeparatorAccepts(setup.query, setup.views, image, 6));
}

TEST(NpSeparator, RejectsFalseImages) {
  ReachSetup setup;
  Instance inst = MakePath(setup.vocab, setup.r, 3);  // no U: query false
  Instance image = setup.views.Image(inst);
  EXPECT_FALSE(NpSeparatorAccepts(setup.query, setup.views, image, 6));
}

TEST(NpSeparator, QuotientsMatter) {
  // Query true only on a cycle: the expansion is a long path; only its
  // quotient maps into the cyclic image.
  auto vocab = MakeVocabulary();
  DatalogQuery q = MustParseQuery(R"(
    P(x) :- U(x).
    P(x) :- R(x,y), P(y).
    Goal() :- P(x).
  )",
                                  "Goal", vocab);
  ViewSet views(vocab);
  PredId r = *vocab->FindPredicate("R");
  PredId u = *vocab->FindPredicate("U");
  views.AddAtomicView("VR", r);
  views.AddAtomicView("VU", u);
  Instance cycle = MakeCycle(vocab, r, 3);
  cycle.AddFact(u, {0});
  Instance image = views.Image(cycle);
  EXPECT_TRUE(NpSeparatorAccepts(q, views, image, 4));
}

TEST(ChaseSeparator, CqViewsCertainAnswerSeparator) {
  ReachSetup setup;
  Instance yes = MakePath(setup.vocab, setup.r, 2);
  yes.AddFact(setup.u, {2});
  EXPECT_TRUE(
      ChaseSeparatorAccepts(setup.query, setup.views, setup.views.Image(yes), 3));
  Instance no = MakePath(setup.vocab, setup.r, 2);
  EXPECT_FALSE(
      ChaseSeparatorAccepts(setup.query, setup.views, setup.views.Image(no), 3));
}

TEST(ChaseSeparator, UcqViewChoicesAreConjunctive) {
  // A UCQ view with two disjuncts: certain acceptance requires Q to hold
  // under EVERY inverse choice.
  auto vocab = MakeVocabulary();
  DatalogQuery q = MustParseQuery("Q() :- U(x).", "Q", vocab);
  std::string error;
  ParseResult def = ParseProgram("V(x) :- U(x).\nV(x) :- M(x).", vocab);
  ASSERT_TRUE(def.ok());
  ViewSet views(vocab);
  PredId v = views.AddView("V", DatalogQuery(std::move(*def.program),
                                             *vocab->FindPredicate("V")));
  Instance j(vocab);
  ElemId a = j.AddElement();
  j.AddFact(v, {a});
  // V(a) could come from U(a) or M(a): Q is not certain.
  EXPECT_FALSE(ChaseSeparatorAccepts(q, views, j, 3));
  // A query satisfied under both choices is certain.
  DatalogQuery q2 = MustParseQuery("Q2() :- U(x).\nQ2() :- M(x).", "Q2", vocab);
  EXPECT_TRUE(ChaseSeparatorAccepts(q2, views, j, 3));
}

TEST(Separators, AgreeOnViewImages) {
  // On actual view images of small instances the NP- and chase-separators
  // agree with the query (they are separators).
  ReachSetup setup;
  for (unsigned seed = 0; seed < 15; ++seed) {
    Instance inst =
        RandomInstance(setup.vocab, {setup.r, setup.u}, 4, 6, 520 + seed);
    Instance image = setup.views.Image(inst);
    bool truth = DatalogHoldsOn(setup.query, inst);
    EXPECT_EQ(truth, NpSeparatorAccepts(setup.query, setup.views, image, 8))
        << "seed " << seed;
    EXPECT_EQ(truth,
              ChaseSeparatorAccepts(setup.query, setup.views, image, 3))
        << "seed " << seed;
  }
}

}  // namespace
}  // namespace mondet
