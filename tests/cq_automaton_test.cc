#include <gtest/gtest.h>

#include <functional>

#include "core/cq_automaton.h"
#include "core/forward.h"
#include "core/mondet_check.h"
#include "datalog/parser.h"
#include "datalog/eval.h"
#include "tests/test_util.h"
#include "tree/code.h"
#include "tree/decompose.h"

namespace mondet {
namespace {

/// Runs the CQ DP over a concrete code bottom-up.
bool DpAccepts(CqMatchAutomaton& dp, const TreeCode& code) {
  std::vector<uint32_t> state(code.nodes.size());
  std::function<void(int)> visit = [&](int u) {
    const CodeNode& node = code.nodes[u];
    for (int c : node.children) visit(c);
    NodeLabel label(node.atoms.begin(), node.atoms.end());
    if (node.children.empty()) {
      state[u] = dp.Leaf(label);
    } else if (node.children.size() == 1) {
      state[u] = dp.Unary(state[node.children[0]], label, node.edge_labels[0]);
    } else {
      state[u] = dp.Binary(state[node.children[0]], state[node.children[1]],
                           label, node.edge_labels[0], node.edge_labels[1]);
    }
  };
  visit(0);
  return dp.Accepting(state[0]);
}

/// DP agrees with direct evaluation on the decoded instance.
void ExpectDpMatchesEvaluation(const CQ& cq, const Instance& inst) {
  TreeDecomposition td = Binarize(DecomposeMinFill(inst));
  TreeCode code = EncodeInstance(inst, td, td.width());
  CqMatchAutomaton dp(cq, td.width());
  EXPECT_EQ(DpAccepts(dp, code), cq.HoldsOn(inst)) << inst.DebugString();
}

TEST(CqAutomaton, PathQueries) {
  auto vocab = MakeVocabulary();
  std::string error;
  CQ path2 = *ParseCq("Q() :- R(x,y), R(y,z).", vocab, &error);
  PredId r = *vocab->FindPredicate("R");
  ExpectDpMatchesEvaluation(path2, MakePath(vocab, r, 1));  // false
  ExpectDpMatchesEvaluation(path2, MakePath(vocab, r, 2));  // true
  ExpectDpMatchesEvaluation(path2, MakePath(vocab, r, 7));  // true
}

TEST(CqAutomaton, LoopQuery) {
  auto vocab = MakeVocabulary();
  std::string error;
  CQ loop = *ParseCq("Q() :- R(x,x).", vocab, &error);
  PredId r = *vocab->FindPredicate("R");
  ExpectDpMatchesEvaluation(loop, MakePath(vocab, r, 4));
  Instance with_loop = MakePath(vocab, r, 2);
  with_loop.AddFact(r, {1, 1});
  ExpectDpMatchesEvaluation(loop, with_loop);
}

TEST(CqAutomaton, CrossBagJoins) {
  // Variables shared between atoms witnessed in different bags.
  auto vocab = MakeVocabulary();
  std::string error;
  CQ fork = *ParseCq("Q() :- R(x,y), R(x,z), U(y), M(z).", vocab, &error);
  PredId r = *vocab->FindPredicate("R");
  PredId u = *vocab->FindPredicate("U");
  PredId m = *vocab->FindPredicate("M");
  Instance inst(vocab);
  ElemId a = inst.AddElement();
  ElemId b = inst.AddElement();
  ElemId c = inst.AddElement();
  inst.AddFact(r, {a, b});
  inst.AddFact(r, {a, c});
  inst.AddFact(u, {b});
  inst.AddFact(m, {c});
  ExpectDpMatchesEvaluation(fork, inst);
  // Remove M: query now false.
  Instance inst2(vocab);
  inst2.EnsureElements(3);
  inst2.AddFact(r, {a, b});
  inst2.AddFact(r, {a, c});
  inst2.AddFact(u, {b});
  ExpectDpMatchesEvaluation(fork, inst2);
}

TEST(CqAutomaton, TrivialQueryAlwaysAccepts) {
  auto vocab = MakeVocabulary();
  PredId r = vocab->AddPredicate("R", 2);
  CQ trivial(vocab);
  ExpectDpMatchesEvaluation(trivial, MakePath(vocab, r, 2));
}

TEST(CqAutomatonProperty, RandomInstancesAgree) {
  auto vocab = MakeVocabulary();
  std::string error;
  std::vector<CQ> queries;
  queries.push_back(*ParseCq("Q() :- R(x,y), R(y,x).", vocab, &error));
  queries.push_back(*ParseCq("Q() :- R(x,y), U(x), U(y).", vocab, &error));
  queries.push_back(*ParseCq("Q() :- R(x,y), R(y,z), R(z,x).", vocab, &error));
  PredId r = *vocab->FindPredicate("R");
  PredId u = *vocab->FindPredicate("U");
  for (unsigned seed = 0; seed < 25; ++seed) {
    Instance inst = RandomInstance(vocab, {r, u}, 5, 8, 300 + seed);
    for (CQ& cq : queries) {
      ExpectDpMatchesEvaluation(cq, inst);
    }
  }
}

TEST(Containment, DatalogInCq) {
  auto vocab = MakeVocabulary();
  std::string error;
  std::vector<Diagnostic> diags;
  // Reach-query whose every expansion ends with U: contained in ∃x U(x).
  auto q = ParseQuery(R"(
    P(x) :- U(x).
    P(x) :- R(x,y), P(y).
    Goal() :- P(x).
  )",
                      "Goal", vocab, &diags);
  ASSERT_TRUE(q) << FormatDiagnostics(diags);
  UCQ has_u(vocab);
  has_u.AddDisjunct(*ParseCq("C() :- U(x).", vocab, &error));
  ContainmentResult result = DatalogContainedInUcq(*q, has_u);
  EXPECT_TRUE(result.contained);

  // Not contained in ∃x R(x,x) — the base expansion has no R at all.
  UCQ has_loop(vocab);
  has_loop.AddDisjunct(*ParseCq("C() :- R(x,x).", vocab, &error));
  ContainmentResult neg = DatalogContainedInUcq(*q, has_loop);
  EXPECT_FALSE(neg.contained);
  ASSERT_TRUE(neg.counterexample.has_value());
  // The counterexample decodes to an expansion violating the CQ.
  Instance decoded = neg.counterexample->Decode(vocab);
  EXPECT_FALSE(has_loop.HoldsOn(decoded));
  EXPECT_TRUE(DatalogHoldsOn(*q, decoded));
}

TEST(Containment, DatalogInUcqMultiDisjunct) {
  auto vocab = MakeVocabulary();
  std::string error;
  std::vector<Diagnostic> diags;
  auto q = ParseQuery(R"(
    P(x) :- U(x).
    P(x) :- R(x,y), P(y).
    Goal() :- P(x).
  )",
                      "Goal", vocab, &diags);
  ASSERT_TRUE(q) << FormatDiagnostics(diags);
  // Every expansion either is a bare U or contains an R-edge.
  UCQ cover(vocab);
  cover.AddDisjunct(*ParseCq("C() :- R(x,y).", vocab, &error));
  cover.AddDisjunct(*ParseCq("C() :- U(x).", vocab, &error));
  EXPECT_TRUE(DatalogContainedInUcq(*q, cover).contained);
  // But not every expansion has two R-edges or a bare U... the singleton
  // R-chain of length one is a counterexample.
  UCQ wrong(vocab);
  wrong.AddDisjunct(*ParseCq("C() :- R(x,y), R(y,z).", vocab, &error));
  EXPECT_FALSE(DatalogContainedInUcq(*q, wrong).contained);
}

}  // namespace
}  // namespace mondet
