#include <gtest/gtest.h>

#include "core/mondet_check.h"
#include "datalog/eval.h"
#include "reductions/thm9.h"

namespace mondet {
namespace {

TEST(TuringMachine, EraserRunsQuadratically) {
  TuringMachine tm = EraserMachine();
  auto t1 = tm.Run({1}, 1000);
  auto t3 = tm.Run({1, 1, 1}, 1000);
  ASSERT_TRUE(t1 && t3);
  EXPECT_LT(t1->size(), t3->size());
  EXPECT_EQ(t3->back().state, tm.accept);
  // Quadratic growth: steps(6) / steps(3) ≈ 4.
  auto t6 = tm.Run({1, 1, 1, 1, 1, 1}, 5000);
  ASSERT_TRUE(t6);
  EXPECT_GT(t6->size(), 2 * t3->size());
}

TEST(TuringMachine, EmptyInputAcceptsQuickly) {
  TuringMachine tm = EraserMachine();
  auto trace = tm.Run({}, 100);
  ASSERT_TRUE(trace);
  EXPECT_EQ(trace->back().state, tm.accept);
}

class Thm9Test : public ::testing::Test {
 protected:
  Thm9Test() : gadget_(BuildThm9(EraserMachine())) {}
  Thm9Gadget gadget_;
};

TEST_F(Thm9Test, QueryTrueOnAcceptingRun) {
  Instance run = gadget_.EncodeRun({1, 1}, 1000);
  // The run is well-shaped and accepting: Q fires on the accept state.
  EXPECT_TRUE(DatalogHoldsOn(gadget_.query, run));
}

TEST_F(Thm9Test, BadViewFalseOnValidRun) {
  Instance run = gadget_.EncodeRun({1, 1}, 1000);
  Instance image = gadget_.views.Image(run);
  PredId vbad = kNoPred;
  for (const View& v : gadget_.views.views()) {
    if (gadget_.vocab->name(v.pred) == "VBad") vbad = v.pred;
  }
  ASSERT_NE(vbad, kNoPred);
  EXPECT_TRUE(image.NumRows(vbad) == 0);
}

TEST_F(Thm9Test, CorruptionDetected) {
  Instance corrupted = gadget_.EncodeCorruptedRun({1, 1}, 1000);
  // The corrupted run violates a determinism window: both the query and
  // the VBad view fire.
  EXPECT_TRUE(DatalogHoldsOn(gadget_.query, corrupted));
  Instance image = gadget_.views.Image(corrupted);
  PredId vbad = kNoPred;
  for (const View& v : gadget_.views.views()) {
    if (gadget_.vocab->name(v.pred) == "VBad") vbad = v.pred;
  }
  EXPECT_FALSE(image.NumRows(vbad) == 0);
}

TEST_F(Thm9Test, PreRunViewSeesCompletedRuns) {
  Instance run = gadget_.EncodeRun({1}, 1000);
  Instance image = gadget_.views.Image(run);
  PredId vpre = kNoPred;
  for (const View& v : gadget_.views.views()) {
    if (gadget_.vocab->name(v.pred) == "VPreRun") vpre = v.pred;
  }
  ASSERT_NE(vpre, kNoPred);
  EXPECT_EQ(image.NumRows(vpre), 1u);
}

TEST_F(Thm9Test, TruncatedRunNotAccepted) {
  // Cut the run before the accept configuration: the query is false
  // (no corruption, no accept state).
  Instance run = gadget_.EncodeRun({1}, 1000);
  // Rebuild without the accepting configuration's cells: drop every fact
  // mentioning the accept-state labels AND the final RunEnd... simpler:
  // encode manually a prefix by truncating after the first separator.
  Instance prefix(gadget_.vocab);
  prefix.EnsureElements(run.num_elements());
  PredId accept0 = gadget_.cell[gadget_.machine.accept + 1][0];
  PredId accept1 = gadget_.cell[gadget_.machine.accept + 1][1];
  for (const Fact& f : run.AllFacts()) {
    if (f.pred == accept0 || f.pred == accept1) continue;
    prefix.AddFact(f);
  }
  // Dropping the accept cell leaves a hole: the adjacency detector
  // notices a cell followed by nothing wrong? No — holes are invisible
  // to positive rules, so the query is FALSE on the prefix.
  EXPECT_FALSE(DatalogHoldsOn(gadget_.query, prefix));
}

TEST_F(Thm9Test, MonotonicallyDeterminedOnSamples) {
  // Spot-check monotonic determinacy: bounded canonical tests find no
  // counterexample (the construction is determined because the machine
  // is deterministic).
  MonDetOptions options;
  options.query_depth = 2;
  options.view_depth = 2;
  options.max_query_expansions = 8;
  options.max_tests_per_expansion = 40;
  MonDetResult result =
      CheckMonotonicDeterminacy(gadget_.query, gadget_.views, options);
  EXPECT_NE(result.verdict, Verdict::kNotDetermined);
}

}  // namespace
}  // namespace mondet
