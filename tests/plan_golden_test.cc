// Golden regression tests for CompiledProgram::DescribePlansText on the
// paper's two running examples: the Fig. 4 row-family query (the Thm 7
// inverse-rules rewriting) and the Fig. 1 grid/tiling query (Thm 6).
// Each is pinned twice: the compile-time (static) orders, and the orders
// after binding statistics collected from a concrete instance. A diff
// here means the planner changed its mind — update the goldens only after
// confirming the new orders are intentional (plan_differential_test and
// the Fig. 4 benchmark are the semantic/perf gates).

#include <gtest/gtest.h>

#include "base/stats.h"
#include "datalog/eval_plan.h"
#include "reductions/thm6.h"
#include "reductions/thm7.h"
#include "views/inverse_rules.h"

namespace mondet {
namespace {

constexpr char kFig4Static[] =
    R"(rule 0 (M@S#0) full: S
rule 1 (A@S#1) full: S
rule 2 (C@S#2) full: S
rule 3 (B@R#0) full: R
rule 4 (D@R#1) full: R
rule 5 (A@R#2) full: R
rule 6 (C@R#3) full: R
rule 7 (U@T#0) full: T
rule 8 (B@T#1) full: T
rule 9 (D@T#2) full: T
rule 10 (W@[p]) full: A@S#1 B@T#1 C@S#2 D@T#2 U@T#0
rule 11 (W@[f[R.2]]) full: A@R#2 C@R#3 B@T#1 D@T#2 U@T#0
rule 12 (W@[p]) full: A@S#1 B@R#0 D@R#1 W@[f[R.2]] C@S#2
rule 12 (W@[p]) delta[4:W@[f[R.2]]]: B@R#0 D@R#1 A@S#1 C@S#2
rule 13 (W@[p]) full: A@S#1 B@T#1 C@S#2 D@T#2 W@[p]
rule 13 (W@[p]) delta[4:W@[p]]: B@T#1 A@S#1 C@S#2 D@T#2
rule 14 (W@[f[R.2]]) full: A@R#2 C@R#3 B@R#0 D@R#1 W@[f[R.2]]
rule 14 (W@[f[R.2]]) delta[4:W@[f[R.2]]]: B@R#0 D@R#1 A@R#2 C@R#3
rule 15 (W@[f[R.2]]) full: A@R#2 C@R#3 B@T#1 D@T#2 W@[p]
rule 15 (W@[f[R.2]]) delta[4:W@[p]]: B@T#1 A@R#2 C@R#3 D@T#2
rule 16 (Goal7@[]) full: W@[p] M@S#0
)";

constexpr char kFig4Stats[] =
    R"(rule 0 (M@S#0) full: S(~1)
rule 1 (A@S#1) full: S(~1)
rule 2 (C@S#2) full: S(~1)
rule 3 (B@R#0) full: R(~2)
rule 4 (D@R#1) full: R(~2)
rule 5 (A@R#2) full: R(~2)
rule 6 (C@R#3) full: R(~2)
rule 7 (U@T#0) full: T(~1)
rule 8 (B@T#1) full: T(~1)
rule 9 (D@T#2) full: T(~1)
rule 10 (W@[p]) full: A@S#1(~0) B@T#1(~0) C@S#2(~0) D@T#2(~0) U@T#0(~0)
rule 11 (W@[f[R.2]]) full: A@R#2(~0) B@T#1(~0) C@R#3(~0) D@T#2(~0) U@T#0(~0)
rule 12 (W@[p]) full: A@S#1(~0) B@R#0(~0) C@S#2(~0) D@R#1(~0) W@[f[R.2]](~0)
rule 12 (W@[p]) delta[4:W@[f[R.2]]]: A@S#1(~0) B@R#0(~0) C@S#2(~0) D@R#1(~0)
rule 13 (W@[p]) full: A@S#1(~0) B@T#1(~0) C@S#2(~0) D@T#2(~0) W@[p](~0)
rule 13 (W@[p]) delta[4:W@[p]]: B@T#1(~0) A@S#1(~0) C@S#2(~0) D@T#2(~0)
rule 14 (W@[f[R.2]]) full: A@R#2(~0) B@R#0(~0) C@R#3(~0) D@R#1(~0) W@[f[R.2]](~0)
rule 14 (W@[f[R.2]]) delta[4:W@[f[R.2]]]: A@R#2(~0) B@R#0(~0) C@R#3(~0) D@R#1(~0)
rule 15 (W@[f[R.2]]) full: A@R#2(~0) B@T#1(~0) C@R#3(~0) D@T#2(~0) W@[p](~0)
rule 15 (W@[f[R.2]]) delta[4:W@[p]]: B@T#1(~0) A@R#2(~0) C@R#3(~0) D@T#2(~0)
rule 16 (Goal7@[]) full: W@[p](~0) M@S#0(~0)
)";

constexpr char kFig1Static[] =
    R"(rule 0 (QTP) full: A B
rule 1 (A) full: XSucc C A
rule 1 (A) delta[1:A]: XSucc C
rule 2 (A) full: XSucc C XEnd
rule 3 (B) full: YSucc D B
rule 3 (B) delta[1:B]: YSucc D
rule 4 (B) full: YSucc D YEnd
rule 5 (QTP) full: C YProj XProj
rule 6 (QTP) full: D YProj XProj
rule 7 (QTP) full: YProj YProj XProj XProj XSucc T0 T0
rule 8 (QTP) full: YProj YProj XProj XProj XSucc T1 T1
rule 9 (QTP) full: YProj XProj XProj YProj YSucc T0 T0
rule 10 (QTP) full: YProj XProj XProj YProj YSucc T1 T1
rule 11 (QTP) full: YSucc YProj XSucc XProj T1
)";

constexpr char kFig1Stats[] =
    R"(rule 0 (QTP) full: A(~0) B(~0)
rule 1 (A) full: A(~0) C(~0) XSucc(~0)
rule 1 (A) delta[1:A]: C(~0) XSucc(~0)
rule 2 (A) full: C(~0) XSucc(~0) XEnd(~0)
rule 3 (B) full: B(~0) D(~0) YSucc(~0)
rule 3 (B) delta[1:B]: D(~0) YSucc(~0)
rule 4 (B) full: D(~0) YSucc(~0) YEnd(~0)
rule 5 (QTP) full: C(~0) YProj(~0) XProj(~0)
rule 6 (QTP) full: D(~0) YProj(~0) XProj(~0)
rule 7 (QTP) full: XSucc(~2) XProj(~4) YProj(~4) T0(~4) YProj(~8) XProj(~4) T0(~4)
rule 8 (QTP) full: XSucc(~2) XProj(~4) YProj(~4) T1(~4) YProj(~8) XProj(~4) T1(~4)
rule 9 (QTP) full: YSucc(~2) YProj(~4) XProj(~4) T0(~4) YProj(~8) XProj(~4) T0(~4)
rule 10 (QTP) full: YSucc(~2) YProj(~4) XProj(~4) T1(~4) YProj(~8) XProj(~4) T1(~4)
rule 11 (QTP) full: YSucc(~2) XSucc(~2) YProj(~4) XProj(~2) T1(~2)
)";

TEST(PlanGolden, Fig4RowFamilyRewriting) {
  Thm7Gadget g = BuildThm7();
  DatalogQuery rewriting = InverseRulesRewriting(g.query, g.views);
  CompiledProgram compiled(rewriting.program);
  EXPECT_EQ(compiled.DescribePlansText(), kFig4Static);

  compiled.BindStats(Stats::Collect(g.views.Image(g.DiamondChain(3))));
  EXPECT_EQ(compiled.DescribePlansText(), kFig4Stats);
}

TEST(PlanGolden, Fig1GridQuery) {
  TilingProblem tp = SolvableTilingProblem();
  Thm6Gadget g = BuildThm6(tp);
  CompiledProgram compiled(g.query.program);
  EXPECT_EQ(compiled.DescribePlansText(), kFig1Static);

  auto solution = tp.Solve(2, 2);
  ASSERT_TRUE(solution.has_value());
  compiled.BindStats(Stats::Collect(g.MakeGridTest(2, 2, *solution)));
  EXPECT_EQ(compiled.DescribePlansText(), kFig1Stats);
}

}  // namespace
}  // namespace mondet
