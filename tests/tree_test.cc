#include <gtest/gtest.h>

#include <cmath>

#include "base/homomorphism.h"
#include "cq/cq.h"
#include "datalog/parser.h"
#include "tests/test_util.h"
#include "tree/code.h"
#include "tree/decompose.h"
#include "tree/decomposition.h"
#include "views/view_set.h"

namespace mondet {
namespace {

TEST(Decompose, PathHasWidthTwo) {
  auto vocab = MakeVocabulary();
  PredId r = vocab->AddPredicate("R", 2);
  Instance path = MakePath(vocab, r, 6);
  TreeDecomposition td = DecomposeMinFill(path);
  EXPECT_TRUE(td.Validate(path));
  EXPECT_EQ(td.width(), 2);
}

TEST(Decompose, CycleHasWidthThree) {
  auto vocab = MakeVocabulary();
  PredId r = vocab->AddPredicate("R", 2);
  Instance cycle = MakeCycle(vocab, r, 6);
  TreeDecomposition td = DecomposeMinFill(cycle);
  EXPECT_TRUE(td.Validate(cycle));
  EXPECT_EQ(td.width(), 3);
  EXPECT_EQ(ExactTreewidth(cycle, 10), 3);
}

TEST(Decompose, TernaryFactsCovered) {
  auto vocab = MakeVocabulary();
  PredId t = vocab->AddPredicate("T", 3);
  Instance inst(vocab);
  ElemId a = inst.AddElement();
  ElemId b = inst.AddElement();
  ElemId c = inst.AddElement();
  ElemId d = inst.AddElement();
  inst.AddFact(t, {a, b, c});
  inst.AddFact(t, {b, c, d});
  TreeDecomposition td = DecomposeMinFill(inst);
  EXPECT_TRUE(td.Validate(inst));
  EXPECT_EQ(td.width(), 3);
}

TEST(Decompose, RandomInstancesValidate) {
  auto vocab = MakeVocabulary();
  PredId r = vocab->AddPredicate("R", 2);
  PredId t = vocab->AddPredicate("T", 3);
  for (unsigned seed = 0; seed < 15; ++seed) {
    Instance inst = RandomInstance(vocab, {r, t}, 6, 9, seed);
    TreeDecomposition td = DecomposeMinFill(inst);
    EXPECT_TRUE(td.Validate(inst)) << "seed " << seed;
    // Heuristic width upper-bounds the exact treewidth.
    EXPECT_GE(td.width(), ExactTreewidth(inst, td.width())) << "seed " << seed;
  }
}

TEST(Decomposition, BinarizePreservesValidityAndWidth) {
  auto vocab = MakeVocabulary();
  PredId r = vocab->AddPredicate("R", 2);
  // A star: one center with many leaves forces high outdegree.
  Instance star(vocab);
  ElemId center = star.AddElement();
  for (int i = 0; i < 6; ++i) {
    ElemId leaf = star.AddElement();
    star.AddFact(r, {center, leaf});
  }
  TreeDecomposition td = DecomposeMinFill(star);
  TreeDecomposition bin = Binarize(td);
  EXPECT_LE(bin.MaxOutdegree(), 2);
  EXPECT_TRUE(bin.Validate(star));
  EXPECT_EQ(bin.width(), td.width());
}

TEST(Decomposition, GridTreewidth) {
  auto vocab = MakeVocabulary();
  PredId r = vocab->AddPredicate("R", 2);
  // 3x3 grid graph: treewidth 3 + 1 = 4 bags at most (max bag size = 4).
  Instance grid(vocab);
  std::vector<std::vector<ElemId>> g(3, std::vector<ElemId>(3));
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) g[i][j] = grid.AddElement();
  }
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) {
      if (i + 1 < 3) grid.AddFact(r, {g[i][j], g[i + 1][j]});
      if (j + 1 < 3) grid.AddFact(r, {g[i][j], g[i][j + 1]});
    }
  }
  EXPECT_EQ(ExactTreewidth(grid, 9), 4);
}

TEST(Code, EncodeDecodeRoundTrip) {
  auto vocab = MakeVocabulary();
  PredId r = vocab->AddPredicate("R", 2);
  PredId u = vocab->AddPredicate("U", 1);
  Instance inst = MakePath(vocab, r, 5);
  inst.AddFact(u, {3});
  TreeDecomposition td = Binarize(DecomposeMinFill(inst));
  TreeCode code = EncodeInstance(inst, td, td.width());
  EXPECT_TRUE(code.Validate());
  Instance decoded = code.Decode(vocab);
  // Decoding is isomorphic to the original: hom-equivalent with equal
  // fact and active-element counts.
  EXPECT_EQ(decoded.num_facts(), inst.num_facts());
  EXPECT_EQ(decoded.ActiveDomain().size(), inst.ActiveDomain().size());
  EXPECT_TRUE(HomEquivalent(decoded, inst));
}

TEST(Code, RoundTripOnRandomInstances) {
  auto vocab = MakeVocabulary();
  PredId r = vocab->AddPredicate("R", 2);
  PredId t = vocab->AddPredicate("T", 3);
  for (unsigned seed = 0; seed < 10; ++seed) {
    Instance inst = RandomInstance(vocab, {r, t}, 5, 8, 40 + seed);
    TreeDecomposition td = Binarize(DecomposeMinFill(inst));
    TreeCode code = EncodeInstance(inst, td, td.width());
    ASSERT_TRUE(code.Validate()) << "seed " << seed;
    Instance decoded = code.Decode(vocab);
    EXPECT_EQ(decoded.num_facts(), inst.num_facts()) << "seed " << seed;
    EXPECT_TRUE(HomEquivalent(decoded, inst)) << "seed " << seed;
  }
}

TEST(Code, WiderCodePadsPositions) {
  auto vocab = MakeVocabulary();
  PredId r = vocab->AddPredicate("R", 2);
  Instance path = MakePath(vocab, r, 3);
  TreeDecomposition td = Binarize(DecomposeMinFill(path));
  TreeCode code = EncodeInstance(path, td, td.width() + 3);
  EXPECT_TRUE(code.Validate());
  Instance decoded = code.Decode(vocab);
  EXPECT_TRUE(HomEquivalent(decoded, path));
}

TEST(ExtendDecomposition, Lemma3BoundHolds) {
  // Lemma 3: applying connected CQ views of radius r to an instance with
  // a width-k, l<=2 decomposition gives treewidth <= k(k^{r+1}-1)/(k-1).
  auto vocab = MakeVocabulary();
  PredId r = vocab->AddPredicate("R", 2);
  Instance path = MakePath(vocab, r, 8);
  TreeDecomposition td = Binarize(DecomposeMinFill(path));
  int k = td.width();
  ASSERT_LE(td.MaxBagsPerElement(), 3);  // paths give small treespan

  ViewSet views(vocab);
  std::string error;
  CQ def = *ParseCq("V(x,z) :- R(x,y), R(y,z).", vocab, &error);
  int radius = def.Radius();
  views.AddCqView("V", def);
  Instance image = views.Image(path);

  TreeDecomposition extended = ExtendDecomposition(td, radius);
  EXPECT_TRUE(extended.Validate(image));
  double bound = k * (std::pow(k, radius + 1) - 1) / (k - 1);
  EXPECT_LE(extended.width(), bound);
}

}  // namespace
}  // namespace mondet
