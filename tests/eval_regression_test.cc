// Regression pins for the compiled semi-naive evaluator on the paper's
// gadget families (Figures 1–5) at small parameters. The golden values
// (iteration counts and output sizes) were captured from the evaluator on
// the seed-equivalent fixpoints; a change here means either the gadget
// construction or the evaluator's iteration structure changed — both are
// worth noticing.

#include <gtest/gtest.h>

#include <vector>

#include "datalog/eval.h"
#include "datalog/eval_plan.h"
#include "reductions/thm6.h"
#include "reductions/thm7.h"
#include "tests/test_util.h"
#include "views/inverse_rules.h"
#include "views/view_set.h"

namespace mondet {
namespace {

// ---------- Thm 7 diamond chains (Figures 3 and 4) -----------------------

struct Thm7Golden {
  int n;
  size_t chain_facts;
  size_t query_iterations;
  size_t query_fixpoint_facts;
  size_t image_iterations;
  size_t image_facts;  // S + R^(n-1) + T, so n+1 facts
  size_t rewriting_iterations;
};

TEST(EvalRegression, Thm7DiamondChainFamily) {
  // Iteration counts reflect dataflow pruning (EvalOptions::dataflow_prune,
  // the default): rules provably dead on the given instance are never
  // seated, so their strata close a round earlier — but only once the
  // input clears the dataflow_min_facts gate (8). The n=1 chain (6 facts)
  // and every view image (n+1 facts) sit below it, so their counts are
  // the unpruned ones; the n>=2 query fixpoints run pruned. Fact counts
  // are identical either way (dataflow_soundness_test pins that).
  const Thm7Golden goldens[] = {
      {1, 6, 3, 8, 3, 2, 13},
      {2, 10, 4, 13, 3, 3, 14},
      {3, 14, 5, 18, 3, 4, 15},
  };
  Thm7Gadget gadget = BuildThm7();
  DatalogQuery rewriting = InverseRulesRewriting(gadget.query, gadget.views);
  for (const Thm7Golden& g : goldens) {
    Instance chain = gadget.DiamondChain(g.n);
    EXPECT_EQ(chain.num_facts(), g.chain_facts) << "n=" << g.n;

    EvalStats qs;
    Instance qfix = FpEval(gadget.query.program, chain, &qs);
    EXPECT_EQ(qs.iterations, g.query_iterations) << "n=" << g.n;
    EXPECT_EQ(qfix.num_facts(), g.query_fixpoint_facts) << "n=" << g.n;
    EXPECT_FALSE(qfix.NumRows(gadget.query.goal) == 0) << "n=" << g.n;

    EvalStats is;
    Instance image = gadget.views.Image(chain, &is);
    EXPECT_EQ(is.iterations, g.image_iterations) << "n=" << g.n;
    EXPECT_EQ(image.num_facts(), g.image_facts) << "n=" << g.n;

    EvalStats rs;
    Instance rfix = FpEval(rewriting.program, image, &rs);
    EXPECT_EQ(rs.iterations, g.rewriting_iterations) << "n=" << g.n;
    // The rewriting agrees with the query on the diamond family (Thm 7).
    EXPECT_EQ(rfix.NumRows(rewriting.goal), 1u) << "n=" << g.n;
  }
}

// ---------- Thm 6 axes and grid tests (Figures 1 and 2) ------------------

TEST(EvalRegression, Thm6AxesAndGridTest) {
  TilingProblem tp = SolvableTilingProblem();
  Thm6Gadget gadget = BuildThm6(tp);

  Instance axes = gadget.MakeAxes(2, 2);
  EXPECT_EQ(axes.num_facts(), 10u);
  EvalStats as;
  Instance axes_image = gadget.views.Image(axes, &as);
  EXPECT_EQ(as.iterations, 13u);
  EXPECT_EQ(axes_image.num_facts(), 10u);

  auto solution = tp.Solve(2, 2);
  ASSERT_TRUE(solution);
  Instance test = gadget.MakeGridTest(2, 2, *solution);
  EXPECT_EQ(test.num_facts(), 18u);
  EvalStats ts;
  Instance tfix = FpEval(gadget.query.program, test, &ts);
  EXPECT_EQ(ts.iterations, 3u);
  // A valid tiling yields a failing test: Q_TP derives nothing on it.
  EXPECT_EQ(tfix.num_facts(), 18u);
  EXPECT_TRUE(tfix.NumRows(gadget.query.goal) == 0);
}

// ---------- Fig 5 chain views over a path --------------------------------

TEST(EvalRegression, Fig5ChainViewImages) {
  auto vocab = MakeVocabulary();
  PredId r = vocab->AddPredicate("R", 2);
  Instance path = MakePath(vocab, r, 16);
  // A length-len chain view over a 16-edge path has 17-len output pairs;
  // the view program is non-recursive, so it closes in one iteration in
  // one stratum.
  for (int len = 2; len <= 4; ++len) {
    ViewSet views(vocab);
    CQ cq(vocab);
    std::vector<VarId> vars;
    for (int i = 0; i <= len; ++i) vars.push_back(cq.AddVar());
    for (int i = 0; i < len; ++i) cq.AddAtom(r, {vars[i], vars[i + 1]});
    cq.SetFreeVars({vars[0], vars[len]});
    views.AddCqView("V", cq);
    EvalStats s;
    Instance image = views.Image(path, &s);
    EXPECT_EQ(s.iterations, 1u) << "len=" << len;
    EXPECT_EQ(s.strata.size(), 1u) << "len=" << len;
    EXPECT_EQ(image.num_facts(), static_cast<size_t>(17 - len))
        << "len=" << len;
  }
}

// ---------- Thread count does not change any of the above ----------------

TEST(EvalRegression, StatsIndependentOfThreads) {
  Thm7Gadget gadget = BuildThm7();
  Instance chain = gadget.DiamondChain(3);
  EvalStats s1, s4;
  Instance f1 = FpEval(gadget.query.program, chain, &s1, EvalOptions{1});
  Instance f4 = FpEval(gadget.query.program, chain, &s4, EvalOptions{4});
  EXPECT_EQ(s1.iterations, s4.iterations);
  EXPECT_EQ(s1.facts_derived, s4.facts_derived);
  ASSERT_EQ(f1.num_facts(), f4.num_facts());
  for (size_t i = 0; i < f1.num_facts(); ++i) {
    EXPECT_EQ(f1.FactAt(static_cast<uint32_t>(i)),
              f4.FactAt(static_cast<uint32_t>(i)))
        << "fact " << i;
  }
}

}  // namespace
}  // namespace mondet
