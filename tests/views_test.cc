#include <gtest/gtest.h>

#include "datalog/eval.h"
#include "datalog/parser.h"
#include "tests/test_util.h"
#include "views/view_set.h"

namespace mondet {
namespace {

TEST(ViewSet, CqViewImage) {
  auto vocab = MakeVocabulary();
  std::string error;
  CQ def = *ParseCq("V(x,z) :- R(x,y), R(y,z).", vocab, &error);
  ViewSet views(vocab);
  PredId v = views.AddCqView("V2", def);
  PredId r = *vocab->FindPredicate("R");
  Instance path = MakePath(vocab, r, 3);
  Instance image = views.Image(path);
  EXPECT_EQ(image.num_facts(), 2u);
  EXPECT_TRUE(image.HasFact(v, {0, 2}));
  EXPECT_TRUE(image.HasFact(v, {1, 3}));
  // Image keeps the same element ids.
  EXPECT_EQ(image.num_elements(), path.num_elements());
}

TEST(ViewSet, AtomicView) {
  auto vocab = MakeVocabulary();
  PredId r = vocab->AddPredicate("R", 2);
  ViewSet views(vocab);
  PredId vr = views.AddAtomicView("VR", r);
  Instance path = MakePath(vocab, r, 2);
  Instance image = views.Image(path);
  EXPECT_EQ(image.num_facts(), 2u);
  EXPECT_TRUE(image.HasFact(vr, {0, 1}));
  EXPECT_TRUE(views.AllCq());
}

TEST(ViewSet, RecursiveDatalogView) {
  auto vocab = MakeVocabulary();
  std::string error;
  std::vector<Diagnostic> diags;
  auto def = ParseQuery(R"(
    Reach(x) :- U(x).
    Reach(x) :- R(x,y), Reach(y).
  )",
                        "Reach", vocab, &diags);
  ASSERT_TRUE(def) << FormatDiagnostics(diags);
  ViewSet views(vocab);
  PredId v = views.AddView("VReach", *def);
  EXPECT_FALSE(views.AllCq());
  EXPECT_TRUE(views.AllFrontierGuarded());  // monadic ⇒ frontier-guarded
  PredId r = *vocab->FindPredicate("R");
  PredId u = *vocab->FindPredicate("U");
  Instance inst = MakePath(vocab, r, 3);
  inst.AddFact(u, {3});
  Instance image = views.Image(inst);
  EXPECT_EQ(image.NumRows(v), 4u);
}

TEST(ViewSet, IdbsRenamedApartAcrossViews) {
  auto vocab = MakeVocabulary();
  std::string error;
  std::vector<Diagnostic> diags;
  auto def1 = ParseQuery("P(x) :- U(x).\nP(x) :- R(x,y), P(y).", "P", vocab,
                         &diags);
  ASSERT_TRUE(def1) << FormatDiagnostics(diags);
  ViewSet views(vocab);
  views.AddView("V1", *def1);
  // Re-adding a structurally identical view must not clash on IDB names.
  views.AddView("V2", *def1);
  EXPECT_EQ(views.views().size(), 2u);
  PredId r = *vocab->FindPredicate("R");
  PredId u = *vocab->FindPredicate("U");
  Instance inst = MakePath(vocab, r, 2);
  inst.AddFact(u, {2});
  Instance image = views.Image(inst);
  EXPECT_EQ(image.NumRows(views.views()[0].pred), 3u);
  EXPECT_EQ(image.NumRows(views.views()[1].pred), 3u);
}

TEST(ViewSet, ViewIsCqDetection) {
  auto vocab = MakeVocabulary();
  std::string error;
  CQ def = *ParseCq("V(x) :- R(x,y).", vocab, &error);
  ViewSet views(vocab);
  views.AddCqView("V1", def);
  EXPECT_TRUE(views.views()[0].IsCq());
  CQ round_trip = views.views()[0].AsCq();
  EXPECT_EQ(round_trip.atoms().size(), 1u);
  EXPECT_EQ(round_trip.arity(), 1);
}

TEST(ViewSet, MaxCqRadius) {
  auto vocab = MakeVocabulary();
  std::string error;
  ViewSet views(vocab);
  views.AddCqView("V1", *ParseCq("V(x) :- R(x,y).", vocab, &error));
  views.AddCqView("V2",
                  *ParseCq("W(x) :- R(x,y), R(y,z), R(z,w).", vocab, &error));
  EXPECT_EQ(views.MaxCqRadius(), 2);
}

TEST(ViewSet, MonotoneUnderSubinstances) {
  // V(I1) ⊆ V(I2) whenever I1 ⊆ I2 (views are monotone queries).
  auto vocab = MakeVocabulary();
  std::string error;
  ViewSet views(vocab);
  views.AddCqView("V", *ParseCq("V(x,z) :- R(x,y), R(y,z).", vocab, &error));
  PredId r = *vocab->FindPredicate("R");
  for (unsigned seed = 0; seed < 8; ++seed) {
    Instance big = RandomInstance(vocab, {r}, 5, 10, seed);
    Instance small(vocab);
    small.EnsureElements(big.num_elements());
    for (size_t i = 0; i < big.num_facts(); i += 2) {
      small.AddFact(big.FactAt(static_cast<uint32_t>(i)));
    }
    Instance img_small = views.Image(small);
    Instance img_big = views.Image(big);
    for (const Fact& f : img_small.AllFacts()) {
      EXPECT_TRUE(img_big.HasFact(f)) << "seed " << seed;
    }
  }
}

TEST(SplitDisconnectedViews, ConnectedViewsKept) {
  auto vocab = MakeVocabulary();
  std::string error;
  ViewSet views(vocab);
  views.AddCqView("V", *ParseCq("V(x,z) :- R(x,y), R(y,z).", vocab, &error));
  ViewSet split = SplitDisconnectedCqViews(views);
  ASSERT_EQ(split.views().size(), 1u);
  EXPECT_TRUE(split.views()[0].AsCq().IsConnected());
}

TEST(SplitDisconnectedViews, ProductViewSplits) {
  // The appendix example: V(x,y) = C(x) ∧ D(y) becomes V#0(x) and V#1(y),
  // each guarded by the other component's existential closure.
  auto vocab = MakeVocabulary();
  std::string error;
  ViewSet views(vocab);
  views.AddCqView("V", *ParseCq("V(x,y) :- C(x), D(y).", vocab, &error));
  ViewSet split = SplitDisconnectedCqViews(views);
  ASSERT_EQ(split.views().size(), 2u);
  EXPECT_EQ(split.views()[0].definition.arity(), 1);
  EXPECT_EQ(split.views()[1].definition.arity(), 1);

  // Mutual determination: the original image is the product of the split
  // images, and each split image is a projection of the original.
  PredId c = *vocab->FindPredicate("C");
  PredId d = *vocab->FindPredicate("D");
  for (unsigned seed = 0; seed < 10; ++seed) {
    Instance inst = RandomInstance(vocab, {c, d}, 4, 5, 3000 + seed);
    Instance full = views.Image(inst);
    Instance parts = split.Image(inst);
    PredId v = views.views()[0].pred;
    PredId v0 = split.views()[0].pred;
    PredId v1 = split.views()[1].pred;
    // V = V#0 × V#1.
    size_t expected =
        parts.NumRows(v0) * parts.NumRows(v1);
    EXPECT_EQ(full.NumRows(v), expected) << "seed " << seed;
    // Projections agree.
    for (uint32_t row = 0; row < full.NumRows(v); ++row) {
      const Fact f = full.FactAt(full.GlobalOf(v, row));
      EXPECT_TRUE(parts.HasFact(v0, {f.args[0]})) << "seed " << seed;
      EXPECT_TRUE(parts.HasFact(v1, {f.args[1]})) << "seed " << seed;
    }
  }
}

TEST(SplitDisconnectedViews, MixedComponentsWithSharedFreeVars) {
  auto vocab = MakeVocabulary();
  std::string error;
  ViewSet views(vocab);
  views.AddCqView(
      "V", *ParseCq("V(x,y,u) :- R(x,y), S(u), T(w).", vocab, &error));
  ViewSet split = SplitDisconnectedCqViews(views);
  // Three components: {x,y}, {u}, {w} — but only two carry free vars;
  // the third becomes a Boolean (0-ary) view.
  ASSERT_EQ(split.views().size(), 3u);
  int zero_ary = 0;
  for (const View& v : split.views()) {
    if (v.definition.arity() == 0) ++zero_ary;
  }
  EXPECT_EQ(zero_ary, 1);
}

TEST(RenamePredicate, RenamesHeadAndBody) {
  auto vocab = MakeVocabulary();
  std::string error;
  ParseResult result =
      ParseProgram("P(x) :- U(x).\nP(x) :- R(x,y), P(y).", vocab);
  ASSERT_TRUE(result.ok());
  PredId p = *vocab->FindPredicate("P");
  PredId q = vocab->AddPredicate("Q", 1);
  Program renamed = RenamePredicate(*result.program, p, q);
  EXPECT_TRUE(renamed.IsIdb(q));
  EXPECT_FALSE(renamed.IsIdb(p));
  for (const Rule& rule : renamed.rules()) {
    EXPECT_EQ(rule.head.pred, q);
    for (const QAtom& a : rule.body) EXPECT_NE(a.pred, p);
  }
}

}  // namespace
}  // namespace mondet
