// Determinism test for the parallel counterexample-search pipeline: on
// randomized query/view pairs, CheckMonotonicDeterminacy must produce a
// bit-identical result — verdict, counterexample, tests_run,
// expansions_tried — across thread counts and cache settings (cache_hits
// and cache_misses are explicitly exempt: concurrent misses on one
// isomorphism type may each compute).
//
// The generator and checker live in the shared randomized-testing
// library (testing/oracle.h, oracle `mondet-parallel`); `mondet-fuzz`
// drives the same property over open-ended seed ranges with shrinking.

#include <gtest/gtest.h>

#include "testing/oracle.h"

namespace mondet {
namespace {

class MonDetParallel : public ::testing::TestWithParam<unsigned> {};

TEST_P(MonDetParallel, DeterministicAcrossThreadsAndCache) {
  const testing::Oracle* oracle = testing::FindOracle("mondet-parallel");
  ASSERT_NE(oracle, nullptr);
  testing::OracleOutcome out = oracle->Check(oracle->Generate(GetParam()));
  EXPECT_TRUE(out.ok) << out.message;
}

INSTANTIATE_TEST_SUITE_P(Seeds, MonDetParallel, ::testing::Range(0u, 100u));

}  // namespace
}  // namespace mondet
