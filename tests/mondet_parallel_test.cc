// Determinism oracle for the parallel counterexample-search pipeline: on
// randomized query/view pairs, CheckMonotonicDeterminacy must produce a
// bit-identical result — verdict, counterexample, tests_run,
// expansions_tried — across thread counts and cache settings. (cache_hits
// and cache_misses are explicitly exempt: concurrent misses on one
// isomorphism type may each compute.)

#include <gtest/gtest.h>

#include <limits>
#include <random>
#include <string>
#include <vector>

#include "core/mondet_check.h"
#include "datalog/parser.h"
#include "views/view_set.h"

namespace mondet {
namespace {

struct RandomSchema {
  VocabularyPtr vocab;
  PredId e1, e2, i1, i2, g0;
};

RandomSchema MakeSchema() {
  RandomSchema s;
  s.vocab = MakeVocabulary();
  s.e1 = s.vocab->AddPredicate("E1", 1);
  s.e2 = s.vocab->AddPredicate("E2", 2);
  s.i1 = s.vocab->AddPredicate("I1", 1);
  s.i2 = s.vocab->AddPredicate("I2", 2);
  s.g0 = s.vocab->AddPredicate("G0", 0);
  return s;
}

/// A random safe rule (same scheme as eval_differential_test): 1–3 body
/// atoms over {E1, E2, I1, I2}, head over {I1, I2, G0} with arguments
/// drawn from the body's variables, variable ids compacted per rule.
Rule RandomRule(const RandomSchema& s, std::mt19937& rng, bool goal_head) {
  std::uniform_int_distribution<int> nvars_dist(2, 4);
  std::uniform_int_distribution<int> natoms_dist(1, 3);
  const int nvars = nvars_dist(rng);
  const int natoms = natoms_dist(rng);
  std::uniform_int_distribution<int> var_dist(0, nvars - 1);
  const PredId body_preds[] = {s.e1, s.e2, s.i1, s.i2};
  std::uniform_int_distribution<size_t> body_pred_dist(0, 3);

  constexpr VarId kUnmapped = std::numeric_limits<VarId>::max();
  Rule rule;
  std::vector<VarId> remap(nvars, kUnmapped);
  auto used = [&](int raw) {
    if (remap[raw] == kUnmapped) {
      remap[raw] = static_cast<VarId>(rule.var_names.size());
      rule.var_names.push_back("v" + std::to_string(raw));
    }
    return remap[raw];
  };
  for (int a = 0; a < natoms; ++a) {
    PredId p = body_preds[body_pred_dist(rng)];
    std::vector<VarId> args;
    for (int j = 0; j < s.vocab->arity(p); ++j) {
      args.push_back(used(var_dist(rng)));
    }
    rule.body.push_back(QAtom(p, args));
  }
  const PredId head_preds[] = {s.i1, s.i2, s.g0};
  std::uniform_int_distribution<size_t> head_pred_dist(0, 2);
  PredId hp = goal_head ? s.g0 : head_preds[head_pred_dist(rng)];
  std::uniform_int_distribution<size_t> body_var_dist(
      0, rule.var_names.size() - 1);
  std::vector<VarId> head_args;
  for (int j = 0; j < s.vocab->arity(hp); ++j) {
    head_args.push_back(static_cast<VarId>(body_var_dist(rng)));
  }
  rule.head = QAtom(hp, head_args);
  return rule;
}

DatalogQuery RandomQuery(const RandomSchema& s, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<int> nrules_dist(1, 4);
  Program program(s.vocab);
  const int nrules = nrules_dist(rng);
  for (int i = 0; i < nrules; ++i) {
    program.AddRule(RandomRule(s, rng, /*goal_head=*/false));
  }
  // At least one rule derives the goal.
  program.AddRule(RandomRule(s, rng, /*goal_head=*/true));
  return DatalogQuery(std::move(program), s.g0);
}

/// One of three view-set shapes over {E1, E2}: all-atomic (lossless),
/// projection CQ views (lossy), or a recursive MDL reachability view plus
/// an atomic one — the recursive case is where the canonical cache sees
/// repeated isomorphic D' instances.
ViewSet RandomViews(const RandomSchema& s, unsigned seed) {
  ViewSet views(s.vocab);
  std::vector<Diagnostic> diags;
  switch (seed % 3) {
    case 0:
      views.AddAtomicView("VA1", s.e1);
      views.AddAtomicView("VA2", s.e2);
      break;
    case 1: {
      auto proj = ParseQuery("VP(x) :- E2(x,y).", "VP", s.vocab, &diags);
      views.AddView("VProj", *proj);
      views.AddAtomicView("VA1", s.e1);
      break;
    }
    default: {
      auto reach = ParseQuery(
          "VR(x) :- E1(x).\nVR(x) :- E2(x,y), VR(y).", "VR", s.vocab, &diags);
      views.AddView("VReach", *reach);
      views.AddAtomicView("VA2", s.e2);
      break;
    }
  }
  return views;
}

void ExpectSameInstance(const Instance& a, const Instance& b,
                        const std::string& what) {
  ASSERT_EQ(a.num_elements(), b.num_elements()) << what;
  ASSERT_EQ(a.num_facts(), b.num_facts()) << what;
  for (size_t i = 0; i < a.num_facts(); ++i) {
    EXPECT_EQ(a.facts()[i], b.facts()[i]) << what << " fact " << i;
  }
}

void ExpectSameResult(const MonDetResult& a, const MonDetResult& b,
                      const std::string& what) {
  EXPECT_EQ(a.verdict, b.verdict) << what;
  EXPECT_EQ(a.tests_run, b.tests_run) << what;
  EXPECT_EQ(a.expansions_tried, b.expansions_tried) << what;
  ASSERT_EQ(a.failure.has_value(), b.failure.has_value()) << what;
  if (a.failure) {
    ExpectSameInstance(a.failure->approximation.inst,
                       b.failure->approximation.inst,
                       what + " approximation");
    EXPECT_EQ(a.failure->approximation.frontier,
              b.failure->approximation.frontier)
        << what;
    ExpectSameInstance(a.failure->dprime, b.failure->dprime,
                       what + " dprime");
  }
}

class MonDetParallel : public ::testing::TestWithParam<unsigned> {};

TEST_P(MonDetParallel, IdenticalAcrossThreadsAndCache) {
  unsigned seed = GetParam();
  RandomSchema s = MakeSchema();
  DatalogQuery query = RandomQuery(s, 5000 + seed);
  ViewSet views = RandomViews(s, seed);

  MonDetOptions base;
  base.query_depth = 3;
  base.view_depth = 3;
  base.max_query_expansions = 24;
  base.max_tests_per_expansion = 48;

  MonDetOptions t1 = base, t4 = base, t1_nocache = base, t4_nocache = base;
  t1.num_threads = 1;
  t1.test_cache = true;
  t4.num_threads = 4;
  t4.test_cache = true;
  t1_nocache.num_threads = 1;
  t1_nocache.test_cache = false;
  t4_nocache.num_threads = 4;
  t4_nocache.test_cache = false;

  MonDetResult r1 = CheckMonotonicDeterminacy(query, views, t1);
  MonDetResult r4 = CheckMonotonicDeterminacy(query, views, t4);
  MonDetResult r1n = CheckMonotonicDeterminacy(query, views, t1_nocache);
  MonDetResult r4n = CheckMonotonicDeterminacy(query, views, t4_nocache);

  std::string tag = "seed " + std::to_string(seed);
  ExpectSameResult(r1, r4, tag + " 1T vs 4T (cache)");
  ExpectSameResult(r1, r1n, tag + " cache vs no-cache (1T)");
  ExpectSameResult(r1, r4n, tag + " 1T cache vs 4T no-cache");

  // The cache-off runs never touch the cache.
  EXPECT_EQ(r1n.cache_hits + r1n.cache_misses, 0u) << tag;
  EXPECT_EQ(r4n.cache_hits + r4n.cache_misses, 0u) << tag;
  // The cache-on runs account every built test as a hit or a miss.
  if (r1.verdict != Verdict::kInvalidInput) {
    EXPECT_LE(r1.cache_hits + r1.cache_misses, r1.tests_run) << tag;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MonDetParallel, ::testing::Range(0u, 100u));

}  // namespace
}  // namespace mondet
