// Differential oracle for retraction + incremental view maintenance
// (CompiledProgram::Materialize / Maintain): on randomized Datalog
// programs and randomized insert/delete schedules, the maintained
// materialization must be bit-identical — fact set, per-fact derivation
// counts, and statistics — to a from-scratch Materialize of the current
// base after *every* prefix of the schedule. Raw batches deliberately
// contain duplicate inserts and deletes of absent facts (normalization is
// the caller contract this test also exercises), and the from-scratch
// recomputation runs at 1 and 4 threads so the maintained state is
// checked against both parallel evaluation modes.

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <random>
#include <string>
#include <unordered_set>
#include <vector>

#include "datalog/eval_plan.h"
#include "datalog/program.h"
#include "tests/test_util.h"

namespace mondet {
namespace {

struct RandomSchema {
  VocabularyPtr vocab;
  PredId e1, e2, i1, i2, g0;
};

RandomSchema MakeSchema() {
  RandomSchema s;
  s.vocab = MakeVocabulary();
  s.e1 = s.vocab->AddPredicate("E1", 1);
  s.e2 = s.vocab->AddPredicate("E2", 2);
  s.i1 = s.vocab->AddPredicate("I1", 1);
  s.i2 = s.vocab->AddPredicate("I2", 2);
  s.g0 = s.vocab->AddPredicate("G0", 0);
  return s;
}

/// A random safe rule (same scheme as eval_differential_test): 1–3 body
/// atoms over {E1, E2, I1, I2}, head over {I1, I2, G0}, variable ids
/// compacted per rule. Recursive rules arise whenever an IDB body atom
/// lands in the head's SCC, so the schedules exercise both the counting
/// and the DRed maintenance paths.
Rule RandomRule(const RandomSchema& s, std::mt19937& rng) {
  std::uniform_int_distribution<int> nvars_dist(2, 4);
  std::uniform_int_distribution<int> natoms_dist(1, 3);
  const int nvars = nvars_dist(rng);
  const int natoms = natoms_dist(rng);
  std::uniform_int_distribution<int> var_dist(0, nvars - 1);
  const PredId body_preds[] = {s.e1, s.e2, s.i1, s.i2};
  std::uniform_int_distribution<size_t> body_pred_dist(0, 3);

  constexpr VarId kUnmapped = std::numeric_limits<VarId>::max();
  Rule rule;
  std::vector<VarId> remap(nvars, kUnmapped);
  auto used = [&](int raw) {
    if (remap[raw] == kUnmapped) {
      remap[raw] = static_cast<VarId>(rule.var_names.size());
      rule.var_names.push_back("v" + std::to_string(raw));
    }
    return remap[raw];
  };
  for (int a = 0; a < natoms; ++a) {
    PredId p = body_preds[body_pred_dist(rng)];
    std::vector<VarId> args;
    for (int j = 0; j < s.vocab->arity(p); ++j) {
      args.push_back(used(var_dist(rng)));
    }
    rule.body.push_back(QAtom(p, args));
  }
  const PredId head_preds[] = {s.i1, s.i2, s.g0};
  std::uniform_int_distribution<size_t> head_pred_dist(0, 2);
  PredId hp = head_preds[head_pred_dist(rng)];
  std::uniform_int_distribution<size_t> body_var_dist(
      0, rule.var_names.size() - 1);
  std::vector<VarId> head_args;
  for (int j = 0; j < s.vocab->arity(hp); ++j) {
    head_args.push_back(static_cast<VarId>(body_var_dist(rng)));
  }
  rule.head = QAtom(hp, head_args);
  return rule;
}

Program RandomProgram(const RandomSchema& s, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<int> nrules_dist(2, 6);
  Program program(s.vocab);
  const int nrules = nrules_dist(rng);
  for (int i = 0; i < nrules; ++i) program.AddRule(RandomRule(s, rng));
  return program;
}

/// A random fact over the base predicates, drawn from a small element
/// pool so duplicate inserts and re-deletions are frequent.
Fact RandomBaseFact(const RandomSchema& s, const std::vector<PredId>& preds,
                    size_t elems, std::mt19937& rng) {
  std::uniform_int_distribution<size_t> pred_dist(0, preds.size() - 1);
  std::uniform_int_distribution<ElemId> elem_dist(
      0, static_cast<ElemId>(elems - 1));
  PredId p = preds[pred_dist(rng)];
  std::vector<ElemId> args;
  for (int j = 0; j < s.vocab->arity(p); ++j) args.push_back(elem_dist(rng));
  return Fact(p, std::move(args));
}

/// The bit-identical contract: same elements, same fact *set* (insertion
/// order legitimately differs between a maintained and a recomputed
/// instance), same derivation count per fact, same statistics.
void ExpectSameMaterialization(const Materialization& got,
                               const Materialization& want,
                               const VocabularyPtr& vocab,
                               const std::string& tag) {
  ASSERT_EQ(got.inst.num_elements(), want.inst.num_elements()) << tag;
  ASSERT_EQ(got.inst.num_facts(), want.inst.num_facts()) << tag;
  std::vector<Fact> gf = got.inst.facts(), wf = want.inst.facts();
  std::sort(gf.begin(), gf.end());
  std::sort(wf.begin(), wf.end());
  for (size_t i = 0; i < gf.size(); ++i) {
    ASSERT_EQ(gf[i], wf[i]) << tag << " fact " << i;
    EXPECT_EQ(got.inst.FactCount(gf[i]), want.inst.FactCount(wf[i]))
        << tag << " count of " << FactToString(want.inst, wf[i]);
  }
  EXPECT_EQ(got.stats.counted_facts(), want.stats.counted_facts()) << tag;
  for (PredId p : vocab->AllPredicates()) {
    EXPECT_EQ(got.stats.cardinality(p), want.stats.cardinality(p))
        << tag << " pred " << vocab->name(p);
    for (int i = 0; i < vocab->arity(p); ++i) {
      EXPECT_EQ(got.stats.distinct(p, i), want.stats.distinct(p, i))
          << tag << " pred " << vocab->name(p) << " pos " << i;
    }
  }
}

class MaintenanceDifferential : public ::testing::TestWithParam<unsigned> {};

TEST_P(MaintenanceDifferential, MaintainedEqualsRecomputedAtEveryPrefix) {
  unsigned seed = GetParam();
  RandomSchema s = MakeSchema();
  Program program = RandomProgram(s, 11000 + seed);
  CompiledProgram compiled(program);

  std::mt19937 rng(12000 + seed);
  // Half the cases put IDB facts into the base (FPEval is defined on
  // instances that may already mention IDB predicates, cf. Prop. 4), so
  // base-level IDB churn exercises the ±1 base-membership bookkeeping.
  std::vector<PredId> churn_preds = {s.e1, s.e2};
  if (seed % 2 == 1) {
    churn_preds.push_back(s.i1);
    churn_preds.push_back(s.i2);
  }
  const size_t elems = 5;
  Instance base = RandomInstance(s.vocab, churn_preds, elems, 8,
                                 13000 + seed);

  EvalOptions opt1;
  opt1.num_threads = 1;
  opt1.stats_min_facts = 0;
  // The second recompute runs at MONDET_THREADS when set (the ASan arm
  // of scripts/tier1.sh sweeps 1 and 4), else hardware concurrency — so
  // the maintained state is checked against both evaluation modes.
  EvalOptions opt4;
  opt4.num_threads = 0;
  opt4.stats_min_facts = 0;

  Materialization m = compiled.Materialize(base, nullptr, opt1);
  ExpectSameMaterialization(m, compiled.Materialize(base, nullptr, opt4),
                            s.vocab, "seed " + std::to_string(seed) + " t0");

  const int steps = 4 + seed % 4;
  std::uniform_int_distribution<int> batch_dist(0, 4);
  for (int step = 0; step < steps; ++step) {
    // Raw batch: duplicate inserts, deletes of absent facts, and facts
    // appearing on both sides are all legal — normalization below is the
    // documented caller contract (new base = (old ∖ deletes) ∪ inserts).
    std::vector<Fact> raw_ins, raw_del;
    for (int i = batch_dist(rng); i > 0; --i) {
      raw_ins.push_back(RandomBaseFact(s, churn_preds, elems, rng));
    }
    for (int i = batch_dist(rng); i > 0; --i) {
      if (base.num_facts() > 0 && rng() % 2 == 0) {
        raw_del.push_back(base.facts()[rng() % base.num_facts()]);
      } else {
        raw_del.push_back(RandomBaseFact(s, churn_preds, elems, rng));
      }
    }
    std::unordered_set<Fact, FactHash> raw_ins_set(raw_ins.begin(),
                                                   raw_ins.end());
    FactDelta delta;
    std::unordered_set<Fact, FactHash> seen_ins, seen_del;
    for (const Fact& f : raw_ins) {
      if (!base.HasFact(f) && seen_ins.insert(f).second) {
        delta.inserts.push_back(f);
      }
    }
    for (const Fact& f : raw_del) {
      if (base.HasFact(f) && !raw_ins_set.count(f) &&
          seen_del.insert(f).second) {
        delta.deletes.push_back(f);
      }
    }
    for (const Fact& f : delta.inserts) ASSERT_TRUE(base.AddFact(f));
    for (const Fact& f : delta.deletes) ASSERT_TRUE(base.RemoveFact(f));

    compiled.Maintain(m, base, delta);

    std::string tag = "seed " + std::to_string(seed) + " step " +
                      std::to_string(step) + "\n" + program.DebugString();
    ExpectSameMaterialization(m, compiled.Materialize(base, nullptr, opt1),
                              s.vocab, tag + " (vs 1T recompute)");
    ExpectSameMaterialization(m, compiled.Materialize(base, nullptr, opt4),
                              s.vocab, tag + " (vs 4T recompute)");
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MaintenanceDifferential,
                         ::testing::Range(0u, 220u));

}  // namespace
}  // namespace mondet
