// Differential test for retraction + incremental view maintenance
// (CompiledProgram::Materialize / Maintain): on randomized programs and
// randomized insert/delete schedules, the maintained materialization must
// be bit-identical — fact set, per-fact derivation counts, statistics —
// to a from-scratch Materialize of the current base after *every* prefix
// of the schedule, checked against 1-thread and environment-thread
// recomputes. Raw batches deliberately contain duplicate inserts and
// deletes of absent facts (normalization is the caller contract).
//
// The generator and checker live in the shared randomized-testing
// library (testing/oracle.h, oracle `maintenance-differential`);
// `mondet-fuzz` drives the same property with shrinking, and failure
// messages carry the full generated case for `.repro` replay.

#include <gtest/gtest.h>

#include "testing/oracle.h"

namespace mondet {
namespace {

class MaintenanceDifferential : public ::testing::TestWithParam<unsigned> {};

TEST_P(MaintenanceDifferential, MaintainedEqualsRecomputedAtEveryPrefix) {
  const testing::Oracle* oracle =
      testing::FindOracle("maintenance-differential");
  ASSERT_NE(oracle, nullptr);
  testing::OracleOutcome out = oracle->Check(oracle->Generate(GetParam()));
  EXPECT_TRUE(out.ok) << out.message;
}

INSTANTIATE_TEST_SUITE_P(Seeds, MaintenanceDifferential,
                         ::testing::Range(0u, 220u));

}  // namespace
}  // namespace mondet
