#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <numeric>
#include <span>
#include <unordered_set>
#include <vector>

#include "base/canonical.h"
#include "base/gaifman.h"
#include "base/homomorphism.h"
#include "base/instance.h"
#include "base/symbol_table.h"
#include "base/thread_pool.h"
#include "tests/test_util.h"

namespace mondet {
namespace {

TEST(Vocabulary, InternsPredicates) {
  Vocabulary vocab;
  PredId r = vocab.AddPredicate("R", 2);
  PredId s = vocab.AddPredicate("S", 1);
  EXPECT_NE(r, s);
  EXPECT_EQ(vocab.AddPredicate("R", 2), r);
  EXPECT_EQ(vocab.arity(r), 2);
  EXPECT_EQ(vocab.name(s), "S");
  EXPECT_EQ(vocab.FindPredicate("R"), std::optional<PredId>(r));
  EXPECT_FALSE(vocab.FindPredicate("T").has_value());
}

TEST(Instance, AddAndDeduplicateFacts) {
  auto vocab = MakeVocabulary();
  PredId r = vocab->AddPredicate("R", 2);
  Instance inst(vocab);
  ElemId a = inst.AddElement("a");
  ElemId b = inst.AddElement("b");
  EXPECT_TRUE(inst.AddFact(r, {a, b}));
  EXPECT_FALSE(inst.AddFact(r, {a, b}));
  EXPECT_TRUE(inst.AddFact(r, {b, a}));
  EXPECT_EQ(inst.num_facts(), 2u);
  EXPECT_TRUE(inst.HasFact(r, {a, b}));
  EXPECT_FALSE(inst.HasFact(r, {a, a}));
}

TEST(Instance, ActiveDomainAndDegree) {
  auto vocab = MakeVocabulary();
  PredId r = vocab->AddPredicate("R", 2);
  Instance inst(vocab);
  ElemId a = inst.AddElement();
  ElemId b = inst.AddElement();
  ElemId c = inst.AddElement();  // isolated
  inst.AddFact(r, {a, b});
  auto adom = inst.ActiveDomain();
  EXPECT_EQ(adom.size(), 2u);
  EXPECT_TRUE(inst.InActiveDomain(a));
  EXPECT_FALSE(inst.InActiveDomain(c));
  EXPECT_EQ(inst.Degree(a), 1u);
  EXPECT_EQ(inst.Degree(c), 0u);
}

TEST(Instance, PositionIndex) {
  auto vocab = MakeVocabulary();
  PredId r = vocab->AddPredicate("R", 2);
  Instance inst = MakePath(vocab, r, 5);
  EXPECT_EQ(inst.NumRows(r), 5u);
  EXPECT_EQ(inst.RowsWith(r, 0, 0).size(), 1u);
  EXPECT_EQ(inst.RowsWith(r, 1, 0).size(), 0u);
  // Index stays correct after adding more facts.
  inst.AddFact(r, {0, 0});
  EXPECT_EQ(inst.RowsWith(r, 0, 0).size(), 2u);
}

TEST(Instance, IncrementalIndexMaintenance) {
  auto vocab = MakeVocabulary();
  PredId r = vocab->AddPredicate("R", 2);
  PredId s = vocab->AddPredicate("S", 1);
  Instance inst(vocab);
  ElemId a = inst.AddElement();
  ElemId b = inst.AddElement();
  inst.AddFact(r, {a, b});
  // First positional query materializes the index; from here on it is
  // maintained incrementally by AddFact.
  EXPECT_EQ(inst.RowsWith(r, 0, a).size(), 1u);
  // Facts added after the index went live must be visible, including on
  // predicates never queried before.
  inst.AddFact(r, {b, a});
  inst.AddFact(s, {b});
  EXPECT_EQ(inst.RowsWith(r, 0, b).size(), 1u);
  EXPECT_EQ(inst.RowsWith(r, 1, a).size(), 1u);
  EXPECT_EQ(inst.RowsWith(s, 0, b).size(), 1u);
  // Interleave more adds and queries; duplicates must not re-index.
  inst.AddFact(r, {a, b});  // duplicate, rejected
  EXPECT_EQ(inst.RowsWith(r, 0, a).size(), 1u);
  ElemId c = inst.AddElement();
  inst.AddFact(r, {a, c});
  EXPECT_EQ(inst.RowsWith(r, 0, a).size(), 2u);
  EXPECT_EQ(inst.RowsWith(r, 1, c).size(), 1u);
}

TEST(Instance, PrepareIndexesCoversAllFacts) {
  auto vocab = MakeVocabulary();
  PredId r = vocab->AddPredicate("R", 2);
  Instance inst = MakePath(vocab, r, 5);
  // PrepareIndexes on a never-queried instance makes subsequent
  // positional lookups read-only (used by the parallel evaluator before
  // fanning out worker threads).
  inst.PrepareIndexes();
  EXPECT_EQ(inst.RowsWith(r, 0, 0).size(), 1u);
  inst.AddFact(r, {2, 0});
  inst.PrepareIndexes();
  EXPECT_EQ(inst.RowsWith(r, 1, 0).size(), 1u);
}

TEST(Instance, RestrictTo) {
  auto vocab = MakeVocabulary();
  PredId r = vocab->AddPredicate("R", 2);
  PredId s = vocab->AddPredicate("S", 1);
  Instance inst(vocab);
  ElemId a = inst.AddElement();
  inst.AddFact(r, {a, a});
  inst.AddFact(s, {a});
  Instance restricted = inst.RestrictTo({s});
  EXPECT_EQ(restricted.num_facts(), 1u);
  EXPECT_TRUE(restricted.HasFact(s, {a}));
}

TEST(Instance, DisjointUnion) {
  auto vocab = MakeVocabulary();
  PredId r = vocab->AddPredicate("R", 2);
  Instance a = MakePath(vocab, r, 2);
  Instance b = MakePath(vocab, r, 3);
  size_t before = a.num_elements();
  auto translation = a.DisjointUnionWith(b);
  EXPECT_EQ(a.num_elements(), before + b.num_elements());
  EXPECT_EQ(a.num_facts(), 5u);
  EXPECT_EQ(translation.size(), b.num_elements());
}

TEST(Gaifman, PathRadiusAndConnectivity) {
  auto vocab = MakeVocabulary();
  PredId r = vocab->AddPredicate("R", 2);
  Instance path = MakePath(vocab, r, 4);  // 5 elements
  GaifmanGraph g(path);
  EXPECT_TRUE(g.IsConnected());
  EXPECT_EQ(g.Radius(), 2);  // middle vertex
  EXPECT_EQ(g.Components().size(), 1u);
}

TEST(Gaifman, DisconnectedComponents) {
  auto vocab = MakeVocabulary();
  PredId r = vocab->AddPredicate("R", 2);
  Instance inst(vocab);
  ElemId a = inst.AddElement();
  ElemId b = inst.AddElement();
  ElemId c = inst.AddElement();
  ElemId d = inst.AddElement();
  inst.AddFact(r, {a, b});
  inst.AddFact(r, {c, d});
  GaifmanGraph g(inst);
  EXPECT_FALSE(g.IsConnected());
  EXPECT_EQ(g.Components().size(), 2u);
}

TEST(Gaifman, TernaryFactMakesClique) {
  auto vocab = MakeVocabulary();
  PredId t = vocab->AddPredicate("T", 3);
  Instance inst(vocab);
  ElemId a = inst.AddElement();
  ElemId b = inst.AddElement();
  ElemId c = inst.AddElement();
  inst.AddFact(t, {a, b, c});
  GaifmanGraph g(inst);
  EXPECT_EQ(g.Neighbors(a).size(), 2u);
  EXPECT_EQ(g.Radius(), 1);
}

TEST(Homomorphism, PathIntoLongerPath) {
  auto vocab = MakeVocabulary();
  PredId r = vocab->AddPredicate("R", 2);
  Instance short_path = MakePath(vocab, r, 2);
  Instance long_path = MakePath(vocab, r, 5);
  EXPECT_TRUE(HasHomomorphism(short_path, long_path));
  EXPECT_FALSE(HasHomomorphism(long_path, short_path));
}

TEST(Homomorphism, PathIntoCycle) {
  auto vocab = MakeVocabulary();
  PredId r = vocab->AddPredicate("R", 2);
  Instance path = MakePath(vocab, r, 7);
  Instance cycle = MakeCycle(vocab, r, 3);
  EXPECT_TRUE(HasHomomorphism(path, cycle));
  EXPECT_FALSE(HasHomomorphism(cycle, path));
}

TEST(Homomorphism, OddCycleIntoEvenCycleFails) {
  auto vocab = MakeVocabulary();
  PredId r = vocab->AddPredicate("R", 2);
  Instance c3 = MakeCycle(vocab, r, 3);
  Instance c6 = MakeCycle(vocab, r, 6);
  EXPECT_FALSE(HasHomomorphism(c3, c6));
  EXPECT_TRUE(HasHomomorphism(c6, c3));
}

TEST(Homomorphism, FixedAssignmentsRespected) {
  auto vocab = MakeVocabulary();
  PredId r = vocab->AddPredicate("R", 2);
  Instance path = MakePath(vocab, r, 1);  // a -> b
  Instance target = MakePath(vocab, r, 2);
  HomSearch search(path, target);
  EXPECT_TRUE(search.Exists({{0, 0}}));
  EXPECT_TRUE(search.Exists({{0, 1}}));
  EXPECT_FALSE(search.Exists({{0, 2}}));  // last node has no successor
  EXPECT_FALSE(search.Exists({{0, 0}, {1, 2}}));
}

TEST(Homomorphism, CountsAllMaps) {
  auto vocab = MakeVocabulary();
  PredId r = vocab->AddPredicate("R", 2);
  Instance edge = MakePath(vocab, r, 1);
  Instance target = MakePath(vocab, r, 3);
  EXPECT_EQ(HomSearch(edge, target).Count(), 3u);
  Instance cycle = MakeCycle(vocab, r, 4);
  EXPECT_EQ(HomSearch(edge, cycle).Count(), 4u);
}

TEST(Homomorphism, IsolatedPatternElements) {
  auto vocab = MakeVocabulary();
  PredId r = vocab->AddPredicate("R", 2);
  Instance pattern(vocab);
  pattern.AddElement();  // isolated
  Instance empty(vocab);
  EXPECT_FALSE(HasHomomorphism(pattern, empty));
  Instance nonempty = MakePath(vocab, r, 1);
  EXPECT_TRUE(HasHomomorphism(pattern, nonempty));
}

TEST(Homomorphism, VerifyExplicitMap) {
  auto vocab = MakeVocabulary();
  PredId r = vocab->AddPredicate("R", 2);
  Instance p = MakePath(vocab, r, 1);
  Instance t = MakeCycle(vocab, r, 2);
  EXPECT_TRUE(IsHomomorphism(p, t, {0, 1}));
  EXPECT_FALSE(IsHomomorphism(p, t, {0, 0}));
}

TEST(Homomorphism, HomEquivalence) {
  auto vocab = MakeVocabulary();
  PredId r = vocab->AddPredicate("R", 2);
  // A 3-cycle is hom-equivalent to a 3-cycle with a tail feeding into it.
  Instance c3 = MakeCycle(vocab, r, 3);
  Instance c3_tail = MakeCycle(vocab, r, 3);
  ElemId tail = c3_tail.AddElement();
  c3_tail.AddFact(r, {tail, 0});
  EXPECT_TRUE(HomEquivalent(c3, c3_tail));
  Instance c2 = MakeCycle(vocab, r, 2);
  EXPECT_FALSE(HomEquivalent(c2, c3));
}

TEST(HomomorphismProperty, RandomInstancesCompose) {
  auto vocab = MakeVocabulary();
  PredId r = vocab->AddPredicate("R", 2);
  PredId s = vocab->AddPredicate("S", 1);
  for (unsigned seed = 0; seed < 10; ++seed) {
    Instance a = RandomInstance(vocab, {r, s}, 4, 6, seed);
    Instance b = RandomInstance(vocab, {r, s}, 5, 12, seed + 100);
    HomSearch search(a, b);
    auto hom = search.FindOne();
    if (hom) {
      EXPECT_TRUE(IsHomomorphism(a, b, *hom)) << "seed " << seed;
    }
    // Every instance maps into itself.
    EXPECT_TRUE(HasHomomorphism(a, a));
  }
}

// ---------------------------------------------------------------------------
// ThreadPool (base/thread_pool.h): the shared work-stealing pool behind
// the parallel counterexample search and the evaluator fan-out.

TEST(ThreadPool, EveryItemRunsExactlyOnce) {
  for (int workers : {1, 2, 4, 8}) {
    std::vector<std::atomic<int>> runs(1000);
    for (auto& r : runs) r.store(0);
    ThreadPool::Shared().ParallelFor(
        runs.size(), workers,
        [&](size_t item, int worker) {
          EXPECT_GE(worker, 0);
          EXPECT_LT(worker, workers);
          runs[item].fetch_add(1);
        });
    for (size_t i = 0; i < runs.size(); ++i) {
      EXPECT_EQ(runs[i].load(), 1) << "item " << i << " at " << workers;
    }
  }
}

TEST(ThreadPool, EmptyAndSingleItem) {
  int calls = 0;
  ThreadPool::Shared().ParallelFor(0, 4, [&](size_t, int) { ++calls; });
  EXPECT_EQ(calls, 0);
  ThreadPool::Shared().ParallelFor(1, 4, [&](size_t item, int worker) {
    EXPECT_EQ(item, 0u);
    EXPECT_EQ(worker, 0);  // a 1-item loop runs inline on the caller
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPool, NestedParallelForRunsInline) {
  // A worker that itself calls ParallelFor must not deadlock waiting for
  // pool capacity: nested loops run inline on the calling worker.
  std::atomic<int> total{0};
  ThreadPool::Shared().ParallelFor(8, 4, [&](size_t, int) {
    ThreadPool::Shared().ParallelFor(16, 4,
                                     [&](size_t, int) { total.fetch_add(1); });
  });
  EXPECT_EQ(total.load(), 8 * 16);
}

TEST(ThreadPool, SharedPoolSupportsFourWayFanOut) {
  // Shared() is sized for at least 4-way fan-out even on 1-core machines,
  // so MONDET_THREADS=4 interleaving is real in CI.
  EXPECT_GE(ThreadPool::Shared().num_threads() + 1, 4);
}

// ---------------------------------------------------------------------------
// Canonical forms (base/canonical.h): order-independent instance hashing,
// isomorphism checking, and the D'-test cache built on them.

TEST(Canonical, HashInvariantUnderRenamingAndFactOrder) {
  auto vocab = MakeVocabulary();
  PredId r = vocab->AddPredicate("R", 2);
  PredId u = vocab->AddPredicate("U", 1);
  Instance a(vocab);
  ElemId a0 = a.AddElement(), a1 = a.AddElement(), a2 = a.AddElement();
  a.AddFact(r, {a0, a1});
  a.AddFact(r, {a1, a2});
  a.AddFact(u, {a2});
  // Same shape, elements permuted and facts inserted in another order.
  Instance b(vocab);
  ElemId b0 = b.AddElement(), b1 = b.AddElement(), b2 = b.AddElement();
  b.AddFact(u, {b0});
  b.AddFact(r, {b1, b0});
  b.AddFact(r, {b2, b1});
  EXPECT_EQ(CanonicalHash(a, {a0}), CanonicalHash(b, {b2}));
  // A different tuple anchor distinguishes them.
  EXPECT_NE(CanonicalHash(a, {a0}), CanonicalHash(b, {b0}));
}

TEST(Canonical, FindIsomorphismOnPathsAndNonIso) {
  auto vocab = MakeVocabulary();
  PredId r = vocab->AddPredicate("R", 2);
  Instance a(vocab);
  ElemId a0 = a.AddElement(), a1 = a.AddElement(), a2 = a.AddElement();
  a.AddFact(r, {a0, a1});
  a.AddFact(r, {a1, a2});
  Instance b(vocab);
  ElemId b0 = b.AddElement(), b1 = b.AddElement(), b2 = b.AddElement();
  b.AddFact(r, {b2, b0});
  b.AddFact(r, {b0, b1});
  auto iso = FindIsomorphism(a, {a0}, b, {b2});
  ASSERT_TRUE(iso.has_value());
  EXPECT_EQ((*iso)[a0], b2);
  EXPECT_EQ((*iso)[a1], b0);
  EXPECT_EQ((*iso)[a2], b1);
  // Anchoring the tuple at the wrong end rules the isomorphism out.
  EXPECT_FALSE(FindIsomorphism(a, {a0}, b, {b1}).has_value());
  // A 2-cycle is not isomorphic to a path.
  Instance c(vocab);
  ElemId c0 = c.AddElement(), c1 = c.AddElement();
  c.AddFact(r, {c0, c1});
  c.AddFact(r, {c1, c0});
  EXPECT_FALSE(FindIsomorphism(a, {}, c, {}).has_value());
}

TEST(FactHashTest, DenseConsecutiveFactsDoNotCollide) {
  // Collision regression for the SplitMix64-finalized fact hash: the
  // open-addressing fact table and the unordered fact sets key on
  // HashFactKey, and the workloads it must survive are exactly the dense
  // ones the columnar store produces — consecutive small ElemIds over a
  // handful of predicates. A weak mix (e.g. the old shift-xor fold)
  // collapses such keys onto a few buckets; SplitMix64's full avalanche
  // keeps them distinct and spread.
  constexpr int kPreds = 4;
  constexpr ElemId kSide = 50;  // 4 * 50 * 50 = 10000 dense facts
  std::unordered_set<uint64_t> hashes;
  std::vector<size_t> load(1024, 0);
  for (PredId p = 0; p < kPreds; ++p) {
    for (ElemId a = 0; a < kSide; ++a) {
      for (ElemId b = 0; b < kSide; ++b) {
        const ElemId args[2] = {a, b};
        const uint64_t h = HashFactKey(p, std::span<const ElemId>(args, 2));
        hashes.insert(h);
        ++load[h & 1023u];
      }
    }
  }
  // All 64-bit hashes distinct: on 10k keys even one collision is a red
  // flag (the birthday bound for a healthy 64-bit hash is ~2^32 keys).
  EXPECT_EQ(hashes.size(),
            static_cast<size_t>(kPreds) * kSide * kSide);
  // And the low bits alone must spread them: max load over 1024
  // power-of-2 buckets stays within 3x of the mean, the regime the
  // linear-probing table's 3/4 load factor is designed around.
  const size_t mean = hashes.size() / load.size();
  const size_t worst = *std::max_element(load.begin(), load.end());
  EXPECT_LE(worst, 3 * mean) << "low-bit clustering: worst bucket "
                             << worst << " vs mean " << mean;
}

TEST(FactHashTest, ArgumentOrderAndPredicateChangeTheHash) {
  const ElemId ab[2] = {1, 2};
  const ElemId ba[2] = {2, 1};
  EXPECT_NE(HashFactKey(0, std::span<const ElemId>(ab, 2)),
            HashFactKey(0, std::span<const ElemId>(ba, 2)));
  EXPECT_NE(HashFactKey(0, std::span<const ElemId>(ab, 2)),
            HashFactKey(1, std::span<const ElemId>(ab, 2)));
  // The transparent functors agree across Fact and FactView.
  Fact f(0, {1, 2});
  FactView v{0, std::span<const ElemId>(ab, 2)};
  EXPECT_EQ(FactHash{}(f), FactHash{}(v));
  EXPECT_TRUE(FactEq{}(f, v));
}

TEST(Canonical, TestCacheComputesEachTypeOnce) {
  auto vocab = MakeVocabulary();
  PredId r = vocab->AddPredicate("R", 2);
  CanonicalTestCache cache;
  int computes = 0;
  auto run = [&](ElemId anchor, const Instance& inst, bool value) {
    bool hit = false;
    bool got = cache.GetOrCompute(inst, {anchor}, [&] {
      ++computes;
      return value;
    }, &hit);
    EXPECT_EQ(got, value);
    return hit;
  };
  Instance a(vocab);
  ElemId a0 = a.AddElement(), a1 = a.AddElement();
  a.AddFact(r, {a0, a1});
  EXPECT_FALSE(run(a0, a, true));
  // An isomorphic copy hits and returns the cached value without compute.
  Instance b(vocab);
  ElemId b0 = b.AddElement(), b1 = b.AddElement();
  b.AddFact(r, {b1, b0});
  EXPECT_TRUE(run(b1, b, true));
  // A different anchor is a different test.
  EXPECT_FALSE(run(b0, b, false));
  EXPECT_EQ(computes, 2);
  EXPECT_EQ(cache.size(), 2u);
}

}  // namespace
}  // namespace mondet
