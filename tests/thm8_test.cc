#include <gtest/gtest.h>

#include "base/homomorphism.h"
#include "datalog/eval.h"
#include "games/pebble.h"
#include "reductions/lemma6.h"
#include "reductions/thm6.h"
#include "reductions/thm8.h"

namespace mondet {
namespace {

/// The Thm 8 setting: Q_TP* and V_TP* for the parity tiling problem TP*.
/// Since TP* has no solution, Q_TP* IS monotonically determined by V_TP*;
/// the theorem shows it still has no Datalog rewriting, via instances
/// I_ℓ (the axes) whose images are k-indistinguishable from tileable
/// unravellings.
class Thm8Test : public ::testing::Test {
 protected:
  Thm8Test() : tp_(MakeParityTilingProblem()), gadget_(BuildThm6(tp_)) {}

  TilingProblem tp_;
  Thm6Gadget gadget_;
};

TEST_F(Thm8Test, ParityProblemHasNoSolution) {
  EXPECT_FALSE(tp_.HasSolutionUpTo(3, 3));
}

TEST_F(Thm8Test, QueryTrueOnAxes) {
  // I_ℓ = the axes expansion: Q_TP*(I_ℓ) = True.
  Instance axes = gadget_.MakeAxes(3, 3);
  EXPECT_TRUE(DatalogHoldsOn(gadget_.query, axes));
}

TEST_F(Thm8Test, ValidGridTestWouldFalsifyQuery) {
  // Key soundness check behind monotonic determinacy of Q_TP*: grid
  // tests with *invalid* tilings keep the query true. Try every 2x2
  // assignment over a few tiles: all violate TP* somewhere, so Q holds.
  int checked = 0;
  for (int t0 = 0; t0 < 4; ++t0) {
    for (int t1 = 0; t1 < 4; ++t1) {
      Instance test =
          gadget_.MakeGridTest(2, 2, {t0, t1, (t0 + t1) % 4, t1});
      EXPECT_TRUE(DatalogHoldsOn(gadget_.query, test))
          << t0 << "," << t1;
      ++checked;
    }
  }
  EXPECT_EQ(checked, 16);
}

TEST_F(Thm8Test, GridMapsIntoTilingStructureApproximately) {
  // Lemma 6 via Fact 1: the grid wins the 2-pebble game against I_TP*
  // even though no homomorphism (no tiling) exists — this is what makes
  // the view images k-indistinguishable and defeats every Datalog
  // rewriting (Fact 2).
  auto vocab = MakeVocabulary();
  DeltaSchema schema = DeltaSchema::Create(vocab);
  Instance target = TilingProblemAsInstance(tp_, vocab, schema);
  Instance grid = GridInstance(3, 3, vocab, schema);
  EXPECT_FALSE(HasHomomorphism(grid, target));
  EXPECT_TRUE(DuplicatorWins(grid, target, 2));
}

TEST_F(Thm8Test, WlIsTileableForSmallK) {
  // The W_ℓ construction of the proof: the grid of S-facts of an
  // unravelled image. We verify its essence — a k-unravelling of the
  // grid CAN be tiled (maps into I_TP*) although the grid cannot.
  auto vocab = MakeVocabulary();
  DeltaSchema schema = DeltaSchema::Create(vocab);
  Instance grid = GridInstance(3, 3, vocab, schema);
  Instance target = TilingProblemAsInstance(tp_, vocab, schema);
  // Fact 4(2): grid →k I_TP* iff U → I_TP* for the k-unravelling U.
  // We check the game directly (equivalent and cheaper).
  EXPECT_TRUE(DuplicatorWins(grid, target, 2));
}

TEST_F(Thm8Test, FullPipelineProducesTheSeparatingPair) {
  // The proof's pipeline on a bounded unravelling: Q(I_ℓ) = True,
  // Q(I'_ℓ) = False, and U_ℓ ⊆ V(I'_ℓ) — so the view images cannot be
  // separated by any Datalog program of matching pebble width (Fact 2).
  auto pipeline = BuildThm8Pipeline(gadget_, /*ell=*/3, /*k=*/2,
                                    /*depth=*/2);
  ASSERT_TRUE(pipeline.has_value());
  ASSERT_TRUE(pipeline->tiled);  // Lemma 6: W_ℓ is TP*-tileable

  // Q true on the axes.
  EXPECT_TRUE(DatalogHoldsOn(gadget_.query, pipeline->axes));
  // Q false on the chased instance: the tiling is valid, so no Qverify
  // rule fires, and there are no C/D facts for Qstart/Qhelper.
  EXPECT_FALSE(DatalogHoldsOn(gadget_.query, pipeline->iprime));

  // U_ℓ is contained in V(I'_ℓ) fact-by-fact (same element ids).
  Instance iprime_image = gadget_.views.Image(pipeline->iprime);
  for (const Fact& f : pipeline->unravelling.inst.AllFacts()) {
    EXPECT_TRUE(iprime_image.HasFact(f))
        << FactToString(pipeline->unravelling.inst, f);
  }
}

TEST_F(Thm8Test, PipelineWStructureIsGridLike) {
  auto pipeline = BuildThm8Pipeline(gadget_, 3, 2, 2);
  ASSERT_TRUE(pipeline.has_value());
  // W_ℓ has one element per S-fact of the unravelling and maps
  // homomorphically onto... at least it must be non-trivial and have the
  // initial/final markers somewhere.
  EXPECT_GT(pipeline->w_structure.num_elements(), 0u);
  EXPECT_GT(pipeline->w_structure.num_facts(), 0u);
}

TEST_F(Thm8Test, PipelineWithSolvableTilingAlsoRuns) {
  // The pipeline itself is generic in the tiling problem.
  Thm6Gadget solvable = BuildThm6(SolvableTilingProblem());
  auto pipeline = BuildThm8Pipeline(solvable, 3, 2, 2);
  ASSERT_TRUE(pipeline.has_value());
  EXPECT_TRUE(pipeline->tiled);
  EXPECT_FALSE(DatalogHoldsOn(solvable.query, pipeline->iprime));
}

}  // namespace
}  // namespace mondet
