#include <gtest/gtest.h>

#include "base/homomorphism.h"
#include "games/pebble.h"
#include "games/unravel.h"
#include "tests/test_util.h"

namespace mondet {
namespace {

TEST(PebbleGame, HomomorphismImpliesGameWin) {
  auto vocab = MakeVocabulary();
  PredId r = vocab->AddPredicate("R", 2);
  Instance path = MakePath(vocab, r, 4);
  Instance cycle = MakeCycle(vocab, r, 3);
  ASSERT_TRUE(HasHomomorphism(path, cycle));
  for (int k = 2; k <= 3; ++k) {
    EXPECT_TRUE(DuplicatorWins(path, cycle, k)) << k;
  }
}

TEST(PebbleGame, TwoPebblesOnPaths) {
  // Long path →2 short path (2 pebbles cannot measure length), but the
  // homomorphism direction is already enough to check the converse fails
  // with enough pebbles... with k = 2 Duplicator survives.
  auto vocab = MakeVocabulary();
  PredId r = vocab->AddPredicate("R", 2);
  Instance long_path = MakePath(vocab, r, 5);
  Instance short_path = MakePath(vocab, r, 6);
  EXPECT_TRUE(DuplicatorWins(long_path, short_path, 2));
}

TEST(PebbleGame, SpoilerWinsWithoutStructure) {
  auto vocab = MakeVocabulary();
  PredId r = vocab->AddPredicate("R", 2);
  PredId u = vocab->AddPredicate("U", 1);
  Instance from(vocab);
  ElemId a = from.AddElement();
  from.AddFact(u, {a});
  Instance to = MakePath(vocab, r, 2);  // no U at all
  EXPECT_FALSE(DuplicatorWins(from, to, 2));
}

TEST(PebbleGame, OddCycleIntoEvenCycle) {
  // C3 → C2? No hom (parity); 2 pebbles cannot detect it (no hom but the
  // duplicator survives the 2-pebble game C3 vs C2? In fact C3 →2 C2
  // holds: 2-pebble game only sees edges). 3 pebbles kill it... C2 has a
  // hom from every cycle with even... use directed cycles:
  auto vocab = MakeVocabulary();
  PredId r = vocab->AddPredicate("R", 2);
  Instance c3 = MakeCycle(vocab, r, 3);
  Instance c2 = MakeCycle(vocab, r, 2);
  EXPECT_FALSE(HasHomomorphism(c3, c2));
  EXPECT_TRUE(DuplicatorWins(c3, c2, 2));
  EXPECT_FALSE(DuplicatorWins(c3, c2, 3));
}

TEST(PebbleGame, MonotoneInK) {
  auto vocab = MakeVocabulary();
  PredId r = vocab->AddPredicate("R", 2);
  for (unsigned seed = 0; seed < 6; ++seed) {
    Instance a = RandomInstance(vocab, {r}, 4, 5, 620 + seed);
    Instance b = RandomInstance(vocab, {r}, 4, 6, 720 + seed);
    bool w3 = DuplicatorWins(a, b, 3);
    bool w2 = DuplicatorWins(a, b, 2);
    // More pebbles only help the Spoiler: w3 implies w2.
    EXPECT_LE(w3, w2) << "seed " << seed;
    if (HasHomomorphism(a, b)) {
      EXPECT_TRUE(w3) << "seed " << seed;
    }
  }
}

TEST(Unravelling, MapsHomomorphicallyToSource) {
  auto vocab = MakeVocabulary();
  PredId r = vocab->AddPredicate("R", 2);
  Instance cycle = MakeCycle(vocab, r, 3);
  UnravelOptions options;
  options.k = 2;
  options.depth = 3;
  Unravelling u = BoundedUnravelling(cycle, options);
  EXPECT_FALSE(u.truncated);
  EXPECT_TRUE(IsHomomorphism(u.inst, cycle, u.phi));
}

TEST(Unravelling, TreeShapedResultHasNoCycle) {
  auto vocab = MakeVocabulary();
  PredId r = vocab->AddPredicate("R", 2);
  Instance cycle = MakeCycle(vocab, r, 3);
  UnravelOptions options;
  options.k = 2;
  options.depth = 4;
  Unravelling u = BoundedUnravelling(cycle, options);
  // The 3-cycle does not map into its 2-unravelling (which is acyclic).
  EXPECT_FALSE(HasHomomorphism(cycle, u.inst));
}

TEST(Unravelling, SourceWinsPebbleGameIntoUnravelling) {
  // Fact 4(1): I →k U for the k-unravelling U (on the truncation we check
  // the game for the bounded depth).
  auto vocab = MakeVocabulary();
  PredId r = vocab->AddPredicate("R", 2);
  Instance path = MakePath(vocab, r, 2);
  UnravelOptions options;
  options.k = 2;
  options.depth = 4;
  Unravelling u = BoundedUnravelling(path, options);
  EXPECT_TRUE(HasHomomorphism(u.inst, path));
  // Path actually maps into its unravelling (path is tree-shaped).
  EXPECT_TRUE(HasHomomorphism(path, u.inst));
}

TEST(Unravelling, OneOverlapRestrictsSharing) {
  auto vocab = MakeVocabulary();
  PredId r = vocab->AddPredicate("R", 2);
  Instance cycle = MakeCycle(vocab, r, 4);
  UnravelOptions options;
  options.k = 2;
  options.depth = 2;
  options.one_overlap = true;
  Unravelling u = BoundedUnravelling(cycle, options);
  EXPECT_TRUE(IsHomomorphism(u.inst, cycle, u.phi));
}

TEST(Unravelling, MaxNodesTruncates) {
  auto vocab = MakeVocabulary();
  PredId r = vocab->AddPredicate("R", 2);
  Instance cycle = MakeCycle(vocab, r, 5);
  UnravelOptions options;
  options.k = 3;
  options.depth = 6;
  options.max_nodes = 50;
  Unravelling u = BoundedUnravelling(cycle, options);
  EXPECT_TRUE(u.truncated);
  EXPECT_LE(u.nodes, 50u);
}

}  // namespace
}  // namespace mondet
