#ifndef MONDET_TESTS_TEST_UTIL_H_
#define MONDET_TESTS_TEST_UTIL_H_

#include <random>
#include <string>
#include <vector>

#include "base/instance.h"
#include "base/symbol_table.h"

namespace mondet {

/// Builds a directed R-path a0 → a1 → ... → an over a binary predicate.
inline Instance MakePath(const VocabularyPtr& vocab, PredId edge, int n) {
  Instance inst(vocab);
  std::vector<ElemId> nodes;
  for (int i = 0; i <= n; ++i) nodes.push_back(inst.AddElement());
  for (int i = 0; i < n; ++i) inst.AddFact(edge, {nodes[i], nodes[i + 1]});
  return inst;
}

/// Builds a directed cycle of length n.
inline Instance MakeCycle(const VocabularyPtr& vocab, PredId edge, int n) {
  Instance inst(vocab);
  std::vector<ElemId> nodes;
  for (int i = 0; i < n; ++i) nodes.push_back(inst.AddElement());
  for (int i = 0; i < n; ++i) {
    inst.AddFact(edge, {nodes[i], nodes[(i + 1) % n]});
  }
  return inst;
}

/// Random instance over the given predicates with `elems` elements and
/// roughly `facts` facts (deduplicated).
inline Instance RandomInstance(const VocabularyPtr& vocab,
                               const std::vector<PredId>& preds, int elems,
                               int facts, unsigned seed) {
  std::mt19937 rng(seed);
  Instance inst(vocab);
  for (int i = 0; i < elems; ++i) inst.AddElement();
  std::uniform_int_distribution<int> elem_dist(0, elems - 1);
  std::uniform_int_distribution<size_t> pred_dist(0, preds.size() - 1);
  for (int i = 0; i < facts; ++i) {
    PredId p = preds[pred_dist(rng)];
    std::vector<ElemId> args;
    for (int j = 0; j < vocab->arity(p); ++j) {
      args.push_back(static_cast<ElemId>(elem_dist(rng)));
    }
    inst.AddFact(p, args);
  }
  return inst;
}

}  // namespace mondet

#endif  // MONDET_TESTS_TEST_UTIL_H_
