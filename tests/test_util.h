#ifndef MONDET_TESTS_TEST_UTIL_H_
#define MONDET_TESTS_TEST_UTIL_H_

#include <vector>

#include "base/instance.h"
#include "base/symbol_table.h"
#include "testing/generator.h"

namespace mondet {

/// Builds a directed R-path a0 → a1 → ... → an over a binary predicate.
inline Instance MakePath(const VocabularyPtr& vocab, PredId edge, int n) {
  Instance inst(vocab);
  std::vector<ElemId> nodes;
  for (int i = 0; i <= n; ++i) nodes.push_back(inst.AddElement());
  for (int i = 0; i < n; ++i) inst.AddFact(edge, {nodes[i], nodes[i + 1]});
  return inst;
}

/// Builds a directed cycle of length n.
inline Instance MakeCycle(const VocabularyPtr& vocab, PredId edge, int n) {
  Instance inst(vocab);
  std::vector<ElemId> nodes;
  for (int i = 0; i < n; ++i) nodes.push_back(inst.AddElement());
  for (int i = 0; i < n; ++i) {
    inst.AddFact(edge, {nodes[i], nodes[(i + 1) % n]});
  }
  return inst;
}

/// Random instance over the given predicates with `elems` elements and
/// roughly `facts` facts (deduplicated). Forwards to the shared
/// randomized-testing library; the historical draw order is preserved
/// there (tests/testing_golden_test.cc pins it).
inline Instance RandomInstance(const VocabularyPtr& vocab,
                               const std::vector<PredId>& preds, int elems,
                               int facts, unsigned seed) {
  return testing::RandomInstance(vocab, preds, elems, facts, seed);
}

}  // namespace mondet

#endif  // MONDET_TESTS_TEST_UTIL_H_
