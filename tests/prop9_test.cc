#include <gtest/gtest.h>

#include "core/mondet_check.h"
#include "datalog/parser.h"
#include "reductions/prop9.h"

namespace mondet {
namespace {

DatalogQuery MustParseQuery(const std::string& text, const std::string& goal,
                            const VocabularyPtr& vocab) {
  std::string error;
  std::vector<Diagnostic> diags;
  auto q = ParseQuery(text, goal, vocab, &diags);
  EXPECT_TRUE(q.has_value()) << FormatDiagnostics(diags);
  return *q;
}

TEST(Lemma8, ContainedQueriesGiveDeterminacy) {
  // Q1 = ∃xyz 2-path ⊑ Q2 = ∃xy edge: the reduction must yield a
  // monotonically determined query (bounded check finds no failure).
  auto vocab = MakeVocabulary();
  DatalogQuery q1 = MustParseQuery("G1() :- R(x,y), R(y,z).", "G1", vocab);
  DatalogQuery q2 = MustParseQuery("G2() :- R(x,y).", "G2", vocab);
  Prop9Reduction reduction = ContainmentToMonDet(q1, q2);
  MonDetResult result =
      CheckMonotonicDeterminacy(reduction.query, reduction.views);
  EXPECT_NE(result.verdict, Verdict::kNotDetermined);
}

TEST(Lemma8, NonContainmentRefuted) {
  // Q1 = ∃xy edge NOT ⊑ Q2 = ∃x loop: the reduction is not determined
  // and the canonical tests find the counterexample.
  auto vocab = MakeVocabulary();
  DatalogQuery q1 = MustParseQuery("G1() :- R(x,y).", "G1", vocab);
  DatalogQuery q2 = MustParseQuery("G2() :- R(x,x).", "G2", vocab);
  Prop9Reduction reduction = ContainmentToMonDet(q1, q2);
  MonDetResult result =
      CheckMonotonicDeterminacy(reduction.query, reduction.views);
  EXPECT_EQ(result.verdict, Verdict::kNotDetermined);
}

TEST(Lemma8, RecursiveContainment) {
  // Reachability-to-U contained in "some U": determined; and the
  // converse direction is refuted.
  auto vocab = MakeVocabulary();
  DatalogQuery reach = MustParseQuery(R"(
    P(x) :- U(x).
    P(x) :- R(x,y), P(y).
    G1() :- P(x).
  )",
                                      "G1", vocab);
  DatalogQuery some_u = MustParseQuery("G2() :- U(x).", "G2", vocab);
  Prop9Reduction forward = ContainmentToMonDet(reach, some_u);
  MonDetResult fwd = CheckMonotonicDeterminacy(forward.query, forward.views);
  EXPECT_NE(fwd.verdict, Verdict::kNotDetermined);

  auto vocab2 = MakeVocabulary();
  DatalogQuery some_u2 = MustParseQuery("G2() :- U(x).", "G2", vocab2);
  DatalogQuery edge_to_u = MustParseQuery("G1() :- R(x,y), U(y).", "G1",
                                          vocab2);
  // "some U" not contained in "edge into U".
  Prop9Reduction backward = ContainmentToMonDet(some_u2, edge_to_u);
  MonDetResult bwd =
      CheckMonotonicDeterminacy(backward.query, backward.views);
  EXPECT_EQ(bwd.verdict, Verdict::kNotDetermined);
}

TEST(Lemma7, EquivalentViewGivesDeterminacy) {
  auto vocab = MakeVocabulary();
  DatalogQuery q = MustParseQuery("G() :- R(x,y).", "G", vocab);
  DatalogQuery same = MustParseQuery("V() :- R(a,b).", "V", vocab);
  Lemma7Instance instance = EquivalenceToMonDet(q, same);
  MonDetResult result =
      CheckMonotonicDeterminacy(instance.query, instance.views);
  EXPECT_EQ(result.verdict, Verdict::kDetermined);
}

TEST(Lemma7, InequivalentViewRefuted) {
  auto vocab = MakeVocabulary();
  DatalogQuery q = MustParseQuery("G() :- R(x,x).", "G", vocab);
  DatalogQuery weaker = MustParseQuery("V() :- R(a,b).", "V", vocab);
  Lemma7Instance instance = EquivalenceToMonDet(q, weaker);
  MonDetResult result =
      CheckMonotonicDeterminacy(instance.query, instance.views);
  EXPECT_EQ(result.verdict, Verdict::kNotDetermined);
}

}  // namespace
}  // namespace mondet
