#include <gtest/gtest.h>

#include "core/mondet_check.h"
#include "datalog/eval.h"
#include "datalog/parser.h"
#include "tests/test_util.h"

namespace mondet {
namespace {

CQ MustParseCq(const std::string& text, const VocabularyPtr& vocab) {
  std::string error;
  auto cq = ParseCq(text, vocab, &error);
  EXPECT_TRUE(cq.has_value()) << error;
  return *cq;
}

DatalogQuery MustParseQuery(const std::string& text, const std::string& goal,
                            const VocabularyPtr& vocab) {
  std::string error;
  std::vector<Diagnostic> diags;
  auto q = ParseQuery(text, goal, vocab, &diags);
  EXPECT_TRUE(q.has_value()) << FormatDiagnostics(diags);
  return *q;
}

TEST(MonDetCqCq, DeterminedPathQuery) {
  // Q() = ∃xyz R(x,y),R(y,z); views expose R-pairs-of-length-2 and the
  // query is their boolean projection: determined.
  auto vocab = MakeVocabulary();
  CQ q = MustParseCq("Q() :- R(x,y), R(y,z).", vocab);
  ViewSet views(vocab);
  views.AddCqView("V", MustParseCq("V(x,z) :- R(x,y), R(y,z).", vocab));
  MonDetResult result =
      CheckMonotonicDeterminacy(CqAsDatalog(q, "G"), views);
  EXPECT_EQ(result.verdict, Verdict::kDetermined);
}

TEST(MonDetCqCq, NotDeterminedProjectionLosesJoin) {
  // Q() = ∃xy R(x,y),S(y); views only expose R and S separately projected
  // — the join is lost.
  auto vocab = MakeVocabulary();
  CQ q = MustParseCq("Q() :- R(x,y), S(y).", vocab);
  ViewSet views(vocab);
  views.AddCqView("VR", MustParseCq("VR(x) :- R(x,y).", vocab));
  views.AddCqView("VS", MustParseCq("VS(y) :- S(y).", vocab));
  MonDetResult result =
      CheckMonotonicDeterminacy(CqAsDatalog(q, "G"), views);
  EXPECT_EQ(result.verdict, Verdict::kNotDetermined);
  ASSERT_TRUE(result.failure.has_value());
  // The failing test witnesses: approximation satisfies Q, D' does not.
  EXPECT_TRUE(DatalogHoldsOn(CqAsDatalog(q, "G2"), result.failure->approximation.inst));
  EXPECT_FALSE(DatalogHoldsOn(CqAsDatalog(q, "G3"), result.failure->dprime));
}

TEST(MonDetCqCq, AtomicViewsAlwaysDetermined) {
  auto vocab = MakeVocabulary();
  CQ q = MustParseCq("Q() :- R(x,y), R(y,x).", vocab);
  ViewSet views(vocab);
  views.AddAtomicView("VR", *vocab->FindPredicate("R"));
  MonDetResult result =
      CheckMonotonicDeterminacy(CqAsDatalog(q, "G"), views);
  EXPECT_EQ(result.verdict, Verdict::kDetermined);
}

TEST(MonDetUcqUcq, DeterminedUnion) {
  auto vocab = MakeVocabulary();
  std::string error;
  auto ucq = ParseUcq("Q() :- R(x,y).\nQ() :- S(x).", vocab, &error);
  ASSERT_TRUE(ucq) << error;
  ViewSet views(vocab);
  views.AddAtomicView("VR", *vocab->FindPredicate("R"));
  views.AddAtomicView("VS", *vocab->FindPredicate("S"));
  MonDetResult result =
      CheckMonotonicDeterminacy(UcqAsDatalog(*ucq, "G"), views);
  EXPECT_EQ(result.verdict, Verdict::kDetermined);
}

TEST(MonDetRecursive, ReachOverEdgeViewsBoundedVerdict) {
  // Recursive query over atomic views: determined, but the enumerator can
  // only certify up to its bounds.
  auto vocab = MakeVocabulary();
  DatalogQuery q = MustParseQuery(R"(
    P(x) :- U(x).
    P(x) :- R(x,y), P(y).
    Goal() :- P(x).
  )",
                                  "Goal", vocab);
  ViewSet views(vocab);
  views.AddAtomicView("VR", *vocab->FindPredicate("R"));
  views.AddAtomicView("VU", *vocab->FindPredicate("U"));
  MonDetResult result = CheckMonotonicDeterminacy(q, views);
  EXPECT_EQ(result.verdict, Verdict::kUnknownBounded);
  EXPECT_FALSE(result.failure.has_value());
  EXPECT_GT(result.tests_run, 0u);
}

TEST(MonDetRecursive, ReachWithHiddenMarkRefuted) {
  // Hide U behind a lossy view: not determined, and the refuter finds it.
  auto vocab = MakeVocabulary();
  DatalogQuery q = MustParseQuery(R"(
    P(x) :- U(x), M(x).
    P(x) :- R(x,y), P(y).
    Goal() :- P(x).
  )",
                                  "Goal", vocab);
  ViewSet views(vocab);
  views.AddAtomicView("VR", *vocab->FindPredicate("R"));
  views.AddCqView("VU", MustParseCq("VU(x) :- U(x).", vocab));
  // M is invisible: the U∧M base case cannot be reconstructed.
  MonDetResult result = CheckMonotonicDeterminacy(q, views);
  EXPECT_EQ(result.verdict, Verdict::kNotDetermined);
}

TEST(Thm5, CqOverRecursiveViewsDetermined) {
  // Q = ∃x,y R(x,y) with a view exposing R: determined; decided exactly
  // by the Thm 5 automata procedure.
  auto vocab = MakeVocabulary();
  CQ q = MustParseCq("Q() :- R(x,y).", vocab);
  ViewSet views(vocab);
  views.AddAtomicView("VR", *vocab->FindPredicate("R"));
  Thm5Result result = CheckCqOverDatalogViews(q, views);
  EXPECT_TRUE(result.determined);
  EXPECT_GT(result.pairs_explored, 0u);
}

TEST(Thm5, CqOverReachabilityViewDeterminedDespiteRecursion) {
  // View = transitive reachability into U; query asks for a direct edge
  // into U. Every Reach-witness ends with a direct edge into U, so the
  // query IS monotonically determined — and the automata procedure sees
  // it through the recursion.
  auto vocab = MakeVocabulary();
  CQ q = MustParseCq("Q() :- R(x,y), U(y).", vocab);
  std::string error;
  std::vector<Diagnostic> diags;
  auto def = ParseQuery(R"(
    Reach(x) :- R(x,y), U(y).
    Reach(x) :- R(x,y), Reach(y).
  )",
                        "Reach", vocab, &diags);
  ASSERT_TRUE(def) << FormatDiagnostics(diags);
  ViewSet views(vocab);
  views.AddView("VReach", *def);
  Thm5Result result = CheckCqOverDatalogViews(q, views);
  EXPECT_TRUE(result.determined);
}

TEST(Thm5, CqTwoHopOverHasEdgeViewNotDetermined) {
  // Query = a 2-hop path; view = "has an outgoing chain" (recursive):
  // the image forgets how chains connect, so Q is not determined.
  auto vocab = MakeVocabulary();
  CQ q = MustParseCq("Q() :- R(x,y), R(y,z).", vocab);
  std::string error;
  std::vector<Diagnostic> diags;
  auto def = ParseQuery(R"(
    W(x) :- R(x,y).
    W(x) :- R(x,y), W(y).
  )",
                        "W", vocab, &diags);
  ASSERT_TRUE(def) << FormatDiagnostics(diags);
  ViewSet views(vocab);
  views.AddView("VW", *def);
  Thm5Result result = CheckCqOverDatalogViews(q, views);
  EXPECT_FALSE(result.determined);
  ASSERT_TRUE(result.counterexample.has_value());
  // The counterexample decodes to a test instance where Q fails.
  Instance decoded = result.counterexample->Decode(vocab);
  UCQ as_ucq(vocab);
  as_ucq.AddDisjunct(q);
  EXPECT_FALSE(as_ucq.HoldsOn(decoded));
}

TEST(Thm5, CqOverRecursiveViewDetermined) {
  // Query = "some element reaches U in one R-step or is in U"? Use a
  // query that IS expressible: Q() = ∃x U(x), view VU(x) ← U(x) plus a
  // recursive view; determined since VU pins U down.
  auto vocab = MakeVocabulary();
  CQ q = MustParseCq("Q() :- U(x).", vocab);
  std::string error;
  std::vector<Diagnostic> diags;
  auto def = ParseQuery(R"(
    Reach(x) :- R(x,y), U(y).
    Reach(x) :- R(x,y), Reach(y).
  )",
                        "Reach", vocab, &diags);
  ASSERT_TRUE(def) << FormatDiagnostics(diags);
  ViewSet views(vocab);
  views.AddView("VReach", *def);
  views.AddCqView("VU", MustParseCq("VU(x) :- U(x).", vocab));
  Thm5Result result = CheckCqOverDatalogViews(q, views);
  EXPECT_TRUE(result.determined);
}

TEST(Thm5, ManyViewAtomsFoldCorrectly) {
  // Regression: Q'' goal rules with more than two IDB atoms must be
  // folded without dropping children (the n=2 path query over VReach+VR
  // produces a 4-IDB-atom goal rule).
  auto vocab = MakeVocabulary();
  PredId r = vocab->AddPredicate("R", 2);
  PredId u = vocab->AddPredicate("U", 1);
  CQ q(vocab);
  std::vector<VarId> vars;
  for (int i = 0; i <= 2; ++i) vars.push_back(q.AddVar());
  q.AddAtom(r, {vars[0], vars[1]});
  q.AddAtom(r, {vars[1], vars[2]});
  q.AddAtom(u, {vars[2]});
  q.SetFreeVars({});
  std::string error;
  std::vector<Diagnostic> diags;
  auto def = ParseQuery(
      "Reach(x) :- R(x,y), U(y).\nReach(x) :- R(x,y), Reach(y).", "Reach",
      vocab, &diags);
  ASSERT_TRUE(def) << FormatDiagnostics(diags);
  ViewSet views(vocab);
  views.AddView("VReach", *def);
  views.AddAtomicView("VR", r);
  // Every Reach-witness path combines with the exposed R-edges into a
  // 2-path ending in U: determined.
  Thm5Result result = CheckCqOverDatalogViews(q, views);
  EXPECT_TRUE(result.determined);
}

TEST(Thm5, AgreesWithCanonicalTestsOnCqCq) {
  // Cross-validation: on CQ/CQ inputs the Thm 5 decision agrees with the
  // exact canonical-test procedure.
  auto vocab = MakeVocabulary();
  struct Case {
    std::string query;
    std::string view;
  };
  std::vector<Case> cases = {
      {"Q() :- R(x,y), R(y,z).", "V(x,z) :- R(x,y), R(y,z)."},
      {"Q() :- R(x,y).", "V(x,z) :- R(x,y), R(y,z)."},
      {"Q() :- R(x,y), R(y,x).", "V(x,y) :- R(x,y)."},
      {"Q() :- R(x,x).", "V(x) :- R(x,x)."},
  };
  for (const Case& c : cases) {
    auto v = MakeVocabulary();
    CQ q = MustParseCq(c.query, v);
    ViewSet views(v);
    views.AddCqView("V", MustParseCq(c.view, v));
    Thm5Result thm5 = CheckCqOverDatalogViews(q, views);
    MonDetResult tests = CheckMonotonicDeterminacy(CqAsDatalog(q, "G"), views);
    ASSERT_NE(tests.verdict, Verdict::kUnknownBounded) << c.query;
    EXPECT_EQ(thm5.determined, tests.verdict == Verdict::kDetermined)
        << c.query << " / " << c.view;
  }
}

}  // namespace
}  // namespace mondet
