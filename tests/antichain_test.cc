#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "automata/ops.h"
#include "core/mondet_check.h"
#include "datalog/eval.h"
#include "datalog/parser.h"
#include "testing/corpus.h"
#include "testing/generator.h"
#include "testing/oracle.h"
#include "testing/shrink.h"
#include "tests/test_util.h"

namespace mondet {
namespace {

using testing::ChainOfANta;
using testing::NtaEnumerationCodes;
using testing::NtaLabelA;
using testing::NtaLabelB;
using testing::NthBelowRootIsANta;
using testing::RandomNta;

SymbolUniverse MergedUniverse(const Nta& a, const Nta& b) {
  SymbolUniverse u = SymbolsOf(a);
  u.Merge(SymbolsOf(b));
  return u;
}

/// The width-1 automaton accepting every code over the two-label alphabet.
Nta UniversalNta() {
  Nta m(1);
  State q = m.AddState();
  for (const NodeLabel& l : {NtaLabelA(), NtaLabelB()}) {
    m.AddLeaf(l, q);
    m.AddUnary(l, EdgeLabel{}, q, q);
    m.AddBinary(l, EdgeLabel{}, EdgeLabel{}, q, q, q);
  }
  m.AddFinal(q);
  return m;
}

bool CodesIdentical(const TreeCode& x, const TreeCode& y) {
  if (x.width != y.width || x.nodes.size() != y.nodes.size()) return false;
  for (size_t i = 0; i < x.nodes.size(); ++i) {
    if (!(x.nodes[i].atoms == y.nodes[i].atoms) ||
        x.nodes[i].children != y.nodes[i].children ||
        !(x.nodes[i].edge_labels == y.nodes[i].edge_labels) ||
        x.nodes[i].parent != y.nodes[i].parent) {
      return false;
    }
  }
  return true;
}

TEST(NtaIncluded, SelfInclusionOnRandomAutomata) {
  for (unsigned seed = 0; seed < 30; ++seed) {
    Nta a = RandomNta(seed);
    NtaInclusionResult r = NtaIncluded(a, a, SymbolsOf(a));
    EXPECT_TRUE(r.included) << "seed " << seed;
    EXPECT_FALSE(r.witness.has_value());
  }
}

TEST(NtaIncluded, EmptyLeftSideIsIncludedInAnything) {
  Nta empty(1);
  empty.AddState();
  empty.AddLeaf(NtaLabelA(), 0);  // reachable state, but no finals
  for (unsigned seed = 0; seed < 10; ++seed) {
    Nta b = RandomNta(seed);
    NtaInclusionResult r = NtaIncluded(empty, b, MergedUniverse(empty, b));
    EXPECT_TRUE(r.included) << "seed " << seed;
  }
}

TEST(NtaIncluded, EverythingIsIncludedInUniversal) {
  Nta univ = UniversalNta();
  for (unsigned seed = 0; seed < 30; ++seed) {
    Nta a = RandomNta(seed);
    NtaInclusionResult r = NtaIncluded(a, univ, MergedUniverse(a, univ));
    EXPECT_TRUE(r.included) << "seed " << seed;
  }
}

TEST(NtaIncluded, HandBuiltWitnessHasExactShape) {
  // a accepts exactly the 2-chain of A's, b only the single A leaf: the
  // sole separating code is the 2-chain, and the walk must surface it.
  Nta a = ChainOfANta(2);
  Nta b = ChainOfANta(1);
  NtaInclusionResult r = NtaIncluded(a, b, MergedUniverse(a, b));
  EXPECT_FALSE(r.included);
  ASSERT_TRUE(r.witness.has_value());
  EXPECT_TRUE(r.witness->Validate());
  EXPECT_EQ(r.witness->width, 1);
  ASSERT_EQ(r.witness->nodes.size(), 2u);
  EXPECT_EQ(r.witness->nodes[0].atoms, NtaLabelA());
  EXPECT_EQ(r.witness->nodes[1].atoms, NtaLabelA());
  EXPECT_EQ(r.witness->nodes[0].children, std::vector<int>{1});
  EXPECT_TRUE(a.Accepts(*r.witness));
  EXPECT_FALSE(b.Accepts(*r.witness));
}

TEST(NtaIncluded, SubsumptionPruneFiresOnGrowingMacrostate) {
  // b's macrostate grows from {0} to {0,1} along the unary step; the
  // antichain discards the superset, so exactly one pair and one
  // macrostate are ever interned.
  Nta b(1);
  b.AddState();
  b.AddState();
  b.AddLeaf(NtaLabelA(), 0);
  b.AddUnary(NtaLabelA(), EdgeLabel{}, 0, 0);
  b.AddUnary(NtaLabelA(), EdgeLabel{}, 0, 1);
  b.AddFinal(0);
  Nta a(1);
  a.AddState();
  a.AddLeaf(NtaLabelA(), 0);
  a.AddUnary(NtaLabelA(), EdgeLabel{}, 0, 0);
  a.AddFinal(0);
  NtaInclusionResult r = NtaIncluded(a, b, MergedUniverse(a, b));
  EXPECT_TRUE(r.included);
  EXPECT_EQ(r.subsumption_prunes, 1u);
  EXPECT_EQ(r.macrostates_visited, 1u);
  EXPECT_EQ(r.pairs_explored, 1u);
}

TEST(NtaIncluded, PruningOffExploresNoFewerPairsAndNeverPrunes) {
  NtaInclusionOptions off;
  off.antichain_prune = false;
  for (unsigned seed = 0; seed < 30; ++seed) {
    Nta a = RandomNta(41000 + seed);
    Nta b = RandomNta(43000 + seed);
    SymbolUniverse u = MergedUniverse(a, b);
    NtaInclusionResult anti = NtaIncluded(a, b, u);
    NtaInclusionResult plain = NtaIncluded(a, b, u, off);
    EXPECT_EQ(anti.included, plain.included) << "seed " << seed;
    EXPECT_LE(anti.pairs_explored, plain.pairs_explored) << "seed " << seed;
    EXPECT_EQ(plain.subsumption_prunes, 0u);
  }
}

TEST(NtaIncluded, MacrostatesStrictlyBelowDeterminizedStates) {
  // The exponential family of generator.h: determinizing b over the chain
  // universe materializes ~2^(k+1) subset states, while the antichain walk
  // against the single-chain left side keeps only O(k) macrostates.
  const int k = 5;
  Nta a = ChainOfANta(k + 1);
  Nta b = NthBelowRootIsANta(k);
  SymbolUniverse u = MergedUniverse(a, b);
  NtaInclusionResult r = NtaIncluded(a, b, u);
  EXPECT_TRUE(r.included);
  Nta det = Determinize(b, u);
  EXPECT_LT(r.macrostates_visited, det.num_states());
  // The gap is the point: well under half the determinized state count.
  EXPECT_LT(2 * r.macrostates_visited, det.num_states());
}

TEST(NtaIncluded, InclusionIsRelativeToTheUniverse) {
  // a's unary transition is invisible in a leaves-only universe, so the
  // only codes that count are single leaves — and a accepts none of them.
  Nta a = ChainOfANta(2);
  Nta b = ChainOfANta(1);
  SymbolUniverse leaves_only = SymbolsOf(b);
  EXPECT_TRUE(NtaIncluded(a, b, leaves_only).included);
  EXPECT_FALSE(NtaIncluded(a, b, MergedUniverse(a, b)).included);
}

TEST(NtaIncluded, AgreesWithExplicitRouteOnEnumeration) {
  for (unsigned seed = 0; seed < 40; ++seed) {
    Nta a = RandomNta(51000 + seed);
    Nta b = RandomNta(53000 + seed);
    SymbolUniverse u = MergedUniverse(a, b);
    NtaInclusionResult r = NtaIncluded(a, b, u);
    bool explicit_included = IsEmpty(Product(a, Complement(b, u)));
    EXPECT_EQ(r.included, explicit_included) << "seed " << seed;
    if (r.included) {
      // No enumerable code may separate them.
      for (const TreeCode& code : NtaEnumerationCodes()) {
        EXPECT_FALSE(a.Accepts(code) && !b.Accepts(code)) << "seed " << seed;
      }
    }
  }
}

TEST(LazyProduct, AgreesWithMaterializedProductAndWitnesses) {
  for (unsigned seed = 0; seed < 40; ++seed) {
    Nta a = RandomNta(61000 + seed);
    Nta b = RandomNta(63000 + seed);
    LazyProductResult r = LazyProductEmptiness(a, b);
    EXPECT_EQ(r.empty, IsEmpty(Product(a, b))) << "seed " << seed;
    if (!r.empty) {
      ASSERT_TRUE(r.witness.has_value()) << "seed " << seed;
      EXPECT_TRUE(r.witness->Validate());
      EXPECT_TRUE(a.Accepts(*r.witness)) << "seed " << seed;
      EXPECT_TRUE(b.Accepts(*r.witness)) << "seed " << seed;
    } else {
      EXPECT_FALSE(r.witness.has_value());
    }
  }
}

TEST(LazyProduct, BinaryIntersectionIsFound) {
  // Both sides accept the binary-over-leaves shape; the witness must use
  // the binary transition (three nodes).
  Nta a(1);
  a.AddState();
  a.AddLeaf(NtaLabelA(), 0);
  a.AddBinary(NtaLabelB(), EdgeLabel{}, EdgeLabel{}, 0, 0, 0);
  a.AddFinal(0);
  Nta b = UniversalNta();
  LazyProductResult r = LazyProductEmptiness(a, b);
  EXPECT_FALSE(r.empty);
  ASSERT_TRUE(r.witness.has_value());
  EXPECT_TRUE(a.Accepts(*r.witness));
}

// --- Thm 5 / containment byte-identity regression arm ----------------------

TEST(ContainmentAntichain, DatalogInUcqBitIdenticalOnOrOff) {
  auto vocab = MakeVocabulary();
  std::string error;
  std::vector<Diagnostic> diags;
  auto q = ParseQuery(R"(
    P(x) :- U(x).
    P(x) :- R(x,y), P(y).
    Goal() :- P(x).
  )",
                      "Goal", vocab, &diags);
  ASSERT_TRUE(q) << FormatDiagnostics(diags);
  std::vector<std::string> targets = {
      "C() :- U(x).",
      "C() :- R(x,x).",
      "C() :- R(x,y), R(y,z).",
  };
  ContainmentOptions off;
  off.antichain = false;
  for (const std::string& t : targets) {
    UCQ ucq(vocab);
    ucq.AddDisjunct(*ParseCq(t, vocab, &error));
    ContainmentResult on_r = DatalogContainedInUcq(*q, ucq);
    ContainmentResult off_r = DatalogContainedInUcq(*q, ucq, off);
    EXPECT_EQ(on_r.contained, off_r.contained) << t;
    ASSERT_EQ(on_r.counterexample.has_value(),
              off_r.counterexample.has_value())
        << t;
    if (on_r.counterexample.has_value()) {
      EXPECT_TRUE(CodesIdentical(*on_r.counterexample, *off_r.counterexample))
          << t;
    }
    // Work accounting: the pruned pass never explores more pairs, the
    // escape hatch never prunes, and both report their macrostates.
    EXPECT_LE(on_r.pairs_explored, off_r.pairs_explored) << t;
    EXPECT_EQ(off_r.subsumption_prunes, 0u);
    EXPECT_GT(on_r.macrostates_visited, 0u);
    EXPECT_GT(off_r.macrostates_visited, 0u);
  }
}

TEST(ContainmentAntichain, Thm5BitIdenticalOnGoldenCases) {
  auto vocab = MakeVocabulary();
  std::string error;
  auto q = ParseCq("Q() :- R(x,y), R(y,z).", vocab, &error);
  ASSERT_TRUE(q) << error;
  std::vector<Diagnostic> diags;
  auto def = ParseQuery("W(x) :- R(x,y).\nW(x) :- R(x,y), W(y).", "W", vocab,
                        &diags);
  ASSERT_TRUE(def) << FormatDiagnostics(diags);
  ViewSet views(vocab);
  views.AddView("VW", *def);
  ContainmentOptions off;
  off.antichain = false;
  Thm5Result on_r = CheckCqOverDatalogViews(*q, views);
  Thm5Result off_r = CheckCqOverDatalogViews(*q, views, off);
  EXPECT_FALSE(on_r.determined);
  EXPECT_EQ(on_r.determined, off_r.determined);
  ASSERT_TRUE(on_r.counterexample.has_value());
  ASSERT_TRUE(off_r.counterexample.has_value());
  EXPECT_TRUE(CodesIdentical(*on_r.counterexample, *off_r.counterexample));
  EXPECT_GT(on_r.macrostates_visited, 0u);
  EXPECT_EQ(off_r.subsumption_prunes, 0u);
}

TEST(ContainmentAntichain, Thm5BitIdenticalOnRandomViewSets) {
  ContainmentOptions off;
  off.antichain = false;
  for (unsigned seed = 0; seed < 12; ++seed) {
    testing::GenProfile profile = testing::EvalProfile();
    std::vector<testing::ViewSpec> specs =
        testing::RandomViewSpecs(profile, seed);
    ViewSet views = testing::BuildViews(profile.vocab, specs);
    std::string error;
    auto q = ParseCq("Q() :- E1(x), E2(x,y).", profile.vocab, &error);
    ASSERT_TRUE(q) << error;
    Thm5Result on_r = CheckCqOverDatalogViews(*q, views);
    Thm5Result off_r = CheckCqOverDatalogViews(*q, views, off);
    EXPECT_EQ(on_r.determined, off_r.determined) << "seed " << seed;
    ASSERT_EQ(on_r.counterexample.has_value(),
              off_r.counterexample.has_value())
        << "seed " << seed;
    if (on_r.counterexample.has_value()) {
      EXPECT_TRUE(CodesIdentical(*on_r.counterexample, *off_r.counterexample))
          << "seed " << seed;
    }
  }
}

// --- Oracle and corpus integration ------------------------------------------

TEST(AntichainOracle, IsRegistered) {
  const testing::Oracle* o = testing::FindOracle("antichain-inclusion");
  ASSERT_NE(o, nullptr);
  EXPECT_EQ(o->name(), "antichain-inclusion");
}

TEST(AntichainOracle, CasesRoundTripThroughCorpusFormat) {
  const testing::Oracle* o = testing::FindOracle("antichain-inclusion");
  ASSERT_NE(o, nullptr);
  for (unsigned seed = 0; seed < 25; ++seed) {
    testing::FuzzCase c = o->Generate(seed);
    std::string text = testing::SerializeCase(c);
    std::string error;
    auto parsed = testing::ParseCaseText(text, &error);
    ASSERT_TRUE(parsed.has_value()) << error;
    // Byte-exact round trip: reserializing the parsed case reproduces the
    // file, so automata survive the format losslessly.
    EXPECT_EQ(testing::SerializeCase(*parsed), text) << "seed " << seed;
    EXPECT_TRUE(o->Check(*parsed).ok) << "seed " << seed;
  }
}

TEST(AntichainOracle, ShrinkerReducesNtaCases) {
  // A deliberately failing "oracle" that trips whenever automaton a has a
  // binary transition: the shrinker must strip everything else away.
  class BinaryTrips : public testing::Oracle {
   public:
    std::string name() const override { return "binary-trips"; }
    testing::GenProfile Profile() const override {
      return testing::EvalProfile();
    }
    testing::FuzzCase Generate(unsigned seed) const override {
      const testing::Oracle* o = testing::FindOracle("antichain-inclusion");
      return o->Generate(seed);
    }
    testing::OracleOutcome Check(const testing::FuzzCase& c) const override {
      if (c.nta_a.has_value() && !c.nta_a->binary_transitions().empty()) {
        return {false, "has binary"};
      }
      return {true, ""};
    }
  };
  BinaryTrips oracle;
  for (unsigned seed = 0; seed < 40; ++seed) {
    testing::FuzzCase c = oracle.Generate(seed);
    if (oracle.Check(c).ok) continue;
    testing::ShrinkResult res = testing::ShrinkCase(oracle, c, 500);
    EXPECT_FALSE(oracle.Check(res.best).ok);
    // Fully shrunk: exactly the one tripping transition survives.
    EXPECT_EQ(res.best.nta_a->binary_transitions().size(), 1u);
    EXPECT_TRUE(res.best.nta_a->leaf_transitions().empty());
    EXPECT_TRUE(res.best.nta_a->unary_transitions().empty());
    return;  // one genuinely shrunk case is enough
  }
  FAIL() << "no seed produced a binary transition in a";
}

class AntichainOracleSeeds : public ::testing::TestWithParam<unsigned> {};

TEST_P(AntichainOracleSeeds, Passes) {
  const testing::Oracle* o = testing::FindOracle("antichain-inclusion");
  ASSERT_NE(o, nullptr);
  testing::OracleOutcome out = o->Check(o->Generate(GetParam()));
  EXPECT_TRUE(out.ok) << out.message;
}

INSTANTIATE_TEST_SUITE_P(Sweep, AntichainOracleSeeds,
                         ::testing::Range(0u, 220u));

}  // namespace
}  // namespace mondet
